// Package hybriddtn is the public API of this reproduction of
// "Cooperative File Sharing in Hybrid Delay Tolerant Networks"
// (Liu, Wu, Guan, Chen — ICDCS 2011).
//
// The library simulates mobile BitTorrent (MBT): a cooperative
// file-sharing system for hybrid DTNs in which some mobile nodes
// occasionally reach the Internet and all nodes exchange file metadata
// (cooperative file discovery, §IV) and file pieces (broadcast-based file
// download, §V) during opportunistic contacts.
//
// A minimal run:
//
//	tr, _ := hybriddtn.NUSTrace(hybriddtn.DefaultNUSTrace())
//	cfg := hybriddtn.DefaultConfig(tr)
//	res, _ := hybriddtn.Run(cfg)
//	fmt.Println(res.MetadataRatio, res.FileRatio)
//
// The deeper building blocks live in internal/ packages; this package
// re-exports the surface a downstream user needs: trace generation,
// simulation configuration and execution, protocol variants, and the
// experiment harness that regenerates every figure of the paper's
// evaluation.
package hybriddtn

import (
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Re-exported simulation types.
type (
	// Config parameterizes one simulation run; see DefaultConfig.
	Config = core.Config
	// Result carries the delivery ratios and traffic counters of a run.
	Result = core.Result
	// Variant selects the protocol: MBT, MBTQ or MBTQM.
	Variant = core.Variant
	// Trace is a contact trace: the session (clique) schedule driving
	// the simulation.
	Trace = trace.Trace
	// Session is one contact: a set of mutually connected nodes and an
	// interval.
	Session = trace.Session
	// NodeID identifies a node in a trace.
	NodeID = trace.NodeID
)

// Protocol variants (§VI): the full protocol, the no-query-distribution
// baseline, and the no-metadata-distribution baseline.
const (
	MBT   = core.MBT
	MBTQ  = core.MBTQ
	MBTQM = core.MBTQM
)

// Variants lists the protocols in presentation order.
func Variants() []Variant { return core.Variants() }

// ParseVariant converts "MBT", "MBT-Q" or "MBT-QM" to a Variant.
func ParseVariant(s string) (Variant, error) { return core.ParseVariant(s) }

// DefaultConfig returns the evaluation defaults for a trace (50%
// Internet-access nodes, 5 metadata and 3 files per contact, cooperative
// scheduling).
func DefaultConfig(tr *Trace) Config { return core.DefaultConfig(tr) }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// Sim is a constructed simulation whose node states and per-query
// metrics remain inspectable after Run — used for analyses beyond the
// aggregate Result, such as per-group delivery in tit-for-tat studies.
type Sim = core.Sim

// NewSim builds a simulation without running it; call its Run method
// once, then inspect Nodes and Collector.
func NewSim(cfg Config) (*Sim, error) { return core.New(cfg) }

// Trace generator configurations.
type (
	// NUSTraceConfig parameterizes the campus-schedule (classroom
	// clique) generator.
	NUSTraceConfig = tracegen.NUSConfig
	// DieselTraceConfig parameterizes the bus (pairwise contact)
	// generator.
	DieselTraceConfig = tracegen.DieselConfig
	// UniformTraceConfig parameterizes the structure-free random
	// generator.
	UniformTraceConfig = tracegen.UniformConfig
	// WaypointTraceConfig parameterizes the cell-based random-waypoint
	// mobility generator.
	WaypointTraceConfig = tracegen.WaypointConfig
)

// DefaultNUSTrace returns the laptop-scale NUS-style configuration.
func DefaultNUSTrace() NUSTraceConfig { return tracegen.DefaultNUS() }

// DefaultDieselTrace returns the DieselNet-style configuration.
func DefaultDieselTrace() DieselTraceConfig { return tracegen.DefaultDiesel() }

// DefaultUniformTrace returns the random-trace configuration.
func DefaultUniformTrace() UniformTraceConfig { return tracegen.DefaultUniform() }

// NUSTrace generates an NUS-style classroom-clique contact trace.
func NUSTrace(cfg NUSTraceConfig) (*Trace, error) { return tracegen.NUS(cfg) }

// DieselTrace generates a DieselNet-style pairwise contact trace.
func DieselTrace(cfg DieselTraceConfig) (*Trace, error) { return tracegen.Diesel(cfg) }

// UniformTrace generates a structure-free random contact trace.
func UniformTrace(cfg UniformTraceConfig) (*Trace, error) { return tracegen.Uniform(cfg) }

// DefaultWaypointTrace returns the random-waypoint configuration.
func DefaultWaypointTrace() WaypointTraceConfig { return tracegen.DefaultWaypoint() }

// WaypointTrace generates a cell-based random-waypoint mobility trace.
func WaypointTrace(cfg WaypointTraceConfig) (*Trace, error) { return tracegen.Waypoint(cfg) }

// Experiment harness re-exports: every figure panel of the paper's
// evaluation as a runnable parameter sweep.
type (
	// Experiment declares one figure panel.
	Experiment = experiment.Definition
	// ExperimentOptions tunes a sweep (seed, test scale).
	ExperimentOptions = experiment.Options
	// ExperimentSeries is a reproduced panel: points by x, ratios by
	// protocol.
	ExperimentSeries = experiment.Series
	// ExperimentStats aggregates per-run instrumentation over a sweep:
	// runs, failures, wall and summed simulation time, events fired,
	// and broadcast totals.
	ExperimentStats = experiment.RunStats
)

// Experiments returns all figure panels in paper order.
func Experiments() []Experiment { return experiment.Definitions() }

// LookupExperiment finds a panel by id (e.g. "fig3a").
func LookupExperiment(id string) (Experiment, error) { return experiment.Lookup(id) }

// RunExperiment executes one panel sweep on the run-level worker pool.
func RunExperiment(def Experiment, opts ExperimentOptions) (*ExperimentSeries, error) {
	return experiment.Run(def, opts)
}

// RunExperiments executes every panel's (x × variant × seed) grid on one
// shared run-level worker pool and returns the series in paper order,
// the sweep's instrumentation, and any per-cell errors joined together
// (completed panels are still returned alongside the error).
func RunExperiments(opts ExperimentOptions) ([]*ExperimentSeries, *ExperimentStats, error) {
	return experiment.RunAllWithStats(opts)
}
