// Package search implements the keyword search used for file discovery:
// a tokenizer and an inverted index that ranks documents by how well they
// match a query. The metadata server uses it to answer pulled queries
// with the "best matched metadata"; nodes use it to present a
// preferentially ordered result list to their user.
package search

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Index is an inverted index from token to document. The zero value is
// not usable; construct with NewIndex. Index is not safe for concurrent
// mutation.
type Index struct {
	postings map[string]map[int]int // token -> docID -> term frequency
	docLen   map[int]int            // docID -> token count
	docs     map[int]bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string]map[int]int),
		docLen:   make(map[int]int),
		docs:     make(map[int]bool),
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Add indexes text under docID, replacing any previous text for the id.
func (ix *Index) Add(docID int, text string) {
	if ix.docs[docID] {
		ix.Remove(docID)
	}
	tokens := Tokenize(text)
	ix.docs[docID] = true
	ix.docLen[docID] = len(tokens)
	for _, tok := range tokens {
		m := ix.postings[tok]
		if m == nil {
			m = make(map[int]int)
			ix.postings[tok] = m
		}
		m[docID]++
	}
}

// Remove deletes docID from the index. Removing an unknown id is a no-op.
func (ix *Index) Remove(docID int) {
	if !ix.docs[docID] {
		return
	}
	delete(ix.docs, docID)
	delete(ix.docLen, docID)
	for tok, m := range ix.postings {
		if _, ok := m[docID]; ok {
			delete(m, docID)
			if len(m) == 0 {
				delete(ix.postings, tok)
			}
		}
	}
}

// Result is one ranked hit.
type Result struct {
	DocID int
	// Score counts matched query tokens (term frequency weighted); higher
	// is better.
	Score float64
}

// Search returns documents matching at least one query token, best first.
// Documents matching more distinct query tokens always outrank documents
// matching fewer; term frequency breaks ties, then docID for stability.
func (ix *Index) Search(query string, limit int) []Result {
	tokens := Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	distinct := make(map[int]int)  // docID -> distinct tokens matched
	frequency := make(map[int]int) // docID -> total term frequency
	seen := make(map[string]bool)
	for _, tok := range tokens {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		for doc, tf := range ix.postings[tok] {
			distinct[doc]++
			frequency[doc] += tf
		}
	}
	if len(distinct) == 0 {
		return nil
	}
	results := make([]Result, 0, len(distinct))
	for doc, d := range distinct {
		results = append(results, Result{
			DocID: doc,
			Score: float64(d)*1000 + float64(frequency[doc]),
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if limit >= 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}
