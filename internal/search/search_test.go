package search

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"S01E01: The Pilot!", []string{"s01e01", "the", "pilot"}},
		{"", nil},
		{"   ", nil},
		{"a-b_c", []string{"a", "b", "c"}},
		{"MiXeD CaSe", []string{"mixed", "case"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add(1, "nature documentary savanna wildlife")
	ix.Add(2, "nature of code programming")
	ix.Add(3, "city documentary architecture")
	ix.Add(4, "music concert live")
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("nature documentary", -1)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	// Doc 1 matches both tokens; 2 and 3 match one each.
	if res[0].DocID != 1 {
		t.Fatalf("top result = %d, want 1", res[0].DocID)
	}
	if res[1].DocID != 2 || res[2].DocID != 3 {
		t.Fatalf("tie order by docID broken: %v", res)
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildIndex()
	if res := ix.Search("basketball", -1); res != nil {
		t.Fatalf("unexpected results %v", res)
	}
	if res := ix.Search("", -1); res != nil {
		t.Fatalf("empty query returned %v", res)
	}
}

func TestSearchLimit(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("nature documentary", 1)
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("limit 1 = %v", res)
	}
	if res := ix.Search("nature documentary", 0); len(res) != 0 {
		t.Fatalf("limit 0 = %v", res)
	}
}

func TestTermFrequencyBreaksTies(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "jazz")
	ix.Add(2, "jazz jazz jazz")
	res := ix.Search("jazz", -1)
	if len(res) != 2 || res[0].DocID != 2 {
		t.Fatalf("tf tie-break failed: %v", res)
	}
}

func TestDuplicateQueryTokensNotDoubleCounted(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "jazz")
	ix.Add(2, "blues blues")
	res := ix.Search("jazz jazz jazz", -1)
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("results = %v", res)
	}
	// One distinct token matched -> same score band as a single mention.
	if res[0].Score >= 2000 {
		t.Fatalf("duplicate query token inflated distinct count: score %v", res[0].Score)
	}
}

func TestAddReplaces(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "old text")
	ix.Add(1, "new words")
	if res := ix.Search("old", -1); len(res) != 0 {
		t.Fatalf("stale tokens remain: %v", res)
	}
	if res := ix.Search("new", -1); len(res) != 1 {
		t.Fatalf("replacement not indexed: %v", res)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
}

func TestRemove(t *testing.T) {
	ix := buildIndex()
	ix.Remove(1)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d after removal", ix.Len())
	}
	for _, r := range ix.Search("nature documentary", -1) {
		if r.DocID == 1 {
			t.Fatal("removed doc still surfaces")
		}
	}
	ix.Remove(99) // no-op must not panic
}

func TestRemoveCleansPostings(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "unique")
	ix.Remove(1)
	if len(ix.postings) != 0 {
		t.Fatalf("postings leak: %v", ix.postings)
	}
}

func TestSearchPropertyEveryHitSharesAToken(t *testing.T) {
	f := func(docs []string, query string) bool {
		ix := NewIndex()
		for i, d := range docs {
			ix.Add(i, d)
		}
		qTokens := Tokenize(query)
		tokenSet := make(map[string]bool, len(qTokens))
		for _, tok := range qTokens {
			tokenSet[tok] = true
		}
		for _, r := range ix.Search(query, -1) {
			hit := false
			for _, tok := range Tokenize(docs[r.DocID]) {
				if tokenSet[tok] {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchResultsSortedByScore(t *testing.T) {
	f := func(docs []string, query string) bool {
		ix := NewIndex()
		for i, d := range docs {
			ix.Add(i, d)
		}
		res := ix.Search(query, -1)
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
