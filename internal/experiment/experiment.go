// Package experiment defines and runs the paper's evaluation: one
// parameter sweep per figure panel (Figures 2(a)–(e) on the
// DieselNet-style trace and 3(a)–(f) on the NUS-style trace), each
// comparing MBT, MBT-Q and MBT-QM by metadata and file delivery ratio,
// plus the ablations DESIGN.md calls out.
package experiment

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// TraceKind selects the scenario family.
type TraceKind int

// The two trace families of §VI.
const (
	Diesel TraceKind = iota + 1
	NUS
)

// String names the trace family.
func (k TraceKind) String() string {
	switch k {
	case Diesel:
		return "dieselnet"
	case NUS:
		return "nus"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// Options tune a sweep run.
type Options struct {
	// Seed is the sweep seed: every cell's simulation seed is derived
	// from it together with the cell's coordinates (panel id, x index,
	// seed index), so results never depend on scheduling order.
	Seed uint64
	// Seeds averages every cell over this many seed indices (0 or 1 =
	// single run); multi-seed sweeps also report 95% confidence
	// intervals.
	Seeds int
	// Small shrinks population and duration for tests and benchmarks.
	Small bool
	// Workers sizes the shared run-level worker pool: every
	// (panel, x, variant, seed) simulation is an independent job.
	// 0 (or negative) means one worker per CPU; 1 forces sequential.
	Workers int
}

// seedList expands Options into the seed indices to average over.
func (o Options) seedList() []int {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	return seeds
}

// Cell holds one protocol's ratios at one sweep point.
type Cell struct {
	MetadataRatio float64
	FileRatio     float64
}

// Point is one x-value of a sweep with results for every protocol.
type Point struct {
	X     float64
	Cells map[core.Variant]Cell
	// CI holds 95% confidence half-widths per protocol when the sweep
	// averaged multiple seeds; nil otherwise.
	CI map[core.Variant]Cell
}

// Series is one reproduced figure panel.
type Series struct {
	ID     string
	Title  string
	XLabel string
	Trace  TraceKind
	Points []Point
}

// Definition declares one figure panel: where the x-axis plugs into the
// configuration.
type Definition struct {
	ID     string
	Title  string
	XLabel string
	Trace  TraceKind
	Xs     []float64
	// Apply injects x into the simulation config and/or the trace
	// parameters (attendance changes the trace itself).
	Apply func(x float64, cfg *core.Config, nus *tracegen.NUSConfig, diesel *tracegen.DieselConfig)
}

func sweepInternet(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.InternetFraction = x
}

func sweepNewFiles(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.Workload.NewFilesPerDay = int(x)
}

func sweepTTL(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.Workload.TTL = simtime.Days(int(x))
}

func sweepMetadataBudget(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.MetadataPerContact = int(x)
}

func sweepFileBudget(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.FilesPerContact = int(x)
}

func sweepAttendance(x float64, _ *core.Config, nus *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	nus.Attendance = x
}

// Sweep axes shared by both figures.
var (
	internetXs = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	newFileXs  = []float64{10, 25, 50, 75, 100}
	ttlXs      = []float64{1, 2, 3, 4, 5}
	budgetXs   = []float64{1, 2, 4, 6, 8, 10}
	attendXs   = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
)

// Definitions returns every figure panel in paper order.
func Definitions() []Definition {
	return []Definition{
		{ID: "fig2a", Title: "Fig 2(a): delivery vs Internet-access nodes (DieselNet)",
			XLabel: "internet-access fraction", Trace: Diesel, Xs: internetXs, Apply: sweepInternet},
		{ID: "fig2b", Title: "Fig 2(b): delivery vs new files per day (DieselNet)",
			XLabel: "new files/day", Trace: Diesel, Xs: newFileXs, Apply: sweepNewFiles},
		{ID: "fig2c", Title: "Fig 2(c): delivery vs file TTL (DieselNet)",
			XLabel: "TTL (days)", Trace: Diesel, Xs: ttlXs, Apply: sweepTTL},
		{ID: "fig2d", Title: "Fig 2(d): delivery vs metadata per contact (DieselNet)",
			XLabel: "metadata/contact", Trace: Diesel, Xs: budgetXs, Apply: sweepMetadataBudget},
		{ID: "fig2e", Title: "Fig 2(e): delivery vs files per contact (DieselNet)",
			XLabel: "files/contact", Trace: Diesel, Xs: budgetXs, Apply: sweepFileBudget},
		{ID: "fig3a", Title: "Fig 3(a): delivery vs Internet-access nodes (NUS)",
			XLabel: "internet-access fraction", Trace: NUS, Xs: internetXs, Apply: sweepInternet},
		{ID: "fig3b", Title: "Fig 3(b): delivery vs new files per day (NUS)",
			XLabel: "new files/day", Trace: NUS, Xs: newFileXs, Apply: sweepNewFiles},
		{ID: "fig3c", Title: "Fig 3(c): delivery vs file TTL (NUS)",
			XLabel: "TTL (days)", Trace: NUS, Xs: ttlXs, Apply: sweepTTL},
		{ID: "fig3d", Title: "Fig 3(d): delivery vs metadata per contact (NUS)",
			XLabel: "metadata/contact", Trace: NUS, Xs: budgetXs, Apply: sweepMetadataBudget},
		{ID: "fig3e", Title: "Fig 3(e): delivery vs files per contact (NUS)",
			XLabel: "files/contact", Trace: NUS, Xs: budgetXs, Apply: sweepFileBudget},
		{ID: "fig3f", Title: "Fig 3(f): delivery vs attendance rate (NUS)",
			XLabel: "attendance rate", Trace: NUS, Xs: attendXs, Apply: sweepAttendance},
	}
}

// Definition returns the panel with the given id.
func Lookup(id string) (Definition, error) {
	for _, d := range Definitions() {
		if d.ID == id {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("experiment: unknown definition %q", id)
}

// baseTraceConfigs returns the generator configs for a cell seed.
func baseTraceConfigs(opts Options, seed uint64) (tracegen.NUSConfig, tracegen.DieselConfig) {
	nus := tracegen.DefaultNUS()
	diesel := tracegen.DefaultDiesel()
	nus.Seed, diesel.Seed = seed, seed
	if opts.Small {
		nus.Students, nus.Classes, nus.Days = 60, 12, 7
		diesel.Buses, diesel.Routes, diesel.Days = 20, 4, 7
	}
	return nus, diesel
}

// buildTrace generates the trace for a (possibly x-modified) config pair.
func buildTrace(kind TraceKind, nus tracegen.NUSConfig, diesel tracegen.DieselConfig) (*trace.Trace, error) {
	switch kind {
	case Diesel:
		return tracegen.Diesel(diesel)
	case NUS:
		return tracegen.NUS(nus)
	default:
		return nil, errors.New("experiment: unknown trace kind")
	}
}

// frequencyFor returns the frequent-contact threshold per trace. The
// paper uses "at least every three days" for DieselNet and "at least once
// per day" for the (much denser) real NUS trace; our scaled-down campus
// has classes meeting twice a week, so classmates sharing a course meet
// ~0.29 times/day — the threshold is scaled accordingly so that
// classmates (and only regular contacts) qualify, preserving the rule's
// intent.
func frequencyFor(kind TraceKind) float64 {
	if kind == NUS {
		return 0.25
	}
	return 1.0 / 3
}

// Run executes one panel on the run-level worker pool: every
// (x, variant, seed) simulation of the sweep is an independent job
// (averaged over opts.Seeds seed indices).
func Run(def Definition, opts Options) (*Series, error) {
	s, _, err := RunWithStats(def, opts)
	return s, err
}

// RunWithStats is Run plus the sweep's aggregated instrumentation.
func RunWithStats(def Definition, opts Options) (*Series, *RunStats, error) {
	out, st, err := RunSweep([]Definition{def}, opts)
	if err != nil {
		return nil, st, err
	}
	return out[0], st, nil
}

// RunAll executes every panel's full (x × variant × seed) grid on one
// shared run-level worker pool (opts.Workers jobs at a time, default one
// per CPU). Results come back in Definitions() order with byte-identical
// content regardless of worker count or scheduling. Cell errors are
// collected with errors.Join; panels that completed are still returned
// (failed panels are nil) alongside the error.
func RunAll(opts Options) ([]*Series, error) {
	out, _, err := RunAllWithStats(opts)
	return out, err
}

// RunAllWithStats is RunAll plus the sweep's aggregated instrumentation.
func RunAllWithStats(opts Options) ([]*Series, *RunStats, error) {
	return RunSweep(Definitions(), opts)
}

// Table renders the series as an aligned text table: one row per x with
// metadata and file ratios per protocol.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-22s", s.XLabel)
	for _, v := range core.Variants() {
		fmt.Fprintf(&b, " %10s-meta %10s-file", v, v)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-22.3g", p.X)
		for _, v := range core.Variants() {
			c := p.Cells[v]
			fmt.Fprintf(&b, " %15.3f %15.3f", c.MetadataRatio, c.FileRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, v := range core.Variants() {
		fmt.Fprintf(&b, ",%s_meta,%s_file", v, v)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g", p.X)
		for _, v := range core.Variants() {
			c := p.Cells[v]
			fmt.Fprintf(&b, ",%.4f,%.4f", c.MetadataRatio, c.FileRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
