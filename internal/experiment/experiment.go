// Package experiment defines and runs the paper's evaluation: one
// parameter sweep per figure panel (Figures 2(a)–(e) on the
// DieselNet-style trace and 3(a)–(f) on the NUS-style trace), each
// comparing MBT, MBT-Q and MBT-QM by metadata and file delivery ratio,
// plus the ablations DESIGN.md calls out.
package experiment

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// TraceKind selects the scenario family.
type TraceKind int

// The two trace families of §VI.
const (
	Diesel TraceKind = iota + 1
	NUS
)

// String names the trace family.
func (k TraceKind) String() string {
	switch k {
	case Diesel:
		return "dieselnet"
	case NUS:
		return "nus"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// Options tune a sweep run.
type Options struct {
	// Seed drives trace generation, workload and role assignment.
	Seed uint64
	// Seeds averages every cell over this many consecutive seeds
	// starting at Seed (0 or 1 = single run).
	Seeds int
	// Small shrinks population and duration for tests and benchmarks.
	Small bool
	// Workers bounds the number of panel runs executing concurrently in
	// RunAll (0 = sequential).
	Workers int
}

// seedList expands Options into the seeds to average over.
func (o Options) seedList() []uint64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = o.Seed + uint64(i)
	}
	return seeds
}

// Cell holds one protocol's ratios at one sweep point.
type Cell struct {
	MetadataRatio float64
	FileRatio     float64
}

// Point is one x-value of a sweep with results for every protocol.
type Point struct {
	X     float64
	Cells map[core.Variant]Cell
	// CI holds 95% confidence half-widths per protocol when the sweep
	// averaged multiple seeds; nil otherwise.
	CI map[core.Variant]Cell
}

// Series is one reproduced figure panel.
type Series struct {
	ID     string
	Title  string
	XLabel string
	Trace  TraceKind
	Points []Point
}

// Definition declares one figure panel: where the x-axis plugs into the
// configuration.
type Definition struct {
	ID     string
	Title  string
	XLabel string
	Trace  TraceKind
	Xs     []float64
	// Apply injects x into the simulation config and/or the trace
	// parameters (attendance changes the trace itself).
	Apply func(x float64, cfg *core.Config, nus *tracegen.NUSConfig, diesel *tracegen.DieselConfig)
}

func sweepInternet(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.InternetFraction = x
}

func sweepNewFiles(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.Workload.NewFilesPerDay = int(x)
}

func sweepTTL(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.Workload.TTL = simtime.Days(int(x))
}

func sweepMetadataBudget(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.MetadataPerContact = int(x)
}

func sweepFileBudget(x float64, cfg *core.Config, _ *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	cfg.FilesPerContact = int(x)
}

func sweepAttendance(x float64, _ *core.Config, nus *tracegen.NUSConfig, _ *tracegen.DieselConfig) {
	nus.Attendance = x
}

// Sweep axes shared by both figures.
var (
	internetXs = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	newFileXs  = []float64{10, 25, 50, 75, 100}
	ttlXs      = []float64{1, 2, 3, 4, 5}
	budgetXs   = []float64{1, 2, 4, 6, 8, 10}
	attendXs   = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
)

// Definitions returns every figure panel in paper order.
func Definitions() []Definition {
	return []Definition{
		{ID: "fig2a", Title: "Fig 2(a): delivery vs Internet-access nodes (DieselNet)",
			XLabel: "internet-access fraction", Trace: Diesel, Xs: internetXs, Apply: sweepInternet},
		{ID: "fig2b", Title: "Fig 2(b): delivery vs new files per day (DieselNet)",
			XLabel: "new files/day", Trace: Diesel, Xs: newFileXs, Apply: sweepNewFiles},
		{ID: "fig2c", Title: "Fig 2(c): delivery vs file TTL (DieselNet)",
			XLabel: "TTL (days)", Trace: Diesel, Xs: ttlXs, Apply: sweepTTL},
		{ID: "fig2d", Title: "Fig 2(d): delivery vs metadata per contact (DieselNet)",
			XLabel: "metadata/contact", Trace: Diesel, Xs: budgetXs, Apply: sweepMetadataBudget},
		{ID: "fig2e", Title: "Fig 2(e): delivery vs files per contact (DieselNet)",
			XLabel: "files/contact", Trace: Diesel, Xs: budgetXs, Apply: sweepFileBudget},
		{ID: "fig3a", Title: "Fig 3(a): delivery vs Internet-access nodes (NUS)",
			XLabel: "internet-access fraction", Trace: NUS, Xs: internetXs, Apply: sweepInternet},
		{ID: "fig3b", Title: "Fig 3(b): delivery vs new files per day (NUS)",
			XLabel: "new files/day", Trace: NUS, Xs: newFileXs, Apply: sweepNewFiles},
		{ID: "fig3c", Title: "Fig 3(c): delivery vs file TTL (NUS)",
			XLabel: "TTL (days)", Trace: NUS, Xs: ttlXs, Apply: sweepTTL},
		{ID: "fig3d", Title: "Fig 3(d): delivery vs metadata per contact (NUS)",
			XLabel: "metadata/contact", Trace: NUS, Xs: budgetXs, Apply: sweepMetadataBudget},
		{ID: "fig3e", Title: "Fig 3(e): delivery vs files per contact (NUS)",
			XLabel: "files/contact", Trace: NUS, Xs: budgetXs, Apply: sweepFileBudget},
		{ID: "fig3f", Title: "Fig 3(f): delivery vs attendance rate (NUS)",
			XLabel: "attendance rate", Trace: NUS, Xs: attendXs, Apply: sweepAttendance},
	}
}

// Definition returns the panel with the given id.
func Lookup(id string) (Definition, error) {
	for _, d := range Definitions() {
		if d.ID == id {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("experiment: unknown definition %q", id)
}

// baseTraceConfigs returns the generator configs for the options.
func baseTraceConfigs(opts Options) (tracegen.NUSConfig, tracegen.DieselConfig) {
	nus := tracegen.DefaultNUS()
	diesel := tracegen.DefaultDiesel()
	nus.Seed, diesel.Seed = opts.Seed, opts.Seed
	if opts.Small {
		nus.Students, nus.Classes, nus.Days = 60, 12, 7
		diesel.Buses, diesel.Routes, diesel.Days = 20, 4, 7
	}
	return nus, diesel
}

// buildTrace generates the trace for a (possibly x-modified) config pair.
func buildTrace(kind TraceKind, nus tracegen.NUSConfig, diesel tracegen.DieselConfig) (*trace.Trace, error) {
	switch kind {
	case Diesel:
		return tracegen.Diesel(diesel)
	case NUS:
		return tracegen.NUS(nus)
	default:
		return nil, errors.New("experiment: unknown trace kind")
	}
}

// frequencyFor returns the frequent-contact threshold per trace. The
// paper uses "at least every three days" for DieselNet and "at least once
// per day" for the (much denser) real NUS trace; our scaled-down campus
// has classes meeting twice a week, so classmates sharing a course meet
// ~0.29 times/day — the threshold is scaled accordingly so that
// classmates (and only regular contacts) qualify, preserving the rule's
// intent.
func frequencyFor(kind TraceKind) float64 {
	if kind == NUS {
		return 0.25
	}
	return 1.0 / 3
}

// Run executes one panel: for every x and every protocol variant, build
// the trace and config, run the simulation (averaged over opts.Seeds
// seeds), and record the ratios.
func Run(def Definition, opts Options) (*Series, error) {
	s := &Series{
		ID:     def.ID,
		Title:  def.Title,
		XLabel: def.XLabel,
		Trace:  def.Trace,
	}
	seeds := opts.seedList()
	for _, x := range def.Xs {
		point := Point{X: x, Cells: make(map[core.Variant]Cell, 3)}
		metaSamples := make(map[core.Variant][]float64, 3)
		fileSamples := make(map[core.Variant][]float64, 3)
		for _, seed := range seeds {
			seedOpts := opts
			seedOpts.Seed = seed
			nus, diesel := baseTraceConfigs(seedOpts)

			// Apply may adjust the trace configs (e.g. attendance); run
			// it once against a throwaway config, then build the trace.
			var probe core.Config
			def.Apply(x, &probe, &nus, &diesel)

			tr, err := buildTrace(def.Trace, nus, diesel)
			if err != nil {
				return nil, fmt.Errorf("%s at x=%v: %w", def.ID, x, err)
			}
			for _, v := range core.Variants() {
				cfg := core.DefaultConfig(tr)
				cfg.Seed = seed
				cfg.Workload.Seed = seed
				cfg.Variant = v
				cfg.FrequentContactsPerDay = frequencyFor(def.Trace)
				if opts.Small {
					cfg.Workload.NewFilesPerDay = 20
				}
				def.Apply(x, &cfg, &nus, &diesel)
				res, err := core.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("%s at x=%v %s: %w", def.ID, x, v, err)
				}
				metaSamples[v] = append(metaSamples[v], res.MetadataRatio)
				fileSamples[v] = append(fileSamples[v], res.FileRatio)
			}
		}
		for _, v := range core.Variants() {
			meta := stats.Summarize(metaSamples[v])
			file := stats.Summarize(fileSamples[v])
			point.Cells[v] = Cell{MetadataRatio: meta.Mean, FileRatio: file.Mean}
			if len(seeds) > 1 {
				if point.CI == nil {
					point.CI = make(map[core.Variant]Cell, 3)
				}
				point.CI[v] = Cell{MetadataRatio: meta.CI95(), FileRatio: file.CI95()}
			}
		}
		s.Points = append(s.Points, point)
	}
	return s, nil
}

// RunAll executes every panel, optionally in parallel (opts.Workers).
// Results come back in Definitions() order regardless of scheduling.
func RunAll(opts Options) ([]*Series, error) {
	defs := Definitions()
	out := make([]*Series, len(defs))
	errs := make([]error, len(defs))

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(defs) {
		workers = len(defs)
	}

	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range jobs {
				out[i], errs[i] = Run(defs[i], opts)
			}
		}()
	}
	for i := range defs {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Table renders the series as an aligned text table: one row per x with
// metadata and file ratios per protocol.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-22s", s.XLabel)
	for _, v := range core.Variants() {
		fmt.Fprintf(&b, " %10s-meta %10s-file", v, v)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-22.3g", p.X)
		for _, v := range core.Variants() {
			c := p.Cells[v]
			fmt.Fprintf(&b, " %15.3f %15.3f", c.MetadataRatio, c.FileRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, v := range core.Variants() {
		fmt.Fprintf(&b, ",%s_meta,%s_file", v, v)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g", p.X)
		for _, v := range core.Variants() {
			c := p.Cells[v]
			fmt.Fprintf(&b, ",%.4f,%.4f", c.MetadataRatio, c.FileRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
