package experiment

import (
	"strings"
	"testing"
)

// FuzzParseCSV feeds ParseCSV arbitrary input — it must reject or accept
// without panicking — and checks the render/parse round trip: any CSV it
// accepts must re-render (Series.CSV) and re-parse to a fixed point.
func FuzzParseCSV(f *testing.F) {
	// Seed the corpus with a real panel CSV from an actual sweep, plus
	// hand-picked edge shapes.
	def, err := Lookup("fig2a")
	if err != nil {
		f.Fatal(err)
	}
	def.Xs = def.Xs[:2]
	s, err := Run(def, Options{Seed: 1, Small: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(s.CSV())
	header := "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n"
	f.Add(header)
	f.Add(header + "1,0.5,0.4,0.3,0.2,0.1,0.1\n")
	f.Add(header + "0.5,NaN,+Inf,-Inf,1e300,-0,0.1\n")
	f.Add(header + " 1 ,\t0.5,0.4,0.3,0.2,0.1,0.1\r\n")
	f.Add("")
	f.Add("x\n1\n")
	f.Add(strings.Repeat(",", 6) + "\n")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := ParseCSV("fig3a", data)
		if err != nil {
			return // rejected without panicking: fine
		}
		out := parsed.CSV()
		again, err := ParseCSV("fig3a", out)
		if err != nil {
			t.Fatalf("re-parse of rendered CSV failed: %v\ninput: %q\nrendered:\n%s", err, data, out)
		}
		if got := again.CSV(); got != out {
			t.Fatalf("render/parse not a fixed point:\nfirst:\n%s\nsecond:\n%s", out, got)
		}
		if len(again.Points) != len(parsed.Points) {
			t.Fatalf("round trip changed point count: %d vs %d",
				len(again.Points), len(parsed.Points))
		}
	})
}
