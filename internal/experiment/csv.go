package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseCSV reconstructs a Series from the CSV format produced by
// Series.CSV, so saved results can be re-rendered (tables, charts)
// without re-running the simulations. The id names the panel; its
// definition supplies title and axis labels when known.
func ParseCSV(id string, data string) (*Series, error) {
	s := &Series{ID: id, Title: id, XLabel: "x"}
	if def, err := Lookup(id); err == nil {
		s.Title, s.XLabel, s.Trace = def.Title, def.XLabel, def.Trace
	}

	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("experiment: empty CSV for %s", id)
	}
	header := strings.Split(lines[0], ",")
	wantCols := 1 + 2*len(core.Variants())
	if len(header) != wantCols || header[0] != "x" {
		return nil, fmt.Errorf("experiment: unexpected CSV header %q", lines[0])
	}
	for lineNo, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != wantCols {
			return nil, fmt.Errorf("experiment: row %d has %d columns, want %d",
				lineNo+2, len(cols), wantCols)
		}
		vals := make([]float64, len(cols))
		for i, c := range cols {
			v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if err != nil {
				return nil, fmt.Errorf("experiment: row %d column %d: %w", lineNo+2, i+1, err)
			}
			vals[i] = v
		}
		p := Point{X: vals[0], Cells: make(map[core.Variant]Cell, 3)}
		for i, v := range core.Variants() {
			p.Cells[v] = Cell{
				MetadataRatio: vals[1+2*i],
				FileRatio:     vals[2+2*i],
			}
		}
		s.Points = append(s.Points, p)
	}
	return s, nil
}
