package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunStats aggregates per-run instrumentation over one sweep invocation:
// how much work the pool did and how well it parallelized. Wall-clock
// numbers vary run to run; everything else is deterministic for a fixed
// sweep and seed.
type RunStats struct {
	// Runs is the number of simulations executed (including failures).
	Runs int
	// Failed is the number of simulations that returned an error.
	Failed int
	// Workers is the pool size the sweep actually used.
	Workers int
	// Wall is the wall-clock duration of the whole sweep.
	Wall time.Duration
	// SimWall sums the per-run wall times across all cells — the serial
	// cost of the sweep; SimWall/Wall estimates the achieved speedup.
	SimWall time.Duration
	// Events is the total number of discrete events fired.
	Events int
	// MetadataBroadcasts and PieceBroadcasts sum the DTN transmissions
	// across all runs.
	MetadataBroadcasts int
	PieceBroadcasts    int
}

// Speedup estimates the parallel speedup achieved: total simulation time
// over sweep wall time (0 if the sweep did not run).
func (st RunStats) Speedup() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.SimWall) / float64(st.Wall)
}

// String renders a one-line summary for the experiments CLI.
func (st RunStats) String() string {
	return fmt.Sprintf(
		"%d runs (%d failed) on %d workers: wall %v, sim %v (%.1fx), %d events, %d metadata + %d piece broadcasts",
		st.Runs, st.Failed, st.Workers,
		st.Wall.Round(time.Millisecond), st.SimWall.Round(time.Millisecond), st.Speedup(),
		st.Events, st.MetadataBroadcasts, st.PieceBroadcasts)
}

// cellSeed derives the simulation seed for one sweep cell from its
// coordinates — the sweep seed, the panel id, the x index, and the seed
// index — never from iteration order, so results are identical for any
// worker count and scheduling. The protocol variant is deliberately
// excluded: the paper's figures compare MBT, MBT-Q and MBT-QM on
// identical scenarios (trace, node roles, workload), so the three
// variants of a cell group must draw the same seed.
func cellSeed(sweep uint64, panelID string, xIdx, seedIdx int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	word(sweep)
	for i := 0; i < len(panelID); i++ {
		h = (h ^ uint64(panelID[i])) * prime64
	}
	word(uint64(xIdx))
	word(uint64(seedIdx))
	// SplitMix64 finalizer: FNV output is well distributed in the low
	// bits but the simulation seeds several generators from one value,
	// so run it through a full-avalanche mixer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// workerCount resolves Options.Workers (<= 0 means one per CPU) and caps
// it at the job count.
func workerCount(opts Options, jobs int) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// traceShare lazily builds the trace for one (panel, x, seed) cell
// group. The three variant cells of the group share one generation: the
// first worker to reach the group builds, the rest reuse. Generation is
// a pure function of the group's coordinates, so which worker builds is
// irrelevant to the result.
type traceShare struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// cell identifies one simulation of a sweep: one (panel, x, variant,
// seed) coordinate of the evaluation grid.
type cell struct {
	def                               *Definition
	defIdx, xIdx, variantIdx, seedIdx int
	variant                           core.Variant
	share                             *traceShare
}

// cellResult holds one simulation's measurements and instrumentation.
type cellResult struct {
	meta, file  float64
	events      int
	metaBcasts  int
	pieceBcasts int
	wall        time.Duration
	err         error
}

// runCell executes one cell: build (or reuse) the trace, assemble the
// config, run the simulation.
func runCell(c cell, opts Options) cellResult {
	start := time.Now()
	seed := cellSeed(opts.Seed, c.def.ID, c.xIdx, c.seedIdx)
	x := c.def.Xs[c.xIdx]

	c.share.once.Do(func() {
		nus, diesel := baseTraceConfigs(opts, seed)
		// Apply may adjust the trace configs (e.g. attendance); run it
		// once against a throwaway config, then build the trace.
		var probe core.Config
		c.def.Apply(x, &probe, &nus, &diesel)
		c.share.tr, c.share.err = buildTrace(c.def.Trace, nus, diesel)
	})
	if c.share.err != nil {
		return cellResult{
			wall: time.Since(start),
			err:  fmt.Errorf("%s at x=%v %s: %w", c.def.ID, x, c.variant, c.share.err),
		}
	}

	cfg := core.DefaultConfig(c.share.tr)
	cfg.Seed = seed
	cfg.Workload.Seed = seed
	cfg.Variant = c.variant
	cfg.FrequentContactsPerDay = frequencyFor(c.def.Trace)
	if opts.Small {
		cfg.Workload.NewFilesPerDay = 20
	}
	// Apply against private trace configs: the cfg side of Apply must run
	// per cell, and the trace side must not race with other cells.
	nus, diesel := baseTraceConfigs(opts, seed)
	c.def.Apply(x, &cfg, &nus, &diesel)

	res, err := core.Run(cfg)
	if err != nil {
		return cellResult{
			wall: time.Since(start),
			err:  fmt.Errorf("%s at x=%v %s: %w", c.def.ID, x, c.variant, err),
		}
	}
	return cellResult{
		meta:        res.MetadataRatio,
		file:        res.FileRatio,
		events:      res.Events,
		metaBcasts:  res.MetadataBroadcasts,
		pieceBcasts: res.PieceBroadcasts,
		wall:        time.Since(start),
	}
}

// RunSweep executes the definitions' full (panel × x × variant × seed)
// grid as independent jobs on one shared worker pool and assembles the
// per-panel series deterministically: every cell's seed derives from its
// coordinates, samples aggregate in seed order, and panels come back in
// definition order, so output is byte-identical for any Workers value.
//
// Cell errors are collected with errors.Join rather than aborting the
// sweep; panels whose cells all succeeded are returned (in order, failed
// panels nil) alongside the joined error.
func RunSweep(defs []Definition, opts Options) ([]*Series, *RunStats, error) {
	start := time.Now()
	seeds := opts.seedList()
	variants := core.Variants()

	// Enumerate every cell of the grid, grouping the variant cells of
	// each (panel, x, seed) coordinate around one shared trace build.
	var cells []cell
	results := make([][][][]cellResult, len(defs)) // [def][x][seed][variant]
	for di := range defs {
		def := &defs[di]
		results[di] = make([][][]cellResult, len(def.Xs))
		for xi := range def.Xs {
			results[di][xi] = make([][]cellResult, len(seeds))
			for si := range seeds {
				results[di][xi][si] = make([]cellResult, len(variants))
				share := &traceShare{}
				for vi, v := range variants {
					cells = append(cells, cell{
						def: def, defIdx: di, xIdx: xi,
						variantIdx: vi, seedIdx: si,
						variant: v, share: share,
					})
				}
			}
		}
	}

	workers := workerCount(opts, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cells[i]
				results[c.defIdx][c.xIdx][c.seedIdx][c.variantIdx] = runCell(c, opts)
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Assemble: aggregate instrumentation, join errors, average samples
	// in seed-index order.
	st := &RunStats{Workers: workers}
	out := make([]*Series, len(defs))
	var errs []error
	for di := range defs {
		def := &defs[di]
		s := &Series{ID: def.ID, Title: def.Title, XLabel: def.XLabel, Trace: def.Trace}
		ok := true
		for xi, x := range def.Xs {
			point := Point{X: x, Cells: make(map[core.Variant]Cell, len(variants))}
			metaSamples := make(map[core.Variant][]float64, len(variants))
			fileSamples := make(map[core.Variant][]float64, len(variants))
			for si := range seeds {
				for vi, v := range variants {
					r := results[di][xi][si][vi]
					st.Runs++
					st.SimWall += r.wall
					if r.err != nil {
						st.Failed++
						errs = append(errs, r.err)
						ok = false
						continue
					}
					st.Events += r.events
					st.MetadataBroadcasts += r.metaBcasts
					st.PieceBroadcasts += r.pieceBcasts
					metaSamples[v] = append(metaSamples[v], r.meta)
					fileSamples[v] = append(fileSamples[v], r.file)
				}
			}
			if !ok {
				continue
			}
			for _, v := range variants {
				meta := stats.Summarize(metaSamples[v])
				file := stats.Summarize(fileSamples[v])
				point.Cells[v] = Cell{MetadataRatio: meta.Mean, FileRatio: file.Mean}
				if len(seeds) > 1 {
					if point.CI == nil {
						point.CI = make(map[core.Variant]Cell, len(variants))
					}
					point.CI[v] = Cell{MetadataRatio: meta.CI95(), FileRatio: file.CI95()}
				}
			}
			s.Points = append(s.Points, point)
		}
		if ok {
			out[di] = s
		}
	}
	st.Wall = time.Since(start)
	return out, st, errors.Join(errs...)
}
