package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tracegen"
)

func TestDefinitionsCoverEveryPanel(t *testing.T) {
	want := []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e",
		"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"}
	defs := Definitions()
	if len(defs) != len(want) {
		t.Fatalf("%d definitions, want %d", len(defs), len(want))
	}
	for i, id := range want {
		if defs[i].ID != id {
			t.Errorf("definition %d = %s, want %s", i, defs[i].ID, id)
		}
		if len(defs[i].Xs) < 5 {
			t.Errorf("%s has only %d sweep points", id, len(defs[i].Xs))
		}
		if defs[i].Apply == nil {
			t.Errorf("%s has no Apply", id)
		}
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("fig3f")
	if err != nil || d.ID != "fig3f" {
		t.Fatalf("Lookup(fig3f) = %+v, %v", d, err)
	}
	if _, err := Lookup("fig9z"); err == nil {
		t.Fatal("Lookup(fig9z) accepted")
	}
}

func TestTraceKindString(t *testing.T) {
	if Diesel.String() != "dieselnet" || NUS.String() != "nus" {
		t.Fatal("trace kind names wrong")
	}
	if got := TraceKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind = %q", got)
	}
}

// runSmall runs a panel at test scale with few points.
func runSmall(t *testing.T, id string, xs []float64) *Series {
	t.Helper()
	def, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if xs != nil {
		def.Xs = xs
	}
	s, err := Run(def, Options{Seed: 1, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunProducesAllCells(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.2, 0.8})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if len(p.Cells) != 3 {
			t.Fatalf("point %v has %d cells", p.X, len(p.Cells))
		}
		for v, c := range p.Cells {
			if c.MetadataRatio < 0 || c.MetadataRatio > 1 || c.FileRatio < 0 || c.FileRatio > 1 {
				t.Fatalf("%v ratios out of range: %+v", v, c)
			}
		}
	}
}

func TestInternetSweepShape(t *testing.T) {
	// Fig 3(a)'s qualitative shape: MBT file delivery rises with the
	// fraction of Internet-access nodes.
	s := runSmall(t, "fig3a", []float64{0.1, 0.9})
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.FileRatio <= lo.FileRatio {
		t.Fatalf("MBT file ratio did not rise with internet access: %v -> %v",
			lo.FileRatio, hi.FileRatio)
	}
}

func TestAttendanceSweepRuns(t *testing.T) {
	s := runSmall(t, "fig3f", []float64{0.5, 1.0})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Higher attendance means more contact opportunities; MBT delivery
	// must not collapse.
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.FileRatio < lo.FileRatio {
		t.Fatalf("file ratio fell with attendance: %v -> %v", lo.FileRatio, hi.FileRatio)
	}
}

func TestDieselPanelRuns(t *testing.T) {
	// Each x draws its own derived seed (and thus trace), so single-seed
	// cross-x comparisons are unpaired; average a few seeds to keep the
	// qualitative TTL shape out of the noise.
	def, err := Lookup("fig2c")
	if err != nil {
		t.Fatal(err)
	}
	def.Xs = []float64{1, 5}
	s, err := Run(def, Options{Seed: 1, Seeds: 3, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.FileRatio < lo.FileRatio {
		t.Fatalf("file ratio fell with TTL: %v -> %v", lo.FileRatio, hi.FileRatio)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, "fig3a", []float64{0.5})
	b := runSmall(t, "fig3a", []float64{0.5})
	if a.Points[0].Cells[core.MBT] != b.Points[0].Cells[core.MBT] {
		t.Fatal("identical runs diverged")
	}
}

func TestTableAndCSV(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.5})
	table := s.Table()
	for _, want := range []string{"Fig 3(a)", "MBT-QM", "0.5"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "x,MBT_meta,MBT_file") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if cols := strings.Split(lines[1], ","); len(cols) != 7 {
		t.Fatalf("csv row has %d columns, want 7", len(cols))
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	def, err := Lookup("fig3a")
	if err != nil {
		t.Fatal(err)
	}
	def.Xs = []float64{0.5}
	opts := Options{Seed: 1, Seeds: 2, Small: true}
	avg, err := Run(def, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute both seed-index cells directly and check the sweep
	// reported their mean, plus a CI (multi-seed sweeps must carry one).
	for _, v := range core.Variants() {
		var sum float64
		for si := 0; si < 2; si++ {
			r := runCell(cell{def: &def, xIdx: 0, seedIdx: si, variant: v, share: &traceShare{}}, opts)
			if r.err != nil {
				t.Fatal(r.err)
			}
			sum += r.meta
		}
		want := sum / 2
		got := avg.Points[0].Cells[v].MetadataRatio
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%v averaged meta ratio %v, want %v", v, got, want)
		}
		if avg.Points[0].CI == nil {
			t.Fatalf("multi-seed sweep has no confidence intervals")
		}
	}
}

// onePointDefs shrinks every panel to a single x to keep sweep tests
// quick while still covering every definition.
func onePointDefs() []Definition {
	defs := Definitions()
	for i := range defs {
		defs[i].Xs = defs[i].Xs[:1]
	}
	return defs
}

// sweepCSV concatenates every panel's CSV for byte comparison.
func sweepCSV(series []*Series) string {
	var b strings.Builder
	for _, s := range series {
		if s == nil {
			b.WriteString("<failed>\n")
			continue
		}
		b.WriteString(s.ID)
		b.WriteByte('\n')
		b.WriteString(s.CSV())
	}
	return b.String()
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	seq, _, err := RunSweep(onePointDefs(), Options{Seed: 1, Small: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunSweep(onePointDefs(), Options{Seed: 1, Small: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	if a, b := sweepCSV(seq), sweepCSV(par); a != b {
		t.Fatalf("parallel sweep diverged from sequential:\n%s\nvs\n%s", a, b)
	}
}

func TestPanelDeterministicAcrossWorkers(t *testing.T) {
	// The tentpole guarantee: one panel's CSV is byte-identical whether
	// the pool runs one job at a time or eight.
	var got [2]string
	for i, workers := range []int{1, 8} {
		def, err := Lookup("fig3a")
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(def, Options{Seed: 7, Seeds: 2, Small: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got[i] = s.CSV()
	}
	if got[0] != got[1] {
		t.Fatalf("Workers=1 and Workers=8 CSVs differ:\n%s\nvs\n%s", got[0], got[1])
	}
}

func TestFullSmallSweepRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("full -small sweep is slow")
	}
	// A full -small RunAll twice with the same seed must be equal, with
	// the second run's scheduling scrambled by a different worker count.
	first, err := RunAll(Options{Seed: 1, Small: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunAll(Options{Seed: 1, Small: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sweepCSV(first), sweepCSV(second); a != b {
		t.Fatalf("repeated -small sweeps diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestRunSweepCollectsErrors(t *testing.T) {
	defs := onePointDefs()[:2]
	bad := Definition{
		ID: "figbad", Title: "broken panel", XLabel: "x",
		Trace: TraceKind(99), Xs: []float64{1, 2},
		Apply: func(float64, *core.Config, *tracegen.NUSConfig, *tracegen.DieselConfig) {},
	}
	defs = append(defs, bad)
	out, st, err := RunSweep(defs, Options{Seed: 1, Small: true, Workers: 4})
	if err == nil {
		t.Fatal("sweep with unknown trace kind reported no error")
	}
	// Every cell of the bad panel fails: 2 x-values × 3 variants.
	if !strings.Contains(err.Error(), "figbad at x=1") || !strings.Contains(err.Error(), "figbad at x=2") {
		t.Fatalf("joined error missing per-cell context: %v", err)
	}
	if st.Failed != 6 {
		t.Fatalf("stats.Failed = %d, want 6", st.Failed)
	}
	// Completed panels still come back, in order; the failed one is nil.
	if out[0] == nil || out[1] == nil {
		t.Fatalf("healthy panels dropped: %v", out)
	}
	if out[2] != nil {
		t.Fatalf("failed panel returned a series: %+v", out[2])
	}
}

func TestRunStatsPopulated(t *testing.T) {
	def, err := Lookup("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	def.Xs = def.Xs[:2]
	s, st, err := RunWithStats(def, Options{Seed: 1, Small: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || len(s.Points) != 2 {
		t.Fatalf("series = %+v", s)
	}
	if st.Runs != 2*3 || st.Failed != 0 {
		t.Fatalf("runs = %d failed = %d, want 6/0", st.Runs, st.Failed)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
	if st.Events <= 0 || st.SimWall <= 0 || st.Wall <= 0 {
		t.Fatalf("instrumentation empty: %+v", st)
	}
	if st.MetadataBroadcasts <= 0 || st.PieceBroadcasts <= 0 {
		t.Fatalf("broadcast counters empty: %+v", st)
	}
	if st.Speedup() <= 0 {
		t.Fatalf("speedup = %v", st.Speedup())
	}
	for _, want := range []string{"6 runs", "0 failed", "2 workers", "events"} {
		if !strings.Contains(st.String(), want) {
			t.Fatalf("stats string missing %q: %s", want, st)
		}
	}
}

func TestCellSeed(t *testing.T) {
	base := cellSeed(1, "fig2a", 0, 0)
	// Pure function: same coordinates, same seed.
	if cellSeed(1, "fig2a", 0, 0) != base {
		t.Fatal("cellSeed not deterministic")
	}
	// Every coordinate must perturb the seed.
	for name, other := range map[string]uint64{
		"sweep seed": cellSeed(2, "fig2a", 0, 0),
		"panel id":   cellSeed(1, "fig2b", 0, 0),
		"x index":    cellSeed(1, "fig2a", 1, 0),
		"seed index": cellSeed(1, "fig2a", 0, 1),
	} {
		if other == base {
			t.Errorf("changing %s did not change the seed", name)
		}
	}
}

func TestWorkerCount(t *testing.T) {
	if got := workerCount(Options{Workers: 3}, 100); got != 3 {
		t.Fatalf("explicit workers = %d, want 3", got)
	}
	if got := workerCount(Options{Workers: 100}, 5); got != 5 {
		t.Fatalf("workers not capped at jobs: %d", got)
	}
	if got := workerCount(Options{}, 100); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
	if got := workerCount(Options{Workers: -1}, 0); got != 1 {
		t.Fatalf("empty grid workers = %d, want 1", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.2, 0.8})
	parsed, err := ParseCSV("fig3a", s.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Title != s.Title || parsed.XLabel != s.XLabel {
		t.Fatalf("labels: %q/%q", parsed.Title, parsed.XLabel)
	}
	if len(parsed.Points) != len(s.Points) {
		t.Fatalf("points: %d vs %d", len(parsed.Points), len(s.Points))
	}
	for i := range s.Points {
		if parsed.Points[i].X != s.Points[i].X {
			t.Fatalf("x[%d] = %v vs %v", i, parsed.Points[i].X, s.Points[i].X)
		}
		for _, v := range core.Variants() {
			a, b := parsed.Points[i].Cells[v], s.Points[i].Cells[v]
			if diff := a.MetadataRatio - b.MetadataRatio; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("cell %v meta %v vs %v", v, a.MetadataRatio, b.MetadataRatio)
			}
		}
	}
}

func TestParseCSVUnknownPanelStillWorks(t *testing.T) {
	csv := "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,0.5,0.4,0.3,0.2,0.1,0.1\n"
	s, err := ParseCSV("custom", csv)
	if err != nil {
		t.Fatal(err)
	}
	if s.Title != "custom" || len(s.Points) != 1 {
		t.Fatalf("series = %+v", s)
	}
}

func TestParseCSVErrors(t *testing.T) {
	tests := []struct {
		name, csv string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"short row", "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,2\n"},
		{"bad number", "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,a,b,c,d,e,f\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCSV("fig3a", tt.csv); err == nil {
				t.Fatal("malformed CSV accepted")
			}
		})
	}
}
