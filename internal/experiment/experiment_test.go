package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDefinitionsCoverEveryPanel(t *testing.T) {
	want := []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e",
		"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"}
	defs := Definitions()
	if len(defs) != len(want) {
		t.Fatalf("%d definitions, want %d", len(defs), len(want))
	}
	for i, id := range want {
		if defs[i].ID != id {
			t.Errorf("definition %d = %s, want %s", i, defs[i].ID, id)
		}
		if len(defs[i].Xs) < 5 {
			t.Errorf("%s has only %d sweep points", id, len(defs[i].Xs))
		}
		if defs[i].Apply == nil {
			t.Errorf("%s has no Apply", id)
		}
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("fig3f")
	if err != nil || d.ID != "fig3f" {
		t.Fatalf("Lookup(fig3f) = %+v, %v", d, err)
	}
	if _, err := Lookup("fig9z"); err == nil {
		t.Fatal("Lookup(fig9z) accepted")
	}
}

func TestTraceKindString(t *testing.T) {
	if Diesel.String() != "dieselnet" || NUS.String() != "nus" {
		t.Fatal("trace kind names wrong")
	}
	if got := TraceKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind = %q", got)
	}
}

// runSmall runs a panel at test scale with few points.
func runSmall(t *testing.T, id string, xs []float64) *Series {
	t.Helper()
	def, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if xs != nil {
		def.Xs = xs
	}
	s, err := Run(def, Options{Seed: 1, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunProducesAllCells(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.2, 0.8})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if len(p.Cells) != 3 {
			t.Fatalf("point %v has %d cells", p.X, len(p.Cells))
		}
		for v, c := range p.Cells {
			if c.MetadataRatio < 0 || c.MetadataRatio > 1 || c.FileRatio < 0 || c.FileRatio > 1 {
				t.Fatalf("%v ratios out of range: %+v", v, c)
			}
		}
	}
}

func TestInternetSweepShape(t *testing.T) {
	// Fig 3(a)'s qualitative shape: MBT file delivery rises with the
	// fraction of Internet-access nodes.
	s := runSmall(t, "fig3a", []float64{0.1, 0.9})
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.FileRatio <= lo.FileRatio {
		t.Fatalf("MBT file ratio did not rise with internet access: %v -> %v",
			lo.FileRatio, hi.FileRatio)
	}
}

func TestAttendanceSweepRuns(t *testing.T) {
	s := runSmall(t, "fig3f", []float64{0.5, 1.0})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Higher attendance means more contact opportunities; MBT delivery
	// must not collapse.
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.FileRatio < lo.FileRatio {
		t.Fatalf("file ratio fell with attendance: %v -> %v", lo.FileRatio, hi.FileRatio)
	}
}

func TestDieselPanelRuns(t *testing.T) {
	s := runSmall(t, "fig2c", []float64{1, 5})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	lo := s.Points[0].Cells[core.MBT]
	hi := s.Points[1].Cells[core.MBT]
	if hi.MetadataRatio < lo.MetadataRatio {
		t.Fatalf("metadata ratio fell with TTL: %v -> %v", lo.MetadataRatio, hi.MetadataRatio)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, "fig3a", []float64{0.5})
	b := runSmall(t, "fig3a", []float64{0.5})
	if a.Points[0].Cells[core.MBT] != b.Points[0].Cells[core.MBT] {
		t.Fatal("identical runs diverged")
	}
}

func TestTableAndCSV(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.5})
	table := s.Table()
	for _, want := range []string{"Fig 3(a)", "MBT-QM", "0.5"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "x,MBT_meta,MBT_file") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if cols := strings.Split(lines[1], ","); len(cols) != 7 {
		t.Fatalf("csv row has %d columns, want 7", len(cols))
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	def, err := Lookup("fig3a")
	if err != nil {
		t.Fatal(err)
	}
	def.Xs = []float64{0.5}
	s1, err := Run(def, Options{Seed: 1, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(def, Options{Seed: 2, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Run(def, Options{Seed: 1, Seeds: 2, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range core.Variants() {
		want := (s1.Points[0].Cells[v].MetadataRatio + s2.Points[0].Cells[v].MetadataRatio) / 2
		got := avg.Points[0].Cells[v].MetadataRatio
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%v averaged meta ratio %v, want %v", v, got, want)
		}
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full RunAll is slow")
	}
	// Shrink every panel to a single x to keep this quick.
	seq, err := runAllOnePoint(Options{Seed: 1, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runAllOnePoint(Options{Seed: 1, Small: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		for j := range seq[i].Points {
			for _, v := range core.Variants() {
				if seq[i].Points[j].Cells[v] != par[i].Points[j].Cells[v] {
					t.Fatalf("%s point %d cell %v differs", seq[i].ID, j, v)
				}
			}
		}
	}
}

// runAllOnePoint runs every definition restricted to one x value.
func runAllOnePoint(opts Options) ([]*Series, error) {
	var out []*Series
	type job struct {
		i   int
		def Definition
	}
	defs := Definitions()
	for i := range defs {
		defs[i].Xs = defs[i].Xs[:1]
	}
	results := make([]*Series, len(defs))
	errs := make([]error, len(defs))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan job)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := range jobs {
				results[j.i], errs[j.i] = Run(j.def, opts)
			}
		}()
	}
	for i, d := range defs {
		jobs <- job{i, d}
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out = results
	return out, nil
}

func TestCSVRoundTrip(t *testing.T) {
	s := runSmall(t, "fig3a", []float64{0.2, 0.8})
	parsed, err := ParseCSV("fig3a", s.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Title != s.Title || parsed.XLabel != s.XLabel {
		t.Fatalf("labels: %q/%q", parsed.Title, parsed.XLabel)
	}
	if len(parsed.Points) != len(s.Points) {
		t.Fatalf("points: %d vs %d", len(parsed.Points), len(s.Points))
	}
	for i := range s.Points {
		if parsed.Points[i].X != s.Points[i].X {
			t.Fatalf("x[%d] = %v vs %v", i, parsed.Points[i].X, s.Points[i].X)
		}
		for _, v := range core.Variants() {
			a, b := parsed.Points[i].Cells[v], s.Points[i].Cells[v]
			if diff := a.MetadataRatio - b.MetadataRatio; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("cell %v meta %v vs %v", v, a.MetadataRatio, b.MetadataRatio)
			}
		}
	}
}

func TestParseCSVUnknownPanelStillWorks(t *testing.T) {
	csv := "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,0.5,0.4,0.3,0.2,0.1,0.1\n"
	s, err := ParseCSV("custom", csv)
	if err != nil {
		t.Fatal(err)
	}
	if s.Title != "custom" || len(s.Points) != 1 {
		t.Fatalf("series = %+v", s)
	}
}

func TestParseCSVErrors(t *testing.T) {
	tests := []struct {
		name, csv string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"short row", "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,2\n"},
		{"bad number", "x,MBT_meta,MBT_file,MBT-Q_meta,MBT-Q_file,MBT-QM_meta,MBT-QM_file\n1,a,b,c,d,e,f\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCSV("fig3a", tt.csv); err == nil {
				t.Fatal("malformed CSV accepted")
			}
		})
	}
}
