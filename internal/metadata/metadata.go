// Package metadata defines the file metadata that the discovery protocol
// distributes through the DTN.
//
// Per the paper (§III-B), each file is divided into 256 KB pieces and is
// described by a metadata record carrying the file name, publisher,
// human-readable description, the file's URI, per-piece checksums, and
// authentication information that lets nodes reject metadata from fake
// publishers. Metadata is deliberately much smaller than the file, so it
// can be exchanged during short contacts and stored in bulk.
package metadata

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/search"
	"repro/internal/simtime"
)

// DefaultPieceSize is the paper's piece size: 256 KB.
const DefaultPieceSize = 256 * 1024

// FileID is the dense index of a file in the global catalog maintained by
// the metadata server.
type FileID int

// URI is a file's uniform resource identifier; what discovery finds and
// download fetches.
type URI string

// URIFor derives the canonical URI for a catalog file.
func URIFor(id FileID) URI { return URI(fmt.Sprintf("dtn://files/%d", id)) }

// Metadata describes one published file.
type Metadata struct {
	// URI is the identifier of the described file.
	URI URI
	// Name is the file name users search for.
	Name string
	// Publisher identifies the producing organization.
	Publisher string
	// Description is the advertisement text shown to users.
	Description string
	// Size is the file length in bytes.
	Size int64
	// PieceSize is the piece length in bytes (DefaultPieceSize unless
	// the publisher traded metadata size for piece granularity).
	PieceSize int
	// PieceHashes holds the SHA-1 checksum of each piece.
	PieceHashes [][sha1.Size]byte
	// Created is the publication instant.
	Created simtime.Time
	// Expires is the end of the file's time-to-live; expired metadata is
	// dropped from node storage.
	Expires simtime.Time
	// Signature authenticates the record against fake publishers
	// (HMAC-SHA256 under the publisher's key).
	Signature [sha256.Size]byte

	// tokens caches the tokenized search text for query matching; built
	// lazily on first MatchesQuery and shared by clones. The searchable
	// fields must not change after the first match (published metadata
	// is immutable).
	tokens map[string]bool
}

// Validation errors.
var (
	ErrNoURI        = errors.New("metadata: missing URI")
	ErrBadPieceSize = errors.New("metadata: piece size must be positive")
	ErrBadSize      = errors.New("metadata: size must be positive")
	ErrPieceCount   = errors.New("metadata: piece hash count does not match size")
	ErrTTL          = errors.New("metadata: expiry not after creation")
)

// Validate checks structural invariants.
func (m *Metadata) Validate() error {
	if m.URI == "" {
		return ErrNoURI
	}
	if m.PieceSize <= 0 {
		return ErrBadPieceSize
	}
	if m.Size <= 0 {
		return ErrBadSize
	}
	if len(m.PieceHashes) != m.NumPieces() {
		return fmt.Errorf("%d hashes for %d pieces: %w", len(m.PieceHashes), m.NumPieces(), ErrPieceCount)
	}
	if m.Expires <= m.Created {
		return ErrTTL
	}
	return nil
}

// NumPieces returns the number of pieces the file divides into.
func (m *Metadata) NumPieces() int {
	if m.PieceSize <= 0 {
		return 0
	}
	return int((m.Size + int64(m.PieceSize) - 1) / int64(m.PieceSize))
}

// Expired reports whether the metadata's TTL has passed at now.
func (m *Metadata) Expired(now simtime.Time) bool { return now >= m.Expires }

// SearchText returns the text a keyword query is matched against.
func (m *Metadata) SearchText() string {
	return m.Name + " " + m.Publisher + " " + m.Description
}

// VerifyPiece reports whether data is the correct content for piece i.
func (m *Metadata) VerifyPiece(i int, data []byte) bool {
	if i < 0 || i >= len(m.PieceHashes) {
		return false
	}
	return sha1.Sum(data) == m.PieceHashes[i]
}

// signingPayload serializes the authenticated fields deterministically.
func (m *Metadata) signingPayload() []byte {
	var buf []byte
	appendStr := func(s string) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	appendStr(string(m.URI))
	appendStr(m.Name)
	appendStr(m.Publisher)
	appendStr(m.Description)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Size))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.PieceSize))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Created))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Expires))
	for _, h := range m.PieceHashes {
		buf = append(buf, h[:]...)
	}
	return buf
}

// Sign stores the publisher's authentication tag in m.Signature.
//
// A real deployment would use public-key signatures; HMAC under a
// publisher key preserves the protocol-relevant property — nodes holding
// the publisher's key material can reject forged metadata — with stdlib
// primitives only.
func (m *Metadata) Sign(key []byte) {
	mac := hmac.New(sha256.New, key)
	mac.Write(m.signingPayload())
	copy(m.Signature[:], mac.Sum(nil))
}

// Verify reports whether m.Signature authenticates the record under key.
func (m *Metadata) Verify(key []byte) bool {
	mac := hmac.New(sha256.New, key)
	mac.Write(m.signingPayload())
	return hmac.Equal(mac.Sum(nil), m.Signature[:])
}

// MatchesQuery reports whether every keyword token in query occurs as a
// whole token (case-insensitively) in the metadata's search text. Whole-
// token matching keeps distinct catalog tokens (e.g. "f1" vs "f10") from
// shadowing each other. An empty query matches nothing: the discovery
// protocol only circulates concrete queries.
func (m *Metadata) MatchesQuery(query string) bool {
	keywords := search.Tokenize(query)
	if len(keywords) == 0 {
		return false
	}
	if m.tokens == nil {
		m.tokens = make(map[string]bool)
		for _, tok := range search.Tokenize(m.SearchText()) {
			m.tokens[tok] = true
		}
	}
	for _, kw := range keywords {
		if !m.tokens[kw] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy; node stores hold independent copies so a
// simulated transmission cannot alias peer state.
func (m *Metadata) Clone() *Metadata {
	c := *m
	c.PieceHashes = make([][sha1.Size]byte, len(m.PieceHashes))
	copy(c.PieceHashes, m.PieceHashes)
	return &c
}
