package metadata

import (
	"crypto/sha1"
	"encoding/binary"

	"repro/internal/simtime"
)

// SyntheticPiece deterministically generates the content of piece i of the
// file at uri. The simulator never ships real media, but examples and
// tests exercise the full checksum path with content derived from
// (uri, piece index) so that every piece is unique and reproducible.
func SyntheticPiece(uri URI, i, size int) []byte {
	data := make([]byte, size)
	var seed [sha1.Size]byte
	h := sha1.New()
	h.Write([]byte(uri))
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(i))
	h.Write(idx[:])
	h.Sum(seed[:0])

	// Expand the seed with SHA-1 in counter mode.
	for off := 0; off < size; {
		block := sha1.New()
		block.Write(seed[:])
		binary.BigEndian.PutUint64(idx[:], uint64(off))
		block.Write(idx[:])
		off += copy(data[off:], block.Sum(nil))
	}
	return data
}

// NewSynthetic builds signed metadata for a synthetic file whose pieces
// come from SyntheticPiece, so that VerifyPiece succeeds on generated
// content. size is the file length in bytes; created/ttl set the record's
// lifetime; key signs the record.
func NewSynthetic(id FileID, name, publisher, description string, size int64,
	pieceSize int, created simtime.Time, ttl simtime.Duration, key []byte) *Metadata {
	m := &Metadata{
		URI:         URIFor(id),
		Name:        name,
		Publisher:   publisher,
		Description: description,
		Size:        size,
		PieceSize:   pieceSize,
		Created:     created,
		Expires:     created.Add(ttl),
	}
	n := m.NumPieces()
	m.PieceHashes = make([][sha1.Size]byte, n)
	for i := 0; i < n; i++ {
		m.PieceHashes[i] = sha1.Sum(SyntheticPiece(m.URI, i, m.pieceLen(i)))
	}
	m.Sign(key)
	return m
}

// pieceLen returns the byte length of piece i (the final piece may be
// short).
func (m *Metadata) pieceLen(i int) int {
	if i < m.NumPieces()-1 {
		return m.PieceSize
	}
	rem := int(m.Size % int64(m.PieceSize))
	if rem == 0 {
		return m.PieceSize
	}
	return rem
}

// PieceLen returns the byte length of piece i, or 0 if i is out of range.
func (m *Metadata) PieceLen(i int) int {
	if i < 0 || i >= m.NumPieces() {
		return 0
	}
	return m.pieceLen(i)
}
