package metadata

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

var testKey = []byte("publisher-key")

func sample() *Metadata {
	return NewSynthetic(7, "Nature Documentary S01E01", "FOX",
		"Wildlife in the savanna, episode one", 600*1024, DefaultPieceSize,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), testKey)
}

func TestNewSyntheticValid(t *testing.T) {
	m := sample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.URI != "dtn://files/7" {
		t.Fatalf("URI = %q", m.URI)
	}
	if got := m.NumPieces(); got != 3 {
		t.Fatalf("NumPieces = %d, want 3 for 600KB/256KB", got)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Metadata)
		wantErr error
	}{
		{"no URI", func(m *Metadata) { m.URI = "" }, ErrNoURI},
		{"bad piece size", func(m *Metadata) { m.PieceSize = 0 }, ErrBadPieceSize},
		{"bad size", func(m *Metadata) { m.Size = 0 }, ErrBadSize},
		{"hash count", func(m *Metadata) { m.PieceHashes = m.PieceHashes[:1] }, ErrPieceCount},
		{"ttl", func(m *Metadata) { m.Expires = m.Created }, ErrTTL},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := sample()
			tt.mutate(m)
			if err := m.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNumPieces(t *testing.T) {
	tests := []struct {
		size      int64
		pieceSize int
		want      int
	}{
		{1, 256, 1},
		{256, 256, 1},
		{257, 256, 2},
		{512, 256, 2},
		{600 * 1024, DefaultPieceSize, 3},
	}
	for _, tt := range tests {
		m := Metadata{Size: tt.size, PieceSize: tt.pieceSize}
		if got := m.NumPieces(); got != tt.want {
			t.Errorf("NumPieces(size=%d, piece=%d) = %d, want %d",
				tt.size, tt.pieceSize, got, tt.want)
		}
	}
	var zero Metadata
	if zero.NumPieces() != 0 {
		t.Error("zero metadata must have zero pieces")
	}
}

func TestPieceLen(t *testing.T) {
	m := Metadata{Size: 600, PieceSize: 256}
	if got := m.PieceLen(0); got != 256 {
		t.Fatalf("PieceLen(0) = %d", got)
	}
	if got := m.PieceLen(2); got != 88 {
		t.Fatalf("PieceLen(2) = %d, want 88", got)
	}
	if got := m.PieceLen(3); got != 0 {
		t.Fatalf("PieceLen(3) = %d, want 0", got)
	}
	if got := m.PieceLen(-1); got != 0 {
		t.Fatalf("PieceLen(-1) = %d, want 0", got)
	}
	exact := Metadata{Size: 512, PieceSize: 256}
	if got := exact.PieceLen(1); got != 256 {
		t.Fatalf("exact-multiple final piece = %d, want 256", got)
	}
}

func TestExpired(t *testing.T) {
	m := sample()
	if m.Expired(m.Created) {
		t.Fatal("expired at creation")
	}
	if !m.Expired(m.Expires) {
		t.Fatal("not expired at expiry instant")
	}
	if !m.Expired(m.Expires + 1) {
		t.Fatal("not expired after expiry")
	}
}

func TestVerifyPiece(t *testing.T) {
	m := sample()
	for i := 0; i < m.NumPieces(); i++ {
		data := SyntheticPiece(m.URI, i, m.PieceLen(i))
		if !m.VerifyPiece(i, data) {
			t.Fatalf("genuine piece %d rejected", i)
		}
	}
	bad := SyntheticPiece(m.URI, 0, m.PieceLen(0))
	bad[0] ^= 0xff
	if m.VerifyPiece(0, bad) {
		t.Fatal("corrupted piece accepted")
	}
	if m.VerifyPiece(99, nil) || m.VerifyPiece(-1, nil) {
		t.Fatal("out-of-range piece accepted")
	}
}

func TestSyntheticPieceDeterministicAndDistinct(t *testing.T) {
	a := SyntheticPiece("dtn://files/1", 0, 1024)
	b := SyntheticPiece("dtn://files/1", 0, 1024)
	if string(a) != string(b) {
		t.Fatal("SyntheticPiece not deterministic")
	}
	c := SyntheticPiece("dtn://files/1", 1, 1024)
	if string(a) == string(c) {
		t.Fatal("pieces 0 and 1 identical")
	}
	d := SyntheticPiece("dtn://files/2", 0, 1024)
	if string(a) == string(d) {
		t.Fatal("same piece of different files identical")
	}
}

func TestSignVerify(t *testing.T) {
	m := sample()
	if !m.Verify(testKey) {
		t.Fatal("genuine signature rejected")
	}
	if m.Verify([]byte("attacker-key")) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Metadata)
	}{
		{"name", func(m *Metadata) { m.Name = "Fake " + m.Name }},
		{"publisher", func(m *Metadata) { m.Publisher = "EVIL" }},
		{"description", func(m *Metadata) { m.Description = "malware" }},
		{"uri", func(m *Metadata) { m.URI = "dtn://files/666" }},
		{"size", func(m *Metadata) { m.Size++ }},
		{"expiry", func(m *Metadata) { m.Expires++ }},
		{"piece hash", func(m *Metadata) { m.PieceHashes[0][0] ^= 1 }},
		{"signature", func(m *Metadata) { m.Signature[0] ^= 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := sample()
			tt.mutate(m)
			if m.Verify(testKey) {
				t.Fatal("tampered metadata verified")
			}
		})
	}
}

func TestMatchesQuery(t *testing.T) {
	m := sample()
	tests := []struct {
		query string
		want  bool
	}{
		{"nature", true},
		{"NATURE", true},
		{"nature documentary", true},
		{"savanna fox", true}, // publisher text matches too
		{"documentary basketball", false},
		{"", false},
		{"   ", false},
		{"s01e01", true},
		{"wildlife episode", true},
	}
	for _, tt := range tests {
		if got := m.MatchesQuery(tt.query); got != tt.want {
			t.Errorf("MatchesQuery(%q) = %v, want %v", tt.query, got, tt.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sample()
	c := m.Clone()
	c.PieceHashes[0][0] ^= 0xff
	c.Name = "changed"
	if m.PieceHashes[0][0] == c.PieceHashes[0][0] {
		t.Fatal("clone shares piece hash storage")
	}
	if m.Name == c.Name {
		t.Fatal("clone shares name")
	}
}

func TestURIFor(t *testing.T) {
	if got := URIFor(42); got != "dtn://files/42" {
		t.Fatalf("URIFor(42) = %q", got)
	}
}

func TestSignVerifyProperty(t *testing.T) {
	f := func(name, publisher string, size uint16, keyA, keyB []byte) bool {
		if len(keyA) == 0 || len(keyB) == 0 || string(keyA) == string(keyB) {
			return true // skip degenerate inputs
		}
		m := NewSynthetic(1, name, publisher, "d", int64(size)+1, 128,
			0, simtime.Day, keyA)
		return m.Verify(keyA) && !m.Verify(keyB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
