package routing

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// lineTrace builds sessions 0-1, 1-2, ..., so messages must be relayed.
func lineTrace(hops int) *trace.Trace {
	tr := &trace.Trace{Name: "line", NodeCount: hops + 1}
	for i := 0; i < hops; i++ {
		start := simtime.Time(i+1) * simtime.Time(simtime.Hour)
		tr.Sessions = append(tr.Sessions, trace.Session{
			Start: start,
			End:   start.Add(simtime.Minute),
			Nodes: []trace.NodeID{trace.NodeID(i), trace.NodeID(i + 1)},
		})
	}
	return tr
}

func oneMessage(src, dst trace.NodeID, ttl simtime.Duration) []Message {
	return []Message{{ID: 0, Src: src, Dst: dst, Created: 0, Expires: simtime.Time(ttl)}}
}

func TestEpidemicRelaysAlongLine(t *testing.T) {
	res, err := Simulate(Config{
		Trace:    lineTrace(4),
		Messages: oneMessage(0, 4, simtime.Days(1)),
		Protocol: Epidemic{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 {
		t.Fatalf("epidemic failed on a line: %+v", res)
	}
	if res.Transmissions != 4 {
		t.Fatalf("transmissions = %d, want 4 hops", res.Transmissions)
	}
	if res.MeanDelay != 4*simtime.Hour {
		t.Fatalf("delay = %v, want 4h", res.MeanDelay)
	}
}

func TestDirectCannotRelay(t *testing.T) {
	res, err := Simulate(Config{
		Trace:    lineTrace(4),
		Messages: oneMessage(0, 4, simtime.Days(1)),
		Protocol: Direct{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("direct delivered without meeting the destination: %+v", res)
	}
}

func TestDirectDeliversOnMeeting(t *testing.T) {
	tr := &trace.Trace{Name: "pair", NodeCount: 2, Sessions: []trace.Session{
		{Start: 10, End: 20, Nodes: []trace.NodeID{0, 1}},
	}}
	res, err := Simulate(Config{
		Trace:    tr,
		Messages: oneMessage(0, 1, simtime.Days(1)),
		Protocol: Direct{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Transmissions != 1 {
		t.Fatalf("direct meeting result: %+v", res)
	}
}

func TestTTLExpiryBlocksDelivery(t *testing.T) {
	res, err := Simulate(Config{
		Trace:    lineTrace(4),
		Messages: oneMessage(0, 4, 90*simtime.Minute), // expires before hop 2
		Protocol: Epidemic{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("expired message delivered: %+v", res)
	}
}

func TestMessageNotRoutedBeforeCreation(t *testing.T) {
	msgs := []Message{{
		ID: 0, Src: 0, Dst: 4,
		Created: simtime.Time(2*simtime.Hour + simtime.Minute),
		Expires: simtime.Time(simtime.Days(1)),
	}}
	res, err := Simulate(Config{Trace: lineTrace(4), Messages: msgs, Protocol: Epidemic{}})
	if err != nil {
		t.Fatal(err)
	}
	// Contacts 0-1 (t=1h) and 1-2 (t=2h) precede creation at the source,
	// so the message can never progress past them.
	if res.Delivered != 0 {
		t.Fatalf("message travelled before creation: %+v", res)
	}
}

func TestSprayAndWaitTokenLimit(t *testing.T) {
	// A star around node 0: it meets nodes 1..6, none of which is the
	// destination (7, never met). With L=4, binary spray gives tokens to
	// at most 3 relays (4 -> 2+2 -> ... bounded copies).
	tr := &trace.Trace{Name: "star", NodeCount: 8}
	for i := 1; i <= 6; i++ {
		start := simtime.Time(i) * simtime.Time(simtime.Hour)
		tr.Sessions = append(tr.Sessions, trace.Session{
			Start: start,
			End:   start.Add(simtime.Minute),
			Nodes: []trace.NodeID{0, trace.NodeID(i)},
		})
	}
	s := &SprayAndWait{L: 4}
	res, err := Simulate(Config{
		Trace:    tr,
		Messages: oneMessage(0, 7, simtime.Days(1)),
		Protocol: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tokens at src: gives 2, then 1; then waits. 2 transmissions.
	if res.Transmissions != 2 {
		t.Fatalf("transmissions = %d, want 2 under L=4 binary spray", res.Transmissions)
	}
}

func TestSprayAndWaitDefaultsLToOne(t *testing.T) {
	s := &SprayAndWait{}
	s.Init(2, oneMessage(0, 1, simtime.Day))
	if s.L != 1 {
		t.Fatalf("L = %d, want clamped to 1", s.L)
	}
}

func TestProphetLearnsAndForwards(t *testing.T) {
	p := &Prophet{}
	p.Init(3, nil)
	// b meets the destination c often; a never does.
	for i := 0; i < 5; i++ {
		p.Encounter(simtime.Time(i)*simtime.Time(simtime.Minute), 1, 2)
	}
	if p.Predictability(1, 2) <= p.Predictability(0, 2) {
		t.Fatal("encounters did not raise predictability")
	}
	give, keep := p.Relay(0, 0, 1, &Message{ID: 0, Src: 0, Dst: 2})
	if !give || !keep {
		t.Fatalf("Relay to better custodian = (%v,%v), want (true,true)", give, keep)
	}
	give, _ = p.Relay(0, 1, 0, &Message{ID: 0, Src: 1, Dst: 2})
	if give {
		t.Fatal("Relay to worse custodian accepted")
	}
}

func TestProphetTransitivity(t *testing.T) {
	p := &Prophet{}
	p.Init(3, nil)
	p.Encounter(0, 1, 2) // b knows c
	p.Encounter(simtime.Time(simtime.Minute), 0, 1)
	if p.Predictability(0, 2) == 0 {
		t.Fatal("transitivity did not propagate predictability")
	}
}

func TestProphetAging(t *testing.T) {
	p := &Prophet{}
	p.Init(2, nil)
	p.Encounter(0, 0, 1)
	before := p.Predictability(0, 1)
	// A later encounter with aging in between: age first.
	p.age(simtime.Time(simtime.Days(10)), 0)
	after := p.Predictability(0, 1)
	if after >= before {
		t.Fatalf("predictability did not age: %v -> %v", before, after)
	}
}

func TestPerContactBudget(t *testing.T) {
	tr := &trace.Trace{Name: "pair", NodeCount: 3, Sessions: []trace.Session{
		{Start: 10, End: 20, Nodes: []trace.NodeID{0, 1}},
	}}
	var msgs []Message
	for i := 0; i < 5; i++ {
		msgs = append(msgs, Message{ID: i, Src: 0, Dst: 2, Created: 0,
			Expires: simtime.Time(simtime.Day)})
	}
	res, err := Simulate(Config{
		Trace: tr, Messages: msgs, Protocol: Epidemic{}, PerContactBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 2 {
		t.Fatalf("transmissions = %d, want budget 2", res.Transmissions)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := lineTrace(2)
	ok := oneMessage(0, 2, simtime.Day)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil trace", Config{Messages: ok, Protocol: Epidemic{}}},
		{"nil protocol", Config{Trace: tr, Messages: ok}},
		{"bad id", Config{Trace: tr, Protocol: Epidemic{}, Messages: []Message{{ID: 5, Src: 0, Dst: 1, Expires: 1}}}},
		{"self message", Config{Trace: tr, Protocol: Epidemic{}, Messages: []Message{{ID: 0, Src: 1, Dst: 1, Expires: 1}}}},
		{"node range", Config{Trace: tr, Protocol: Epidemic{}, Messages: []Message{{ID: 0, Src: 0, Dst: 99, Expires: 1}}}},
		{"lifetime", Config{Trace: tr, Protocol: Epidemic{}, Messages: []Message{{ID: 0, Src: 0, Dst: 1, Created: 5, Expires: 5}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Simulate(tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestGenerateWorkload(t *testing.T) {
	tr, err := tracegen.Uniform(tracegen.DefaultUniform())
	if err != nil {
		t.Fatal(err)
	}
	msgs := GenerateWorkload(tr, 100, simtime.Day, 1)
	if len(msgs) != 100 {
		t.Fatalf("workload size = %d", len(msgs))
	}
	for i, m := range msgs {
		if m.ID != i {
			t.Fatalf("message %d has ID %d", i, m.ID)
		}
		if m.Src == m.Dst {
			t.Fatalf("message %d is a self-message", i)
		}
		if i > 0 && msgs[i-1].Created > m.Created {
			t.Fatal("workload not sorted by creation")
		}
	}
	// Deterministic per seed.
	again := GenerateWorkload(tr, 100, simtime.Day, 1)
	for i := range msgs {
		if msgs[i] != again[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestProtocolOrderingOnRealTrace(t *testing.T) {
	// Classic DTN result: epidemic >= spray-and-wait and prophet >=
	// direct on delivery ratio; epidemic has the highest overhead.
	cfg := tracegen.DefaultUniform()
	cfg.Nodes, cfg.Sessions, cfg.Days = 25, 800, 7
	tr, err := tracegen.Uniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	msgs := GenerateWorkload(tr, 150, simtime.Days(3), 2)

	results := make(map[string]*Result)
	for _, p := range All() {
		res, err := Simulate(Config{Trace: tr, Messages: msgs, Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		results[res.Protocol] = res
	}
	epidemic, direct := results["epidemic"], results["direct"]
	spray, prophet := results["spray-and-wait"], results["prophet"]

	if epidemic.Ratio < spray.Ratio || epidemic.Ratio < prophet.Ratio || epidemic.Ratio < direct.Ratio {
		t.Fatalf("epidemic is not the ratio upper bound: %+v", results)
	}
	if direct.Ratio > spray.Ratio || direct.Ratio > prophet.Ratio {
		t.Fatalf("direct beats replicating protocols: %+v", results)
	}
	if epidemic.Overhead < spray.Overhead {
		t.Fatalf("epidemic overhead %v below spray %v", epidemic.Overhead, spray.Overhead)
	}
	if direct.Delivered > 0 && direct.Overhead != 1 {
		t.Fatalf("direct overhead = %v, want exactly 1", direct.Overhead)
	}
}

func TestAllProtocolsNamed(t *testing.T) {
	names := make(map[string]bool)
	for _, p := range All() {
		if p.Name() == "" || names[p.Name()] {
			t.Fatalf("bad or duplicate protocol name %q", p.Name())
		}
		names[p.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("protocols = %v", names)
	}
}
