package routing

import (
	"math"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Direct is direct delivery: the source keeps its single copy until it
// meets the destination. The cheapest and slowest baseline.
type Direct struct{}

// Name implements Protocol.
func (Direct) Name() string { return "direct" }

// Init implements Protocol.
func (Direct) Init(int, []Message) {}

// Encounter implements Protocol.
func (Direct) Encounter(simtime.Time, trace.NodeID, trace.NodeID) {}

// Relay implements Protocol: never replicate (delivery to the destination
// is handled by the engine).
func (Direct) Relay(simtime.Time, trace.NodeID, trace.NodeID, *Message) (bool, bool) {
	return false, true
}

// Epidemic floods: every contact copies every message the peer lacks.
// Upper-bounds delivery ratio and delay at maximal overhead.
type Epidemic struct{}

// Name implements Protocol.
func (Epidemic) Name() string { return "epidemic" }

// Init implements Protocol.
func (Epidemic) Init(int, []Message) {}

// Encounter implements Protocol.
func (Epidemic) Encounter(simtime.Time, trace.NodeID, trace.NodeID) {}

// Relay implements Protocol: always replicate, always keep.
func (Epidemic) Relay(simtime.Time, trace.NodeID, trace.NodeID, *Message) (bool, bool) {
	return true, true
}

// SprayAndWait is binary spray-and-wait: L logical copies start at the
// source; a carrier with more than one token gives half to the peer;
// with one token it waits for the destination.
type SprayAndWait struct {
	// L is the initial copy count (must be >= 1).
	L int

	tokens []map[trace.NodeID]int
}

// Name implements Protocol.
func (s *SprayAndWait) Name() string { return "spray-and-wait" }

// Init implements Protocol.
func (s *SprayAndWait) Init(_ int, msgs []Message) {
	if s.L < 1 {
		s.L = 1
	}
	s.tokens = make([]map[trace.NodeID]int, len(msgs))
	for i, m := range msgs {
		s.tokens[i] = map[trace.NodeID]int{m.Src: s.L}
	}
}

// Encounter implements Protocol.
func (s *SprayAndWait) Encounter(simtime.Time, trace.NodeID, trace.NodeID) {}

// Relay implements Protocol: split tokens binarily.
func (s *SprayAndWait) Relay(_ simtime.Time, carrier, peer trace.NodeID, msg *Message) (bool, bool) {
	t := s.tokens[msg.ID][carrier]
	if t <= 1 {
		return false, true // wait phase
	}
	half := t / 2
	s.tokens[msg.ID][carrier] = t - half
	s.tokens[msg.ID][peer] = half
	return true, true
}

// PRoPHET default parameters, from Lindgren et al.
const (
	prophetPInit = 0.75
	prophetBeta  = 0.25
	prophetGamma = 0.98
	// prophetAgingUnit is the time quantum for aging predictabilities.
	prophetAgingUnit = simtime.Hour
)

// Prophet is probabilistic routing using the history of encounters and
// transitivity: each node maintains a delivery predictability per
// destination, aged over time, boosted on encounters, and spread
// transitively; a carrier replicates to peers with strictly higher
// predictability for the destination.
type Prophet struct {
	p        []map[trace.NodeID]float64 // p[a][b] = P(a delivers to b)
	lastAged []simtime.Time
}

// Name implements Protocol.
func (p *Prophet) Name() string { return "prophet" }

// Init implements Protocol.
func (p *Prophet) Init(nodes int, _ []Message) {
	p.p = make([]map[trace.NodeID]float64, nodes)
	p.lastAged = make([]simtime.Time, nodes)
	for i := range p.p {
		p.p[i] = make(map[trace.NodeID]float64)
	}
}

// age decays a node's predictabilities by gamma^k for k elapsed units.
func (p *Prophet) age(now simtime.Time, n trace.NodeID) {
	elapsed := now.Sub(p.lastAged[n])
	if elapsed <= 0 {
		return
	}
	k := float64(elapsed) / float64(prophetAgingUnit)
	factor := math.Pow(prophetGamma, k)
	for dst, v := range p.p[n] {
		v *= factor
		if v < 1e-6 {
			delete(p.p[n], dst)
		} else {
			p.p[n][dst] = v
		}
	}
	p.lastAged[n] = now
}

// Encounter implements Protocol: direct boost plus transitivity.
func (p *Prophet) Encounter(now simtime.Time, a, b trace.NodeID) {
	p.age(now, a)
	p.age(now, b)
	// Direct update both ways.
	p.p[a][b] += (1 - p.p[a][b]) * prophetPInit
	p.p[b][a] += (1 - p.p[b][a]) * prophetPInit
	// Transitivity: P(a,c) >= P(a,b)*P(b,c)*beta and symmetric.
	for c, pbc := range p.p[b] {
		if c == a {
			continue
		}
		if v := p.p[a][b] * pbc * prophetBeta; v > p.p[a][c] {
			p.p[a][c] = v
		}
	}
	for c, pac := range p.p[a] {
		if c == b {
			continue
		}
		if v := p.p[b][a] * pac * prophetBeta; v > p.p[b][c] {
			p.p[b][c] = v
		}
	}
}

// Relay implements Protocol: replicate when the peer is a strictly
// better custodian.
func (p *Prophet) Relay(_ simtime.Time, carrier, peer trace.NodeID, msg *Message) (bool, bool) {
	return p.p[peer][msg.Dst] > p.p[carrier][msg.Dst], true
}

// Predictability exposes P(node delivers to dst) for tests and tools.
func (p *Prophet) Predictability(node, dst trace.NodeID) float64 {
	if int(node) >= len(p.p) {
		return 0
	}
	return p.p[node][dst]
}

// All returns one instance of every protocol, for comparison harnesses.
func All() []Protocol {
	return []Protocol{Direct{}, Epidemic{}, &SprayAndWait{L: 8}, &Prophet{}}
}
