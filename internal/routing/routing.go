// Package routing implements store-carry-forward unicast routing over a
// contact trace — the DTN substrate the paper builds on (§II-A) and the
// mechanism behind the alternative design it contrasts with (sending
// queries to the Internet via DTN nodes, §II-D).
//
// Four classic protocols are provided: direct delivery, epidemic
// flooding, binary spray-and-wait, and PRoPHET (probabilistic routing
// with encounter-history predictabilities). A deterministic simulator
// replays a trace, drives the chosen protocol, and reports delivery
// ratio, delay and transmission overhead.
package routing

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Message is one unicast bundle.
type Message struct {
	// ID is a dense index into the workload.
	ID int
	// Src creates the message; Dst must receive it.
	Src, Dst trace.NodeID
	// Created and Expires bound the message's life.
	Created simtime.Time
	Expires simtime.Time
}

// Protocol decides replication during contacts.
type Protocol interface {
	// Name labels the protocol in results.
	Name() string
	// Init resets protocol state for a population and workload.
	Init(nodes int, msgs []Message)
	// Encounter updates protocol state when a and b meet (called once
	// per unordered pair per session, before relay decisions).
	Encounter(now simtime.Time, a, b trace.NodeID)
	// Relay decides whether carrier gives peer a copy of msg, and
	// whether the carrier keeps its own copy afterwards.
	Relay(now simtime.Time, carrier, peer trace.NodeID, msg *Message) (give, keep bool)
}

// Config parameterizes one routing simulation.
type Config struct {
	// Trace supplies the contact schedule.
	Trace *trace.Trace
	// Messages is the unicast workload (see GenerateWorkload).
	Messages []Message
	// Protocol is the router under test.
	Protocol Protocol
	// PerContactBudget bounds transfers per direction per contact pair
	// (0 = unlimited).
	PerContactBudget int
}

// Result summarizes a routing run.
type Result struct {
	Protocol  string
	Total     int
	Delivered int
	// Ratio is Delivered/Total.
	Ratio float64
	// MeanDelay averages creation-to-delivery over delivered messages.
	MeanDelay simtime.Duration
	// Transmissions counts every copy transfer (including the final
	// delivery hop); Overhead is Transmissions per delivered message.
	Transmissions int
	Overhead      float64
}

// Errors.
var (
	ErrConfig = errors.New("routing: invalid config")
)

// Simulate replays the trace and routes the workload.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrConfig)
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("nil protocol: %w", ErrConfig)
	}
	for i, m := range cfg.Messages {
		if m.ID != i {
			return nil, fmt.Errorf("message %d has ID %d: %w", i, m.ID, ErrConfig)
		}
		if int(m.Src) >= cfg.Trace.NodeCount || int(m.Dst) >= cfg.Trace.NodeCount ||
			m.Src < 0 || m.Dst < 0 || m.Src == m.Dst {
			return nil, fmt.Errorf("message %d endpoints %d->%d: %w", i, m.Src, m.Dst, ErrConfig)
		}
		if m.Expires <= m.Created {
			return nil, fmt.Errorf("message %d lifetime: %w", i, ErrConfig)
		}
	}

	cfg.Protocol.Init(cfg.Trace.NodeCount, cfg.Messages)

	// copies[msg] is the set of holders; deliveredAt[msg] < 0 until done.
	copies := make([]map[trace.NodeID]bool, len(cfg.Messages))
	deliveredAt := make([]simtime.Time, len(cfg.Messages))
	for i, m := range cfg.Messages {
		copies[i] = map[trace.NodeID]bool{m.Src: true}
		deliveredAt[i] = -1
	}
	transmissions := 0

	for _, sess := range cfg.Trace.Sessions {
		now := sess.Start
		for i, a := range sess.Nodes {
			for _, b := range sess.Nodes[i+1:] {
				cfg.Protocol.Encounter(now, a, b)
				transmissions += relayDirection(cfg, now, a, b, copies, deliveredAt)
				transmissions += relayDirection(cfg, now, b, a, copies, deliveredAt)
			}
		}
	}

	res := &Result{
		Protocol:      cfg.Protocol.Name(),
		Total:         len(cfg.Messages),
		Transmissions: transmissions,
	}
	var totalDelay simtime.Duration
	for i, at := range deliveredAt {
		if at >= 0 {
			res.Delivered++
			totalDelay += at.Sub(cfg.Messages[i].Created)
		}
	}
	if res.Total > 0 {
		res.Ratio = float64(res.Delivered) / float64(res.Total)
	}
	if res.Delivered > 0 {
		res.MeanDelay = totalDelay / simtime.Duration(res.Delivered)
		res.Overhead = float64(res.Transmissions) / float64(res.Delivered)
	}
	return res, nil
}

// relayDirection transfers messages from carrier to peer, returning the
// number of transmissions.
func relayDirection(cfg Config, now simtime.Time, carrier, peer trace.NodeID,
	copies []map[trace.NodeID]bool, deliveredAt []simtime.Time) int {
	sent := 0
	for i := range cfg.Messages {
		if cfg.PerContactBudget > 0 && sent >= cfg.PerContactBudget {
			break
		}
		m := &cfg.Messages[i]
		if deliveredAt[i] >= 0 || now < m.Created || now >= m.Expires {
			continue
		}
		holders := copies[i]
		if !holders[carrier] || holders[peer] {
			continue
		}
		if peer == m.Dst {
			deliveredAt[i] = now
			holders[peer] = true
			sent++
			continue
		}
		give, keep := cfg.Protocol.Relay(now, carrier, peer, m)
		if !give {
			continue
		}
		holders[peer] = true
		if !keep {
			delete(holders, carrier)
		}
		sent++
	}
	return sent
}

// GenerateWorkload builds count random unicast messages over the trace's
// population and duration, each with the given TTL.
func GenerateWorkload(tr *trace.Trace, count int, ttl simtime.Duration, seed uint64) []Message {
	r := rng.New(seed)
	span := int(tr.End())
	if span <= 0 {
		span = 1
	}
	msgs := make([]Message, 0, count)
	for i := 0; i < count; i++ {
		src := trace.NodeID(r.Intn(tr.NodeCount))
		dst := trace.NodeID(r.Intn(tr.NodeCount))
		for dst == src {
			dst = trace.NodeID(r.Intn(tr.NodeCount))
		}
		created := simtime.Time(r.Intn(span))
		msgs = append(msgs, Message{
			ID:      i,
			Src:     src,
			Dst:     dst,
			Created: created,
			Expires: created.Add(ttl),
		})
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].Created < msgs[j].Created })
	for i := range msgs {
		msgs[i].ID = i
	}
	return msgs
}
