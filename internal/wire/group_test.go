package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/metadata"
	"repro/internal/trace"
)

func sampleGroupHello() *GroupHello {
	w := *NewGroupWant("dtn://files/3", 3, true)
	w.SetHave(0)
	w.SetHave(2)
	h := *NewGroupWant("dtn://files/9", 12, false)
	for i := 0; i < 12; i++ {
		h.SetHave(i)
	}
	return &GroupHello{
		From:    7,
		Members: []trace.NodeID{3, 7, 11},
		Round:   42,
		Wants:   []GroupWant{w, h},
	}
}

func TestGroupHelloRoundTrip(t *testing.T) {
	g := sampleGroupHello()
	b := EncodeGroupHello(g)
	got, err := DecodeGroupHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", g, got)
	}
	if !got.Wants[0].HaveBit(0) || got.Wants[0].HaveBit(1) || !got.Wants[0].HaveBit(2) {
		t.Fatalf("bitset mangled: %+v", got.Wants[0])
	}
	if got.Wants[0].Complete() {
		t.Fatal("partial want reports complete")
	}
	if !got.Wants[1].Complete() {
		t.Fatal("full holding does not report complete")
	}
	if !bytes.Equal(Encode(got), b) {
		t.Fatal("re-encode mismatch")
	}
}

func TestGroupHelloEmpty(t *testing.T) {
	g := &GroupHello{From: 1}
	got, err := DecodeGroupHello(EncodeGroupHello(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || got.Members != nil || got.Wants != nil {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestGroupHelloBadBitsetLength(t *testing.T) {
	g := sampleGroupHello()
	g.Wants[0].Have = append(g.Wants[0].Have, 0) // one byte too many for 3 pieces
	if _, err := DecodeGroupHello(EncodeGroupHello(g)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized bitset error = %v, want ErrTooLong", err)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	for _, tft := range []bool{false, true} {
		s := &Schedule{From: 3, Members: []trace.NodeID{3, 7, 11}, Round: 9, TitForTat: tft}
		got, err := DecodeSchedule(EncodeSchedule(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip:\nin  %+v\nout %+v", s, got)
		}
	}
}

func TestGrantRoundTrip(t *testing.T) {
	for _, g := range []*Grant{
		{From: 3, To: 7, Round: 9, URI: "dtn://files/3", Piece: 2},
		{From: 3, To: 11, Round: 10, Piece: NoPiece}, // sender's choice
	} {
		got, err := DecodeGrant(EncodeGrant(g))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("round trip:\nin  %+v\nout %+v", g, got)
		}
	}
}

func TestPieceBcastRoundTrip(t *testing.T) {
	m := sampleMeta()
	p := &PieceBcast{
		From:  7,
		Round: 4,
		URI:   m.Record.URI,
		Index: 1,
		Total: m.Record.NumPieces(),
		Data:  metadata.SyntheticPiece(m.Record.URI, 1, m.Record.PieceLen(1)),
	}
	b := EncodePieceBcast(p)
	got, err := DecodePieceBcast(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch")
	}
	// The shared receive path sees the broadcast as a plain piece and
	// verifies it against the record's checksums.
	if !got.AsPiece().Verify(&m.Record) {
		t.Fatal("broadcast piece fails checksum verification via AsPiece")
	}
}

// TestGroupGenericDispatch checks that Peek/Decode/Encode all know the
// four group types.
func TestGroupGenericDispatch(t *testing.T) {
	msgs := []Msg{
		sampleGroupHello(),
		&Schedule{From: 1, Members: []trace.NodeID{1, 2, 3}, Round: 1},
		&Grant{From: 1, To: 2, Round: 1, Piece: NoPiece},
		&PieceBcast{From: 2, Round: 1, URI: "dtn://files/3", Index: 0, Total: 3, Data: []byte("x")},
	}
	for _, m := range msgs {
		b := Encode(m)
		typ, err := Peek(b)
		if err != nil || typ != m.Type() {
			t.Fatalf("Peek(%v) = %v, %v", m.Type(), typ, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("Decode type %v, want %v", got.Type(), m.Type())
		}
		if !bytes.Equal(Encode(got), b) {
			t.Fatalf("re-encode mismatch for %v", m.Type())
		}
	}
}

// TestGroupTruncation feeds every truncation prefix of valid group
// frames to the decoder; all must fail cleanly with a sentinel.
func TestGroupTruncation(t *testing.T) {
	frames := [][]byte{
		EncodeGroupHello(sampleGroupHello()),
		EncodeSchedule(&Schedule{From: 3, Members: []trace.NodeID{3, 7}, Round: 9, TitForTat: true}),
		EncodeGrant(&Grant{From: 3, To: 7, Round: 9, URI: "dtn://files/3", Piece: 2}),
		EncodePieceBcast(&PieceBcast{From: 7, Round: 4, URI: "dtn://files/3", Index: 1, Total: 3, Data: []byte("abc")}),
	}
	for _, b := range frames {
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, len(b))
			}
		}
		if _, err := Decode(append(append([]byte{}, b...), 0)); !errors.Is(err, ErrTrailing) {
			t.Fatalf("trailing byte error = %v, want ErrTrailing", err)
		}
	}
}
