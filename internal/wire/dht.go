// DHT messages carry the Kademlia-style keyword→metadata index of
// internal/dht on the wire. Lookups are strict request/reply pairs
// correlated by RPCID: FindNode and FindValue both answer with a
// NodesReply (carrying either closer contacts or the values themselves),
// while StoreValue is fire-and-forget. Every DHT message carries the
// sender's listen address (FromAddr) because a session's transport-level
// remote address names the dialing socket, not the peer's listener — the
// routing table needs an address it can dial back.
package wire

import (
	"fmt"

	"repro/internal/trace"
)

// KeySize is the byte length of a DHT key (sha256 of the node ID or of
// the normalized keyword).
const KeySize = 32

// maxDHTNodes bounds a NodesReply's contact list; replies carry at most
// the closest K contacts and K is small, so this is generous.
const maxDHTNodes = 1024

// NodeInfo is one routing-table contact: the node's ID and the address
// its peer listener can be dialed at.
type NodeInfo struct {
	ID   trace.NodeID
	Addr string
}

// FindNode asks the receiver for the contacts it knows closest (by XOR
// distance) to Target. The receiver answers with a NodesReply carrying
// the same RPCID.
type FindNode struct {
	From     trace.NodeID
	FromAddr string
	RPCID    uint64
	Target   [KeySize]byte
}

// FindValue asks the receiver for the records it stores under Key, or —
// if it has none — for its closest contacts to Key, exactly like
// FindNode. The receiver answers with a NodesReply carrying the same
// RPCID, with Found set when values are attached.
type FindValue struct {
	From     trace.NodeID
	FromAddr string
	RPCID    uint64
	Key      [KeySize]byte
}

// DHTValue is one stored record: the keyword it is indexed under, the
// remaining time-to-live in milliseconds (relative, so stores survive
// clock skew between nodes), and the signed metadata payload.
type DHTValue struct {
	Keyword   string
	TTLMillis uint64
	Meta      Metadata
}

// StoreValue writes one record under Key at the receiver. It is
// fire-and-forget: no reply is defined, and the receiver silently drops
// stores whose metadata signature does not verify.
type StoreValue struct {
	From     trace.NodeID
	FromAddr string
	RPCID    uint64
	Key      [KeySize]byte
	Value    DHTValue
}

// NodesReply answers a FindNode or FindValue. Key echoes the queried
// target so late replies can be sanity-checked, Nodes carries the
// responder's closest contacts, and — for a FindValue hit — Found is set
// and Values carries the records stored under Key.
type NodesReply struct {
	From     trace.NodeID
	FromAddr string
	RPCID    uint64
	Key      [KeySize]byte
	Found    bool
	Nodes    []NodeInfo
	Values   []DHTValue
}

// Type implements Msg.
func (*FindNode) Type() MsgType { return TypeFindNode }

// Type implements Msg.
func (*FindValue) Type() MsgType { return TypeFindValue }

// Type implements Msg.
func (*StoreValue) Type() MsgType { return TypeStoreValue }

// Type implements Msg.
func (*NodesReply) Type() MsgType { return TypeNodesReply }

// encodeDHTHeader appends the fields every DHT message opens with.
func encodeDHTHeader(w *buffer, from trace.NodeID, fromAddr string, rpcID uint64, key [KeySize]byte) {
	w.uint32(uint32(from))
	w.str(fromAddr)
	w.uint64(rpcID)
	w.b = append(w.b, key[:]...)
}

// decodeDHTHeader parses the fields every DHT message opens with.
func decodeDHTHeader(r *reader) (from trace.NodeID, fromAddr string, rpcID uint64, key [KeySize]byte, err error) {
	f, err := r.uint32()
	if err != nil {
		return 0, "", 0, key, err
	}
	from = trace.NodeID(f)
	if fromAddr, err = r.str(maxStrLen); err != nil {
		return 0, "", 0, key, err
	}
	if rpcID, err = r.uint64(); err != nil {
		return 0, "", 0, key, err
	}
	if len(r.b) < KeySize {
		return 0, "", 0, key, ErrTruncated
	}
	copy(key[:], r.b[:KeySize])
	r.b = r.b[KeySize:]
	return from, fromAddr, rpcID, key, nil
}

func encodeDHTValue(w *buffer, v *DHTValue) {
	w.str(v.Keyword)
	w.uint64(v.TTLMillis)
	encodeMetadataBody(w, &v.Meta)
}

func decodeDHTValue(r *reader) (DHTValue, error) {
	var v DHTValue
	var err error
	if v.Keyword, err = r.str(maxStrLen); err != nil {
		return v, err
	}
	if v.TTLMillis, err = r.uint64(); err != nil {
		return v, err
	}
	m, err := decodeMetadataBody(r)
	if err != nil {
		return v, err
	}
	v.Meta = *m
	return v, nil
}

// EncodeFindNode serializes a contact lookup request.
func EncodeFindNode(f *FindNode) []byte {
	w := header(TypeFindNode)
	encodeDHTHeader(w, f.From, f.FromAddr, f.RPCID, f.Target)
	return w.b
}

// DecodeFindNode parses a contact lookup request.
func DecodeFindNode(b []byte) (*FindNode, error) {
	r, err := openReader(b, TypeFindNode)
	if err != nil {
		return nil, err
	}
	f := &FindNode{}
	if f.From, f.FromAddr, f.RPCID, f.Target, err = decodeDHTHeader(r); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return f, nil
}

// EncodeFindValue serializes a value lookup request.
func EncodeFindValue(f *FindValue) []byte {
	w := header(TypeFindValue)
	encodeDHTHeader(w, f.From, f.FromAddr, f.RPCID, f.Key)
	return w.b
}

// DecodeFindValue parses a value lookup request.
func DecodeFindValue(b []byte) (*FindValue, error) {
	r, err := openReader(b, TypeFindValue)
	if err != nil {
		return nil, err
	}
	f := &FindValue{}
	if f.From, f.FromAddr, f.RPCID, f.Key, err = decodeDHTHeader(r); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return f, nil
}

// EncodeStoreValue serializes a record store request.
func EncodeStoreValue(s *StoreValue) []byte {
	w := header(TypeStoreValue)
	encodeDHTHeader(w, s.From, s.FromAddr, s.RPCID, s.Key)
	encodeDHTValue(w, &s.Value)
	return w.b
}

// DecodeStoreValue parses a record store request.
func DecodeStoreValue(b []byte) (*StoreValue, error) {
	r, err := openReader(b, TypeStoreValue)
	if err != nil {
		return nil, err
	}
	s := &StoreValue{}
	if s.From, s.FromAddr, s.RPCID, s.Key, err = decodeDHTHeader(r); err != nil {
		return nil, err
	}
	if s.Value, err = decodeDHTValue(r); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return s, nil
}

// EncodeNodesReply serializes a lookup reply.
func EncodeNodesReply(n *NodesReply) []byte {
	w := header(TypeNodesReply)
	encodeDHTHeader(w, n.From, n.FromAddr, n.RPCID, n.Key)
	if n.Found {
		w.byte(1)
	} else {
		w.byte(0)
	}
	w.uint32(uint32(len(n.Nodes)))
	for i := range n.Nodes {
		w.uint32(uint32(n.Nodes[i].ID))
		w.str(n.Nodes[i].Addr)
	}
	w.uint32(uint32(len(n.Values)))
	for i := range n.Values {
		encodeDHTValue(w, &n.Values[i])
	}
	return w.b
}

// DecodeNodesReply parses a lookup reply.
func DecodeNodesReply(b []byte) (*NodesReply, error) {
	r, err := openReader(b, TypeNodesReply)
	if err != nil {
		return nil, err
	}
	n := &NodesReply{}
	if n.From, n.FromAddr, n.RPCID, n.Key, err = decodeDHTHeader(r); err != nil {
		return nil, err
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch flag {
	case 0:
	case 1:
		n.Found = true
	default:
		return nil, fmt.Errorf("found flag %d: %w", flag, ErrBadType)
	}
	count, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if count > maxDHTNodes {
		return nil, fmt.Errorf("node list %d: %w", count, ErrTooLong)
	}
	for i := uint32(0); i < count; i++ {
		var info NodeInfo
		id, err := r.uint32()
		if err != nil {
			return nil, err
		}
		info.ID = trace.NodeID(id)
		if info.Addr, err = r.str(maxStrLen); err != nil {
			return nil, err
		}
		n.Nodes = append(n.Nodes, info)
	}
	count, err = r.uint32()
	if err != nil {
		return nil, err
	}
	if count > maxDHTNodes {
		return nil, fmt.Errorf("value list %d: %w", count, ErrTooLong)
	}
	for i := uint32(0); i < count; i++ {
		v, err := decodeDHTValue(r)
		if err != nil {
			return nil, err
		}
		n.Values = append(n.Values, v)
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return n, nil
}
