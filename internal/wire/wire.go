// Package wire defines the on-air message formats of §III-B and their
// binary codec. Nodes exchange three base message kinds:
//
//   - hello beacons — node ID, the IDs heard in the past 5 seconds, the
//     node's query strings, the URIs of the files it is downloading, and
//     a per-file have-bitmap so senders serve only missing pieces;
//   - metadata records — the discovery phase's payload, carrying the
//     advisory popularity alongside the signed record;
//   - file pieces — the download phase's payload, optionally carrying a
//     piggybacked metadata record (MBT-QM);
//
// plus the four broadcast-group messages of §V (group.go): group-hello,
// schedule, grant, and piece-bcast, and the fountain-coded data plane's
// symbol and symbol-ack (symbol.go).
//
// The format is a fixed header (magic, version, type) followed by
// length-prefixed fields in big-endian order. Decoding is strict: junk,
// truncation, or trailing bytes are errors, and a decoded piece can be
// verified against its file's checksums before it is stored.
package wire

import (
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Message type tags.
type MsgType byte

// The on-air message kinds: the three base messages of §III-B plus the
// broadcast-group protocol of §V (see group.go).
const (
	TypeHello MsgType = iota + 1
	TypeMetadata
	TypePiece
	TypeGroupHello
	TypeSchedule
	TypeGrant
	TypePieceBcast
	TypeSymbol
	TypeSymbolAck
	TypeFindNode
	TypeFindValue
	TypeStoreValue
	TypeNodesReply
	TypeBusy
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeMetadata:
		return "metadata"
	case TypePiece:
		return "piece"
	case TypeGroupHello:
		return "group-hello"
	case TypeSchedule:
		return "schedule"
	case TypeGrant:
		return "grant"
	case TypePieceBcast:
		return "piece-bcast"
	case TypeSymbol:
		return "symbol"
	case TypeSymbolAck:
		return "symbol-ack"
	case TypeFindNode:
		return "find-node"
	case TypeFindValue:
		return "find-value"
	case TypeStoreValue:
		return "store-value"
	case TypeNodesReply:
		return "nodes-reply"
	case TypeBusy:
		return "busy"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

const (
	magic   = 0xD7
	version = 1
)

// Limits guard against hostile lengths.
const (
	maxStrLen  = 64 * 1024
	maxListLen = 64 * 1024
	maxDataLen = 16 * 1024 * 1024
)

// Decode errors. These are sentinels so the transport layer can match
// with errors.Is and react per cause: ErrBadMagic and ErrTruncated mean
// framing garbage (close the connection), ErrVersion means a healthy peer
// speaking a different protocol revision (close politely, do not retry),
// and the remaining sentinels mean a malformed but well-framed message
// (drop it and keep the connection).
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrBadMagic  = errors.New("wire: bad magic byte")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrBadType   = errors.New("wire: unknown message type")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
	ErrTooLong   = errors.New("wire: field exceeds limit")
)

// Hello is the beacon message.
type Hello struct {
	From        trace.NodeID
	Heard       []trace.NodeID
	Queries     []string
	Downloading []metadata.URI
	// Have advertises per-file piece state for the downloads (same
	// bitset form as GroupHello.Wants), so senders serve only missing
	// pieces. A node that restarts against its data directory resumes
	// advertising everything it persisted, and peers never re-send a
	// piece the bitmap already marks held.
	Have []GroupWant
}

// Metadata is the discovery payload.
type Metadata struct {
	Popularity float64
	Record     metadata.Metadata
}

// Piece is the download payload.
type Piece struct {
	URI   metadata.URI
	Index int
	Total int
	Data  []byte
	// Piggyback optionally carries the file's metadata (MBT-QM).
	Piggyback *Metadata
}

// buffer accumulates an encoded message.
type buffer struct{ b []byte }

func (w *buffer) byte(v byte)     { w.b = append(w.b, v) }
func (w *buffer) uint32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buffer) uint64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *buffer) str(s string) {
	w.uint32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *buffer) bytes(p []byte) {
	w.uint32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// reader consumes an encoded message.
type reader struct{ b []byte }

func (r *reader) byte() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) uint32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) str(limit int) (string, error) {
	n, err := r.uint32()
	if err != nil {
		return "", err
	}
	if int(n) > limit {
		return "", fmt.Errorf("string length %d: %w", n, ErrTooLong)
	}
	if len(r.b) < int(n) {
		return "", ErrTruncated
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *reader) bytes(limit int) ([]byte, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > limit {
		return nil, fmt.Errorf("byte length %d: %w", n, ErrTooLong)
	}
	if len(r.b) < int(n) {
		return nil, ErrTruncated
	}
	p := make([]byte, n)
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return p, nil
}

func header(t MsgType) *buffer {
	w := &buffer{}
	w.byte(magic)
	w.byte(version)
	w.byte(byte(t))
	return w
}

// EncodeHello serializes a hello beacon.
func EncodeHello(h *Hello) []byte {
	w := header(TypeHello)
	w.uint32(uint32(h.From))
	w.uint32(uint32(len(h.Heard)))
	for _, id := range h.Heard {
		w.uint32(uint32(id))
	}
	w.uint32(uint32(len(h.Queries)))
	for _, q := range h.Queries {
		w.str(q)
	}
	w.uint32(uint32(len(h.Downloading)))
	for _, uri := range h.Downloading {
		w.str(string(uri))
	}
	encodeWantList(w, h.Have)
	return w.b
}

// encodeMetadataBody appends the metadata payload without a header.
func encodeMetadataBody(w *buffer, m *Metadata) {
	w.uint64(math.Float64bits(m.Popularity))
	rec := &m.Record
	w.str(string(rec.URI))
	w.str(rec.Name)
	w.str(rec.Publisher)
	w.str(rec.Description)
	w.uint64(uint64(rec.Size))
	w.uint32(uint32(rec.PieceSize))
	w.uint64(uint64(rec.Created))
	w.uint64(uint64(rec.Expires))
	w.uint32(uint32(len(rec.PieceHashes)))
	for _, h := range rec.PieceHashes {
		w.b = append(w.b, h[:]...)
	}
	w.b = append(w.b, rec.Signature[:]...)
}

// EncodeMetadata serializes a discovery payload.
func EncodeMetadata(m *Metadata) []byte {
	w := header(TypeMetadata)
	encodeMetadataBody(w, m)
	return w.b
}

// EncodePiece serializes a download payload.
func EncodePiece(p *Piece) []byte {
	w := header(TypePiece)
	w.str(string(p.URI))
	w.uint32(uint32(p.Index))
	w.uint32(uint32(p.Total))
	w.bytes(p.Data)
	if p.Piggyback != nil {
		w.byte(1)
		encodeMetadataBody(w, p.Piggyback)
	} else {
		w.byte(0)
	}
	return w.b
}

// Peek returns the message type of an encoded buffer without decoding it.
func Peek(b []byte) (MsgType, error) {
	if len(b) < 3 {
		return 0, ErrTruncated
	}
	if b[0] != magic {
		return 0, ErrBadMagic
	}
	if b[1] != version {
		return 0, fmt.Errorf("version %d: %w", b[1], ErrVersion)
	}
	t := MsgType(b[2])
	switch t {
	case TypeHello, TypeMetadata, TypePiece,
		TypeGroupHello, TypeSchedule, TypeGrant, TypePieceBcast,
		TypeSymbol, TypeSymbolAck,
		TypeFindNode, TypeFindValue, TypeStoreValue, TypeNodesReply,
		TypeBusy:
		return t, nil
	default:
		return 0, fmt.Errorf("type %d: %w", b[2], ErrBadType)
	}
}

func openReader(b []byte, want MsgType) (*reader, error) {
	t, err := Peek(b)
	if err != nil {
		return nil, err
	}
	if t != want {
		return nil, fmt.Errorf("got %v, want %v: %w", t, want, ErrBadType)
	}
	return &reader{b: b[3:]}, nil
}

// DecodeHello parses a hello beacon.
func DecodeHello(b []byte) (*Hello, error) {
	r, err := openReader(b, TypeHello)
	if err != nil {
		return nil, err
	}
	h := &Hello{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	h.From = trace.NodeID(from)

	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("heard list %d: %w", n, ErrTooLong)
	}
	for i := uint32(0); i < n; i++ {
		id, err := r.uint32()
		if err != nil {
			return nil, err
		}
		h.Heard = append(h.Heard, trace.NodeID(id))
	}

	n, err = r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("query list %d: %w", n, ErrTooLong)
	}
	for i := uint32(0); i < n; i++ {
		q, err := r.str(maxStrLen)
		if err != nil {
			return nil, err
		}
		h.Queries = append(h.Queries, q)
	}

	n, err = r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("download list %d: %w", n, ErrTooLong)
	}
	for i := uint32(0); i < n; i++ {
		uri, err := r.str(maxStrLen)
		if err != nil {
			return nil, err
		}
		h.Downloading = append(h.Downloading, metadata.URI(uri))
	}
	if h.Have, err = decodeWantList(r); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return h, nil
}

// decodeMetadataBody parses the metadata payload without a header.
func decodeMetadataBody(r *reader) (*Metadata, error) {
	m := &Metadata{}
	popBits, err := r.uint64()
	if err != nil {
		return nil, err
	}
	m.Popularity = math.Float64frombits(popBits)

	rec := &m.Record
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	rec.URI = metadata.URI(uri)
	if rec.Name, err = r.str(maxStrLen); err != nil {
		return nil, err
	}
	if rec.Publisher, err = r.str(maxStrLen); err != nil {
		return nil, err
	}
	if rec.Description, err = r.str(maxStrLen); err != nil {
		return nil, err
	}
	size, err := r.uint64()
	if err != nil {
		return nil, err
	}
	rec.Size = int64(size)
	pieceSize, err := r.uint32()
	if err != nil {
		return nil, err
	}
	rec.PieceSize = int(pieceSize)
	created, err := r.uint64()
	if err != nil {
		return nil, err
	}
	rec.Created = simtime.Time(created)
	expires, err := r.uint64()
	if err != nil {
		return nil, err
	}
	rec.Expires = simtime.Time(expires)

	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("piece hash list %d: %w", n, ErrTooLong)
	}
	rec.PieceHashes = make([][sha1.Size]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(r.b) < sha1.Size {
			return nil, ErrTruncated
		}
		copy(rec.PieceHashes[i][:], r.b[:sha1.Size])
		r.b = r.b[sha1.Size:]
	}
	if len(r.b) < sha256.Size {
		return nil, ErrTruncated
	}
	copy(rec.Signature[:], r.b[:sha256.Size])
	r.b = r.b[sha256.Size:]
	return m, nil
}

// DecodeMetadata parses a discovery payload.
func DecodeMetadata(b []byte) (*Metadata, error) {
	r, err := openReader(b, TypeMetadata)
	if err != nil {
		return nil, err
	}
	m, err := decodeMetadataBody(r)
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}

// DecodePiece parses a download payload.
func DecodePiece(b []byte) (*Piece, error) {
	r, err := openReader(b, TypePiece)
	if err != nil {
		return nil, err
	}
	p := &Piece{}
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	p.URI = metadata.URI(uri)
	idx, err := r.uint32()
	if err != nil {
		return nil, err
	}
	p.Index = int(idx)
	total, err := r.uint32()
	if err != nil {
		return nil, err
	}
	p.Total = int(total)
	if p.Data, err = r.bytes(maxDataLen); err != nil {
		return nil, err
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	if flag == 1 {
		if p.Piggyback, err = decodeMetadataBody(r); err != nil {
			return nil, err
		}
	} else if flag != 0 {
		return nil, fmt.Errorf("piggyback flag %d: %w", flag, ErrBadType)
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return p, nil
}

// Verify reports whether the piece's data matches the checksum in the
// given metadata record (the receiver-side integrity check).
func (p *Piece) Verify(rec *metadata.Metadata) bool {
	return rec.URI == p.URI && rec.VerifyPiece(p.Index, p.Data)
}

// Msg is any decoded on-air message: *Hello, *Metadata, *Piece, or one
// of the group messages (*GroupHello, *Schedule, *Grant, *PieceBcast).
type Msg interface {
	// Type returns the message's wire type tag.
	Type() MsgType
}

// Raw is a pre-encoded message: Encode returns Frame as-is, so one
// encoding can fan out to many connections without re-serializing per
// peer. The beacon path uses it — a node with hundreds of live peers
// encodes its hello once per tick instead of once per peer. Frame must
// be a complete encoded message of type T and must not be mutated after
// the first Send; receivers decode it into the ordinary typed messages,
// so Raw never appears on the receive path.
type Raw struct {
	T     MsgType
	Frame []byte
}

// NewRaw pre-encodes m for fan-out.
func NewRaw(m Msg) *Raw { return &Raw{T: m.Type(), Frame: Encode(m)} }

// Type implements Msg.
func (r *Raw) Type() MsgType { return r.T }

// Type implements Msg.
func (*Hello) Type() MsgType { return TypeHello }

// Type implements Msg.
func (*Metadata) Type() MsgType { return TypeMetadata }

// Type implements Msg.
func (*Piece) Type() MsgType { return TypePiece }

// Encode serializes any message.
func Encode(m Msg) []byte {
	switch m := m.(type) {
	case *Raw:
		return m.Frame
	case *Hello:
		return EncodeHello(m)
	case *Metadata:
		return EncodeMetadata(m)
	case *Piece:
		return EncodePiece(m)
	case *GroupHello:
		return EncodeGroupHello(m)
	case *Schedule:
		return EncodeSchedule(m)
	case *Grant:
		return EncodeGrant(m)
	case *PieceBcast:
		return EncodePieceBcast(m)
	case *Symbol:
		return EncodeSymbol(m)
	case *SymbolAck:
		return EncodeSymbolAck(m)
	case *FindNode:
		return EncodeFindNode(m)
	case *FindValue:
		return EncodeFindValue(m)
	case *StoreValue:
		return EncodeStoreValue(m)
	case *NodesReply:
		return EncodeNodesReply(m)
	case *Busy:
		return EncodeBusy(m)
	default:
		panic(fmt.Sprintf("wire: Encode(%T)", m))
	}
}

// Decode parses any encoded message, dispatching on the header's type
// tag. Errors wrap the sentinel decode errors (ErrTruncated, ErrBadMagic,
// ErrVersion, ...) so callers can distinguish framing garbage from a
// version mismatch from a malformed body.
func Decode(b []byte) (Msg, error) {
	t, err := Peek(b)
	if err != nil {
		return nil, err
	}
	var m Msg
	switch t {
	case TypeHello:
		m, err = DecodeHello(b)
	case TypeMetadata:
		m, err = DecodeMetadata(b)
	case TypeGroupHello:
		m, err = DecodeGroupHello(b)
	case TypeSchedule:
		m, err = DecodeSchedule(b)
	case TypeGrant:
		m, err = DecodeGrant(b)
	case TypePieceBcast:
		m, err = DecodePieceBcast(b)
	case TypeSymbol:
		m, err = DecodeSymbol(b)
	case TypeSymbolAck:
		m, err = DecodeSymbolAck(b)
	case TypeFindNode:
		m, err = DecodeFindNode(b)
	case TypeFindValue:
		m, err = DecodeFindValue(b)
	case TypeStoreValue:
		m, err = DecodeStoreValue(b)
	case TypeNodesReply:
		m, err = DecodeNodesReply(b)
	case TypeBusy:
		m, err = DecodeBusy(b)
	default:
		m, err = DecodePiece(b)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}
