package wire

import (
	"testing"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// benchHello is a beacon the size a busy swarm node actually sends: a
// populated heard-list, a few queries, and piece bitmaps for two
// in-flight downloads.
func benchHello() *Hello {
	heard := make([]trace.NodeID, 12)
	for i := range heard {
		heard[i] = trace.NodeID(i + 1)
	}
	return &Hello{
		From:        7,
		Heard:       heard,
		Queries:     []string{"f0", "f1", "f2"},
		Downloading: []metadata.URI{metadata.URIFor(0), metadata.URIFor(1)},
		Have: []GroupWant{
			{URI: metadata.URIFor(0), Total: 16, Downloading: true, Have: []byte{0xab, 0x31}},
			{URI: metadata.URIFor(1), Total: 16, Downloading: true, Have: []byte{0x14, 0x02}},
		},
	}
}

func benchPiece() *Piece {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	return &Piece{URI: metadata.URIFor(0), Index: 3, Total: 16, Data: data}
}

func BenchmarkEncodeHello(b *testing.B) {
	h := benchHello()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(h)
	}
}

func BenchmarkDecodeHello(b *testing.B) {
	frame := Encode(benchHello())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePiece(b *testing.B) {
	p := benchPiece()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(p)
	}
}

func BenchmarkDecodePiece(b *testing.B) {
	frame := Encode(benchPiece())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeRaw pins the pre-encoded fan-out path: handing a Raw
// to Encode must cost nothing but the slice return.
func BenchmarkEncodeRaw(b *testing.B) {
	raw := NewRaw(benchHello())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(raw)
	}
}
