package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestBusyRoundTrip(t *testing.T) {
	for _, scope := range []BusyScope{BusyQuery, BusyPiece, BusyDHT, BusySymbol} {
		in := &Busy{From: 42, Scope: scope, RetryAfterMillis: 750}
		b := EncodeBusy(in)
		out, err := DecodeBusy(b)
		if err != nil {
			t.Fatalf("scope %v: decode: %v", scope, err)
		}
		if out.From != in.From || out.Scope != in.Scope || out.RetryAfterMillis != in.RetryAfterMillis {
			t.Fatalf("scope %v: round trip %+v != %+v", scope, out, in)
		}
		// The generic paths agree with the typed ones.
		m, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("scope %v: generic decode: %v", scope, err)
		}
		if !bytes.Equal(Encode(m), b) {
			t.Fatalf("scope %v: generic re-encode differs", scope)
		}
	}
}

func TestBusyRetryAfter(t *testing.T) {
	b := &Busy{RetryAfterMillis: 1500}
	if got := b.RetryAfter(); got != 1500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 1.5s", got)
	}
}

func TestBusyBadScope(t *testing.T) {
	for _, scope := range []byte{0, 5, 200} {
		b := EncodeBusy(&Busy{From: 1, Scope: BusyQuery, RetryAfterMillis: 9})
		b[len(b)-5] = scope // the scope byte sits before the trailing uint32
		if _, err := DecodeBusy(b); !errors.Is(err, ErrBadType) {
			t.Fatalf("scope %d: err = %v, want ErrBadType", scope, err)
		}
	}
}

func TestBusyTruncated(t *testing.T) {
	b := EncodeBusy(&Busy{From: 7, Scope: BusySymbol, RetryAfterMillis: 100})
	for n := 3; n < len(b); n++ {
		if _, err := DecodeBusy(b[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("len %d: err = %v, want ErrTruncated", n, err)
		}
	}
	if _, err := DecodeBusy(append(b, 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailing", err)
	}
}
