package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// seedFrames returns one valid encoding of each message type, the fuzz
// corpus's starting points.
func seedFrames() [][]byte {
	m := sampleMeta()
	data := metadata.SyntheticPiece(m.Record.URI, 0, m.Record.PieceLen(0))
	return [][]byte{
		EncodeHello(&Hello{
			From:        7,
			Heard:       []trace.NodeID{1, 2, 9},
			Queries:     []string{"jazz", "late show"},
			Downloading: []metadata.URI{"dtn://files/3"},
		}),
		EncodeHello(&Hello{From: 0}),
		EncodeMetadata(m),
		EncodePiece(&Piece{URI: m.Record.URI, Index: 0, Total: m.Record.NumPieces(), Data: data}),
		EncodePiece(&Piece{URI: m.Record.URI, Index: 1, Total: m.Record.NumPieces(),
			Data: metadata.SyntheticPiece(m.Record.URI, 1, m.Record.PieceLen(1)), Piggyback: m}),
		EncodeGroupHello(sampleGroupHello()),
		EncodeGroupHello(&GroupHello{From: 0}),
		EncodeSchedule(&Schedule{From: 3, Members: []trace.NodeID{3, 7, 11}, Round: 9, TitForTat: true}),
		EncodeGrant(&Grant{From: 3, To: 7, Round: 9, URI: m.Record.URI, Piece: 2}),
		EncodeGrant(&Grant{From: 3, To: 11, Round: 10, Piece: NoPiece}),
		EncodePieceBcast(&PieceBcast{From: 7, Round: 4, URI: m.Record.URI, Index: 0,
			Total: m.Record.NumPieces(), Data: data}),
		EncodeSymbol(sampleSymbol()),
		EncodeSymbolAck(sampleSymbolAck()),
		EncodeFindNode(sampleFindNode()),
		EncodeFindValue(sampleFindValue()),
		EncodeStoreValue(sampleStoreValue()),
		EncodeNodesReply(sampleNodesReply()),
		EncodeNodesReply(&NodesReply{From: 5, FromAddr: "n5", RPCID: 1}),
		EncodeBusy(&Busy{From: 9, Scope: BusyPiece, RetryAfterMillis: 250}),
		EncodeBusy(&Busy{From: 2, Scope: BusyDHT}),
	}
}

// FuzzDecode feeds arbitrary bytes to the generic decoder: it must never
// panic, and on success the decoded message must re-encode to the exact
// input (decode∘encode is the identity on valid frames).
func FuzzDecode(f *testing.F) {
	for _, b := range seedFrames() {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{magic})
	f.Add([]byte{magic, version})
	f.Add([]byte{magic, version, byte(TypeHello)})
	f.Add([]byte{0xFF, version, byte(TypeHello), 0, 0, 0, 0})
	f.Add([]byte{magic, 99, byte(TypePiece)})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			if m != nil {
				t.Fatalf("Decode returned non-nil message %T with error %v", m, err)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrBadType) &&
				!errors.Is(err, ErrTrailing) && !errors.Is(err, ErrTooLong) {
				t.Fatalf("Decode error %v does not wrap a sentinel", err)
			}
			return
		}
		if !bytes.Equal(Encode(m), b) {
			t.Fatalf("re-encode mismatch for %T", m)
		}
	})
}

// FuzzRoundTrip builds a hello from arbitrary fields and checks that
// encode→decode preserves it, and that the generic Decode agrees with the
// typed decoder.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(7), uint32(3), "jazz", "dtn://files/3")
	f.Add(uint32(0), uint32(0), "", "")
	f.Add(uint32(1<<31), uint32(12345), "late show night", "dtn://files/999")
	f.Fuzz(func(t *testing.T, from, heard uint32, query, uri string) {
		h := &Hello{From: trace.NodeID(from)}
		if heard != 0 {
			h.Heard = []trace.NodeID{trace.NodeID(heard)}
		}
		if query != "" {
			h.Queries = []string{query}
		}
		if uri != "" {
			h.Downloading = []metadata.URI{metadata.URI(uri)}
		}
		b := EncodeHello(h)
		got, err := DecodeHello(b)
		if err != nil {
			t.Fatalf("DecodeHello: %v", err)
		}
		if got.From != h.From || len(got.Heard) != len(h.Heard) ||
			len(got.Queries) != len(h.Queries) || len(got.Downloading) != len(h.Downloading) {
			t.Fatalf("round trip:\nin  %+v\nout %+v", h, got)
		}
		generic, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if generic.Type() != TypeHello {
			t.Fatalf("generic type %v", generic.Type())
		}
	})
}
