// Symbol messages carry the fountain-coded broadcast data plane: the
// round's granted sender streams coded symbols (internal/fec) over the
// best-effort datagram lane instead of shipping named pieces, and
// receivers answer with one aggregate SymbolAck when a piece decodes.
// Symbols ride an unreliable, unordered medium, so unlike the TCP-framed
// messages each Symbol carries everything needed to place it — the block
// identity (file, piece, seed) plus the symbol index — and a payload
// checksum: a corrupted payload that still parses would XOR garbage into
// the receiver's eliminator and poison the whole block, so receivers
// drop symbols whose check fails rather than trusting the lane.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// Symbol is one fountain-coded symbol of one piece. (Seed, Index)
// fully determine the symbol's source-set under internal/fec, so a
// relay can forward symbols it has not decoded, and DataLen together
// with len(Payload) reconstructs the decoder's Params on sight.
type Symbol struct {
	From  trace.NodeID
	Round uint64
	URI   metadata.URI
	// Piece is the piece index within the file; Total the file's piece
	// count, so first sight of a file's stream can size tracking state.
	Piece int
	Total int
	// Seed names the block's symbol stream; DataLen is the original
	// piece length in bytes (the last piece of a file runs short).
	Seed    uint64
	DataLen int
	// Index selects the coded symbol within the stream.
	Index uint32
	// Check guards every other field against datagram corruption — see
	// checksum.
	Check   uint32
	Payload []byte
}

// SymbolAck is a receiver's aggregate decode report for one file: a
// bitset of the pieces it has fully decoded (or already held). One ack
// replaces per-piece NACK round-trips — the sender stops streaming a
// block as soon as every member's ack covers it.
type SymbolAck struct {
	From  trace.NodeID
	Round uint64
	URI   metadata.URI
	Total int
	// Have marks decoded pieces, same bitset form as GroupWant.Have.
	Have []byte
}

// checksum covers every field except Check itself. Datagram corruption
// is indiscriminate: a flipped Round would poison the engine's round
// clock and a flipped Piece would aim good equations at the wrong
// decoder, so the whole header is bound, not just the payload and
// stream identity.
func (s *Symbol) checksum() uint32 {
	var hdr [40]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(s.From))
	binary.BigEndian.PutUint64(hdr[4:], s.Round)
	binary.BigEndian.PutUint32(hdr[12:], uint32(s.Piece))
	binary.BigEndian.PutUint32(hdr[16:], uint32(s.Total))
	binary.BigEndian.PutUint64(hdr[20:], s.Seed)
	binary.BigEndian.PutUint32(hdr[28:], uint32(s.DataLen))
	binary.BigEndian.PutUint32(hdr[32:], s.Index)
	binary.BigEndian.PutUint32(hdr[36:], uint32(len(s.URI)))
	c := crc32.Update(0, crc32.IEEETable, hdr[:40])
	c = crc32.Update(c, crc32.IEEETable, []byte(s.URI))
	return crc32.Update(c, crc32.IEEETable, s.Payload)
}

// Seal stamps Check from the symbol's current fields.
func (s *Symbol) Seal() { s.Check = s.checksum() }

// CheckOK reports whether Check matches the symbol's current fields.
func (s *Symbol) CheckOK() bool { return s.Check == s.checksum() }

// Type implements Msg.
func (*Symbol) Type() MsgType { return TypeSymbol }

// Type implements Msg.
func (*SymbolAck) Type() MsgType { return TypeSymbolAck }

// EncodeSymbol serializes a coded symbol.
func EncodeSymbol(s *Symbol) []byte {
	w := header(TypeSymbol)
	w.uint32(uint32(s.From))
	w.uint64(s.Round)
	w.str(string(s.URI))
	w.uint32(uint32(s.Piece))
	w.uint32(uint32(s.Total))
	w.uint64(s.Seed)
	w.uint32(uint32(s.DataLen))
	w.uint32(s.Index)
	w.uint32(s.Check)
	w.bytes(s.Payload)
	return w.b
}

// DecodeSymbol parses a coded symbol. The payload checksum is NOT
// verified here — framing errors answer with the usual sentinels, but
// Check is the receiver's call (CheckOK) so transports and tests can
// observe corrupted-but-parseable symbols.
func DecodeSymbol(b []byte) (*Symbol, error) {
	r, err := openReader(b, TypeSymbol)
	if err != nil {
		return nil, err
	}
	s := &Symbol{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	s.From = trace.NodeID(from)
	if s.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	s.URI = metadata.URI(uri)
	piece, err := r.uint32()
	if err != nil {
		return nil, err
	}
	s.Piece = int(piece)
	total, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if total > maxListLen {
		return nil, fmt.Errorf("piece total %d: %w", total, ErrTooLong)
	}
	s.Total = int(total)
	if s.Seed, err = r.uint64(); err != nil {
		return nil, err
	}
	dataLen, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if dataLen > maxDataLen {
		return nil, fmt.Errorf("symbol data length %d: %w", dataLen, ErrTooLong)
	}
	s.DataLen = int(dataLen)
	if s.Index, err = r.uint32(); err != nil {
		return nil, err
	}
	if s.Check, err = r.uint32(); err != nil {
		return nil, err
	}
	if s.Payload, err = r.bytes(maxDataLen); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return s, nil
}

// EncodeSymbolAck serializes an aggregate decode report.
func EncodeSymbolAck(a *SymbolAck) []byte {
	w := header(TypeSymbolAck)
	w.uint32(uint32(a.From))
	w.uint64(a.Round)
	w.str(string(a.URI))
	w.uint32(uint32(a.Total))
	w.bytes(a.Have)
	return w.b
}

// DecodeSymbolAck parses an aggregate decode report.
func DecodeSymbolAck(b []byte) (*SymbolAck, error) {
	r, err := openReader(b, TypeSymbolAck)
	if err != nil {
		return nil, err
	}
	a := &SymbolAck{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	a.From = trace.NodeID(from)
	if a.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	a.URI = metadata.URI(uri)
	total, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if total > maxListLen {
		return nil, fmt.Errorf("piece total %d: %w", total, ErrTooLong)
	}
	a.Total = int(total)
	if a.Have, err = r.bytes(maxListLen); err != nil {
		return nil, err
	}
	if len(a.Have) != haveLen(a.Total) {
		return nil, fmt.Errorf("ack bitset %d bytes for %d pieces: %w",
			len(a.Have), a.Total, ErrTooLong)
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return a, nil
}

// HaveBit reports whether piece i is marked decoded in the ack.
func (a *SymbolAck) HaveBit(i int) bool {
	if i < 0 || i >= a.Total || i/8 >= len(a.Have) {
		return false
	}
	return a.Have[i/8]&(1<<(i%8)) != 0
}

// SetHave marks piece i as decoded in the ack.
func (a *SymbolAck) SetHave(i int) {
	if i >= 0 && i < a.Total && i/8 < len(a.Have) {
		a.Have[i/8] |= 1 << (i % 8)
	}
}
