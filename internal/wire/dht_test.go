package wire

import (
	"bytes"
	"errors"
	"testing"
)

func sampleKey() [KeySize]byte {
	var k [KeySize]byte
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func sampleFindNode() *FindNode {
	return &FindNode{From: 7, FromAddr: "n7", RPCID: 41, Target: sampleKey()}
}

func sampleFindValue() *FindValue {
	return &FindValue{From: 9, FromAddr: "n9", RPCID: 42, Key: sampleKey()}
}

func sampleStoreValue() *StoreValue {
	return &StoreValue{
		From: 3, FromAddr: "n3", RPCID: 43, Key: sampleKey(),
		Value: DHTValue{Keyword: "jazz", TTLMillis: 90_000, Meta: *sampleMeta()},
	}
}

func sampleNodesReply() *NodesReply {
	return &NodesReply{
		From: 11, FromAddr: "n11", RPCID: 44, Key: sampleKey(),
		Found: true,
		Nodes: []NodeInfo{{ID: 3, Addr: "n3"}, {ID: 7, Addr: "n7"}},
		Values: []DHTValue{
			{Keyword: "jazz", TTLMillis: 45_000, Meta: *sampleMeta()},
		},
	}
}

func TestFindNodeRoundTrip(t *testing.T) {
	f := sampleFindNode()
	got, err := DecodeFindNode(EncodeFindNode(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != f.From || got.FromAddr != f.FromAddr ||
		got.RPCID != f.RPCID || got.Target != f.Target {
		t.Fatalf("round trip:\nin  %+v\nout %+v", f, got)
	}
}

func TestFindValueRoundTrip(t *testing.T) {
	f := sampleFindValue()
	got, err := DecodeFindValue(EncodeFindValue(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != f.From || got.FromAddr != f.FromAddr ||
		got.RPCID != f.RPCID || got.Key != f.Key {
		t.Fatalf("round trip:\nin  %+v\nout %+v", f, got)
	}
}

func TestStoreValueRoundTrip(t *testing.T) {
	s := sampleStoreValue()
	got, err := DecodeStoreValue(EncodeStoreValue(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != s.From || got.FromAddr != s.FromAddr ||
		got.RPCID != s.RPCID || got.Key != s.Key ||
		got.Value.Keyword != s.Value.Keyword ||
		got.Value.TTLMillis != s.Value.TTLMillis ||
		got.Value.Meta.Record.URI != s.Value.Meta.Record.URI ||
		got.Value.Meta.Record.Signature != s.Value.Meta.Record.Signature {
		t.Fatalf("round trip:\nin  %+v\nout %+v", s, got)
	}
}

func TestNodesReplyRoundTrip(t *testing.T) {
	n := sampleNodesReply()
	got, err := DecodeNodesReply(EncodeNodesReply(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != n.From || got.FromAddr != n.FromAddr ||
		got.RPCID != n.RPCID || got.Key != n.Key || got.Found != n.Found {
		t.Fatalf("round trip:\nin  %+v\nout %+v", n, got)
	}
	if len(got.Nodes) != len(n.Nodes) {
		t.Fatalf("got %d nodes, want %d", len(got.Nodes), len(n.Nodes))
	}
	for i := range n.Nodes {
		if got.Nodes[i] != n.Nodes[i] {
			t.Fatalf("node %d: got %+v want %+v", i, got.Nodes[i], n.Nodes[i])
		}
	}
	if len(got.Values) != len(n.Values) {
		t.Fatalf("got %d values, want %d", len(got.Values), len(n.Values))
	}
	if got.Values[0].Keyword != n.Values[0].Keyword ||
		got.Values[0].TTLMillis != n.Values[0].TTLMillis ||
		got.Values[0].Meta.Record.URI != n.Values[0].Meta.Record.URI {
		t.Fatalf("value 0: got %+v want %+v", got.Values[0], n.Values[0])
	}
}

// TestNodesReplyEmpty: a miss reply with no contacts and no values is
// valid — the end of an iterative lookup that ran out of closer nodes.
func TestNodesReplyEmpty(t *testing.T) {
	n := &NodesReply{From: 5, FromAddr: "n5", RPCID: 1, Key: sampleKey()}
	got, err := DecodeNodesReply(EncodeNodesReply(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.Found || len(got.Nodes) != 0 || len(got.Values) != 0 {
		t.Fatalf("empty reply decoded to %+v", got)
	}
}

func TestDHTGenericDispatch(t *testing.T) {
	for _, m := range []Msg{sampleFindNode(), sampleFindValue(),
		sampleStoreValue(), sampleNodesReply()} {
		b := Encode(m)
		typ, err := Peek(b)
		if err != nil || typ != m.Type() {
			t.Fatalf("Peek(%v) = %v, %v", m.Type(), typ, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("Decode type %v, want %v", got.Type(), m.Type())
		}
		if !bytes.Equal(Encode(got), b) {
			t.Fatalf("re-encode mismatch for %v", m.Type())
		}
	}
}

func TestDHTTruncation(t *testing.T) {
	truncateSweep(t, EncodeFindNode(sampleFindNode()), func(b []byte) error {
		_, err := DecodeFindNode(b)
		return err
	})
	truncateSweep(t, EncodeFindValue(sampleFindValue()), func(b []byte) error {
		_, err := DecodeFindValue(b)
		return err
	})
	truncateSweep(t, EncodeStoreValue(sampleStoreValue()), func(b []byte) error {
		_, err := DecodeStoreValue(b)
		return err
	})
	truncateSweep(t, EncodeNodesReply(sampleNodesReply()), func(b []byte) error {
		_, err := DecodeNodesReply(b)
		return err
	})
}

func TestDHTTrailingBytes(t *testing.T) {
	for _, b := range [][]byte{
		EncodeFindNode(sampleFindNode()),
		EncodeFindValue(sampleFindValue()),
		EncodeStoreValue(sampleStoreValue()),
		EncodeNodesReply(sampleNodesReply()),
	} {
		if _, err := Decode(append(b, 0)); !errors.Is(err, ErrTrailing) {
			t.Fatalf("trailing byte: %v", err)
		}
	}
}

// TestNodesReplyBadFoundFlag: the found flag must be 0 or 1.
func TestNodesReplyBadFoundFlag(t *testing.T) {
	n := &NodesReply{From: 5, FromAddr: "a", RPCID: 1, Key: sampleKey()}
	b := EncodeNodesReply(n)
	// Header (3) + from (4) + addr (4+1) + rpc (8) + key (32), then flag.
	b[3+4+4+1+8+KeySize] = 2
	if _, err := DecodeNodesReply(b); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad found flag: %v", err)
	}
}

// TestNodesReplyOversizedLists: hostile node/value counts are rejected
// before allocation.
func TestNodesReplyOversizedLists(t *testing.T) {
	n := &NodesReply{From: 5, FromAddr: "a", RPCID: 1, Key: sampleKey()}
	b := EncodeNodesReply(n)
	off := 3 + 4 + 4 + 1 + 8 + KeySize + 1 // through the found flag
	for i := 0; i < 4; i++ {
		b[off+i] = 0xFF // node count = 0xFFFFFFFF
	}
	if _, err := DecodeNodesReply(b); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized node list: %v", err)
	}
}
