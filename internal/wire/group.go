// Group messages carry the live broadcast-group protocol of §V on the
// wire. Clique members converge on a shared group view through
// GroupHello, a sequencer announces each round with Schedule and names
// exactly one transmitter with Grant, and the granted node ships the
// piece to the whole group in one PieceBcast. The formats follow the
// same header + length-prefixed big-endian layout as the three base
// messages.
package wire

import (
	"fmt"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// GroupWant is one file's piece state inside a GroupHello: which pieces
// the sender holds (Have is a little-endian-within-byte bitset of Total
// bits) and whether it is actively downloading the file (a requester)
// or merely holding pieces it can serve.
type GroupWant struct {
	URI         metadata.URI
	Total       int
	Downloading bool
	Have        []byte
}

// haveLen is the bitset byte length for n pieces.
func haveLen(n int) int { return (n + 7) / 8 }

// NewGroupWant returns a want for total pieces with an all-zero bitset.
func NewGroupWant(uri metadata.URI, total int, downloading bool) *GroupWant {
	return &GroupWant{URI: uri, Total: total, Downloading: downloading, Have: make([]byte, haveLen(total))}
}

// HaveBit reports whether piece i is held.
func (w *GroupWant) HaveBit(i int) bool {
	if i < 0 || i >= w.Total {
		return false
	}
	return w.Have[i/8]&(1<<(i%8)) != 0
}

// SetHave marks piece i as held.
func (w *GroupWant) SetHave(i int) {
	if i >= 0 && i < w.Total {
		w.Have[i/8] |= 1 << (i % 8)
	}
}

// Complete reports whether every piece is held.
func (w *GroupWant) Complete() bool {
	for i := 0; i < w.Total; i++ {
		if !w.HaveBit(i) {
			return false
		}
	}
	return w.Total > 0
}

// GroupHello announces the sender's broadcast-group view: the members
// it currently believes form its clique group, the highest schedule
// round it has seen, and its per-file piece state. A group goes live
// only once every member's GroupHello lists the same member set.
type GroupHello struct {
	From    trace.NodeID
	Members []trace.NodeID
	Round   uint64
	Wants   []GroupWant
	// FEC advertises fountain-coded data-plane support: a group streams
	// symbols only when *every* confirmed member's GroupHello sets it,
	// and falls back to grant/resend piece broadcast otherwise.
	FEC bool
}

// Schedule opens one broadcast round: the sequencer restates the member
// set it is scheduling for, the round number, and whether the group
// runs tit-for-tat (cyclic order) or cooperative (coordinator choice).
type Schedule struct {
	From      trace.NodeID
	Members   []trace.NodeID
	Round     uint64
	TitForTat bool
}

// NoPiece marks a Grant that leaves the piece choice to the sender
// (tit-for-tat: the cyclic order names the sender, the sender picks).
const NoPiece = int32(-1)

// Grant names the round's one transmitter. URI/Piece pin the piece in
// the cooperative case; an empty URI with Piece == NoPiece leaves the
// choice to the granted sender.
type Grant struct {
	From  trace.NodeID
	To    trace.NodeID
	Round uint64
	URI   metadata.URI
	Piece int32
}

// PieceBcast is one piece transmitted to the whole group at once — the
// (n-1)/n capacity move of §V. It mirrors Piece plus the sender and
// round, so receivers can dedup against the pairwise path and trackers
// can follow the schedule.
type PieceBcast struct {
	From  trace.NodeID
	Round uint64
	URI   metadata.URI
	Index int
	Total int
	Data  []byte
}

// AsPiece converts the broadcast to the pairwise piece form so the
// receive path (verify against stored metadata, store, dedup) is shared.
func (p *PieceBcast) AsPiece() *Piece {
	return &Piece{URI: p.URI, Index: p.Index, Total: p.Total, Data: p.Data}
}

// Type implements Msg.
func (*GroupHello) Type() MsgType { return TypeGroupHello }

// Type implements Msg.
func (*Schedule) Type() MsgType { return TypeSchedule }

// Type implements Msg.
func (*Grant) Type() MsgType { return TypeGrant }

// Type implements Msg.
func (*PieceBcast) Type() MsgType { return TypePieceBcast }

func encodeMembers(w *buffer, members []trace.NodeID) {
	w.uint32(uint32(len(members)))
	for _, id := range members {
		w.uint32(uint32(id))
	}
}

func decodeMembers(r *reader) ([]trace.NodeID, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("member list %d: %w", n, ErrTooLong)
	}
	var out []trace.NodeID
	for i := uint32(0); i < n; i++ {
		id, err := r.uint32()
		if err != nil {
			return nil, err
		}
		out = append(out, trace.NodeID(id))
	}
	return out, nil
}

// encodeWantList appends a length-prefixed per-file piece-state list —
// the codec shared by GroupHello.Wants and Hello.Have.
func encodeWantList(w *buffer, wants []GroupWant) {
	w.uint32(uint32(len(wants)))
	for i := range wants {
		want := &wants[i]
		w.str(string(want.URI))
		w.uint32(uint32(want.Total))
		if want.Downloading {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.bytes(want.Have)
	}
}

// decodeWantList parses a length-prefixed per-file piece-state list.
func decodeWantList(r *reader) ([]GroupWant, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("want list %d: %w", n, ErrTooLong)
	}
	var out []GroupWant
	for i := uint32(0); i < n; i++ {
		var want GroupWant
		uri, err := r.str(maxStrLen)
		if err != nil {
			return nil, err
		}
		want.URI = metadata.URI(uri)
		total, err := r.uint32()
		if err != nil {
			return nil, err
		}
		if total > maxListLen {
			return nil, fmt.Errorf("piece total %d: %w", total, ErrTooLong)
		}
		want.Total = int(total)
		flag, err := r.byte()
		if err != nil {
			return nil, err
		}
		switch flag {
		case 0:
		case 1:
			want.Downloading = true
		default:
			return nil, fmt.Errorf("downloading flag %d: %w", flag, ErrBadType)
		}
		if want.Have, err = r.bytes(maxListLen); err != nil {
			return nil, err
		}
		if len(want.Have) != haveLen(want.Total) {
			return nil, fmt.Errorf("have bitset %d bytes for %d pieces: %w",
				len(want.Have), want.Total, ErrTooLong)
		}
		out = append(out, want)
	}
	return out, nil
}

// EncodeGroupHello serializes a group view announcement.
func EncodeGroupHello(g *GroupHello) []byte {
	w := header(TypeGroupHello)
	w.uint32(uint32(g.From))
	encodeMembers(w, g.Members)
	w.uint64(g.Round)
	encodeWantList(w, g.Wants)
	if g.FEC {
		w.byte(1)
	} else {
		w.byte(0)
	}
	return w.b
}

// DecodeGroupHello parses a group view announcement.
func DecodeGroupHello(b []byte) (*GroupHello, error) {
	r, err := openReader(b, TypeGroupHello)
	if err != nil {
		return nil, err
	}
	g := &GroupHello{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	g.From = trace.NodeID(from)
	if g.Members, err = decodeMembers(r); err != nil {
		return nil, err
	}
	if g.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	if g.Wants, err = decodeWantList(r); err != nil {
		return nil, err
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch flag {
	case 0:
	case 1:
		g.FEC = true
	default:
		return nil, fmt.Errorf("fec flag %d: %w", flag, ErrBadType)
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return g, nil
}

// EncodeSchedule serializes a round announcement.
func EncodeSchedule(s *Schedule) []byte {
	w := header(TypeSchedule)
	w.uint32(uint32(s.From))
	encodeMembers(w, s.Members)
	w.uint64(s.Round)
	if s.TitForTat {
		w.byte(1)
	} else {
		w.byte(0)
	}
	return w.b
}

// DecodeSchedule parses a round announcement.
func DecodeSchedule(b []byte) (*Schedule, error) {
	r, err := openReader(b, TypeSchedule)
	if err != nil {
		return nil, err
	}
	s := &Schedule{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	s.From = trace.NodeID(from)
	if s.Members, err = decodeMembers(r); err != nil {
		return nil, err
	}
	if s.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch flag {
	case 0:
	case 1:
		s.TitForTat = true
	default:
		return nil, fmt.Errorf("tit-for-tat flag %d: %w", flag, ErrBadType)
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return s, nil
}

// EncodeGrant serializes a transmit grant.
func EncodeGrant(g *Grant) []byte {
	w := header(TypeGrant)
	w.uint32(uint32(g.From))
	w.uint32(uint32(g.To))
	w.uint64(g.Round)
	w.str(string(g.URI))
	w.uint32(uint32(g.Piece))
	return w.b
}

// DecodeGrant parses a transmit grant.
func DecodeGrant(b []byte) (*Grant, error) {
	r, err := openReader(b, TypeGrant)
	if err != nil {
		return nil, err
	}
	g := &Grant{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	g.From = trace.NodeID(from)
	to, err := r.uint32()
	if err != nil {
		return nil, err
	}
	g.To = trace.NodeID(to)
	if g.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	g.URI = metadata.URI(uri)
	piece, err := r.uint32()
	if err != nil {
		return nil, err
	}
	g.Piece = int32(piece)
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return g, nil
}

// EncodePieceBcast serializes a broadcast piece.
func EncodePieceBcast(p *PieceBcast) []byte {
	w := header(TypePieceBcast)
	w.uint32(uint32(p.From))
	w.uint64(p.Round)
	w.str(string(p.URI))
	w.uint32(uint32(p.Index))
	w.uint32(uint32(p.Total))
	w.bytes(p.Data)
	return w.b
}

// DecodePieceBcast parses a broadcast piece.
func DecodePieceBcast(b []byte) (*PieceBcast, error) {
	r, err := openReader(b, TypePieceBcast)
	if err != nil {
		return nil, err
	}
	p := &PieceBcast{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	p.From = trace.NodeID(from)
	if p.Round, err = r.uint64(); err != nil {
		return nil, err
	}
	uri, err := r.str(maxStrLen)
	if err != nil {
		return nil, err
	}
	p.URI = metadata.URI(uri)
	idx, err := r.uint32()
	if err != nil {
		return nil, err
	}
	p.Index = int(idx)
	total, err := r.uint32()
	if err != nil {
		return nil, err
	}
	p.Total = int(total)
	if p.Data, err = r.bytes(maxDataLen); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return p, nil
}
