// Command gencorpus seeds the wire decoder's fuzz corpus with corrupted
// frames captured from the fault injector: every valid message type is
// encoded and run through fault.CorruptFrame under a few fixed seeds,
// so the exact mutations the chaos tests inject are pinned as FuzzDecode
// regression inputs. Regenerate with:
//
//	go run ./internal/wire/gencorpus -out internal/wire/testdata/fuzz/FuzzDecode
//
// The output is deterministic; rerunning overwrites the same files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/fec"
	"repro/internal/metadata"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/wire"
)

func frames() [][]byte {
	rec := metadata.NewSynthetic(3, "news daily", "BBC", "world news",
		300*1024, metadata.DefaultPieceSize,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), []byte("k"))
	m := &wire.Metadata{Popularity: 0.5, Record: *rec}
	members := []trace.NodeID{3, 7, 11}
	want := wire.NewGroupWant(rec.URI, rec.NumPieces(), true)
	want.SetHave(0)
	pieceData := metadata.SyntheticPiece(rec.URI, 1, rec.PieceLen(1))
	enc, err := fec.NewEncoder(pieceData, 1024, 0xB10C)
	if err != nil {
		log.Fatal(err)
	}
	sym := &wire.Symbol{
		From: 7, Round: 13, URI: rec.URI, Piece: 1, Total: rec.NumPieces(),
		Seed: 0xB10C, DataLen: len(pieceData),
		Index: uint32(enc.K() + 2), Payload: enc.Symbol(uint32(enc.K() + 2)),
	}
	sym.Seal()
	ack := &wire.SymbolAck{From: 11, Round: 13, URI: rec.URI, Total: rec.NumPieces()}
	ack.Have = make([]byte, (ack.Total+7)/8)
	ack.SetHave(0)
	ack.SetHave(1)
	var key [wire.KeySize]byte
	for i := range key {
		key[i] = byte(i*5 + 1)
	}
	val := wire.DHTValue{Keyword: "news", TTLMillis: 120_000, Meta: *m}
	return [][]byte{
		wire.EncodeHello(&wire.Hello{
			From:        7,
			Heard:       []trace.NodeID{1, 2, 9},
			Queries:     []string{"jazz", "late show"},
			Downloading: []metadata.URI{rec.URI},
			Have:        []wire.GroupWant{*want},
		}),
		wire.EncodeMetadata(m),
		wire.EncodePiece(&wire.Piece{
			URI: rec.URI, Index: 0, Total: rec.NumPieces(),
			Data: metadata.SyntheticPiece(rec.URI, 0, rec.PieceLen(0)),
		}),
		wire.EncodePiece(&wire.Piece{
			URI: rec.URI, Index: 1, Total: rec.NumPieces(),
			Data:      metadata.SyntheticPiece(rec.URI, 1, rec.PieceLen(1)),
			Piggyback: m,
		}),
		wire.EncodeGroupHello(&wire.GroupHello{
			From: 7, Members: members, Round: 12, Wants: []wire.GroupWant{*want},
		}),
		wire.EncodeSchedule(&wire.Schedule{
			From: 3, Members: members, Round: 13, TitForTat: true,
		}),
		wire.EncodeGrant(&wire.Grant{
			From: 3, To: 7, Round: 13, URI: rec.URI, Piece: 1,
		}),
		wire.EncodePieceBcast(&wire.PieceBcast{
			From: 7, Round: 13, URI: rec.URI, Index: 1, Total: rec.NumPieces(),
			Data: metadata.SyntheticPiece(rec.URI, 1, rec.PieceLen(1)),
		}),
		wire.EncodeSymbol(sym),
		wire.EncodeSymbolAck(ack),
		wire.EncodeFindNode(&wire.FindNode{
			From: 7, FromAddr: "n7", RPCID: 21, Target: key,
		}),
		wire.EncodeFindValue(&wire.FindValue{
			From: 9, FromAddr: "n9", RPCID: 22, Key: key,
		}),
		wire.EncodeStoreValue(&wire.StoreValue{
			From: 3, FromAddr: "n3", RPCID: 23, Key: key, Value: val,
		}),
		wire.EncodeNodesReply(&wire.NodesReply{
			From: 11, FromAddr: "n11", RPCID: 24, Key: key, Found: true,
			Nodes:  []wire.NodeInfo{{ID: 3, Addr: "n3"}, {ID: 7, Addr: "n7"}},
			Values: []wire.DHTValue{val},
		}),
		wire.EncodeBusy(&wire.Busy{
			From: 5, Scope: wire.BusyQuery, RetryAfterMillis: 500,
		}),
	}
}

func main() {
	out := flag.String("out", "internal/wire/testdata/fuzz/FuzzDecode",
		"corpus directory to write")
	seeds := flag.Int("seeds", 4, "corrupted variants per frame")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	n := 0
	for fi, frame := range frames() {
		for s := 0; s < *seeds; s++ {
			r := rng.New(uint64(0xC0FFEE + fi*100 + s))
			mutated := fault.CorruptFrame(r, frame)
			name := filepath.Join(*out, fmt.Sprintf("injector-corrupt-%d-%d", fi, s))
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", mutated)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", n, *out)
}
