package wire

import (
	"bytes"
	"errors"
	"testing"
)

func sampleSymbol() *Symbol {
	s := &Symbol{
		From:    7,
		Round:   13,
		URI:     "dtn://files/3",
		Piece:   2,
		Total:   5,
		Seed:    0xB10CB10CB10C,
		DataLen: 4096,
		Index:   41,
		Payload: []byte("coded-symbol-payload-bytes"),
	}
	s.Seal()
	return s
}

func sampleSymbolAck() *SymbolAck {
	a := &SymbolAck{From: 11, Round: 13, URI: "dtn://files/3", Total: 5,
		Have: make([]byte, 1)}
	a.SetHave(0)
	a.SetHave(2)
	return a
}

func TestSymbolRoundTrip(t *testing.T) {
	s := sampleSymbol()
	b := EncodeSymbol(s)
	got, err := DecodeSymbol(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != s.From || got.Round != s.Round || got.URI != s.URI ||
		got.Piece != s.Piece || got.Total != s.Total || got.Seed != s.Seed ||
		got.DataLen != s.DataLen || got.Index != s.Index || got.Check != s.Check ||
		!bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", s, got)
	}
	if !got.CheckOK() {
		t.Fatal("decoded symbol fails its own check")
	}
}

// TestSymbolCheckCatchesCorruption: a payload or placement flip that
// survives framing is caught by the symbol check, the guard that keeps
// corrupted datagrams from poisoning a receiver's eliminator.
func TestSymbolCheckCatchesCorruption(t *testing.T) {
	s := sampleSymbol()
	s.Payload[3] ^= 0x40
	if s.CheckOK() {
		t.Fatal("payload corruption passed the check")
	}
	s.Payload[3] ^= 0x40
	s.Index++
	if s.CheckOK() {
		t.Fatal("index corruption passed the check")
	}
	s.Index--
	s.Seed ^= 1
	if s.CheckOK() {
		t.Fatal("seed corruption passed the check")
	}
	s.Seed ^= 1
	if !s.CheckOK() {
		t.Fatal("restored symbol fails the check")
	}
}

func TestSymbolAckRoundTrip(t *testing.T) {
	a := sampleSymbolAck()
	b := EncodeSymbolAck(a)
	got, err := DecodeSymbolAck(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != a.From || got.Round != a.Round || got.URI != a.URI ||
		got.Total != a.Total || !bytes.Equal(got.Have, a.Have) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", a, got)
	}
	if !got.HaveBit(0) || got.HaveBit(1) || !got.HaveBit(2) || got.HaveBit(5) {
		t.Fatal("ack bitset bits wrong after round trip")
	}
}

func TestSymbolAckBadBitsetLength(t *testing.T) {
	a := sampleSymbolAck()
	a.Have = append(a.Have, 0)
	if _, err := DecodeSymbolAck(EncodeSymbolAck(a)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized ack bitset: %v", err)
	}
}

func TestSymbolGenericDispatch(t *testing.T) {
	for _, m := range []Msg{sampleSymbol(), sampleSymbolAck()} {
		b := Encode(m)
		typ, err := Peek(b)
		if err != nil || typ != m.Type() {
			t.Fatalf("Peek(%v) = %v, %v", m.Type(), typ, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("Decode type %v, want %v", got.Type(), m.Type())
		}
		if !bytes.Equal(Encode(got), b) {
			t.Fatalf("re-encode mismatch for %v", m.Type())
		}
	}
}

func TestSymbolTruncation(t *testing.T) {
	truncateSweep(t, EncodeSymbol(sampleSymbol()), func(b []byte) error {
		_, err := DecodeSymbol(b)
		return err
	})
	truncateSweep(t, EncodeSymbolAck(sampleSymbolAck()), func(b []byte) error {
		_, err := DecodeSymbolAck(b)
		return err
	})
}

func TestSymbolTrailingBytes(t *testing.T) {
	for _, b := range [][]byte{EncodeSymbol(sampleSymbol()), EncodeSymbolAck(sampleSymbolAck())} {
		if _, err := Decode(append(b, 0)); !errors.Is(err, ErrTrailing) {
			t.Fatalf("trailing byte: %v", err)
		}
	}
}

// TestGroupHelloFECFlag: the capability bit survives the codec both
// ways, and a mangled flag byte is rejected.
func TestGroupHelloFECFlag(t *testing.T) {
	for _, fec := range []bool{false, true} {
		g := sampleGroupHello()
		g.FEC = fec
		got, err := DecodeGroupHello(EncodeGroupHello(g))
		if err != nil {
			t.Fatal(err)
		}
		if got.FEC != fec {
			t.Fatalf("FEC=%v round-tripped to %v", fec, got.FEC)
		}
	}
	b := EncodeGroupHello(sampleGroupHello())
	b[len(b)-1] = 2
	if _, err := DecodeGroupHello(b); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad fec flag: %v", err)
	}
}
