// Busy is the 429-style backpressure frame. A node that sheds an
// inbound request under admission control answers with Busy instead of
// silently dropping it: the frame names which request lane was shed
// (Scope) and how long the sender should back off before re-driving
// that lane (RetryAfterMillis). Busy frames themselves are exempt from
// admission control so backpressure can always be signaled.
package wire

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// BusyScope names the request lane a Busy frame sheds.
type BusyScope byte

const (
	// BusyQuery: keyword queries against the metadata catalog.
	BusyQuery BusyScope = 1 + iota
	// BusyPiece: hello-driven piece serving (the download plane).
	BusyPiece
	// BusyDHT: FindNode/FindValue/StoreValue traffic.
	BusyDHT
	// BusySymbol: fountain-coded symbol relay.
	BusySymbol
)

// String names the scope.
func (s BusyScope) String() string {
	switch s {
	case BusyQuery:
		return "query"
	case BusyPiece:
		return "piece"
	case BusyDHT:
		return "dht"
	case BusySymbol:
		return "symbol"
	default:
		return fmt.Sprintf("BusyScope(%d)", byte(s))
	}
}

// validBusyScope reports whether a decoded scope byte is a defined
// lane.
func validBusyScope(s BusyScope) bool {
	return s >= BusyQuery && s <= BusySymbol
}

// Busy tells the receiver to stop re-driving one request lane at the
// sender for RetryAfterMillis. It is advisory: the regular hello beacon
// keeps flowing (liveness is not backpressure), but out-of-band
// re-drives honor the window.
type Busy struct {
	From             trace.NodeID
	Scope            BusyScope
	RetryAfterMillis uint32
}

// Type implements Msg.
func (*Busy) Type() MsgType { return TypeBusy }

// RetryAfter converts the advertised window to a duration.
func (b *Busy) RetryAfter() time.Duration {
	return time.Duration(b.RetryAfterMillis) * time.Millisecond
}

// EncodeBusy serializes a backpressure frame.
func EncodeBusy(b *Busy) []byte {
	w := header(TypeBusy)
	w.uint32(uint32(b.From))
	w.byte(byte(b.Scope))
	w.uint32(b.RetryAfterMillis)
	return w.b
}

// DecodeBusy parses an encoded backpressure frame.
func DecodeBusy(buf []byte) (*Busy, error) {
	r, err := openReader(buf, TypeBusy)
	if err != nil {
		return nil, err
	}
	b := &Busy{}
	from, err := r.uint32()
	if err != nil {
		return nil, err
	}
	b.From = trace.NodeID(from)
	sc, err := r.byte()
	if err != nil {
		return nil, err
	}
	b.Scope = BusyScope(sc)
	if !validBusyScope(b.Scope) {
		return nil, fmt.Errorf("busy scope %d: %w", sc, ErrBadType)
	}
	if b.RetryAfterMillis, err = r.uint32(); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return b, nil
}
