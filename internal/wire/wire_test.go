package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var key = []byte("pub-key")

func sampleMeta() *Metadata {
	rec := metadata.NewSynthetic(3, "jazz night live", "FOX",
		"late show description", 600*1024, metadata.DefaultPieceSize,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), key)
	return &Metadata{Popularity: 0.375, Record: *rec}
}

func TestHelloRoundTrip(t *testing.T) {
	want := NewGroupWant("dtn://files/3", 3, true)
	want.SetHave(0)
	want.SetHave(2)
	h := &Hello{
		From:        7,
		Heard:       []trace.NodeID{1, 2, 9},
		Queries:     []string{"jazz", "late show"},
		Downloading: []metadata.URI{"dtn://files/3"},
		Have:        []GroupWant{*want},
	}
	b := EncodeHello(h)
	got, err := DecodeHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("round trip:\nin  %+v\nout %+v", h, got)
	}
	if !got.Have[0].HaveBit(0) || got.Have[0].HaveBit(1) || !got.Have[0].HaveBit(2) {
		t.Fatalf("have bitmap lost: %+v", got.Have[0])
	}
}

func TestHelloRejectsBadHaveBitset(t *testing.T) {
	// A have bitset whose byte length disagrees with Total is malformed.
	h := &Hello{From: 1, Have: []GroupWant{{URI: "dtn://files/1", Total: 9, Have: []byte{0xFF}}}}
	if _, err := DecodeHello(EncodeHello(h)); err == nil {
		t.Fatal("9-piece want with a 1-byte bitset decoded")
	}
}

func TestEmptyHelloRoundTrip(t *testing.T) {
	h := &Hello{From: 0}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.Heard != nil || got.Queries != nil || got.Downloading != nil || got.Have != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestMetadataRoundTripPreservesSignature(t *testing.T) {
	m := sampleMeta()
	b := EncodeMetadata(m)
	got, err := DecodeMetadata(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Popularity != m.Popularity {
		t.Fatalf("popularity %v != %v", got.Popularity, m.Popularity)
	}
	if !got.Record.Verify(key) {
		t.Fatal("decoded record fails signature verification")
	}
	if err := got.Record.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Record.Name != m.Record.Name || got.Record.URI != m.Record.URI {
		t.Fatalf("fields lost: %+v", got.Record)
	}
	if len(got.Record.PieceHashes) != len(m.Record.PieceHashes) {
		t.Fatalf("piece hashes: %d != %d", len(got.Record.PieceHashes), len(m.Record.PieceHashes))
	}
}

func TestPieceRoundTripAndVerify(t *testing.T) {
	m := sampleMeta()
	data := metadata.SyntheticPiece(m.Record.URI, 1, m.Record.PieceLen(1))
	p := &Piece{
		URI:       m.Record.URI,
		Index:     1,
		Total:     m.Record.NumPieces(),
		Data:      data,
		Piggyback: m,
	}
	b := EncodePiece(p)
	got, err := DecodePiece(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.URI != p.URI || got.Index != 1 || got.Total != p.Total {
		t.Fatalf("fields: %+v", got)
	}
	if !got.Verify(&got.Piggyback.Record) {
		t.Fatal("decoded piece fails checksum against piggybacked record")
	}
	if !got.Piggyback.Record.Verify(key) {
		t.Fatal("piggybacked record fails signature")
	}
}

func TestPieceWithoutPiggyback(t *testing.T) {
	p := &Piece{URI: "dtn://files/1", Index: 0, Total: 4, Data: []byte{1, 2, 3}}
	got, err := DecodePiece(EncodePiece(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Piggyback != nil {
		t.Fatalf("unexpected piggyback %+v", got.Piggyback)
	}
}

func TestCorruptedPieceFailsVerify(t *testing.T) {
	m := sampleMeta()
	data := metadata.SyntheticPiece(m.Record.URI, 0, m.Record.PieceLen(0))
	p := &Piece{URI: m.Record.URI, Index: 0, Total: 3, Data: data}
	b := EncodePiece(p)
	// Flip a bit inside the data payload.
	b[len(b)-10] ^= 0x01
	got, err := DecodePiece(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Verify(&m.Record) {
		t.Fatal("corrupted piece verified")
	}
}

func TestPeek(t *testing.T) {
	h := EncodeHello(&Hello{From: 1})
	if tp, err := Peek(h); err != nil || tp != TypeHello {
		t.Fatalf("Peek(hello) = %v, %v", tp, err)
	}
	m := EncodeMetadata(sampleMeta())
	if tp, err := Peek(m); err != nil || tp != TypeMetadata {
		t.Fatalf("Peek(metadata) = %v, %v", tp, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := EncodeHello(&Hello{From: 1, Queries: []string{"q"}})
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", []byte{magic}},
		{"bad magic", append([]byte{0x00}, valid[1:]...)},
		{"bad version", func() []byte {
			b := append([]byte(nil), valid...)
			b[1] = 99
			return b
		}()},
		{"bad type", func() []byte {
			b := append([]byte(nil), valid...)
			b[2] = 99
			return b
		}()},
		{"truncated body", valid[:len(valid)-2]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeHello(tt.b); err == nil {
				t.Fatal("malformed input decoded")
			}
		})
	}
}

func TestDecodeWrongType(t *testing.T) {
	h := EncodeHello(&Hello{From: 1})
	if _, err := DecodeMetadata(h); err == nil {
		t.Fatal("hello decoded as metadata")
	}
	if _, err := DecodePiece(h); err == nil {
		t.Fatal("hello decoded as piece")
	}
}

func TestHostileLengthRejected(t *testing.T) {
	// Claim a gigantic heard-list without providing the bytes.
	w := &buffer{}
	w.byte(magic)
	w.byte(version)
	w.byte(byte(TypeHello))
	w.uint32(1)          // From
	w.uint32(0xFFFFFFFF) // heard count
	if _, err := DecodeHello(w.b); err == nil {
		t.Fatal("hostile list length accepted")
	}
}

func TestHelloRoundTripProperty(t *testing.T) {
	f := func(from uint16, heard []uint16, queries []string) bool {
		h := &Hello{From: trace.NodeID(from)}
		for _, v := range heard {
			h.Heard = append(h.Heard, trace.NodeID(v))
		}
		h.Queries = queries
		got, err := DecodeHello(EncodeHello(h))
		if err != nil {
			return false
		}
		if got.From != h.From || len(got.Heard) != len(h.Heard) || len(got.Queries) != len(h.Queries) {
			return false
		}
		for i := range h.Heard {
			if got.Heard[i] != h.Heard[i] {
				return false
			}
		}
		for i := range h.Queries {
			if got.Queries[i] != h.Queries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		// Any of the decoders may error, but none may panic.
		_, _ = DecodeHello(b)
		_, _ = DecodeMetadata(b)
		_, _ = DecodePiece(b)
		_, _ = Peek(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeHello.String() != "hello" || TypeMetadata.String() != "metadata" ||
		TypePiece.String() != "piece" {
		t.Fatal("type names wrong")
	}
	if TypeSymbol.String() != "symbol" || TypeSymbolAck.String() != "symbol-ack" {
		t.Fatal("symbol type names wrong")
	}
	if got := MsgType(99).String(); got != "MsgType(99)" {
		t.Fatalf("unknown type = %q", got)
	}
}

// truncateSweep checks every prefix of an encoded message fails to
// decode (no panic, no false success) — covers each truncation branch.
func truncateSweep(t *testing.T, full []byte, decode func([]byte) error) {
	t.Helper()
	for cut := 0; cut < len(full); cut++ {
		if err := decode(full[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(full))
		}
	}
	if err := decode(full); err != nil {
		t.Fatalf("full message failed: %v", err)
	}
}

func TestMetadataTruncationSweep(t *testing.T) {
	b := EncodeMetadata(sampleMeta())
	truncateSweep(t, b, func(p []byte) error {
		_, err := DecodeMetadata(p)
		return err
	})
}

func TestPieceTruncationSweep(t *testing.T) {
	m := sampleMeta()
	p := &Piece{
		URI:       m.Record.URI,
		Index:     0,
		Total:     3,
		Data:      []byte("payload"),
		Piggyback: m,
	}
	b := EncodePiece(p)
	truncateSweep(t, b, func(buf []byte) error {
		_, err := DecodePiece(buf)
		return err
	})
}

func TestHelloTruncationSweep(t *testing.T) {
	h := &Hello{From: 3, Heard: []trace.NodeID{1}, Queries: []string{"q"},
		Downloading: []metadata.URI{"dtn://files/1"}}
	b := EncodeHello(h)
	truncateSweep(t, b, func(buf []byte) error {
		_, err := DecodeHello(buf)
		return err
	})
}

func TestPieceBadPiggybackFlag(t *testing.T) {
	p := &Piece{URI: "u", Index: 0, Total: 1, Data: []byte("x")}
	b := EncodePiece(p)
	b[len(b)-1] = 7 // invalid piggyback flag
	if _, err := DecodePiece(b); err == nil {
		t.Fatal("invalid piggyback flag accepted")
	}
}

func TestMetadataTrailingBytes(t *testing.T) {
	b := append(EncodeMetadata(sampleMeta()), 0x00)
	if _, err := DecodeMetadata(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPieceTrailingBytes(t *testing.T) {
	b := append(EncodePiece(&Piece{URI: "u", Index: 0, Total: 1, Data: nil}), 0x01)
	if _, err := DecodePiece(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestHostileStringLength(t *testing.T) {
	// Claim a giant URI length inside a piece.
	w := &buffer{}
	w.byte(magic)
	w.byte(version)
	w.byte(byte(TypePiece))
	w.uint32(0xFFFFFF00)
	if _, err := DecodePiece(w.b); err == nil {
		t.Fatal("hostile string length accepted")
	}
}
