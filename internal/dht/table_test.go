package dht

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func contact(id int) Contact {
	return Contact{ID: trace.NodeID(id), Addr: fmt.Sprintf("n%d", id)}
}

func TestKeyDomainSeparation(t *testing.T) {
	if NodeKey(3) == KeywordKey("3") {
		t.Fatal("node and keyword keys collide")
	}
	if KeywordKey("Jazz") != KeywordKey("jazz") {
		t.Fatal("keyword keys are case-sensitive")
	}
	if NodeKey(3) == NodeKey(4) {
		t.Fatal("distinct nodes share a key")
	}
}

func TestBucketIndex(t *testing.T) {
	k := NodeKey(1)
	if got := k.BucketIndex(k); got != -1 {
		t.Fatalf("self distance bucket = %d, want -1", got)
	}
	var zero, one Key
	one[KeySize-1] = 1
	if got := zero.BucketIndex(one); got != 0 {
		t.Fatalf("distance-1 bucket = %d, want 0", got)
	}
	var top Key
	top[0] = 0x80
	if got := zero.BucketIndex(top); got != 255 {
		t.Fatalf("top-bit bucket = %d, want 255", got)
	}
}

// bruteClosest sorts the given IDs by XOR distance to target — the
// specification Closest must match.
func bruteClosest(target Key, ids []trace.NodeID, n int) []trace.NodeID {
	sorted := append([]trace.NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := NodeKey(sorted[i]), NodeKey(sorted[j])
		if a != b && target.Closer(a, b) {
			return true
		}
		if a != b && target.Closer(b, a) {
			return false
		}
		return sorted[i] < sorted[j]
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// TestClosestMatchesBruteForce: for random contact sets and random
// targets, Table.Closest agrees with a brute-force sort of everything in
// the table — the closest-K invariant lookups depend on.
func TestClosestMatchesBruteForce(t *testing.T) {
	r := rng.New(0xDA7)
	for trial := 0; trial < 20; trial++ {
		tab := NewTable(0, 8)
		var inTable []trace.NodeID
		for i := 0; i < 200; i++ {
			id := 1 + r.Intn(5000)
			tab.Observe(contact(id))
		}
		for _, c := range tab.Contacts() {
			inTable = append(inTable, c.ID)
		}
		for q := 0; q < 10; q++ {
			target := KeywordKey(fmt.Sprintf("query-%d-%d", trial, q))
			for _, n := range []int{1, 3, 8, 20} {
				got := tab.Closest(target, n)
				want := bruteClosest(target, inTable, n)
				if len(got) != len(want) {
					t.Fatalf("Closest(%d) returned %d contacts, want %d", n, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i] {
						t.Fatalf("Closest(%d)[%d] = n%d, want n%d", n, i, got[i].ID, want[i])
					}
				}
			}
		}
	}
}

// TestBucketLRUEviction: a full bucket evicts its least-recently-seen
// entry, and refreshing an entry saves it from eviction.
func TestBucketLRUEviction(t *testing.T) {
	self := trace.NodeID(0)
	selfKey := NodeKey(self)
	// Collect IDs that land in the same bucket relative to self.
	byBucket := map[int][]int{}
	var bucket, need int
	for id := 1; id < 100000; id++ {
		bi := selfKey.BucketIndex(NodeKey(trace.NodeID(id)))
		byBucket[bi] = append(byBucket[bi], id)
		if len(byBucket[bi]) >= 5 {
			bucket, need = bi, 5
			break
		}
	}
	if need == 0 {
		t.Fatal("no bucket collected 5 ids")
	}
	ids := byBucket[bucket]
	k := 3
	tab := NewTable(self, k)
	for _, id := range ids[:k] {
		tab.Observe(contact(id)) // bucket now full: ids[0] is LRS
	}
	// Refresh ids[0]; ids[1] becomes least-recently-seen.
	tab.Observe(contact(ids[0]))
	tab.Observe(contact(ids[3]))
	has := func(id int) bool {
		for _, c := range tab.Contacts() {
			if c.ID == trace.NodeID(id) {
				return true
			}
		}
		return false
	}
	if has(ids[1]) {
		t.Fatal("least-recently-seen entry survived a full-bucket insert")
	}
	if !has(ids[0]) {
		t.Fatal("refreshed entry was evicted")
	}
	if !has(ids[3]) {
		t.Fatal("new entry missing after insert")
	}
	if tab.Len() != k {
		t.Fatalf("table length %d, want %d", tab.Len(), k)
	}
	// One more insert evicts ids[2], the next LRS.
	tab.Observe(contact(ids[4]))
	if has(ids[2]) {
		t.Fatal("second eviction skipped the least-recently-seen entry")
	}
	if !has(ids[0]) || !has(ids[3]) || !has(ids[4]) {
		t.Fatal("wrong entries evicted")
	}
}

func TestObserveRefreshesAddr(t *testing.T) {
	tab := NewTable(0, 4)
	tab.Observe(Contact{ID: 7, Addr: "old"})
	tab.Observe(Contact{ID: 7, Addr: "new"})
	cs := tab.Contacts()
	if len(cs) != 1 || cs[0].Addr != "new" {
		t.Fatalf("contacts = %+v, want one entry with refreshed addr", cs)
	}
	// An empty addr must not erase a known one.
	tab.Observe(Contact{ID: 7})
	if cs = tab.Contacts(); cs[0].Addr != "new" {
		t.Fatalf("empty addr erased known addr: %+v", cs)
	}
}

func TestTableNeverStoresSelf(t *testing.T) {
	tab := NewTable(7, 4)
	if tab.Observe(contact(7)) {
		t.Fatal("table accepted self")
	}
	if tab.Len() != 0 {
		t.Fatal("self was stored")
	}
}

func TestRemove(t *testing.T) {
	tab := NewTable(0, 8)
	for i := 1; i <= 10; i++ {
		tab.Observe(contact(i))
	}
	n := tab.Len()
	tab.Remove(5)
	if tab.Len() != n-1 {
		t.Fatalf("length %d after remove, want %d", tab.Len(), n-1)
	}
	for _, c := range tab.Contacts() {
		if c.ID == 5 {
			t.Fatal("removed contact still present")
		}
	}
	tab.Remove(5) // removing absent contact is a no-op
	if tab.Len() != n-1 {
		t.Fatal("double remove changed length")
	}
}
