package dht

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func testMeta(id int, pop float64) wire.Metadata {
	rec := metadata.NewSynthetic(metadata.FileID(id), fmt.Sprintf("f%d synthetic file", id),
		"pub", "desc", 16*1024, 1024,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), []byte("k"))
	return wire.Metadata{Popularity: pop, Record: *rec}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(10)
	now := time.Unix(1000, 0)
	key := KeywordKey("jazz")
	s.Put(key, "jazz", testMeta(1, 0.5), time.Minute, now)
	vals := s.Get(key, now)
	if len(vals) != 1 || vals[0].Keyword != "jazz" {
		t.Fatalf("Get = %+v, want one jazz record", vals)
	}
	if vals[0].TTLMillis != 60_000 {
		t.Fatalf("TTL = %d ms, want 60000", vals[0].TTLMillis)
	}
	// Half the TTL later, half remains.
	vals = s.Get(key, now.Add(30*time.Second))
	if len(vals) != 1 || vals[0].TTLMillis != 30_000 {
		t.Fatalf("Get at +30s = %+v, want 30000 ms left", vals)
	}
	// Past expiry the record is gone from reads and from Sweep.
	if vals = s.Get(key, now.Add(2*time.Minute)); len(vals) != 0 {
		t.Fatalf("expired record still served: %+v", vals)
	}
	if n := s.Sweep(now.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	if s.Len() != 0 {
		t.Fatalf("store length %d after sweep, want 0", s.Len())
	}
}

func TestStoreReplaceSameURI(t *testing.T) {
	s := NewStore(10)
	now := time.Unix(1000, 0)
	key := KeywordKey("jazz")
	s.Put(key, "jazz", testMeta(1, 0.2), time.Minute, now)
	s.Put(key, "jazz", testMeta(1, 0.9), time.Minute, now.Add(time.Second))
	if s.Len() != 1 {
		t.Fatalf("store length %d, want 1 (same URI replaces)", s.Len())
	}
	vals := s.Get(key, now.Add(2*time.Second))
	if len(vals) != 1 || vals[0].Meta.Popularity != 0.9 {
		t.Fatalf("Get = %+v, want replaced popularity 0.9", vals)
	}
}

// TestStorePopularityEviction: capacity pressure evicts the least
// popular record, whatever key it lives under.
func TestStorePopularityEviction(t *testing.T) {
	s := NewStore(3)
	now := time.Unix(1000, 0)
	pops := []float64{0.5, 0.1, 0.9}
	for i, p := range pops {
		s.Put(KeywordKey(fmt.Sprintf("w%d", i)), fmt.Sprintf("w%d", i),
			testMeta(i, p), time.Minute, now)
	}
	// A fourth record evicts the 0.1 one.
	s.Put(KeywordKey("w3"), "w3", testMeta(3, 0.4), time.Minute, now)
	if s.Len() != 3 {
		t.Fatalf("store length %d, want 3", s.Len())
	}
	if got := s.Get(KeywordKey("w1"), now); len(got) != 0 {
		t.Fatalf("least popular record survived eviction: %+v", got)
	}
	for _, w := range []string{"w0", "w2", "w3"} {
		if got := s.Get(KeywordKey(w), now); len(got) != 1 {
			t.Fatalf("record %s missing after eviction", w)
		}
	}
	if s.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", s.Evicted())
	}
}

// TestStoreEvictionTieBreaksOldest: equal popularity evicts the record
// stored longest ago.
func TestStoreEvictionTieBreaksOldest(t *testing.T) {
	s := NewStore(2)
	now := time.Unix(1000, 0)
	s.Put(KeywordKey("a"), "a", testMeta(1, 0.5), time.Minute, now)
	s.Put(KeywordKey("b"), "b", testMeta(2, 0.5), time.Minute, now.Add(time.Second))
	s.Put(KeywordKey("c"), "c", testMeta(3, 0.5), time.Minute, now.Add(2*time.Second))
	if got := s.Get(KeywordKey("a"), now.Add(3*time.Second)); len(got) != 0 {
		t.Fatal("oldest equal-popularity record survived")
	}
	if got := s.Get(KeywordKey("b"), now.Add(3*time.Second)); len(got) != 1 {
		t.Fatal("newer record evicted on tie")
	}
}

// TestStoreGetOrdersByPopularity: multiple records under one key come
// back most popular first.
func TestStoreGetOrdersByPopularity(t *testing.T) {
	s := NewStore(10)
	now := time.Unix(1000, 0)
	key := KeywordKey("news")
	for i, p := range []float64{0.3, 0.8, 0.5} {
		s.Put(key, "news", testMeta(i, p), time.Minute, now)
	}
	vals := s.Get(key, now)
	if len(vals) != 3 {
		t.Fatalf("Get returned %d records, want 3", len(vals))
	}
	if vals[0].Meta.Popularity != 0.8 || vals[1].Meta.Popularity != 0.5 ||
		vals[2].Meta.Popularity != 0.3 {
		t.Fatalf("Get order %v %v %v, want descending popularity",
			vals[0].Meta.Popularity, vals[1].Meta.Popularity, vals[2].Meta.Popularity)
	}
}
