package dht

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

// BenchmarkTableObserve measures k-bucket maintenance under a stream of
// contact sightings (the hot path: every inbound DHT message observes
// its sender).
func BenchmarkTableObserve(b *testing.B) {
	tab := NewTable(0, 16)
	contacts := make([]Contact, 1024)
	for i := range contacts {
		contacts[i] = contact(i + 1)
	}
	for _, c := range contacts {
		tab.Observe(c) // pre-warm the key memo and the buckets
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Observe(contacts[i%len(contacts)])
	}
}

// BenchmarkTableClosest measures the closest-K scan that opens every
// lookup and answers every FindNode.
func BenchmarkTableClosest(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("contacts=%d", n), func(b *testing.B) {
			tab := NewTable(0, 16)
			for i := 1; i <= n; i++ {
				tab.Observe(contact(i))
			}
			targets := make([]Key, 64)
			for i := range targets {
				targets[i] = KeywordKey(fmt.Sprintf("t%d", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Closest(targets[i%len(targets)], 16)
			}
		})
	}
}

// BenchmarkLookup measures a full iterative lookup across an in-memory
// mesh — RPC correlation, shortlist maintenance, and codec round-trips
// included.
func BenchmarkLookup(b *testing.B) {
	m := newMesh()
	var ids []trace.NodeID
	for i := 1; i <= 32; i++ {
		ids = append(ids, trace.NodeID(i))
		m.add(trace.NodeID(i), 8, 3, 256)
	}
	m.bootstrap(ids, 1)
	e := m.get(ids[len(ids)-1])
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Lookup(ctx, KeywordKey(fmt.Sprintf("bench-%d", i)), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures record-cache insertion with eviction
// pressure (cache capacity half the inserted set).
func BenchmarkStorePut(b *testing.B) {
	s := NewStore(512)
	now := time.Unix(1000, 0)
	metas := make([]struct {
		key Key
		m   int
	}, 1024)
	for i := range metas {
		metas[i].key = KeywordKey(fmt.Sprintf("w%d", i))
		metas[i].m = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := metas[i%len(metas)]
		s.Put(e.key, "w", testMeta(e.m, float64(i%100)/100), time.Minute, now)
	}
}
