// Package dht implements a Kademlia-style keyword→metadata index run by
// the nodes themselves, the decentralized replacement for the paper's
// single Internet-side metadata server. Node IDs and keywords hash into
// one 256-bit key space; each node keeps an XOR-metric routing table of
// k-buckets (table.go) and a bounded, popularity-ranked record cache
// (store.go), and resolves queries with iterative α-parallel
// FindNode/FindValue lookups (engine.go). Because looked-up records stay
// in the local cache, DTN-side nodes that carried DHT state out of
// Internet range keep answering queries during contacts with no Internet
// path at all — the cooperative-caching behaviour the paper's ranking
// work motivates.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
	"strings"

	"repro/internal/trace"
)

// KeySize is the key length in bytes; the key space is 256-bit.
const KeySize = sha256.Size

// Key is a point in the DHT's XOR-metric key space: the sha256 of a node
// ID or of a normalized keyword.
type Key [KeySize]byte

// NodeKey maps a node ID into the key space. The "node:" prefix domain-
// separates node keys from keyword keys so a hostile keyword cannot
// collide with a node's position.
func NodeKey(id trace.NodeID) Key {
	var b [12]byte
	copy(b[:4], "node")
	binary.BigEndian.PutUint64(b[4:], uint64(int64(id)))
	return sha256.Sum256(b[:])
}

// KeywordKey maps a keyword into the key space. Keywords are normalized
// to lower case so "Jazz" and "jazz" index the same records; callers
// tokenize multi-word titles (internal/search.Tokenize) and publish each
// token separately.
func KeywordKey(word string) Key {
	return sha256.Sum256([]byte("kw:" + strings.ToLower(word)))
}

// Distance is the XOR metric between two keys.
func (k Key) Distance(o Key) Key {
	var d Key
	for i := range k {
		d[i] = k[i] ^ o[i]
	}
	return d
}

// BucketIndex returns the k-bucket index for a contact at distance d from
// self: the position of the highest set bit of the XOR distance, with 255
// meaning the first bit differs and 0 the last. Equal keys (distance
// zero) return -1 — a node never stores itself.
func (k Key) BucketIndex(o Key) int {
	for i := range k {
		if x := k[i] ^ o[i]; x != 0 {
			return (KeySize-1-i)*8 + bits.Len8(x) - 1
		}
	}
	return -1
}

// Closer reports whether a is strictly closer to k than b under the XOR
// metric.
func (k Key) Closer(a, b Key) bool {
	for i := range k {
		da, db := a[i]^k[i], b[i]^k[i]
		if da != db {
			return da < db
		}
	}
	return false
}
