package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/wire"
)

// mesh wires engines together with a perfect in-memory transport:
// Send delivers to the target's HandleMessage in a goroutine, and any
// reply routes straight back to the sender. Messages round-trip through
// the wire codec so the engines exercise exactly what the daemon sends.
type mesh struct {
	mu      sync.Mutex
	engines map[trace.NodeID]*Engine
}

func newMesh() *mesh { return &mesh{engines: make(map[trace.NodeID]*Engine)} }

func (m *mesh) add(id trace.NodeID, k, alpha, cacheCap int) *Engine {
	e := New(Config{
		Self: id, Addr: fmt.Sprintf("n%d", id),
		K: k, Alpha: alpha, CacheCap: cacheCap,
		RequestTimeout: 50 * time.Millisecond,
		TTL:            time.Minute,
		Send:           m.sender(id),
	})
	m.mu.Lock()
	m.engines[id] = e
	m.mu.Unlock()
	return e
}

func (m *mesh) kill(id trace.NodeID) {
	m.mu.Lock()
	delete(m.engines, id)
	m.mu.Unlock()
}

func (m *mesh) get(id trace.NodeID) *Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engines[id]
}

func (m *mesh) sender(from trace.NodeID) func(Contact, wire.Msg) error {
	return func(c Contact, msg wire.Msg) error {
		m.mu.Lock()
		tgt := m.engines[c.ID]
		m.mu.Unlock()
		if tgt == nil {
			return errors.New("mesh: peer down")
		}
		frame := wire.Encode(msg)
		go func() {
			decoded, err := wire.Decode(frame)
			if err != nil {
				panic(err)
			}
			reply := tgt.HandleMessage(decoded)
			if reply == nil {
				return
			}
			m.mu.Lock()
			src := m.engines[from]
			m.mu.Unlock()
			if src == nil {
				return
			}
			back, err := wire.Decode(wire.Encode(reply))
			if err != nil {
				panic(err)
			}
			src.HandleMessage(back)
		}()
		return nil
	}
}

// bootstrap introduces every engine to one seed contact and refreshes,
// the way a real node joins: everything else is learned through lookups.
func (m *mesh) bootstrap(ids []trace.NodeID, seed trace.NodeID) {
	ctx := context.Background()
	for _, id := range ids {
		if id == seed {
			continue
		}
		e := m.get(id)
		e.Observe(seed, fmt.Sprintf("n%d", seed))
		e.Refresh(ctx)
	}
	// A second refresh round lets early joiners learn late ones.
	for _, id := range ids {
		m.get(id).Refresh(ctx)
	}
}

func TestLookupFindsPublishedValue(t *testing.T) {
	m := newMesh()
	var ids []trace.NodeID
	for i := 1; i <= 20; i++ {
		ids = append(ids, trace.NodeID(i))
		m.add(trace.NodeID(i), 4, 3, 64)
	}
	m.bootstrap(ids, 1)

	ctx := context.Background()
	meta := testMeta(7, 0.6)
	if _, err := m.engines[2].Publish(ctx, "jazz", meta); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// A different node resolves the keyword through the network.
	vals, err := m.engines[17].Query(ctx, "jazz")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(vals) != 1 || vals[0].Meta.Record.URI != meta.Record.URI {
		t.Fatalf("Query = %+v, want the published record", vals)
	}
	// The result was cached: a repeat query is a local hit.
	before := m.engines[17].Stats().CacheHits
	if _, err := m.engines[17].Query(ctx, "jazz"); err != nil {
		t.Fatal(err)
	}
	if got := m.engines[17].Stats().CacheHits; got != before+1 {
		t.Fatalf("repeat query cache hits %d, want %d", got, before+1)
	}
}

func TestQueryMissReturnsEmpty(t *testing.T) {
	m := newMesh()
	var ids []trace.NodeID
	for i := 1; i <= 8; i++ {
		ids = append(ids, trace.NodeID(i))
		m.add(trace.NodeID(i), 4, 2, 64)
	}
	m.bootstrap(ids, 1)
	vals, err := m.engines[5].Query(context.Background(), "no-such-keyword")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(vals) != 0 {
		t.Fatalf("Query hit on unpublished keyword: %+v", vals)
	}
}

func TestLookupNoContacts(t *testing.T) {
	m := newMesh()
	e := m.add(1, 4, 2, 16)
	if _, err := e.Query(context.Background(), "jazz"); !errors.Is(err, ErrNoContacts) {
		t.Fatalf("query with empty table: %v, want ErrNoContacts", err)
	}
}

// TestLookupPermutationInvariance: whatever order nodes join in, every
// node's lookup for the same target converges on the same closest-K set
// — the set a brute-force sort over all live nodes names.
func TestLookupPermutationInvariance(t *testing.T) {
	const n = 24
	const k = 4
	r := rng.New(0xFADE)
	targets := []Key{KeywordKey("alpha"), KeywordKey("beta"), NodeKey(999)}

	var want [][]trace.NodeID
	for perm := 0; perm < 3; perm++ {
		order := r.Perm(n)
		m := newMesh()
		var ids []trace.NodeID
		for _, i := range order {
			id := trace.NodeID(i + 1)
			ids = append(ids, id)
			m.add(id, k, 3, 64)
		}
		m.bootstrap(ids, ids[0])

		all := make([]trace.NodeID, n)
		for i := range all {
			all[i] = trace.NodeID(i + 1)
		}
		// Query from the same node in every permutation (the querier
		// itself never appears in its own results, so a varying querier
		// would change the expected set).
		const querier = trace.NodeID(1)
		for ti, target := range targets {
			res, err := m.get(querier).Lookup(context.Background(), target, false)
			if err != nil {
				t.Fatalf("perm %d: Lookup: %v", perm, err)
			}
			got := make([]trace.NodeID, 0, k)
			for _, c := range res.Closest {
				got = append(got, c.ID)
			}
			// Compare against brute force over every node except the
			// querier (a lookup never returns the asking node).
			var others []trace.NodeID
			for _, id := range all {
				if id != querier {
					others = append(others, id)
				}
			}
			exp := bruteClosest(target, others, k)
			if fmt.Sprint(got) != fmt.Sprint(exp) {
				t.Fatalf("perm %d target %d: converged on %v, want %v", perm, ti, got, exp)
			}
			if perm == 0 {
				want = append(want, got)
			} else if fmt.Sprint(want[ti]) != fmt.Sprint(got) {
				t.Fatalf("perm %d target %d: %v differs from first permutation's %v",
					perm, ti, got, want[ti])
			}
		}
	}
}

// TestLookupSurvivesDeadNodes: killed nodes time out and the lookup
// still converges on live replicas. The dead set is chosen just outside
// the keyword's top-K so every replica survives and the outcome is
// deterministic.
func TestLookupSurvivesDeadNodes(t *testing.T) {
	m := newMesh()
	var ids []trace.NodeID
	for i := 1; i <= 16; i++ {
		ids = append(ids, trace.NodeID(i))
		m.add(trace.NodeID(i), 4, 3, 64)
	}
	m.bootstrap(ids, 1)

	meta := testMeta(3, 0.5)
	ctx := context.Background()
	const publisher, querier = trace.NodeID(2), trace.NodeID(6)
	if _, err := m.engines[publisher].Publish(ctx, "resilient", meta); err != nil {
		t.Fatal(err)
	}
	// Kill four nodes ranked just outside the keyword's top-4 (the
	// replica set), sparing the publisher and the querier.
	ranking := bruteClosest(KeywordKey("resilient"), ids, len(ids))
	dead := 0
	for _, id := range ranking[4:] {
		if id == publisher || id == querier || dead == 4 {
			continue
		}
		m.kill(id)
		dead++
	}
	start := time.Now()
	vals, err := m.engines[querier].Query(ctx, "resilient")
	if err != nil {
		t.Fatalf("Query after deaths: %v", err)
	}
	if len(vals) == 0 {
		t.Fatal("query failed to resolve after node deaths")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lookup with dead nodes took %v", elapsed)
	}
}

// TestLookupDropsDeadContact: a lookup whose only candidate is dead
// times out, records the timeout, and forgets the contact.
func TestLookupDropsDeadContact(t *testing.T) {
	m := newMesh()
	e := m.add(1, 4, 2, 16)
	m.add(9, 4, 2, 16)
	e.Observe(9, "n9")
	m.kill(9)
	res, err := e.Lookup(context.Background(), KeywordKey("x"), true)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(res.Values) != 0 || len(res.Closest) != 0 {
		t.Fatalf("lookup through a dead contact returned %+v", res)
	}
	if len(e.Contacts()) != 0 {
		t.Fatal("dead contact still in the routing table")
	}
}

// TestStoreVerifyRejects: an engine with a Verify hook drops stores the
// hook rejects and never caches them.
func TestStoreVerifyRejects(t *testing.T) {
	reject := New(Config{
		Self: 1, Addr: "n1",
		Send:   func(Contact, wire.Msg) error { return nil },
		Verify: func(*wire.DHTValue) bool { return false },
	})
	s := &wire.StoreValue{
		From: 2, FromAddr: "n2", RPCID: 1, Key: KeywordKey("x"),
		Value: wire.DHTValue{Keyword: "x", TTLMillis: 60_000, Meta: testMeta(1, 0.5)},
	}
	if reply := reject.HandleMessage(s); reply != nil {
		t.Fatalf("StoreValue got a reply: %+v", reply)
	}
	st := reject.Stats()
	if st.StoresRejected != 1 || st.StoreSize != 0 {
		t.Fatalf("stats %+v, want one rejected store and empty cache", st)
	}
}

// TestFindValueServedFromStore: a node holding a record answers
// FindValue with the value, not with contacts.
func TestFindValueServedFromStore(t *testing.T) {
	e := New(Config{
		Self: 1, Addr: "n1",
		Send: func(Contact, wire.Msg) error { return nil },
	})
	e.Observe(9, "n9")
	e.StoreLocal("jazz", testMeta(2, 0.7), time.Minute)
	reply := e.HandleMessage(&wire.FindValue{
		From: 3, FromAddr: "n3", RPCID: 77, Key: KeywordKey("jazz"),
	})
	nr, ok := reply.(*wire.NodesReply)
	if !ok || !nr.Found || len(nr.Values) != 1 || nr.RPCID != 77 {
		t.Fatalf("FindValue reply = %+v, want found value echoing RPCID", reply)
	}
	// A FindNode for the same key returns contacts, never values.
	reply = e.HandleMessage(&wire.FindNode{
		From: 3, FromAddr: "n3", RPCID: 78, Target: KeywordKey("jazz"),
	})
	nr = reply.(*wire.NodesReply)
	if nr.Found || len(nr.Values) != 0 {
		t.Fatalf("FindNode reply carries values: %+v", nr)
	}
	// The asker itself is never in the contact list.
	for _, n := range nr.Nodes {
		if n.ID == 3 {
			t.Fatal("reply echoes the asking node as a contact")
		}
	}
}

// TestRecordExpiryAcrossMesh: a published record with a short TTL stops
// resolving once expired everywhere.
func TestRecordExpiryAcrossMesh(t *testing.T) {
	now := time.Unix(0, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	m := newMesh()
	var ids []trace.NodeID
	for i := 1; i <= 8; i++ {
		id := trace.NodeID(i)
		ids = append(ids, id)
		e := New(Config{
			Self: id, Addr: fmt.Sprintf("n%d", id),
			K: 4, Alpha: 2, CacheCap: 64,
			RequestTimeout: 50 * time.Millisecond,
			TTL:            time.Second,
			Send:           m.sender(id),
			Now:            clock,
		})
		m.mu.Lock()
		m.engines[id] = e
		m.mu.Unlock()
	}
	m.bootstrap(ids, 1)
	ctx := context.Background()
	if _, err := m.engines[2].Publish(ctx, "ephemeral", testMeta(5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if vals, _ := m.engines[7].Query(ctx, "ephemeral"); len(vals) == 0 {
		t.Fatal("fresh record did not resolve")
	}
	clockMu.Lock()
	now = now.Add(2 * time.Second)
	clockMu.Unlock()
	vals, err := m.engines[8].Query(ctx, "ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Fatalf("expired record still resolves: %+v", vals)
	}
}
