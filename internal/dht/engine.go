// The lookup engine: Kademlia's iterative, α-parallel lookup procedure
// plus the RPC plumbing that rides the host's existing peer sessions.
// The engine owns the routing table and the record store; the host
// (internal/daemon) owns the transport and feeds inbound DHT messages to
// HandleMessage, which either answers in place (returning the reply to
// send) or resolves a pending outbound RPC.
package dht

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/limit"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Defaults for the tunable parameters.
const (
	DefaultK              = 16
	DefaultAlpha          = 3
	DefaultRequestTimeout = 250 * time.Millisecond
	DefaultTTL            = 10 * time.Minute
	DefaultCacheCap       = 1024
)

// ErrNoContacts means a lookup could not start: the routing table is
// empty and no bootstrap contact is known.
var ErrNoContacts = errors.New("dht: no contacts in routing table")

// Config parameterizes an Engine.
type Config struct {
	// Self is this node's ID; Addr the listen address peers dial it at,
	// advertised in every outbound message's FromAddr.
	Self trace.NodeID
	Addr string
	// K is the bucket size and lookup width; Alpha the lookup
	// parallelism.
	K     int
	Alpha int
	// RequestTimeout bounds one RPC's wait; TTL is the lifetime granted
	// to records this node publishes; CacheCap bounds the record store.
	RequestTimeout time.Duration
	TTL            time.Duration
	CacheCap       int
	// Send delivers an encoded-able message to a contact. It must not
	// block for long; errors mean the contact is unreachable right now.
	Send func(c Contact, m wire.Msg) error
	// Verify, if set, vets a received value before it is stored or
	// returned (the host wires this to the metadata signature check).
	Verify func(v *wire.DHTValue) bool
	// ServerRate, when positive, caps how many FindNode/FindValue/
	// StoreValue requests per second each sender gets served (burst
	// 2×rate). Shed Find requests are answered with a Busy frame
	// (scope dht) so the sender backs off; shed stores are dropped and
	// counted. Zero disables.
	ServerRate float64
	// BusyRetryAfter is the backoff window advertised in Busy replies
	// (default 4×RequestTimeout).
	BusyRetryAfter time.Duration
	// Now supplies the clock (defaults to time.Now; tests inject).
	Now  func() time.Time
	Logf func(format string, args ...any)
}

// Stats counts engine activity; returned by Engine.Stats.
type Stats struct {
	Lookups        uint64 `json:"lookups"`         // iterative lookups started
	LookupHits     uint64 `json:"lookup_hits"`     // lookups that returned values
	RPCsSent       uint64 `json:"rpcs_sent"`       // FindNode/FindValue requests sent
	RPCTimeouts    uint64 `json:"rpc_timeouts"`    // requests that never got a reply
	StoresSent     uint64 `json:"stores_sent"`     // StoreValue messages sent
	StoresRecv     uint64 `json:"stores_recv"`     // StoreValue messages accepted
	StoresRejected uint64 `json:"stores_rejected"` // StoreValue messages failing verification
	FindsServed    uint64 `json:"finds_served"`    // FindNode/FindValue requests answered
	CacheHits      uint64 `json:"cache_hits"`      // queries answered from the local store
	TableSize      int    `json:"table_size"`
	StoreSize      int    `json:"store_size"`
	StoreEvicted   uint64 `json:"store_evicted"`
	FindsShed      uint64 `json:"finds_shed"`  // Find requests answered with Busy
	StoresShed     uint64 `json:"stores_shed"` // StoreValue messages dropped by admission control
	BusySkips      uint64 `json:"busy_skips"`  // lookup contacts skipped while backing off
}

// Engine is one node's DHT participant. All methods are safe for
// concurrent use.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	table   *Table
	store   *Store
	nextRPC uint64
	pending map[uint64]chan *wire.NodesReply
	stats   Stats
	// limiters holds per-sender server-side admission buckets;
	// busyUntil records contacts that answered one of our requests with
	// Busy, skipped by lookups until the deadline. Both under mu.
	limiters  map[trace.NodeID]*limit.Bucket
	busyUntil map[trace.NodeID]time.Time
}

// New returns an engine for the given configuration. Config.Send is
// required; zero tunables take the package defaults.
func New(cfg Config) *Engine {
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = DefaultCacheCap
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.BusyRetryAfter <= 0 {
		cfg.BusyRetryAfter = 4 * cfg.RequestTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Engine{
		cfg:       cfg,
		table:     NewTable(cfg.Self, cfg.K),
		store:     NewStore(cfg.CacheCap),
		pending:   make(map[uint64]chan *wire.NodesReply),
		limiters:  make(map[trace.NodeID]*limit.Bucket),
		busyUntil: make(map[trace.NodeID]time.Time),
	}
}

// Self returns the engine's node ID.
func (e *Engine) Self() trace.NodeID { return e.cfg.Self }

// SetAddr updates the dial-back address advertised in outbound
// messages. Hosts that listen on an ephemeral port learn their bound
// address only after the listener starts, which is after New.
func (e *Engine) SetAddr(addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Addr = addr
}

// addr reads the advertised address under the lock.
func (e *Engine) addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Addr
}

// Observe records a live contact (a new session, a beacon, a message).
func (e *Engine) Observe(id trace.NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.table.Observe(Contact{ID: id, Addr: addr})
}

// Forget drops a contact (its session died).
func (e *Engine) Forget(id trace.NodeID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.table.Remove(id)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.TableSize = e.table.Len()
	s.StoreSize = e.store.Len()
	s.StoreEvicted = e.store.Evicted()
	return s
}

// Contacts returns the routing table's contacts (tests and /stats).
func (e *Engine) Contacts() []Contact {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.table.Contacts()
}

// CachedValues returns the unexpired records stored locally under the
// keyword, without touching the network.
func (e *Engine) CachedValues(keyword string) []wire.DHTValue {
	key := KeywordKey(keyword)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Get(key, e.cfg.Now())
}

// StoreLocal caches one record locally (the host stores records it
// publishes and records that arrive over gossip).
func (e *Engine) StoreLocal(keyword string, meta wire.Metadata, ttl time.Duration) {
	if ttl <= 0 {
		ttl = e.cfg.TTL
	}
	key := KeywordKey(keyword)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store.Put(key, keyword, meta, ttl, e.cfg.Now())
}

// Sweep drops expired records; the host calls it periodically.
func (e *Engine) Sweep() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Now()
	for id, until := range e.busyUntil {
		if now.After(until) {
			delete(e.busyUntil, id)
		}
	}
	return e.store.Sweep(now)
}

// HandleMessage processes one inbound DHT message and returns the reply
// to send back to its sender, or nil when no reply is due (StoreValue,
// and NodesReply which resolves a pending RPC instead).
func (e *Engine) HandleMessage(m wire.Msg) wire.Msg {
	switch m := m.(type) {
	case *wire.FindNode:
		if !e.admitServe(m.From) {
			return e.shedFind(m.From)
		}
		return e.onFind(m.From, m.FromAddr, m.RPCID, m.Target, false)
	case *wire.FindValue:
		if !e.admitServe(m.From) {
			return e.shedFind(m.From)
		}
		return e.onFind(m.From, m.FromAddr, m.RPCID, m.Key, true)
	case *wire.StoreValue:
		if !e.admitServe(m.From) {
			// Stores are fire-and-forget, so there is no reply channel
			// to carry a Busy: the shed is counted and the record waits
			// for the sender's next republish.
			e.mu.Lock()
			e.stats.StoresShed++
			e.mu.Unlock()
			return nil
		}
		e.onStore(m)
		return nil
	case *wire.NodesReply:
		e.onReply(m)
		return nil
	default:
		return nil
	}
}

// admitServe charges one token against from's server-side admission
// bucket; with no ServerRate configured everything is admitted. The
// limiter map is bounded: a flood of fabricated sender IDs resets it
// rather than growing it without limit.
func (e *Engine) admitServe(from trace.NodeID) bool {
	if e.cfg.ServerRate <= 0 {
		return true
	}
	e.mu.Lock()
	if len(e.limiters) > 4096 {
		e.limiters = make(map[trace.NodeID]*limit.Bucket)
	}
	bk := e.limiters[from]
	if bk == nil {
		bk = limit.NewBucket(e.cfg.ServerRate, 2*e.cfg.ServerRate, limit.Clock(e.cfg.Now))
		e.limiters[from] = bk
	}
	e.mu.Unlock()
	return bk.Allow()
}

// shedFind counts a shed Find request and builds its Busy reply.
func (e *Engine) shedFind(from trace.NodeID) wire.Msg {
	e.mu.Lock()
	e.stats.FindsShed++
	e.mu.Unlock()
	e.cfg.Logf("dht: shedding find from n%d (over %v/s)", from, e.cfg.ServerRate)
	return &wire.Busy{
		From:             e.cfg.Self,
		Scope:            wire.BusyDHT,
		RetryAfterMillis: uint32(e.cfg.BusyRetryAfter / time.Millisecond),
	}
}

// MarkBusy records that a contact answered us with Busy (scope dht):
// lookups skip it until the deadline instead of counting it failed —
// an overloaded node is not a dead node.
func (e *Engine) MarkBusy(id trace.NodeID, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.busyUntil[id] = until
}

// isBusy reports whether a contact is inside its advertised backoff
// window, dropping the entry once it expires.
func (e *Engine) isBusy(id trace.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	until, ok := e.busyUntil[id]
	if !ok {
		return false
	}
	if e.cfg.Now().After(until) {
		delete(e.busyUntil, id)
		return false
	}
	return true
}

func (e *Engine) onFind(from trace.NodeID, fromAddr string, rpcID uint64, key Key, wantValue bool) wire.Msg {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.table.Observe(Contact{ID: from, Addr: fromAddr})
	e.stats.FindsServed++
	reply := &wire.NodesReply{
		From: e.cfg.Self, FromAddr: e.cfg.Addr, RPCID: rpcID, Key: key,
	}
	if wantValue {
		if vals := e.store.Get(key, e.cfg.Now()); len(vals) > 0 {
			reply.Found = true
			reply.Values = vals
			return reply
		}
	}
	for _, c := range e.table.Closest(key, e.cfg.K) {
		if c.ID == from {
			continue
		}
		reply.Nodes = append(reply.Nodes, wire.NodeInfo{ID: c.ID, Addr: c.Addr})
	}
	return reply
}

func (e *Engine) onStore(m *wire.StoreValue) {
	if e.cfg.Verify != nil && !e.cfg.Verify(&m.Value) {
		e.mu.Lock()
		e.stats.StoresRejected++
		e.mu.Unlock()
		e.cfg.Logf("dht: rejected store from n%d: bad value", m.From)
		return
	}
	ttl := time.Duration(m.Value.TTLMillis) * time.Millisecond
	e.mu.Lock()
	defer e.mu.Unlock()
	e.table.Observe(Contact{ID: m.From, Addr: m.FromAddr})
	e.stats.StoresRecv++
	e.store.Put(Key(m.Key), m.Value.Keyword, m.Value.Meta, ttl, e.cfg.Now())
}

func (e *Engine) onReply(m *wire.NodesReply) {
	e.mu.Lock()
	e.table.Observe(Contact{ID: m.From, Addr: m.FromAddr})
	ch := e.pending[m.RPCID]
	delete(e.pending, m.RPCID)
	e.mu.Unlock()
	if ch != nil {
		ch <- m // buffered; never blocks
	}
}

// rpc sends one FindNode/FindValue to a contact and waits for its reply.
func (e *Engine) rpc(ctx context.Context, c Contact, key Key, wantValue bool) (*wire.NodesReply, error) {
	ch := make(chan *wire.NodesReply, 1)
	e.mu.Lock()
	e.nextRPC++
	id := e.nextRPC
	e.pending[id] = ch
	e.stats.RPCsSent++
	e.mu.Unlock()

	var m wire.Msg
	if wantValue {
		m = &wire.FindValue{From: e.cfg.Self, FromAddr: e.addr(), RPCID: id, Key: key}
	} else {
		m = &wire.FindNode{From: e.cfg.Self, FromAddr: e.addr(), RPCID: id, Target: key}
	}
	if err := e.cfg.Send(c, m); err != nil {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
		return nil, err
	}

	t := time.NewTimer(e.cfg.RequestTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r, nil
	case <-t.C:
	case <-ctx.Done():
	}
	e.mu.Lock()
	delete(e.pending, id)
	e.stats.RPCTimeouts++
	e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("dht: rpc timeout")
}

// LookupResult is an iterative lookup's outcome.
type LookupResult struct {
	// Values holds the records found (FindValue lookups only).
	Values []wire.DHTValue
	// Closest is the closest-to-target contact set the lookup converged
	// on, nearest first.
	Closest []Contact
}

// Lookup runs the iterative lookup procedure toward key: query the α
// closest known contacts, merge the contacts they return, re-query the
// now-closest unqueried contacts, and stop when the K closest have all
// answered (or when a FindValue lookup finds values). Learned contacts
// enter the routing table; unreachable ones leave it.
func (e *Engine) Lookup(ctx context.Context, key Key, wantValue bool) (*LookupResult, error) {
	e.mu.Lock()
	e.stats.Lookups++
	short := newShortlist(key, e.cfg.K)
	short.add(e.table.Closest(key, e.cfg.K)...)
	e.mu.Unlock()
	if short.len() == 0 {
		return nil, ErrNoContacts
	}

	res := &LookupResult{}
	for {
		batch := short.nextBatch(e.cfg.Alpha)
		if len(batch) == 0 {
			break
		}
		type outcome struct {
			from  Contact
			reply *wire.NodesReply
		}
		outcomes := make(chan outcome, len(batch))
		launched := 0
		for _, c := range batch {
			if e.isBusy(c.ID) {
				// A Busy contact is skipped for the rest of the round,
				// not marked dead: no RPC, no Forget.
				short.skipped(c)
				e.mu.Lock()
				e.stats.BusySkips++
				e.mu.Unlock()
				continue
			}
			launched++
			go func(c Contact) {
				r, err := e.rpc(ctx, c, key, wantValue)
				if err != nil {
					r = nil
				}
				outcomes <- outcome{from: c, reply: r}
			}(c)
		}
		for i := 0; i < launched; i++ {
			o := <-outcomes
			if o.reply == nil {
				// An in-flight RPC can lose the race with a Busy frame:
				// the contact shed our request rather than ignoring it,
				// so honor the backoff instead of declaring it dead.
				if e.isBusy(o.from.ID) {
					short.skipped(o.from)
					continue
				}
				short.failed(o.from)
				e.Forget(o.from.ID)
				continue
			}
			short.answered(o.from)
			if wantValue && o.reply.Found {
				res.Values = append(res.Values, o.reply.Values...)
			}
			for _, n := range o.reply.Nodes {
				if n.ID == e.cfg.Self {
					continue
				}
				short.add(Contact{ID: n.ID, Addr: n.Addr})
			}
		}
		if len(res.Values) > 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	res.Closest = short.closest()
	if len(res.Values) > 0 {
		e.mu.Lock()
		e.stats.LookupHits++
		e.mu.Unlock()
	}
	return res, nil
}

// Publish stores one record under the keyword at the K closest nodes the
// lookup converges on, and in the local cache. Returns how many remote
// stores were sent.
func (e *Engine) Publish(ctx context.Context, keyword string, meta wire.Metadata) (int, error) {
	e.StoreLocal(keyword, meta, e.cfg.TTL)
	key := KeywordKey(keyword)
	res, err := e.Lookup(ctx, key, false)
	if err != nil {
		return 0, err
	}
	val := wire.DHTValue{
		Keyword:   keyword,
		TTLMillis: uint64(e.cfg.TTL / time.Millisecond),
		Meta:      meta,
	}
	sent := 0
	fromAddr := e.addr()
	for _, c := range res.Closest {
		m := &wire.StoreValue{
			From: e.cfg.Self, FromAddr: fromAddr,
			Key: key, Value: val,
		}
		e.mu.Lock()
		e.nextRPC++
		m.RPCID = e.nextRPC
		e.mu.Unlock()
		if e.cfg.Send(c, m) == nil {
			sent++
			e.mu.Lock()
			e.stats.StoresSent++
			e.mu.Unlock()
		}
	}
	return sent, nil
}

// Query resolves a keyword: the local cache first (a hit costs no
// traffic — the DTN-side path), then an iterative FindValue. Found
// records are cached locally so the next contact window can answer them
// without the network.
func (e *Engine) Query(ctx context.Context, keyword string) ([]wire.DHTValue, error) {
	if vals := e.CachedValues(keyword); len(vals) > 0 {
		e.mu.Lock()
		e.stats.CacheHits++
		e.mu.Unlock()
		return vals, nil
	}
	key := KeywordKey(keyword)
	res, err := e.Lookup(ctx, key, true)
	if err != nil {
		return nil, err
	}
	var out []wire.DHTValue
	seen := make(map[string]bool)
	for _, v := range res.Values {
		if e.cfg.Verify != nil && !e.cfg.Verify(&v) {
			continue
		}
		id := string(v.Meta.Record.URI)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, v)
		ttl := time.Duration(v.TTLMillis) * time.Millisecond
		e.mu.Lock()
		e.store.Put(key, v.Keyword, v.Meta, ttl, e.cfg.Now())
		e.mu.Unlock()
	}
	return out, nil
}

// Refresh runs a lookup toward the engine's own key — the bootstrap
// move that populates the routing table from whatever contacts it has.
func (e *Engine) Refresh(ctx context.Context) {
	_, _ = e.Lookup(ctx, NodeKey(e.cfg.Self), false)
}

// shortlist tracks an iterative lookup's candidate set: contacts sorted
// by distance to the target, each unqueried, in-flight, answered, or
// failed. The lookup is done when the K closest non-failed contacts have
// all answered.
type shortlist struct {
	target Key
	k      int
	order  []trace.NodeID
	info   map[trace.NodeID]*slEntry
}

type slEntry struct {
	c     Contact
	key   Key
	state int // 0 unqueried, 1 in-flight, 2 answered, 3 failed, 4 busy-skipped
}

func newShortlist(target Key, k int) *shortlist {
	return &shortlist{target: target, k: k, info: make(map[trace.NodeID]*slEntry)}
}

func (s *shortlist) len() int { return len(s.order) }

func (s *shortlist) add(cs ...Contact) {
	for _, c := range cs {
		if e, ok := s.info[c.ID]; ok {
			if e.c.Addr == "" {
				e.c.Addr = c.Addr
			}
			continue
		}
		e := &slEntry{c: c, key: NodeKey(c.ID)}
		s.info[c.ID] = e
		// Insert keeping order sorted by distance to target.
		pos := len(s.order)
		for i, id := range s.order {
			if s.target.Closer(e.key, s.info[id].key) {
				pos = i
				break
			}
		}
		s.order = append(s.order, 0)
		copy(s.order[pos+1:], s.order[pos:])
		s.order[pos] = c.ID
	}
}

// nextBatch marks and returns up to n unqueried contacts among the K
// closest non-failed candidates; an empty batch means convergence.
// Busy-skipped contacts (state 4) count like failures here: out of the
// round, but still alive in the routing table.
func (s *shortlist) nextBatch(n int) []Contact {
	var batch []Contact
	live := 0
	for _, id := range s.order {
		e := s.info[id]
		if e.state >= 3 {
			continue
		}
		live++
		if live > s.k {
			break
		}
		if e.state == 0 {
			e.state = 1
			batch = append(batch, e.c)
			if len(batch) == n {
				break
			}
		}
	}
	return batch
}

func (s *shortlist) answered(c Contact) { s.setState(c, 2) }
func (s *shortlist) failed(c Contact)   { s.setState(c, 3) }
func (s *shortlist) skipped(c Contact)  { s.setState(c, 4) }

func (s *shortlist) setState(c Contact, st int) {
	if e, ok := s.info[c.ID]; ok {
		e.state = st
	}
}

// closest returns the K closest contacts that answered, nearest first.
func (s *shortlist) closest() []Contact {
	var out []Contact
	for _, id := range s.order {
		e := s.info[id]
		if e.state != 2 {
			continue
		}
		out = append(out, e.c)
		if len(out) == s.k {
			break
		}
	}
	return out
}
