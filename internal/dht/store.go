// The record store: a bounded local cache of keyword→metadata records.
// Capacity pressure evicts the lowest-popularity record (ties: the one
// stored longest ago) — the popularity-ranked retention that keeps the
// records DTN-side peers most often ask for on the nodes that carry DHT
// state out of Internet range. Records expire after their TTL; the
// publisher keeps them alive by republishing.
package dht

import (
	"time"

	"repro/internal/metadata"
	"repro/internal/wire"
)

// Record is one stored value with its bookkeeping.
type Record struct {
	Key     Key
	Keyword string
	Meta    wire.Metadata
	Expires time.Time
	Stored  time.Time
}

// Store is the bounded record cache. Not safe for concurrent use; the
// Engine serializes access.
type Store struct {
	cap     int
	byKey   map[Key]map[metadata.URI]*Record
	count   int
	evicted uint64
}

// NewStore returns a cache bounded to cap records (0 means a default of
// 1024).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = 1024
	}
	return &Store{cap: cap, byKey: make(map[Key]map[metadata.URI]*Record)}
}

// Len returns the number of stored records.
func (s *Store) Len() int { return s.count }

// Evicted returns how many records capacity pressure has pushed out.
func (s *Store) Evicted() uint64 { return s.evicted }

// Put stores one record under key, replacing any record for the same
// (key, URI) pair. When the cache is full the lowest-popularity record
// is evicted first; an incoming record less popular than everything
// stored still enters (it may be the only copy reachable on this side of
// the network) and becomes the next eviction candidate.
func (s *Store) Put(key Key, keyword string, meta wire.Metadata, ttl time.Duration, now time.Time) {
	if ttl <= 0 {
		return
	}
	uri := meta.Record.URI
	if recs := s.byKey[key]; recs != nil {
		if old := recs[uri]; old != nil {
			old.Keyword = keyword
			old.Meta = meta
			old.Expires = now.Add(ttl)
			old.Stored = now
			return
		}
	}
	for s.count >= s.cap {
		s.evictOne()
	}
	recs := s.byKey[key]
	if recs == nil {
		recs = make(map[metadata.URI]*Record)
		s.byKey[key] = recs
	}
	recs[uri] = &Record{
		Key: key, Keyword: keyword, Meta: meta,
		Expires: now.Add(ttl), Stored: now,
	}
	s.count++
}

// evictOne removes the lowest-popularity record, ties broken by oldest
// store time, then by URI for determinism.
func (s *Store) evictOne() {
	var victim *Record
	for _, recs := range s.byKey {
		for _, r := range recs {
			if victim == nil || worseThan(r, victim) {
				victim = r
			}
		}
	}
	if victim == nil {
		return
	}
	s.remove(victim)
	s.evicted++
}

func worseThan(a, b *Record) bool {
	if a.Meta.Popularity != b.Meta.Popularity {
		return a.Meta.Popularity < b.Meta.Popularity
	}
	if !a.Stored.Equal(b.Stored) {
		return a.Stored.Before(b.Stored)
	}
	return a.Meta.Record.URI < b.Meta.Record.URI
}

func (s *Store) remove(r *Record) {
	recs := s.byKey[r.Key]
	if recs == nil {
		return
	}
	if _, ok := recs[r.Meta.Record.URI]; !ok {
		return
	}
	delete(recs, r.Meta.Record.URI)
	if len(recs) == 0 {
		delete(s.byKey, r.Key)
	}
	s.count--
}

// Get returns the unexpired records stored under key as wire values with
// their remaining TTL, most popular first.
func (s *Store) Get(key Key, now time.Time) []wire.DHTValue {
	recs := s.byKey[key]
	if len(recs) == 0 {
		return nil
	}
	var live []*Record
	for _, r := range recs {
		if r.Expires.After(now) {
			live = append(live, r)
		}
	}
	// Most popular first, ties by URI for determinism.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && worseThan(live[j-1], live[j]); j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	out := make([]wire.DHTValue, len(live))
	for i, r := range live {
		out[i] = wire.DHTValue{
			Keyword:   r.Keyword,
			TTLMillis: uint64(r.Expires.Sub(now) / time.Millisecond),
			Meta:      r.Meta,
		}
	}
	return out
}

// Sweep drops expired records and returns how many were removed.
func (s *Store) Sweep(now time.Time) int {
	var dead []*Record
	for _, recs := range s.byKey {
		for _, r := range recs {
			if !r.Expires.After(now) {
				dead = append(dead, r)
			}
		}
	}
	for _, r := range dead {
		s.remove(r)
	}
	return len(dead)
}
