// The routing table: 256 k-buckets of contacts ordered least-recently-
// seen first. Bucket i holds contacts whose XOR distance from self has
// its highest set bit at position i, so each bucket covers a halving of
// the key space and the table as a whole knows many nearby nodes but
// only a logarithmic sample of far ones — the structure that makes
// iterative lookups converge in O(log n) hops.
package dht

import (
	"sort"

	"repro/internal/trace"
)

// Contact is one routing-table entry: a node and the address its peer
// listener can be dialed at.
type Contact struct {
	ID   trace.NodeID
	Addr string
}

// Table is the XOR-metric routing table. Not safe for concurrent use;
// the Engine serializes access.
type Table struct {
	self    Key
	selfID  trace.NodeID
	k       int
	buckets [KeySize * 8][]tableEntry
	keys    map[trace.NodeID]Key // memoized NodeKey per contact
	count   int
}

type tableEntry struct {
	c   Contact
	key Key
}

// NewTable returns a routing table for the given node with k-buckets of
// capacity k.
func NewTable(self trace.NodeID, k int) *Table {
	if k <= 0 {
		k = 16
	}
	return &Table{
		self:   NodeKey(self),
		selfID: self,
		k:      k,
		keys:   make(map[trace.NodeID]Key),
	}
}

// Len returns the number of stored contacts.
func (t *Table) Len() int { return t.count }

// nodeKey memoizes NodeKey: lookups hash every candidate repeatedly and
// sha256 per comparison would dominate.
func (t *Table) nodeKey(id trace.NodeID) Key {
	if k, ok := t.keys[id]; ok {
		return k
	}
	k := NodeKey(id)
	t.keys[id] = k
	return k
}

// Observe records that a contact was seen live. A known contact is
// refreshed (moved to the most-recently-seen end, address updated); a new
// contact joins its bucket, evicting the least-recently-seen entry if the
// bucket is full. Returns true if the contact is in the table afterwards.
// Self is never stored.
func (t *Table) Observe(c Contact) bool {
	if c.ID == t.selfID {
		return false
	}
	key := t.nodeKey(c.ID)
	bi := t.self.BucketIndex(key)
	if bi < 0 {
		return false
	}
	b := t.buckets[bi]
	for i := range b {
		if b[i].c.ID == c.ID {
			e := b[i]
			if c.Addr != "" {
				e.c.Addr = c.Addr
			}
			copy(b[i:], b[i+1:])
			b[len(b)-1] = e
			return true
		}
	}
	e := tableEntry{c: c, key: key}
	if len(b) < t.k {
		t.buckets[bi] = append(b, e)
		t.count++
		return true
	}
	// Bucket full: drop the least-recently-seen head. (Classic Kademlia
	// pings the head first; over always-fresh loopback sessions the peer
	// manager's liveness window already plays that role, so eviction is
	// immediate.)
	copy(b, b[1:])
	b[len(b)-1] = e
	return true
}

// Remove drops a contact (a node observed dead mid-lookup).
func (t *Table) Remove(id trace.NodeID) {
	key := t.nodeKey(id)
	bi := t.self.BucketIndex(key)
	if bi < 0 {
		return
	}
	b := t.buckets[bi]
	for i := range b {
		if b[i].c.ID == id {
			t.buckets[bi] = append(b[:i], b[i+1:]...)
			t.count--
			return
		}
	}
}

// Closest returns up to n contacts ordered by ascending XOR distance to
// target, ties broken by node ID for determinism.
func (t *Table) Closest(target Key, n int) []Contact {
	type cand struct {
		c Contact
		d Key
	}
	cands := make([]cand, 0, t.count)
	for bi := range t.buckets {
		for i := range t.buckets[bi] {
			e := &t.buckets[bi][i]
			cands = append(cands, cand{c: e.c, d: target.Distance(e.key)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		for b := 0; b < KeySize; b++ {
			if cands[i].d[b] != cands[j].d[b] {
				return cands[i].d[b] < cands[j].d[b]
			}
		}
		return cands[i].c.ID < cands[j].c.ID
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]Contact, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].c
	}
	return out
}

// Contacts returns every stored contact in bucket order, least-recently-
// seen first within a bucket.
func (t *Table) Contacts() []Contact {
	out := make([]Contact, 0, t.count)
	for bi := range t.buckets {
		for i := range t.buckets[bi] {
			out = append(out, t.buckets[bi][i].c)
		}
	}
	return out
}
