package clique

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

// permute returns members shuffled by seed — a different presentation
// of the same set, as two nodes with differently-ordered peer tables
// would produce.
func permute(members []trace.NodeID, seed uint64) []trace.NodeID {
	out := append([]trace.NodeID(nil), members...)
	r := rng.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// membersFrom builds a small deduped member set from fuzzed bytes.
func membersFrom(raw []uint16) []trace.NodeID {
	seen := make(map[trace.NodeID]bool)
	var out []trace.NodeID
	for _, v := range raw {
		id := trace.NodeID(v % 1000)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
		if len(out) == 8 {
			break
		}
	}
	return out
}

// TestPropertyCoordinatorPermutationInvariant: every member must elect
// the same coordinator no matter how its peer table happens to order
// the clique — that is what makes the election communication-free.
func TestPropertyCoordinatorPermutationInvariant(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		members := membersFrom(raw)
		if len(members) == 0 {
			return Coordinator(members) == -1
		}
		want := Coordinator(members)
		if Coordinator(permute(members, seed)) != want {
			return false
		}
		// And the coordinator is always a member, the lowest one.
		min := members[0]
		for _, v := range members {
			if v < min {
				min = v
			}
		}
		return want == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCyclicOrderPermutationInvariant: the tit-for-tat order
// must be a permutation of the members that every member computes
// identically from any input ordering — otherwise the group would
// disagree on whose turn it is.
func TestPropertyCyclicOrderPermutationInvariant(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		members := membersFrom(raw)
		want := CyclicOrder(members)
		if !reflect.DeepEqual(CyclicOrder(permute(members, seed)), want) {
			return false
		}
		// Same multiset: sorting the order recovers the sorted members.
		gotSorted := append([]trace.NodeID(nil), want...)
		sort.Slice(gotSorted, func(i, j int) bool { return gotSorted[i] < gotSorted[j] })
		wantSorted := append([]trace.NodeID(nil), members...)
		sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })
		return reflect.DeepEqual(gotSorted, wantSorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCyclicOrderSeedIsSumOfIDs pins the §V-B contract to the paper's
// words: the permutation is exactly the sorted member list shuffled by
// a PRNG seeded with the sum of the node IDs. A change to the seeding
// rule would silently desynchronize old and new nodes; this test makes
// it loud.
func TestCyclicOrderSeedIsSumOfIDs(t *testing.T) {
	cases := [][]trace.NodeID{
		{1, 2, 3},
		{10, 20, 30, 40},
		{7},
		{0, 999, 500, 3, 12},
	}
	for _, members := range cases {
		expected := append([]trace.NodeID(nil), members...)
		sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })
		var sum uint64
		for _, v := range expected {
			sum += uint64(v)
		}
		r := rng.New(sum)
		r.Shuffle(len(expected), func(i, j int) { expected[i], expected[j] = expected[j], expected[i] })
		if got := CyclicOrder(members); !reflect.DeepEqual(got, expected) {
			t.Fatalf("CyclicOrder(%v) = %v, want sum-seeded shuffle %v", members, got, expected)
		}
	}
}

// denseAdj builds a random graph on n vertices with edge probability p.
func denseAdj(n int, p float64, seed uint64) map[trace.NodeID][]trace.NodeID {
	r := rng.New(seed)
	adj := make(map[trace.NodeID][]trace.NodeID, n)
	for i := 0; i < n; i++ {
		adj[trace.NodeID(i)] = nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				a, b := trace.NodeID(i), trace.NodeID(j)
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	return adj
}

// BenchmarkMaximalCliques tracks Bron–Kerbosch on dense random graphs
// at the sizes a live mesh could plausibly reach. The group engine
// recomputes cliques every tick, so regressions here become beacon-rate
// CPU burn on every node.
func BenchmarkMaximalCliques(b *testing.B) {
	for _, n := range []int{12, 24, 48} {
		adj := denseAdj(n, 0.6, 42)
		b.Run(map[int]string{12: "n12", 24: "n24", 48: "n48"}[n], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := MaximalCliques(adj); len(got) == 0 {
					b.Fatal("no cliques on a dense graph")
				}
			}
		})
	}
}
