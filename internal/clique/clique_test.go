package clique

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

// adjFromEdges builds a symmetric adjacency from an edge list.
func adjFromEdges(vertices []trace.NodeID, edges [][2]trace.NodeID) map[trace.NodeID][]trace.NodeID {
	adj := make(map[trace.NodeID][]trace.NodeID)
	for _, v := range vertices {
		adj[v] = nil
	}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

func TestTriangle(t *testing.T) {
	adj := adjFromEdges([]trace.NodeID{0, 1, 2},
		[][2]trace.NodeID{{0, 1}, {1, 2}, {0, 2}})
	got := MaximalCliques(adj)
	want := [][]trace.NodeID{{0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cliques = %v, want %v", got, want)
	}
}

func TestPath(t *testing.T) {
	adj := adjFromEdges([]trace.NodeID{0, 1, 2},
		[][2]trace.NodeID{{0, 1}, {1, 2}})
	got := MaximalCliques(adj)
	want := [][]trace.NodeID{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cliques = %v, want %v", got, want)
	}
}

func TestIsolatedVertices(t *testing.T) {
	adj := adjFromEdges([]trace.NodeID{0, 1, 2}, [][2]trace.NodeID{{0, 1}})
	got := MaximalCliques(adj)
	want := [][]trace.NodeID{{0, 1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cliques = %v, want %v", got, want)
	}
}

func TestTwoTrianglesSharingVertex(t *testing.T) {
	adj := adjFromEdges([]trace.NodeID{0, 1, 2, 3, 4},
		[][2]trace.NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	got := MaximalCliques(adj)
	want := [][]trace.NodeID{{0, 1, 2}, {2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cliques = %v, want %v", got, want)
	}
}

func TestCompleteGraphK5(t *testing.T) {
	var vertices []trace.NodeID
	var edges [][2]trace.NodeID
	for i := trace.NodeID(0); i < 5; i++ {
		vertices = append(vertices, i)
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]trace.NodeID{i, j})
		}
	}
	got := MaximalCliques(adjFromEdges(vertices, edges))
	if len(got) != 1 || len(got[0]) != 5 {
		t.Fatalf("K5 cliques = %v", got)
	}
}

func TestEmptyGraph(t *testing.T) {
	if got := MaximalCliques(nil); got != nil {
		t.Fatalf("cliques of empty graph = %v", got)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	adj := map[trace.NodeID][]trace.NodeID{
		0: {0, 1},
		1: {0, 1},
	}
	got := MaximalCliques(adj)
	want := [][]trace.NodeID{{0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cliques = %v, want %v", got, want)
	}
}

// isClique verifies all pairs in c are adjacent.
func isClique(adj map[trace.NodeID]map[trace.NodeID]bool, c []trace.NodeID) bool {
	for i, a := range c {
		for _, b := range c[i+1:] {
			if !adj[a][b] {
				return false
			}
		}
	}
	return true
}

// isMaximal verifies no vertex outside c is adjacent to every member.
func isMaximal(adj map[trace.NodeID]map[trace.NodeID]bool, c []trace.NodeID) bool {
	members := make(map[trace.NodeID]bool, len(c))
	for _, v := range c {
		members[v] = true
	}
	for v := range adj {
		if members[v] {
			continue
		}
		all := true
		for _, m := range c {
			if !adj[v][m] {
				all = false
				break
			}
		}
		if all && len(c) > 0 {
			return false
		}
	}
	return true
}

func TestPropertyCliquesAreMaximalCliques(t *testing.T) {
	f := func(seed uint64, size uint8, density uint8) bool {
		n := 2 + int(size%10)
		p := float64(density%100) / 100
		r := rng.New(seed)
		adjSet := make(map[trace.NodeID]map[trace.NodeID]bool, n)
		adjList := make(map[trace.NodeID][]trace.NodeID, n)
		for i := 0; i < n; i++ {
			adjSet[trace.NodeID(i)] = make(map[trace.NodeID]bool)
			adjList[trace.NodeID(i)] = nil
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bool(p) {
					a, b := trace.NodeID(i), trace.NodeID(j)
					adjSet[a][b], adjSet[b][a] = true, true
					adjList[a] = append(adjList[a], b)
					adjList[b] = append(adjList[b], a)
				}
			}
		}
		cliques := MaximalCliques(adjList)
		// Every vertex appears in at least one clique.
		covered := make(map[trace.NodeID]bool)
		for _, c := range cliques {
			if !isClique(adjSet, c) || !isMaximal(adjSet, c) {
				return false
			}
			for _, v := range c {
				covered[v] = true
			}
		}
		return len(covered) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContaining(t *testing.T) {
	cliques := [][]trace.NodeID{{0, 1}, {1, 2}, {3}}
	got := Containing(cliques, 1)
	want := [][]trace.NodeID{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Containing = %v, want %v", got, want)
	}
	if got := Containing(cliques, 9); got != nil {
		t.Fatalf("Containing(9) = %v, want nil", got)
	}
}

func TestCoordinator(t *testing.T) {
	if got := Coordinator([]trace.NodeID{5, 2, 9}); got != 2 {
		t.Fatalf("Coordinator = %v, want 2", got)
	}
	if got := Coordinator(nil); got != -1 {
		t.Fatalf("Coordinator(nil) = %v, want -1", got)
	}
}

func TestCyclicOrderDeterministicAndPermutation(t *testing.T) {
	members := []trace.NodeID{4, 9, 1, 7}
	a := CyclicOrder(members)
	b := CyclicOrder([]trace.NodeID{9, 1, 7, 4}) // order-insensitive input
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cyclic order depends on input order: %v vs %v", a, b)
	}
	seen := make(map[trace.NodeID]bool)
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range members {
		if !seen[v] {
			t.Fatalf("member %v missing from order %v", v, a)
		}
	}
	if len(a) != len(members) {
		t.Fatalf("order %v has wrong length", a)
	}
}

func TestCyclicOrderDiffersAcrossCliques(t *testing.T) {
	// Different member sets (different ID sums) should usually shuffle
	// differently; check that at least one of several differs from the
	// sorted order so the shuffle demonstrably does something.
	shuffled := false
	for base := trace.NodeID(0); base < 20; base += 4 {
		members := []trace.NodeID{base, base + 1, base + 2, base + 3}
		order := CyclicOrder(members)
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				shuffled = true
			}
		}
	}
	if !shuffled {
		t.Fatal("cyclic order never deviates from sorted order")
	}
}

func TestCyclicOrderEmpty(t *testing.T) {
	if got := CyclicOrder(nil); len(got) != 0 {
		t.Fatalf("CyclicOrder(nil) = %v", got)
	}
}
