package stgraph

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// lineTrace: contacts 0-1 at 1h, 1-2 at 2h, 2-3 at 3h.
func lineTrace() *trace.Trace {
	tr := &trace.Trace{Name: "line", NodeCount: 4}
	for i := 0; i < 3; i++ {
		start := simtime.Time(i+1) * simtime.Time(simtime.Hour)
		tr.Sessions = append(tr.Sessions, trace.Session{
			Start: start,
			End:   start.Add(simtime.Minute),
			Nodes: []trace.NodeID{trace.NodeID(i), trace.NodeID(i + 1)},
		})
	}
	return tr
}

func TestEarliestArrivalAlongLine(t *testing.T) {
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{0: 0})
	want := []simtime.Time{
		0,
		simtime.Time(simtime.Hour),
		simtime.Time(2 * simtime.Hour),
		simtime.Time(3 * simtime.Hour),
	}
	for i, w := range want {
		if arrival[i] != w {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrival[i], w)
		}
	}
}

func TestChronologyMatters(t *testing.T) {
	// Source at node 3: the line's edges run the wrong way in time, so
	// nothing beyond node 2... in fact node 3 meets only node 2 at 3h,
	// and node 2 never meets anyone later — no further spread.
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{3: 0})
	if arrival[2] != simtime.Time(3*simtime.Hour) {
		t.Fatalf("arrival[2] = %v", arrival[2])
	}
	if arrival[1] != Unreachable || arrival[0] != Unreachable {
		t.Fatalf("nodes 0/1 reached against chronology: %v", arrival)
	}
}

func TestSourceAfterContactMissesIt(t *testing.T) {
	// Information appearing at node 0 after its only contact cannot use
	// that contact.
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{
		0: simtime.Time(90 * simtime.Minute),
	})
	if arrival[1] != Unreachable {
		t.Fatalf("arrival[1] = %v, want unreachable", arrival[1])
	}
}

func TestSourceExactlyAtContactUsesIt(t *testing.T) {
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{
		0: simtime.Time(simtime.Hour),
	})
	if arrival[1] != simtime.Time(simtime.Hour) {
		t.Fatalf("arrival[1] = %v, want 1h", arrival[1])
	}
}

func TestMultipleSourcesTakeEarliest(t *testing.T) {
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{
		0: 0,
		3: 0,
	})
	// Node 2 hears from node 3 at 3h but from node 0's chain at 2h.
	if arrival[2] != simtime.Time(2*simtime.Hour) {
		t.Fatalf("arrival[2] = %v, want 2h", arrival[2])
	}
}

func TestCliqueSessionSpreadsToAll(t *testing.T) {
	tr := &trace.Trace{Name: "class", NodeCount: 5, Sessions: []trace.Session{
		{Start: 100, End: 200, Nodes: []trace.NodeID{0, 1, 2, 3, 4}},
	}}
	arrival := EarliestArrival(tr, map[trace.NodeID]simtime.Time{2: 50})
	for id := 0; id < 5; id++ {
		want := simtime.Time(100)
		if id == 2 {
			want = 50
		}
		if arrival[id] != want {
			t.Fatalf("arrival[%d] = %v, want %v", id, arrival[id], want)
		}
	}
}

func TestOutOfRangeSourceIgnored(t *testing.T) {
	arrival := EarliestArrival(lineTrace(), map[trace.NodeID]simtime.Time{99: 0, -1: 0})
	for _, at := range arrival {
		if at != Unreachable {
			t.Fatalf("phantom source reached nodes: %v", arrival)
		}
	}
}

func TestReachableBy(t *testing.T) {
	got := ReachableBy(lineTrace(), map[trace.NodeID]simtime.Time{0: 0},
		simtime.Time(2*simtime.Hour+1))
	// Nodes 0 (source, t=0), 1 (1h), 2 (2h) are strictly before 2h+1ms.
	if len(got) != 3 {
		t.Fatalf("ReachableBy = %v", got)
	}
}

func TestTemporalConnectivity(t *testing.T) {
	// Contacts are bidirectional, so on the line within 3h:
	// 0 reaches {1,2,3}; 1 reaches {0,2,3}; 2 reaches {1,3} (0's only
	// contact already passed); 3 reaches {2} = 9 of 12 ordered pairs.
	got := TemporalConnectivity(lineTrace(), 3*simtime.Hour)
	if got != 0.75 {
		t.Fatalf("TemporalConnectivity = %v, want 0.75", got)
	}
	if TemporalConnectivity(&trace.Trace{NodeCount: 1}, simtime.Hour) != 0 {
		t.Fatal("single node connectivity must be 0")
	}
}
