// Package stgraph implements the space-time graph view of a DTN (§II-A):
// each contact is an edge that exists only during its session, and a
// message can traverse any chronological sequence of such edges. The
// package computes earliest-arrival (foremost) journeys, which serve as
// an oracle: no store-carry-forward protocol can deliver anything from a
// source set earlier than the space-time graph allows, so the oracle
// upper-bounds every delivery ratio the simulator can produce.
package stgraph

import (
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Unreachable marks nodes no journey can reach.
const Unreachable = simtime.Time(-1)

// EarliestArrival returns, per node, the earliest time information
// originating at the given sources can reach it. sources maps each seed
// node to the instant its copy becomes available (e.g. a file's
// publication time). A transfer happens at a session's start if any
// member already carries the information strictly before or at that
// instant. Unreached nodes get Unreachable.
func EarliestArrival(tr *trace.Trace, sources map[trace.NodeID]simtime.Time) []simtime.Time {
	arrival := make([]simtime.Time, tr.NodeCount)
	for i := range arrival {
		arrival[i] = Unreachable
	}
	for id, t := range sources {
		if id < 0 || int(id) >= tr.NodeCount {
			continue
		}
		if arrival[id] == Unreachable || t < arrival[id] {
			arrival[id] = t
		}
	}
	// Sessions are chronological, so one pass suffices: information can
	// only move forward in time.
	for _, sess := range tr.Sessions {
		earliest := Unreachable
		for _, id := range sess.Nodes {
			if at := arrival[id]; at != Unreachable && at <= sess.Start {
				if earliest == Unreachable || at < earliest {
					earliest = sess.Start
				}
			}
		}
		if earliest == Unreachable {
			continue
		}
		for _, id := range sess.Nodes {
			if arrival[id] == Unreachable || sess.Start < arrival[id] {
				arrival[id] = sess.Start
			}
		}
	}
	return arrival
}

// ReachableBy returns the nodes whose earliest arrival from sources is
// strictly before the deadline.
func ReachableBy(tr *trace.Trace, sources map[trace.NodeID]simtime.Time, deadline simtime.Time) []trace.NodeID {
	arrival := EarliestArrival(tr, sources)
	var out []trace.NodeID
	for id, at := range arrival {
		if at != Unreachable && at < deadline {
			out = append(out, trace.NodeID(id))
		}
	}
	return out
}

// TemporalConnectivity returns the fraction of ordered (source, node)
// pairs for which a journey starting at time 0 exists within the horizon.
// It measures how well-mixed a trace is.
func TemporalConnectivity(tr *trace.Trace, horizon simtime.Duration) float64 {
	if tr.NodeCount < 2 {
		return 0
	}
	reached := 0
	total := 0
	for src := 0; src < tr.NodeCount; src++ {
		arrival := EarliestArrival(tr, map[trace.NodeID]simtime.Time{trace.NodeID(src): 0})
		for id, at := range arrival {
			if id == src {
				continue
			}
			total++
			if at != Unreachable && at <= simtime.Time(horizon) {
				reached++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(reached) / float64(total)
}
