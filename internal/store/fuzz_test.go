package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
)

// fuzzSeedWAL builds a canonical multi-record WAL stream covering every
// record kind — the same shape gencorpus mutates into the seed corpus.
func fuzzSeedWAL() []byte {
	m := metadata.NewSynthetic(1, "f0", "pub", "seed file", 300*1024,
		metadata.DefaultPieceSize, simtime.At(0, simtime.FileGenerationOffset),
		simtime.Days(3), []byte("k"))
	recs := []Record{
		&MetadataRecord{Popularity: 0.7, Meta: *m, Selected: true},
		&PieceRecord{URI: m.URI, Index: 0, Total: 3},
		&CreditRecord{Peer: 4, Delta: 5},
		&PieceRecord{URI: m.URI, Index: 2, Total: 3},
		&QuarantineRecord{Peer: 9, Strikes: 2, UntilUnixMilli: 1_700_000_000_000},
	}
	var out []byte
	for i, rec := range recs {
		out = append(out, encodeFrame(uint64(i+1), rec)...)
	}
	return out
}

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path — the
// frame walker, the record decoder, and a full store Open against the
// bytes as a log file. Replay must never panic and must always recover
// a valid prefix: the walker's cut point is stable under re-parse,
// re-encoding the recovered entries reproduces the prefix bytes, and a
// store opened on the input truncates the tail, accepts a new append,
// and reopens clean.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedWAL()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])                         // torn mid-frame
	f.Add(append(seed[:0:0], seed[3:]...))            // misaligned start
	dup := append(append([]byte{}, seed...), seed...) // duplicated records
	f.Add(dup)
	flip := append([]byte{}, seed...)
	flip[len(flip)/3] ^= 0x40 // bit-flipped body
	f.Add(flip)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // impossible length

	f.Fuzz(func(t *testing.T, b []byte) {
		entries, validLen := parseFrames(b)
		if validLen < 0 || validLen > int64(len(b)) {
			t.Fatalf("valid prefix %d outside [0,%d]", validLen, len(b))
		}
		// The cut point is a fixpoint: the prefix alone re-parses whole.
		entries2, vl2 := parseFrames(b[:validLen])
		if vl2 != validLen || len(entries2) != len(entries) {
			t.Fatalf("re-parse of valid prefix moved: %d/%d entries, %d/%d bytes",
				len(entries2), len(entries), vl2, validLen)
		}
		// The recovered entries are exactly the prefix's content.
		var re []byte
		for _, e := range entries {
			re = append(re, encodeFrame(e.seq, e.rec)...)
		}
		if !bytes.Equal(re, b[:validLen]) {
			t.Fatalf("re-encoded entries differ from recovered prefix")
		}
		// Applying a recovered prefix never panics.
		st := NewState()
		for _, e := range entries {
			st.Apply(e.rec)
		}

		// Full-store recovery on the same bytes: open, append, reopen.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, CompactEvery: -1})
		if err != nil {
			t.Fatalf("Open on fuzzed wal: %v", err)
		}
		rs := s.Stats().Recovery
		if rs.WALSizeAtOpen != validLen || rs.TornBytes != int64(len(b))-validLen {
			t.Fatalf("recovery stats %+v, walker says valid=%d torn=%d",
				rs, validLen, int64(len(b))-validLen)
		}
		if err := s.Append(&PieceRecord{URI: "dtn://files/9", Index: 0, Total: 1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		s2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if rs2 := s2.Stats().Recovery; rs2.TornBytes != 0 {
			t.Fatalf("second open still sees a torn tail: %+v", rs2)
		}
		if f := s2.State().Files["dtn://files/9"]; f == nil || f.HaveCount() != 1 {
			t.Fatalf("post-recovery append lost across reopen")
		}
		s2.Close()
	})
}
