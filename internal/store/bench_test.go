package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metadata"
)

// benchRecord returns the i-th record of the synthetic append stream:
// pieces across a handful of files with the occasional credit delta,
// roughly the mix a downloading daemon logs.
func benchRecord(i int) Record {
	if i%8 == 7 {
		return &CreditRecord{Peer: 4, Delta: 5}
	}
	return &PieceRecord{
		URI:   metadata.URI(fmt.Sprintf("dtn://files/%d", i%16)),
		Index: (i / 16) % 64,
		Total: 64,
	}
}

// BenchmarkWALAppend measures the durability hot path: one framed,
// checksummed record appended per op. The fsync variant is the real
// contract (Append returns only after the record is durable); nosync
// isolates the framing + write cost from the disk flush.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"fsync", false}, {"nosync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := Open(Options{Dir: b.TempDir(), NoSync: mode.noSync, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			frame := len(encodeFrame(1, benchRecord(0)))
			b.SetBytes(int64(frame))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(benchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplay measures recovery: Open reads the whole log, walks
// every frame (CRC + decode), and folds each record into the state.
func BenchmarkReplay(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			var log []byte
			for i := 0; i < n; i++ {
				log = append(log, encodeFrame(uint64(i+1), benchRecord(i))...)
			}
			if err := os.WriteFile(filepath.Join(dir, walName), log, 0o644); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(log)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(Options{Dir: dir, CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if got := s.Stats().Recovery.WALRecords; got != n {
					b.Fatalf("replayed %d records, want %d", got, n)
				}
				// Close the log handle without compacting so the next
				// iteration replays the same file.
				s.w.close()
			}
		})
	}
}
