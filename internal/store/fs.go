// Package store is the node's crash-consistent persistence layer: an
// append-only write-ahead log of protocol events (piece-received,
// metadata-learned, credit-delta, quarantine) framed with the same
// length-prefixed big-endian discipline as internal/wire, plus periodic
// compacting snapshots written via temp-file + fsync + atomic rename.
//
// Durability contract: Append returns only after the record's frame is
// written and fsynced, so a record the caller has acknowledged survives
// any later crash. Open replays the newest snapshot and then the WAL,
// truncating the log at the first torn record — a crash mid-append
// loses at most the record being written, never anything acknowledged
// before it. Compaction is ordered so that every crash point leaves
// either the old snapshot plus the full WAL or the new snapshot plus a
// (possibly stale but seq-guarded) WAL; record sequence numbers make
// replay idempotent across that window.
//
// All file access goes through the FS seam so tests can inject
// filesystem faults (short writes, fsync errors, crash-at-point
// schedules) with internal/fault's WrapFS.
package store

import (
	"io"
	"os"
)

// File is the store's view of an open file: sequential reads and writes
// plus the two durability primitives the WAL depends on.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (the fsync point).
	Sync() error
	// Truncate cuts the file to size bytes — how replay discards a torn
	// tail.
	Truncate(size int64) error
}

// FS is the filesystem seam: everything the store does to disk goes
// through it, so fault injection can sit between the store and the OS.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the snapshot
	// commit point).
	Rename(oldpath, newpath string) error
	// Remove deletes a file; missing files are not an error for the
	// store's callers (they guard with Stat).
	Remove(name string) error
	// MkdirAll ensures a directory exists.
	MkdirAll(path string, perm os.FileMode) error
	// Stat reports a file's size and existence.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making a completed Rename durable.
	SyncDir(path string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Stat implements FS.
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
