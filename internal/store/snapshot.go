package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/metadata"
)

// Snapshot file layout:
//
//	8-byte magic "MBTSNAP\x01" | u64 lastSeq | frames…
//
// where each frame is u32 len | u32 crc | record (no per-record seq —
// the header's lastSeq covers the whole snapshot). The file is written
// to a temp name, fsynced, atomically renamed over the live name, and
// the directory fsynced, so a crash at any point leaves either the old
// snapshot or the new one, never a torn hybrid. lastSeq guards replay:
// WAL entries with seq <= lastSeq are already folded in and are skipped,
// which makes the crash window between rename and WAL reset idempotent.

const (
	snapName    = "state.snap"
	snapTmpName = "state.snap.tmp"
)

var snapMagic = [8]byte{'M', 'B', 'T', 'S', 'N', 'A', 'P', 1}

// ErrCorruptSnapshot reports a snapshot that fails its magic or CRC
// checks. Because snapshots are committed atomically, this means disk
// damage rather than a crash, so Open refuses to guess and surfaces it.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// encodeSnapshot serializes the state as a snapshot image.
func encodeSnapshot(lastSeq uint64, st *State) []byte {
	b := append([]byte{}, snapMagic[:]...)
	b = binary.BigEndian.AppendUint64(b, lastSeq)
	for _, rec := range st.records() {
		payload := EncodeRecord(rec)
		b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
		b = binary.BigEndian.AppendUint32(b, crcOf(payload))
		b = append(b, payload...)
	}
	return b
}

// decodeSnapshot parses a snapshot image into a fresh state.
func decodeSnapshot(raw []byte) (lastSeq uint64, st *State, err error) {
	if len(raw) < len(snapMagic)+8 {
		return 0, nil, fmt.Errorf("%d-byte header: %w", len(raw), ErrCorruptSnapshot)
	}
	for i, c := range snapMagic {
		if raw[i] != c {
			return 0, nil, fmt.Errorf("bad magic: %w", ErrCorruptSnapshot)
		}
	}
	lastSeq = binary.BigEndian.Uint64(raw[len(snapMagic):])
	st = NewState()
	b := raw[len(snapMagic)+8:]
	for len(b) > 0 {
		if len(b) < frameHeaderLen {
			return 0, nil, fmt.Errorf("torn frame header: %w", ErrCorruptSnapshot)
		}
		plen := binary.BigEndian.Uint32(b[0:4])
		crc := binary.BigEndian.Uint32(b[4:8])
		if int64(plen) > maxRecordLen || len(b)-frameHeaderLen < int(plen) {
			return 0, nil, fmt.Errorf("frame length %d: %w", plen, ErrCorruptSnapshot)
		}
		payload := b[frameHeaderLen : frameHeaderLen+int(plen)]
		if crcOf(payload) != crc {
			return 0, nil, fmt.Errorf("frame crc: %w", ErrCorruptSnapshot)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("frame record: %v: %w", err, ErrCorruptSnapshot)
		}
		st.Apply(rec)
		b = b[frameHeaderLen+int(plen):]
	}
	return lastSeq, st, nil
}

// writeSnapshot commits a snapshot image: temp file, fsync, atomic
// rename, directory fsync. Any error leaves the previous snapshot (if
// one exists) untouched and live.
func writeSnapshot(fs FS, dir string, img []byte) error {
	tmp := join(dir, snapTmpName)
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create snapshot temp: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := fs.Rename(tmp, join(dir, snapName)); err != nil {
		return fmt.Errorf("store: commit snapshot: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// readSnapshot loads the live snapshot, reporting records restored.
// A missing snapshot is a fresh store, not an error.
func readSnapshot(fs FS, dir string) (lastSeq uint64, st *State, n int, err error) {
	path := join(dir, snapName)
	if _, err := fs.Stat(path); err != nil {
		return 0, NewState(), 0, nil
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	lastSeq, st, err = decodeSnapshot(raw)
	if err != nil {
		return 0, nil, 0, err
	}
	return lastSeq, st, st.Len(), nil
}

// records flattens the state back into replayable records, sorted for
// deterministic snapshot bytes.
func (st *State) records() []Record {
	var out []Record
	uris := make([]string, 0, len(st.Files))
	for uri := range st.Files {
		uris = append(uris, string(uri))
	}
	sort.Strings(uris)
	for _, u := range uris {
		uri := metadata.URI(u)
		fs := st.Files[uri]
		if fs.Meta != nil {
			out = append(out, &MetadataRecord{
				Popularity: fs.Popularity,
				Meta:       *fs.Meta,
				Selected:   fs.Selected,
			})
		}
		for i, have := range fs.Have {
			if have {
				out = append(out, &PieceRecord{URI: uri, Index: i, Total: fs.Total})
			}
		}
	}
	peers := sortedPeers(st.Credit)
	for _, p := range peers {
		out = append(out, &CreditRecord{Peer: p, Delta: st.Credit[p]})
	}
	for _, p := range sortedQuarantine(st.Quarantine) {
		q := st.Quarantine[p]
		out = append(out, &QuarantineRecord{Peer: p, Strikes: q.Strikes, UntilUnixMilli: q.UntilUnixMilli})
	}
	return out
}
