package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
)

// testMeta builds a small signed synthetic record (3 pieces).
func testMeta(id metadata.FileID) *metadata.Metadata {
	return metadata.NewSynthetic(id, "news daily", "BBC", "world news",
		3*4096, 4096, simtime.At(0, 0), simtime.Days(3), []byte("k"))
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if s.Stats().Recovery.Recovered {
		t.Fatal("fresh dir reported recovered")
	}
	m := testMeta(0)
	records := []Record{
		&MetadataRecord{Popularity: 0.25, Meta: *m, Selected: true},
		&PieceRecord{URI: m.URI, Index: 0, Total: 3},
		&PieceRecord{URI: m.URI, Index: 2, Total: 3},
		&CreditRecord{Peer: 7, Delta: 5},
		&CreditRecord{Peer: 7, Delta: 5},
		&QuarantineRecord{Peer: 9, Strikes: 2, UntilUnixMilli: 123456},
	}
	for _, rec := range records {
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.RecordKind(), err)
		}
	}
	st := s.State()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, dir)
	defer r.Close()
	if !r.Stats().Recovery.Recovered {
		t.Fatal("reopen did not report recovered")
	}
	got := r.State()
	f := got.Files[m.URI]
	if f == nil || f.Meta == nil {
		t.Fatalf("metadata not recovered: %+v", got.Files)
	}
	if f.Meta.URI != m.URI || f.Meta.Signature != m.Signature {
		t.Fatalf("recovered metadata differs: %+v", f.Meta)
	}
	if !f.Selected || f.Popularity != 0.25 {
		t.Fatalf("selected/popularity not recovered: %+v", f)
	}
	if !reflect.DeepEqual(f.Have, []bool{true, false, true}) {
		t.Fatalf("pieces = %v, want [true false true]", f.Have)
	}
	if got.Credit[7] != 10 {
		t.Fatalf("credit = %v, want 10", got.Credit[7])
	}
	if q := got.Quarantine[9]; q.Strikes != 2 || q.UntilUnixMilli != 123456 {
		t.Fatalf("quarantine = %+v", q)
	}
	// Close compacted: the reopen must have come from the snapshot.
	if rs := r.Stats().Recovery; rs.SnapshotRecords == 0 || rs.WALRecords != 0 {
		t.Fatalf("recovery = %+v, want snapshot-only", rs)
	}
	// And the recovered state matches the pre-close clone.
	if !reflect.DeepEqual(st.Credit, got.Credit) || !reflect.DeepEqual(st.Quarantine, got.Quarantine) {
		t.Fatalf("state drifted across reopen: %+v vs %+v", st, got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.opt.CompactEvery = -1 // keep everything in the WAL
	m := testMeta(1)
	for i := 0; i < 3; i++ {
		if err := s.Append(&PieceRecord{URI: m.URI, Index: i, Total: 3}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walName)
	good, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.w.close() // bypass Close's compaction; leave the raw WAL behind
	s.closed = true

	// Append garbage, then half of a valid frame: both are torn tails.
	torn := append(append([]byte{}, good...), encodeFrame(99, &CreditRecord{Peer: 1, Delta: 1})[:7]...)
	torn = append(torn, 0xFF, 0xFE)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	defer r.Close()
	rs := r.Stats().Recovery
	if rs.WALRecords != 3 {
		t.Fatalf("replayed %d records, want 3", rs.WALRecords)
	}
	if rs.TornBytes != int64(len(torn)-len(good)) {
		t.Fatalf("torn bytes = %d, want %d", rs.TornBytes, len(torn)-len(good))
	}
	// The file itself was truncated back to the valid prefix.
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(good) {
		t.Fatalf("wal length after open = %d, want %d", len(after), len(good))
	}
	if f := r.State().Files[m.URI]; f == nil || f.HaveCount() != 3 {
		t.Fatalf("pieces lost with the torn tail: %+v", f)
	}
}

func TestBitFlipStopsReplayAtFlip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	m := testMeta(2)
	for i := 0; i < 4; i++ {
		if err := s.Append(&PieceRecord{URI: m.URI, Index: i, Total: 4}); err != nil {
			t.Fatal(err)
		}
	}
	s.w.close()
	s.closed = true
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the third frame's payload: frames 1–2 must
	// survive, 3 and everything after must be cut.
	frameLen := len(raw) / 4
	raw[2*frameLen+frameHeaderLen+3] ^= 0x40
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir)
	defer r.Close()
	if rs := r.Stats().Recovery; rs.WALRecords != 2 {
		t.Fatalf("replayed %d records, want 2 (prefix before the flip)", rs.WALRecords)
	}
	if f := r.State().Files[m.URI]; f == nil || f.HaveCount() != 2 {
		t.Fatalf("recovered pieces = %+v, want exactly the 2-record prefix", f)
	}
}

func TestCompactionFoldsWALIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	m := testMeta(3)
	if err := s.Append(&MetadataRecord{Popularity: 0.5, Meta: *m, Selected: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(&PieceRecord{URI: m.URI, Index: i, Total: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if sz := s.Stats().WALSize; sz != 0 {
		t.Fatalf("wal size after compact = %d, want 0", sz)
	}
	// Records after the snapshot land in the fresh WAL.
	if err := s.Append(&CreditRecord{Peer: 4, Delta: 5}); err != nil {
		t.Fatal(err)
	}
	s.w.f.Sync()
	s.w.close() // reopen against snapshot + 1-record WAL, skipping Close's compact
	s.closed = true

	r := openT(t, dir)
	defer r.Close()
	rs := r.Stats().Recovery
	if rs.SnapshotRecords != 4 || rs.WALRecords != 1 {
		t.Fatalf("recovery = %+v, want 4 snapshot records + 1 wal record", rs)
	}
	got := r.State()
	if f := got.Files[m.URI]; f == nil || f.Meta == nil || f.HaveCount() != 3 {
		t.Fatalf("snapshot state not recovered: %+v", f)
	}
	if got.Credit[4] != 5 {
		t.Fatalf("post-snapshot credit = %v, want 5", got.Credit[4])
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, CompactEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := testMeta(4)
	for i := 0; i < 64; i++ {
		if err := s.Append(&PieceRecord{URI: m.URI, Index: i, Total: 64}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no auto-compaction after %d appends past a 256-byte threshold", st.Appended)
	}
	if st.WALSize > 256+64 {
		t.Fatalf("wal size %d stayed past threshold", st.WALSize)
	}
	if f := s.State().Files[m.URI]; f.HaveCount() != 64 {
		t.Fatalf("state lost pieces across auto-compaction: %d/64", f.HaveCount())
	}
}

func TestRecordCodecRejectsGarbage(t *testing.T) {
	recs := []Record{
		&PieceRecord{URI: "dtn://files/1", Index: 1, Total: 3},
		&MetadataRecord{Popularity: 1, Meta: *testMeta(5), Selected: false},
		&CreditRecord{Peer: 3, Delta: -2.5},
		&QuarantineRecord{Peer: 1, Strikes: 1, UntilUnixMilli: 42},
	}
	for _, rec := range recs {
		enc := EncodeRecord(rec)
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("round trip %v: %v", rec.RecordKind(), err)
		}
		if dec.RecordKind() != rec.RecordKind() {
			t.Fatalf("kind %v != %v", dec.RecordKind(), rec.RecordKind())
		}
		// Every truncation must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeRecord(enc[:cut]); err == nil && cut < len(enc) {
				t.Fatalf("%v truncated at %d decoded without error", rec.RecordKind(), cut)
			}
		}
		// Trailing junk is rejected.
		if _, err := DecodeRecord(append(append([]byte{}, enc...), 0)); err == nil {
			t.Fatalf("%v with trailing byte decoded", rec.RecordKind())
		}
	}
	if _, err := DecodeRecord(nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty record: %v", err)
	}
	if _, err := DecodeRecord([]byte{0x7F}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	s := openT(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&CreditRecord{Peer: 1, Delta: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStateCloneIsolation(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	m := testMeta(6)
	if err := s.Append(&PieceRecord{URI: m.URI, Index: 0, Total: 3}); err != nil {
		t.Fatal(err)
	}
	snap := s.State()
	if err := s.Append(&PieceRecord{URI: m.URI, Index: 1, Total: 3}); err != nil {
		t.Fatal(err)
	}
	if snap.Files[m.URI].HaveCount() != 1 {
		t.Fatal("State() clone mutated by later append")
	}
}
