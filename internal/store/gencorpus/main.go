// Command gencorpus seeds the WAL replay fuzz corpus the way the wire
// decoder's gencorpus does: a canonical multi-record log covering every
// record kind is mutated with the fault injector's frame corrupter
// under fixed seeds, plus the structural cases a crash actually leaves
// — torn tails at every frame boundary, a mid-frame cut, duplicated
// frames (the snapshot/WAL overlap window), and a bit-flipped CRC.
// Regenerate with:
//
//	go run ./internal/store/gencorpus -out internal/store/testdata/fuzz/FuzzWALReplay
//
// The output is deterministic; rerunning overwrites the same files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/store"
)

// frames returns each record's framed encoding, in log order.
func frames() [][]byte {
	m := metadata.NewSynthetic(1, "f0", "pub", "seed file", 300*1024,
		metadata.DefaultPieceSize, simtime.At(0, simtime.FileGenerationOffset),
		simtime.Days(3), []byte("k"))
	recs := []store.Record{
		&store.MetadataRecord{Popularity: 0.7, Meta: *m, Selected: true},
		&store.PieceRecord{URI: m.URI, Index: 0, Total: 3},
		&store.CreditRecord{Peer: 4, Delta: 5},
		&store.PieceRecord{URI: m.URI, Index: 2, Total: 3},
		&store.QuarantineRecord{Peer: 9, Strikes: 2, UntilUnixMilli: 1_700_000_000_000},
	}
	out := make([][]byte, len(recs))
	for i, rec := range recs {
		out[i] = store.EncodeFrame(uint64(i+1), rec)
	}
	return out
}

func main() {
	out := flag.String("out", "internal/store/testdata/fuzz/FuzzWALReplay",
		"corpus directory to write")
	seeds := flag.Int("seeds", 4, "corrupted whole-log variants")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	fs := frames()
	var whole []byte
	for _, f := range fs {
		whole = append(whole, f...)
	}

	inputs := map[string][]byte{"whole-log": whole}
	// Torn tails: cut at every frame boundary and mid-way through the
	// frame that follows it — what a crash mid-append leaves behind.
	off := 0
	for i, f := range fs {
		inputs[fmt.Sprintf("torn-at-frame-%d", i)] = whole[:off]
		inputs[fmt.Sprintf("torn-mid-frame-%d", i)] = whole[:off+len(f)/2]
		off += len(f)
	}
	// Duplicated frames: the snapshot/WAL overlap window replays records
	// the snapshot already folded in.
	inputs["duplicated-log"] = append(append([]byte{}, whole...), whole...)
	inputs["repeated-frame"] = append(append([]byte{}, fs[1]...), fs[1]...)
	// Injector corruption: the same seeded mutations the chaos transport
	// applies to wire frames, pinned as replay regression inputs.
	for s := 0; s < *seeds; s++ {
		r := rng.New(uint64(0xBAD5EED + s))
		inputs[fmt.Sprintf("injector-corrupt-%d", s)] = fault.CorruptFrame(r, append([]byte{}, whole...))
	}

	n := 0
	for name, data := range inputs {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(*out, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		n++
	}
	fmt.Printf("wrote %d corpus files to %s\n", n, *out)
}
