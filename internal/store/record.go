package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Kind tags one WAL record.
type Kind byte

// The persisted event kinds: everything a node accumulates across
// contacts that a crash must not erase.
const (
	// KindPiece records one checksum-verified piece received.
	KindPiece Kind = iota + 1
	// KindMetadata records a newly learned metadata record with its
	// advisory popularity and whether the node selected it for download.
	KindMetadata
	// KindCredit records a tit-for-tat credit delta for one peer.
	KindCredit
	// KindQuarantine records a bad-signature quarantine penalty.
	KindQuarantine
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindPiece:
		return "piece"
	case KindMetadata:
		return "metadata"
	case KindCredit:
		return "credit"
	case KindQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("Kind(%d)", byte(k))
	}
}

// Record is one durable event. The concrete types are PieceRecord,
// MetadataRecord, CreditRecord, and QuarantineRecord.
type Record interface {
	RecordKind() Kind
}

// PieceRecord notes that piece Index of the file at URI verified against
// its checksum and is held. Total pins the file's piece count so a
// piece-only file (no metadata yet) still has a sized bitmap.
type PieceRecord struct {
	URI   metadata.URI
	Index int
	Total int
}

// RecordKind implements Record.
func (*PieceRecord) RecordKind() Kind { return KindPiece }

// MetadataRecord notes a signed metadata record the node stored, with
// the popularity it was told and whether the user (or FetchMatching)
// selected the file for download.
type MetadataRecord struct {
	Popularity float64
	Meta       metadata.Metadata
	Selected   bool
}

// RecordKind implements Record.
func (*MetadataRecord) RecordKind() Kind { return KindMetadata }

// CreditRecord notes a tit-for-tat credit delta earned by Peer.
type CreditRecord struct {
	Peer  trace.NodeID
	Delta float64
}

// RecordKind implements Record.
func (*CreditRecord) RecordKind() Kind { return KindCredit }

// QuarantineRecord notes a bad-signature quarantine penalty applied to
// Peer: the strike count and the wall-clock end of the penalty, so a
// restart does not amnesty an offender mid-sentence.
type QuarantineRecord struct {
	Peer           trace.NodeID
	Strikes        int
	UntilUnixMilli int64
}

// RecordKind implements Record.
func (*QuarantineRecord) RecordKind() Kind { return KindQuarantine }

// Codec errors. ErrBadRecord wraps every malformed-record cause so
// replay can match one sentinel.
var (
	ErrBadRecord = errors.New("store: malformed record")
)

// maxRecordLen caps one encoded record; a metadata record for a large
// file (piece hash per 256 KB) dominates, and 4 MB covers files far
// beyond the synthetic catalog's.
const maxRecordLen = 4 << 20

// EncodeRecord serializes one record as kind byte + body, following the
// wire codec discipline: big-endian, length-prefixed variable fields.
// The metadata body is the wire codec's own metadata encoding, so the
// WAL and the air share one source of truth for the record layout.
func EncodeRecord(rec Record) []byte {
	switch r := rec.(type) {
	case *PieceRecord:
		b := []byte{byte(KindPiece)}
		b = appendStr(b, string(r.URI))
		b = binary.BigEndian.AppendUint32(b, uint32(r.Index))
		b = binary.BigEndian.AppendUint32(b, uint32(r.Total))
		return b
	case *MetadataRecord:
		b := []byte{byte(KindMetadata)}
		enc := wire.EncodeMetadata(&wire.Metadata{Popularity: r.Popularity, Record: r.Meta})
		b = binary.BigEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
		if r.Selected {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		return b
	case *CreditRecord:
		b := []byte{byte(KindCredit)}
		b = binary.BigEndian.AppendUint32(b, uint32(r.Peer))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.Delta))
		return b
	case *QuarantineRecord:
		b := []byte{byte(KindQuarantine)}
		b = binary.BigEndian.AppendUint32(b, uint32(r.Peer))
		b = binary.BigEndian.AppendUint32(b, uint32(r.Strikes))
		b = binary.BigEndian.AppendUint64(b, uint64(r.UntilUnixMilli))
		return b
	default:
		panic(fmt.Sprintf("store: EncodeRecord(%T)", rec))
	}
}

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// rreader consumes an encoded record body.
type rreader struct{ b []byte }

func (r *rreader) uint32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrBadRecord
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *rreader) uint64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrBadRecord
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *rreader) str() (string, error) {
	n, err := r.uint32()
	if err != nil {
		return "", err
	}
	if int64(n) > maxRecordLen || len(r.b) < int(n) {
		return "", ErrBadRecord
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *rreader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("%d trailing bytes: %w", len(r.b), ErrBadRecord)
	}
	return nil
}

// DecodeRecord parses one encoded record. Every malformed input returns
// an error wrapping ErrBadRecord; it never panics.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("empty: %w", ErrBadRecord)
	}
	r := &rreader{b: b[1:]}
	switch Kind(b[0]) {
	case KindPiece:
		uri, err := r.str()
		if err != nil {
			return nil, err
		}
		idx, err := r.uint32()
		if err != nil {
			return nil, err
		}
		total, err := r.uint32()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		rec := &PieceRecord{URI: metadata.URI(uri), Index: int(idx), Total: int(total)}
		if rec.Total <= 0 || rec.Index < 0 || rec.Index >= rec.Total {
			return nil, fmt.Errorf("piece %d of %d: %w", rec.Index, rec.Total, ErrBadRecord)
		}
		return rec, nil
	case KindMetadata:
		n, err := r.uint32()
		if err != nil {
			return nil, err
		}
		if int64(n) > maxRecordLen || len(r.b) < int(n) {
			return nil, fmt.Errorf("metadata body %d: %w", n, ErrBadRecord)
		}
		wm, err := wire.DecodeMetadata(r.b[:n])
		if err != nil {
			return nil, fmt.Errorf("metadata body: %v: %w", err, ErrBadRecord)
		}
		r.b = r.b[n:]
		flag, err := r.oneByte()
		if err != nil {
			return nil, err
		}
		if flag > 1 {
			return nil, fmt.Errorf("selected flag %d: %w", flag, ErrBadRecord)
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &MetadataRecord{Popularity: wm.Popularity, Meta: wm.Record, Selected: flag == 1}, nil
	case KindCredit:
		peer, err := r.uint32()
		if err != nil {
			return nil, err
		}
		bits, err := r.uint64()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		delta := math.Float64frombits(bits)
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return nil, fmt.Errorf("credit delta %v: %w", delta, ErrBadRecord)
		}
		return &CreditRecord{Peer: trace.NodeID(peer), Delta: delta}, nil
	case KindQuarantine:
		peer, err := r.uint32()
		if err != nil {
			return nil, err
		}
		strikes, err := r.uint32()
		if err != nil {
			return nil, err
		}
		until, err := r.uint64()
		if err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		return &QuarantineRecord{
			Peer:           trace.NodeID(peer),
			Strikes:        int(strikes),
			UntilUnixMilli: int64(until),
		}, nil
	default:
		return nil, fmt.Errorf("kind %d: %w", b[0], ErrBadRecord)
	}
}

func (r *rreader) oneByte() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrBadRecord
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}
