package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"sync"

	"repro/internal/metadata"
	"repro/internal/trace"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func join(dir, name string) string { return path.Join(dir, name) }

// FileState is everything the store knows about one file.
type FileState struct {
	// Meta is the learned metadata record; nil for a file the node only
	// holds cached pieces of.
	Meta       *metadata.Metadata
	Popularity float64
	// Selected marks the file as wanted for download.
	Selected bool
	// Total is the piece count; Have[i] marks piece i verified and held.
	Total int
	Have  []bool
}

// HaveCount returns the number of held pieces.
func (f *FileState) HaveCount() int {
	n := 0
	for _, h := range f.Have {
		if h {
			n++
		}
	}
	return n
}

// QuarantineState is one peer's persisted quarantine penalty.
type QuarantineState struct {
	Strikes        int
	UntilUnixMilli int64
}

// State is the materialized view the WAL and snapshots describe: what a
// node recovers after a restart.
type State struct {
	Files      map[metadata.URI]*FileState
	Credit     map[trace.NodeID]float64
	Quarantine map[trace.NodeID]QuarantineState
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Files:      make(map[metadata.URI]*FileState),
		Credit:     make(map[trace.NodeID]float64),
		Quarantine: make(map[trace.NodeID]QuarantineState),
	}
}

// Len counts the records a snapshot of the state would hold.
func (st *State) Len() int {
	n := 0
	for _, f := range st.Files {
		if f.Meta != nil {
			n++
		}
		n += f.HaveCount()
	}
	return n + len(st.Credit) + len(st.Quarantine)
}

// Apply folds one record into the state. Records are idempotent and
// commutative enough for the replay windows the store produces:
// applying a prefix of the log always yields a consistent state.
func (st *State) Apply(rec Record) {
	switch r := rec.(type) {
	case *PieceRecord:
		f := st.ensureFile(r.URI, r.Total)
		if r.Index < len(f.Have) {
			f.Have[r.Index] = true
		}
	case *MetadataRecord:
		f := st.ensureFile(r.Meta.URI, r.Meta.NumPieces())
		m := r.Meta
		f.Meta = &m
		if r.Popularity > f.Popularity {
			f.Popularity = r.Popularity
		}
		if r.Selected {
			f.Selected = true
		}
	case *CreditRecord:
		st.Credit[r.Peer] += r.Delta
	case *QuarantineRecord:
		cur := st.Quarantine[r.Peer]
		if r.Strikes >= cur.Strikes || r.UntilUnixMilli >= cur.UntilUnixMilli {
			st.Quarantine[r.Peer] = QuarantineState{Strikes: r.Strikes, UntilUnixMilli: r.UntilUnixMilli}
		}
	}
}

func (st *State) ensureFile(uri metadata.URI, total int) *FileState {
	f := st.Files[uri]
	if f == nil {
		f = &FileState{Total: total, Have: make([]bool, total)}
		st.Files[uri] = f
	}
	if total > f.Total {
		// A record with a larger piece count corrects an earlier
		// pieces-only guess; grow the bitmap, never shrink it.
		grown := make([]bool, total)
		copy(grown, f.Have)
		f.Have = grown
		f.Total = total
	}
	return f
}

// clone deep-copies the state so callers can keep it past later appends.
func (st *State) clone() *State {
	out := NewState()
	for uri, f := range st.Files {
		nf := &FileState{
			Popularity: f.Popularity,
			Selected:   f.Selected,
			Total:      f.Total,
			Have:       append([]bool(nil), f.Have...),
		}
		if f.Meta != nil {
			nf.Meta = f.Meta.Clone()
		}
		out.Files[uri] = nf
	}
	for p, c := range st.Credit {
		out.Credit[p] = c
	}
	for p, q := range st.Quarantine {
		out.Quarantine[p] = q
	}
	return out
}

func sortedPeers(m map[trace.NodeID]float64) []trace.NodeID {
	out := make([]trace.NodeID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedQuarantine(m map[trace.NodeID]QuarantineState) []trace.NodeID {
	out := make([]trace.NodeID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// FS overrides the filesystem (fault injection); nil uses the OS.
	FS FS
	// NoSync skips the per-append fsync. Only benchmarks should set it:
	// it voids the durability contract.
	NoSync bool
	// CompactEvery triggers an automatic snapshot once the WAL exceeds
	// this many bytes (default DefaultCompactEvery; negative disables).
	CompactEvery int64
}

// DefaultCompactEvery is the WAL size that triggers auto-compaction.
const DefaultCompactEvery = 1 << 20

// RecoveryStats describes what Open found, for /healthz and /stats.
type RecoveryStats struct {
	// Recovered is true when the store opened against existing data.
	Recovered bool `json:"recovered"`
	// SnapshotRecords and WALRecords count replayed records per source.
	SnapshotRecords int `json:"snapshot_records"`
	WALRecords      int `json:"wal_records"`
	// TornBytes is the torn WAL tail truncated at open (a crash
	// mid-append leaves one).
	TornBytes int64 `json:"torn_bytes"`
	// WALSizeAtOpen is the valid WAL length replayed.
	WALSizeAtOpen int64 `json:"wal_size_at_open"`
}

// Stats is the store's live observability surface.
type Stats struct {
	Recovery     RecoveryStats `json:"recovery"`
	Appended     uint64        `json:"appended"`
	AppendErrors uint64        `json:"append_errors"`
	Compactions  uint64        `json:"compactions"`
	WALSize      int64         `json:"wal_size"`
	LastSeq      uint64        `json:"last_seq"`
	// Broken reports a store gone read-only after an unrepaired write
	// failure; appends return ErrBroken until the process restarts.
	Broken bool `json:"broken"`
}

// ErrClosed reports use of a closed store; ErrBroken a store whose WAL
// failed in a way repair could not undo, so further appends could
// shadow good records behind garbage.
var (
	ErrClosed = errors.New("store: closed")
	ErrBroken = errors.New("store: broken wal (unrepaired append failure)")
)

// Store is the node's durable state. Construct with Open; Append is
// safe for concurrent use.
type Store struct {
	opt Options
	fs  FS

	mu          sync.Mutex
	w           *wal
	state       *State
	seq         uint64
	recovery    RecoveryStats
	appended    uint64
	appendErrs  uint64
	compactions uint64
	closed      bool
	broken      bool
}

// Open mounts the data directory: loads the newest snapshot, replays
// the WAL's valid prefix on top (skipping records the snapshot already
// folded in), truncates any torn tail, and returns the store ready for
// appends. The recovered state is available via State().
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("store: empty data dir")
	}
	if opt.FS == nil {
		opt.FS = OSFS{}
	}
	if opt.CompactEvery == 0 {
		opt.CompactEvery = DefaultCompactEvery
	}
	fs := opt.FS
	if err := fs.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", opt.Dir, err)
	}
	// A leftover temp snapshot is an uncommitted write from a crashed
	// compaction; it never became live, so drop it.
	if _, err := fs.Stat(join(opt.Dir, snapTmpName)); err == nil {
		if err := fs.Remove(join(opt.Dir, snapTmpName)); err != nil {
			return nil, fmt.Errorf("store: remove stale snapshot temp: %w", err)
		}
	}
	lastSeq, st, snapRecords, err := readSnapshot(fs, opt.Dir)
	if err != nil {
		return nil, err
	}
	w, entries, torn, err := openWAL(fs, join(opt.Dir, walName))
	if err != nil {
		return nil, err
	}
	seq := lastSeq
	walRecords := 0
	for _, e := range entries {
		if e.seq <= lastSeq {
			// Already folded into the snapshot: the crash window between
			// snapshot commit and WAL reset replays here.
			continue
		}
		st.Apply(e.rec)
		walRecords++
		if e.seq > seq {
			seq = e.seq
		}
	}
	s := &Store{
		opt:   opt,
		fs:    fs,
		w:     w,
		state: st,
		seq:   seq,
		recovery: RecoveryStats{
			Recovered:       snapRecords > 0 || len(entries) > 0 || torn > 0,
			SnapshotRecords: snapRecords,
			WALRecords:      walRecords,
			TornBytes:       torn,
			WALSizeAtOpen:   w.size,
		},
	}
	return s, nil
}

// State returns a deep copy of the recovered (plus since-appended)
// state.
func (s *Store) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// Append logs one record durably: the call returns nil only after the
// framed record is written and fsynced, so callers may acknowledge the
// event the moment Append returns. The record is also folded into the
// in-memory state. When the WAL has grown past CompactEvery, a snapshot
// is taken inline.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.broken {
		s.appendErrs++
		return ErrBroken
	}
	s.seq++
	if err := s.w.append(s.seq, rec, s.opt.NoSync); err != nil {
		s.seq--
		s.appendErrs++
		// A failed repair means the file may hold a torn frame that new
		// appends would bury; refuse to make it worse.
		if errors.Is(err, errUnrepaired) {
			s.broken = true
		}
		return err
	}
	s.state.Apply(rec)
	s.appended++
	if s.opt.CompactEvery > 0 && s.w.size > s.opt.CompactEvery {
		// Best effort: a failed compaction leaves the WAL as the source
		// of truth and the next append retries past the threshold.
		if err := s.compactLocked(); err == nil {
			s.compactions++
		}
	}
	return nil
}

// Compact writes a snapshot of the current state and resets the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.compactLocked(); err != nil {
		return err
	}
	s.compactions++
	return nil
}

func (s *Store) compactLocked() error {
	img := encodeSnapshot(s.seq, s.state)
	if err := writeSnapshot(s.fs, s.opt.Dir, img); err != nil {
		return err
	}
	// The snapshot is durable; the WAL's contents are redundant. A crash
	// before (or during) this reset replays WAL entries whose seq the
	// snapshot already covers, which Open skips.
	return s.w.reset()
}

// Close flushes and closes the store. A store with appended records
// gets a final compaction so the next Open replays a snapshot instead
// of a long log; failures fall back to leaving the (already durable)
// WAL in place.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.broken && s.w.size > 0 {
		if err := s.compactLocked(); err == nil {
			s.compactions++
		}
	}
	return s.w.close()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Recovery:     s.recovery,
		Appended:     s.appended,
		AppendErrors: s.appendErrs,
		Compactions:  s.compactions,
		WALSize:      s.w.size,
		LastSeq:      s.seq,
		Broken:       s.broken,
	}
}
