package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL file layout: a sequence of frames, each
//
//	u32 payloadLen | u32 crc32(payload) | payload
//	payload := u64 seq | record (kind byte + body, see record.go)
//
// Frames are written with one Write call and fsynced before Append
// returns. Replay walks frames from the start and stops at the first
// torn frame — short header, impossible length, CRC mismatch, or a
// record body that fails to decode — truncating the file there, so the
// recovered log is always a valid prefix of what was appended.

const (
	walName        = "wal.log"
	frameHeaderLen = 8
	seqLen         = 8
)

// errUnrepaired marks an append failure whose truncate-back repair also
// failed: the log may end in a torn frame, and appending more would
// bury good records behind it. The store goes read-only on it.
var errUnrepaired = errors.New("store: wal tail unrepaired")

// walEntry is one replayed record with its sequence number.
type walEntry struct {
	seq uint64
	rec Record
}

// EncodeFrame builds one framed WAL record — exported for the corpus
// generator and tests that assemble log images byte-for-byte.
func EncodeFrame(seq uint64, rec Record) []byte { return encodeFrame(seq, rec) }

// encodeFrame builds one framed WAL record.
func encodeFrame(seq uint64, rec Record) []byte {
	payload := make([]byte, seqLen, seqLen+64)
	binary.BigEndian.PutUint64(payload, seq)
	payload = append(payload, EncodeRecord(rec)...)
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// parseFrames walks the raw WAL bytes, returning the valid prefix's
// entries and the byte offset where the prefix ends (the torn tail, if
// any, starts there). It never fails: a torn or corrupt tail just stops
// the walk.
func parseFrames(b []byte) (entries []walEntry, validLen int64) {
	off := 0
	for {
		if len(b)-off < frameHeaderLen {
			return entries, int64(off)
		}
		plen := binary.BigEndian.Uint32(b[off : off+4])
		crc := binary.BigEndian.Uint32(b[off+4 : off+8])
		if plen < seqLen+1 || int64(plen) > maxRecordLen+seqLen {
			return entries, int64(off)
		}
		if len(b)-off-frameHeaderLen < int(plen) {
			return entries, int64(off)
		}
		payload := b[off+frameHeaderLen : off+frameHeaderLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			return entries, int64(off)
		}
		seq := binary.BigEndian.Uint64(payload[:seqLen])
		rec, err := DecodeRecord(payload[seqLen:])
		if err != nil {
			return entries, int64(off)
		}
		entries = append(entries, walEntry{seq: seq, rec: rec})
		off += frameHeaderLen + int(plen)
	}
}

// wal owns the open log file.
type wal struct {
	fs   FS
	path string
	f    File
	size int64
}

// openWAL opens (creating if needed) the log, replays its valid prefix,
// and truncates any torn tail so new appends extend the valid prefix.
// tornBytes reports how much tail was cut.
func openWAL(fs FS, path string) (w *wal, entries []walEntry, tornBytes int64, err error) {
	// O_APPEND keeps every write at the current end of file, so the
	// write position stays right after replay's ReadAll and any
	// Truncate without needing a Seek in the FS seam.
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: open wal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: read wal: %w", err)
	}
	entries, validLen := parseFrames(raw)
	tornBytes = int64(len(raw)) - validLen
	if tornBytes > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("store: sync truncated wal: %w", err)
		}
	}
	return &wal{fs: fs, path: path, f: f, size: validLen}, entries, tornBytes, nil
}

// append writes one framed record and, unless noSync, fsyncs. On a
// write error it tries to cut the file back to the last known-good
// size so the log never grows an unreachable tail; if that repair
// fails too, the returned error wraps both and the caller must stop
// appending.
func (w *wal) append(seq uint64, rec Record, noSync bool) error {
	frame := encodeFrame(seq, rec)
	if _, err := w.f.Write(frame); err != nil {
		if terr := w.truncateBack(); terr != nil {
			return fmt.Errorf("store: wal append: %w (repair failed: %v): %w", err, terr, errUnrepaired)
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	if !noSync {
		if err := w.f.Sync(); err != nil {
			if terr := w.truncateBack(); terr != nil {
				return fmt.Errorf("store: wal sync: %w (repair failed: %v): %w", err, terr, errUnrepaired)
			}
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	w.size += int64(len(frame))
	return nil
}

// truncateBack cuts the file to the last acknowledged size after a
// failed append, discarding any partial frame the failure left behind.
func (w *wal) truncateBack() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	return w.f.Sync()
}

// reset empties the log after a snapshot made its contents redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync reset wal: %w", err)
	}
	w.size = 0
	return nil
}

func (w *wal) close() error { return w.f.Close() }
