package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/limit"
	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Safe is a concurrency-safe wrapper around Server for the live runtime,
// where catalog queries arrive from many peer sessions at once. All
// methods take one mutex; the underlying Server is never exposed.
//
// Methods that return metadata return clones made under the lock:
// Metadata lazily caches its search tokens on first MatchesQuery, so
// handing out the catalog's own records would race once two sessions
// matched the same record concurrently.
type Safe struct {
	mu sync.Mutex
	s  *Server

	// Query admission control (SetQueryLimit): one sliding window per
	// requesting node, guarded separately so shedding never waits on a
	// catalog operation in flight.
	limMu       sync.Mutex
	queryLim    map[trace.NodeID]*limit.Window
	queryRate   int
	querySpan   time.Duration
	queryClock  limit.Clock
	queriesShed atomic.Uint64
}

// NewSafe wraps an empty server; internetNodes as in New.
func NewSafe(internetNodes int) (*Safe, error) {
	s, err := New(internetNodes)
	if err != nil {
		return nil, err
	}
	return &Safe{s: s}, nil
}

// Publish adds metadata to the catalog.
func (c *Safe) Publish(m *metadata.Metadata) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Publish(m)
}

// Len returns the catalog size.
func (c *Safe) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Len()
}

// Lookup returns a clone of the metadata for uri.
func (c *Safe) Lookup(uri metadata.URI) (*metadata.Metadata, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.s.Lookup(uri)
	if err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

// RecordRequest notes a popularity-feeding request.
func (c *Safe) RecordRequest(now simtime.Time, uri metadata.URI, node trace.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.RecordRequest(now, uri, node)
}

// Popularity returns the measured popularity of uri at now.
func (c *Safe) Popularity(now simtime.Time, uri metadata.URI) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Popularity(now, uri)
}

// Expire removes catalog entries whose TTL has passed.
func (c *Safe) Expire(now simtime.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Expire(now)
}

// SetQueryLimit installs per-peer query admission control: each node
// gets at most rate catalog queries per span; excess queries should be
// refused (AllowQuery returns false) and answered with Busy
// backpressure by the host. A nil clock means time.Now; rate <= 0
// removes the limit.
func (c *Safe) SetQueryLimit(rate int, span time.Duration, clock limit.Clock) {
	c.limMu.Lock()
	defer c.limMu.Unlock()
	if rate <= 0 {
		c.queryLim = nil
		c.queryRate = 0
		return
	}
	c.queryRate = rate
	c.querySpan = span
	c.queryClock = clock
	c.queryLim = make(map[trace.NodeID]*limit.Window)
}

// AllowQuery charges one query against node's window. With no limit
// installed every query is admitted. The window map is bounded: a flood
// of fabricated node IDs resets it rather than growing without limit.
func (c *Safe) AllowQuery(node trace.NodeID) bool {
	c.limMu.Lock()
	if c.queryLim == nil {
		c.limMu.Unlock()
		return true
	}
	if len(c.queryLim) > 4096 {
		c.queryLim = make(map[trace.NodeID]*limit.Window)
	}
	w := c.queryLim[node]
	if w == nil {
		w = limit.NewWindow(c.queryRate, c.querySpan, c.queryClock)
		c.queryLim[node] = w
	}
	c.limMu.Unlock()
	if !w.Allow() {
		c.queriesShed.Add(1)
		return false
	}
	return true
}

// QueriesShed reports how many queries admission control has refused.
func (c *Safe) QueriesShed() uint64 { return c.queriesShed.Load() }

// Query returns clones of up to limit best-matched records.
func (c *Safe) Query(now simtime.Time, query string, limit int) []*metadata.Metadata {
	c.mu.Lock()
	defer c.mu.Unlock()
	return clones(c.s.Query(now, query, limit))
}

// Top returns clones of up to limit most popular records.
func (c *Safe) Top(now simtime.Time, limit int) []*metadata.Metadata {
	c.mu.Lock()
	defer c.mu.Unlock()
	return clones(c.s.Top(now, limit))
}

// Records enumerates the unexpired catalog with popularities, cloned.
func (c *Safe) Records(now simtime.Time) []StoredRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := c.s.Records(now)
	for i := range recs {
		recs[i].Meta = recs[i].Meta.Clone()
	}
	return recs
}

// Piece serves piece i of the file at uri.
func (c *Safe) Piece(uri metadata.URI, i int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Piece(uri, i)
}

func clones(in []*metadata.Metadata) []*metadata.Metadata {
	if in == nil {
		return nil
	}
	out := make([]*metadata.Metadata, len(in))
	for i, m := range in {
		out[i] = m.Clone()
	}
	return out
}
