package server

import (
	"errors"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var key = []byte("k")

func makeMeta(id metadata.FileID, name string, created simtime.Time) *metadata.Metadata {
	return metadata.NewSynthetic(id, name, "FOX", "desc for "+name,
		1024, 256, created, simtime.Days(3), key)
}

func newServer(t *testing.T, n int) *Server {
	t.Helper()
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsNonPositive(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) accepted")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) accepted")
	}
}

func TestPublishAndLookup(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "alpha show", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := s.Lookup(m.URI)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "alpha show" {
		t.Fatalf("Lookup = %+v", got)
	}
	if _, err := s.Lookup("dtn://files/404"); !errors.Is(err, ErrUnknownURI) {
		t.Fatalf("Lookup unknown = %v", err)
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "x", 0)
	m.Size = 0
	if err := s.Publish(m); err == nil {
		t.Fatal("invalid metadata published")
	}
}

func TestPublishClonesInput(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "x", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	m.Name = "mutated"
	got, _ := s.Lookup(m.URI)
	if got.Name == "mutated" {
		t.Fatal("server shares caller's metadata")
	}
}

func TestRepublishReplaces(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "first name", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	m2 := makeMeta(1, "second name", 0)
	if err := s.Publish(m2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after republish", s.Len())
	}
	if res := s.Query(0, "first", -1); len(res) != 0 {
		t.Fatalf("stale index entry: %v", res)
	}
	if res := s.Query(0, "second", -1); len(res) != 1 {
		t.Fatalf("replacement not searchable: %v", res)
	}
}

func TestQueryRanking(t *testing.T) {
	s := newServer(t, 10)
	for i, name := range []string{"jazz night live", "jazz records", "rock concert"} {
		if err := s.Publish(makeMeta(metadata.FileID(i), name, 0)); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Query(0, "jazz live", -1)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Name != "jazz night live" {
		t.Fatalf("top result = %q", res[0].Name)
	}
	if got := s.Query(0, "jazz live", 1); len(got) != 1 {
		t.Fatalf("limit ignored: %d results", len(got))
	}
	if got := s.Query(0, "opera", -1); got != nil {
		t.Fatalf("no-match query returned %v", got)
	}
}

func TestQueryExcludesExpired(t *testing.T) {
	s := newServer(t, 10)
	if err := s.Publish(makeMeta(1, "jazz", 0)); err != nil {
		t.Fatal(err)
	}
	after := simtime.Time(simtime.Days(3)) + 1
	if res := s.Query(after, "jazz", -1); len(res) != 0 {
		t.Fatalf("expired metadata returned: %v", res)
	}
}

func TestPopularityWindow(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "x", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordRequest(0, m.URI, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordRequest(0, m.URI, 4); err != nil {
		t.Fatal(err)
	}
	if got := s.Popularity(simtime.Time(simtime.Hour), m.URI); got != 0.2 {
		t.Fatalf("popularity = %v, want 0.2", got)
	}
	// A node requesting twice counts once.
	if err := s.RecordRequest(0, m.URI, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Popularity(simtime.Time(simtime.Hour), m.URI); got != 0.2 {
		t.Fatalf("duplicate requester inflated popularity: %v", got)
	}
	// After the 24h window, requests expire.
	if got := s.Popularity(simtime.Time(25*simtime.Hour), m.URI); got != 0 {
		t.Fatalf("popularity after window = %v, want 0", got)
	}
}

func TestPopularityUnknownURI(t *testing.T) {
	s := newServer(t, 10)
	if got := s.Popularity(0, "dtn://files/404"); got != 0 {
		t.Fatalf("popularity of unknown = %v", got)
	}
	if err := s.RecordRequest(0, "dtn://files/404", 1); !errors.Is(err, ErrUnknownURI) {
		t.Fatalf("RecordRequest unknown = %v", err)
	}
}

func TestPopularitySlidingWindowPartial(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "x", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordRequest(0, m.URI, 1); err != nil {
		t.Fatal(err)
	}
	mid := simtime.Time(12 * simtime.Hour)
	if err := s.RecordRequest(mid, m.URI, 2); err != nil {
		t.Fatal(err)
	}
	// At t=25h, the t=0 request has expired but the t=12h one remains.
	if got := s.Popularity(simtime.Time(25*simtime.Hour), m.URI); got != 0.1 {
		t.Fatalf("popularity = %v, want 0.1", got)
	}
}

func TestExpire(t *testing.T) {
	s := newServer(t, 10)
	if err := s.Publish(makeMeta(1, "old", 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(makeMeta(2, "new", simtime.Time(simtime.Days(2)))); err != nil {
		t.Fatal(err)
	}
	removed := s.Expire(simtime.Time(simtime.Days(4)))
	if removed != 1 || s.Len() != 1 {
		t.Fatalf("Expire removed %d, Len %d", removed, s.Len())
	}
	if _, err := s.Lookup("dtn://files/1"); err == nil {
		t.Fatal("expired entry still present")
	}
}

func TestTopByPopularity(t *testing.T) {
	s := newServer(t, 10)
	a, b := makeMeta(1, "a", 0), makeMeta(2, "b", 0)
	if err := s.Publish(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(b); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		if err := s.RecordRequest(0, b.URI, int2node(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RecordRequest(0, a.URI, 1); err != nil {
		t.Fatal(err)
	}
	top := s.Top(simtime.Time(simtime.Hour), -1)
	if len(top) != 2 || top[0].URI != b.URI {
		t.Fatalf("Top = %v", top)
	}
	if got := s.Top(simtime.Time(simtime.Hour), 1); len(got) != 1 {
		t.Fatalf("Top limit ignored: %d", len(got))
	}
	if got := s.Top(simtime.Time(simtime.Days(10)), -1); got != nil {
		t.Fatalf("Top returned expired entries: %v", got)
	}
}

func TestPieceServing(t *testing.T) {
	s := newServer(t, 10)
	m := makeMeta(1, "x", 0)
	if err := s.Publish(m); err != nil {
		t.Fatal(err)
	}
	data, err := s.Piece(m.URI, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.VerifyPiece(0, data) {
		t.Fatal("served piece fails checksum")
	}
	if _, err := s.Piece(m.URI, 99); !errors.Is(err, ErrBadPiece) {
		t.Fatalf("bad piece index error = %v", err)
	}
	if _, err := s.Piece("dtn://files/404", 0); !errors.Is(err, ErrUnknownURI) {
		t.Fatalf("unknown uri error = %v", err)
	}
}

func int2node(n int) trace.NodeID { return trace.NodeID(n) }
