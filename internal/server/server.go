// Package server implements the central metadata server on the Internet
// side of the hybrid DTN (§III-A, §IV).
//
// The server holds the metadata catalog, answers keyword queries with the
// best-matched metadata, maintains each metadata's popularity — defined by
// the paper as the fraction of Internet-access nodes that requested the
// file during the past 24 hours — and serves file pieces to nodes that are
// connected to the Internet.
package server

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metadata"
	"repro/internal/search"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// PopularityWindow is the sliding window over which request popularity is
// measured: 24 hours, per the paper.
const PopularityWindow = simtime.Day

// Server is the Internet-side catalog and popularity authority. Construct
// with New; not safe for concurrent use (the simulator is
// single-threaded).
type Server struct {
	internetNodes int

	byURI   map[metadata.URI]*entry
	byDocID map[int]*entry
	index   *search.Index
	nextDoc int

	// requests holds (time, uri, node) records inside the window, oldest
	// first.
	requests []request
}

type entry struct {
	meta  *metadata.Metadata
	docID int
	// requesters tracks which Internet-access nodes requested the file
	// within the window (set semantics: a node counts once).
	requesters map[trace.NodeID]int
}

type request struct {
	at   simtime.Time
	uri  metadata.URI
	node trace.NodeID
}

// Errors.
var (
	ErrUnknownURI = errors.New("server: unknown URI")
	ErrBadPiece   = errors.New("server: piece index out of range")
)

// New returns an empty server. internetNodes is the number of
// Internet-access nodes in the population, the popularity denominator; it
// must be positive.
func New(internetNodes int) (*Server, error) {
	if internetNodes <= 0 {
		return nil, fmt.Errorf("server: internetNodes = %d must be positive", internetNodes)
	}
	return &Server{
		internetNodes: internetNodes,
		byURI:         make(map[metadata.URI]*entry),
		byDocID:       make(map[int]*entry),
		index:         search.NewIndex(),
	}, nil
}

// Publish adds metadata to the catalog. Re-publishing a URI replaces the
// record.
func (s *Server) Publish(m *metadata.Metadata) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("publish %q: %w", m.URI, err)
	}
	if old, ok := s.byURI[m.URI]; ok {
		s.index.Remove(old.docID)
		delete(s.byDocID, old.docID)
	}
	e := &entry{
		meta:       m.Clone(),
		docID:      s.nextDoc,
		requesters: make(map[trace.NodeID]int),
	}
	s.nextDoc++
	s.byURI[m.URI] = e
	s.byDocID[e.docID] = e
	s.index.Add(e.docID, m.SearchText())
	return nil
}

// Len returns the catalog size.
func (s *Server) Len() int { return len(s.byURI) }

// Lookup returns the metadata for uri.
func (s *Server) Lookup(uri metadata.URI) (*metadata.Metadata, error) {
	e, ok := s.byURI[uri]
	if !ok {
		return nil, fmt.Errorf("%q: %w", uri, ErrUnknownURI)
	}
	return e.meta, nil
}

// expireRequests drops records older than the window.
func (s *Server) expireRequests(now simtime.Time) {
	cut := 0
	for cut < len(s.requests) && now.Sub(s.requests[cut].at) > PopularityWindow {
		old := s.requests[cut]
		if e, ok := s.byURI[old.uri]; ok {
			if e.requesters[old.node]--; e.requesters[old.node] <= 0 {
				delete(e.requesters, old.node)
			}
		}
		cut++
	}
	s.requests = s.requests[cut:]
}

// RecordRequest notes that an Internet-access node requested the file at
// now, feeding the popularity estimate.
func (s *Server) RecordRequest(now simtime.Time, uri metadata.URI, node trace.NodeID) error {
	e, ok := s.byURI[uri]
	if !ok {
		return fmt.Errorf("%q: %w", uri, ErrUnknownURI)
	}
	s.expireRequests(now)
	s.requests = append(s.requests, request{at: now, uri: uri, node: node})
	e.requesters[node]++
	return nil
}

// Popularity returns the measured popularity of uri at now: the fraction
// of Internet-access nodes that requested it within the past 24 hours.
// Unknown URIs have zero popularity.
func (s *Server) Popularity(now simtime.Time, uri metadata.URI) float64 {
	s.expireRequests(now)
	e, ok := s.byURI[uri]
	if !ok {
		return 0
	}
	return float64(len(e.requesters)) / float64(s.internetNodes)
}

// Expire removes catalog entries whose TTL has passed.
func (s *Server) Expire(now simtime.Time) int {
	removed := 0
	for uri, e := range s.byURI {
		if e.meta.Expired(now) {
			s.index.Remove(e.docID)
			delete(s.byDocID, e.docID)
			delete(s.byURI, uri)
			removed++
		}
	}
	return removed
}

// Query returns up to limit best-matched, unexpired metadata for the
// keyword query, best first (most matched tokens, then measured
// popularity, then URI for determinism).
func (s *Server) Query(now simtime.Time, query string, limit int) []*metadata.Metadata {
	hits := s.index.Search(query, -1)
	type scored struct {
		e     *entry
		score float64
		pop   float64
	}
	var out []scored
	for _, h := range hits {
		e := s.byDocID[h.DocID]
		if e == nil || e.meta.Expired(now) {
			continue
		}
		out = append(out, scored{e: e, score: h.Score, pop: s.Popularity(now, e.meta.URI)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		if out[i].pop != out[j].pop {
			return out[i].pop > out[j].pop
		}
		return out[i].e.meta.URI < out[j].e.meta.URI
	})
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	result := make([]*metadata.Metadata, 0, len(out))
	for _, sc := range out {
		result = append(result, sc.e.meta)
	}
	if len(result) == 0 {
		return nil
	}
	return result
}

// Top returns up to limit unexpired metadata in decreasing measured
// popularity (ties by URI) — the server-side source for popularity-pushed
// metadata.
func (s *Server) Top(now simtime.Time, limit int) []*metadata.Metadata {
	type scored struct {
		m   *metadata.Metadata
		pop float64
	}
	var out []scored
	for uri, e := range s.byURI {
		if e.meta.Expired(now) {
			continue
		}
		out = append(out, scored{m: e.meta, pop: s.Popularity(now, uri)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pop != out[j].pop {
			return out[i].pop > out[j].pop
		}
		return out[i].m.URI < out[j].m.URI
	})
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	result := make([]*metadata.Metadata, 0, len(out))
	for _, sc := range out {
		result = append(result, sc.m)
	}
	if len(result) == 0 {
		return nil
	}
	return result
}

// StoredRecord pairs one catalog record with its measured popularity at
// the time of enumeration.
type StoredRecord struct {
	Meta       *metadata.Metadata
	Popularity float64
}

// Records enumerates the unexpired catalog with popularities, sorted by
// URI — the walk an Internet node's DHT publish loop takes when it
// pushes the whole catalog into the decentralized index.
func (s *Server) Records(now simtime.Time) []StoredRecord {
	out := make([]StoredRecord, 0, len(s.byURI))
	for uri, e := range s.byURI {
		if e.meta.Expired(now) {
			continue
		}
		out = append(out, StoredRecord{Meta: e.meta, Popularity: s.Popularity(now, uri)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.URI < out[j].Meta.URI })
	return out
}

// Piece serves piece i of the file at uri (synthetic content whose hash
// matches the published metadata).
func (s *Server) Piece(uri metadata.URI, i int) ([]byte, error) {
	e, ok := s.byURI[uri]
	if !ok {
		return nil, fmt.Errorf("%q: %w", uri, ErrUnknownURI)
	}
	if i < 0 || i >= e.meta.NumPieces() {
		return nil, fmt.Errorf("%q piece %d: %w", uri, i, ErrBadPiece)
	}
	return metadata.SyntheticPiece(uri, i, e.meta.PieceLen(i)), nil
}
