package server

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TestSafeConcurrentUse hammers one Safe catalog from many goroutines:
// publishers, queriers, piece readers, and popularity recorders all at
// once. Run under -race this is the wrapper's correctness test.
func TestSafeConcurrentUse(t *testing.T) {
	c, err := NewSafe(10)
	if err != nil {
		t.Fatal(err)
	}
	now := simtime.At(0, simtime.FileGenerationOffset)
	seed := publishFiles(t, c, 0, 4, now)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch w % 4 {
				case 0: // publisher
					publishFiles(t, c, 100+w*1000+i, 1, now)
				case 1: // querier + matcher
					for _, m := range c.Query(now, "file story", 5) {
						m.MatchesQuery("file")
					}
					c.Top(now, 3)
				case 2: // piece reader
					m, err := c.Lookup(seed[0].URI)
					if err != nil {
						t.Error(err)
						return
					}
					data, err := c.Piece(m.URI, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if !m.VerifyPiece(0, data) {
						t.Error("piece failed verification")
						return
					}
				case 3: // popularity recorder
					if err := c.RecordRequest(now, seed[0].URI, trace.NodeID(w)); err != nil {
						t.Error(err)
						return
					}
					c.Popularity(now, seed[0].URI)
					c.Expire(now)
					c.Len()
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Len(); got < 4 {
		t.Fatalf("catalog lost records: %d", got)
	}
	if pop := c.Popularity(now, seed[0].URI); pop <= 0 {
		t.Fatalf("popularity = %v, want > 0", pop)
	}
}

func publishFiles(t *testing.T, c *Safe, firstID, n int, now simtime.Time) []*metadata.Metadata {
	t.Helper()
	out := make([]*metadata.Metadata, 0, n)
	for i := 0; i < n; i++ {
		m := metadata.NewSynthetic(metadata.FileID(firstID+i),
			"file story", "pub", "a story file", 300*1024,
			metadata.DefaultPieceSize, now, simtime.Days(3), []byte("k"))
		if err := c.Publish(m); err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// TestSafeCloneIsolation locks in the clone-under-lock contract: every
// record Safe hands out is a private copy, so callers may mutate it and
// lazily token-cache it (MatchesQuery) while other goroutines look up,
// match, and re-query the same URI. Run under -race, a single shared
// (non-cloned) record would trip both the race detector and the
// pristine-catalog assertions below.
func TestSafeCloneIsolation(t *testing.T) {
	c, err := NewSafe(10)
	if err != nil {
		t.Fatal(err)
	}
	now := simtime.At(0, simtime.FileGenerationOffset)
	seed := publishFiles(t, c, 0, 2, now)
	uri := seed[0].URI

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch w % 3 {
				case 0: // vandal: mutates its clone in place
					m, err := c.Lookup(uri)
					if err != nil {
						t.Error(err)
						return
					}
					m.Name = "defaced"
					m.Description = "defaced"
					m.MatchesQuery("defaced")
				case 1: // matcher: token-caches query results concurrently
					for _, m := range c.Query(now, "file story", 5) {
						m.MatchesQuery("story")
						m.MatchesQuery("file")
					}
				case 2: // reader: the catalog's copy must stay pristine
					m, err := c.Lookup(uri)
					if err != nil {
						t.Error(err)
						return
					}
					if m.Name != "file story" {
						t.Errorf("catalog record mutated through a clone: %q", m.Name)
						return
					}
					for _, m := range c.Top(now, 3) {
						m.MatchesQuery("story")
					}
				}
			}
		}()
	}
	wg.Wait()

	m, err := c.Lookup(uri)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "file story" || m.Description != "a story file" {
		t.Fatalf("catalog record was mutated through a handed-out clone: %+v", m)
	}
}

// TestSafeQueryLimit exercises per-peer query admission: node A burning
// its window must not shed node B, and the window slides open again.
func TestSafeQueryLimit(t *testing.T) {
	c, err := NewSafe(10)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(5000, 0)
	c.SetQueryLimit(3, time.Second, func() time.Time { return clock })
	for i := 0; i < 3; i++ {
		if !c.AllowQuery(1) {
			t.Fatalf("query %d from node 1 denied under limit", i)
		}
	}
	if c.AllowQuery(1) {
		t.Fatal("node 1 allowed past its window")
	}
	if !c.AllowQuery(2) {
		t.Fatal("node 2 shed by node 1's flood")
	}
	if got := c.QueriesShed(); got != 1 {
		t.Fatalf("QueriesShed = %d, want 1", got)
	}
	clock = clock.Add(time.Second + time.Millisecond)
	if !c.AllowQuery(1) {
		t.Fatal("node 1 still shed after its window slid")
	}
	// Dropping the limit admits everyone again.
	c.SetQueryLimit(0, 0, nil)
	for i := 0; i < 100; i++ {
		if !c.AllowQuery(1) {
			t.Fatal("unlimited catalog shed a query")
		}
	}
}
