// Fountain-coded data plane: when every confirmed member advertises
// FEC support, the round's granted sender streams rateless coded
// symbols (internal/fec) over the lossy datagram lane instead of
// shipping one PieceBcast frame, receivers rebuild the piece from any
// spanning subset, relay a bounded budget of first-sight symbols to
// the group (coopcast-style cooperation), and report completion with
// one aggregate SymbolAck — eliminating the per-piece NACK round-trips
// of the grant/resend plane in exactly the lossy cliques where
// grouping is supposed to win. If any member does not advertise FEC,
// the engine silently stays on the piece plane; nothing about group
// formation or scheduling changes.
package bcast

import (
	"context"
	"hash/fnv"
	"time"

	"repro/internal/fec"
	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// DefaultSymbolSize is the coded-symbol payload size: 256 bytes turns
// the protocol's smallest test pieces (4 KB) into K=16 source symbols
// — enough equations that the decode-overhead tail stays thin — while
// a 256 KB production piece becomes K=1024, still cheap to eliminate.
const DefaultSymbolSize = 256

// DefaultRelayBudget bounds per-Tick symbol relays. Each member
// relays a given symbol index at most once (only first-sight symbols
// are relayed), so the budget shapes how much cooperative redundancy
// a clique adds per beat, not whether relays terminate.
const DefaultRelayBudget = 8

// fecRegrantAfter is the symbol plane's regrant window, in rounds. It
// is wider than the piece plane's regrantAfter because a burst's
// "receipt" is a decode plus an aggregate ack, not a single frame
// landing — top-ups granted before that round-trip completes are pure
// overshoot.
const fecRegrantAfter = 4

// maxFECBlocks bounds both stream and decoder maps. The schedule
// moves one piece at a time, so live state is tiny; the cap is a
// backstop against hostile symbol spray filling memory. Evicting a
// stream merely restarts its index sequence (duplicate symbols are
// decoder no-ops); evicting a decoder costs re-collection.
const maxFECBlocks = 64

// fecStream is the sender side of one piece's symbol stream: the
// encoder plus the next fresh index, so every retransmission round
// emits coded symbols the group has not seen before instead of
// repeating the ones already lost.
type fecStream struct {
	enc  *fec.Encoder
	next uint32
}

// fecBlock is the receiver side of one piece's collection.
type fecBlock struct {
	dec   *fec.Decoder
	total int // the file's piece count, from the symbols
	at    time.Time
}

// blockSeed names (uri, piece)'s symbol stream. It is derived, not
// negotiated: every node computes the same seed, so a receiver can
// start collecting from a relay's symbols before ever hearing the
// original sender, and a sender restarting after a crash re-enters
// the same stream.
func blockSeed(uri metadata.URI, piece int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(uri))
	return h.Sum64() ^ (uint64(piece)+1)*0x9E3779B97F4A7C15
}

// fecActiveLocked reports whether piece data should ride the symbol
// plane: this node has a lane, and every confirmed member advertised
// FEC in its last GroupHello. One legacy member pins the whole group
// to the piece plane — mixing planes would strand that member without
// data.
func (e *Engine) fecActiveLocked() bool {
	if e.symbols == nil || !e.confirmed || e.group == nil {
		return false
	}
	for _, m := range e.group {
		v := e.views[m]
		if v == nil || !v.fec {
			return false
		}
	}
	return true
}

// burstLocked sizes one transmission round's symbol count for a
// K-symbol block. The opening burst assumes moderate loss (K plus
// half again); top-up rounds ship half a block of fresh symbols. Any
// shortfall is repaired by the next grant of the same piece — the
// schedule is the retry loop, with no per-symbol bookkeeping.
func burstLocked(k int, opening bool) int {
	if opening {
		return k + k/2 + 2
	}
	return k/2 + 2
}

// transmitSymbolsLocked streams one granted piece as coded symbols.
func (e *Engine) transmitSymbolsLocked(ctx context.Context, round uint64, uri metadata.URI, piece int, total int, data []byte) {
	key := pieceKey{uri, piece}
	st := e.fecSend[key]
	if st == nil {
		enc, err := fec.NewEncoder(data, e.cfg.SymbolSize, blockSeed(uri, piece))
		if err != nil {
			e.logf("bcast %d: fec encode %s#%d: %v", e.cfg.Self, uri, piece, err)
			return
		}
		if len(e.fecSend) >= maxFECBlocks {
			e.fecSend = make(map[pieceKey]*fecStream)
		}
		st = &fecStream{enc: enc}
		e.fecSend[key] = st
	}
	n := burstLocked(st.enc.K(), st.next == 0)
	for i := 0; i < n; i++ {
		s := &wire.Symbol{
			From:    e.cfg.Self,
			Round:   round,
			URI:     uri,
			Piece:   piece,
			Total:   total,
			Seed:    st.enc.Params().Seed,
			DataLen: st.enc.Params().DataLen,
			Index:   st.next,
			Payload: st.enc.Symbol(st.next),
		}
		s.Seal()
		st.next++
		e.symbols.BroadcastSymbol(ctx, s)
		e.counters.SymbolsSent++
	}
	e.lastGrant[key] = round
	// No optimistic markHave here: on the lossy plane "transmitted" is
	// not "received". The piece leaves the candidate list only when
	// acks (or GroupHellos) flip the members' bits.
}

// selfHasLocked consults this node's own announced want state for a
// piece — the cheap "do I already hold this" check on the symbol path.
func (e *Engine) selfHasLocked(uri metadata.URI, piece int) bool {
	v := e.views[e.cfg.Self]
	if v == nil {
		return false
	}
	for i := range v.wants {
		if v.wants[i].URI == uri {
			return v.wants[i].HaveBit(piece)
		}
	}
	return false
}

// handleSymbolLocked absorbs one received coded symbol: integrity
// check, budget-limited first-sight relay, decode, and on a completed
// block the shared verify-and-store path plus the aggregate ack.
func (e *Engine) handleSymbolLocked(ctx context.Context, s *wire.Symbol) {
	e.counters.SymbolsRecv++
	if !s.CheckOK() {
		e.counters.SymbolsBadCheck++
		return // integrity first: a corrupt Round must not move the clock
	}
	if s.Round > e.round {
		e.round = s.Round
	}
	if len(s.Payload) == 0 || s.From == e.cfg.Self {
		return
	}
	if e.selfHasLocked(s.URI, s.Piece) {
		return // already held: neither decode nor relay is useful
	}
	key := pieceKey{s.URI, s.Piece}
	p := fec.Params{DataLen: s.DataLen, SymbolSize: len(s.Payload), Seed: s.Seed}
	blk := e.fecRecv[key]
	if blk != nil && blk.dec.Params() != p {
		// Same piece, different stream identity: one of them is wrong
		// (or corrupted in a way the check missed). First stream wins;
		// conflicting symbols are dropped as noise.
		return
	}
	if blk == nil {
		dec, err := fec.NewDecoder(p)
		if err != nil {
			return // hostile or mangled parameters
		}
		if len(e.fecRecv) >= maxFECBlocks {
			e.fecRecv = make(map[pieceKey]*fecBlock)
		}
		blk = &fecBlock{dec: dec, total: s.Total}
		e.fecRecv[key] = blk
	}
	blk.at = time.Now()
	before := blk.dec.Received()
	done, err := blk.dec.Add(s.Index, s.Payload)
	if err != nil {
		return
	}
	if blk.dec.Received() > before && e.relayQuota > 0 && e.confirmed && e.symbols != nil {
		// Coopcast cooperation: echo a first-sight symbol so members
		// shadowed from the sender still fill their blocks. First-sight
		// -only relaying means a symbol index crosses each member once,
		// so relays cannot echo forever.
		e.relayQuota--
		e.counters.SymbolsRelayed++
		e.symbols.BroadcastSymbol(ctx, s)
	}
	if !done {
		return
	}
	data, _ := blk.dec.Data()
	pb := &wire.PieceBcast{
		From: s.From, Round: s.Round, URI: s.URI, Index: s.Piece, Total: s.Total, Data: data,
	}
	if !e.cfg.Store.DeliverPiece(s.From, pb) {
		// The decoded bytes failed verification: some accepted symbol
		// was poisoned (a corruption that survived both checks). Start
		// the collection over rather than trusting any of it.
		e.counters.FECVerifyFails++
		blk.dec.Reset()
		return
	}
	e.counters.FECDecodes++
	delete(e.fecRecv, key)
	e.markHaveLocked(s.URI, s.Piece)
	e.ackLocked(ctx, s.URI, s.Total)
}

// ackLocked broadcasts this node's aggregate decode state for a file
// on the reliable control plane — one ack supersedes any number of
// per-piece NACKs, and the next GroupHello carries the same bits as a
// backstop if the ack frame is lost.
func (e *Engine) ackLocked(ctx context.Context, uri metadata.URI, total int) {
	ack := &wire.SymbolAck{
		From: e.cfg.Self, Round: e.round, URI: uri, Total: total,
		Have: make([]byte, (total+7)/8),
	}
	if v := e.views[e.cfg.Self]; v != nil {
		for i := range v.wants {
			if v.wants[i].URI == uri {
				copy(ack.Have, v.wants[i].Have)
			}
		}
	}
	e.sendLocked(ctx, ack)
	e.counters.SymbolAcksSent++
}

// handleSymbolAckLocked folds a member's aggregate decode report into
// its view, releasing acked pieces from the sender's candidate list.
func (e *Engine) handleSymbolAckLocked(from trace.NodeID, a *wire.SymbolAck) {
	e.counters.SymbolAcksRecv++
	if a.Round > e.round {
		e.round = a.Round
	}
	v := e.views[from]
	if v == nil {
		return
	}
	for i := range v.wants {
		if v.wants[i].URI != a.URI || v.wants[i].Total != a.Total {
			continue
		}
		for p := 0; p < a.Total; p++ {
			if a.HaveBit(p) {
				v.wants[i].SetHave(p)
			}
		}
	}
}

// pruneFECLocked drops collections that stopped making progress (the
// group moved on, or the stream's sender vanished) and sender streams
// for pieces no longer scheduled. Called from Tick under e.mu.
func (e *Engine) pruneFECLocked() {
	cutoff := 4 * e.cfg.Window
	now := time.Now()
	for k, blk := range e.fecRecv {
		if now.Sub(blk.at) > cutoff {
			delete(e.fecRecv, k)
		}
	}
	for k := range e.fecSend {
		if e.selfHasLocked(k.uri, k.piece) {
			continue // cheap to keep; the encoder backs possible top-ups
		}
		delete(e.fecSend, k)
	}
}
