package bcast

import (
	"context"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The FEC tests reuse the queued-medium harness: symbol broadcasts are
// deliveries addressed to every engine (the lane is a shared domain),
// and an optional per-member drop hook plays the part of the lossy
// datagram medium — deterministically, because the hook sees delivery
// order the test controls.

// fakeFECSender is a fakeSender with the lossy lane: BroadcastSymbol
// enqueues to every engine in the harness, marked so the drop hook can
// discriminate lane traffic from control frames.
type fakeFECSender struct {
	fakeSender
}

func (s *fakeFECSender) BroadcastSymbol(_ context.Context, m wire.Msg) {
	frame := wire.Encode(m)
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	var members []trace.NodeID
	for id := range s.h.engines {
		members = append(members, id)
	}
	s.h.queue = append(s.h.queue, delivery{
		from:    s.self,
		members: members,
		frame:   frame,
		symbol:  true,
	})
}

// addFEC builds an engine whose sender carries the symbol lane. Tiny
// symbols (4 bytes) turn the harness's short test pieces into several
// source symbols, so the decoder actually has equations to solve.
func (h *harness) addFEC(t *testing.T, id trace.NodeID, relayBudget int) {
	t.Helper()
	st := &fakeStore{self: id, files: make(map[metadata.URI]*fakeFile)}
	s := &fakeFECSender{fakeSender{h: h, self: id}}
	e := New(Config{
		Self:        id,
		Window:      time.Minute, // ticks are manual; nothing expires mid-test
		Store:       st,
		Send:        s,
		FEC:         true,
		SymbolSize:  4,
		RelayBudget: relayBudget,
		Logf:        t.Logf,
	})
	h.engines[id] = e
	h.stores[id] = st
}

// TestFECNegotiationMixedGroup: one legacy member pins the whole group
// to the reliable piece plane — data still flows, but as PieceBcast
// frames, and no symbol ever leaves a sender.
func TestFECNegotiationMixedGroup(t *testing.T) {
	h := newHarness()
	h.addFEC(t, 1, 0)
	h.addFEC(t, 2, 0)
	h.add(t, 3, false) // no lane, never advertises FEC
	uri := metadata.URIFor(7)
	const total = 2
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1)
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()

	for i := 0; i < 20; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) || !h.stores[3].complete(uri) {
		t.Fatal("mixed group never completed on the piece plane")
	}
	st := h.engines[1].Stats()
	if st.FECActive {
		t.Fatal("FEC reported active with a legacy member in the group")
	}
	if st.SymbolsSent != 0 || st.PieceBcastsSent == 0 {
		t.Fatalf("want pure piece plane, got symbols=%d pieces=%d",
			st.SymbolsSent, st.PieceBcastsSent)
	}
}

// TestFECOneSenderServesAll: with a unanimous-FEC group the granted
// seeder streams symbols, both receivers decode every piece, ack on
// the control plane, and not one PieceBcast is spent.
func TestFECOneSenderServesAll(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.addFEC(t, id, 2)
	}
	uri := metadata.URIFor(7)
	const total = 4
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1, 2, 3)
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()

	for i := 0; i < 30; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) || !h.stores[3].complete(uri) {
		t.Fatalf("fountain download incomplete: node2 %d/%d, node3 %d/%d",
			len(h.stores[2].files[uri].have), total, len(h.stores[3].files[uri].have), total)
	}
	st1 := h.engines[1].Stats()
	if !st1.FECActive {
		t.Fatal("unanimous-FEC group did not activate the symbol plane")
	}
	if st1.SymbolsSent == 0 || st1.PieceBcastsSent != 0 {
		t.Fatalf("want pure symbol plane, got symbols=%d pieces=%d",
			st1.SymbolsSent, st1.PieceBcastsSent)
	}
	for _, id := range []trace.NodeID{2, 3} {
		st := h.engines[id].Stats()
		if st.FECDecodes != total {
			t.Fatalf("node %d decoded %d pieces, want %d", id, st.FECDecodes, total)
		}
		if st.SymbolAcksSent == 0 {
			t.Fatalf("node %d never acked", id)
		}
		if h.stores[id].dups != 0 {
			t.Fatalf("node %d re-delivered %d already-held pieces", id, h.stores[id].dups)
		}
	}
	if st1.SymbolAcksRecv == 0 {
		t.Fatal("seeder never heard an ack")
	}
}

// TestFECLossRepairedByTopUps: a member that loses half its datagrams
// still completes — fresh coded symbols from re-grant top-ups (plus
// neighbours' relays) span the gap without any per-symbol NACK.
func TestFECLossRepairedByTopUps(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.addFEC(t, id, 2)
	}
	uri := metadata.URIFor(7)
	const total = 4
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1, 2, 3)
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()

	n := 0
	h.dropSymbol = func(to trace.NodeID) bool {
		if to != 2 {
			return false
		}
		n++
		return n%2 == 0 // every second datagram to node 2 vanishes
	}

	for i := 0; i < 60; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) {
		t.Fatalf("lossy member stuck at %d/%d pieces",
			len(h.stores[2].files[uri].have), total)
	}
	if !h.stores[3].complete(uri) {
		t.Fatal("lossless member incomplete")
	}
	if st := h.engines[2].Stats(); st.FECDecodes != total {
		t.Fatalf("node 2 decoded %d, want %d", st.FECDecodes, total)
	}
}

// TestFECPoisonedDecodeRestarts: when decoded bytes fail verification
// the engine must not ack them — it resets the collection and rebuilds
// the piece from fresh symbols.
func TestFECPoisonedDecodeRestarts(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.addFEC(t, id, 2)
	}
	uri := metadata.URIFor(7)
	const total = 2
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1)
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.stores[2].rejectDeliveries = 1 // first decode "fails verification"
	h.fullMesh()

	for i := 0; i < 60; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) {
		t.Fatalf("poisoned member never recovered: %d/%d pieces",
			len(h.stores[2].files[uri].have), total)
	}
	st := h.engines[2].Stats()
	if st.FECVerifyFails == 0 {
		t.Fatal("verify failure never surfaced")
	}
	if st.FECDecodes != total {
		t.Fatalf("node 2 decoded %d, want %d", st.FECDecodes, total)
	}
}

// TestFECRelayBudgetBounds: receivers do relay (cooperation is real)
// but never more than RelayBudget first-sight symbols per Tick.
func TestFECRelayBudgetBounds(t *testing.T) {
	const budget = 2
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.addFEC(t, id, budget)
	}
	uri := metadata.URIFor(7)
	const total = 4
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1, 2, 3)
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()

	ticks := 0
	for i := 0; i < 30; i++ {
		h.step(t, 1, 2, 3)
		ticks++
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) || !h.stores[3].complete(uri) {
		t.Fatal("download incomplete")
	}
	var relayed uint64
	for _, id := range []trace.NodeID{1, 2, 3} {
		st := h.engines[id].Stats()
		if st.SymbolsRelayed > uint64(ticks*budget) {
			t.Fatalf("node %d relayed %d symbols in %d ticks, budget %d/tick",
				id, st.SymbolsRelayed, ticks, budget)
		}
		relayed += st.SymbolsRelayed
	}
	if relayed == 0 {
		t.Fatal("no symbol was ever relayed — cooperation is dead")
	}
}

// TestFECBadCheckDropped: a symbol whose payload was flipped in flight
// fails its integrity check at the engine and never reaches a decoder.
func TestFECBadCheckDropped(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2} {
		h.addFEC(t, id, 2)
	}
	h.fullMesh()
	h.step(t, 1, 2)

	s := &wire.Symbol{
		From: 1, Round: 1, URI: metadata.URIFor(7), Piece: 0, Total: 1,
		Seed: 42, DataLen: 16, Index: 0, Payload: []byte{1, 2, 3, 4},
	}
	s.Seal()
	s.Payload[0] ^= 0xFF
	h.engines[2].HandleGroup(context.Background(), 1, s)

	st := h.engines[2].Stats()
	if st.SymbolsBadCheck != 1 {
		t.Fatalf("bad-check count = %d, want 1", st.SymbolsBadCheck)
	}
	if st.FECDecodes != 0 {
		t.Fatal("corrupt symbol reached a decoder")
	}
}
