package bcast

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The harness wires engines together through a queued fake medium: a
// Broadcast appends deliveries, and the test pumps them explicitly, so
// every interleaving is chosen by the test, not the scheduler. Frames
// round-trip through the wire codec so no engine ever shares mutable
// state (Have bitsets!) with another.

type harness struct {
	mu      sync.Mutex
	engines map[trace.NodeID]*Engine
	stores  map[trace.NodeID]*fakeStore
	queue   []delivery

	// dropSymbol, when set, is the lossy datagram medium: it is asked
	// once per (symbol delivery, receiver) and true means that receiver
	// never hears the datagram. Control-plane frames are never dropped.
	dropSymbol func(to trace.NodeID) bool
}

type delivery struct {
	from    trace.NodeID
	members []trace.NodeID
	frame   []byte
	symbol  bool // rode the lossy lane, subject to dropSymbol
}

func newHarness() *harness {
	return &harness{
		engines: make(map[trace.NodeID]*Engine),
		stores:  make(map[trace.NodeID]*fakeStore),
	}
}

// add builds one engine plus its fake store, joined to the harness.
func (h *harness) add(t *testing.T, id trace.NodeID, tft bool) {
	t.Helper()
	st := &fakeStore{self: id, files: make(map[metadata.URI]*fakeFile)}
	e := New(Config{
		Self:      id,
		TitForTat: tft,
		Window:    time.Minute, // ticks are manual; nothing expires mid-test
		Store:     st,
		Send:      &fakeSender{h: h, self: id},
		Logf:      t.Logf,
	})
	h.engines[id] = e
	h.stores[id] = st
}

// fullMesh makes every node a live peer of every other and feeds the
// matching overheard hellos, so the whole set is one clique.
func (h *harness) fullMesh() {
	var ids []trace.NodeID
	for id := range h.engines {
		ids = append(ids, id)
	}
	for _, id := range ids {
		var others []trace.NodeID
		for _, o := range ids {
			if o != id {
				others = append(others, o)
			}
		}
		h.stores[id].setLive(others)
		for _, o := range ids {
			h.engines[o].Observe(id, others)
		}
	}
}

// pump delivers every queued frame, including frames those deliveries
// enqueue, until the medium is silent.
func (h *harness) pump(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("pump did not quiesce: broadcast storm")
		}
		h.mu.Lock()
		if len(h.queue) == 0 {
			h.mu.Unlock()
			return
		}
		d := h.queue[0]
		h.queue = h.queue[1:]
		h.mu.Unlock()
		for _, m := range d.members {
			if m == d.from {
				continue // a radio never hears itself
			}
			e := h.engines[m]
			if e == nil {
				continue
			}
			if d.symbol && h.dropSymbol != nil && h.dropSymbol(m) {
				continue
			}
			msg, err := wire.Decode(d.frame)
			if err != nil {
				t.Fatalf("fake medium decode: %v", err)
			}
			e.HandleGroup(ctx, d.from, msg)
		}
	}
}

// step ticks every engine in ID order and pumps after each, one
// deterministic protocol beat.
func (h *harness) step(t *testing.T, order ...trace.NodeID) {
	t.Helper()
	ctx := context.Background()
	for _, id := range order {
		h.engines[id].Tick(ctx)
		h.pump(t)
	}
}

type fakeSender struct {
	h    *harness
	self trace.NodeID
}

func (s *fakeSender) Broadcast(_ context.Context, members []trace.NodeID, m wire.Msg) {
	frame := wire.Encode(m)
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	s.h.queue = append(s.h.queue, delivery{
		from:    s.self,
		members: append([]trace.NodeID(nil), members...),
		frame:   frame,
	})
}

type fakeFile struct {
	total       int
	downloading bool
	have        map[int][]byte
	popularity  float64
}

type fakeStore struct {
	mu        sync.Mutex
	self      trace.NodeID
	live      []trace.NodeID
	files     map[metadata.URI]*fakeFile
	delivered int // DeliverPiece calls, duplicates included
	dups      int

	// rejectDeliveries fails the next N deliveries (verify-reject
	// simulation for the fountain plane's poisoned-decode path).
	rejectDeliveries int
}

func (s *fakeStore) setLive(ids []trace.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live = append([]trace.NodeID(nil), ids...)
}

// addFile registers a file; pieces lists the indices already held.
func (s *fakeStore) addFile(uri metadata.URI, total int, downloading bool, pop float64, pieces ...int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &fakeFile{total: total, downloading: downloading, have: make(map[int][]byte), popularity: pop}
	for _, p := range pieces {
		f.have[p] = pieceBytes(uri, p)
	}
	s.files[uri] = f
}

func pieceBytes(uri metadata.URI, i int) []byte {
	return []byte(fmt.Sprintf("%s#%d", uri, i))
}

func (s *fakeStore) complete(uri metadata.URI) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[uri]
	return f != nil && len(f.have) == f.total
}

func (s *fakeStore) LivePeers() []trace.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]trace.NodeID(nil), s.live...)
}

func (s *fakeStore) Wants() []wire.GroupWant {
	s.mu.Lock()
	defer s.mu.Unlock()
	var uris []metadata.URI
	for uri := range s.files {
		uris = append(uris, uri)
	}
	// Deterministic order keeps codec round-trips comparable.
	for i := 0; i < len(uris); i++ {
		for j := i + 1; j < len(uris); j++ {
			if uris[j] < uris[i] {
				uris[i], uris[j] = uris[j], uris[i]
			}
		}
	}
	var out []wire.GroupWant
	for _, uri := range uris {
		f := s.files[uri]
		w := wire.NewGroupWant(uri, f.total, f.downloading)
		for p := range f.have {
			w.SetHave(p)
		}
		out = append(out, *w)
	}
	return out
}

func (s *fakeStore) PieceData(uri metadata.URI, i int) ([]byte, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[uri]
	if f == nil {
		return nil, 0, false
	}
	data, ok := f.have[i]
	return data, f.total, ok
}

func (s *fakeStore) Popularity(uri metadata.URI) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.files[uri]; f != nil {
		return f.popularity
	}
	return 0
}

func (s *fakeStore) DeliverPiece(_ trace.NodeID, p *wire.PieceBcast) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delivered++
	if s.rejectDeliveries > 0 {
		s.rejectDeliveries--
		return false
	}
	f := s.files[p.URI]
	if f == nil {
		return false // not tracking this file
	}
	if _, ok := f.have[p.Index]; ok {
		s.dups++
		return true
	}
	f.have[p.Index] = append([]byte(nil), p.Data...)
	return true
}

// TestGroupFormsAndConfirms: a full mesh of three engines converges to
// one confirmed group with the lowest ID as sequencer.
func TestGroupFormsAndConfirms(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, false)
	}
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3) // second beat: everyone has heard everyone's view

	for _, id := range []trace.NodeID{1, 2, 3} {
		g, ok := h.engines[id].Group()
		if !ok || !equalIDs(g, []trace.NodeID{1, 2, 3}) {
			t.Fatalf("node %d: group=%v confirmed=%v, want [1 2 3] true", id, g, ok)
		}
		st := h.engines[id].Stats()
		if st.Sequencer != 1 {
			t.Fatalf("node %d: sequencer %d, want 1", id, st.Sequencer)
		}
		if st.Formations != 1 {
			t.Fatalf("node %d: formations %d, want 1", id, st.Formations)
		}
		if !h.engines[id].InGroup(1) && id != 1 {
			t.Fatalf("node %d: InGroup(1) false after confirmation", id)
		}
	}
}

// TestTooSmallForGroup: two nodes are below MinGroupSize and stay on
// the pairwise path.
func TestTooSmallForGroup(t *testing.T) {
	h := newHarness()
	h.add(t, 1, false)
	h.add(t, 2, false)
	h.fullMesh()
	h.step(t, 1, 2)
	h.step(t, 1, 2)
	if g, ok := h.engines[1].Group(); g != nil || ok {
		t.Fatalf("pair formed group %v (confirmed=%v)", g, ok)
	}
	if h.engines[1].InGroup(2) {
		t.Fatal("InGroup true without a group")
	}
}

// TestCooperativeOneSenderServesAll is the §V-A payoff: one seeder,
// two downloaders, and each piece crosses the medium exactly once —
// pairwise serving would have cost one transmission per downloader.
func TestCooperativeOneSenderServesAll(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, false)
	}
	uri := metadata.URIFor(7)
	const total = 4
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1, 2, 3) // seeder
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()

	for i := 0; i < 20; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) || !h.stores[3].complete(uri) {
		t.Fatalf("download incomplete: node2 %d/%d, node3 %d/%d",
			len(h.stores[2].files[uri].have), total, len(h.stores[3].files[uri].have), total)
	}

	var sent uint64
	for _, id := range []trace.NodeID{1, 2, 3} {
		sent += h.engines[id].Stats().PieceBcastsSent
	}
	if sent != total {
		t.Fatalf("piece broadcasts = %d, want exactly %d (one per piece)", sent, total)
	}
	if h.stores[2].dups != 0 || h.stores[3].dups != 0 {
		t.Fatalf("duplicate deliveries: node2 %d, node3 %d", h.stores[2].dups, h.stores[3].dups)
	}
	if h.engines[1].Stats().PieceBcastsSent != total {
		t.Fatalf("seeder sent %d, want %d", h.engines[1].Stats().PieceBcastsSent, total)
	}
}

// TestCooperativeRequestedBeforeUnrequested: pieces wanted by active
// downloaders are scheduled before pieces that only fill out an idle
// holder, and popularity breaks the tie among unrequested files.
func TestCooperativeRequestedBeforeUnrequested(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, false)
	}
	hot := metadata.URIFor(1)  // requested by node 3
	cold := metadata.URIFor(2) // node 2 is an incomplete holder, nobody downloads
	h.stores[1].addFile(hot, 1, false, 0.1, 0)
	h.stores[1].addFile(cold, 1, false, 0.9, 0)
	h.stores[2].addFile(cold, 1, false, 0.9)
	h.stores[3].addFile(hot, 1, true, 0.1)
	h.fullMesh()

	for i := 0; i < 20; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[3].complete(hot) && h.stores[2].complete(cold) {
			break
		}
	}
	if !h.stores[3].complete(hot) {
		t.Fatal("requested file never completed")
	}
	if !h.stores[2].complete(cold) {
		t.Fatal("unrequested file never reached the idle holder")
	}
	// The requested piece must have gone out first despite the colder
	// popularity: its grant carries the earlier round number.
	if got := h.engines[1].Stats().Round; got < 2 {
		t.Fatalf("round = %d, want at least 2 (two scheduled pieces)", got)
	}
}

// TestTitForTatRotatesSenders: with every member both holding and
// missing pieces, the cyclic order hands the grant around and every
// node ends up transmitting.
func TestTitForTatRotatesSenders(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, true)
	}
	uri := metadata.URIFor(9)
	const total = 3
	// Node i holds exactly piece i-1 and wants the rest.
	h.stores[1].addFile(uri, total, true, 1, 0)
	h.stores[2].addFile(uri, total, true, 1, 1)
	h.stores[3].addFile(uri, total, true, 1, 2)
	h.fullMesh()

	for i := 0; i < 40; i++ {
		h.step(t, 1, 2, 3)
		done := true
		for _, id := range []trace.NodeID{1, 2, 3} {
			if !h.stores[id].complete(uri) {
				done = false
			}
		}
		if done {
			break
		}
	}
	senders := 0
	var sent uint64
	for _, id := range []trace.NodeID{1, 2, 3} {
		if !h.stores[id].complete(uri) {
			t.Fatalf("node %d incomplete", id)
		}
		st := h.engines[id].Stats()
		if !st.TitForTat {
			t.Fatalf("node %d: stats not tit-for-tat", id)
		}
		if st.PieceBcastsSent > 0 {
			senders++
		}
		sent += st.PieceBcastsSent
	}
	if senders != 3 {
		t.Fatalf("%d distinct senders, want 3 (cyclic order must rotate)", senders)
	}
	if sent != total {
		t.Fatalf("piece broadcasts = %d, want exactly %d", sent, total)
	}
}

// TestCollapseAndReformation: a member falling off the live-peer lists
// collapses the group (pairwise fallback) and its return re-forms it.
func TestCollapseAndReformation(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, false)
	}
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3)
	if _, ok := h.engines[1].Group(); !ok {
		t.Fatal("group never confirmed")
	}

	// Node 3 partitions: 1 and 2 lose it from their live sets.
	h.stores[1].setLive([]trace.NodeID{2})
	h.stores[2].setLive([]trace.NodeID{1})
	h.step(t, 1, 2)
	g, ok := h.engines[1].Group()
	if g != nil || ok {
		t.Fatalf("group survived partition: %v (confirmed=%v)", g, ok)
	}
	if h.engines[1].InGroup(2) {
		t.Fatal("pairwise suppression still active after collapse")
	}
	if st := h.engines[1].Stats(); st.Collapses != 1 {
		t.Fatalf("collapses = %d, want 1", st.Collapses)
	}

	// Heal: node 3 comes back, hellos flow again.
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3)
	g, ok = h.engines[1].Group()
	if !ok || !equalIDs(g, []trace.NodeID{1, 2, 3}) {
		t.Fatalf("group did not re-form: %v confirmed=%v", g, ok)
	}
	if st := h.engines[1].Stats(); st.Formations != 2 {
		t.Fatalf("formations = %d, want 2", st.Formations)
	}
}

// TestStaleGrantIsSilent: a grant for a piece the node cannot serve is
// skipped, not answered with garbage.
func TestStaleGrantIsSilent(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, false)
	}
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3)

	e := h.engines[2]
	e.HandleGroup(context.Background(), 1, &wire.Grant{
		From: 1, To: 2, Round: 99, URI: metadata.URIFor(404), Piece: 0,
	})
	h.pump(t)
	if sent := e.Stats().PieceBcastsSent; sent != 0 {
		t.Fatalf("answered a stale grant with %d broadcasts", sent)
	}
}

// TestLargestCliqueWins: with four nodes where 4 only reaches 1, the
// group is the triangle {1,2,3}, not the pair {1,4}.
func TestLargestCliqueWins(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3, 4} {
		h.add(t, id, false)
	}
	// 1-2-3 is a triangle; 4 touches only 1.
	h.stores[1].setLive([]trace.NodeID{2, 3, 4})
	h.stores[2].setLive([]trace.NodeID{1, 3})
	h.stores[3].setLive([]trace.NodeID{1, 2})
	h.stores[4].setLive([]trace.NodeID{1})
	for _, e := range h.engines {
		e.Observe(1, []trace.NodeID{2, 3, 4})
		e.Observe(2, []trace.NodeID{1, 3})
		e.Observe(3, []trace.NodeID{1, 2})
		e.Observe(4, []trace.NodeID{1})
	}
	h.step(t, 1, 2, 3, 4)
	h.step(t, 1, 2, 3, 4)

	for _, id := range []trace.NodeID{1, 2, 3} {
		g, ok := h.engines[id].Group()
		if !ok || !equalIDs(g, []trace.NodeID{1, 2, 3}) {
			t.Fatalf("node %d: group=%v confirmed=%v, want triangle", id, g, ok)
		}
	}
	if g, _ := h.engines[4].Group(); g != nil {
		t.Fatalf("leaf node 4 formed group %v", g)
	}
	if h.engines[1].InGroup(4) {
		t.Fatal("node 1 suppresses pairwise serving toward non-member 4")
	}
}
