// Package bcast runs the live broadcast-group protocol of §V: nodes
// derive the communication graph from overheard hellos, form the
// maximal clique containing themselves (internal/clique), and — once
// every member's announced view agrees — schedule exactly one
// transmitter per round, so a single piece broadcast serves the whole
// group at once instead of one pairwise stream per downloader.
//
// The schedule is driven by a sequencer, the clique's deterministic
// coordinator (lowest ID). In the cooperative mode (§V-A) the sequencer
// also picks the piece and its sender: pieces requested by more members
// first, ties broken by decreasing popularity. In the tit-for-tat mode
// (§V-B) the sequencer merely follows the agreed cyclic order — a
// pseudo-random permutation seeded from the sum of the member IDs that
// every member can verify, so a selfish sequencer cannot bias whose
// turn it is — and the granted sender picks its own piece.
//
// The engine is transport-agnostic: its Sender either puts frames on a
// true shared medium (transport.BroadcastConn, one transmission for the
// whole group) or fans them out over the existing unicast conns. It is
// deliberately forgiving of stale views: grants for pieces a node
// cannot serve are silently skipped, duplicate broadcasts are absorbed
// by the idempotent receive path, and a member that falls silent
// (partition, flap, crash) expires from the graph so the group re-forms
// without it rather than stalling.
//
// Locking order: Engine.mu may be held while calling into Store or
// Sender (which take the daemon's lock); the daemon must never call
// Engine methods while holding its own lock.
package bcast

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// DefaultMinGroupSize is the smallest clique worth scheduling: with two
// nodes a broadcast is just a unicast, so pairs stay on the pairwise
// path.
const DefaultMinGroupSize = 3

// regrantAfter is how many rounds a granted piece is kept off the
// candidate list, giving the broadcast time to land and the receivers'
// next GroupHello to confirm it before the sequencer retries.
const regrantAfter = 2

// Store is the engine's window into the daemon's piece state. Methods
// may be called with Engine.mu held and must not call back into the
// engine.
type Store interface {
	// LivePeers lists peers with live unicast sessions — group members
	// must be live peers, so a partitioned member drops out of every
	// group even when a side-channel broadcast medium stays up.
	LivePeers() []trace.NodeID
	// Wants reports this node's per-file piece state: downloading
	// entries for wanted files, holding entries for servable ones.
	Wants() []wire.GroupWant
	// PieceData returns the bytes and piece total of a servable piece.
	PieceData(uri metadata.URI, i int) (data []byte, total int, ok bool)
	// Popularity is the tie-breaking file popularity (0 when unknown).
	Popularity(uri metadata.URI) float64
	// DeliverPiece hands a received broadcast to the verify-and-store
	// path shared with pairwise pieces. It reports whether the piece is
	// now held (stored, or a duplicate of one already held): false means
	// the data failed verification, which on the fountain path tells the
	// engine its decode was poisoned and must restart.
	DeliverPiece(from trace.NodeID, p *wire.PieceBcast) bool
}

// Sender ships engine messages to the group: one transmission on a
// shared broadcast medium, or a fan-out over unicast conns to members.
// It must not block (enqueue-and-drop beats a stalled schedule).
type Sender interface {
	Broadcast(ctx context.Context, members []trace.NodeID, m wire.Msg)
}

// SymbolSender is the optional lossy-lane half of a Sender: one
// transmission on the best-effort datagram medium every group member
// listens to. A Sender that does not implement it (or a daemon with no
// lane configured) keeps the engine on the reliable piece plane — the
// FEC path never silently loses its transport.
type SymbolSender interface {
	BroadcastSymbol(ctx context.Context, m wire.Msg)
}

// Config parameterizes an Engine.
type Config struct {
	// Self is this node's identity.
	Self trace.NodeID
	// TitForTat selects cyclic-order scheduling over coordinator choice.
	TitForTat bool
	// MinGroupSize is the smallest clique that forms a group (default
	// DefaultMinGroupSize); smaller cliques stay pairwise.
	MinGroupSize int
	// Window expires graph edges and member views: a member silent this
	// long is no longer part of any group (default 5s, the protocol's
	// liveness window; tests shrink it).
	Window time.Duration
	// Store and Send connect the engine to the daemon.
	Store Store
	Send  Sender
	// FEC advertises and (when the whole group agrees) uses the
	// fountain-coded symbol plane for piece data. It only takes effect
	// when Send also implements SymbolSender.
	FEC bool
	// SymbolSize is the coded-symbol payload size in bytes (default
	// DefaultSymbolSize). Smaller symbols mean more source symbols per
	// piece — better loss granularity, more per-symbol overhead.
	SymbolSize int
	// RelayBudget bounds how many first-sight symbols a receiver
	// re-broadcasts to the group per Tick (default DefaultRelayBudget;
	// coopcast-style cooperation, capped so relays cannot storm).
	RelayBudget int
	// Logf, when set, receives group lifecycle lines.
	Logf func(format string, args ...any)
}

// Stats is the engine's observable state.
type Stats struct {
	Group           []trace.NodeID `json:"group,omitempty"`
	Confirmed       bool           `json:"confirmed"`
	Sequencer       trace.NodeID   `json:"sequencer"` // -1 without a group
	Round           uint64         `json:"round"`
	TitForTat       bool           `json:"tit_for_tat"`
	Formations      uint64         `json:"formations"`
	Collapses       uint64         `json:"collapses"`
	GroupHellosSent uint64         `json:"group_hellos_sent"`
	GroupHellosRecv uint64         `json:"group_hellos_recv"`
	SchedulesSent   uint64         `json:"schedules_sent"`
	GrantsSent      uint64         `json:"grants_sent"`
	GrantsRecv      uint64         `json:"grants_recv"`
	IdleRounds      uint64         `json:"idle_rounds"`
	PieceBcastsSent uint64         `json:"piece_bcasts_sent"`
	PieceBcastsRecv uint64         `json:"piece_bcasts_recv"`

	// Fountain-coded data plane (fec.go).
	FECActive       bool   `json:"fec_active"`
	SymbolsSent     uint64 `json:"symbols_sent"`
	SymbolsRecv     uint64 `json:"symbols_recv"`
	SymbolsRelayed  uint64 `json:"symbols_relayed"`
	SymbolsBadCheck uint64 `json:"symbols_bad_check"`
	SymbolAcksSent  uint64 `json:"symbol_acks_sent"`
	SymbolAcksRecv  uint64 `json:"symbol_acks_recv"`
	FECDecodes      uint64 `json:"fec_decodes"`
	FECVerifyFails  uint64 `json:"fec_verify_fails"`
}

// edge is an undirected adjacency edge, stored with a < b.
type edge struct{ a, b trace.NodeID }

func mkEdge(a, b trace.NodeID) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

// view is one member's last announced group state.
type view struct {
	members []trace.NodeID
	wants   []wire.GroupWant
	fec     bool
	at      time.Time
}

// pieceKey identifies one piece of one file.
type pieceKey struct {
	uri   metadata.URI
	piece int
}

// Engine is one node's broadcast-group state machine. Construct with
// New; drive with Observe/HandleGroup from the receive path and Tick
// from a timer.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	edges     map[edge]time.Time
	views     map[trace.NodeID]*view
	group     []trace.NodeID // nil: no group, pairwise only
	confirmed bool
	round     uint64
	lastGrant map[pieceKey]uint64
	counters  Stats

	// Fountain-coded data plane (fec.go). symbols is non-nil only when
	// Config.FEC is set and the Sender has a symbol lane.
	symbols    SymbolSender
	fecSend    map[pieceKey]*fecStream
	fecRecv    map[pieceKey]*fecBlock
	relayQuota int
}

// New returns an engine with defaults applied.
func New(cfg Config) *Engine {
	if cfg.MinGroupSize <= 0 {
		cfg.MinGroupSize = DefaultMinGroupSize
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Second
	}
	if cfg.SymbolSize <= 0 {
		cfg.SymbolSize = DefaultSymbolSize
	}
	if cfg.RelayBudget <= 0 {
		cfg.RelayBudget = DefaultRelayBudget
	}
	e := &Engine{
		cfg:       cfg,
		edges:     make(map[edge]time.Time),
		views:     make(map[trace.NodeID]*view),
		lastGrant: make(map[pieceKey]uint64),
		fecSend:   make(map[pieceKey]*fecStream),
		fecRecv:   make(map[pieceKey]*fecBlock),
	}
	if cfg.FEC {
		if ss, ok := cfg.Send.(SymbolSender); ok {
			e.symbols = ss
		}
	}
	return e
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// Observe feeds one overheard hello into the adjacency graph: the
// sender hears each node in heard, so those pairs can share a medium.
func (e *Engine) Observe(from trace.NodeID, heard []trace.NodeID) {
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, h := range heard {
		if h != from {
			e.edges[mkEdge(from, h)] = now
		}
	}
}

// HandleGroup processes one received group message. Grants addressed
// to this node trigger the piece broadcast inline.
func (e *Engine) HandleGroup(ctx context.Context, from trace.NodeID, msg wire.Msg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch v := msg.(type) {
	case *wire.GroupHello:
		e.counters.GroupHellosRecv++
		members := append([]trace.NodeID(nil), v.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		e.views[from] = &view{members: members, wants: v.Wants, fec: v.FEC, at: time.Now()}
		if v.Round > e.round {
			e.round = v.Round
		}
	case *wire.Schedule:
		if v.Round > e.round {
			e.round = v.Round
		}
	case *wire.Grant:
		e.counters.GrantsRecv++
		if v.Round > e.round {
			e.round = v.Round
		}
		if v.To == e.cfg.Self && contains(e.group, v.From) {
			e.transmitLocked(ctx, v)
		}
	case *wire.PieceBcast:
		e.counters.PieceBcastsRecv++
		if v.Round > e.round {
			e.round = v.Round
		}
		// Optimistic: assume every member heard this broadcast; a
		// receiver that missed it resets the bit with its next
		// GroupHello and the piece becomes a candidate again.
		e.markHaveLocked(v.URI, v.Index)
		e.cfg.Store.DeliverPiece(from, v)
	case *wire.Symbol:
		e.handleSymbolLocked(ctx, v)
	case *wire.SymbolAck:
		e.handleSymbolAckLocked(from, v)
	}
}

// InGroup reports whether peer is a member of this node's confirmed
// group — the daemon's signal to suppress pairwise piece serving and
// let the schedule do the work.
func (e *Engine) InGroup(peer trace.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.confirmed && contains(e.group, peer)
}

// Group snapshots the current member set and whether it is confirmed.
func (e *Engine) Group() ([]trace.NodeID, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]trace.NodeID(nil), e.group...), e.confirmed
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.counters
	st.Group = append([]trace.NodeID(nil), e.group...)
	st.Confirmed = e.confirmed
	st.Sequencer = clique.Coordinator(e.group)
	st.Round = e.round
	st.TitForTat = e.cfg.TitForTat
	st.FECActive = e.fecActiveLocked()
	return st
}

// Tick advances the engine one beat: refresh the group from the graph,
// announce the view, and — when this node is the confirmed group's
// sequencer — run one schedule round.
func (e *Engine) Tick(ctx context.Context) {
	now := time.Now()
	live := e.cfg.Store.LivePeers()
	selfWants := e.cfg.Store.Wants()

	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked(now)

	best := e.bestGroupLocked(live)
	if !equalIDs(best, e.group) {
		switch {
		case best == nil:
			e.counters.Collapses++
			e.logf("bcast %d: group %v collapsed; pairwise fallback", e.cfg.Self, e.group)
		case e.group == nil:
			e.counters.Formations++
			e.logf("bcast %d: forming group %v", e.cfg.Self, best)
		default:
			e.counters.Formations++
			e.logf("bcast %d: group re-forms %v -> %v", e.cfg.Self, e.group, best)
		}
		e.group = best
		e.confirmed = false
		e.lastGrant = make(map[pieceKey]uint64)
	}
	// The view keeps its own copy of the bitsets: the announcement below
	// may sit in a send queue while markHaveLocked updates the view.
	e.views[e.cfg.Self] = &view{
		members: e.group, wants: cloneWants(selfWants),
		fec: e.symbols != nil, at: now,
	}
	e.relayQuota = e.cfg.RelayBudget
	e.pruneFECLocked()
	if e.group == nil {
		return
	}

	e.sendLocked(ctx, &wire.GroupHello{
		From:    e.cfg.Self,
		Members: e.group,
		Round:   e.round,
		Wants:   selfWants,
		FEC:     e.symbols != nil,
	})
	e.counters.GroupHellosSent++

	confirmed := true
	for _, m := range e.group {
		if m == e.cfg.Self {
			continue
		}
		v := e.views[m]
		if v == nil || now.Sub(v.at) > e.cfg.Window || !equalIDs(v.members, e.group) {
			confirmed = false
			break
		}
	}
	if confirmed && !e.confirmed {
		e.logf("bcast %d: group %v live (sequencer %d, tft=%v)",
			e.cfg.Self, e.group, clique.Coordinator(e.group), e.cfg.TitForTat)
	}
	e.confirmed = confirmed
	if !confirmed || clique.Coordinator(e.group) != e.cfg.Self {
		return
	}
	e.runRoundLocked(ctx, now)
}

// pruneLocked expires stale graph edges and member views.
func (e *Engine) pruneLocked(now time.Time) {
	for k, at := range e.edges {
		if now.Sub(at) > e.cfg.Window {
			delete(e.edges, k)
		}
	}
	for id, v := range e.views {
		if id != e.cfg.Self && now.Sub(v.at) > e.cfg.Window {
			delete(e.views, id)
		}
	}
}

// bestGroupLocked recomputes this node's group: the largest maximal
// clique containing Self in the graph of live-peer links plus fresh
// overheard edges, ties broken lexicographically so every member picks
// the same clique. Below MinGroupSize there is no group.
func (e *Engine) bestGroupLocked(live []trace.NodeID) []trace.NodeID {
	liveSet := make(map[trace.NodeID]bool, len(live))
	adj := make(map[trace.NodeID]map[trace.NodeID]bool)
	addEdge := func(a, b trace.NodeID) {
		if adj[a] == nil {
			adj[a] = make(map[trace.NodeID]bool)
		}
		if adj[b] == nil {
			adj[b] = make(map[trace.NodeID]bool)
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for _, p := range live {
		liveSet[p] = true
		addEdge(e.cfg.Self, p)
	}
	// Overheard edges connect peers to each other; only edges between
	// nodes this node can still reach (live peers or itself) matter for
	// cliques containing Self, and restricting to them keeps a
	// partitioned node's stale edges from holding a phantom group
	// together.
	for k := range e.edges {
		aOK := k.a == e.cfg.Self || liveSet[k.a]
		bOK := k.b == e.cfg.Self || liveSet[k.b]
		if aOK && bOK {
			addEdge(k.a, k.b)
		}
	}
	if len(adj) == 0 {
		return nil
	}
	lists := make(map[trace.NodeID][]trace.NodeID, len(adj))
	for v, set := range adj {
		for w := range set {
			lists[v] = append(lists[v], w)
		}
	}
	mine := clique.Containing(clique.MaximalCliques(lists), e.cfg.Self)
	var best []trace.NodeID
	for _, c := range mine {
		if len(c) > len(best) {
			best = c
		}
	}
	if len(best) < e.cfg.MinGroupSize {
		return nil
	}
	return best
}

// candidate is a piece some member holds and some member lacks.
type candidate struct {
	key        pieceKey
	total      int
	requesters int
	lackers    int
	holders    []trace.NodeID
	popularity float64
}

// candidatesLocked enumerates transferable pieces from the members'
// announced piece state. suppressed counts pieces held back only by
// the regrant window — wanted, held, but granted too recently.
func (e *Engine) candidatesLocked(now time.Time) (out []*candidate, suppressed int) {
	byKey := make(map[pieceKey]*candidate)
	for _, m := range e.group {
		v := e.views[m]
		if v == nil || now.Sub(v.at) > e.cfg.Window {
			continue
		}
		for i := range v.wants {
			w := &v.wants[i]
			for p := 0; p < w.Total; p++ {
				k := pieceKey{w.URI, p}
				c := byKey[k]
				if c == nil {
					c = &candidate{key: k, total: w.Total}
					byKey[k] = c
				}
				switch {
				case w.HaveBit(p):
					c.holders = append(c.holders, m)
				case w.Downloading:
					c.requesters++
				default:
					c.lackers++
				}
			}
		}
	}
	window := uint64(regrantAfter)
	if e.fecActiveLocked() {
		// A symbol burst needs a beat to decode and another for the
		// aggregate ack to cross the lossy control plane; re-bursting on
		// the piece plane's cadence ships fresh symbols to members that
		// already finished the block.
		window = fecRegrantAfter
	}
	for k, c := range byKey {
		if len(c.holders) == 0 || c.requesters+c.lackers == 0 {
			continue
		}
		if granted, ok := e.lastGrant[k]; ok && e.round+1-granted < window {
			suppressed++
			continue // in flight: give the broadcast a beat to land
		}
		c.popularity = e.cfg.Store.Popularity(k.uri)
		sort.Slice(c.holders, func(i, j int) bool { return c.holders[i] < c.holders[j] })
		out = append(out, c)
	}
	// §V-A order: requested pieces by requester count then popularity,
	// then unrequested pieces by popularity; final URI/index tie-break
	// keeps the schedule deterministic.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.requesters > 0) != (b.requesters > 0) {
			return a.requesters > 0
		}
		if a.requesters != b.requesters {
			return a.requesters > b.requesters
		}
		if a.popularity != b.popularity {
			return a.popularity > b.popularity
		}
		if a.key.uri != b.key.uri {
			return a.key.uri < b.key.uri
		}
		return a.key.piece < b.key.piece
	})
	return out, suppressed
}

// runRoundLocked executes one schedule round as the sequencer.
func (e *Engine) runRoundLocked(ctx context.Context, now time.Time) {
	cands, suppressed := e.candidatesLocked(now)
	if len(cands) == 0 {
		// The regrant window is measured in rounds and rounds only
		// advance when something is granted — so a beat that is idle
		// *only because* every candidate sits inside the window must
		// still advance the round, or the last unacked piece of a
		// transfer is suppressed forever and never retried.
		if suppressed > 0 {
			e.round++
		}
		e.counters.IdleRounds++
		return
	}
	e.round++
	grant := &wire.Grant{From: e.cfg.Self, Round: e.round, URI: "", Piece: wire.NoPiece}
	if e.cfg.TitForTat {
		// The cyclic order names the sender; the sender picks its piece.
		order := clique.CyclicOrder(e.group)
		grant.To = order[int(e.round)%len(order)]
	} else {
		c := cands[0]
		grant.To = c.holders[0]
		grant.URI = c.key.uri
		grant.Piece = int32(c.key.piece)
		e.lastGrant[c.key] = e.round
	}
	e.sendLocked(ctx, &wire.Schedule{
		From: e.cfg.Self, Members: e.group, Round: e.round, TitForTat: e.cfg.TitForTat,
	})
	e.counters.SchedulesSent++
	e.sendLocked(ctx, grant)
	e.counters.GrantsSent++
	if grant.To == e.cfg.Self {
		e.transmitLocked(ctx, grant)
	}
}

// transmitLocked serves one grant addressed to this node: resolve the
// piece (the grant's, or this node's best candidate when the choice is
// left open), fetch the data, and broadcast it.
func (e *Engine) transmitLocked(ctx context.Context, g *wire.Grant) {
	uri, piece := g.URI, int(g.Piece)
	if uri == "" || g.Piece == wire.NoPiece {
		cands, _ := e.candidatesLocked(time.Now())
		found := false
		for _, c := range cands {
			if contains(c.holders, e.cfg.Self) {
				uri, piece = c.key.uri, c.key.piece
				found = true
				break
			}
		}
		if !found {
			e.counters.IdleRounds++ // our turn, nothing useful to send
			return
		}
	}
	data, total, ok := e.cfg.Store.PieceData(uri, piece)
	if !ok {
		return // stale grant: we no longer (or never did) hold it
	}
	if e.fecActiveLocked() {
		e.transmitSymbolsLocked(ctx, g.Round, uri, piece, total, data)
		return
	}
	e.sendLocked(ctx, &wire.PieceBcast{
		From: e.cfg.Self, Round: g.Round, URI: uri, Index: piece, Total: total, Data: data,
	})
	e.counters.PieceBcastsSent++
	e.lastGrant[pieceKey{uri, piece}] = g.Round
	e.markHaveLocked(uri, piece)
}

// markHaveLocked optimistically flips the piece's have bit in every
// member view that tracks the file.
func (e *Engine) markHaveLocked(uri metadata.URI, piece int) {
	for _, v := range e.views {
		for i := range v.wants {
			if v.wants[i].URI == uri {
				v.wants[i].SetHave(piece)
			}
		}
	}
}

// sendLocked ships one message to the current group.
func (e *Engine) sendLocked(ctx context.Context, m wire.Msg) {
	e.cfg.Send.Broadcast(ctx, e.group, m)
}

// cloneWants deep-copies the Have bitsets so view state and in-flight
// messages never share bytes.
func cloneWants(ws []wire.GroupWant) []wire.GroupWant {
	out := make([]wire.GroupWant, len(ws))
	for i := range ws {
		out[i] = ws[i]
		out[i].Have = append([]byte(nil), ws[i].Have...)
	}
	return out
}

func contains(ids []trace.NodeID, id trace.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func equalIDs(a, b []trace.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
