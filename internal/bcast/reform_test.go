package bcast

import (
	"testing"

	"repro/internal/metadata"
	"repro/internal/trace"
)

// TestTitForTatReformationAfterHeal: a tit-for-tat group collapses
// mid-transfer when a member partitions away, re-forms on heal, and
// resumes from the surviving piece bitmaps — the transfer picks up
// where it stopped instead of restarting, so every piece still crosses
// the medium exactly once.
func TestTitForTatReformationAfterHeal(t *testing.T) {
	h := newHarness()
	for _, id := range []trace.NodeID{1, 2, 3} {
		h.add(t, id, true)
	}
	uri := metadata.URIFor(11)
	const total = 6
	h.stores[1].addFile(uri, total, false, 1.0, 0, 1, 2, 3, 4, 5) // seeder
	h.stores[2].addFile(uri, total, true, 1.0)
	h.stores[3].addFile(uri, total, true, 1.0)
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3)
	if _, ok := h.engines[1].Group(); !ok {
		t.Fatal("group never confirmed")
	}

	// Run the transfer partway: at least two pieces delivered, none of
	// the downloaders complete.
	partial := func() int {
		h.stores[2].mu.Lock()
		defer h.stores[2].mu.Unlock()
		return len(h.stores[2].files[uri].have)
	}
	for i := 0; i < 20 && partial() < 2; i++ {
		h.step(t, 1, 2, 3)
	}
	if got := partial(); got < 2 || got >= total {
		t.Fatalf("mid-transfer setup failed: node 2 holds %d/%d pieces", got, total)
	}
	heldAtPartition := partial()

	// Node 3 partitions away; the group collapses on both survivors.
	h.stores[1].setLive([]trace.NodeID{2})
	h.stores[2].setLive([]trace.NodeID{1})
	h.step(t, 1, 2)
	if g, ok := h.engines[1].Group(); g != nil || ok {
		t.Fatalf("group survived partition: %v (confirmed=%v)", g, ok)
	}
	if st := h.engines[1].Stats(); st.Collapses != 1 {
		t.Fatalf("collapses = %d, want 1", st.Collapses)
	}

	// Heal and re-form.
	h.fullMesh()
	h.step(t, 1, 2, 3)
	h.step(t, 1, 2, 3)
	g, ok := h.engines[1].Group()
	if !ok || !equalIDs(g, []trace.NodeID{1, 2, 3}) {
		t.Fatalf("group did not re-form: %v confirmed=%v", g, ok)
	}
	if st := h.engines[1].Stats(); st.Formations != 2 {
		t.Fatalf("formations = %d, want 2", st.Formations)
	}
	if got := partial(); got < heldAtPartition {
		t.Fatalf("progress lost across collapse: held %d, had %d", got, heldAtPartition)
	}

	// Resume to completion.
	for i := 0; i < 40; i++ {
		h.step(t, 1, 2, 3)
		if h.stores[2].complete(uri) && h.stores[3].complete(uri) {
			break
		}
	}
	if !h.stores[2].complete(uri) || !h.stores[3].complete(uri) {
		t.Fatal("download never completed after re-formation")
	}

	// Progress preservation, quantified: no duplicate deliveries, and
	// the whole run cost exactly one broadcast per piece even though the
	// group formed twice.
	if h.stores[2].dups != 0 || h.stores[3].dups != 0 {
		t.Fatalf("duplicate deliveries after re-formation: node2 %d, node3 %d",
			h.stores[2].dups, h.stores[3].dups)
	}
	var sent uint64
	for _, id := range []trace.NodeID{1, 2, 3} {
		sent += h.engines[id].Stats().PieceBcastsSent
	}
	if sent != total {
		t.Fatalf("piece broadcasts = %d, want exactly %d across both group lifetimes", sent, total)
	}
}
