// Package eventq implements the discrete-event simulator's pending-event
// queue: a binary min-heap ordered by firing time with a stable FIFO
// tie-break, so that events scheduled for the same instant fire in
// scheduling order. Stability is what makes simulation runs reproducible
// independent of heap internals.
package eventq

import "repro/internal/simtime"

// Event is a unit of work scheduled at a simulated instant.
type Event struct {
	// Time is the instant at which the event fires.
	Time simtime.Time
	// Fire performs the event's work.
	Fire func()

	seq uint64 // insertion order, breaks Time ties FIFO
}

// Queue is a min-heap of events. The zero value is an empty queue ready
// for use. Queue is not safe for concurrent use; the simulator is
// single-threaded by design.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at t.
func (q *Queue) Push(t simtime.Time, fn func()) {
	e := &Event{Time: t, Fire: fn, seq: q.seq}
	q.seq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
}

// Peek returns the earliest pending event without removing it, or nil if
// the queue is empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest pending event, or nil if the queue
// is empty. Ties on Time are broken in insertion order.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	return top
}

// less orders events by time, then by insertion sequence.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
