package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func drain(q *Queue) []simtime.Time {
	var out []simtime.Time
	for q.Len() > 0 {
		out = append(out, q.Pop().Time)
	}
	return out
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("zero-value queue not empty")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue returned event")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue returned event")
	}
}

func TestPopOrdersByTime(t *testing.T) {
	var q Queue
	for _, tm := range []simtime.Time{50, 10, 30, 20, 40} {
		q.Push(tm, nil)
	}
	got := drain(&q)
	want := []simtime.Time{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesFireInInsertionOrder(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 20; i++ {
		i := i
		q.Push(100, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie order broken at %d: got %v", i, fired)
		}
	}
}

func TestMixedTiesAndTimes(t *testing.T) {
	var q Queue
	type mark struct {
		tm  simtime.Time
		seq int
	}
	var fired []mark
	push := func(tm simtime.Time, seq int) {
		q.Push(tm, func() { fired = append(fired, mark{tm, seq}) })
	}
	push(5, 0)
	push(3, 1)
	push(5, 2)
	push(1, 3)
	push(3, 4)
	for q.Len() > 0 {
		q.Pop().Fire()
	}
	want := []mark{{1, 3}, {3, 1}, {3, 4}, {5, 0}, {5, 2}}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, fired[i], want[i])
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		q.Push(simtime.Time(r.Intn(1000)), nil)
	}
	for q.Len() > 0 {
		peeked := q.Peek()
		popped := q.Pop()
		if peeked != popped {
			t.Fatal("Peek disagreed with Pop")
		}
	}
}

func TestPropertyHeapSortsArbitraryInput(t *testing.T) {
	f := func(times []int32) bool {
		var q Queue
		for _, tm := range times {
			q.Push(simtime.Time(tm), nil)
		}
		got := drain(&q)
		if len(got) != len(times) {
			return false
		}
		want := make([]simtime.Time, len(times))
		for i, tm := range times {
			want[i] = simtime.Time(tm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	r := rng.New(2)
	lastPopped := simtime.Time(-1 << 62)
	pendingMin := func() simtime.Time {
		if e := q.Peek(); e != nil {
			return e.Time
		}
		return 1 << 62
	}
	for round := 0; round < 1000; round++ {
		if q.Len() == 0 || r.Bool(0.6) {
			// Never schedule in the popped past; the simulator enforces
			// the same invariant.
			base := lastPopped
			if base < 0 {
				base = 0
			}
			q.Push(base+simtime.Time(r.Intn(100)), nil)
			continue
		}
		if min := pendingMin(); min < lastPopped {
			t.Fatalf("heap invariant broken: min %v < last popped %v", min, lastPopped)
		}
		e := q.Pop()
		if e.Time < lastPopped {
			t.Fatalf("popped %v after %v", e.Time, lastPopped)
		}
		lastPopped = e.Time
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	r := rng.New(3)
	times := make([]simtime.Time, 1024)
	for i := range times {
		times[i] = simtime.Time(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(times[i%len(times)], nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
