package node

import (
	"testing"

	"repro/internal/metadata"
)

func metaWithPop(t *testing.T, n *Node, id metadata.FileID, pop float64) *metadata.Metadata {
	t.Helper()
	m := makeMeta(id, "x")
	if !n.AddMetadata(m, pop, 0) && n.Metadata(m.URI) == nil {
		// Admission may legitimately fail under a cap; callers assert.
		return m
	}
	return m
}

func TestMetadataLimitEvictsLeastPopular(t *testing.T) {
	n := New(1, false)
	n.SetLimits(Limits{MaxMetadata: 2})
	low := metaWithPop(t, n, 1, 0.1)
	mid := metaWithPop(t, n, 2, 0.5)
	high := metaWithPop(t, n, 3, 0.9)
	if n.HasMetadata(low.URI) {
		t.Fatal("least popular record not evicted")
	}
	if !n.HasMetadata(mid.URI) || !n.HasMetadata(high.URI) {
		t.Fatal("popular records evicted")
	}
	if got := len(n.MetadataStore()); got != 2 {
		t.Fatalf("store size = %d, want 2", got)
	}
}

func TestMetadataLimitRejectsUnpopularNewcomer(t *testing.T) {
	n := New(1, false)
	n.SetLimits(Limits{MaxMetadata: 2})
	metaWithPop(t, n, 1, 0.8)
	metaWithPop(t, n, 2, 0.9)
	newcomer := makeMeta(3, "x")
	if n.AddMetadata(newcomer, 0.1, 0) {
		t.Fatal("unpopular newcomer admitted over cap")
	}
	if n.HasMetadata(newcomer.URI) {
		t.Fatal("newcomer present despite rejection")
	}
}

func TestMetadataLimitProtectsWantedFiles(t *testing.T) {
	n := New(1, false)
	wanted := makeMeta(1, "keep")
	n.AddMetadata(wanted, 0.01, 0)
	n.Select(wanted.URI)
	metaWithPop(t, n, 2, 0.5)
	metaWithPop(t, n, 3, 0.9)
	n.SetLimits(Limits{MaxMetadata: 2})
	if !n.HasMetadata(wanted.URI) {
		t.Fatal("wanted file's metadata evicted despite low popularity")
	}
}

func TestPieceCacheLimit(t *testing.T) {
	n := New(1, false)
	n.SetLimits(Limits{MaxCachedFiles: 1})
	n.AddPiece("dtn://files/1", 0, 4)
	n.AddPiece("dtn://files/1", 1, 4) // 2 pieces cached
	n.AddPiece("dtn://files/2", 0, 4) // 1 piece: evicted as smallest
	if n.Pieces("dtn://files/2") != nil {
		t.Fatal("smallest cache not evicted")
	}
	if ps := n.Pieces("dtn://files/1"); ps == nil || ps.Count() != 2 {
		t.Fatalf("surviving cache = %+v", ps)
	}
}

func TestPieceCacheLimitSparesWantedAndComplete(t *testing.T) {
	n := New(1, false)
	wanted := makeMeta(1, "w")
	n.AddMetadata(wanted, 0.5, 0)
	n.Select(wanted.URI)
	n.AddPiece(wanted.URI, 0, 4)

	complete := makeMeta(2, "c")
	n.AddMetadata(complete, 0.5, 0)
	n.GrantFullFile(complete.URI, complete.NumPieces())

	n.SetLimits(Limits{MaxCachedFiles: 1})
	n.AddPiece("dtn://files/9", 0, 4)
	n.AddPiece("dtn://files/10", 0, 4)

	if n.Pieces(wanted.URI) == nil {
		t.Fatal("wanted download evicted")
	}
	if !n.HasFullFile(complete.URI) {
		t.Fatal("complete file evicted")
	}
	cached := 0
	for _, uri := range []metadata.URI{"dtn://files/9", "dtn://files/10"} {
		if n.Pieces(uri) != nil {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("cached unwanted files = %d, want 1", cached)
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	n := New(1, false)
	n.SetLimits(Limits{})
	for i := 0; i < 50; i++ {
		metaWithPop(t, n, metadata.FileID(i), 0.5)
		n.AddPiece(metadata.URIFor(metadata.FileID(i+1000)), 0, 2)
	}
	if got := len(n.MetadataStore()); got != 50 {
		t.Fatalf("store size = %d under unlimited cap", got)
	}
	if got := len(n.PieceURIs()); got != 50 {
		t.Fatalf("piece caches = %d under unlimited cap", got)
	}
}

func TestLimitsAccessor(t *testing.T) {
	n := New(1, false)
	l := Limits{MaxMetadata: 7, MaxCachedFiles: 3}
	n.SetLimits(l)
	if n.Limits() != l {
		t.Fatalf("Limits() = %+v", n.Limits())
	}
}

func TestWantedPiecesNotCountedAgainstCache(t *testing.T) {
	n := New(1, false)
	n.SetLimits(Limits{MaxCachedFiles: 1})
	m := makeMeta(1, "w")
	n.AddMetadata(m, 0.5, 0)
	n.Select(m.URI)
	if !n.AddPiece(m.URI, 0, 4) {
		t.Fatal("piece of wanted file rejected by cache cap")
	}
	if !n.AddPiece("dtn://files/5", 0, 4) {
		t.Fatal("first cached file rejected")
	}
}
