package node

import (
	"sort"

	"repro/internal/metadata"
)

// Limits bounds a node's storage. Zero values mean unlimited. The paper
// notes metadata is small and kept "in larger amounts and for longer
// durations than files", so the two stores are capped independently.
type Limits struct {
	// MaxMetadata caps stored metadata records.
	MaxMetadata int
	// MaxCachedFiles caps piece sets of files the node does not want
	// (opportunistic phase-two caches). Wanted and completed files are
	// never evicted by this cap.
	MaxCachedFiles int
}

// SetLimits installs storage caps and immediately enforces them.
func (n *Node) SetLimits(l Limits) {
	n.limits = l
	n.enforceMetadataLimit()
	n.enforcePieceLimit()
}

// Limits returns the node's storage caps.
func (n *Node) Limits() Limits { return n.limits }

// enforceMetadataLimit evicts the least valuable metadata until the
// store fits: lowest popularity first, ties by earliest expiry then URI.
// Records whose file is wanted are kept if at all possible.
func (n *Node) enforceMetadataLimit() {
	max := n.limits.MaxMetadata
	if max <= 0 || len(n.store) <= max {
		return
	}
	type victim struct {
		uri    metadata.URI
		sm     *StoredMetadata
		wanted bool
	}
	victims := make([]victim, 0, len(n.store))
	for uri, sm := range n.store {
		ps := n.pieces[uri]
		victims = append(victims, victim{
			uri:    uri,
			sm:     sm,
			wanted: ps != nil && ps.Want,
		})
	}
	sort.Slice(victims, func(i, j int) bool {
		a, b := victims[i], victims[j]
		if a.wanted != b.wanted {
			return !a.wanted // evict unwanted first
		}
		if a.sm.Popularity != b.sm.Popularity {
			return a.sm.Popularity < b.sm.Popularity
		}
		if a.sm.Meta.Expires != b.sm.Meta.Expires {
			return a.sm.Meta.Expires < b.sm.Meta.Expires
		}
		return a.uri < b.uri
	})
	for _, v := range victims {
		if len(n.store) <= max {
			break
		}
		delete(n.store, v.uri)
	}
}

// enforcePieceLimit evicts unwanted, incomplete piece caches until the
// cache fits: fewest pieces first, ties by URI.
func (n *Node) enforcePieceLimit() {
	max := n.limits.MaxCachedFiles
	if max <= 0 {
		return
	}
	var cached []metadata.URI
	for uri, ps := range n.pieces {
		if !ps.Want && !ps.Complete() {
			cached = append(cached, uri)
		}
	}
	if len(cached) <= max {
		return
	}
	sort.Slice(cached, func(i, j int) bool {
		a, b := n.pieces[cached[i]], n.pieces[cached[j]]
		if a.Count() != b.Count() {
			return a.Count() < b.Count()
		}
		return cached[i] < cached[j]
	})
	for _, uri := range cached[:len(cached)-max] {
		delete(n.pieces, uri)
	}
}
