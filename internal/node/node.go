// Package node holds the per-node protocol state: the metadata store the
// discovery process fills, the piece store the download process fills,
// the node's active queries, the cached queries of its frequent contacts
// (the "query distribution" that distinguishes MBT from MBT-Q), and the
// tit-for-tat credit ledger.
package node

import (
	"sort"

	"repro/internal/choke"
	"repro/internal/credit"
	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// StoredMetadata is a metadata record held by a node together with the
// advisory popularity it was last told.
type StoredMetadata struct {
	Meta *metadata.Metadata
	// Popularity is the latest popularity value learned for the file
	// (from the server directly or relayed by peers).
	Popularity float64
	// ReceivedAt is when the node first stored the record.
	ReceivedAt simtime.Time
}

// PieceSet tracks download progress for one file.
type PieceSet struct {
	// Want is true once the node's user selected the file for download.
	Want bool
	have []bool
	n    int
}

// Total returns the file's piece count.
func (p *PieceSet) Total() int { return len(p.have) }

// Have reports whether piece i is stored.
func (p *PieceSet) Have(i int) bool {
	return i >= 0 && i < len(p.have) && p.have[i]
}

// Count returns the number of stored pieces.
func (p *PieceSet) Count() int { return p.n }

// Complete reports whether every piece is stored.
func (p *PieceSet) Complete() bool { return len(p.have) > 0 && p.n == len(p.have) }

// Missing returns the indices of absent pieces.
func (p *PieceSet) Missing() []int {
	var out []int
	for i, h := range p.have {
		if !h {
			out = append(out, i)
		}
	}
	return out
}

// add stores piece i, reporting whether it was new.
func (p *PieceSet) add(i int) bool {
	if i < 0 || i >= len(p.have) || p.have[i] {
		return false
	}
	p.have[i] = true
	p.n++
	return true
}

// Node is one participant in the hybrid DTN.
type Node struct {
	// ID is the node's trace identity.
	ID trace.NodeID
	// InternetAccess marks nodes that can reach the Internet directly.
	InternetAccess bool
	// FreeRider marks nodes that never transmit (tit-for-tat
	// experiments); they still receive broadcasts.
	FreeRider bool
	// Ledger is the node's tit-for-tat credit table.
	Ledger *credit.Ledger
	// ChokePolicy, when set, encrypts this node's piece broadcasts and
	// hands content keys only to unchoked peers (the paper's footnote-1
	// extension). nil broadcasts in the clear.
	ChokePolicy *choke.Policy

	queries     map[string]simtime.Time // query -> expiry
	peerQueries map[trace.NodeID]map[string]simtime.Time
	store       map[metadata.URI]*StoredMetadata
	pieces      map[metadata.URI]*PieceSet
	frequent    map[trace.NodeID]bool
	limits      Limits
}

// New returns an empty node.
func New(id trace.NodeID, internetAccess bool) *Node {
	return &Node{
		ID:             id,
		InternetAccess: internetAccess,
		Ledger:         credit.NewLedger(),
		queries:        make(map[string]simtime.Time),
		peerQueries:    make(map[trace.NodeID]map[string]simtime.Time),
		store:          make(map[metadata.URI]*StoredMetadata),
		pieces:         make(map[metadata.URI]*PieceSet),
		frequent:       make(map[trace.NodeID]bool),
	}
}

// SetFrequent records the node's frequent contacts (derived from trace
// statistics); only their queries are cached for cooperative discovery.
func (n *Node) SetFrequent(peers []trace.NodeID) {
	n.frequent = make(map[trace.NodeID]bool, len(peers))
	for _, p := range peers {
		n.frequent[p] = true
	}
}

// IsFrequent reports whether peer is a frequent contact.
func (n *Node) IsFrequent(peer trace.NodeID) bool { return n.frequent[peer] }

// AddQuery registers an active query until expiry.
func (n *Node) AddQuery(q string, expiry simtime.Time) {
	if cur, ok := n.queries[q]; !ok || expiry > cur {
		n.queries[q] = expiry
	}
}

// Queries returns the node's unexpired queries, sorted for determinism.
func (n *Node) Queries(now simtime.Time) []string {
	var out []string
	for q, exp := range n.queries {
		if now < exp {
			out = append(out, q)
		}
	}
	sort.Strings(out)
	return out
}

// ActiveQueryMap returns a copy of the unexpired queries with their
// expiries, for relaying to peers in hello messages.
func (n *Node) ActiveQueryMap(now simtime.Time) map[string]simtime.Time {
	out := make(map[string]simtime.Time)
	for q, exp := range n.queries {
		if now < exp {
			out[q] = exp
		}
	}
	return out
}

// LearnPeerQueries caches a frequent contact's queries so this node can
// collect metadata on the peer's behalf (MBT's query distribution).
// Queries from non-frequent peers are ignored, mirroring the paper: nodes
// store the query strings of their most frequently connected nodes.
func (n *Node) LearnPeerQueries(peer trace.NodeID, queries []string, expiry simtime.Time) {
	if !n.frequent[peer] {
		return
	}
	m := n.peerQueries[peer]
	if m == nil {
		m = make(map[string]simtime.Time)
		n.peerQueries[peer] = m
	}
	for _, q := range queries {
		if cur, ok := m[q]; !ok || expiry > cur {
			m[q] = expiry
		}
	}
}

// PeerQueries returns the cached unexpired queries of frequent contacts,
// sorted for determinism.
func (n *Node) PeerQueries(now simtime.Time) []string {
	var out []string
	seen := make(map[string]bool)
	for _, m := range n.peerQueries {
		for q, exp := range m {
			if now < exp && !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	sort.Strings(out)
	return out
}

// AddMetadata stores a metadata record with its advisory popularity,
// reporting whether the URI was new to the node. Expired records are
// rejected. Higher popularity values refresh stored records.
func (n *Node) AddMetadata(m *metadata.Metadata, popularity float64, now simtime.Time) bool {
	if m.Expired(now) {
		return false
	}
	if cur, ok := n.store[m.URI]; ok {
		if popularity > cur.Popularity {
			cur.Popularity = popularity
		}
		return false
	}
	n.store[m.URI] = &StoredMetadata{
		Meta:       m.Clone(),
		Popularity: popularity,
		ReceivedAt: now,
	}
	n.enforceMetadataLimit()
	// Eviction may have rejected the newcomer itself.
	return n.store[m.URI] != nil
}

// Metadata returns the stored record for uri, or nil.
func (n *Node) Metadata(uri metadata.URI) *StoredMetadata { return n.store[uri] }

// HasMetadata reports whether uri's metadata is stored.
func (n *Node) HasMetadata(uri metadata.URI) bool { return n.store[uri] != nil }

// MetadataStore returns all stored records sorted by URI.
func (n *Node) MetadataStore() []*StoredMetadata {
	out := make([]*StoredMetadata, 0, len(n.store))
	for _, sm := range n.store {
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.URI < out[j].Meta.URI })
	return out
}

// MatchingQuery returns stored records matching the query, sorted by
// decreasing popularity then URI — the "sorted list of matched metadata"
// the user sees.
func (n *Node) MatchingQuery(query string) []*StoredMetadata {
	var out []*StoredMetadata
	for _, sm := range n.store {
		if sm.Meta.MatchesQuery(query) {
			out = append(out, sm)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Popularity != out[j].Popularity {
			return out[i].Popularity > out[j].Popularity
		}
		return out[i].Meta.URI < out[j].Meta.URI
	})
	return out
}

// Select marks uri's file for download (the user picked its metadata).
// It is a no-op without stored metadata.
func (n *Node) Select(uri metadata.URI) bool {
	sm := n.store[uri]
	if sm == nil {
		return false
	}
	ps := n.ensurePieces(uri, sm.Meta.NumPieces())
	ps.Want = true
	return true
}

func (n *Node) ensurePieces(uri metadata.URI, pieces int) *PieceSet {
	ps := n.pieces[uri]
	if ps == nil {
		ps = &PieceSet{have: make([]bool, pieces)}
		n.pieces[uri] = ps
	}
	return ps
}

// Pieces returns the piece set for uri, or nil.
func (n *Node) Pieces(uri metadata.URI) *PieceSet { return n.pieces[uri] }

// AddPiece stores piece i of uri, reporting whether it was new. Pieces
// can be cached for files the node has no metadata for only when the
// piece count is known from the carried metadata; callers pass total for
// that purpose.
func (n *Node) AddPiece(uri metadata.URI, i, total int) bool {
	ps := n.ensurePieces(uri, total)
	added := ps.add(i)
	if added && !ps.Want {
		n.enforcePieceLimit()
		// Eviction may have rejected the newcomer's cache entry.
		added = n.pieces[uri] != nil
	}
	return added
}

// GrantFullFile stores every piece (Internet download).
func (n *Node) GrantFullFile(uri metadata.URI, total int) {
	ps := n.ensurePieces(uri, total)
	for i := 0; i < total; i++ {
		ps.add(i)
	}
}

// PieceURIs returns every URI with a piece set, sorted.
func (n *Node) PieceURIs() []metadata.URI {
	out := make([]metadata.URI, 0, len(n.pieces))
	for uri := range n.pieces {
		out = append(out, uri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasFullFile reports whether all pieces of uri are stored.
func (n *Node) HasFullFile(uri metadata.URI) bool {
	ps := n.pieces[uri]
	return ps != nil && ps.Complete()
}

// WantedIncomplete returns the URIs the node wants and has not completed,
// sorted.
func (n *Node) WantedIncomplete() []metadata.URI {
	var out []metadata.URI
	for uri, ps := range n.pieces {
		if ps.Want && !ps.Complete() {
			out = append(out, uri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expire drops expired metadata and queries; piece sets of files whose
// metadata expired are kept only if complete (a finished download remains
// useful to its owner, but the node stops advertising or wanting it).
func (n *Node) Expire(now simtime.Time) {
	for q, exp := range n.queries {
		if now >= exp {
			delete(n.queries, q)
		}
	}
	for _, m := range n.peerQueries {
		for q, exp := range m {
			if now >= exp {
				delete(m, q)
			}
		}
	}
	for uri, sm := range n.store {
		if sm.Meta.Expired(now) {
			delete(n.store, uri)
			if ps := n.pieces[uri]; ps != nil && !ps.Complete() {
				delete(n.pieces, uri)
			}
		}
	}
}
