package node

import (
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var key = []byte("k")

func makeMeta(id metadata.FileID, name string) *metadata.Metadata {
	return metadata.NewSynthetic(id, name, "FOX", "desc", 1024, 256,
		0, simtime.Days(3), key)
}

func TestQueriesLifecycle(t *testing.T) {
	n := New(1, false)
	n.AddQuery("jazz", simtime.Time(simtime.Day))
	n.AddQuery("rock", simtime.Time(2*simtime.Day))
	got := n.Queries(0)
	if len(got) != 2 || got[0] != "jazz" || got[1] != "rock" {
		t.Fatalf("Queries = %v", got)
	}
	got = n.Queries(simtime.Time(simtime.Day))
	if len(got) != 1 || got[0] != "rock" {
		t.Fatalf("Queries after expiry = %v", got)
	}
}

func TestAddQueryKeepsLaterExpiry(t *testing.T) {
	n := New(1, false)
	n.AddQuery("jazz", simtime.Time(simtime.Day))
	n.AddQuery("jazz", simtime.Time(2*simtime.Day))
	n.AddQuery("jazz", simtime.Time(simtime.Hour)) // earlier: ignored
	if got := n.Queries(simtime.Time(simtime.Day)); len(got) != 1 {
		t.Fatalf("Queries = %v, want extended expiry to win", got)
	}
}

func TestPeerQueriesOnlyFromFrequentContacts(t *testing.T) {
	n := New(1, false)
	n.SetFrequent([]trace.NodeID{2})
	n.LearnPeerQueries(2, []string{"jazz"}, simtime.Time(simtime.Day))
	n.LearnPeerQueries(3, []string{"rock"}, simtime.Time(simtime.Day))
	got := n.PeerQueries(0)
	if len(got) != 1 || got[0] != "jazz" {
		t.Fatalf("PeerQueries = %v, want only the frequent contact's", got)
	}
	if !n.IsFrequent(2) || n.IsFrequent(3) {
		t.Fatal("IsFrequent wrong")
	}
}

func TestPeerQueriesDedupAndExpire(t *testing.T) {
	n := New(1, false)
	n.SetFrequent([]trace.NodeID{2, 3})
	n.LearnPeerQueries(2, []string{"jazz"}, simtime.Time(simtime.Day))
	n.LearnPeerQueries(3, []string{"jazz"}, simtime.Time(simtime.Day))
	if got := n.PeerQueries(0); len(got) != 1 {
		t.Fatalf("PeerQueries = %v, want deduplicated", got)
	}
	if got := n.PeerQueries(simtime.Time(simtime.Day)); len(got) != 0 {
		t.Fatalf("PeerQueries after expiry = %v", got)
	}
}

func TestAddMetadata(t *testing.T) {
	n := New(1, false)
	m := makeMeta(1, "jazz night")
	if !n.AddMetadata(m, 0.5, 0) {
		t.Fatal("first add not new")
	}
	if n.AddMetadata(m, 0.3, 0) {
		t.Fatal("second add reported new")
	}
	if !n.HasMetadata(m.URI) {
		t.Fatal("metadata missing")
	}
	if got := n.Metadata(m.URI).Popularity; got != 0.5 {
		t.Fatalf("popularity = %v, lower advisory must not overwrite", got)
	}
	n.AddMetadata(m, 0.9, 0)
	if got := n.Metadata(m.URI).Popularity; got != 0.9 {
		t.Fatalf("popularity = %v, higher advisory must refresh", got)
	}
}

func TestAddMetadataRejectsExpired(t *testing.T) {
	n := New(1, false)
	m := makeMeta(1, "x")
	if n.AddMetadata(m, 0.5, simtime.Time(simtime.Days(3))) {
		t.Fatal("expired metadata accepted")
	}
}

func TestAddMetadataClones(t *testing.T) {
	n := New(1, false)
	m := makeMeta(1, "x")
	n.AddMetadata(m, 0.5, 0)
	m.Name = "mutated"
	if n.Metadata(m.URI).Meta.Name == "mutated" {
		t.Fatal("node aliases caller metadata")
	}
}

func TestMatchingQuerySortedByPopularity(t *testing.T) {
	n := New(1, false)
	a := makeMeta(1, "jazz alpha")
	b := makeMeta(2, "jazz beta")
	n.AddMetadata(a, 0.2, 0)
	n.AddMetadata(b, 0.8, 0)
	got := n.MatchingQuery("jazz")
	if len(got) != 2 || got[0].Meta.URI != b.URI {
		t.Fatalf("MatchingQuery order wrong: %v", got)
	}
	if got := n.MatchingQuery("opera"); len(got) != 0 {
		t.Fatalf("MatchingQuery(opera) = %v", got)
	}
}

func TestSelectAndPieces(t *testing.T) {
	n := New(1, false)
	m := makeMeta(1, "x") // 1024/256 = 4 pieces
	if n.Select(m.URI) {
		t.Fatal("Select without metadata succeeded")
	}
	n.AddMetadata(m, 0.5, 0)
	if !n.Select(m.URI) {
		t.Fatal("Select failed")
	}
	ps := n.Pieces(m.URI)
	if ps == nil || !ps.Want || ps.Count() != 0 {
		t.Fatalf("piece set = %+v", ps)
	}
	if !n.AddPiece(m.URI, 0, 4) {
		t.Fatal("AddPiece(0) not new")
	}
	if n.AddPiece(m.URI, 0, 4) {
		t.Fatal("duplicate piece reported new")
	}
	if n.AddPiece(m.URI, 9, 4) {
		t.Fatal("out-of-range piece accepted")
	}
	for i := 1; i < 4; i++ {
		n.AddPiece(m.URI, i, 4)
	}
	if !n.HasFullFile(m.URI) {
		t.Fatal("full file not detected")
	}
	if missing := n.Pieces(m.URI).Missing(); missing != nil {
		t.Fatalf("Missing = %v", missing)
	}
}

func TestWantedIncomplete(t *testing.T) {
	n := New(1, false)
	a, b := makeMeta(1, "a"), makeMeta(2, "b")
	n.AddMetadata(a, 0.5, 0)
	n.AddMetadata(b, 0.5, 0)
	n.Select(a.URI)
	n.Select(b.URI)
	n.GrantFullFile(a.URI, a.NumPieces())
	got := n.WantedIncomplete()
	if len(got) != 1 || got[0] != b.URI {
		t.Fatalf("WantedIncomplete = %v", got)
	}
}

func TestCachedUnwantedPieces(t *testing.T) {
	// Nodes cache pieces pushed in phase two even without selecting the
	// file; the piece set exists with Want=false.
	n := New(1, false)
	if !n.AddPiece("dtn://files/9", 1, 4) {
		t.Fatal("cached piece not stored")
	}
	ps := n.Pieces("dtn://files/9")
	if ps == nil || ps.Want {
		t.Fatalf("piece set = %+v, want cached-not-wanted", ps)
	}
	if got := n.WantedIncomplete(); len(got) != 0 {
		t.Fatalf("WantedIncomplete = %v", got)
	}
}

func TestExpireDropsState(t *testing.T) {
	n := New(1, false)
	n.SetFrequent([]trace.NodeID{2})
	m := makeMeta(1, "x")
	n.AddMetadata(m, 0.5, 0)
	n.Select(m.URI)
	n.AddPiece(m.URI, 0, 4)
	n.AddQuery("x", m.Expires)
	n.LearnPeerQueries(2, []string{"y"}, m.Expires)

	n.Expire(m.Expires)
	if n.HasMetadata(m.URI) {
		t.Fatal("expired metadata kept")
	}
	if n.Pieces(m.URI) != nil {
		t.Fatal("incomplete pieces of expired file kept")
	}
	if len(n.Queries(m.Expires-1)) != 0 {
		t.Fatal("expired query kept")
	}
	if len(n.PeerQueries(m.Expires-1)) != 0 {
		t.Fatal("expired peer query kept")
	}
}

func TestExpireKeepsCompleteFiles(t *testing.T) {
	n := New(1, false)
	m := makeMeta(1, "x")
	n.AddMetadata(m, 0.5, 0)
	n.Select(m.URI)
	n.GrantFullFile(m.URI, m.NumPieces())
	n.Expire(m.Expires)
	if !n.HasFullFile(m.URI) {
		t.Fatal("completed download dropped at metadata expiry")
	}
}

func TestMetadataStoreSorted(t *testing.T) {
	n := New(1, false)
	n.AddMetadata(makeMeta(2, "b"), 0.5, 0)
	n.AddMetadata(makeMeta(1, "a"), 0.5, 0)
	n.AddMetadata(makeMeta(10, "c"), 0.5, 0)
	store := n.MetadataStore()
	if len(store) != 3 {
		t.Fatalf("store size = %d", len(store))
	}
	for i := 1; i < len(store); i++ {
		if store[i-1].Meta.URI >= store[i].Meta.URI {
			t.Fatalf("store not sorted: %v then %v", store[i-1].Meta.URI, store[i].Meta.URI)
		}
	}
}

func TestPieceSetHaveBounds(t *testing.T) {
	var ps PieceSet
	if ps.Have(0) || ps.Have(-1) {
		t.Fatal("empty piece set claims pieces")
	}
	if ps.Complete() {
		t.Fatal("empty piece set complete")
	}
}
