package daemon

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/transport"
)

// trio spins up the standard broadcast-group topology: node 1 is the
// Internet seed, nodes 2 and 3 query f0, all three are a full unicast
// mesh and share one loopback broadcast domain when withDomain is set.
type trio struct {
	seed, a, b *Daemon
}

func startTrio(t *testing.T, ctx context.Context, tr transport.Transport,
	net *transport.Loopback, withDomain, enableBcast bool, mut func(i int, cfg *Config)) trio {
	t.Helper()
	var dom *transport.BroadcastDomain
	if withDomain {
		dom = net.Domain("radio")
	}
	mk := func(i int, id trace.NodeID, cfg Config) *Daemon {
		cfg.EnableBcast = enableBcast
		if dom != nil && enableBcast {
			conn, err := dom.Join(cfg.ListenAddr)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Broadcast = conn
		}
		if mut != nil {
			mut(i, &cfg)
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start(ctx, d)
		return d
	}
	seedCfg := fastCfg(1, tr)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.FileSize = 64 * 1024 // 16 pieces at 4 KB
	seedCfg.PieceSize = 4 * 1024
	aCfg := fastCfg(2, tr)
	aCfg.ListenAddr = "n2"
	aCfg.PeerAddrs = []string{"seed"}
	bCfg := fastCfg(3, tr)
	bCfg.ListenAddr = "n3"
	bCfg.PeerAddrs = []string{"seed", "n2"}
	return trio{
		seed: mk(0, 1, seedCfg),
		a:    mk(1, 2, aCfg),
		b:    mk(2, 3, bCfg),
	}
}

// startDownloads kicks off the shared download on both leech nodes.
// Queries start after group formation on purpose: the point of these
// tests is what happens on the scheduled path, not in the pairwise
// head start before the group confirms.
func (tr3 trio) startDownloads() {
	tr3.a.AddQuery("f0")
	tr3.b.AddQuery("f0")
}

// meshLive reports whether all three nodes see both others as peers.
func meshLive(tr3 trio) bool {
	return len(tr3.seed.Manager().Peers()) == 2 &&
		len(tr3.a.Manager().Peers()) == 2 &&
		len(tr3.b.Manager().Peers()) == 2
}

// groupConfirmed reports whether d sits in a confirmed {1,2,3} group.
func groupConfirmed(d *Daemon) bool {
	st := d.Stats()
	return st.Bcast != nil && st.Bcast.Confirmed && len(st.Bcast.Group) == 3
}

// pieceTransmissions totals piece sends across both paths: every
// pairwise wire.Piece plus every PieceBcast (one broadcast = one
// transmission on the shared medium, however many nodes hear it).
func pieceTransmissions(ds ...*Daemon) uint64 {
	var n uint64
	for _, d := range ds {
		st := d.Stats()
		n += st.Transport.PiecesSent
		if st.Bcast != nil {
			n += st.Bcast.PieceBcastsSent
		}
	}
	return n
}

// TestBcastFewerTransmissions is the paper's §V claim made measurable:
// the same three-node download runs once pairwise and once as a
// broadcast group over a shared medium, and the group run must move
// the file in strictly fewer piece transmissions — one broadcast
// serves both downloaders where the pairwise path pays per receiver.
func TestBcastFewerTransmissions(t *testing.T) {
	const pieces = 16
	f0 := metadata.URIFor(0)

	runOnce := func(enableBcast bool) uint64 {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		net := transport.NewLoopback()
		defer net.Close()
		tr3 := startTrio(t, ctx, net, net, enableBcast, enableBcast, nil)
		if enableBcast {
			// Let the group confirm before the download starts, so the
			// schedule — not a pairwise head start — moves the file.
			waitFor(t, func() bool {
				return groupConfirmed(tr3.seed) && groupConfirmed(tr3.a) && groupConfirmed(tr3.b)
			}, "group confirmation")
		} else {
			waitFor(t, func() bool { return meshLive(tr3) }, "mesh")
		}
		tr3.startDownloads()
		waitFor(t, func() bool {
			return tr3.a.Completed(f0) && tr3.b.Completed(f0)
		}, "both downloads")
		return pieceTransmissions(tr3.seed, tr3.a, tr3.b)
	}

	pairwise := runOnce(false)
	grouped := runOnce(true)
	t.Logf("piece transmissions: pairwise=%d grouped=%d (%d pieces, 2 downloaders)",
		pairwise, grouped, pieces)
	if pairwise < 2*pieces {
		t.Fatalf("pairwise run sent %d piece transmissions, expected >= %d", pairwise, 2*pieces)
	}
	if grouped >= pairwise {
		t.Fatalf("grouped run sent %d piece transmissions, pairwise sent %d — no broadcast savings",
			grouped, pairwise)
	}
	// The ideal is one broadcast per piece; allow slack for grants that
	// raced the confirmation, but the bulk must have gone out once.
	if grouped > 2*pieces {
		t.Fatalf("grouped run sent %d piece transmissions for %d pieces — savings not measurable",
			grouped, pieces)
	}
}

// TestBcastSoak is the acceptance soak: three nodes on the loopback
// broadcast domain under 20% unicast drop plus a scripted partition,
// fixed seed, race detector on. The group must confirm, collapse when
// the partition silences the mesh, re-form after it heals, and both
// downloaders must still complete the shared file.
func TestBcastSoak(t *testing.T) {
	partition := 3 * time.Second
	limit := 60 * time.Second
	if testing.Short() {
		partition = time.Second
		limit = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	chaos := fault.Wrap(net, fault.Config{
		Seed:     7,
		Drop:     0.20,
		DelayMax: time.Millisecond,
		Schedule: []fault.Event{
			{At: time.Second, Partition: true},
			{At: time.Second + partition, Partition: false},
		},
	})
	bo := transport.Backoff{Min: 2 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: -1}
	tr3 := startTrio(t, ctx, chaos, net, true, true, func(i int, cfg *Config) {
		cfg.Backoff = bo
		cfg.Fault = chaos
		cfg.RetryBudget = 64
	})

	// Phase 1: the group confirms on the intact mesh; only then does
	// the shared download start, so it rides the schedule.
	waitLong(t, limit, func() bool {
		return groupConfirmed(tr3.seed) && groupConfirmed(tr3.a) && groupConfirmed(tr3.b)
	}, "initial group confirmation")
	tr3.startDownloads()

	// Phase 2: the partition silences every unicast link; liveness
	// expiry must collapse the group (pairwise fallback, not a stall)
	// even though the broadcast medium itself stays up.
	waitLong(t, limit, func() bool {
		st := tr3.a.Stats().Bcast
		return st != nil && st.Collapses >= 1 && !groupConfirmed(tr3.a)
	}, "group collapse under partition")

	// Phase 3: heal → peers return → the group re-forms and confirms.
	waitLong(t, limit, func() bool {
		st := tr3.a.Stats().Bcast
		return st != nil && st.Formations >= 2 && groupConfirmed(tr3.a) &&
			groupConfirmed(tr3.seed) && groupConfirmed(tr3.b)
	}, "group re-formation after heal")

	// Phase 4: the shared file completes on both downloaders despite
	// the drop rate — broadcasts carry it, pairwise fills any gaps.
	f0 := metadata.URIFor(0)
	waitLong(t, limit, func() bool {
		return tr3.a.Completed(f0) && tr3.b.Completed(f0)
	}, "downloads under chaos")

	// The injector's counters are surfaced through Stats (and thus
	// /stats): the chaos really ran and the JSON surface carries it.
	st := tr3.a.Stats()
	if st.Fault == nil || st.Fault.Sent == 0 {
		t.Fatalf("fault stats missing from daemon stats: %+v", st.Fault)
	}
	if st.Fault.Dropped == 0 {
		t.Fatalf("no drops injected: %+v", st.Fault)
	}
	if st.Fault.PartitionDropped+st.Fault.DialsBlocked == 0 {
		t.Fatalf("partition never touched traffic: %+v", st.Fault)
	}
	if st.Bcast.GroupHellosSent == 0 || st.Bcast.PieceBcastsRecv == 0 {
		t.Fatalf("broadcast path unused: %+v", st.Bcast)
	}
}

// TestBcastUnicastFanout: without a shared medium the group still runs,
// fanning group traffic out over the existing unicast sessions — the
// mode cmd/mbtd uses over real TCP.
func TestBcastUnicastFanout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	tr3 := startTrio(t, ctx, net, net, false, true, nil)

	waitFor(t, func() bool {
		return groupConfirmed(tr3.seed) && groupConfirmed(tr3.a) && groupConfirmed(tr3.b)
	}, "group confirmation over unicast fan-out")
	tr3.startDownloads()
	f0 := metadata.URIFor(0)
	waitFor(t, func() bool {
		return tr3.a.Completed(f0) && tr3.b.Completed(f0)
	}, "downloads over unicast fan-out")
	if got := tr3.a.Stats().Transport.GroupRecv; got == 0 {
		t.Fatal("no group messages crossed the unicast sessions")
	}
}

// TestBcastSuppressionFallsBack: while a group is confirmed the seed
// suppresses pairwise piece serving to members; the counter proves the
// suppression actually fired during the grouped download.
func TestBcastSuppressionFallsBack(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	tr3 := startTrio(t, ctx, net, net, true, true, nil)

	waitFor(t, func() bool {
		return groupConfirmed(tr3.seed) && groupConfirmed(tr3.a) && groupConfirmed(tr3.b)
	}, "group confirmation")
	tr3.startDownloads()
	f0 := metadata.URIFor(0)
	waitFor(t, func() bool {
		return tr3.a.Completed(f0) && tr3.b.Completed(f0)
	}, "grouped download")
	if got := tr3.seed.Stats().PiecesSuppressed; got == 0 {
		t.Fatal("pairwise suppression never fired during a confirmed group download")
	}
}

// TestBcastTitForTat: the cyclic-order mode also completes the shared
// download, with the grant rotating instead of the coordinator picking.
func TestBcastTitForTat(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	tr3 := startTrio(t, ctx, net, net, true, true, func(i int, cfg *Config) {
		cfg.TitForTat = true
	})

	waitFor(t, func() bool {
		return groupConfirmed(tr3.seed) && groupConfirmed(tr3.a) && groupConfirmed(tr3.b)
	}, "group confirmation")
	tr3.startDownloads()
	f0 := metadata.URIFor(0)
	waitFor(t, func() bool {
		return tr3.a.Completed(f0) && tr3.b.Completed(f0)
	}, "tit-for-tat download")
	st := tr3.a.Stats().Bcast
	if st == nil || !st.TitForTat {
		t.Fatalf("stats do not report tit-for-tat mode: %+v", st)
	}
}
