package daemon

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/transport"
)

// dhtCfg is fastCfg plus the DHT enabled at test-speed cadence.
func dhtCfg(id trace.NodeID, tr transport.Transport) Config {
	cfg := fastCfg(id, tr)
	cfg.EnableDHT = true
	cfg.DHTRepublish = 50 * time.Millisecond
	return cfg
}

// TestDHTResolveAfterServerDeath is the subsystem's reason to exist: an
// Internet node publishes its catalog into the DHT, dies, and a
// DTN-side node still resolves a keyword it had never queried while the
// server lived — entirely from the decentralized index, with zero
// legacy metadata frames received.
func TestDHTResolveAfterServerDeath(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()
	net := transport.NewLoopback()
	defer net.Close()

	srvCfg := dhtCfg(1, net)
	srvCfg.ListenAddr = "srv"
	srvCfg.InternetAccess = true
	srvCfg.PublishFiles = 2
	srv, err := New(srvCfg)
	if err != nil {
		t.Fatal(err)
	}

	n2Cfg := dhtCfg(2, net)
	n2Cfg.ListenAddr = "n2"
	n2Cfg.PeerAddrs = []string{"srv"}
	n2, err := New(n2Cfg)
	if err != nil {
		t.Fatal(err)
	}

	n3Cfg := dhtCfg(3, net)
	n3Cfg.ListenAddr = "n3"
	n3Cfg.PeerAddrs = []string{"srv", "n2"}
	n3, err := New(n3Cfg)
	if err != nil {
		t.Fatal(err)
	}

	srvDone := start(srvCtx, srv)
	start(ctx, n2)
	start(ctx, n3)

	// The server's republish tick pushes both catalog records to the K
	// closest contacts — here, everyone. Wait until both DTN nodes hold
	// DHT copies.
	waitFor(t, func() bool {
		return n2.DHT().Stats().StoresRecv >= 2 && n3.DHT().Stats().StoresRecv >= 2
	}, "catalog replicated into DHT stores")

	// Kill the Internet node. The catalog is gone; only the DHT copies
	// survive.
	srvCancel()
	select {
	case err := <-srvDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("server Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// A query issued only after the server's death. No node's legacy
	// MetadataStore holds f1 (nobody queried it while the server
	// lived), so the hello/server path cannot answer it.
	n2.AddQuery("f1")
	waitFor(t, func() bool { return n2.KnowsMetadata(metadata.URIFor(1)) }, "post-death DHT resolution")

	st := n2.Stats()
	if st.Transport.MetadataRecv != 0 {
		t.Fatalf("resolved via %d legacy metadata frames, want pure-DHT resolution", st.Transport.MetadataRecv)
	}
	if st.DHT == nil {
		t.Fatal("DHT stats missing with EnableDHT")
	}
	// Resolution came from the DHT: either the local cache (seeded by
	// the server's StoreValue fan-out) or an iterative FindValue.
	if st.DHT.CacheHits == 0 && st.DHT.LookupHits == 0 {
		t.Fatalf("dht cacheHits=%d lookupHits=%d, want at least one > 0", st.DHT.CacheHits, st.DHT.LookupHits)
	}
	if st.BadSignatures != 0 {
		t.Fatalf("bad signatures on DHT-resolved records: %d", st.BadSignatures)
	}
}

// TestDHTMissFallsBackToServer pins the discovery seam: a DHT node
// whose lookups find nothing (its only peer speaks no DHT) still
// resolves its query over the legacy hello/server path, the record is
// stored exactly once, and the verified record is folded back into the
// local DHT cache for later FindValue service.
func TestDHTMissFallsBackToServer(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	srvCfg := fastCfg(1, net) // no DHT: the legacy server only
	srvCfg.ListenAddr = "srv"
	srvCfg.InternetAccess = true
	srvCfg.PublishFiles = 1
	srv, err := New(srvCfg)
	if err != nil {
		t.Fatal(err)
	}

	leechCfg := dhtCfg(2, net)
	leechCfg.PeerAddrs = []string{"srv"}
	leechCfg.Queries = []string{"f0"}
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}

	start(ctx, srv)
	start(ctx, leech)

	waitFor(t, func() bool { return leech.Completed(metadata.URIFor(0)) }, "legacy-path download with DHT enabled")

	st := leech.Stats()
	if st.MetadataStored != 1 {
		t.Fatalf("metadata stored %d times, want exactly 1 (no double-count across DHT and legacy paths)", st.MetadataStored)
	}
	// The record arrived over the legacy path (the server re-pushes on
	// each hello until the download completes, so >= 1, not == 1).
	if st.Transport.MetadataRecv == 0 {
		t.Fatal("no legacy metadata frames received; record should have come from the server path")
	}
	if st.DHT == nil {
		t.Fatal("DHT stats missing with EnableDHT")
	}
	// The gossip-learned record is cached in the DHT store, making this
	// node a resolver for others even though its own lookup missed.
	if st.DHT.StoreSize == 0 {
		t.Fatal("verified record not folded into the DHT cache")
	}
	if st.BadSignatures != 0 || st.PiecesRejected != 0 {
		t.Fatalf("rejects: %+v", st)
	}
}

// TestDHTDialOnDemand covers the transient-session path: a contact
// learned via DHT frames (not in the peer set) is dialed on demand when
// an RPC needs it. Topology: n1 — n2 — n3 in a line; n1 and n3 share no
// session, but n3's lookup for n1's record must reach n1 by dialing the
// address learned from NodesReply.
func TestDHTDialOnDemand(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	srvCfg := dhtCfg(1, net)
	srvCfg.ListenAddr = "srv"
	srvCfg.InternetAccess = true
	srvCfg.PublishFiles = 1
	// Keep the catalog out of n3's local cache: publish fans out to the
	// K closest contacts the server knows, so a tiny K plus the line
	// topology leaves n3 reachable only via an iterative lookup.
	srvCfg.DHTK = 1
	srv, err := New(srvCfg)
	if err != nil {
		t.Fatal(err)
	}

	n2Cfg := dhtCfg(2, net)
	n2Cfg.ListenAddr = "n2"
	n2Cfg.PeerAddrs = []string{"srv"}
	n2, err := New(n2Cfg)
	if err != nil {
		t.Fatal(err)
	}

	n3Cfg := dhtCfg(3, net)
	n3Cfg.ListenAddr = "n3"
	n3Cfg.PeerAddrs = []string{"n2"}
	n3, err := New(n3Cfg)
	if err != nil {
		t.Fatal(err)
	}

	start(ctx, srv)
	start(ctx, n2)
	start(ctx, n3)

	n3.AddQuery("f0")
	waitFor(t, func() bool { return n3.KnowsMetadata(metadata.URIFor(0)) }, "lookup across the line topology")
}
