// Package daemon assembles a live MBT node: a peer.Manager for
// sessions, the per-node protocol state of internal/node, and — on
// Internet-access nodes — the concurrency-safe catalog of
// internal/server, all wired over a transport.Transport.
//
// The live message flow mirrors the simulator's phases, driven by the
// hello beacon instead of the contact schedule:
//
//	hello(queries)      → peer answers with matching metadata records
//	metadata(record)    → store; if it matches an own query, select the
//	                      file, so the next hello advertises it
//	hello(downloading)  → peer streams pieces of the advertised files
//	piece(data)         → verify against the stored record's checksums,
//	                      store; completion is reached piece by piece
//
// Ownership and locking: Daemon.mu guards the node state and per-peer
// send tracking. Handler callbacks (session goroutines) take the lock
// briefly, never send while holding it — outgoing messages go through a
// bounded outbox drained by a dedicated goroutine, so a slow peer can
// never deadlock two daemons sending to each other. Overflow drops the
// message, which the protocol absorbs: every state exchange is
// re-driven by the next hello.
package daemon

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/hello"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Defaults.
const (
	// DefaultPiecesPerHello caps piece broadcasts triggered by one
	// hello, pacing downloads to the beacon rhythm like the
	// simulator's per-contact piece budget.
	DefaultPiecesPerHello = 16
	// DefaultMetadataPerHello caps metadata answers per query per
	// hello.
	DefaultMetadataPerHello = 8
	// DefaultTTL is the synthetic catalog's metadata time-to-live.
	DefaultTTL = 3 * simtime.Day
	// DefaultFileSize gives 3 pieces at the paper's 256 KB piece size.
	DefaultFileSize = 600 * 1024
	// outboxLen bounds queued outgoing messages; overflow drops.
	outboxLen = 256
)

// Config assembles one daemon.
type Config struct {
	// ID is this node's identity.
	ID trace.NodeID
	// Transport carries all links.
	Transport transport.Transport
	// ListenAddr, when non-empty, accepts inbound sessions.
	ListenAddr string
	// PeerAddrs are outbound links maintained with backoff redial.
	PeerAddrs []string
	// InternetAccess gives this node the server catalog: it answers
	// queries and serves pieces authoritatively.
	InternetAccess bool
	// InternetNodes is the catalog's popularity denominator (default 1).
	InternetNodes int
	// PublishFiles seeds the catalog with this many synthetic files at
	// startup (Internet nodes only).
	PublishFiles int
	// FileSize and PieceSize shape the synthetic files.
	FileSize  int64
	PieceSize int
	// TTL is the synthetic metadata time-to-live.
	TTL simtime.Duration
	// Queries are the user's active searches.
	Queries []string
	// FetchMatching selects every discovered file whose metadata
	// matches an own query — the demo's stand-in for the user picking
	// from the result list.
	FetchMatching bool
	// PiecesPerHello / MetadataPerHello override the pacing defaults.
	PiecesPerHello   int
	MetadataPerHello int
	// HelloInterval and LivenessWindow tune the beacon clock (defaults:
	// the protocol's 1 s / 5 s).
	HelloInterval  time.Duration
	LivenessWindow time.Duration
	// Backoff shapes outbound redial.
	Backoff transport.Backoff
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats is the daemon's observable state, served by the HTTP endpoint.
type Stats struct {
	ID             trace.NodeID    `json:"id"`
	UptimeSeconds  float64         `json:"uptime_seconds"`
	InternetAccess bool            `json:"internet_access"`
	CatalogFiles   int             `json:"catalog_files"`
	MetadataStored int             `json:"metadata_stored"`
	Downloading    []string        `json:"downloading"`
	Completed      map[string]bool `json:"completed"`
	PiecesVerified uint64          `json:"pieces_verified"`
	PiecesRejected uint64          `json:"pieces_rejected"`
	PiecesDroppedNoMetadata uint64 `json:"pieces_dropped_no_metadata"`
	BadSignatures  uint64          `json:"bad_signatures"`
	OutboxDrops    uint64          `json:"outbox_drops"`
	Peers          []peer.Info     `json:"peers"`
	Transport      peer.Stats      `json:"transport"`
}

// sentState tracks what this daemon already pushed to one peer, so a
// 1-per-second hello does not retrigger the same pieces forever.
type sentState struct {
	pieces map[metadata.URI]map[int]bool
}

type outMsg struct {
	to  trace.NodeID
	msg wire.Msg
}

// Daemon is a live MBT node. Construct with New, drive with Run.
type Daemon struct {
	cfg     Config
	mgr     *peer.Manager
	catalog *server.Safe // nil unless InternetAccess
	epoch   time.Time
	outbox  chan outMsg

	listenMu sync.Mutex
	listener transport.Listener

	mu        sync.Mutex
	node      *node.Node
	sent      map[trace.NodeID]*sentState
	completed map[metadata.URI]bool
	counters  struct {
		piecesVerified, piecesRejected, piecesNoMeta uint64
		badSignatures, outboxDrops                   uint64
	}
}

// New validates cfg and builds the daemon (no I/O yet; Run starts it).
func New(cfg Config) (*Daemon, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("daemon: nil transport")
	}
	if cfg.ListenAddr == "" && len(cfg.PeerAddrs) == 0 {
		return nil, fmt.Errorf("daemon: no listen address and no peers")
	}
	if cfg.InternetNodes <= 0 {
		cfg.InternetNodes = 1
	}
	if cfg.PiecesPerHello <= 0 {
		cfg.PiecesPerHello = DefaultPiecesPerHello
	}
	if cfg.MetadataPerHello <= 0 {
		cfg.MetadataPerHello = DefaultMetadataPerHello
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = DefaultFileSize
	}
	if cfg.PieceSize <= 0 {
		cfg.PieceSize = metadata.DefaultPieceSize
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}

	d := &Daemon{
		cfg:       cfg,
		epoch:     time.Now(),
		outbox:    make(chan outMsg, outboxLen),
		node:      node.New(cfg.ID, cfg.InternetAccess),
		sent:      make(map[trace.NodeID]*sentState),
		completed: make(map[metadata.URI]bool),
	}
	if cfg.InternetAccess {
		cat, err := server.NewSafe(cfg.InternetNodes)
		if err != nil {
			return nil, err
		}
		d.catalog = cat
		for i := 0; i < cfg.PublishFiles; i++ {
			if err := cat.Publish(d.syntheticFile(metadata.FileID(i))); err != nil {
				return nil, err
			}
		}
	}
	for _, q := range cfg.Queries {
		d.node.AddQuery(q, d.now().Add(cfg.TTL))
	}
	d.mgr = peer.NewManager(peer.Config{
		Self:           cfg.ID,
		Hello:          d.helloContent,
		Handler:        (*handler)(d),
		HelloInterval:  cfg.HelloInterval,
		LivenessWindow: cfg.LivenessWindow,
		Backoff:        cfg.Backoff,
		Logf:           cfg.Logf,
	})
	return d, nil
}

// syntheticFile builds catalog file id, named so that the query "f<id>"
// (workload.QueryFor's convention) matches it, signed with the shared
// synthetic key so any daemon can verify it.
func (d *Daemon) syntheticFile(id metadata.FileID) *metadata.Metadata {
	name := fmt.Sprintf("f%d synthetic file", id)
	publisher := "mbtd"
	return metadata.NewSynthetic(id, name, publisher,
		fmt.Sprintf("synthetic catalog file %d served by node %d", id, d.cfg.ID),
		d.cfg.FileSize, d.cfg.PieceSize, d.now(), d.cfg.TTL,
		workload.KeyFor(publisher))
}

// now maps wall time onto the simulation clock the protocol state
// machines understand: milliseconds since daemon start.
func (d *Daemon) now() simtime.Time {
	return simtime.Time(time.Since(d.epoch) / time.Millisecond)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// helloContent supplies the beacon payload: own queries and the files
// still being downloaded.
func (d *Daemon) helloContent() ([]string, []metadata.URI) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.node.Queries(d.now()), d.node.WantedIncomplete()
}

// Addr returns the bound listen address once Run has started listening
// ("" before then) — the address peers dial when ListenAddr was ":0".
func (d *Daemon) Addr() string {
	d.listenMu.Lock()
	defer d.listenMu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr()
}

// Manager exposes the peer table for stats and tests.
func (d *Daemon) Manager() *peer.Manager { return d.mgr }

// Run starts the daemon and blocks until ctx ends. All goroutines are
// joined before it returns.
func (d *Daemon) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup

	if d.cfg.ListenAddr != "" {
		lis, err := d.cfg.Transport.Listen(d.cfg.ListenAddr)
		if err != nil {
			return fmt.Errorf("daemon: listen %s: %w", d.cfg.ListenAddr, err)
		}
		d.listenMu.Lock()
		d.listener = lis
		d.listenMu.Unlock()
		defer lis.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.mgr.Serve(ctx, lis)
		}()
	}
	for _, addr := range d.cfg.PeerAddrs {
		addr := addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.mgr.Connect(ctx, d.cfg.Transport, addr)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.mgr.Run(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.sendLoop(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.sweepLoop(ctx)
	}()

	<-ctx.Done()
	cancel()
	d.mgr.Close()
	wg.Wait()
	return ctx.Err()
}

// enqueue hands a message to the send loop without blocking; overflow
// drops it (the next hello re-drives the exchange).
func (d *Daemon) enqueue(to trace.NodeID, msg wire.Msg) {
	select {
	case d.outbox <- outMsg{to: to, msg: msg}:
	default:
		d.mu.Lock()
		d.counters.outboxDrops++
		d.mu.Unlock()
	}
}

// sendLoop drains the outbox. It is the only place handler-originated
// messages touch a Conn, so handlers never block on a peer's queue.
func (d *Daemon) sendLoop(ctx context.Context) {
	for {
		select {
		case m := <-d.outbox:
			sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			if err := d.mgr.Send(sctx, m.to, m.msg); err != nil {
				d.logf("daemon %d: send %v to node %d: %v", d.cfg.ID, m.msg.Type(), m.to, err)
			}
			cancel()
		case <-ctx.Done():
			return
		}
	}
}

// sweepLoop expires node/catalog state and forgets send tracking for
// vanished peers.
func (d *Daemon) sweepLoop(ctx context.Context) {
	interval := d.cfg.HelloInterval
	if interval <= 0 {
		interval = peer.DefaultHelloInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := d.now()
			live := make(map[trace.NodeID]bool)
			for _, id := range d.mgr.Peers() {
				live[id] = true
			}
			d.mu.Lock()
			d.node.Expire(now)
			for id := range d.sent {
				if !live[id] {
					delete(d.sent, id)
				}
			}
			d.mu.Unlock()
			if d.catalog != nil {
				d.catalog.Expire(now)
			}
		case <-ctx.Done():
			return
		}
	}
}

// Completed reports whether uri finished downloading and verified.
func (d *Daemon) Completed(uri metadata.URI) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.completed[uri]
}

// Stats snapshots the daemon for the HTTP endpoint and tests.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	st := Stats{
		ID:             d.cfg.ID,
		UptimeSeconds:  time.Since(d.epoch).Seconds(),
		InternetAccess: d.cfg.InternetAccess,
		MetadataStored: len(d.node.MetadataStore()),
		Completed:      make(map[string]bool, len(d.completed)),
		PiecesVerified: d.counters.piecesVerified,
		PiecesRejected: d.counters.piecesRejected,
		PiecesDroppedNoMetadata: d.counters.piecesNoMeta,
		BadSignatures:  d.counters.badSignatures,
		OutboxDrops:    d.counters.outboxDrops,
	}
	for _, uri := range d.node.WantedIncomplete() {
		st.Downloading = append(st.Downloading, string(uri))
	}
	for uri := range d.completed {
		st.Completed[string(uri)] = true
	}
	d.mu.Unlock()
	if d.catalog != nil {
		st.CatalogFiles = d.catalog.Len()
	}
	st.Peers = d.mgr.Table()
	st.Transport = d.mgr.Stats()
	return st
}

// handler adapts Daemon to peer.Handler without exporting the methods
// on Daemon itself.
type handler Daemon

func (h *handler) HandleHello(from trace.NodeID, msg *wire.Hello) {
	(*Daemon)(h).onHello(from, msg)
}
func (h *handler) HandleMetadata(from trace.NodeID, m *wire.Metadata) {
	(*Daemon)(h).onMetadata(from, m)
}
func (h *handler) HandlePiece(from trace.NodeID, p *wire.Piece) {
	(*Daemon)(h).onPiece(from, p)
}

// onHello is the live protocol's driver: answer the peer's queries with
// metadata, and feed its advertised downloads with pieces.
func (d *Daemon) onHello(from trace.NodeID, msg *wire.Hello) {
	now := d.now()

	// The peer set is this node's "frequent contacts" in the live
	// runtime: cache their queries so MBT's query distribution has
	// state to work with once multi-hop topologies appear.
	d.mu.Lock()
	d.node.SetFrequent(d.mgr.Peers())
	d.node.LearnPeerQueries(from, msg.Queries, now.Add(10*hello.Window))
	d.mu.Unlock()

	var out []wire.Msg
	for _, q := range msg.Queries {
		out = append(out, d.answerQuery(now, from, q)...)
	}
	for _, uri := range msg.Downloading {
		out = append(out, d.servePieces(from, uri)...)
	}
	for _, m := range out {
		d.enqueue(from, m)
	}
}

// answerQuery collects matching metadata from the catalog (Internet
// nodes) and the node's own store, best first.
func (d *Daemon) answerQuery(now simtime.Time, from trace.NodeID, q string) []wire.Msg {
	limit := d.cfg.MetadataPerHello
	var out []wire.Msg
	seen := make(map[metadata.URI]bool)
	if d.catalog != nil {
		for _, m := range d.catalog.Query(now, q, limit) {
			d.catalog.RecordRequest(now, m.URI, from)
			pop := d.catalog.Popularity(now, m.URI)
			seen[m.URI] = true
			out = append(out, &wire.Metadata{Popularity: pop, Record: *m})
		}
	}
	d.mu.Lock()
	for _, sm := range d.node.MetadataStore() {
		if len(out) >= limit {
			break
		}
		if seen[sm.Meta.URI] || sm.Meta.Expired(now) || !sm.Meta.MatchesQuery(q) {
			continue
		}
		out = append(out, &wire.Metadata{Popularity: sm.Popularity, Record: *sm.Meta.Clone()})
	}
	d.mu.Unlock()
	return out
}

// servePieces streams up to PiecesPerHello pieces of uri that this node
// can regenerate and has not yet pushed to the peer. When every piece
// has been pushed but the peer still advertises the download, tracking
// resets — the live retransmit path for lost frames.
func (d *Daemon) servePieces(from trace.NodeID, uri metadata.URI) []wire.Msg {
	now := d.now()
	var rec *metadata.Metadata
	if d.catalog != nil {
		if m, err := d.catalog.Lookup(uri); err == nil {
			rec = m
		}
	}
	canServe := func(i int) bool { return true }
	if rec == nil {
		d.mu.Lock()
		sm := d.node.Metadata(uri)
		ps := d.node.Pieces(uri)
		if sm != nil && !sm.Meta.Expired(now) && ps != nil && ps.Count() > 0 {
			rec = sm.Meta.Clone()
			have := make([]bool, ps.Total())
			for i := range have {
				have[i] = ps.Have(i)
			}
			canServe = func(i int) bool { return i < len(have) && have[i] }
		}
		d.mu.Unlock()
	}
	if rec == nil {
		return nil
	}

	d.mu.Lock()
	st := d.sent[from]
	if st == nil {
		st = &sentState{pieces: make(map[metadata.URI]map[int]bool)}
		d.sent[from] = st
	}
	sent := st.pieces[uri]
	if sent == nil {
		sent = make(map[int]bool)
		st.pieces[uri] = sent
	}
	total := rec.NumPieces()
	var idxs []int
	for i := 0; i < total && len(idxs) < d.cfg.PiecesPerHello; i++ {
		if !sent[i] && canServe(i) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		// Everything pushed, peer still wants it: assume loss, resend.
		allSent := true
		for i := 0; i < total; i++ {
			if canServe(i) && !sent[i] {
				allSent = false
				break
			}
		}
		if allSent && len(sent) > 0 {
			st.pieces[uri] = make(map[int]bool)
		}
		d.mu.Unlock()
		return nil
	}
	for _, i := range idxs {
		sent[i] = true
	}
	d.mu.Unlock()

	out := make([]wire.Msg, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, &wire.Piece{
			URI:   uri,
			Index: i,
			Total: total,
			Data:  metadata.SyntheticPiece(uri, i, rec.PieceLen(i)),
		})
	}
	return out
}

// onMetadata verifies and stores a received record; if it matches one
// of this node's own queries and FetchMatching is on, the file is
// selected for download.
func (d *Daemon) onMetadata(from trace.NodeID, m *wire.Metadata) {
	now := d.now()
	rec := m.Record.Clone()
	if err := rec.Validate(); err != nil {
		d.bumpBadSignature()
		return
	}
	if !rec.Verify(workload.KeyFor(rec.Publisher)) {
		d.bumpBadSignature()
		return
	}
	d.mu.Lock()
	added := d.node.AddMetadata(rec, m.Popularity, now)
	selected := false
	if d.cfg.FetchMatching && !d.completed[rec.URI] {
		for _, q := range d.node.Queries(now) {
			if rec.MatchesQuery(q) {
				if ps := d.node.Pieces(rec.URI); ps == nil || !ps.Complete() {
					d.node.Select(rec.URI)
					selected = true
				}
				break
			}
		}
	}
	d.mu.Unlock()
	if added {
		d.logf("daemon %d: stored metadata %s (pop %.3f) from node %d, selected=%v",
			d.cfg.ID, rec.URI, m.Popularity, from, selected)
	}
}

func (d *Daemon) bumpBadSignature() {
	d.mu.Lock()
	d.counters.badSignatures++
	d.mu.Unlock()
}

// onPiece verifies a piece against the stored record and stores it;
// the piggybacked record (MBT-QM) is processed first when present.
func (d *Daemon) onPiece(from trace.NodeID, p *wire.Piece) {
	if p.Piggyback != nil {
		d.onMetadata(from, p.Piggyback)
	}
	now := d.now()
	d.mu.Lock()
	sm := d.node.Metadata(p.URI)
	if sm == nil || sm.Meta.Expired(now) {
		d.counters.piecesNoMeta++
		d.mu.Unlock()
		return
	}
	if !p.Verify(sm.Meta) {
		d.counters.piecesRejected++
		d.mu.Unlock()
		return
	}
	added := d.node.AddPiece(p.URI, p.Index, sm.Meta.NumPieces())
	if added {
		d.counters.piecesVerified++
	}
	justDone := added && d.node.HasFullFile(p.URI) && !d.completed[p.URI]
	if justDone {
		d.completed[p.URI] = true
	}
	d.mu.Unlock()
	if justDone {
		d.logf("daemon %d: download of %s complete (%d pieces, verified) via node %d",
			d.cfg.ID, p.URI, p.Total, from)
	}
}

// CompletedURIs lists finished downloads, sorted.
func (d *Daemon) CompletedURIs() []metadata.URI {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]metadata.URI, 0, len(d.completed))
	for uri := range d.completed {
		out = append(out, uri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
