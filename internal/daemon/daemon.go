// Package daemon assembles a live MBT node: a peer.Manager for
// sessions, the per-node protocol state of internal/node, and — on
// Internet-access nodes — the concurrency-safe catalog of
// internal/server, all wired over a transport.Transport.
//
// The live message flow mirrors the simulator's phases, driven by the
// hello beacon instead of the contact schedule:
//
//	hello(queries)      → peer answers with matching metadata records
//	metadata(record)    → store; if it matches an own query, select the
//	                      file, so the next hello advertises it
//	hello(downloading)  → peer streams pieces of the advertised files
//	piece(data)         → verify against the stored record's checksums,
//	                      store; completion is reached piece by piece
//
// Ownership and locking: Daemon.mu guards the node state and per-peer
// send tracking. Handler callbacks (session goroutines) take the lock
// briefly, never send while holding it — outgoing messages go through a
// bounded outbox drained by a dedicated goroutine, so a slow peer can
// never deadlock two daemons sending to each other. Overflow drops the
// message, which the protocol absorbs: every state exchange is
// re-driven by the next hello.
package daemon

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bcast"
	"repro/internal/credit"
	"repro/internal/dht"
	"repro/internal/fault"
	"repro/internal/hello"
	"repro/internal/limit"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Defaults.
const (
	// DefaultPiecesPerHello caps piece broadcasts triggered by one
	// hello, pacing downloads to the beacon rhythm like the
	// simulator's per-contact piece budget.
	DefaultPiecesPerHello = 16
	// DefaultMetadataPerHello caps metadata answers per query per
	// hello.
	DefaultMetadataPerHello = 8
	// DefaultTTL is the synthetic catalog's metadata time-to-live.
	DefaultTTL = 3 * simtime.Day
	// DefaultFileSize gives 3 pieces at the paper's 256 KB piece size.
	DefaultFileSize = 600 * 1024
	// DefaultRetryBudget bounds out-of-band stall re-drives per
	// download; past it the daemon leans on the regular beacon alone.
	DefaultRetryBudget = 16
	// DefaultQuarantineThreshold is how many bad signatures a peer gets
	// away with before quarantine.
	DefaultQuarantineThreshold = 5
	// maxQuarantineDoublings caps quarantine growth at
	// 2^maxQuarantineDoublings × QuarantineBase.
	maxQuarantineDoublings = 3
	// outboxLen bounds queued outgoing messages; overflow drops.
	outboxLen = 256
)

// Config assembles one daemon.
type Config struct {
	// ID is this node's identity.
	ID trace.NodeID
	// Transport carries all links.
	Transport transport.Transport
	// ListenAddr, when non-empty, accepts inbound sessions.
	ListenAddr string
	// PeerAddrs are outbound links maintained with backoff redial.
	PeerAddrs []string
	// InternetAccess gives this node the server catalog: it answers
	// queries and serves pieces authoritatively.
	InternetAccess bool
	// InternetNodes is the catalog's popularity denominator (default 1).
	InternetNodes int
	// PublishFiles seeds the catalog with this many synthetic files at
	// startup (Internet nodes only).
	PublishFiles int
	// FileSize and PieceSize shape the synthetic files.
	FileSize  int64
	PieceSize int
	// TTL is the synthetic metadata time-to-live.
	TTL simtime.Duration
	// Queries are the user's active searches.
	Queries []string
	// FetchMatching selects every discovered file whose metadata
	// matches an own query — the demo's stand-in for the user picking
	// from the result list.
	FetchMatching bool
	// PiecesPerHello / MetadataPerHello override the pacing defaults.
	PiecesPerHello   int
	MetadataPerHello int
	// HelloInterval and LivenessWindow tune the beacon clock (defaults:
	// the protocol's 1 s / 5 s).
	HelloInterval  time.Duration
	LivenessWindow time.Duration
	// MaxPeers bounds the peer table (0 = unbounded): handshakes that
	// would add a peer beyond the cap are refused, so swarm-scale
	// populations cannot make any single node's session set grow without
	// limit.
	MaxPeers int
	// OnComplete, when set, is called (outside the daemon lock) each time
	// a download finishes verification — the swarm harness's completion
	// event stream.
	OnComplete func(uri metadata.URI)
	// HandshakeTimeout bounds the wait for a new connection's first
	// hello (default: the liveness window). A partitioned or black-holed
	// link fails its handshake within this deadline and falls back to
	// redial, instead of pinning the only session slot while the outage
	// lasts.
	HandshakeTimeout time.Duration
	// ResendAfter is the per-piece exchange deadline: a piece pushed to
	// a peer that keeps advertising the download becomes eligible for
	// resend once this long has passed without the peer completing
	// (default 2× the liveness window). This is the loss-recovery path:
	// a dropped or corrupted piece is re-served after one deadline
	// instead of waiting for a full catalog sweep.
	ResendAfter time.Duration
	// StallTimeout is the download-side deadline: a wanted file that
	// gains no new piece for this long counts as stalled and triggers
	// an out-of-band hello to every live peer (default 3× the liveness
	// window).
	StallTimeout time.Duration
	// RetryBudget bounds stall re-drives per download (default
	// DefaultRetryBudget); the spend is surfaced in Stats and /healthz.
	RetryBudget int
	// PeerRate, when positive, turns on per-peer admission control:
	// each peer's inbound messages dispatch at most PeerRate per second
	// sustained (burst 2×), a shed request is answered with a 429-style
	// Busy frame naming the lane and a retry window, the catalog
	// enforces the same rate on keyword queries, and the DHT on
	// Find/Store service. Zero disables (the default), matching the
	// pre-overload-protection behavior.
	PeerRate float64
	// BusyRetryAfter is the backoff window advertised in outgoing Busy
	// frames and the pacing floor for sending them (default
	// 2×HelloInterval). Received Busy windows are honored as advertised
	// but clamped to 2×LivenessWindow — a longer silence is
	// indistinguishable from churn.
	BusyRetryAfter time.Duration
	// BreakerCooldown is the per-address dial circuit breaker's open
	// window: an address that fails three straight dials is not dialed
	// again until the (jittered) cooldown passes, then one probe decides
	// (default LivenessWindow).
	BreakerCooldown time.Duration
	// OutboxLen overrides the per-class outbox capacity (default 256
	// per class); tests and benchmarks shrink it to force shedding.
	OutboxLen int
	// QuarantineThreshold and QuarantineBase shape sender quarantine:
	// a peer reaching the threshold of bad signatures is ignored for
	// QuarantineBase, doubling per repeat offense (capped at 8×) and
	// decaying back to clean while it behaves. Defaults:
	// DefaultQuarantineThreshold and the liveness window.
	QuarantineThreshold int
	QuarantineBase      time.Duration
	// Backoff shapes outbound redial.
	Backoff transport.Backoff
	// EnableBcast runs the live broadcast-group subsystem (§V): the
	// daemon derives cliques from overheard hellos and serves group
	// members through scheduled one-sender broadcasts instead of
	// pairwise streams.
	EnableBcast bool
	// TitForTat selects cyclic-order scheduling (§V-B) over the
	// cooperative coordinator (§V-A).
	TitForTat bool
	// RoundInterval paces the group engine's ticks (default
	// HelloInterval).
	RoundInterval time.Duration
	// MinGroupSize is the smallest clique worth scheduling (default
	// bcast.DefaultMinGroupSize).
	MinGroupSize int
	// Broadcast, when non-nil, is a joined shared-medium conn: group
	// traffic costs one transmission for the whole group instead of a
	// per-member unicast fan-out. The daemon pumps it but does not own
	// it.
	Broadcast transport.BroadcastConn
	// Symbols, when non-nil alongside EnableFEC, is the best-effort
	// datagram lane for fountain-coded piece data. The daemon pumps it
	// but does not own it.
	Symbols transport.SymbolConn
	// EnableFEC advertises the fountain-coded symbol plane to the
	// group; it takes effect only when Symbols is also set, and the
	// group uses it only when every member advertises it.
	EnableFEC bool
	// SymbolSize is the coded-symbol payload size (default
	// bcast.DefaultSymbolSize).
	SymbolSize int
	// RelayBudget bounds per-tick cooperative symbol relays (default
	// bcast.DefaultRelayBudget).
	RelayBudget int
	// EnableDHT runs the decentralized metadata index: a Kademlia-style
	// keyword→metadata DHT (internal/dht) layered over the existing peer
	// sessions. Internet nodes republish their catalog into it; every
	// node resolves open queries DHT-first (local cache, then iterative
	// FindValue) with the hello beacon as the legacy fallback, so keyword
	// queries keep resolving after the central catalog dies.
	EnableDHT bool
	// DHTK and DHTAlpha override the lookup width and parallelism
	// (defaults dht.DefaultK / dht.DefaultAlpha).
	DHTK     int
	DHTAlpha int
	// DHTRepublish paces the DHT tick — table refresh, catalog
	// republish, query resolution (default 10× HelloInterval).
	DHTRepublish time.Duration
	// DHTCacheCap bounds the popularity-ranked local record cache
	// (default dht.DefaultCacheCap).
	DHTCacheCap int
	// Fault, when the transport is wrapped in a fault injector, surfaces
	// its counters under /stats.
	Fault *fault.Transport
	// DataDir, when non-empty, persists node state — verified pieces,
	// learned metadata, the credit ledger, quarantine penalties — to a
	// crash-consistent WAL+snapshot store (internal/store). Every event
	// is fsynced before it takes effect in memory, and a restart against
	// the same directory resumes downloads from the persisted state: the
	// first hello advertises the recovered have-bitmaps, so peers never
	// re-send a piece that survived the crash.
	DataDir string
	// StoreFS overrides the store's filesystem (fault injection); nil
	// uses the OS.
	StoreFS store.FS
	// StoreCompactEvery overrides the store's auto-compaction threshold
	// in bytes (0 = store default, negative disables).
	StoreCompactEvery int64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats is the daemon's observable state, served by the HTTP endpoint.
type Stats struct {
	ID                      trace.NodeID    `json:"id"`
	UptimeSeconds           float64         `json:"uptime_seconds"`
	InternetAccess          bool            `json:"internet_access"`
	CatalogFiles            int             `json:"catalog_files"`
	MetadataStored          int             `json:"metadata_stored"`
	Downloading             []string        `json:"downloading"`
	Completed               map[string]bool `json:"completed"`
	PiecesVerified          uint64          `json:"pieces_verified"`
	PiecesRejected          uint64          `json:"pieces_rejected"`
	PiecesDuplicate         uint64          `json:"pieces_duplicate"`
	PiecesResent            uint64          `json:"pieces_resent"`
	PiecesDroppedNoMetadata uint64          `json:"pieces_dropped_no_metadata"`
	BadSignatures           uint64          `json:"bad_signatures"`
	// OutboxDrops is the total across classes; the per-class splits and
	// live queue depths tell control shedding (bad) from data shedding
	// (expected under load) apart.
	OutboxDrops        uint64 `json:"outbox_drops"`
	OutboxDropsControl uint64 `json:"outbox_drops_control"`
	OutboxDropsData    uint64 `json:"outbox_drops_data"`
	OutboxControlDepth int    `json:"outbox_control_depth"`
	OutboxDataDepth    int    `json:"outbox_data_depth"`
	// Busy backpressure accounting: BusyReplies counts 429-style Busy
	// frames this daemon sent (paced, so one per peer/lane per window),
	// BusyBackoffs counts stall re-drives skipped because every live
	// peer was inside an advertised Busy window, QueriesShed the catalog
	// queries refused by per-peer admission control.
	BusyReplies  uint64 `json:"busy_replies"`
	BusyBackoffs uint64 `json:"busy_backoffs"`
	QueriesShed  uint64 `json:"queries_shed,omitempty"`
	// Breakers is the dial circuit-breaker family's state.
	Breakers *limit.SetStats `json:"breakers,omitempty"`
	// Stall re-drive accounting: Stalls counts stall detections,
	// Redrives the out-of-band hellos spent on them, Retries the
	// per-download budget spend against RetryBudget.
	Stalls      uint64         `json:"stalls"`
	Redrives    uint64         `json:"redrives"`
	RetryBudget int            `json:"retry_budget"`
	Retries     map[string]int `json:"retries,omitempty"`
	// Quarantine accounting: peers currently ignored for repeated bad
	// signatures and the messages dropped on that ground.
	Quarantined     []trace.NodeID `json:"quarantined,omitempty"`
	QuarantineDrops uint64         `json:"quarantine_drops"`
	// PiecesSuppressed counts pairwise piece serves skipped because the
	// requester is a confirmed group member (the schedule serves it).
	PiecesSuppressed uint64 `json:"pieces_suppressed"`
	// PiecesSkippedHeld counts serves skipped because the peer's hello
	// have-bitmap already marked the piece held — e.g. pieces a restarted
	// peer recovered from its data directory.
	PiecesSkippedHeld uint64      `json:"pieces_skipped_held"`
	Peers             []peer.Info `json:"peers"`
	Transport         peer.Stats  `json:"transport"`
	// Bcast is the group engine's state (with EnableBcast).
	Bcast *bcast.Stats `json:"bcast,omitempty"`
	// Fault is the injector's counters (with Config.Fault).
	Fault *fault.Stats `json:"fault,omitempty"`
	// Store is the durable store's counters, including what recovery
	// replayed (with Config.DataDir).
	Store *store.Stats `json:"store,omitempty"`
	// DHT is the decentralized index's counters (with Config.EnableDHT).
	DHT *dht.Stats `json:"dht,omitempty"`
	// PiecesRefetched counts verified pieces received over the wire that
	// the restored state already held. The crash-recovery invariant is
	// that this stays zero: persisted pieces are advertised in the hello
	// have-bitmap and peers never re-serve them.
	PiecesRefetched uint64 `json:"pieces_refetched"`
	// StoreErrors counts events dropped because their durable append
	// failed; the protocol's re-drive retries them.
	StoreErrors uint64 `json:"store_errors"`
}

// sentState tracks what this daemon already pushed to one peer and
// when, so a 1-per-second hello does not retrigger the same pieces
// forever — but a piece older than ResendAfter whose receiver still
// advertises the download is assumed lost and becomes eligible again.
type sentState struct {
	pieces map[metadata.URI]map[int]time.Time
}

// downloadState tracks one wanted file's progress for stall detection.
type downloadState struct {
	lastProgress time.Time
	retries      int
}

// offender tracks one peer's bad-signature record. A peer reaching the
// quarantine threshold is ignored until the deadline; strikes double
// the penalty per repeat offense and decay away while the peer behaves.
type offender struct {
	badSigs int
	strikes int
	until   time.Time
	lastBad time.Time
}

type outMsg struct {
	to  trace.NodeID
	msg wire.Msg
}

// Daemon is a live MBT node. Construct with New, drive with Run.
type Daemon struct {
	cfg      Config
	mgr      *peer.Manager
	catalog  *server.Safe  // nil unless InternetAccess
	bcast    *bcast.Engine // nil unless EnableBcast
	store    *store.Store  // nil unless DataDir
	dht      *dht.Engine   // nil unless EnableDHT
	epoch    time.Time
	out      *outbox
	breakers *limit.Set

	// DHT plumbing: the engine's RPC deadline, the run context its sends
	// inherit, and the in-flight dial-on-demand set.
	dhtTimeout time.Duration
	dhtWG      sync.WaitGroup
	dialMu     sync.Mutex
	dhtCtx     context.Context
	dialing    map[string]bool

	listenMu sync.Mutex
	listener transport.Listener

	mu         sync.Mutex
	node       *node.Node
	sent       map[trace.NodeID]*sentState
	completed  map[metadata.URI]bool
	downloads  map[metadata.URI]*downloadState
	offenders  map[trace.NodeID]*offender
	restored   map[metadata.URI][]bool // pieces recovered from DataDir
	lastPeerAt time.Time
	// Busy bookkeeping (all under mu): peerBusy holds backoff deadlines
	// peers advertised to us per lane; lastBusyTo paces our own Busy
	// replies to one per peer/lane per window; lastShedAt is when
	// admission control last shed an inbound message (health surfaces
	// it as a degraded reason while fresh).
	peerBusy   map[trace.NodeID]map[wire.BusyScope]time.Time
	lastBusyTo map[trace.NodeID]map[wire.BusyScope]time.Time
	lastShedAt time.Time
	counters   struct {
		piecesVerified, piecesRejected, piecesNoMeta uint64
		piecesDuplicate, piecesResent                uint64
		badSignatures                                uint64
		stalls, redrives, quarantineDrops            uint64
		piecesSuppressed, piecesSkippedHeld          uint64
		piecesRefetched, storeErrors                 uint64
		busySent, busyBackoffs                       uint64
	}
}

// New validates cfg and builds the daemon (no I/O yet; Run starts it).
func New(cfg Config) (*Daemon, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("daemon: nil transport")
	}
	if cfg.ListenAddr == "" && len(cfg.PeerAddrs) == 0 {
		return nil, fmt.Errorf("daemon: no listen address and no peers")
	}
	if cfg.InternetNodes <= 0 {
		cfg.InternetNodes = 1
	}
	if cfg.PiecesPerHello <= 0 {
		cfg.PiecesPerHello = DefaultPiecesPerHello
	}
	if cfg.MetadataPerHello <= 0 {
		cfg.MetadataPerHello = DefaultMetadataPerHello
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = DefaultFileSize
	}
	if cfg.PieceSize <= 0 {
		cfg.PieceSize = metadata.DefaultPieceSize
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = peer.DefaultHelloInterval
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = peer.DefaultLivenessWindow
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = cfg.LivenessWindow
	}
	if cfg.ResendAfter <= 0 {
		cfg.ResendAfter = 2 * cfg.LivenessWindow
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 3 * cfg.LivenessWindow
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.QuarantineThreshold <= 0 {
		cfg.QuarantineThreshold = DefaultQuarantineThreshold
	}
	if cfg.QuarantineBase <= 0 {
		cfg.QuarantineBase = cfg.LivenessWindow
	}
	if cfg.RoundInterval <= 0 {
		cfg.RoundInterval = cfg.HelloInterval
	}
	if cfg.DHTRepublish <= 0 {
		cfg.DHTRepublish = 10 * cfg.HelloInterval
	}
	if cfg.BusyRetryAfter <= 0 {
		cfg.BusyRetryAfter = 2 * cfg.HelloInterval
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = cfg.LivenessWindow
	}
	if cfg.OutboxLen <= 0 {
		cfg.OutboxLen = outboxLen
	}

	d := &Daemon{
		cfg:        cfg,
		epoch:      time.Now(),
		out:        newOutbox(cfg.OutboxLen),
		node:       node.New(cfg.ID, cfg.InternetAccess),
		sent:       make(map[trace.NodeID]*sentState),
		completed:  make(map[metadata.URI]bool),
		downloads:  make(map[metadata.URI]*downloadState),
		offenders:  make(map[trace.NodeID]*offender),
		restored:   make(map[metadata.URI][]bool),
		peerBusy:   make(map[trace.NodeID]map[wire.BusyScope]time.Time),
		lastBusyTo: make(map[trace.NodeID]map[wire.BusyScope]time.Time),
	}
	d.breakers = limit.NewSet(limit.BreakerConfig{Cooldown: cfg.BreakerCooldown})
	if cfg.DataDir != "" {
		st, err := store.Open(store.Options{
			Dir:          cfg.DataDir,
			FS:           cfg.StoreFS,
			CompactEvery: cfg.StoreCompactEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("daemon: open data dir: %w", err)
		}
		d.store = st
		d.restore(st.State())
	}
	if cfg.InternetAccess {
		cat, err := server.NewSafe(cfg.InternetNodes)
		if err != nil {
			return nil, err
		}
		d.catalog = cat
		if cfg.PeerRate > 0 {
			// The catalog gets the same per-peer rate as the dispatch
			// layer, counted per second over a sliding window.
			cat.SetQueryLimit(int(cfg.PeerRate), time.Second, nil)
		}
		for i := 0; i < cfg.PublishFiles; i++ {
			if err := cat.Publish(d.syntheticFile(metadata.FileID(i))); err != nil {
				return nil, err
			}
		}
	}
	for _, q := range cfg.Queries {
		d.node.AddQuery(q, d.now().Add(cfg.TTL))
	}
	if cfg.EnableDHT {
		// The RPC deadline tracks the liveness window so a dial-on-demand
		// (dial + hello handshake) fits inside one request's patience.
		d.dhtTimeout = cfg.LivenessWindow / 2
		if d.dhtTimeout < dht.DefaultRequestTimeout {
			d.dhtTimeout = dht.DefaultRequestTimeout
		}
		d.dialing = make(map[string]bool)
		d.dht = dht.New(dht.Config{
			Self:           cfg.ID,
			Addr:           cfg.ListenAddr,
			K:              cfg.DHTK,
			Alpha:          cfg.DHTAlpha,
			RequestTimeout: d.dhtTimeout,
			CacheCap:       cfg.DHTCacheCap,
			Send:           d.dhtSend,
			Verify:         d.dhtVerify,
			ServerRate:     cfg.PeerRate,
			BusyRetryAfter: cfg.BusyRetryAfter,
			Logf:           cfg.Logf,
		})
	}
	if cfg.EnableBcast {
		d.bcast = bcast.New(bcast.Config{
			Self:         cfg.ID,
			TitForTat:    cfg.TitForTat,
			MinGroupSize: cfg.MinGroupSize,
			Window:       cfg.LivenessWindow,
			Store:        (*bcastStore)(d),
			Send:         (*bcastSender)(d),
			FEC:          cfg.EnableFEC && cfg.Symbols != nil,
			SymbolSize:   cfg.SymbolSize,
			RelayBudget:  cfg.RelayBudget,
			Logf:         cfg.Logf,
		})
	}
	d.mgr = peer.NewManager(peer.Config{
		Self:             cfg.ID,
		Hello:            d.helloContent,
		Handler:          (*handler)(d),
		HelloInterval:    cfg.HelloInterval,
		LivenessWindow:   cfg.LivenessWindow,
		HandshakeTimeout: cfg.HandshakeTimeout,
		MaxPeers:         cfg.MaxPeers,
		Backoff:          cfg.Backoff,
		InboundRate:      cfg.PeerRate,
		OnShed:           d.onShed,
		DialBreakers:     d.breakers,
		Logf:             cfg.Logf,
	})
	return d, nil
}

// syntheticFile builds catalog file id, named so that the query "f<id>"
// (workload.QueryFor's convention) matches it, signed with the shared
// synthetic key so any daemon can verify it.
func (d *Daemon) syntheticFile(id metadata.FileID) *metadata.Metadata {
	name := fmt.Sprintf("f%d synthetic file", id)
	publisher := "mbtd"
	return metadata.NewSynthetic(id, name, publisher,
		fmt.Sprintf("synthetic catalog file %d served by node %d", id, d.cfg.ID),
		d.cfg.FileSize, d.cfg.PieceSize, d.now(), d.cfg.TTL,
		workload.KeyFor(publisher))
}

// now maps wall time onto the simulation clock the protocol state
// machines understand: milliseconds since daemon start.
func (d *Daemon) now() simtime.Time {
	return simtime.Time(time.Since(d.epoch) / time.Millisecond)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// helloContent supplies the beacon payload: own queries, the files
// still being downloaded, and per-file have-bitmaps so peers serve only
// missing pieces. The bitmap matters most after a restart: pieces
// recovered from the data directory are advertised from the first
// beacon, so no peer ever re-sends what already survived the crash.
func (d *Daemon) helloContent() ([]string, []metadata.URI, []wire.GroupWant) {
	d.mu.Lock()
	defer d.mu.Unlock()
	downloading := d.node.WantedIncomplete()
	have := make([]wire.GroupWant, 0, len(downloading))
	for _, uri := range downloading {
		ps := d.node.Pieces(uri)
		if ps == nil {
			continue
		}
		w := wire.NewGroupWant(uri, ps.Total(), true)
		for i := 0; i < ps.Total(); i++ {
			if ps.Have(i) {
				w.SetHave(i)
			}
		}
		have = append(have, *w)
	}
	return d.node.Queries(d.now()), downloading, have
}

// restore folds the recovered durable state back into the runtime: the
// node re-learns persisted metadata and pieces, interrupted downloads
// are re-selected so the next hello advertises them (with have-bitmaps
// covering everything recovered), the credit ledger is replayed, and
// quarantine penalties still in the future are re-armed. Called from
// New before any I/O starts, so no lock is needed.
func (d *Daemon) restore(st *store.State) {
	now := d.now()
	for uri, f := range st.Files {
		if f.Meta != nil {
			d.node.AddMetadata(f.Meta.Clone(), f.Popularity, now)
		}
		held := make([]bool, f.Total)
		for i, have := range f.Have {
			if have {
				d.node.AddPiece(uri, i, f.Total)
				held[i] = true
			}
		}
		d.restored[uri] = held
		if f.Selected {
			if d.node.HasFullFile(uri) {
				d.completed[uri] = true
			} else if d.node.Select(uri) {
				d.downloads[uri] = &downloadState{}
			}
		}
	}
	for p, c := range st.Credit {
		d.node.Ledger.Add(p, c)
	}
	wall := time.Now()
	for p, q := range st.Quarantine {
		until := time.UnixMilli(q.UntilUnixMilli)
		if until.After(wall) {
			d.offenders[p] = &offender{strikes: q.Strikes, until: until, lastBad: wall}
		}
	}
}

// persist appends one record to the durable store, if configured,
// returning whether the event may take effect. The caller holds d.mu;
// the fsync inside Append is the cost of "acknowledged means durable".
// On failure the event must be dropped — the protocol's hello re-drive
// will deliver it again — so memory never runs ahead of disk.
func (d *Daemon) persist(rec store.Record) bool {
	if d.store == nil {
		return true
	}
	if err := d.store.Append(rec); err != nil {
		d.counters.storeErrors++
		d.logf("daemon %d: store append %v: %v", d.cfg.ID, rec.RecordKind(), err)
		return false
	}
	return true
}

// Addr returns the bound listen address once Run has started listening
// ("" before then) — the address peers dial when ListenAddr was ":0".
func (d *Daemon) Addr() string {
	d.listenMu.Lock()
	defer d.listenMu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr()
}

// Manager exposes the peer table for stats and tests.
func (d *Daemon) Manager() *peer.Manager { return d.mgr }

// Run starts the daemon and blocks until ctx ends. All goroutines are
// joined before it returns.
func (d *Daemon) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	if d.dht != nil {
		d.dialMu.Lock()
		d.dhtCtx = ctx
		d.dialMu.Unlock()
	}

	if d.cfg.ListenAddr != "" {
		lis, err := d.cfg.Transport.Listen(d.cfg.ListenAddr)
		if err != nil {
			return fmt.Errorf("daemon: listen %s: %w", d.cfg.ListenAddr, err)
		}
		d.listenMu.Lock()
		d.listener = lis
		d.listenMu.Unlock()
		defer lis.Close()
		if d.dht != nil {
			// Advertise the bound address (ListenAddr may have been ":0").
			d.dht.SetAddr(lis.Addr())
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.mgr.Serve(ctx, lis)
		}()
	}
	for _, addr := range d.cfg.PeerAddrs {
		addr := addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.mgr.Connect(ctx, d.cfg.Transport, addr)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.mgr.Run(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.sendLoop(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.sweepLoop(ctx)
	}()
	if d.dht != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.dhtLoop(ctx)
		}()
	}
	if d.bcast != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.bcastLoop(ctx)
		}()
		if d.cfg.Broadcast != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.bcastPump(ctx)
			}()
		}
		if d.cfg.Symbols != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.symbolPump(ctx)
			}()
		}
	}

	<-ctx.Done()
	cancel()
	d.mgr.Close()
	wg.Wait()
	d.dhtWG.Wait()
	if d.store != nil {
		// Graceful shutdown flush: fold the WAL into a snapshot so the
		// next start replays one compact image instead of a long log.
		// Every record is already fsynced, so a failure here loses
		// nothing — the WAL remains the source of truth.
		if err := d.store.Close(); err != nil {
			d.logf("daemon %d: store close: %v", d.cfg.ID, err)
		}
	}
	return ctx.Err()
}

// enqueue hands a message to the send loop without blocking; overflow
// sheds it against its frame class (the next hello re-drives the
// exchange). The report is advisory — most callers fire and forget.
func (d *Daemon) enqueue(to trace.NodeID, msg wire.Msg) bool {
	return d.out.push(to, msg)
}

// sendLoop drains the outbox, control frames before data frames. It is
// the only place handler-originated messages touch a Conn, so handlers
// never block on a peer's queue.
func (d *Daemon) sendLoop(ctx context.Context) {
	for {
		m, ok := d.out.pop()
		if !ok {
			select {
			case <-d.out.wake:
				continue
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := d.mgr.Send(sctx, m.to, m.msg); err != nil {
			d.logf("daemon %d: send %v to node %d: %v", d.cfg.ID, m.msg.Type(), m.to, err)
		}
		cancel()
	}
}

// sweepLoop ticks sweepOnce at the hello interval.
func (d *Daemon) sweepLoop(ctx context.Context) {
	t := time.NewTicker(d.cfg.HelloInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.sweepOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// sweepOnce expires node/catalog state, forgets send tracking for
// vanished peers, decays quarantine strikes of peers that have since
// behaved, and re-drives stalled downloads: a wanted file with no new
// piece inside StallTimeout spends one unit of its retry budget on an
// immediate out-of-band hello to every live peer, which prompts any
// holder to re-serve (its per-piece ResendAfter deadlines decide what).
func (d *Daemon) sweepOnce(ctx context.Context) {
	now := d.now()
	wall := time.Now()
	live := make(map[trace.NodeID]bool)
	for _, id := range d.mgr.Peers() {
		live[id] = true
	}
	nudge := false
	d.mu.Lock()
	if len(live) > 0 {
		d.lastPeerAt = wall
	}
	d.node.Expire(now)
	for id := range d.sent {
		if !live[id] {
			delete(d.sent, id)
		}
	}
	for uri, ds := range d.downloads {
		if d.completed[uri] {
			delete(d.downloads, uri)
		} else if ds.lastProgress.IsZero() {
			ds.lastProgress = wall
		}
	}
	// Fold in Busy state: prune expired windows, and collect the peers
	// still inside a piece- or query-lane window — re-drives compose
	// with backpressure by skipping them, and when every live peer is
	// backing us off, the re-drive itself waits without spending budget.
	busy := make(map[trace.NodeID]bool)
	for id, scopes := range d.peerBusy {
		for sc, until := range scopes {
			if wall.After(until) {
				delete(scopes, sc)
				continue
			}
			if sc == wire.BusyPiece || sc == wire.BusyQuery {
				busy[id] = true
			}
		}
		if len(scopes) == 0 {
			delete(d.peerBusy, id)
		}
	}
	for id, scopes := range d.lastBusyTo {
		for sc, at := range scopes {
			if wall.Sub(at) > d.cfg.BusyRetryAfter {
				delete(scopes, sc)
			}
		}
		if len(scopes) == 0 {
			delete(d.lastBusyTo, id)
		}
	}
	allBusy := len(live) > 0
	for id := range live {
		if !busy[id] {
			allBusy = false
			break
		}
	}
	for _, uri := range d.node.WantedIncomplete() {
		ds := d.downloads[uri]
		if ds == nil {
			ds = &downloadState{lastProgress: wall}
			d.downloads[uri] = ds
			continue
		}
		if wall.Sub(ds.lastProgress) < d.cfg.StallTimeout {
			continue
		}
		d.counters.stalls++
		ds.lastProgress = wall // re-arm the stall timer
		if ds.retries >= d.cfg.RetryBudget {
			continue // budget spent: the regular beacon keeps trying
		}
		if allBusy {
			// Every live peer advertised Busy on the lanes a re-drive
			// would hit: honor the windows instead of spending budget on
			// a hello that would only be shed.
			d.counters.busyBackoffs++
			continue
		}
		ds.retries++
		d.counters.redrives++
		nudge = true
	}
	for id, off := range d.offenders {
		if wall.Sub(off.lastBad) > 4*d.cfg.QuarantineBase && wall.After(off.until) {
			if off.strikes > 0 {
				off.strikes--
			} else {
				off.badSigs = 0
			}
			off.lastBad = wall
			if off.strikes <= 0 && off.badSigs == 0 {
				delete(d.offenders, id)
			}
		}
	}
	d.mu.Unlock()
	if d.catalog != nil {
		d.catalog.Expire(now)
	}
	if nudge {
		d.logf("daemon %d: download stalled; re-driving live peers", d.cfg.ID)
		d.mgr.BroadcastExcept(ctx, func(id trace.NodeID) bool { return busy[id] })
	}
}

// AddQuery registers a new search at runtime, as if it had been in
// Config.Queries: the next hello beacon advertises it.
func (d *Daemon) AddQuery(q string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.node.AddQuery(q, d.now().Add(d.cfg.TTL))
}

// Pause suspends the node's radio without tearing it down: beacons stop
// and inbound messages are dropped, so peers see exactly what a node
// that walked out of range looks like. State, sessions, and goroutines
// all stay put; Resume turns the radio back on. This is the swarm
// harness's scenario hook for scripted attendance (diurnal schedules,
// duty cycles) where a full kill/restart would be the wrong model.
func (d *Daemon) Pause() { d.mgr.SetPaused(true) }

// Resume turns a paused node's radio back on; liveness re-establishes
// within a hello interval on surviving sessions, and redial covers the
// rest.
func (d *Daemon) Resume() { d.mgr.SetPaused(false) }

// Paused reports whether the radio is suspended.
func (d *Daemon) Paused() bool { return d.mgr.Paused() }

// Have reports the piece bitmap this node holds for uri (nil when the
// file is unknown). The swarm harness unions these across nodes to
// decide whether a file is still reconstructable after seeder death —
// the availability metric's ground truth.
func (d *Daemon) Have(uri metadata.URI) []bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := d.node.Pieces(uri)
	if ps == nil {
		return nil
	}
	out := make([]bool, ps.Total())
	for i := range out {
		out[i] = ps.Have(i)
	}
	return out
}

// CreditSnapshot copies the node's tit-for-tat ledger — the harness
// computes cross-swarm credit dispersion from these.
func (d *Daemon) CreditSnapshot() map[trace.NodeID]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.node.Ledger.Snapshot()
}

// Completed reports whether uri finished downloading and verified.
func (d *Daemon) Completed(uri metadata.URI) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.completed[uri]
}

// Stats snapshots the daemon for the HTTP endpoint and tests.
func (d *Daemon) Stats() Stats {
	wall := time.Now()
	d.mu.Lock()
	st := Stats{
		ID:                      d.cfg.ID,
		UptimeSeconds:           time.Since(d.epoch).Seconds(),
		InternetAccess:          d.cfg.InternetAccess,
		MetadataStored:          len(d.node.MetadataStore()),
		Completed:               make(map[string]bool, len(d.completed)),
		PiecesVerified:          d.counters.piecesVerified,
		PiecesRejected:          d.counters.piecesRejected,
		PiecesDuplicate:         d.counters.piecesDuplicate,
		PiecesResent:            d.counters.piecesResent,
		PiecesDroppedNoMetadata: d.counters.piecesNoMeta,
		BadSignatures:           d.counters.badSignatures,
		BusyReplies:             d.counters.busySent,
		BusyBackoffs:            d.counters.busyBackoffs,
		Stalls:                  d.counters.stalls,
		Redrives:                d.counters.redrives,
		RetryBudget:             d.cfg.RetryBudget,
		QuarantineDrops:         d.counters.quarantineDrops,
		PiecesSuppressed:        d.counters.piecesSuppressed,
		PiecesSkippedHeld:       d.counters.piecesSkippedHeld,
		PiecesRefetched:         d.counters.piecesRefetched,
		StoreErrors:             d.counters.storeErrors,
	}
	for _, uri := range d.node.WantedIncomplete() {
		st.Downloading = append(st.Downloading, string(uri))
	}
	for uri := range d.completed {
		st.Completed[string(uri)] = true
	}
	for uri, ds := range d.downloads {
		if ds.retries > 0 {
			if st.Retries == nil {
				st.Retries = make(map[string]int)
			}
			st.Retries[string(uri)] = ds.retries
		}
	}
	for id, off := range d.offenders {
		if wall.Before(off.until) {
			st.Quarantined = append(st.Quarantined, id)
		}
	}
	sort.Slice(st.Quarantined, func(i, j int) bool { return st.Quarantined[i] < st.Quarantined[j] })
	d.mu.Unlock()
	dropCtl, dropData := d.out.dropCounts()
	st.OutboxDropsControl = dropCtl
	st.OutboxDropsData = dropData
	st.OutboxDrops = dropCtl + dropData
	st.OutboxControlDepth, st.OutboxDataDepth = d.out.depths()
	if bs := d.breakers.Stats(); bs.Breakers > 0 {
		st.Breakers = &bs
	}
	if d.catalog != nil {
		st.CatalogFiles = d.catalog.Len()
		st.QueriesShed = d.catalog.QueriesShed()
	}
	st.Peers = d.mgr.Table()
	st.Transport = d.mgr.Stats()
	if d.bcast != nil {
		bs := d.bcast.Stats()
		st.Bcast = &bs
	}
	if d.cfg.Fault != nil {
		fs := d.cfg.Fault.Stats()
		st.Fault = &fs
	}
	if d.store != nil {
		ss := d.store.Stats()
		st.Store = &ss
	}
	if d.dht != nil {
		ds := d.dht.Stats()
		st.DHT = &ds
	}
	return st
}

// handler adapts Daemon to peer.Handler without exporting the methods
// on Daemon itself.
type handler Daemon

func (h *handler) HandleHello(from trace.NodeID, msg *wire.Hello) {
	(*Daemon)(h).onHello(from, msg)
}
func (h *handler) HandleMetadata(from trace.NodeID, m *wire.Metadata) {
	(*Daemon)(h).onMetadata(from, m)
}
func (h *handler) HandlePiece(from trace.NodeID, p *wire.Piece) {
	(*Daemon)(h).onPiece(from, p)
}
func (h *handler) HandleBusy(from trace.NodeID, b *wire.Busy) {
	(*Daemon)(h).onBusy(from, b)
}

// quarantined reports (and counts) whether a message from the peer
// must be dropped because the sender is serving a bad-signature
// quarantine.
func (d *Daemon) quarantined(from trace.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := d.offenders[from]
	if off == nil || !time.Now().Before(off.until) {
		return false
	}
	d.counters.quarantineDrops++
	return true
}

// onHello is the live protocol's driver: answer the peer's queries with
// metadata, and feed its advertised downloads with pieces.
func (d *Daemon) onHello(from trace.NodeID, msg *wire.Hello) {
	if d.quarantined(from) {
		return
	}
	now := d.now()

	// The peer set is this node's "frequent contacts" in the live
	// runtime: cache their queries so MBT's query distribution has
	// state to work with once multi-hop topologies appear.
	d.mu.Lock()
	d.node.SetFrequent(d.mgr.Peers())
	d.node.LearnPeerQueries(from, msg.Queries, now.Add(10*hello.Window))
	d.mu.Unlock()

	// The heard list is the raw material of the clique graph: the sender
	// vouches it can receive each listed node.
	if d.bcast != nil {
		d.bcast.Observe(from, msg.Heard)
	}
	// Every live peer is a DHT contact. Its dialable address is learned
	// later from its own DHT frames; an empty one routes over the
	// session we already share.
	if d.dht != nil {
		d.dht.Observe(from, "")
	}

	var out []wire.Msg
	for _, q := range msg.Queries {
		out = append(out, d.answerQuery(now, from, q)...)
	}
	// A confirmed group member's downloads are the schedule's job: one
	// broadcast serves every member, so pairwise streams to it would
	// only burn the medium. Collapse flips InGroup off and this path
	// resumes — the pairwise fallback.
	if d.bcast != nil && len(msg.Downloading) > 0 && d.bcast.InGroup(from) {
		d.mu.Lock()
		d.counters.piecesSuppressed += uint64(len(msg.Downloading))
		d.mu.Unlock()
	} else {
		// Index the peer's have-bitmaps so the serve loop can skip pieces
		// it already holds (e.g. everything it recovered from disk).
		peerHave := make(map[metadata.URI]*wire.GroupWant, len(msg.Have))
		for i := range msg.Have {
			peerHave[msg.Have[i].URI] = &msg.Have[i]
		}
		for _, uri := range msg.Downloading {
			out = append(out, d.servePieces(from, uri, peerHave[uri])...)
		}
	}
	for _, m := range out {
		d.enqueue(from, m)
	}
}

// answerQuery collects matching metadata from the catalog (Internet
// nodes) and the node's own store, best first. Catalog admission
// control runs first: a peer past its query rate gets one paced Busy
// on the query lane instead of catalog work.
func (d *Daemon) answerQuery(now simtime.Time, from trace.NodeID, q string) []wire.Msg {
	if d.catalog != nil && !d.catalog.AllowQuery(from) {
		d.sendBusy(from, wire.BusyQuery)
		return nil
	}
	limit := d.cfg.MetadataPerHello
	var out []wire.Msg
	seen := make(map[metadata.URI]bool)
	if d.catalog != nil {
		for _, m := range d.catalog.Query(now, q, limit) {
			d.catalog.RecordRequest(now, m.URI, from)
			pop := d.catalog.Popularity(now, m.URI)
			seen[m.URI] = true
			out = append(out, &wire.Metadata{Popularity: pop, Record: *m})
		}
	}
	d.mu.Lock()
	for _, sm := range d.node.MetadataStore() {
		if len(out) >= limit {
			break
		}
		if seen[sm.Meta.URI] || sm.Meta.Expired(now) || !sm.Meta.MatchesQuery(q) {
			continue
		}
		out = append(out, &wire.Metadata{Popularity: sm.Popularity, Record: *sm.Meta.Clone()})
	}
	d.mu.Unlock()
	return out
}

// servePieces streams up to PiecesPerHello pieces of uri that this node
// can regenerate and has not yet pushed to the peer — plus any piece
// whose push is older than ResendAfter while the peer still advertises
// the download: the advertisement is the implicit NACK, and the
// per-piece deadline is the live retransmit path for lost or corrupted
// frames. peerHave, when non-nil, is the peer's advertised bitmap for
// uri; pieces it already marks held are never served, so a restarted
// downloader's persisted pieces cross the wire zero times.
func (d *Daemon) servePieces(from trace.NodeID, uri metadata.URI, peerHave *wire.GroupWant) []wire.Msg {
	now := d.now()
	var rec *metadata.Metadata
	if d.catalog != nil {
		if m, err := d.catalog.Lookup(uri); err == nil {
			rec = m
		}
	}
	canServe := func(i int) bool { return true }
	if rec == nil {
		d.mu.Lock()
		sm := d.node.Metadata(uri)
		ps := d.node.Pieces(uri)
		if sm != nil && !sm.Meta.Expired(now) && ps != nil && ps.Count() > 0 {
			rec = sm.Meta.Clone()
			have := make([]bool, ps.Total())
			for i := range have {
				have[i] = ps.Have(i)
			}
			canServe = func(i int) bool { return i < len(have) && have[i] }
		}
		d.mu.Unlock()
	}
	if rec == nil {
		return nil
	}

	wall := time.Now()
	d.mu.Lock()
	st := d.sent[from]
	if st == nil {
		st = &sentState{pieces: make(map[metadata.URI]map[int]time.Time)}
		d.sent[from] = st
	}
	sent := st.pieces[uri]
	if sent == nil {
		sent = make(map[int]time.Time)
		st.pieces[uri] = sent
	}
	total := rec.NumPieces()
	var idxs []int
	resent := 0
	skippedHeld := 0
	for i := 0; i < total && len(idxs) < d.cfg.PiecesPerHello; i++ {
		if !canServe(i) {
			continue
		}
		if peerHave != nil && peerHave.HaveBit(i) {
			skippedHeld++
			continue
		}
		at, pushed := sent[i]
		if pushed && wall.Sub(at) < d.cfg.ResendAfter {
			continue
		}
		if pushed {
			resent++
		}
		idxs = append(idxs, i)
	}
	d.counters.piecesSkippedHeld += uint64(skippedHeld)
	if len(idxs) == 0 {
		d.mu.Unlock()
		return nil
	}
	for _, i := range idxs {
		sent[i] = wall
	}
	d.counters.piecesResent += uint64(resent)
	d.mu.Unlock()

	out := make([]wire.Msg, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, &wire.Piece{
			URI:   uri,
			Index: i,
			Total: total,
			Data:  metadata.SyntheticPiece(uri, i, rec.PieceLen(i)),
		})
	}
	return out
}

// onMetadata verifies and stores a received record; if it matches one
// of this node's own queries and FetchMatching is on, the file is
// selected for download.
func (d *Daemon) onMetadata(from trace.NodeID, m *wire.Metadata) {
	if d.quarantined(from) {
		return
	}
	now := d.now()
	rec := m.Record.Clone()
	if err := rec.Validate(); err != nil {
		d.bumpBadSignature(from)
		return
	}
	if !rec.Verify(workload.KeyFor(rec.Publisher)) {
		d.bumpBadSignature(from)
		return
	}
	d.mu.Lock()
	// Decide the full effect first so one durable record captures it:
	// a new record, a selection, or both.
	selected := false
	if d.cfg.FetchMatching && !d.completed[rec.URI] {
		for _, q := range d.node.Queries(now) {
			if rec.MatchesQuery(q) {
				if ps := d.node.Pieces(rec.URI); ps == nil || !ps.Complete() {
					selected = true
				}
				break
			}
		}
	}
	isNew := !d.node.HasMetadata(rec.URI)
	wanted := false
	if ps := d.node.Pieces(rec.URI); ps != nil && ps.Want {
		wanted = true
	}
	if isNew || (selected && !wanted) {
		// Log before apply (see onPiece); re-learned records and repeat
		// selections change nothing durable and are not re-logged.
		if !d.persist(&store.MetadataRecord{Popularity: m.Popularity, Meta: *rec, Selected: selected}) {
			d.mu.Unlock()
			return
		}
	}
	added := d.node.AddMetadata(rec, m.Popularity, now)
	if selected {
		d.node.Select(rec.URI)
		if d.downloads[rec.URI] == nil {
			d.downloads[rec.URI] = &downloadState{lastProgress: time.Now()}
		}
	}
	d.mu.Unlock()
	if added && d.dht != nil {
		// Fold the verified record into the DHT cache: a DTN-side node
		// answers FindValue from gossip-learned state, no Internet path.
		d.dhtCacheRecord(&wire.Metadata{Popularity: m.Popularity, Record: *rec.Clone()})
	}
	if added {
		d.logf("daemon %d: stored metadata %s (pop %.3f) from node %d, selected=%v",
			d.cfg.ID, rec.URI, m.Popularity, from, selected)
	}
}

// bumpBadSignature records a failed record verification from a peer
// and escalates to quarantine when the peer keeps doing it: at
// QuarantineThreshold bad signatures the peer is ignored for
// QuarantineBase, doubling per repeated offense up to 8×. The strike
// count decays in sweepOnce while the peer behaves, so a link that was
// merely corrupting in flight earns its way back to full service.
func (d *Daemon) bumpBadSignature(from trace.NodeID) {
	wall := time.Now()
	var penalty time.Duration
	d.mu.Lock()
	d.counters.badSignatures++
	off := d.offenders[from]
	if off == nil {
		off = &offender{}
		d.offenders[from] = off
	}
	off.badSigs++
	off.lastBad = wall
	if off.badSigs >= d.cfg.QuarantineThreshold {
		off.badSigs = 0
		off.strikes++
		doublings := off.strikes - 1
		if doublings > maxQuarantineDoublings {
			doublings = maxQuarantineDoublings
		}
		penalty = d.cfg.QuarantineBase * (1 << doublings)
		off.until = wall.Add(penalty)
		// Best effort: the penalty protects this node either way, but a
		// persisted one survives a restart, so an offender cannot reset
		// its sentence by crashing its victim.
		d.persist(&store.QuarantineRecord{
			Peer:           from,
			Strikes:        off.strikes,
			UntilUnixMilli: off.until.UnixMilli(),
		})
	}
	d.mu.Unlock()
	if penalty > 0 {
		d.logf("daemon %d: quarantining node %d for %v (repeated bad signatures)",
			d.cfg.ID, from, penalty)
	}
}

// onPiece verifies a piece against the stored record and stores it;
// the piggybacked record (MBT-QM) is processed first when present.
// onPiece runs the shared verify-and-store path for a received piece
// (pairwise, broadcast, or fountain-decoded). It reports whether the
// piece is now held — stored fresh or a duplicate of one already held
// — so the fountain path can distinguish a clean decode from poisoned
// bytes that failed verification.
func (d *Daemon) onPiece(from trace.NodeID, p *wire.Piece) bool {
	if d.quarantined(from) {
		return false
	}
	if p.Piggyback != nil {
		d.onMetadata(from, p.Piggyback)
	}
	now := d.now()
	d.mu.Lock()
	sm := d.node.Metadata(p.URI)
	if sm == nil || sm.Meta.Expired(now) {
		d.counters.piecesNoMeta++
		d.mu.Unlock()
		return false
	}
	if !p.Verify(sm.Meta) {
		d.counters.piecesRejected++
		d.mu.Unlock()
		return false
	}
	total := sm.Meta.NumPieces()
	ps := d.node.Pieces(p.URI)
	isNew := ps == nil || !ps.Have(p.Index)
	added := false
	if isNew {
		// Log before apply: the piece becomes part of the node's state —
		// and of the next hello's have-bitmap — only once it is fsynced.
		// A failed append drops the piece; the sender's resend deadline
		// re-delivers it.
		if !d.persist(&store.PieceRecord{URI: p.URI, Index: p.Index, Total: total}) {
			d.mu.Unlock()
			return false
		}
		added = d.node.AddPiece(p.URI, p.Index, total)
	}
	if added {
		d.counters.piecesVerified++
		if ds := d.downloads[p.URI]; ds != nil {
			ds.lastProgress = time.Now()
		}
		// Useful delivery earns tit-for-tat credit (§IV-B), durably: the
		// ledger survives restarts, so standing is not wiped by a crash.
		if cur := d.node.Pieces(p.URI); cur != nil && cur.Want {
			if d.persist(&store.CreditRecord{Peer: from, Delta: credit.RequestedReward}) {
				d.node.Ledger.RewardRequested(from)
			}
		}
	} else {
		// A duplicate of a piece already held: the injector's Duplicate
		// fault and the resend deadline both produce these; dedup is
		// free because AddPiece is idempotent.
		d.counters.piecesDuplicate++
		if held := d.restored[p.URI]; p.Index < len(held) && held[p.Index] {
			// A piece recovered from disk came over the wire again — the
			// have-bitmap advertisement should make this impossible.
			d.counters.piecesRefetched++
		}
	}
	justDone := added && d.node.HasFullFile(p.URI) && !d.completed[p.URI]
	if justDone {
		d.completed[p.URI] = true
	}
	d.mu.Unlock()
	if justDone {
		d.logf("daemon %d: download of %s complete (%d pieces, verified) via node %d",
			d.cfg.ID, p.URI, p.Total, from)
		if d.cfg.OnComplete != nil {
			d.cfg.OnComplete(p.URI)
		}
	}
	return true
}

// CompletedURIs lists finished downloads, sorted.
func (d *Daemon) CompletedURIs() []metadata.URI {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]metadata.URI, 0, len(d.completed))
	for uri := range d.completed {
		out = append(out, uri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
