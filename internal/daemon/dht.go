// The daemon's DHT face: internal/dht's engine wired over the existing
// peer sessions. The engine owns routing and records; this file owns
// the plumbing — inbound frames dispatch through peer.DHTHandler,
// outbound RPCs ride Manager.Send with a dial-on-demand fallback for
// contacts outside the current peer set, and a periodic tick refreshes
// the table, republishes the catalog (Internet nodes), and resolves
// still-open queries DHT-first.
//
// The query path is deliberately layered: a keyword resolves from the
// local record cache when it can (zero traffic — the DTN-side path),
// from an iterative FindValue when it must, and the ordinary hello
// beacon keeps carrying the query regardless, so a node that cannot
// reach the DHT still gets the legacy server/gossip answer. Records
// resolved via the DHT enter the node through the same
// verify-and-select path a gossiped metadata frame takes, but never
// touch the transport counters — DHT traffic and metadata traffic stay
// separately accounted.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dht"
	"repro/internal/metadata"
	"repro/internal/peer"
	"repro/internal/search"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// HandleDHT implements peer.DHTHandler: inbound DHT frames go to the
// engine, whose replies leave through the outbox like every other
// handler-originated message.
func (h *handler) HandleDHT(from trace.NodeID, msg wire.Msg) {
	(*Daemon)(h).onDHT(from, msg)
}

func (d *Daemon) onDHT(from trace.NodeID, msg wire.Msg) {
	if d.dht == nil || d.quarantined(from) {
		return
	}
	if reply := d.dht.HandleMessage(msg); reply != nil {
		d.enqueue(from, reply)
	}
}

// dhtVerify vets a DHT value exactly like a gossiped record: structural
// validity plus the publisher's signature. The engine calls it on every
// StoreValue and on every FindValue result before caching.
func (d *Daemon) dhtVerify(v *wire.DHTValue) bool {
	rec := v.Meta.Record.Clone()
	if rec.Validate() != nil {
		return false
	}
	return rec.Verify(workload.KeyFor(rec.Publisher))
}

// dhtSend delivers one engine-originated message. A contact with no
// live session but a known address gets a dial-on-demand: ConnectOnce
// brings up a transient session and the send retries while the engine's
// RPC timeout still has patience; liveness expiry reaps the link once
// the lookups stop.
func (d *Daemon) dhtSend(c dht.Contact, m wire.Msg) error {
	ctx := d.dhtRunCtx()
	sctx, cancel := context.WithTimeout(ctx, d.dhtTimeout)
	defer cancel()
	err := d.mgr.Send(sctx, c.ID, m)
	if err == nil || !errors.Is(err, peer.ErrUnknownPeer) || c.Addr == "" {
		return err
	}
	d.dialOnDemand(ctx, c.Addr)
	retry := d.cfg.HelloInterval / 4
	if retry <= 0 {
		retry = time.Millisecond
	}
	t := time.NewTicker(retry)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err = d.mgr.Send(sctx, c.ID, m); err == nil || !errors.Is(err, peer.ErrUnknownPeer) {
				return err
			}
		case <-sctx.Done():
			return fmt.Errorf("dht dial %s: %w", c.Addr, sctx.Err())
		}
	}
}

// dhtRunCtx returns the daemon's run context (Background before Run,
// for construction-time calls in tests).
func (d *Daemon) dhtRunCtx() context.Context {
	d.dialMu.Lock()
	defer d.dialMu.Unlock()
	if d.dhtCtx == nil {
		return context.Background()
	}
	return d.dhtCtx
}

// dialOnDemand starts one transient outbound session to addr unless one
// is already coming up.
func (d *Daemon) dialOnDemand(ctx context.Context, addr string) {
	d.dialMu.Lock()
	if d.dialing[addr] {
		d.dialMu.Unlock()
		return
	}
	d.dialing[addr] = true
	d.dialMu.Unlock()
	d.dhtWG.Add(1)
	go func() {
		defer d.dhtWG.Done()
		d.mgr.ConnectOnce(ctx, d.cfg.Transport, addr)
		d.dialMu.Lock()
		delete(d.dialing, addr)
		d.dialMu.Unlock()
	}()
}

// dhtLoop drives the periodic DHT work at the republish cadence. The
// first tick runs early — a couple of beacon intervals after boot, once
// the configured links have handshaken — so a fresh node bootstraps its
// routing table and resolves its queries without waiting out a full
// republish period.
func (d *Daemon) dhtLoop(ctx context.Context) {
	first := time.NewTimer(2 * d.cfg.HelloInterval)
	defer first.Stop()
	t := time.NewTicker(d.cfg.DHTRepublish)
	defer t.Stop()
	for {
		select {
		case <-first.C:
			d.dhtTick(ctx)
		case <-t.C:
			d.dhtTick(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// dhtTick is one round of DHT maintenance: bootstrap/refresh the
// routing table, drop expired records, republish the catalog (Internet
// nodes), and resolve open queries.
func (d *Daemon) dhtTick(ctx context.Context) {
	tctx, cancel := context.WithTimeout(ctx, d.cfg.DHTRepublish)
	defer cancel()
	d.dht.Refresh(tctx)
	d.dht.Sweep()
	if d.catalog != nil {
		d.publishCatalog(tctx)
	}
	d.resolveQueries(tctx)
}

// publishCatalog pushes every catalog record into the DHT under each
// keyword of its name, so the index survives this server's death at the
// K closest nodes per keyword.
func (d *Daemon) publishCatalog(ctx context.Context) {
	now := d.now()
	for _, sr := range d.catalog.Records(now) {
		for _, tok := range search.Tokenize(sr.Meta.Name) {
			if ctx.Err() != nil {
				return
			}
			m := wire.Metadata{Popularity: sr.Popularity, Record: *sr.Meta}
			if _, err := d.dht.Publish(ctx, tok, m); err != nil &&
				!errors.Is(err, dht.ErrNoContacts) {
				d.logf("daemon %d: dht publish %q: %v", d.cfg.ID, tok, err)
			}
		}
	}
}

// resolveQueries answers still-open searches DHT-first: skip queries
// some stored record already satisfies, try each keyword against the
// local cache and then the iterative lookup, and feed what resolves
// through the ordinary metadata path. Queries that miss entirely stay
// in the hello beacon — the legacy fallback costs nothing extra.
func (d *Daemon) resolveQueries(ctx context.Context) {
	d.mu.Lock()
	queries := d.node.Queries(d.now())
	d.mu.Unlock()
	for _, q := range queries {
		if ctx.Err() != nil {
			return
		}
		if d.queryAnswered(q) {
			continue
		}
		for _, tok := range search.Tokenize(q) {
			vals, err := d.dht.Query(ctx, tok)
			if err != nil || len(vals) == 0 {
				continue
			}
			d.applyDHTValues(vals)
		}
	}
}

// queryAnswered reports whether some unexpired stored record already
// matches q, making a DHT lookup for it redundant.
func (d *Daemon) queryAnswered(q string) bool {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sm := range d.node.MetadataStore() {
		if !sm.Meta.Expired(now) && sm.Meta.MatchesQuery(q) {
			return true
		}
	}
	return false
}

// applyDHTValues runs resolved records through the same verify-and-
// select path a gossiped metadata frame takes (onMetadata), attributed
// to self: the engine already signature-checked them, and they must not
// count as peer metadata traffic.
func (d *Daemon) applyDHTValues(vals []wire.DHTValue) {
	for i := range vals {
		m := vals[i].Meta
		d.onMetadata(d.cfg.ID, &m)
	}
}

// dhtCacheRecord folds one verified gossiped record into the local DHT
// cache under its name's keywords. This is what lets a DTN-side node
// answer FindValue — and its own later queries — from state it learned
// entirely over gossip, with no Internet path.
func (d *Daemon) dhtCacheRecord(m *wire.Metadata) {
	for _, tok := range search.Tokenize(m.Record.Name) {
		d.dht.StoreLocal(tok, *m, 0)
	}
}

// KnowsMetadata reports whether this node holds an unexpired record for
// uri — the swarm harness's query-resolution ground truth.
func (d *Daemon) KnowsMetadata(uri metadata.URI) bool {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	sm := d.node.Metadata(uri)
	return sm != nil && !sm.Meta.Expired(now)
}

// DHT exposes the engine for tests and stats (nil without EnableDHT).
func (d *Daemon) DHT() *dht.Engine { return d.dht }
