package daemon

import (
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Overload protection glue: the peer layer's admission control calls
// onShed when it refuses an inbound message, the handler feeds received
// Busy frames to onBusy, and sendBusy paces the 429-style replies so a
// flooding peer gets one Busy per lane per window instead of a Busy
// flood of our own.

// shedScope maps a shed inbound frame type to the Busy lane worth
// advertising for it. Zero means "shed silently": responses (metadata,
// pieces, acks) have no requester waiting on our capacity, so a Busy
// would only add traffic.
func shedScope(t wire.MsgType) wire.BusyScope {
	switch t {
	case wire.TypeHello, wire.TypeGroupHello:
		// A hello is the request for both catalog answers and piece
		// serves; the piece lane is the expensive one it drives.
		return wire.BusyPiece
	case wire.TypeFindNode, wire.TypeFindValue, wire.TypeStoreValue:
		return wire.BusyDHT
	case wire.TypeSymbol, wire.TypeSymbolAck:
		return wire.BusySymbol
	default:
		return 0
	}
}

// onShed runs on the shedding peer's session goroutine each time
// admission control refuses one of its messages: note the event for
// /healthz, and answer request-bearing frames with a paced Busy.
func (d *Daemon) onShed(from trace.NodeID, t wire.MsgType) {
	d.mu.Lock()
	d.lastShedAt = time.Now()
	d.mu.Unlock()
	if sc := shedScope(t); sc != 0 {
		d.sendBusy(from, sc)
	}
}

// sendBusy enqueues one Busy frame to the peer for the lane, paced to
// at most one per peer/lane per BusyRetryAfter window — the frame
// already names the whole window, so repeats carry no information.
func (d *Daemon) sendBusy(to trace.NodeID, scope wire.BusyScope) {
	wall := time.Now()
	d.mu.Lock()
	if at, ok := d.lastBusyTo[to][scope]; ok && wall.Sub(at) < d.cfg.BusyRetryAfter {
		d.mu.Unlock()
		return
	}
	if d.lastBusyTo[to] == nil {
		d.lastBusyTo[to] = make(map[wire.BusyScope]time.Time)
	}
	d.lastBusyTo[to][scope] = wall
	d.counters.busySent++
	d.mu.Unlock()
	d.enqueue(to, &wire.Busy{
		From:             d.cfg.ID,
		Scope:            scope,
		RetryAfterMillis: uint32(d.cfg.BusyRetryAfter / time.Millisecond),
	})
}

// onBusy records a peer's advertised backoff window so re-drives and
// piece traffic skip it until the window passes. The window is honored
// as advertised but clamped to 2×LivenessWindow: past that, silence is
// indistinguishable from churn and the liveness machinery takes over.
func (d *Daemon) onBusy(from trace.NodeID, b *wire.Busy) {
	window := b.RetryAfter()
	if max := 2 * d.cfg.LivenessWindow; window > max {
		window = max
	}
	until := time.Now().Add(window)
	d.mu.Lock()
	if d.peerBusy[from] == nil {
		d.peerBusy[from] = make(map[wire.BusyScope]time.Time)
	}
	d.peerBusy[from][b.Scope] = until
	d.mu.Unlock()
	if b.Scope == wire.BusyDHT && d.dht != nil {
		// The DHT engine keeps its own busy set so lookup shortlists can
		// skip the contact for the round without marking it dead.
		d.dht.MarkBusy(from, until)
	}
	d.logf("daemon %d: node %d busy on %v lane for %v", d.cfg.ID, from, b.Scope, window)
}
