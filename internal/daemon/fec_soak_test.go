package daemon

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/transport"
)

// The fountain acceptance soak: the same five-node download runs once
// on the grant/resend piece plane and once on the fountain-coded
// symbol plane, with 30% drop + 20% corruption on the data plane both
// times, and the fountain run must move the file in strictly fewer
// piece-equivalent transmissions per verified piece.
//
// The topology is the paper's lossy radio clique: one Internet seed,
// four downloaders, clean unicast session links (hellos and the
// pairwise fallback; chaos on those frames models a dying cable, not a
// lossy medium), and one shared broadcast domain at 44% loss carrying
// group control in both runs. The data planes differ:
//
//   - grant/resend: PieceBcast frames share that same 44%-loss domain.
//     44% is 30% drop + 20% corruption as the piece plane experiences
//     it — a corrupted piece fails Verify at the receiver and is
//     re-broadcast, so detected corruption IS loss, at rate
//     0.3 + 0.7*0.2 = 0.44.
//   - fountain: coded symbols ride the datagram lane through the fault
//     injector at SymbolLoss=0.3 plus Corrupt=0.2 (caught by the
//     symbol checksum), the same aggregate beating.
//
// Both planes lose per-transmission at the same rate; what differs is
// what one loss costs. A lost or corrupted piece broadcast wastes the
// whole 16 KB piece — and the sender must repeat all 16 KB until the
// unluckiest of four receivers finally hears one intact copy, while
// the other three discard duplicates. A lost symbol wastes 256 bytes,
// and every symbol that does land is fresh progress for every receiver
// at once. That asymmetry, not a kinder channel, is the coding gain
// the paper's cooperative groups are after.

const (
	fecSoakNodes      = 5
	fecSoakPieces     = 16
	fecSoakPieceSize  = 16384
	fecSoakSymbolSize = 256 // K=64 source symbols per piece
	fecSoakDataLoss   = 0.44
)

// waitTB is waitLong for both tests and benchmarks.
func waitTB(tb testing.TB, limit time.Duration, cond func() bool, what string) {
	tb.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// runFECSoak runs one soak and returns piece-equivalent transmissions
// per verified piece. A pairwise wire.Piece and a PieceBcast each cost
// one transmission on their medium; coded symbols (relays included)
// cost their size fraction of a piece — the currency is bytes on the
// air in units of one piece.
func runFECSoak(tb testing.TB, fec bool) float64 {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	radio := net.Domain("radio")
	radio.SetLoss(fecSoakDataLoss, 21)
	chaos := fault.Wrap(net, fault.Config{
		Seed:       11,
		SymbolLoss: 0.30,
		Corrupt:    0.20,
	})
	var lane *transport.BroadcastDomain
	if fec {
		lane = net.SymbolDomain("radio")
	}

	nodes := make([]*Daemon, 0, fecSoakNodes)
	var addrs []string
	for id := trace.NodeID(1); id <= fecSoakNodes; id++ {
		cfg := fastCfg(id, net)
		cfg.ListenAddr = fmt.Sprintf("n%d", id)
		cfg.PeerAddrs = append([]string(nil), addrs...) // dial everyone before us: full mesh
		if id == 1 {
			cfg.InternetAccess = true
			cfg.PublishFiles = 1
			cfg.FileSize = fecSoakPieces * fecSoakPieceSize
			cfg.PieceSize = fecSoakPieceSize
		}
		cfg.EnableBcast = true
		conn, err := radio.Join(cfg.ListenAddr)
		if err != nil {
			tb.Fatal(err)
		}
		cfg.Broadcast = conn
		if fec {
			sym, err := lane.Join(cfg.ListenAddr)
			if err != nil {
				tb.Fatal(err)
			}
			cfg.Symbols = chaos.WrapSymbols(sym)
			cfg.EnableFEC = true
			cfg.SymbolSize = fecSoakSymbolSize
			// A relay rarely reaches a clique member the sender's own
			// broadcast misses, so keep cooperation at the minimum and
			// let fresh top-ups do the repair.
			cfg.RelayBudget = 1
			cfg.Fault = chaos
		}
		d, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		start(ctx, d)
		nodes = append(nodes, d)
		addrs = append(addrs, cfg.ListenAddr)
	}
	leeches := nodes[1:]

	limit := 120 * time.Second
	waitTB(tb, limit, func() bool {
		for _, d := range nodes {
			st := d.Stats()
			if st.Bcast == nil || !st.Bcast.Confirmed || len(st.Bcast.Group) != fecSoakNodes {
				return false
			}
		}
		return true
	}, "group confirmation on the lossy radio")
	for _, d := range leeches {
		d.AddQuery("f0")
	}
	f0 := metadata.URIFor(0)
	waitTB(tb, limit, func() bool {
		for _, d := range leeches {
			if !d.Completed(f0) {
				return false
			}
		}
		return true
	}, "downloads on the lossy radio")

	var tx, verified float64
	for _, d := range nodes {
		st := d.Stats()
		tx += float64(st.Transport.PiecesSent)
		if st.Bcast != nil {
			tx += float64(st.Bcast.PieceBcastsSent)
			tx += float64(st.Bcast.SymbolsSent+st.Bcast.SymbolsRelayed) *
				fecSoakSymbolSize / fecSoakPieceSize
		}
		verified += float64(st.PiecesVerified)
	}
	if fec {
		// The claim is about the fountain plane; make sure it carried
		// the bulk of the file rather than the pairwise path sneaking
		// pieces through during an unconfirmed window.
		var decodes uint64
		for _, d := range leeches {
			if st := d.Stats().Bcast; st != nil {
				decodes += st.FECDecodes
			}
		}
		floor := uint64(3 * fecSoakPieces)
		if testutil.RaceEnabled {
			// Race instrumentation slows hello processing enough for the
			// group to flap, and every unconfirmed window hands pieces to
			// the (clean, unicast) pairwise fallback — by design. Still
			// require a meaningful fountain share.
			floor = fecSoakPieces
		}
		if decodes < floor {
			tb.Fatalf("only %d fountain decodes across %d leechers, want >= %d",
				decodes, len(leeches), floor)
		}
	}
	if verified == 0 {
		tb.Fatal("no pieces verified")
	}
	return tx / verified
}

// TestFECSoakFewerTransmissions is the acceptance gate: at 30% drop +
// 20% corruption the fountain plane must beat grant/resend on
// transmissions per verified piece, strictly.
func TestFECSoakFewerTransmissions(t *testing.T) {
	grant := runFECSoak(t, false)
	fountain := runFECSoak(t, true)
	t.Logf("transmissions per verified piece under 30%% drop + 20%% corruption: grant/resend=%.3f fountain=%.3f",
		grant, fountain)
	if testutil.RaceEnabled {
		// Both soaks above still must complete under chaos (and the
		// fountain run must decode, not fall back) — but the transmission
		// comparison is a performance claim, and race instrumentation
		// slows ticks enough to reshape both planes' retry behavior.
		t.Skip("skipping the strict transmission comparison under the race detector")
	}
	if fountain >= grant {
		t.Fatalf("fountain plane cost %.3f transmissions per verified piece, grant/resend cost %.3f — no coding gain",
			fountain, grant)
	}
}

// BenchmarkFECSoakTransmissions emits both soak numbers into the bench
// JSON baseline (results/BENCH_swarm.json via make bench-json), so the
// coding gain is tracked across commits, not just asserted once.
func BenchmarkFECSoakTransmissions(b *testing.B) {
	var grant, fountain float64
	for i := 0; i < b.N; i++ {
		grant = runFECSoak(b, false)
		fountain = runFECSoak(b, true)
	}
	b.ReportMetric(grant, "grant_tx/piece")
	b.ReportMetric(fountain, "fountain_tx/piece")
}
