package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// bench builds a daemon whose handlers and sweeps are driven by hand —
// Run is never called, so there are no live sessions or goroutines.
func bench(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	cfg := fastCfg(1, net)
	cfg.ListenAddr = "bench"
	cfg.Queries = []string{"f0"}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// feedMetadata hands the daemon a valid record for file 0 from the
// given peer; with FetchMatching on it selects the download.
func feedMetadata(t *testing.T, d *Daemon, from trace.NodeID) *metadata.Metadata {
	t.Helper()
	rec := d.syntheticFile(0)
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *rec})
	if got := d.Stats().MetadataStored; got != 1 {
		t.Fatalf("metadata stored = %d after feeding a valid record", got)
	}
	return rec
}

func pieceMsg(rec *metadata.Metadata, i int) *wire.Piece {
	return &wire.Piece{
		URI:   rec.URI,
		Index: i,
		Total: rec.NumPieces(),
		Data:  metadata.SyntheticPiece(rec.URI, i, rec.PieceLen(i)),
	}
}

// TestServePiecesUnknownURI: a hello advertising a download this node
// knows nothing about must produce no pieces (and no tracking state).
func TestServePiecesUnknownURI(t *testing.T) {
	d := bench(t, nil)
	if out := d.servePieces(2, metadata.URI("dtn://files/404"), nil); out != nil {
		t.Fatalf("served %d pieces for an unknown URI", len(out))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if st := d.sent[2]; st != nil && len(st.pieces) != 0 {
		t.Fatalf("unknown URI left send tracking behind: %+v", st.pieces)
	}
}

// TestEnqueueOverflow fills the outbox with no send loop draining it;
// the overflow message must be dropped and counted, not block.
func TestEnqueueOverflow(t *testing.T) {
	d := bench(t, nil)
	for i := 0; i < d.out.capPerClass(); i++ {
		d.enqueue(2, &wire.Hello{From: 1})
	}
	if got := d.Stats().OutboxDrops; got != 0 {
		t.Fatalf("OutboxDrops = %d before overflow", got)
	}
	done := make(chan struct{})
	go func() {
		d.enqueue(2, &wire.Hello{From: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue blocked on a full outbox")
	}
	if got := d.Stats().OutboxDrops; got != 1 {
		t.Fatalf("OutboxDrops = %d, want 1", got)
	}
}

// TestSweepCleansVanishedState: send tracking for peers that are gone
// and download tracking for completed files must not leak.
func TestSweepCleansVanishedState(t *testing.T) {
	d := bench(t, nil)
	uri := metadata.URIFor(0)
	d.mu.Lock()
	d.sent[7] = &sentState{pieces: map[metadata.URI]map[int]time.Time{
		uri: {0: time.Now()},
	}}
	d.completed[uri] = true
	d.downloads[uri] = &downloadState{lastProgress: time.Now()}
	d.mu.Unlock()

	d.sweepOnce(context.Background())

	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.sent) != 0 {
		t.Fatalf("send tracking for vanished peer survived the sweep: %v", d.sent)
	}
	if len(d.downloads) != 0 {
		t.Fatalf("download tracking for completed file survived the sweep: %v", d.downloads)
	}
}

// TestStallRedriveBudget: a download making no progress triggers stall
// re-drives only up to the retry budget; stalls keep being counted past
// it but no more budget is spent.
func TestStallRedriveBudget(t *testing.T) {
	d := bench(t, func(c *Config) {
		c.StallTimeout = time.Millisecond
		c.RetryBudget = 2
	})
	feedMetadata(t, d, 5)
	if got := d.Stats().Downloading; len(got) != 1 {
		t.Fatalf("downloading = %v, want the selected file", got)
	}

	ctx := context.Background()
	d.sweepOnce(ctx) // creates the download's stall tracking
	for i := 0; i < 5; i++ {
		time.Sleep(3 * time.Millisecond) // let the stall timeout lapse
		d.sweepOnce(ctx)
	}
	st := d.Stats()
	if st.Stalls < 3 {
		t.Fatalf("Stalls = %d, want >= 3 (stall detection kept running)", st.Stalls)
	}
	if st.Redrives != 2 {
		t.Fatalf("Redrives = %d, want exactly the budget of 2", st.Redrives)
	}
	if got := st.Retries[string(metadata.URIFor(0))]; got != 2 {
		t.Fatalf("Retries[f0] = %d, want 2", got)
	}
	if st.RetryBudget != 2 {
		t.Fatalf("RetryBudget = %d, want 2", st.RetryBudget)
	}
}

// TestDuplicatePieceDeduped: the same verified piece delivered twice
// (duplication fault or resend race) is stored once and counted as a
// duplicate.
func TestDuplicatePieceDeduped(t *testing.T) {
	d := bench(t, nil)
	rec := feedMetadata(t, d, 5)
	p := pieceMsg(rec, 0)
	d.onPiece(5, p)
	d.onPiece(5, p)
	st := d.Stats()
	if st.PiecesVerified != 1 || st.PiecesDuplicate != 1 {
		t.Fatalf("verified=%d duplicate=%d, want 1/1", st.PiecesVerified, st.PiecesDuplicate)
	}
}

// TestQuarantineEscalationAndDecay: repeated bad signatures quarantine
// the sender (messages dropped, penalty doubling per strike), and the
// record decays back to clean while the peer behaves.
func TestQuarantineEscalationAndDecay(t *testing.T) {
	d := bench(t, func(c *Config) {
		c.QuarantineThreshold = 2
		c.QuarantineBase = time.Hour // long enough to observe deterministically
	})
	bad := d.syntheticFile(0)
	bad.Signature[0] ^= 1

	from := trace.NodeID(9)
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *bad})
	if d.quarantined(from) {
		t.Fatal("quarantined after a single bad signature")
	}
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *bad})
	if !d.quarantined(from) {
		t.Fatal("not quarantined at the threshold")
	}
	st := d.Stats()
	if st.BadSignatures != 2 || st.MetadataStored != 0 {
		t.Fatalf("badSigs=%d stored=%d, want 2/0", st.BadSignatures, st.MetadataStored)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != from {
		t.Fatalf("Quarantined = %v, want [%d]", st.Quarantined, from)
	}
	if st.QuarantineDrops == 0 {
		t.Fatal("quarantine checks not counted as drops")
	}

	// A quarantined peer's traffic is ignored wholesale.
	good := d.syntheticFile(0)
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *good})
	if got := d.Stats().MetadataStored; got != 0 {
		t.Fatalf("quarantined peer's record was stored (%d)", got)
	}

	// Second offense doubles the penalty.
	d.mu.Lock()
	off := d.offenders[from]
	firstUntil := off.until
	off.until = time.Now().Add(-time.Second) // penalty served
	d.mu.Unlock()
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *bad})
	d.onMetadata(from, &wire.Metadata{Popularity: 0.5, Record: *bad})
	d.mu.Lock()
	if off.strikes != 2 {
		t.Fatalf("strikes = %d after second offense, want 2", off.strikes)
	}
	secondPenalty := time.Until(off.until)
	d.mu.Unlock()
	if firstPenalty := time.Until(firstUntil) + time.Second; secondPenalty < firstPenalty {
		t.Fatalf("second penalty %v not escalated beyond first %v", secondPenalty, firstPenalty)
	}

	// Decay: with the penalty served and a long clean stretch, sweeps
	// walk the strikes back down and eventually forget the offender.
	for i := 0; i < 10; i++ {
		d.mu.Lock()
		off.until = time.Now().Add(-time.Second)
		off.lastBad = time.Now().Add(-5 * d.cfg.QuarantineBase)
		d.mu.Unlock()
		d.sweepOnce(context.Background())
	}
	d.mu.Lock()
	left := len(d.offenders)
	d.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d offender records survived decay", left)
	}
	if d.quarantined(from) {
		t.Fatal("still quarantined after decay")
	}
}

// TestHealthzDegraded: a daemon alone past its liveness window answers
// /healthz with 503 and a reason; saturating the outbox adds another.
func TestHealthzDegraded(t *testing.T) {
	d := bench(t, func(c *Config) {
		c.LivenessWindow = 10 * time.Millisecond
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	time.Sleep(30 * time.Millisecond) // outlive the liveness window, peerless

	get := func() (int, Health) {
		t.Helper()
		r, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var h Health
		if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, h
	}

	code, h := get()
	if code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("healthz = %d %q, want 503 degraded", code, h.Status)
	}
	if len(h.Reasons) != 1 {
		t.Fatalf("reasons = %v, want exactly the no-live-peers reason", h.Reasons)
	}

	for i := 0; i < d.out.capPerClass(); i++ {
		d.enqueue(2, &wire.Hello{From: 1})
	}
	code, h = get()
	if code != http.StatusServiceUnavailable || len(h.Reasons) != 2 {
		t.Fatalf("healthz = %d reasons=%v, want 503 with both reasons", code, h.Reasons)
	}
}
