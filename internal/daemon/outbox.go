package daemon

import (
	"sync"

	"repro/internal/trace"
	"repro/internal/wire"
)

// outClass partitions outbound frames by shedding priority. Control
// frames are the small coordination messages the protocol cannot make
// progress without (hellos, schedules, grants, acks, DHT RPCs, Busy
// itself); data frames carry payload a later re-drive can recover
// (pieces, broadcast pieces, symbols, metadata, DHT stores). Each class
// gets its own bounded queue, so a payload flood can drop payload but
// never evict coordination.
type outClass int

const (
	classControl outClass = iota
	classData
	numOutClasses
)

// String names the class for counters and logs.
func (c outClass) String() string {
	if c == classControl {
		return "control"
	}
	return "data"
}

// classOf assigns a frame to its shedding class. Raw frames classify by
// their recorded type.
func classOf(t wire.MsgType) outClass {
	switch t {
	case wire.TypePiece, wire.TypePieceBcast, wire.TypeSymbol,
		wire.TypeMetadata, wire.TypeStoreValue:
		return classData
	default:
		return classControl
	}
}

// ring is a fixed-capacity FIFO of outbound messages.
type ring struct {
	buf  []outMsg
	head int
	n    int
}

func (r *ring) push(m outMsg) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
	return true
}

func (r *ring) pop() (outMsg, bool) {
	if r.n == 0 {
		return outMsg{}, false
	}
	m := r.buf[r.head]
	r.buf[r.head] = outMsg{} // release the frame for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m, true
}

// outbox is the daemon's class-aware send queue: one bounded ring per
// frame class, drained control-first by the send loop. Overflow drops
// the new frame and counts it against its class — the next hello
// re-drives a dropped exchange, so shedding data is safe; shedding
// control is the signal a node is in real trouble.
type outbox struct {
	mu    sync.Mutex
	q     [numOutClasses]ring
	drops [numOutClasses]uint64
	// wake (capacity 1) pings the send loop when a push lands in an
	// empty outbox.
	wake chan struct{}
}

func newOutbox(perClass int) *outbox {
	ob := &outbox{wake: make(chan struct{}, 1)}
	for c := range ob.q {
		ob.q[c].buf = make([]outMsg, perClass)
	}
	return ob
}

// push enqueues one frame under its class; false means the class queue
// was full and the frame was dropped (and counted).
func (ob *outbox) push(to trace.NodeID, msg wire.Msg) bool {
	c := classOf(msg.Type())
	ob.mu.Lock()
	ok := ob.q[c].push(outMsg{to: to, msg: msg})
	if !ok {
		ob.drops[c]++
	}
	ob.mu.Unlock()
	if ok {
		select {
		case ob.wake <- struct{}{}:
		default:
		}
	}
	return ok
}

// pop dequeues the next frame, control before data; false means empty.
func (ob *outbox) pop() (outMsg, bool) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for c := range ob.q {
		if m, ok := ob.q[c].pop(); ok {
			return m, true
		}
	}
	return outMsg{}, false
}

// depth reports one class's current queue length.
func (ob *outbox) depth(c outClass) int {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	return ob.q[c].n
}

// depths reports every class's queue length in one lock acquisition.
func (ob *outbox) depths() (control, data int) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	return ob.q[classControl].n, ob.q[classData].n
}

// dropCounts snapshots the per-class drop counters.
func (ob *outbox) dropCounts() (control, data uint64) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	return ob.drops[classControl], ob.drops[classData]
}

// capPerClass reports one class's capacity (all classes share it).
func (ob *outbox) capPerClass() int {
	return len(ob.q[classControl].buf)
}

// saturated reports whether any class queue is full — the health
// endpoint's "dropping right now" signal.
func (ob *outbox) saturated() bool {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for c := range ob.q {
		if ob.q[c].n == len(ob.q[c].buf) {
			return true
		}
	}
	return false
}
