package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/transport"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastCfg shrinks the protocol clocks so tests converge in
// milliseconds instead of seconds.
func fastCfg(id trace.NodeID, tr transport.Transport) Config {
	return Config{
		ID:             id,
		Transport:      tr,
		HelloInterval:  10 * time.Millisecond,
		LivenessWindow: 200 * time.Millisecond,
		FetchMatching:  true,
		Backoff:        transport.Backoff{Min: 2 * time.Millisecond, Jitter: -1},
	}
}

// start runs d until ctx ends, returning a channel that yields Run's
// error.
func start(ctx context.Context, d *Daemon) chan error {
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	return done
}

// TestLoopbackEndToEndSoak is the two-daemon soak over the
// deterministic loopback transport: hello exchange, metadata pull for
// two queries, and full multi-piece downloads with per-piece checksum
// verification.
func TestLoopbackEndToEndSoak(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	seedCfg := fastCfg(1, net)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 2
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}

	leechCfg := fastCfg(2, net)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0", "f1"}
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}

	start(ctx, seed)
	start(ctx, leech)

	// Hello exchange: each sees the other.
	waitFor(t, func() bool {
		return len(seed.Manager().Peers()) == 1 && len(leech.Manager().Peers()) == 1
	}, "hello exchange")

	// Metadata pull: both records arrive and are selected.
	waitFor(t, func() bool { return leech.Stats().MetadataStored == 2 }, "metadata pull")

	// Piece download: both files complete, verified.
	f0, f1 := metadata.URIFor(0), metadata.URIFor(1)
	waitFor(t, func() bool { return leech.Completed(f0) && leech.Completed(f1) }, "downloads")

	st := leech.Stats()
	wantPieces := uint64(2 * 3) // 2 files × 3 pieces at 600 KB / 256 KB
	if st.PiecesVerified < wantPieces {
		t.Fatalf("pieces verified = %d, want >= %d", st.PiecesVerified, wantPieces)
	}
	if st.PiecesRejected != 0 || st.BadSignatures != 0 {
		t.Fatalf("rejects: %+v", st)
	}
	if len(st.Downloading) != 0 {
		t.Fatalf("still downloading %v after completion", st.Downloading)
	}
	if got := seed.Stats().Transport.PiecesSent; got < wantPieces {
		t.Fatalf("seed sent %d pieces, want >= %d", got, wantPieces)
	}
}

// TestReconnectAfterDrop drops every live session mid-download and
// checks the leecher redials and finishes.
func TestReconnectAfterDrop(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	seedCfg := fastCfg(1, net)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.PiecesPerHello = 1 // slow the transfer so the drop lands mid-flight
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	leechCfg := fastCfg(2, net)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0"}
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	start(ctx, leech)

	// Wait for the download to start, then yank every session.
	waitFor(t, func() bool { return leech.Stats().PiecesVerified >= 1 }, "first piece")
	seed.Manager().Close()
	leech.Manager().Close()

	waitFor(t, func() bool { return leech.Manager().Stats().Reconnects >= 1 }, "reconnect")
	waitFor(t, func() bool { return leech.Completed(metadata.URIFor(0)) }, "download completion after drop")
}

// TestShutdownWhileSending cancels both daemons in the middle of a
// large transfer; Run must return promptly with every goroutine joined.
func TestShutdownWhileSending(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewLoopback()
	defer net.Close()

	seedCfg := fastCfg(1, net)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.PieceSize = 4 * 1024
	seedCfg.FileSize = 2 * 1024 * 1024 // 512 pieces: plenty of in-flight work
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	leechCfg := fastCfg(2, net)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0"}
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	seedDone := start(ctx, seed)
	leechDone := start(ctx, leech)

	waitFor(t, func() bool { return leech.Stats().PiecesVerified >= 8 }, "transfer in flight")
	cancel()
	for _, done := range []chan error{seedDone, leechDone} {
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down while sending")
		}
	}
}

// TestTCPEndToEnd runs the full flow over real sockets: metadata query
// and multi-piece download at the paper's 256 KB piece size, plus the
// HTTP stats surface.
func TestTCPEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tcp := &transport.TCP{}

	seedCfg := fastCfg(1, tcp)
	seedCfg.ListenAddr = "127.0.0.1:0"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	waitFor(t, func() bool { return seed.Addr() != "" }, "seed to bind")

	leechCfg := fastCfg(2, tcp)
	leechCfg.PeerAddrs = []string{seed.Addr()}
	leechCfg.Queries = []string{"f0"}
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, leech)

	waitFor(t, func() bool { return leech.Completed(metadata.URIFor(0)) }, "TCP download")
	st := leech.Stats()
	if st.PiecesVerified < 3 {
		t.Fatalf("verified %d pieces, want >= 3", st.PiecesVerified)
	}
	if st.PiecesRejected != 0 {
		t.Fatalf("rejected pieces over TCP: %+v", st)
	}

	// The HTTP surface reports the same state.
	srv := httptest.NewServer(leech.Handler())
	defer srv.Close()
	var health struct {
		Status string `json:"status"`
		Peers  int    `json:"peers"`
	}
	getJSON(t, srv.URL+"/healthz", &health)
	if health.Status != "ok" || health.Peers != 1 {
		t.Fatalf("healthz: %+v", health)
	}
	var stats Stats
	getJSON(t, srv.URL+"/stats", &stats)
	if !stats.Completed[string(metadata.URIFor(0))] {
		t.Fatalf("stats endpoint missing completion: %+v", stats)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, r.Status)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
