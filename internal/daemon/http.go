package daemon

import (
	"encoding/json"
	"net/http"
	"time"
)

// Handler returns the daemon's HTTP surface:
//
//	GET /healthz — liveness: {"status":"ok", ...} with peer count
//	GET /stats   — the full Stats snapshot
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":         "ok",
			"id":             d.cfg.ID,
			"uptime_seconds": time.Since(d.epoch).Seconds(),
			"peers":          len(d.mgr.Peers()),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
