package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// Health is the liveness verdict served by /healthz. OK is false when
// the daemon is degraded; Reasons says why.
type Health struct {
	Status        string       `json:"status"`
	Reasons       []string     `json:"reasons,omitempty"`
	ID            trace.NodeID `json:"id"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Peers         int          `json:"peers"`
	// OutboxLen/OutboxCap total across classes; the per-class depths
	// show which lane is backed up.
	OutboxLen          int `json:"outbox_len"`
	OutboxCap          int `json:"outbox_cap"`
	OutboxControlDepth int `json:"outbox_control_depth"`
	OutboxDataDepth    int `json:"outbox_data_depth"`
	// Recovery reports what the durable store replayed at start (only
	// with a data directory configured); WALSizeBytes is the live log
	// size. A store that went read-only after an unrepaired write
	// failure degrades the daemon.
	Recovery     *store.RecoveryStats `json:"recovery,omitempty"`
	WALSizeBytes int64                `json:"wal_size_bytes,omitempty"`
}

// Health evaluates the daemon's liveness: degraded when it has had zero
// live peers for longer than the liveness window (it cannot make
// protocol progress alone), when any outbox class queue is saturated
// (handlers are generating traffic faster than any link drains it, so
// frames of that class are being dropped on the floor), or while
// admission control sheds inbound traffic. Every reason reads live
// state — nothing latches, so the verdict walks back to "ok" as soon
// as the condition clears.
func (d *Daemon) Health() Health {
	peers := len(d.mgr.Peers())
	wall := time.Now()
	d.mu.Lock()
	lastPeer := d.lastPeerAt
	lastShed := d.lastShedAt
	d.mu.Unlock()
	if lastPeer.IsZero() {
		lastPeer = d.epoch
	}
	ctlDepth, dataDepth := d.out.depths()
	h := Health{
		Status:             "ok",
		ID:                 d.cfg.ID,
		UptimeSeconds:      time.Since(d.epoch).Seconds(),
		Peers:              peers,
		OutboxLen:          ctlDepth + dataDepth,
		OutboxCap:          int(numOutClasses) * d.out.capPerClass(),
		OutboxControlDepth: ctlDepth,
		OutboxDataDepth:    dataDepth,
	}
	if peers == 0 {
		if alone := time.Since(lastPeer); alone > d.cfg.LivenessWindow {
			h.Reasons = append(h.Reasons,
				fmt.Sprintf("no live peers for %s (liveness window %s)",
					alone.Truncate(time.Millisecond), d.cfg.LivenessWindow))
		}
	}
	if d.out.saturated() {
		h.Reasons = append(h.Reasons,
			fmt.Sprintf("outbox saturated (control %d, data %d of %d/class queued, dropping)",
				ctlDepth, dataDepth, d.out.capPerClass()))
	}
	if !lastShed.IsZero() {
		if since := wall.Sub(lastShed); since < d.cfg.LivenessWindow {
			h.Reasons = append(h.Reasons,
				fmt.Sprintf("admission control shedding inbound traffic (last shed %s ago)",
					since.Truncate(time.Millisecond)))
		}
	}
	if d.store != nil {
		ss := d.store.Stats()
		h.Recovery = &ss.Recovery
		h.WALSizeBytes = ss.WALSize
		if ss.Broken {
			h.Reasons = append(h.Reasons,
				"durable store is read-only (unrepaired WAL write failure); state changes are not persisting")
		}
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
	}
	return h
}

// Handler returns the daemon's HTTP surface:
//
//	GET /healthz — liveness: 200 {"status":"ok", ...} while healthy,
//	               503 {"status":"degraded","reasons":[...]} when the
//	               daemon has no live peers past the liveness window or
//	               its outbox is saturated
//	GET /stats   — the full Stats snapshot
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := d.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
