package daemon

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

func waitLong(t *testing.T, limit time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosSoak is the tentpole robustness check: a seed and a leech
// run over the fault injector at 30% drop + 20% corruption, with
// duplication, reordering, random conn kills, dial failures, added
// latency, and one scripted partition — and the download must still
// complete, with every piece checksum-verified, race-clean. The fixed
// seed makes the fault streams reproducible run to run.
//
// The recovery paths this leans on, all exercised in one run: redial
// with backoff after kills, flap demotion, the per-piece ResendAfter
// deadline (hello advertisement as implicit NACK), stall re-drives
// against the retry budget, duplicate dedup, and bad-signature
// tolerance for in-flight corruption.
//
// -short shrinks the partition so the CI smoke finishes quickly;
// `make chaos` runs the full 10 s outage.
func TestChaosSoak(t *testing.T) {
	partition := 10 * time.Second
	limit := 90 * time.Second
	if testing.Short() {
		partition = 2 * time.Second
		limit = 45 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	healAt := time.Second + partition
	t0 := time.Now()
	chaos := fault.Wrap(net, fault.Config{
		Seed:      42,
		Drop:      0.30,
		Corrupt:   0.20,
		Duplicate: 0.05,
		Reorder:   0.05,
		Kill:      0.002,
		DialFail:  0.10,
		DelayMax:  time.Millisecond,
		Schedule: []fault.Event{
			{At: time.Second, Partition: true},
			{At: healAt, Partition: false},
		},
	})

	// Redial must stay fast after the partition heals: cap the backoff
	// well under the outage length so reconnection is not the long pole.
	bo := transport.Backoff{Min: 2 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: -1}

	seedCfg := fastCfg(1, chaos)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.FileSize = 64 * 1024 // 16 pieces at 4 KB: several hellos' worth
	seedCfg.PieceSize = 4 * 1024
	seedCfg.PiecesPerHello = 4
	seedCfg.Backoff = bo
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	leechCfg := fastCfg(2, chaos)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0"}
	leechCfg.RetryBudget = 64 // a long partition burns stall retries
	leechCfg.Backoff = bo
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	start(ctx, leech)

	waitLong(t, limit, func() bool { return leech.Completed(metadata.URIFor(0)) },
		"download completion under chaos")

	// Hold the line until the outage window has fully passed: even if
	// the transfer won its race with the partition, the hello beacons
	// keep running into it, so the injector's partition counters always
	// see traffic before we sample them.
	if rest := time.Until(t0.Add(healAt + 500*time.Millisecond)); rest > 0 {
		time.Sleep(rest)
	}

	// The injector really did its job.
	fs := chaos.Stats()
	if fs.Dropped == 0 {
		t.Fatalf("no drops injected: %+v", fs)
	}
	if fs.CorruptDelivered+fs.CorruptDropped+fs.CorruptKilled == 0 {
		t.Fatalf("no corruption injected: %+v", fs)
	}
	if fs.PartitionDropped+fs.DialsBlocked == 0 {
		t.Fatalf("partition never touched traffic: %+v", fs)
	}

	// And the healing paths it was meant to exercise saw real work.
	ls, ss := leech.Stats(), seed.Stats()
	if ls.PiecesVerified < 16 {
		t.Fatalf("leech verified %d pieces, want all 16", ls.PiecesVerified)
	}
	if ss.PiecesResent == 0 && ls.PiecesDuplicate == 0 {
		t.Fatalf("no resends or duplicates despite 30%% drop: seed %+v leech %+v", ss, ls)
	}
	if ls.PiecesRejected+ls.BadSignatures+ls.PiecesDroppedNoMetadata == 0 &&
		fs.CorruptDelivered > 0 {
		t.Logf("note: %d corrupt frames delivered but none reached verification", fs.CorruptDelivered)
	}

	// After the storm the daemons settle back to healthy.
	waitLong(t, 30*time.Second, func() bool { return leech.Health().Status == "ok" },
		"leech to report healthy after the partition heals")
}

// TestChaosFloodSoak layers overload on top of the injector: a raw
// connection floods the seed at ~10× its per-peer admission rate while
// the link also drops and corrupts frames. Shedding and Busy pacing
// must hold up when the Busy frames themselves can be lost — the
// flooder just keeps getting shed — and the legitimate download must
// still complete.
func TestChaosFloodSoak(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	chaos := fault.Wrap(net, fault.Config{
		Seed:      7,
		Drop:      0.15,
		Corrupt:   0.05,
		Duplicate: 0.05,
		DelayMax:  time.Millisecond,
	})
	bo := transport.Backoff{Min: 2 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: -1}

	seedCfg := fastCfg(1, chaos)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.PeerRate = 200
	seedCfg.BusyRetryAfter = 50 * time.Millisecond
	seedCfg.Backoff = bo
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	leechCfg := fastCfg(2, chaos)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0"}
	leechCfg.RetryBudget = 64
	leechCfg.Backoff = bo
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	start(ctx, leech)
	waitLong(t, 30*time.Second, func() bool { return len(leech.Manager().Peers()) == 1 },
		"legit hello exchange")

	// The flooder redials when corruption kills its link — a determined
	// abuser does not give up because one connection died.
	floodCtx, stopFlood := context.WithCancel(ctx)
	defer stopFlood()
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		hello := &wire.Hello{
			From:        99,
			Queries:     []string{"f0"},
			Downloading: []metadata.URI{metadata.URIFor(0)},
		}
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for floodCtx.Err() == nil {
			conn, err := chaos.Dial(floodCtx, "seed")
			if err != nil {
				select {
				case <-floodCtx.Done():
				case <-tick.C:
				}
				continue
			}
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for {
					if _, err := conn.Recv(floodCtx); err != nil {
						return
					}
				}
			}()
			for {
				select {
				case <-floodCtx.Done():
				case <-tick.C:
				}
				if floodCtx.Err() != nil || conn.Send(floodCtx, hello) != nil {
					break
				}
			}
			conn.Close()
			<-drained
		}
	}()

	waitLong(t, 60*time.Second, func() bool { return leech.Completed(metadata.URIFor(0)) },
		"download completion under flood + faults")
	waitLong(t, 30*time.Second, func() bool { return seed.Stats().Transport.InboundShed > 0 },
		"admission shedding under faults")

	stopFlood()
	<-floodDone
	cancel()

	st := seed.Stats()
	if st.BusyReplies == 0 {
		t.Fatalf("seed sent no Busy replies under flood: %+v", st)
	}
	if fs := chaos.Stats(); fs.Dropped == 0 {
		t.Fatalf("no drops injected: %+v", fs)
	}
}
