package daemon

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/transport"
)

func waitLong(t *testing.T, limit time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosSoak is the tentpole robustness check: a seed and a leech
// run over the fault injector at 30% drop + 20% corruption, with
// duplication, reordering, random conn kills, dial failures, added
// latency, and one scripted partition — and the download must still
// complete, with every piece checksum-verified, race-clean. The fixed
// seed makes the fault streams reproducible run to run.
//
// The recovery paths this leans on, all exercised in one run: redial
// with backoff after kills, flap demotion, the per-piece ResendAfter
// deadline (hello advertisement as implicit NACK), stall re-drives
// against the retry budget, duplicate dedup, and bad-signature
// tolerance for in-flight corruption.
//
// -short shrinks the partition so the CI smoke finishes quickly;
// `make chaos` runs the full 10 s outage.
func TestChaosSoak(t *testing.T) {
	partition := 10 * time.Second
	limit := 90 * time.Second
	if testing.Short() {
		partition = 2 * time.Second
		limit = 45 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	healAt := time.Second + partition
	t0 := time.Now()
	chaos := fault.Wrap(net, fault.Config{
		Seed:      42,
		Drop:      0.30,
		Corrupt:   0.20,
		Duplicate: 0.05,
		Reorder:   0.05,
		Kill:      0.002,
		DialFail:  0.10,
		DelayMax:  time.Millisecond,
		Schedule: []fault.Event{
			{At: time.Second, Partition: true},
			{At: healAt, Partition: false},
		},
	})

	// Redial must stay fast after the partition heals: cap the backoff
	// well under the outage length so reconnection is not the long pole.
	bo := transport.Backoff{Min: 2 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: -1}

	seedCfg := fastCfg(1, chaos)
	seedCfg.ListenAddr = "seed"
	seedCfg.InternetAccess = true
	seedCfg.PublishFiles = 1
	seedCfg.FileSize = 64 * 1024 // 16 pieces at 4 KB: several hellos' worth
	seedCfg.PieceSize = 4 * 1024
	seedCfg.PiecesPerHello = 4
	seedCfg.Backoff = bo
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	leechCfg := fastCfg(2, chaos)
	leechCfg.PeerAddrs = []string{"seed"}
	leechCfg.Queries = []string{"f0"}
	leechCfg.RetryBudget = 64 // a long partition burns stall retries
	leechCfg.Backoff = bo
	leech, err := New(leechCfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	start(ctx, leech)

	waitLong(t, limit, func() bool { return leech.Completed(metadata.URIFor(0)) },
		"download completion under chaos")

	// Hold the line until the outage window has fully passed: even if
	// the transfer won its race with the partition, the hello beacons
	// keep running into it, so the injector's partition counters always
	// see traffic before we sample them.
	if rest := time.Until(t0.Add(healAt + 500*time.Millisecond)); rest > 0 {
		time.Sleep(rest)
	}

	// The injector really did its job.
	fs := chaos.Stats()
	if fs.Dropped == 0 {
		t.Fatalf("no drops injected: %+v", fs)
	}
	if fs.CorruptDelivered+fs.CorruptDropped+fs.CorruptKilled == 0 {
		t.Fatalf("no corruption injected: %+v", fs)
	}
	if fs.PartitionDropped+fs.DialsBlocked == 0 {
		t.Fatalf("partition never touched traffic: %+v", fs)
	}

	// And the healing paths it was meant to exercise saw real work.
	ls, ss := leech.Stats(), seed.Stats()
	if ls.PiecesVerified < 16 {
		t.Fatalf("leech verified %d pieces, want all 16", ls.PiecesVerified)
	}
	if ss.PiecesResent == 0 && ls.PiecesDuplicate == 0 {
		t.Fatalf("no resends or duplicates despite 30%% drop: seed %+v leech %+v", ss, ls)
	}
	if ls.PiecesRejected+ls.BadSignatures+ls.PiecesDroppedNoMetadata == 0 &&
		fs.CorruptDelivered > 0 {
		t.Logf("note: %d corrupt frames delivered but none reached verification", fs.CorruptDelivered)
	}

	// After the storm the daemons settle back to healthy.
	waitLong(t, 30*time.Second, func() bool { return leech.Health().Status == "ok" },
		"leech to report healthy after the partition heals")
}
