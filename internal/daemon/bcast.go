// Broadcast-group glue: the adapters that plug internal/bcast into the
// daemon. The engine sees the daemon through two narrow views —
// bcastStore (piece state) and bcastSender (group traffic out) — and
// feeds received pieces back through the same verify-and-store path as
// pairwise transfers, so dedup between the two paths is free.
//
// Lock ordering: the engine may call these adapters with its own mutex
// held, so they take d.mu freely; the daemon in turn only calls engine
// methods (Observe, InGroup, HandleGroup, Tick, Stats) with d.mu
// released.
package daemon

import (
	"context"
	"time"

	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/wire"
)

// bcastWantsCap bounds the per-hello piece-state advertisement; a node
// holding more files than this advertises the first bcastWantsCap in
// URI order, and the rest stay on the pairwise path.
const bcastWantsCap = 64

// HandleGroup implements peer.GroupHandler: group messages arriving on
// unicast sessions flow into the engine.
func (h *handler) HandleGroup(from trace.NodeID, msg wire.Msg) {
	d := (*Daemon)(h)
	if d.bcast == nil || d.quarantined(from) {
		return
	}
	d.bcast.HandleGroup(context.Background(), from, msg)
}

// bcastLoop ticks the group engine at the round interval.
func (d *Daemon) bcastLoop(ctx context.Context) {
	t := time.NewTicker(d.cfg.RoundInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.bcast.Tick(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// bcastPump drains the shared broadcast medium into the engine.
func (d *Daemon) bcastPump(ctx context.Context) {
	for {
		msg, err := d.cfg.Broadcast.Recv(ctx)
		if err != nil {
			if ctx.Err() == nil {
				d.logf("daemon %d: broadcast medium down: %v", d.cfg.ID, err)
			}
			return
		}
		from, ok := groupFrom(msg)
		if !ok || from == d.cfg.ID || d.quarantined(from) {
			continue
		}
		d.bcast.HandleGroup(ctx, from, msg)
	}
}

// symbolPump drains the lossy datagram lane into the engine. Loss is
// the lane's job description, so errors from a single Recv are not
// retried per-frame; only a dead lane ends the pump.
func (d *Daemon) symbolPump(ctx context.Context) {
	for {
		msg, err := d.cfg.Symbols.Recv(ctx)
		if err != nil {
			if ctx.Err() == nil {
				d.logf("daemon %d: symbol lane down: %v", d.cfg.ID, err)
			}
			return
		}
		from, ok := groupFrom(msg)
		if !ok || from == d.cfg.ID || d.quarantined(from) {
			continue
		}
		d.bcast.HandleGroup(ctx, from, msg)
	}
}

// groupFrom extracts the sender a group message claims; non-group
// traffic on the medium is ignored.
func groupFrom(msg wire.Msg) (trace.NodeID, bool) {
	switch v := msg.(type) {
	case *wire.GroupHello:
		return v.From, true
	case *wire.Schedule:
		return v.From, true
	case *wire.Grant:
		return v.From, true
	case *wire.PieceBcast:
		return v.From, true
	case *wire.Symbol:
		return v.From, true
	case *wire.SymbolAck:
		return v.From, true
	}
	return 0, false
}

// bcastSender ships group messages: one Send on the shared medium when
// the daemon has one, otherwise a unicast fan-out through the outbox
// (never blocking — the outbox drops on overflow and the next tick
// re-announces).
type bcastSender Daemon

func (s *bcastSender) Broadcast(_ context.Context, members []trace.NodeID, m wire.Msg) {
	d := (*Daemon)(s)
	if bc := d.cfg.Broadcast; bc != nil {
		// The medium is best-effort by design; a full receiver queue is
		// a missed frame, same as radio.
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := bc.Send(sctx, m); err != nil {
			d.logf("daemon %d: broadcast %v: %v", d.cfg.ID, m.Type(), err)
		}
		return
	}
	for _, id := range members {
		if id != d.cfg.ID {
			d.enqueue(id, m)
		}
	}
}

// BroadcastSymbol ships one coded symbol on the datagram lane. It is
// the lossy half of the Sender: no fan-out fallback, no retry — a
// failed send is indistinguishable from a lost datagram, and the
// engine's top-up bursts absorb both. The engine only activates the
// symbol plane when Config.FEC is set, which the daemon gates on the
// lane existing, so the nil check is a belt against misconfiguration,
// not a code path.
func (s *bcastSender) BroadcastSymbol(_ context.Context, m wire.Msg) {
	d := (*Daemon)(s)
	lane := d.cfg.Symbols
	if lane == nil {
		return
	}
	sctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := lane.Send(sctx, m); err != nil {
		d.logf("daemon %d: symbol lane %v: %v", d.cfg.ID, m.Type(), err)
	}
}

// bcastStore is the engine's read/write view of the daemon's state.
type bcastStore Daemon

func (s *bcastStore) LivePeers() []trace.NodeID {
	return (*Daemon)(s).mgr.Peers()
}

// Wants reports this node's per-file piece state: every piece set it
// holds (Downloading marks active incomplete downloads) plus, on
// Internet nodes, the catalog's files as complete holdings.
func (s *bcastStore) Wants() []wire.GroupWant {
	d := (*Daemon)(s)
	now := d.now()
	var out []wire.GroupWant
	seen := make(map[metadata.URI]bool)

	d.mu.Lock()
	for _, uri := range d.node.PieceURIs() {
		if len(out) >= bcastWantsCap {
			break
		}
		ps := d.node.Pieces(uri)
		if ps == nil || ps.Total() == 0 {
			continue
		}
		w := wire.NewGroupWant(uri, ps.Total(), ps.Want && !ps.Complete())
		for i := 0; i < ps.Total(); i++ {
			if ps.Have(i) {
				w.SetHave(i)
			}
		}
		out = append(out, *w)
		seen[uri] = true
	}
	d.mu.Unlock()

	if d.catalog != nil {
		for _, m := range d.catalog.Top(now, bcastWantsCap) {
			if len(out) >= bcastWantsCap {
				break
			}
			if seen[m.URI] {
				continue
			}
			w := wire.NewGroupWant(m.URI, m.NumPieces(), false)
			for i := 0; i < m.NumPieces(); i++ {
				w.SetHave(i)
			}
			out = append(out, *w)
		}
	}
	return out
}

// PieceData regenerates a servable piece, catalog first, cached piece
// sets second — the same sources servePieces draws from.
func (s *bcastStore) PieceData(uri metadata.URI, i int) ([]byte, int, bool) {
	d := (*Daemon)(s)
	now := d.now()
	if d.catalog != nil {
		if rec, err := d.catalog.Lookup(uri); err == nil {
			if i < 0 || i >= rec.NumPieces() {
				return nil, 0, false
			}
			return metadata.SyntheticPiece(uri, i, rec.PieceLen(i)), rec.NumPieces(), true
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sm := d.node.Metadata(uri)
	ps := d.node.Pieces(uri)
	if sm == nil || sm.Meta.Expired(now) || ps == nil || !ps.Have(i) {
		return nil, 0, false
	}
	return metadata.SyntheticPiece(uri, i, sm.Meta.PieceLen(i)), sm.Meta.NumPieces(), true
}

func (s *bcastStore) Popularity(uri metadata.URI) float64 {
	d := (*Daemon)(s)
	if d.catalog != nil {
		return d.catalog.Popularity(d.now(), uri)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if sm := d.node.Metadata(uri); sm != nil {
		return sm.Popularity
	}
	return 0
}

// DeliverPiece feeds a broadcast piece through the pairwise receive
// path: verification against stored metadata, idempotent store (a piece
// already heard pairwise counts as a duplicate, not a conflict), and
// completion detection. The report feeds the fountain plane: false
// (verification failed, metadata missing) makes the engine restart the
// piece's symbol collection instead of acking poisoned bytes.
func (s *bcastStore) DeliverPiece(from trace.NodeID, p *wire.PieceBcast) bool {
	return (*Daemon)(s).onPiece(from, p.AsPiece())
}
