package daemon

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/credit"
	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/store"
	"repro/internal/transport"
)

// crashFile is the single 8-piece file the crash scenarios download:
// big enough that a paced transfer leaves a wide mid-download window.
const (
	crashPieces   = 8
	crashFileSize = crashPieces * metadata.DefaultPieceSize
)

// startSeed runs the publisher the crash scenarios download from: one
// 8-piece file, paced at one piece per hello so crashes land mid-flight.
func startSeed(ctx context.Context, t *testing.T, net *transport.Loopback) *Daemon {
	t.Helper()
	cfg := fastCfg(1, net)
	cfg.ListenAddr = "seed"
	cfg.InternetAccess = true
	cfg.PublishFiles = 1
	cfg.FileSize = crashFileSize
	cfg.PiecesPerHello = 1
	seed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start(ctx, seed)
	return seed
}

// leechCfgFor builds the downloader config against dir with fs as the
// store's filesystem. A small compaction threshold forces snapshots
// mid-download so crash points can land inside a snapshot commit.
func leechCfgFor(net *transport.Loopback, dir string, fs store.FS) Config {
	cfg := fastCfg(2, net)
	cfg.PeerAddrs = []string{"seed"}
	cfg.Queries = []string{"f0"}
	cfg.DataDir = dir
	cfg.StoreFS = fs
	cfg.StoreCompactEvery = 256
	return cfg
}

// pieceCount returns the held-piece count for uri in a recovered state.
func pieceCount(st *store.State, uri metadata.URI) int {
	f := st.Files[uri]
	if f == nil {
		return 0
	}
	return f.HaveCount()
}

// TestRestartResume kills the downloader cleanly mid-download and
// restarts it against the same data directory: the second incarnation
// must recover the persisted pieces, advertise them in its hello
// have-bitmap, finish the file, and never be re-sent a recovered piece.
func TestRestartResume(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	dir := t.TempDir()
	uri := metadata.URIFor(0)

	seed := startSeed(ctx, t, net)

	ctx1, cancel1 := context.WithCancel(ctx)
	leech1, err := New(leechCfgFor(net, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	done1 := start(ctx1, leech1)

	// Kill once a strict prefix is verified: some pieces on disk, some
	// still to fetch.
	waitFor(t, func() bool {
		n := leech1.Stats().PiecesVerified
		return n >= 2 && n < crashPieces
	}, "partial download")
	cancel1()
	if err := <-done1; err != nil && ctx1.Err() == nil {
		t.Fatalf("leech1 run: %v", err)
	}
	verified := int(leech1.Stats().PiecesVerified)

	// Restart against the same directory. New recovers synchronously, so
	// the restored state is observable before Run touches the network.
	leech2, err := New(leechCfgFor(net, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	rec := leech2.store.Stats().Recovery
	if !rec.Recovered {
		t.Fatalf("restart did not recover: %+v", rec)
	}
	restored := pieceCount(leech2.store.State(), uri)
	if restored != verified {
		t.Fatalf("recovered %d pieces, leech1 verified %d (clean shutdown must lose nothing)", restored, verified)
	}

	skippedBefore := seed.Stats().PiecesSkippedHeld
	done2 := start(ctx, leech2)
	waitFor(t, func() bool { return leech2.Completed(uri) }, "resumed download")

	st2 := leech2.Stats()
	if st2.PiecesRefetched != 0 {
		t.Fatalf("restarted node was re-sent %d persisted pieces", st2.PiecesRefetched)
	}
	if got := int(st2.PiecesVerified) + restored; got != crashPieces {
		t.Fatalf("resume fetched %d pieces on top of %d restored, want total %d",
			st2.PiecesVerified, restored, crashPieces)
	}
	// The seed saw the have-bitmap and skipped every restored piece.
	waitFor(t, func() bool { return seed.Stats().PiecesSkippedHeld > skippedBefore }, "seed skipping held pieces")

	cancel()
	<-done2
}

// crashPoints derives the scripted crash schedule from a fault-free
// probe run: the first WAL append's write and sync, the first snapshot
// commit's rename and its neighbours, and points spread across the
// download. Every point is below the probe's op count at completion, so
// the crashed run is guaranteed to reach it.
func crashPoints(opsAtComplete int64, renames []int64, short bool) []int64 {
	pick := map[int64]bool{1: true, 2: true}
	if len(renames) > 0 {
		r := renames[0]
		pick[r-1] = true
		pick[r] = true
		pick[r+1] = true
	}
	if !short {
		pick[opsAtComplete/4] = true
		pick[opsAtComplete/2] = true
		pick[3*opsAtComplete/4] = true
		pick[opsAtComplete-1] = true
	}
	out := make([]int64, 0, len(pick))
	for op := range pick {
		if op >= 1 && op < opsAtComplete {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestCrashRecoverySoak is the scripted kill-and-restart matrix: a
// probe run counts the store's filesystem ops for one full download,
// then each scripted point crashes the filesystem mid-run (torn write
// included), the daemon is discarded, and a fresh daemon reopens the
// same directory. Recovered state must be a consistent prefix of what
// the dead daemon acknowledged, the download must finish, and no
// persisted piece may ever cross the wire again.
func TestCrashRecoverySoak(t *testing.T) {
	uri := metadata.URIFor(0)

	// Probe: fault-free run through a counting FS to learn the op
	// schedule (total mutating ops and where snapshot renames land).
	probe := func() (int64, []int64) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		net := transport.NewLoopback()
		defer net.Close()
		startSeed(ctx, t, net)
		ffs := fault.WrapFS(store.OSFS{}, fault.FSConfig{Seed: 1})
		leech, err := New(leechCfgFor(net, t.TempDir(), ffs))
		if err != nil {
			t.Fatal(err)
		}
		done := start(ctx, leech)
		waitFor(t, func() bool { return leech.Completed(uri) }, "probe download")
		ops := ffs.Stats().Ops
		renames := ffs.RenameOps()
		cancel()
		<-done
		return ops, renames
	}
	opsAtComplete, renames := probe()
	if len(renames) == 0 {
		t.Fatalf("probe run never compacted (ops=%d); CompactEvery too large to exercise snapshot crashes", opsAtComplete)
	}
	points := crashPoints(opsAtComplete, renames, testing.Short())
	t.Logf("probe: %d ops at completion, renames at %v, crash points %v", opsAtComplete, renames, points)

	for _, crashAt := range points {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash-at-op-%d", crashAt), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			net := transport.NewLoopback()
			defer net.Close()
			dir := t.TempDir()
			seed := startSeed(ctx, t, net)

			ffs := fault.WrapFS(store.OSFS{}, fault.FSConfig{Seed: uint64(crashAt) * 101, CrashAtOp: crashAt})
			ctx1, cancel1 := context.WithCancel(ctx)
			leech1, err := New(leechCfgFor(net, dir, ffs))
			if err != nil {
				t.Fatal(err)
			}
			done1 := start(ctx1, leech1)
			waitFor(t, func() bool { return ffs.Crashed() || leech1.Completed(uri) }, "crash point")
			if !ffs.Crashed() {
				t.Fatalf("download completed before scripted crash at op %d", crashAt)
			}
			cancel1()
			<-done1
			verified := int(leech1.Stats().PiecesVerified)

			// Restart against the same directory with a healthy filesystem.
			// Recovery runs inside New, before any network traffic.
			leech2, err := New(leechCfgFor(net, dir, nil))
			if err != nil {
				t.Fatalf("reopen after crash at op %d: %v", crashAt, err)
			}
			recovered := leech2.store.State()
			have := pieceCount(recovered, uri)

			// Consistent prefix: every acknowledged piece is durable, and at
			// most one unacknowledged record (the append the crash tore) may
			// additionally have reached the disk whole.
			if have < verified || have > verified+1 {
				t.Fatalf("crash at op %d: recovered %d pieces, daemon acknowledged %d (want ack..ack+1)",
					crashAt, have, verified)
			}
			if f := recovered.Files[uri]; have > 0 && (f == nil || f.Meta == nil) {
				t.Fatalf("crash at op %d: recovered pieces without the metadata logged before them", crashAt)
			}
			// Credits interleave one append behind pieces, so the recovered
			// ledger is the same prefix give or take one record.
			if c := recovered.Credit[1] / credit.RequestedReward; c > float64(have) || c < float64(have-2) {
				t.Fatalf("crash at op %d: recovered credit %.0f rewards for %d pieces", crashAt, c, have)
			}

			done2 := start(ctx, leech2)
			waitFor(t, func() bool { return leech2.Completed(uri) }, "recovered download")
			st2 := leech2.Stats()
			if st2.PiecesRefetched != 0 {
				t.Fatalf("crash at op %d: %d persisted pieces were re-sent over the wire", crashAt, st2.PiecesRefetched)
			}
			if got := int(st2.PiecesVerified) + have; got != crashPieces {
				t.Fatalf("crash at op %d: %d fetched + %d recovered != %d",
					crashAt, st2.PiecesVerified, have, crashPieces)
			}
			if have > 0 && have < crashPieces {
				waitFor(t, func() bool { return seed.Stats().PiecesSkippedHeld > 0 }, "seed skipping held pieces")
			}

			cancel()
			<-done2
		})
	}
}

// TestHealthReportsRecovery checks the HTTP surface: a restarted node's
// /healthz carries the recovery stats and live WAL size.
func TestHealthReportsRecovery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	dir := t.TempDir()
	uri := metadata.URIFor(0)

	startSeed(ctx, t, net)

	ctx1, cancel1 := context.WithCancel(ctx)
	leech1, err := New(leechCfgFor(net, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	done1 := start(ctx1, leech1)
	waitFor(t, func() bool { return leech1.Completed(uri) }, "first download")
	cancel1()
	<-done1

	leech2, err := New(leechCfgFor(net, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	h := leech2.Health()
	if h.Recovery == nil || !h.Recovery.Recovered {
		t.Fatalf("health after restart: %+v", h)
	}
	if h.Recovery.SnapshotRecords == 0 {
		t.Fatalf("clean shutdown should have compacted into a snapshot: %+v", h.Recovery)
	}
	if err := leech2.store.Close(); err != nil {
		t.Fatal(err)
	}

	// The recovered store also reports broken=false through Stats.
	if st := leech2.Stats(); st.Store == nil || st.Store.Broken {
		t.Fatalf("store stats after recovery: %+v", st.Store)
	}
}
