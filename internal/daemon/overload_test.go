package daemon

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/testutil"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestOutboxClassPriority: a full data queue sheds data frames while
// control frames still enqueue, and the drain order is control first
// regardless of push order.
func TestOutboxClassPriority(t *testing.T) {
	ob := newOutbox(2)
	piece := &wire.Piece{URI: metadata.URIFor(0), Index: 0, Total: 1, Data: []byte("x")}
	for i := 0; i < 2; i++ {
		if !ob.push(2, piece) {
			t.Fatalf("data push %d refused below capacity", i)
		}
	}
	if ob.push(2, piece) {
		t.Fatal("data push admitted past capacity")
	}
	if !ob.push(2, &wire.Hello{From: 1}) {
		t.Fatal("control push refused while only the data class is full")
	}
	ctl, data := ob.dropCounts()
	if ctl != 0 || data != 1 {
		t.Fatalf("drops = control %d, data %d; want 0, 1", ctl, data)
	}
	if !ob.saturated() {
		t.Fatal("outbox with a full class not reported saturated")
	}
	// Control drains before the two earlier-queued data frames.
	m, ok := ob.pop()
	if !ok || m.msg.Type() != wire.TypeHello {
		t.Fatalf("first pop = %v, want the hello", m.msg)
	}
	for i := 0; i < 2; i++ {
		m, ok = ob.pop()
		if !ok || m.msg.Type() != wire.TypePiece {
			t.Fatalf("pop %d = %v, want a piece", i, m.msg)
		}
	}
	if _, ok := ob.pop(); ok {
		t.Fatal("pop from a drained outbox returned a frame")
	}
}

// TestHealthzSaturationRecovers: a saturated data class degrades
// /healthz; draining it walks the verdict back to ok — the reason must
// read live state, not latch.
func TestHealthzSaturationRecovers(t *testing.T) {
	d := bench(t, func(c *Config) { c.OutboxLen = 4 })
	d.mu.Lock()
	d.lastPeerAt = time.Now() // not the degradation under test
	d.mu.Unlock()
	piece := &wire.Piece{URI: metadata.URIFor(0), Index: 0, Total: 1, Data: []byte("x")}
	for i := 0; i < d.out.capPerClass(); i++ {
		d.enqueue(2, piece)
	}
	h := d.Health()
	if h.Status != "degraded" {
		t.Fatalf("health = %q with a saturated data class, want degraded", h.Status)
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, "saturated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want a saturation reason", h.Reasons)
	}
	if h.OutboxDataDepth != d.out.capPerClass() || h.OutboxControlDepth != 0 {
		t.Fatalf("depths = control %d, data %d", h.OutboxControlDepth, h.OutboxDataDepth)
	}
	for {
		if _, ok := d.out.pop(); !ok {
			break
		}
	}
	d.mu.Lock()
	d.lastPeerAt = time.Now()
	d.mu.Unlock()
	if h := d.Health(); h.Status != "ok" {
		t.Fatalf("health = %q %v after draining, want ok", h.Status, h.Reasons)
	}
}

// TestFloodVictimStaysLive is the overload acceptance test: one raw
// connection floods the victim's listener at ~10× its per-peer rate
// while a legitimate daemon downloads a file from it. The victim must
// shed the flood (answering with Busy), go degraded while shedding,
// serve the legitimate peer to completion throughout, and report
// healthy again once the flood stops.
func TestFloodVictimStaysLive(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	victimCfg := fastCfg(1, net)
	victimCfg.ListenAddr = "victim"
	victimCfg.InternetAccess = true
	victimCfg.PublishFiles = 1
	victimCfg.PeerRate = 200 // legit traffic ~100/s fits; the flood does not
	victimCfg.BusyRetryAfter = 50 * time.Millisecond
	victim, err := New(victimCfg)
	if err != nil {
		t.Fatal(err)
	}

	legitCfg := fastCfg(2, net)
	legitCfg.PeerAddrs = []string{"victim"}
	legitCfg.Queries = []string{"f0"}
	legit, err := New(legitCfg)
	if err != nil {
		t.Fatal(err)
	}

	start(ctx, victim)
	start(ctx, legit)
	waitFor(t, func() bool { return len(legit.Manager().Peers()) == 1 }, "legit hello exchange")

	// The flooder speaks just enough protocol to register: a hello
	// handshake, then hellos advertising a download every millisecond —
	// ~1000/s against a 200/s admission rate. A reader drains the
	// victim's replies and counts the Busy frames among them.
	conn, err := net.Dial(ctx, "victim")
	if err != nil {
		t.Fatal(err)
	}
	var busySeen atomic.Uint64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			m, err := conn.Recv(ctx)
			if err != nil {
				return
			}
			if m.Type() == wire.TypeBusy {
				busySeen.Add(1)
			}
		}
	}()
	floodCtx, stopFlood := context.WithCancel(ctx)
	defer stopFlood()
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		hello := &wire.Hello{
			From:        99,
			Queries:     []string{"f0"},
			Downloading: []metadata.URI{metadata.URIFor(0)},
		}
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-floodCtx.Done():
				return
			case <-tick.C:
			}
			if err := conn.Send(floodCtx, hello); err != nil {
				return
			}
		}
	}()

	// While the flood runs: the victim sheds, degrades, and answers
	// Busy — and still completes the legitimate download.
	waitFor(t, func() bool { return victim.Stats().Transport.InboundShed > 0 }, "admission shedding")
	waitFor(t, func() bool { return victim.Health().Status == "degraded" }, "degraded under flood")
	waitFor(t, func() bool { return busySeen.Load() > 0 }, "flooder received Busy")
	waitFor(t, func() bool { return legit.Completed(metadata.URIFor(0)) }, "legit download under flood")

	stopFlood()
	<-floodDone
	conn.Close()
	<-readerDone

	st := victim.Stats()
	if st.BusyReplies == 0 {
		t.Fatalf("victim sent no Busy replies: %+v", st)
	}
	if st.Transport.BusySent == 0 {
		t.Fatal("transport layer counted no Busy sends")
	}
	// Recovery: once the flood stops, the shed window ages out and the
	// verdict walks back to ok.
	waitFor(t, func() bool { return victim.Health().Status == "ok" }, "health recovery after flood")
}

// BenchmarkOutboxShed measures the drop path: pushing a data frame at a
// full data queue (the hot path under overload).
func BenchmarkOutboxShed(b *testing.B) {
	ob := newOutbox(8)
	piece := &wire.Piece{URI: metadata.URIFor(0), Index: 0, Total: 1, Data: []byte("x")}
	for ob.push(2, piece) {
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.push(2, piece)
	}
}
