package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSingleton(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.StdDev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("singleton summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("singleton must have zero CI")
	}
}

func TestKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev with n-1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	wantCI := 1.96 * want / math.Sqrt(8)
	if math.Abs(s.CI95()-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95(), wantCI)
	}
}

func TestConstantSample(t *testing.T) {
	s := Summarize([]float64{1.5, 1.5, 1.5})
	if s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("constant sample: %+v", s)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological floats
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
