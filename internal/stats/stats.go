// Package stats provides the summary statistics the evaluation tooling
// reports over multi-seed runs: mean, sample standard deviation, and a
// normal-approximation 95% confidence interval.
package stats

import "math"

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval around the
// mean under a normal approximation (1.96 * stderr). Zero for samples
// smaller than 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}
