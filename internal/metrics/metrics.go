// Package metrics accounts for the paper's performance measurements:
// the delivery ratios of metadata and files — delivered count over the
// total number of queries generated — measured only over the
// non-Internet-access nodes (§VI-B), plus delivery-delay statistics.
package metrics

import (
	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// QueryKey identifies one query: which node asked for which file.
type QueryKey struct {
	Node trace.NodeID
	URI  metadata.URI
}

// Record tracks one query's outcomes. Unset instants are -1.
type Record struct {
	CreatedAt simtime.Time
	Expires   simtime.Time
	MetaAt    simtime.Time
	FileAt    simtime.Time
}

// Collector accumulates query outcomes. Construct with NewCollector.
type Collector struct {
	records map[QueryKey]*Record

	// Traffic counters (broadcast counts, for ablation reporting).
	MetadataBroadcasts int
	PieceBroadcasts    int
	MetadataReceipts   int
	PieceReceipts      int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{records: make(map[QueryKey]*Record)}
}

// Traffic is a snapshot of the broadcast and receipt counters, taken
// with Collector.Traffic so instrumentation consumers get one coherent
// value instead of reading four fields.
type Traffic struct {
	MetadataBroadcasts int
	PieceBroadcasts    int
	MetadataReceipts   int
	PieceReceipts      int
}

// Traffic returns the traffic counters as one snapshot.
func (c *Collector) Traffic() Traffic {
	return Traffic{
		MetadataBroadcasts: c.MetadataBroadcasts,
		PieceBroadcasts:    c.PieceBroadcasts,
		MetadataReceipts:   c.MetadataReceipts,
		PieceReceipts:      c.PieceReceipts,
	}
}

// QueryCreated registers a query by a measured (non-Internet) node.
func (c *Collector) QueryCreated(node trace.NodeID, uri metadata.URI, at, expires simtime.Time) {
	key := QueryKey{Node: node, URI: uri}
	if _, ok := c.records[key]; ok {
		return
	}
	c.records[key] = &Record{CreatedAt: at, Expires: expires, MetaAt: -1, FileAt: -1}
}

// MetadataDelivered marks the query's metadata as delivered at 'at'. Only
// the first delivery before expiry counts. Unknown queries are ignored
// (deliveries to Internet nodes are not measured).
func (c *Collector) MetadataDelivered(node trace.NodeID, uri metadata.URI, at simtime.Time) {
	r, ok := c.records[QueryKey{Node: node, URI: uri}]
	if !ok || r.MetaAt >= 0 || at >= r.Expires {
		return
	}
	r.MetaAt = at
}

// FileDelivered marks the query's file as completely downloaded at 'at'.
func (c *Collector) FileDelivered(node trace.NodeID, uri metadata.URI, at simtime.Time) {
	r, ok := c.records[QueryKey{Node: node, URI: uri}]
	if !ok || r.FileAt >= 0 || at >= r.Expires {
		return
	}
	r.FileAt = at
}

// Queries returns the number of registered queries.
func (c *Collector) Queries() int { return len(c.records) }

// MetadataDeliveries returns how many queries had metadata delivered.
func (c *Collector) MetadataDeliveries() int {
	n := 0
	for _, r := range c.records {
		if r.MetaAt >= 0 {
			n++
		}
	}
	return n
}

// FileDeliveries returns how many queries had the full file delivered.
func (c *Collector) FileDeliveries() int {
	n := 0
	for _, r := range c.records {
		if r.FileAt >= 0 {
			n++
		}
	}
	return n
}

// MetadataRatio returns delivered metadata over queries (0 if none).
func (c *Collector) MetadataRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.MetadataDeliveries()) / float64(len(c.records))
}

// FileRatio returns delivered files over queries (0 if none).
func (c *Collector) FileRatio() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.FileDeliveries()) / float64(len(c.records))
}

// MeanMetadataDelay returns the average creation-to-delivery delay over
// delivered metadata, or 0 with no deliveries.
func (c *Collector) MeanMetadataDelay() simtime.Duration {
	var total simtime.Duration
	n := 0
	for _, r := range c.records {
		if r.MetaAt >= 0 {
			total += r.MetaAt.Sub(r.CreatedAt)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / simtime.Duration(n)
}

// MeanFileDelay returns the average creation-to-completion delay over
// delivered files, or 0 with no deliveries.
func (c *Collector) MeanFileDelay() simtime.Duration {
	var total simtime.Duration
	n := 0
	for _, r := range c.records {
		if r.FileAt >= 0 {
			total += r.FileAt.Sub(r.CreatedAt)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / simtime.Duration(n)
}

// Record returns the record for a query, or nil.
func (c *Collector) Record(node trace.NodeID, uri metadata.URI) *Record {
	return c.records[QueryKey{Node: node, URI: uri}]
}

// NodeStats aggregates one querying node's outcomes.
type NodeStats struct {
	Queries            int
	MetadataDeliveries int
	FileDeliveries     int
	// TotalMetadataDelay sums creation-to-delivery delays over the
	// node's delivered metadata (divide by MetadataDeliveries for the
	// mean).
	TotalMetadataDelay simtime.Duration
}

// PerNode returns per-node aggregates, keyed by querying node.
func (c *Collector) PerNode() map[trace.NodeID]NodeStats {
	out := make(map[trace.NodeID]NodeStats)
	for key, r := range c.records {
		st := out[key.Node]
		st.Queries++
		if r.MetaAt >= 0 {
			st.MetadataDeliveries++
			st.TotalMetadataDelay += r.MetaAt.Sub(r.CreatedAt)
		}
		if r.FileAt >= 0 {
			st.FileDeliveries++
		}
		out[key.Node] = st
	}
	return out
}

// DayStats aggregates activity in one simulated day.
type DayStats struct {
	// QueriesCreated counts queries whose creation fell in the day.
	QueriesCreated int
	// MetadataDelivered and FilesDelivered count deliveries that
	// happened during the day.
	MetadataDelivered int
	FilesDelivered    int
}

// DailySeries returns per-day activity for days [0, days); deliveries on
// later days are dropped. Useful for plotting system warm-up and steady
// state.
func (c *Collector) DailySeries(days int) []DayStats {
	out := make([]DayStats, days)
	inRange := func(t simtime.Time) bool { return t >= 0 && t.Day() < days }
	for _, r := range c.records {
		if inRange(r.CreatedAt) {
			out[r.CreatedAt.Day()].QueriesCreated++
		}
		if r.MetaAt >= 0 && inRange(r.MetaAt) {
			out[r.MetaAt.Day()].MetadataDelivered++
		}
		if r.FileAt >= 0 && inRange(r.FileAt) {
			out[r.FileAt.Day()].FilesDelivered++
		}
	}
	return out
}
