package metrics

import (
	"testing"

	"repro/internal/simtime"
)

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.Queries() != 0 || c.MetadataRatio() != 0 || c.FileRatio() != 0 {
		t.Fatal("empty collector not zeroed")
	}
	if c.MeanMetadataDelay() != 0 || c.MeanFileDelay() != 0 {
		t.Fatal("empty collector delays not zero")
	}
}

func TestDeliveryRatios(t *testing.T) {
	c := NewCollector()
	exp := simtime.Time(simtime.Days(3))
	c.QueryCreated(1, "u1", 0, exp)
	c.QueryCreated(1, "u2", 0, exp)
	c.QueryCreated(2, "u1", 0, exp)
	c.MetadataDelivered(1, "u1", 10)
	c.MetadataDelivered(2, "u1", 20)
	c.FileDelivered(1, "u1", 30)

	if got := c.Queries(); got != 3 {
		t.Fatalf("Queries = %d", got)
	}
	if got := c.MetadataRatio(); got != 2.0/3 {
		t.Fatalf("MetadataRatio = %v", got)
	}
	if got := c.FileRatio(); got != 1.0/3 {
		t.Fatalf("FileRatio = %v", got)
	}
}

func TestDuplicateQueryCreationIgnored(t *testing.T) {
	c := NewCollector()
	c.QueryCreated(1, "u", 0, 100)
	c.QueryCreated(1, "u", 50, 200)
	if c.Queries() != 1 {
		t.Fatalf("Queries = %d", c.Queries())
	}
	if got := c.Record(1, "u").CreatedAt; got != 0 {
		t.Fatalf("CreatedAt = %v, first registration must win", got)
	}
}

func TestFirstDeliveryWins(t *testing.T) {
	c := NewCollector()
	c.QueryCreated(1, "u", 0, 1000)
	c.MetadataDelivered(1, "u", 10)
	c.MetadataDelivered(1, "u", 5)
	if got := c.Record(1, "u").MetaAt; got != 10 {
		t.Fatalf("MetaAt = %v, want first delivery kept", got)
	}
}

func TestLateDeliveryNotCounted(t *testing.T) {
	c := NewCollector()
	c.QueryCreated(1, "u", 0, 100)
	c.MetadataDelivered(1, "u", 100) // at expiry: too late
	c.FileDelivered(1, "u", 150)
	if c.MetadataDeliveries() != 0 || c.FileDeliveries() != 0 {
		t.Fatal("post-expiry delivery counted")
	}
}

func TestUnknownQueryIgnored(t *testing.T) {
	c := NewCollector()
	c.MetadataDelivered(9, "u", 10)
	c.FileDelivered(9, "u", 10)
	if c.Queries() != 0 {
		t.Fatal("delivery created a query record")
	}
}

func TestDelays(t *testing.T) {
	c := NewCollector()
	exp := simtime.Time(simtime.Days(3))
	c.QueryCreated(1, "u1", 100, exp)
	c.QueryCreated(1, "u2", 100, exp)
	c.MetadataDelivered(1, "u1", 200)
	c.MetadataDelivered(1, "u2", 400)
	c.FileDelivered(1, "u1", 500)
	if got := c.MeanMetadataDelay(); got != 200 {
		t.Fatalf("MeanMetadataDelay = %v, want 200", got)
	}
	if got := c.MeanFileDelay(); got != 400 {
		t.Fatalf("MeanFileDelay = %v, want 400", got)
	}
}

func TestRecordLookup(t *testing.T) {
	c := NewCollector()
	if c.Record(1, "u") != nil {
		t.Fatal("unknown record not nil")
	}
	c.QueryCreated(1, "u", 0, 10)
	if c.Record(1, "u") == nil {
		t.Fatal("record missing")
	}
}

func TestDailySeries(t *testing.T) {
	c := NewCollector()
	day := simtime.Time(simtime.Day)
	c.QueryCreated(1, "u1", 0, 10*day)
	c.QueryCreated(1, "u2", day, 10*day)
	c.MetadataDelivered(1, "u1", day+1)
	c.FileDelivered(1, "u1", 2*day+5)
	c.MetadataDelivered(1, "u2", 9*day)

	got := c.DailySeries(3)
	if got[0].QueriesCreated != 1 || got[1].QueriesCreated != 1 {
		t.Fatalf("queries per day: %+v", got)
	}
	if got[1].MetadataDelivered != 1 {
		t.Fatalf("day 1 metadata: %+v", got[1])
	}
	if got[2].FilesDelivered != 1 {
		t.Fatalf("day 2 files: %+v", got[2])
	}
	// The day-9 delivery is outside the 3-day window.
	total := 0
	for _, d := range got {
		total += d.MetadataDelivered
	}
	if total != 1 {
		t.Fatalf("out-of-window delivery counted: %+v", got)
	}
}

func TestDailySeriesEmpty(t *testing.T) {
	c := NewCollector()
	got := c.DailySeries(2)
	if len(got) != 2 || got[0] != (DayStats{}) {
		t.Fatalf("empty series = %+v", got)
	}
}

func TestTrafficSnapshot(t *testing.T) {
	c := NewCollector()
	if got := c.Traffic(); got != (Traffic{}) {
		t.Fatalf("empty traffic = %+v", got)
	}
	c.MetadataBroadcasts = 3
	c.PieceBroadcasts = 5
	c.MetadataReceipts = 7
	c.PieceReceipts = 11
	want := Traffic{MetadataBroadcasts: 3, PieceBroadcasts: 5, MetadataReceipts: 7, PieceReceipts: 11}
	if got := c.Traffic(); got != want {
		t.Fatalf("traffic = %+v, want %+v", got, want)
	}
}
