package limit

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's admission state.
type BreakerState int

const (
	// Closed admits every attempt (the healthy state).
	Closed BreakerState = iota
	// Open fast-fails every attempt until the cooldown deadline.
	Open
	// HalfOpen admits exactly one probe; its outcome decides whether
	// the breaker closes again or re-opens.
	HalfOpen
)

// String implements fmt.Stringer for logs and health output.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker (and, via Set, a keyed family
// of them).
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker
	// (default 3).
	Failures int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Jitter spreads each open deadline uniformly over
	// [Cooldown, Cooldown*(1+Jitter)] so a fleet of breakers tripped by
	// the same outage does not probe in lockstep. Default 0.25;
	// negative disables jitter.
	Jitter float64
	// Now injects the clock (nil = time.Now).
	Now Clock
	// Seed fixes the jitter stream for deterministic tests (0 = fixed
	// default seed; Set derives a per-key seed from it).
	Seed uint64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.25
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Seed == 0 {
		c.Seed = 0x6c696d6974 // "limit"
	}
	return c
}

// Breaker is a small closed/open/half-open circuit breaker intended to
// gate dial attempts to a single address. It is safe for concurrent
// use.
type Breaker struct {
	mu         sync.Mutex
	cfg        BreakerConfig
	state      BreakerState
	fails      int       // consecutive failures while closed
	until      time.Time // open deadline
	rng        uint64    // splitmix64 state for jittered cooldowns
	suppressed atomic.Uint64
	opens      atomic.Uint64
}

// NewBreaker returns a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, rng: cfg.Seed}
}

// Allow reports whether an attempt may proceed. While open it returns
// false until the cooldown deadline passes, then admits exactly one
// half-open probe; further calls fail until Success or Failure settles
// the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Before(b.until) {
			b.suppressed.Add(1)
			return false
		}
		b.state = HalfOpen
		return true
	default: // HalfOpen: a probe is already in flight
		b.suppressed.Add(1)
		return false
	}
}

// Success records a successful attempt: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
}

// Failure records a failed attempt. While closed it counts toward the
// trip threshold; a half-open probe failure re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.open()
	case Closed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.open()
		}
	}
}

// open trips the breaker with a jittered cooldown. Caller holds b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.fails = 0
	b.until = b.cfg.Now().Add(b.jitteredCooldown())
	b.opens.Add(1)
}

// jitteredCooldown draws Cooldown*(1+u*Jitter) with u uniform in [0,1)
// from a splitmix64 stream. Caller holds b.mu.
func (b *Breaker) jitteredCooldown() time.Duration {
	d := b.cfg.Cooldown
	if b.cfg.Jitter <= 0 {
		return d
	}
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return d + time.Duration(u*b.cfg.Jitter*float64(d))
}

// State reports the breaker's current admission state, resolving an
// expired open deadline to half-open.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && !b.cfg.Now().Before(b.until) {
		return HalfOpen
	}
	return b.state
}

// Suppressed reports how many attempts Allow has fast-failed.
func (b *Breaker) Suppressed() uint64 { return b.suppressed.Load() }

// Opens reports how many times the breaker has tripped.
func (b *Breaker) Opens() uint64 { return b.opens.Load() }

// Set is a keyed family of breakers sharing one configuration —
// typically one breaker per dial address. Keys are created on first
// use.
type Set struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewSet returns an empty breaker family.
func NewSet(cfg BreakerConfig) *Set {
	return &Set{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// Get returns the breaker for key, creating it (closed) on first use.
func (s *Set) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b
	}
	cfg := s.cfg
	// Derive a per-key jitter seed so sibling breakers do not share a
	// cooldown stream (FNV-1a over the key).
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	cfg.Seed ^= h
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	b := NewBreaker(cfg)
	s.m[key] = b
	return b
}

// SetStats is a point-in-time aggregate over a Set, shaped for /stats
// JSON.
type SetStats struct {
	Breakers   int    `json:"breakers"`
	Open       int    `json:"open"`
	Suppressed uint64 `json:"suppressed"`
	Opens      uint64 `json:"opens"`
}

// Stats aggregates the family's current state and counters.
func (s *Set) Stats() SetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st SetStats
	st.Breakers = len(s.m)
	for _, b := range s.m {
		if b.State() == Open {
			st.Open++
		}
		st.Suppressed += b.Suppressed()
		st.Opens += b.Opens()
	}
	return st
}
