package limit

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-driven time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketBasics(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 5, clk.Now)
	// Starts full: exactly burst tokens available.
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("token %d denied from a full bucket", i)
		}
	}
	if b.Allow() {
		t.Fatal("allowed past burst with no time elapsed")
	}
	// 100ms at 10/s refills one token.
	clk.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("denied after refill interval")
	}
	if b.Allow() {
		t.Fatal("allowed two tokens after one refill interval")
	}
}

// TestBucketNeverNegative drives a random schedule of spends and
// advances and checks the invariants: the balance never goes below
// zero, never exceeds burst, and a denied AllowN leaves it unchanged.
func TestBucketNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	clk := newFakeClock()
	b := NewBucket(50, 10, clk.Now)
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			before := b.Tokens()
			n := float64(1 + rng.Intn(4))
			ok := b.AllowN(n)
			after := b.Tokens()
			if after < 0 {
				t.Fatalf("step %d: balance went negative: %v", i, after)
			}
			if !ok && after < before-1e-9 {
				t.Fatalf("step %d: denied AllowN drained tokens: %v -> %v", i, before, after)
			}
		case 1:
			clk.Advance(time.Duration(rng.Intn(40)) * time.Millisecond)
		default:
			if got := b.Tokens(); got > 10+1e-9 {
				t.Fatalf("step %d: balance exceeded burst: %v", i, got)
			}
		}
	}
}

// TestBucketRefillMonotone checks that under a frozen clock repeated
// reads do not change the balance, and that advancing the clock never
// lowers it.
func TestBucketRefillMonotone(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(7, 20, clk.Now)
	for i := 0; i < 15; i++ {
		b.Allow()
	}
	prev := b.Tokens()
	if got := b.Tokens(); got != prev {
		t.Fatalf("balance drifted under frozen clock: %v -> %v", prev, got)
	}
	for i := 0; i < 200; i++ {
		clk.Advance(13 * time.Millisecond)
		got := b.Tokens()
		if got+1e-9 < prev {
			t.Fatalf("refill not monotone: %v -> %v", prev, got)
		}
		prev = got
	}
}

func TestBucketClockSkewBackwards(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 4, clk.Now)
	b.Allow()
	before := b.Tokens()
	clk.Advance(-time.Hour)
	if got := b.Tokens(); got < before-1e-9 {
		t.Fatalf("backwards clock drained bucket: %v -> %v", before, got)
	}
}

func TestBucketRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 1, clk.Now)
	if d := b.RetryAfter(); d != 0 {
		t.Fatalf("full bucket RetryAfter = %v, want 0", d)
	}
	b.Allow()
	d := b.RetryAfter()
	if d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms]", d)
	}
	clk.Advance(d)
	if !b.Allow() {
		t.Fatal("denied after waiting the advertised RetryAfter")
	}
}

func TestWindow(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(3, time.Second, clk.Now)
	for i := 0; i < 3; i++ {
		if !w.Allow() {
			t.Fatalf("event %d denied under limit", i)
		}
	}
	if w.Allow() {
		t.Fatal("allowed past window limit")
	}
	// The window slides: after the span the oldest marks age out.
	clk.Advance(time.Second + time.Millisecond)
	if got := w.Len(); got != 0 {
		t.Fatalf("window kept %d stale marks", got)
	}
	if !w.Allow() {
		t.Fatal("denied after window slid past all marks")
	}
}

func TestWindowPartialSlide(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(2, time.Second, clk.Now)
	w.Allow()
	clk.Advance(600 * time.Millisecond)
	w.Allow()
	if w.Allow() {
		t.Fatal("allowed third event inside window")
	}
	// 500ms later the first mark (age 1.1s) is out, the second (age
	// 0.5s) still counts.
	clk.Advance(500 * time.Millisecond)
	if !w.Allow() {
		t.Fatal("denied although one mark aged out")
	}
	if w.Allow() {
		t.Fatal("allowed although window is full again")
	}
}

// TestBreakerStateMachine walks the closed→open→half-open transitions
// as a table of scripted steps.
func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	br := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second, Jitter: -1, Now: clk.Now})
	steps := []struct {
		name    string
		do      func()
		state   BreakerState
		allowed bool
	}{
		{"initially closed", func() {}, Closed, true},
		{"one failure stays closed", br.Failure, Closed, true},
		{"success resets streak", br.Success, Closed, true},
		{"fail 1", br.Failure, Closed, true},
		{"fail 2", br.Failure, Closed, true},
		{"fail 3 trips open", br.Failure, Open, false},
		{"still open mid-cooldown", func() { clk.Advance(500 * time.Millisecond) }, Open, false},
		{"cooldown elapsed admits probe", func() { clk.Advance(600 * time.Millisecond) }, HalfOpen, true},
		{"second probe blocked", func() {}, HalfOpen, false},
		{"probe failure re-opens", br.Failure, Open, false},
		{"second cooldown", func() { clk.Advance(1100 * time.Millisecond) }, HalfOpen, true},
		{"probe success closes", br.Success, Closed, true},
		{"closed again after recovery", func() {}, Closed, true},
	}
	for _, s := range steps {
		s.do()
		if got := br.State(); got != s.state {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.state)
		}
		if got := br.Allow(); got != s.allowed {
			t.Fatalf("%s: Allow = %v, want %v", s.name, got, s.allowed)
		}
	}
	if br.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", br.Opens())
	}
	if br.Suppressed() == 0 {
		t.Fatal("no suppressed attempts counted")
	}
}

// TestBreakerJitterBounds trips the breaker many times and checks every
// cooldown lands in [Cooldown, Cooldown*(1+Jitter)] and that the stream
// is not constant.
func TestBreakerJitterBounds(t *testing.T) {
	clk := newFakeClock()
	br := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Jitter: 0.5, Now: clk.Now, Seed: 7})
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		br.Failure() // trips immediately (threshold 1)
		br.mu.Lock()
		d := br.until.Sub(clk.Now())
		br.mu.Unlock()
		if d < time.Second || d > 1500*time.Millisecond {
			t.Fatalf("trip %d: cooldown %v outside [1s, 1.5s]", i, d)
		}
		seen[d] = true
		clk.Advance(2 * time.Second)
		if !br.Allow() { // half-open probe
			t.Fatalf("trip %d: probe denied after cooldown", i)
		}
		br.Success()
	}
	if len(seen) < 2 {
		t.Fatal("jittered cooldowns are constant")
	}
}

func TestSetKeysIndependent(t *testing.T) {
	clk := newFakeClock()
	s := NewSet(BreakerConfig{Failures: 1, Cooldown: time.Second, Now: clk.Now})
	a, b := s.Get("addr-a"), s.Get("addr-b")
	if a == b {
		t.Fatal("distinct keys share a breaker")
	}
	if s.Get("addr-a") != a {
		t.Fatal("same key returned a fresh breaker")
	}
	a.Failure()
	if a.State() != Open {
		t.Fatal("breaker a did not trip")
	}
	if !b.Allow() {
		t.Fatal("tripping a suppressed b")
	}
	st := s.Stats()
	if st.Breakers != 2 || st.Open != 1 || st.Opens != 1 {
		t.Fatalf("Stats = %+v, want 2 breakers, 1 open, 1 trip", st)
	}
}

func TestBucketConcurrent(t *testing.T) {
	b := NewBucket(1e6, 1000, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Allow()
			}
		}()
	}
	wg.Wait()
	if got := b.Tokens(); got < 0 {
		t.Fatalf("balance negative after concurrent spends: %v", got)
	}
}

func BenchmarkLimiterAllow(b *testing.B) {
	bk := NewBucket(float64(b.N)+1e9, float64(b.N)+1e9, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Allow()
	}
}
