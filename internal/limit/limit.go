// Package limit provides the small admission-control primitives the
// overload-protection layer is built from: a token-bucket rate limiter,
// a sliding-window counter, and a dial circuit breaker. Everything is
// stdlib-only and takes an injectable clock so tests (and the
// deterministic swarm harness) can drive time by hand.
package limit

import (
	"sync"
	"time"
)

// Clock is the time source a limiter samples. A nil Clock means
// time.Now.
type Clock func() time.Time

// Bucket is a classic token bucket: capacity Burst tokens, refilled at
// Rate tokens per second. Allow spends one token when available. The
// zero value is unusable; construct with NewBucket.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    Clock
}

// NewBucket returns a bucket refilling at rate tokens/second with the
// given capacity. A non-positive burst defaults to 2×rate (floor 1) so
// short legitimate spikes ride through. The bucket starts full.
func NewBucket(rate, burst float64, now Clock) *Bucket {
	if burst <= 0 {
		burst = 2 * rate
		if burst < 1 {
			burst = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// refill advances the bucket to the clock's current reading. Caller
// holds b.mu. Time moving backwards (clock skew) is treated as zero
// elapsed, never as a drain.
func (b *Bucket) refill() {
	t := b.now()
	elapsed := t.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// Allow spends one token if available.
func (b *Bucket) Allow() bool { return b.AllowN(1) }

// AllowN spends n tokens if all are available; partial spends never
// happen, so the balance cannot go negative.
func (b *Bucket) AllowN(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tokens reports the current balance after refill (test/diagnostic
// hook).
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

// RetryAfter estimates how long until one token is available. Zero
// means a call to Allow would succeed now.
func (b *Bucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 1 {
		return 0
	}
	if b.rate <= 0 {
		return time.Hour
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Window is a sliding-window counter: at most Limit events inside any
// trailing Span. It keeps the event timestamps, so it is exact (no
// fixed-bucket boundary error) and sized for per-peer limits, not for
// millions of events per window.
type Window struct {
	mu    sync.Mutex
	limit int
	span  time.Duration
	now   Clock
	marks []time.Time
}

// NewWindow returns a sliding-window limiter admitting limit events per
// span.
func NewWindow(limit int, span time.Duration, now Clock) *Window {
	if limit < 1 {
		limit = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Window{limit: limit, span: span, now: now}
}

// Allow records an event if the trailing window has room.
func (w *Window) Allow() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.now()
	w.prune(t)
	if len(w.marks) >= w.limit {
		return false
	}
	w.marks = append(w.marks, t)
	return true
}

// Len reports how many events are inside the current window.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prune(w.now())
	return len(w.marks)
}

// prune drops marks older than span. Caller holds w.mu.
func (w *Window) prune(t time.Time) {
	cut := t.Add(-w.span)
	i := 0
	for i < len(w.marks) && !w.marks[i].After(cut) {
		i++
	}
	if i > 0 {
		w.marks = append(w.marks[:0], w.marks[i:]...)
	}
}
