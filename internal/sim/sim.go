// Package sim provides the discrete-event simulation engine: a clock and
// an ordered event loop built on the eventq heap. Protocol logic schedules
// work at simulated instants; the engine fires events in (time, insertion)
// order, so runs are fully deterministic.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/eventq"
	"repro/internal/simtime"
)

// ErrPastEvent reports an attempt to schedule before the current time.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// Engine is a single-threaded discrete-event loop. The zero value is
// ready to use, starting at time zero.
type Engine struct {
	queue eventq.Queue
	now   simtime.Time
	fired int
}

// Stats is a snapshot of engine progress, cheap to take at any instant
// (instrumentation for the sweep harness and long-running tools).
type Stats struct {
	// Now is the current simulated time.
	Now simtime.Time
	// Fired is the number of events executed so far.
	Fired int
	// Pending is the number of scheduled, unfired events.
	Pending int
}

// Stats returns a snapshot of the engine's progress counters.
func (e *Engine) Stats() Stats {
	return Stats{Now: e.now, Fired: e.fired, Pending: e.queue.Len()}
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() int { return e.fired }

// Pending returns the number of scheduled, unfired events.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at t. Scheduling at the current instant is
// allowed (the event fires after already-queued events at that instant).
func (e *Engine) At(t simtime.Time, fn func()) error {
	if t < e.now {
		return fmt.Errorf("at %v (now %v): %w", t, e.now, ErrPastEvent)
	}
	e.queue.Push(t, fn)
	return nil
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("after %v: %w", d, ErrPastEvent)
	}
	return e.At(e.now.Add(d), fn)
}

// Step fires the next event, reporting whether one existed.
func (e *Engine) Step() bool {
	ev := e.queue.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.Time
	e.fired++
	if ev.Fire != nil {
		ev.Fire()
	}
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with Time <= deadline, then advances the clock to
// the deadline.
func (e *Engine) RunUntil(deadline simtime.Time) {
	for {
		next := e.queue.Peek()
		if next == nil || next.Time > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
