package sim

import (
	"errors"
	"testing"

	"repro/internal/simtime"
)

func TestRunFiresInOrder(t *testing.T) {
	var e Engine
	var fired []int
	mustAt := func(tm simtime.Time, id int) {
		if err := e.At(tm, func() { fired = append(fired, id) }); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(30, 3)
	mustAt(10, 1)
	mustAt(20, 2)
	e.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 30 || e.Fired() != 3 || e.Pending() != 0 {
		t.Fatalf("engine state: now=%v fired=%d pending=%d", e.Now(), e.Fired(), e.Pending())
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	var e Engine
	if err := e.At(10, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.At(5, nil); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("At(past) = %v", err)
	}
	if err := e.After(-1, nil); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("After(-1) = %v", err)
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	var e Engine
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			if err := e.After(10, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.At(0, chain); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if count != 5 {
		t.Fatalf("chain fired %d times", count)
	}
	if e.Now() != 40 {
		t.Fatalf("now = %v, want 40", e.Now())
	}
}

func TestSameInstantScheduling(t *testing.T) {
	var e Engine
	var fired []int
	if err := e.At(10, func() {
		fired = append(fired, 1)
		// Scheduling at the current instant is allowed and fires later.
		if err := e.At(e.Now(), func() { fired = append(fired, 2) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []simtime.Time
	for _, tm := range []simtime.Time{10, 20, 30} {
		tm := tm
		if err := e.At(tm, func() { fired = append(fired, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 20 || e.Pending() != 1 {
		t.Fatalf("now=%v pending=%d", e.Now(), e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 3 || e.Now() != 100 {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestStatsSnapshot(t *testing.T) {
	var e Engine
	if got := e.Stats(); got != (Stats{}) {
		t.Fatalf("zero engine stats = %+v", got)
	}
	for _, tm := range []simtime.Time{5, 10, 15} {
		if err := e.At(tm, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(10)
	got := e.Stats()
	want := Stats{Now: 10, Fired: 2, Pending: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	e.Run()
	if got := e.Stats(); got.Fired != 3 || got.Pending != 0 {
		t.Fatalf("drained stats = %+v", got)
	}
}
