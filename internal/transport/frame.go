package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds one length-framed message: the wire codec's largest
// payload (a 16 MB piece) plus generous header room. A peer declaring a
// longer frame is hostile or desynchronized; the connection closes.
const MaxFrame = 16*1024*1024 + 64*1024

// ErrFrameTooBig reports a declared frame length above MaxFrame.
var ErrFrameTooBig = fmt.Errorf("transport: frame exceeds %d bytes", MaxFrame)

// writeFrame writes one message as a 4-byte big-endian length prefix
// followed by the encoded bytes.
func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed frame. io.EOF at a frame boundary
// is a clean shutdown; mid-frame EOF becomes io.ErrUnexpectedEOF.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return frame, nil
}
