package transport

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/limit"
	"repro/internal/rng"
)

// Backoff generates exponentially growing, jittered retry delays. The
// zero value uses the defaults noted on each field.
type Backoff struct {
	// Min is the first delay (default 100ms).
	Min time.Duration
	// Max caps the delay growth (default 15s).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// times the nominal value, de-synchronizing reconnect storms
	// (default 0.5; set negative for exactly zero jitter).
	Jitter float64
	// Rand drives jitter draws. Defaults to a clock-seeded source; fix
	// it for deterministic tests.
	Rand *rng.Rand
	// Breaker, when set, gates DialBackoff's attempts: while the
	// breaker is open a retry round skips the dial entirely and just
	// sleeps, so a repeatedly failing address costs its cooldown, not a
	// dial, per round. Outcomes of real attempts feed the breaker.
	Breaker *limit.Breaker
}

func (b Backoff) min() time.Duration {
	if b.Min > 0 {
		return b.Min
	}
	return 100 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 15 * time.Second
}

func (b Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return 2
}

func (b Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.5
	default:
		return math.Min(b.Jitter, 1)
	}
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.min()) * math.Pow(b.factor(), float64(attempt))
	d = math.Min(d, float64(b.max()))
	if j := b.jitter(); j > 0 {
		var u float64
		if b.Rand != nil {
			u = b.Rand.Float64()
		} else {
			u = globalJitter()
		}
		d *= 1 - j + 2*j*u
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// jitterMu guards jitterRand, a process-wide clock-seeded source.
var (
	jitterMu   sync.Mutex
	jitterRand = rng.New(uint64(time.Now().UnixNano()))
)

func globalJitter() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// DialBackoff dials addr, retrying with exponential backoff and jitter
// until a connection is established or ctx ends. Cancellation is
// honored everywhere: before the first dial, mid-dial (when the inner
// transport cooperates), and mid-sleep. A version mismatch
// (ErrVersionMismatch) stops the retry loop immediately — the peer is
// healthy but incompatible, and no amount of redialing fixes that.
func DialBackoff(ctx context.Context, tr Transport, addr string, b Backoff) (Conn, error) {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if b.Breaker == nil || b.Breaker.Allow() {
			c, err := tr.Dial(ctx, addr)
			if err == nil {
				if b.Breaker != nil {
					b.Breaker.Success()
				}
				return c, nil
			}
			if errors.Is(err, ErrVersionMismatch) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if b.Breaker != nil {
				b.Breaker.Failure()
			}
		}
		timer.Reset(b.Delay(attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
