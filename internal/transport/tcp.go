package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/wire"
)

// TCP defaults.
const (
	DefaultDialTimeout  = 5 * time.Second
	DefaultWriteTimeout = 10 * time.Second
	DefaultQueueLen     = 64
)

// TCP is the socket Transport. The zero value is usable; fields override
// the defaults above.
type TCP struct {
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; a peer that stops draining
	// its socket for this long is dropped rather than wedging the
	// writer.
	WriteTimeout time.Duration
	// ReadTimeout, when positive, bounds the wait for each inbound
	// frame. Under the hello protocol peers beacon every second, so a
	// few multiples of the liveness window is a sensible value; zero
	// means Recv waits forever (liveness is then the session layer's
	// job).
	ReadTimeout time.Duration
	// QueueLen is the per-conn send queue capacity in frames.
	QueueLen int
}

func (t *TCP) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return DefaultDialTimeout
}

func (t *TCP) writeTimeout() time.Duration {
	if t.WriteTimeout > 0 {
		return t.WriteTimeout
	}
	return DefaultWriteTimeout
}

func (t *TCP) queueLen() int {
	if t.QueueLen > 0 {
		return t.QueueLen
	}
	return DefaultQueueLen
}

// Listen binds a TCP listener on addr (host:port; ":0" picks a free
// port, recovered via Addr).
func (t *TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{t: t, ln: ln}, nil
}

// Dial connects to addr.
func (t *TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	d := net.Dialer{Timeout: t.dialTimeout()}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return t.newConn(c), nil
}

type tcpListener struct {
	t    *TCP
	ln   net.Listener
	once sync.Once
}

func (l *tcpListener) Accept(ctx context.Context) (Conn, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := l.ln.(deadliner); ok {
		// Wake a blocked Accept when ctx ends, then clear the poison
		// deadline for the next call.
		stop := context.AfterFunc(ctx, func() { d.SetDeadline(time.Now()) })
		defer func() {
			stop()
			d.SetDeadline(time.Time{})
		}()
	}
	c, err := l.ln.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return l.t.newConn(c), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	var err error
	l.once.Do(func() { err = l.ln.Close() })
	return err
}

// tcpConn frames wire messages over one socket. Sends go through a
// bounded queue drained by a single writer goroutine so that any
// goroutine may Send without interleaving partial frames; receives read
// directly (Recv is single-goroutine by contract).
type tcpConn struct {
	t    *TCP
	c    net.Conn
	br   *bufio.Reader
	sq   chan []byte
	done chan struct{}
	once sync.Once

	mu       sync.Mutex
	writeErr error
}

func (t *TCP) newConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn := &tcpConn{
		t:    t,
		c:    c,
		br:   bufio.NewReaderSize(c, 64*1024),
		sq:   make(chan []byte, t.queueLen()),
		done: make(chan struct{}),
	}
	go conn.writeLoop()
	return conn
}

// writeLoop drains the send queue; a write failure or timeout closes the
// connection so both directions observe the death.
func (c *tcpConn) writeLoop() {
	bw := bufio.NewWriterSize(c.c, 64*1024)
	for {
		var frame []byte
		select {
		case frame = <-c.sq:
		case <-c.done:
			return
		}
		c.c.SetWriteDeadline(time.Now().Add(c.t.writeTimeout()))
		err := writeFrame(bw, frame)
		// Flush unless more frames are already queued (batch small
		// beacons, but never hold a frame hostage).
		if err == nil && len(c.sq) == 0 {
			err = bw.Flush()
		}
		if err != nil {
			c.mu.Lock()
			c.writeErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
	}
}

func (c *tcpConn) Send(ctx context.Context, m wire.Msg) error {
	frame := wire.Encode(m)
	select {
	case c.sq <- frame:
		return nil
	case <-c.done:
		c.mu.Lock()
		werr := c.writeErr
		c.mu.Unlock()
		if werr != nil {
			return fmt.Errorf("%w: %w", ErrClosed, werr)
		}
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *tcpConn) Recv(ctx context.Context) (wire.Msg, error) {
	for {
		select {
		case <-c.done:
			return nil, ErrClosed
		default:
		}
		if c.t.ReadTimeout > 0 {
			c.c.SetReadDeadline(time.Now().Add(c.t.ReadTimeout))
		} else {
			c.c.SetReadDeadline(time.Time{})
		}
		// Wake a blocked read when ctx ends.
		stop := context.AfterFunc(ctx, func() { c.c.SetReadDeadline(time.Now()) })
		frame, err := readFrame(c.br)
		stop()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			select {
			case <-c.done:
				return nil, ErrClosed
			default:
			}
			if os.IsTimeout(err) {
				c.Close()
				return nil, fmt.Errorf("transport: read timeout: %w", err)
			}
			c.Close()
			return nil, err
		}
		m, err := decodeFrame(frame)
		if err != nil {
			c.Close()
			return nil, err
		}
		if m == nil {
			continue // malformed body inside a good frame: resync
		}
		return m, nil
	}
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() {
		close(c.done)
		err = c.c.Close()
	})
	return err
}

func (c *tcpConn) LocalAddr() string  { return c.c.LocalAddr().String() }
func (c *tcpConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
