package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/wire"
)

var testKey = []byte("pub-key")

func testMeta() *wire.Metadata {
	rec := metadata.NewSynthetic(3, "jazz night live", "FOX",
		"late show description", 600*1024, metadata.DefaultPieceSize,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), testKey)
	return &wire.Metadata{Popularity: 0.375, Record: *rec}
}

func testHello(from trace.NodeID) *wire.Hello {
	return &wire.Hello{From: from, Queries: []string{"jazz"}}
}

// pair dials lis's address on tr and returns both conn ends.
func pair(t *testing.T, tr Transport, lis Listener) (dial, accept Conn) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := lis.Accept(ctx)
		if err != nil {
			errs <- err
			return
		}
		got <- c
	}()
	d, err := tr.Dial(ctx, lis.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	select {
	case a := <-got:
		return d, a
	case err := <-errs:
		t.Fatalf("accept: %v", err)
	case <-ctx.Done():
		t.Fatal("accept timed out")
	}
	return nil, nil
}

// roundTrip exercises all three message types in both directions.
func roundTrip(t *testing.T, a, b Conn) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := testMeta()
	piece := &wire.Piece{
		URI:   m.Record.URI,
		Index: 1,
		Total: m.Record.NumPieces(),
		Data:  metadata.SyntheticPiece(m.Record.URI, 1, m.Record.PieceLen(1)),
	}
	for _, msg := range []wire.Msg{testHello(7), m, piece} {
		if err := a.Send(ctx, msg); err != nil {
			t.Fatalf("send %v: %v", msg.Type(), err)
		}
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %v: %v", msg.Type(), err)
		}
		if !bytes.Equal(wire.Encode(got), wire.Encode(msg)) {
			t.Fatalf("%v did not round-trip", msg.Type())
		}
	}
	// And back the other way.
	if err := b.Send(ctx, testHello(9)); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := got.(*wire.Hello); !ok || h.From != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	lis, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	d, a := pair(t, net, lis)
	defer d.Close()
	defer a.Close()
	roundTrip(t, d, a)
}

func TestLoopbackErrors(t *testing.T) {
	n := NewLoopback()
	defer n.Close()
	ctx := context.Background()
	if _, err := n.Dial(ctx, "nowhere"); !errors.Is(err, ErrNoListener) {
		t.Fatalf("dial nowhere: %v", err)
	}
	if _, err := n.Listen(""); err == nil {
		t.Fatal("empty addr accepted")
	}
	lis, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double listen: %v", err)
	}
	lis.Close()
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestLoopbackPeerCloseDrainsBufferedFrames(t *testing.T) {
	n := NewLoopback()
	defer n.Close()
	lis, _ := n.Listen("a")
	d, a := pair(t, n, lis)
	ctx := context.Background()
	if err := d.Send(ctx, testHello(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(ctx, testHello(2)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	for want := trace.NodeID(1); want <= 2; want++ {
		m, err := a.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", want, err)
		}
		if m.(*wire.Hello).From != want {
			t.Fatalf("got %+v, want From=%d", m, want)
		}
	}
	if _, err := a.Recv(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v, want EOF", err)
	}
	if err := a.Send(ctx, testHello(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to dead peer: %v", err)
	}
}

func TestLoopbackRecvCtxCancel(t *testing.T) {
	n := NewLoopback()
	defer n.Close()
	lis, _ := n.Listen("a")
	d, a := pair(t, n, lis)
	defer d.Close()
	defer a.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("recv: %v", err)
	}
}

func TestDecodeFramePolicy(t *testing.T) {
	// Valid frame decodes.
	m, err := decodeFrame(wire.Encode(testHello(1)))
	if err != nil || m == nil {
		t.Fatalf("valid frame: %v %v", m, err)
	}
	// Bad magic is fatal.
	if _, err := decodeFrame([]byte{0x00, 0x01, 0x01}); err == nil {
		t.Fatal("bad magic not fatal")
	}
	// Version mismatch is fatal and typed.
	if _, err := decodeFrame([]byte{0xD7, 0x63, 0x01}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version mismatch: %v", err)
	}
	// Malformed body inside a good frame is skipped (nil, nil).
	truncated := wire.Encode(testMeta())[:10]
	if m, err := decodeFrame(truncated); m != nil || err != nil {
		t.Fatalf("truncated body: %v %v, want skip", m, err)
	}
	// Unknown type is skipped too: well-framed, possibly from the
	// future.
	if m, err := decodeFrame([]byte{0xD7, 0x01, 0x77}); m != nil || err != nil {
		t.Fatalf("unknown type: %v %v, want skip", m, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tr := &TCP{}
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	d, a := pair(t, tr, lis)
	defer d.Close()
	defer a.Close()
	roundTrip(t, d, a)
}

// TestTCPResyncAndGarbage drives a raw socket against a TCP listener:
// a well-framed malformed body is skipped, a later valid frame is
// delivered, and framing garbage then kills the connection.
func TestTCPResyncAndGarbage(t *testing.T) {
	tr := &TCP{}
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept(ctx)
		if err == nil {
			got <- c
		}
	}()
	raw, err := net.Dial("tcp", lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var srv Conn
	select {
	case srv = <-got:
	case <-ctx.Done():
		t.Fatal("accept timed out")
	}
	defer srv.Close()

	frame := func(b []byte) []byte {
		out := binary.BigEndian.AppendUint32(nil, uint32(len(b)))
		return append(out, b...)
	}
	// 1: well-framed truncated metadata body → skipped.
	raw.Write(frame(wire.Encode(testMeta())[:12]))
	// 2: valid hello → delivered.
	raw.Write(frame(wire.Encode(testHello(42))))
	m, err := srv.Recv(ctx)
	if err != nil {
		t.Fatalf("recv after resync: %v", err)
	}
	if h, ok := m.(*wire.Hello); !ok || h.From != 42 {
		t.Fatalf("got %+v", m)
	}
	// 3: framing garbage (bad magic) → connection dies.
	raw.Write(frame([]byte{0xEE, 0xBB, 0xCC}))
	if _, err := srv.Recv(ctx); err == nil {
		t.Fatal("garbage frame did not kill the connection")
	}
}

func TestTCPRecvCtxCancel(t *testing.T) {
	tr := &TCP{}
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	d, a := pair(t, tr, lis)
	defer d.Close()
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv: %v", err)
	}
	// The conn survives a canceled Recv: a fresh context still works.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := d.Send(ctx2, testHello(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(ctx2); err != nil {
		t.Fatalf("recv after cancel: %v", err)
	}
}

func TestTCPAcceptCtxCancel(t *testing.T) {
	tr := &TCP{}
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := lis.Accept(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("accept: %v", err)
	}
}

func TestTCPReadTimeoutDropsSilentPeer(t *testing.T) {
	tr := &TCP{ReadTimeout: 50 * time.Millisecond}
	lis, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	d, a := pair(t, tr, lis)
	defer d.Close()
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Recv(ctx); err == nil {
		t.Fatal("silent peer not dropped")
	}
}

func TestFrameTooBig(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("write: %v", err)
	}
	hdr := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("read: %v", err)
	}
}

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Jitter stays within [1-J, 1+J] × nominal and is deterministic
	// under a fixed source.
	j := Backoff{Min: 100 * time.Millisecond, Jitter: 0.5, Rand: rng.New(1)}
	for i := 0; i < 100; i++ {
		d := j.Delay(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v out of bounds", d)
		}
	}
	a1 := Backoff{Min: time.Millisecond, Jitter: 0.5, Rand: rng.New(7)}
	a2 := Backoff{Min: time.Millisecond, Jitter: 0.5, Rand: rng.New(7)}
	for i := 0; i < 10; i++ {
		if a1.Delay(i) != a2.Delay(i) {
			t.Fatal("jitter not deterministic under fixed seed")
		}
	}
}

func TestDialBackoffConnectsOnceListenerAppears(t *testing.T) {
	n := NewLoopback()
	defer n.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		lis, err := n.Listen("late")
		if err != nil {
			return
		}
		for {
			c, err := lis.Accept(ctx)
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	c, err := DialBackoff(ctx, n, "late", Backoff{Min: 5 * time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatalf("dial backoff: %v", err)
	}
	c.Close()
}

func TestDialBackoffHonorsCtx(t *testing.T) {
	n := NewLoopback()
	defer n.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := DialBackoff(ctx, n, "never", Backoff{Min: 5 * time.Millisecond, Jitter: -1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
}
