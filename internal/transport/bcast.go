package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/rng"
	"repro/internal/wire"
)

// BroadcastConn is one endpoint of a shared broadcast medium: a Send is
// heard by every other member of the domain in one transmission — the
// physical capability §V's one-sender schedule exploits. Where no real
// shared medium exists (plain TCP), callers fall back to fanning the
// message out over unicast Conns; the scheduling layer is agnostic.
//
// Like Conn, Send may be called from any goroutine while Recv must stay
// on a single goroutine, and frames round-trip through the wire codec.
type BroadcastConn interface {
	// Send transmits one message to every other current member.
	Send(ctx context.Context, m wire.Msg) error
	// Recv returns the next message heard on the medium. Malformed but
	// well-framed messages are skipped (the resync policy); framing
	// garbage closes the conn.
	Recv(ctx context.Context) (wire.Msg, error)
	// Close leaves the domain; safe to call more than once.
	Close() error
	// Addr names this member for logs.
	Addr() string
}

// domainQueue bounds each member's receive buffer. A member that falls
// this far behind misses frames — exactly how a busy radio receiver
// behaves — rather than stalling every other member's sends.
const domainQueue = 256

// BroadcastDomain is a deterministic in-memory shared medium attached
// to a Loopback network: every member Joined to it hears every other
// member's sends. It models the one-transmitter-many-receivers radio
// channel of §V for tests, with the same codec round-trip guarantees as
// loopback unicast conns.
type BroadcastDomain struct {
	name string

	mu      sync.Mutex
	members map[string]*domainConn
	missed  uint64
	closed  bool

	// Loss shaping for the symbol lane: each receiver draws from its own
	// (lossSeed, addr)-derived stream, so whether a given member hears a
	// given transmission never depends on Go's map iteration order — a
	// replayed test sees the identical loss pattern.
	lossRate float64
	lossSeed uint64
	lossRNG  map[string]*rng.Rand
	lost     uint64
}

// NewBroadcastDomain returns an empty named shared medium.
func NewBroadcastDomain(name string) *BroadcastDomain {
	return &BroadcastDomain{name: name, members: make(map[string]*domainConn)}
}

// Domain returns the loopback network's named broadcast domain,
// creating it on first use. Domains share the network's lifetime but
// not its listener namespace.
func (n *Loopback) Domain(name string) *BroadcastDomain {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.domains == nil {
		n.domains = make(map[string]*BroadcastDomain)
	}
	d := n.domains[name]
	if d == nil {
		d = NewBroadcastDomain(name)
		n.domains[name] = d
	}
	return d
}

// Join adds a member under addr (any non-empty unique string) and
// returns its endpoint.
func (d *BroadcastDomain) Join(addr string) (BroadcastConn, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty broadcast member address")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if _, ok := d.members[addr]; ok {
		return nil, fmt.Errorf("%q: %w", addr, ErrAddrInUse)
	}
	c := &domainConn{
		domain: d,
		addr:   addr,
		in:     make(chan []byte, domainQueue),
		done:   make(chan struct{}),
	}
	d.members[addr] = c
	return c, nil
}

// Members lists the current member addresses (for tests and stats).
func (d *BroadcastDomain) Members() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.members))
	for addr := range d.members {
		out = append(out, addr)
	}
	return out
}

// Missed counts frames dropped because a member's receive queue was
// full — the shared medium's backpressure loss mode.
func (d *BroadcastDomain) Missed() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.missed
}

// SetLoss makes the medium drop each (transmission, receiver) pair
// independently with the given probability, from per-receiver streams
// derived from seed — the loopback model of a lossy datagram lane.
// Rate 0 restores perfect delivery. Existing members' streams restart
// from the new seed.
func (d *BroadcastDomain) SetLoss(rate float64, seed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lossRate = rate
	d.lossSeed = seed
	d.lossRNG = make(map[string]*rng.Rand)
}

// Lost counts frames dropped by loss shaping (SetLoss), as distinct
// from queue-overflow Missed.
func (d *BroadcastDomain) Lost() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lost
}

// memberLoss returns addr's loss stream, creating it on first use.
// Callers hold d.mu.
func (d *BroadcastDomain) memberLoss(addr string) *rng.Rand {
	r := d.lossRNG[addr]
	if r == nil {
		h := fnv.New64a()
		h.Write([]byte(addr))
		r = rng.New(d.lossSeed ^ h.Sum64())
		d.lossRNG[addr] = r
	}
	return r
}

// Close evicts every member; their Recvs return ErrClosed.
func (d *BroadcastDomain) Close() error {
	d.mu.Lock()
	members := make([]*domainConn, 0, len(d.members))
	for _, c := range d.members {
		members = append(members, c)
	}
	d.closed = true
	d.mu.Unlock()
	for _, c := range members {
		c.Close()
	}
	return nil
}

// transmit delivers one encoded frame to every member except the
// sender. Delivery is best-effort per receiver: a full queue means that
// receiver misses the frame, it never blocks the sender or the rest of
// the group.
func (d *BroadcastDomain) transmit(from *domainConn, frame []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.members[from.addr] != from {
		return ErrClosed
	}
	for addr, c := range d.members {
		if addr == from.addr {
			continue
		}
		if d.lossRate > 0 && d.memberLoss(addr).Float64() < d.lossRate {
			d.lost++
			continue
		}
		select {
		case c.in <- frame:
		default:
			d.missed++
		}
	}
	return nil
}

// domainConn is one member endpoint of a BroadcastDomain.
type domainConn struct {
	domain *BroadcastDomain
	addr   string
	in     chan []byte
	done   chan struct{}
	once   sync.Once
}

func (c *domainConn) Send(ctx context.Context, m wire.Msg) error {
	select {
	case <-c.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	return c.domain.transmit(c, wire.Encode(m))
}

func (c *domainConn) Recv(ctx context.Context) (wire.Msg, error) {
	for {
		select {
		case frame := <-c.in:
			m, err := decodeFrame(frame)
			if err != nil {
				c.Close()
				return nil, err
			}
			if m == nil {
				continue // malformed body: skip, stay joined
			}
			return m, nil
		case <-c.done:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (c *domainConn) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.domain.mu.Lock()
		if c.domain.members[c.addr] == c {
			delete(c.domain.members, c.addr)
		}
		c.domain.mu.Unlock()
	})
	return nil
}

func (c *domainConn) Addr() string { return c.addr }
