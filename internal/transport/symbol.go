package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// SymbolConn is one endpoint of the best-effort datagram lane the
// fountain-coded data plane streams over. It deliberately promises
// nothing a fountain code doesn't need: datagrams may be lost,
// duplicated, or reordered, and neither side is told. Malformed
// datagrams are dropped silently — there is no stream to resynchronize
// and no connection worth closing over one bad packet. Loss shows up
// only as symbols that never arrive, which the rateless code absorbs
// by decoding from whichever subset does.
//
// Send may be called from any goroutine; Recv must stay on a single
// goroutine, like the other conn kinds.
type SymbolConn interface {
	// Send transmits one message best-effort to every lane peer.
	Send(ctx context.Context, m wire.Msg) error
	// Recv returns the next message heard on the lane.
	Recv(ctx context.Context) (wire.Msg, error)
	// Close leaves the lane; safe to call more than once.
	Close() error
	// Addr names this endpoint for logs.
	Addr() string
}

// maxDatagram bounds one symbol-lane datagram. Symbols are sized to
// fit a real UDP payload with room to spare; anything bigger is a
// configuration bug worth surfacing at the sender.
const maxDatagram = 60 * 1024

// SymbolDomain returns the loopback network's symbol lane paired with
// the named broadcast domain: the same shared-medium semantics, a
// separate member namespace, so loss shaping on the data plane never
// touches the control-plane domain.
func (n *Loopback) SymbolDomain(name string) *BroadcastDomain {
	return n.Domain(name + "#symbols")
}

// UDPLane is the symbol lane over real sockets: one unconnected UDP
// socket, sends fanned to a fixed peer list — the TCP deployment's
// stand-in for a broadcast medium. The kernel's UDP semantics provide
// the (absence of) guarantees; no loss shaping happens here.
type UDPLane struct {
	pc    net.PacketConn
	peers []*net.UDPAddr

	in   chan []byte
	done chan struct{}
	once sync.Once
}

// NewUDPLane binds a UDP socket on listen (":0" allowed) and fans
// sends out to peers. Peers that fail to resolve are skipped — on a
// best-effort lane an unresolvable peer is indistinguishable from a
// silent one — but a lane with a peer list that resolves to nothing is
// a configuration error.
func NewUDPLane(listen string, peers []string) (*UDPLane, error) {
	pc, err := net.ListenPacket("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: symbol lane listen %q: %w", listen, err)
	}
	l := &UDPLane{
		pc:   pc,
		in:   make(chan []byte, domainQueue),
		done: make(chan struct{}),
	}
	for _, p := range peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			continue
		}
		l.peers = append(l.peers, addr)
	}
	if len(peers) > 0 && len(l.peers) == 0 {
		pc.Close()
		return nil, fmt.Errorf("transport: symbol lane: no peer of %d resolved", len(peers))
	}
	go l.pump()
	return l, nil
}

// pump moves datagrams from the socket into the bounded receive queue;
// a full queue drops, like any busy datagram receiver.
func (l *UDPLane) pump() {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := l.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-l.done:
				return
			default:
			}
			// Transient socket errors on a lossy lane are just loss.
			if ne, ok := err.(net.Error); ok && (ne.Timeout() || ne.Temporary()) {
				continue
			}
			l.Close()
			return
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		select {
		case l.in <- frame:
		default:
		}
	}
}

// Send encodes m once and writes the datagram to every lane peer.
// Write errors on individual peers are swallowed: the lane is
// best-effort and the fountain code recovers from loss by design.
func (l *UDPLane) Send(ctx context.Context, m wire.Msg) error {
	select {
	case <-l.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	frame := wire.Encode(m)
	if len(frame) > maxDatagram {
		return fmt.Errorf("transport: symbol datagram %d bytes exceeds %d", len(frame), maxDatagram)
	}
	for _, p := range l.peers {
		l.pc.SetWriteDeadline(time.Now().Add(time.Second))
		l.pc.WriteTo(frame, p)
	}
	return nil
}

// Recv returns the next decodable datagram. Undecodable datagrams are
// skipped — on an unreliable lane every malformed packet is treated as
// lost, never as a reason to tear the endpoint down.
func (l *UDPLane) Recv(ctx context.Context) (wire.Msg, error) {
	for {
		select {
		case frame := <-l.in:
			m, err := wire.Decode(frame)
			if err != nil {
				continue
			}
			return m, nil
		case <-l.done:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Close tears the lane down; safe to call more than once.
func (l *UDPLane) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.pc.Close()
	})
	return nil
}

// Addr is the bound UDP address (useful when listening on ":0").
func (l *UDPLane) Addr() string { return l.pc.LocalAddr().String() }
