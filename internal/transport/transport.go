// Package transport moves wire messages between live nodes.
//
// The simulator delivers messages by function call; this package is the
// seam that replaces those calls with real links so the MBT protocol can
// run as a daemon. A Transport produces message-oriented Conns that carry
// length-framed frames of the internal/wire codec. Two implementations
// exist:
//
//   - Loopback — a deterministic in-memory network for tests: frames pass
//     through buffered channels, still round-tripping through the wire
//     codec so tests exercise exactly the bytes TCP would carry;
//   - TCP — real sockets with per-conn send queues, read/write deadlines,
//     and context-based shutdown. DialBackoff layers exponential-backoff
//     reconnect with jitter on top of any Transport.
//
// Decode-error policy (the reason wire exports sentinel errors): a frame
// whose header magic is garbage (wire.ErrBadMagic) means the stream is
// not carrying this protocol at all, and a version mismatch
// (wire.ErrVersion) means the peer is healthy but incompatible — both
// close the connection. A well-framed message that is merely malformed
// (unknown type, truncated body, hostile length) is dropped and the
// connection keeps going: the length prefix already told us where the
// next frame starts, so resynchronization is free.
package transport

import (
	"context"
	"errors"

	"repro/internal/wire"
)

// Errors returned by transports.
var (
	// ErrClosed reports use of a closed Conn, Listener, or network.
	ErrClosed = errors.New("transport: closed")
	// ErrVersionMismatch reports a peer speaking an incompatible wire
	// protocol revision; callers should not redial.
	ErrVersionMismatch = errors.New("transport: peer wire version mismatch")
	// ErrAddrInUse reports a Listen on an address that already has a
	// listener (loopback network).
	ErrAddrInUse = errors.New("transport: address already in use")
	// ErrNoListener reports a Dial to an address nothing listens on
	// (loopback network).
	ErrNoListener = errors.New("transport: no listener on address")
)

// Conn is a reliable, message-oriented link to one peer. Send may be
// called from any goroutine; Recv must be called from a single goroutine
// (the session pump). Both honor context cancellation. After Close, both
// return ErrClosed; Recv returns the peer's close as an error too.
type Conn interface {
	// Send enqueues one message for delivery, blocking only when the
	// send queue is full.
	Send(ctx context.Context, m wire.Msg) error
	// Recv returns the next decoded message. Malformed-but-framed
	// messages are skipped internally; framing garbage or a version
	// mismatch closes the connection and surfaces as an error.
	Recv(ctx context.Context) (wire.Msg, error)
	// Close tears the link down; safe to call more than once.
	Close() error
	// LocalAddr and RemoteAddr name the endpoints for logs and stats.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound Conns.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept(ctx context.Context) (Conn, error)
	// Addr is the bound address — the address peers dial, useful when
	// listening on ":0".
	Addr() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Transport opens links: Dial for outbound, Listen for inbound.
type Transport interface {
	Dial(ctx context.Context, addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}
