package transport

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
	"repro/internal/wire"
)

// TestBroadcastDomainFanout: one Send is heard by every other member,
// not by the sender itself.
func TestBroadcastDomainFanout(t *testing.T) {
	ctx := context.Background()
	net := NewLoopback()
	defer net.Close()
	dom := net.Domain("radio")

	conns := make(map[string]BroadcastConn)
	for _, addr := range []string{"a", "b", "c"} {
		c, err := dom.Join(addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[addr] = c
	}

	msg := &wire.Hello{From: 1, Heard: []trace.NodeID{2, 3}}
	if err := conns["a"].Send(ctx, msg); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"b", "c"} {
		got, err := conns[addr].Recv(ctx)
		if err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		h, ok := got.(*wire.Hello)
		if !ok || h.From != 1 {
			t.Fatalf("%s heard %#v", addr, got)
		}
	}
	// The sender must not hear itself.
	sctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := conns["a"].Recv(sctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("sender heard its own broadcast (err=%v)", err)
	}
}

// TestBroadcastDomainMembership: duplicate joins fail, leaving frees
// the address, and a member that left stops hearing traffic.
func TestBroadcastDomainMembership(t *testing.T) {
	ctx := context.Background()
	dom := NewBroadcastDomain("radio")
	a, err := dom.Join("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dom.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dom.Join("a"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("duplicate join error = %v, want ErrAddrInUse", err)
	}

	b.Close()
	if got := len(dom.Members()); got != 1 {
		t.Fatalf("members after leave = %d, want 1", got)
	}
	if _, err := dom.Join("b"); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if err := a.Send(ctx, &wire.Hello{From: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed member Recv = %v, want ErrClosed", err)
	}
}

// TestBroadcastDomainOverflowMisses: a receiver that never drains its
// queue misses frames instead of stalling the sender.
func TestBroadcastDomainOverflowMisses(t *testing.T) {
	ctx := context.Background()
	dom := NewBroadcastDomain("radio")
	a, err := dom.Join("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dom.Join("deaf"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < domainQueue+10; i++ {
		if err := a.Send(ctx, &wire.Hello{From: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dom.Missed(); got != 10 {
		t.Fatalf("missed = %d, want 10", got)
	}
}

// TestBroadcastDomainCloseOnNetworkClose: closing the loopback network
// tears its domains down too.
func TestBroadcastDomainCloseOnNetworkClose(t *testing.T) {
	net := NewLoopback()
	dom := net.Domain("radio")
	c, err := dom.Join("a")
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	if err := c.Send(context.Background(), &wire.Hello{From: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after network close = %v, want ErrClosed", err)
	}
	if _, err := dom.Join("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after network close = %v, want ErrClosed", err)
	}
}

// TestBroadcastDomainSameName: Domain returns the same domain for the
// same name, so members rendezvous by string like listeners do.
func TestBroadcastDomainSameName(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	if net.Domain("radio") != net.Domain("radio") {
		t.Fatal("same name gave different domains")
	}
	if net.Domain("radio") == net.Domain("other") {
		t.Fatal("different names gave the same domain")
	}
}
