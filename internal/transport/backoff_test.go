package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestBackoffJitterBounds checks every delay stays inside
// [nominal*(1-j), nominal*(1+j)] where nominal is the capped
// exponential schedule.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{
		Min: 100 * time.Millisecond, Max: 15 * time.Second,
		Factor: 2, Jitter: 0.5,
		Rand: rng.New(1),
	}
	for attempt := 0; attempt < 30; attempt++ {
		nominal := math.Min(
			float64(b.Min)*math.Pow(b.Factor, float64(attempt)),
			float64(b.Max))
		lo := time.Duration(nominal * (1 - b.Jitter))
		hi := time.Duration(nominal * (1 + b.Jitter))
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffMonotoneCap checks the jitter-free schedule never shrinks
// and converges exactly to Max.
func TestBackoffMonotoneCap(t *testing.T) {
	b := Backoff{Min: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	prev := time.Duration(0)
	for attempt := 0; attempt < 40; attempt++ {
		d := b.Delay(attempt)
		if d < prev {
			t.Fatalf("attempt %d: delay %v < previous %v", attempt, d, prev)
		}
		prev = d
	}
	if prev != b.Max {
		t.Fatalf("schedule converged to %v, want cap %v", prev, b.Max)
	}
	if first := b.Delay(0); first != b.Min {
		t.Fatalf("first delay %v, want Min %v", first, b.Min)
	}
}

// failDialer always fails with a fixed error and counts attempts.
type failDialer struct {
	err      error
	attempts int
}

func (f *failDialer) Dial(ctx context.Context, addr string) (Conn, error) {
	f.attempts++
	return nil, f.err
}

func (f *failDialer) Listen(addr string) (Listener, error) {
	return nil, errors.New("not a listener")
}

// TestDialBackoffCancelMidSleep cancels the context while DialBackoff
// is in a long backoff sleep; it must return promptly, not after the
// sleep.
func TestDialBackoffCancelMidSleep(t *testing.T) {
	d := &failDialer{err: errors.New("down")}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialBackoff(ctx, d, "addr", Backoff{Min: time.Minute, Jitter: -1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("returned after %v; cancellation did not interrupt the sleep", elapsed)
	}
}

// TestDialBackoffCanceledBeforeDial must not dial at all on a dead
// context.
func TestDialBackoffCanceledBeforeDial(t *testing.T) {
	d := &failDialer{err: errors.New("down")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialBackoff(ctx, d, "addr", Backoff{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.attempts != 0 {
		t.Fatalf("dialed %d times on a canceled context", d.attempts)
	}
}

// TestDialBackoffVersionMismatch stops retrying on an incompatible
// peer.
func TestDialBackoffVersionMismatch(t *testing.T) {
	d := &failDialer{err: fmt.Errorf("peer: %w", ErrVersionMismatch)}
	_, err := DialBackoff(context.Background(), d, "addr", Backoff{Min: time.Hour})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if d.attempts != 1 {
		t.Fatalf("dialed %d times, want exactly 1 before giving up", d.attempts)
	}
}
