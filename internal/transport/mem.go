package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/wire"
)

// decodeFrame applies the package's decode-error policy to one received
// frame: (msg, nil, nil) delivers, (nil, nil, nil) skips a malformed but
// well-framed message, and a non-nil fatal error closes the connection.
func decodeFrame(frame []byte) (wire.Msg, error) {
	m, err := wire.Decode(frame)
	if err == nil {
		return m, nil
	}
	switch {
	case errors.Is(err, wire.ErrBadMagic):
		return nil, fmt.Errorf("framing garbage: %w", err)
	case errors.Is(err, wire.ErrVersion):
		return nil, fmt.Errorf("%w: %w", ErrVersionMismatch, err)
	default:
		// Malformed body inside a good frame: resync by skipping.
		return nil, nil
	}
}

// memQueue is the default per-direction frame buffer of a loopback conn.
const memQueue = 64

// Loopback is an in-memory Transport: a named set of listeners connected
// by channel pairs. Frames still round-trip through the wire codec, so
// tests over Loopback exercise the same bytes TCP would carry, with no
// sockets, timers, or scheduling nondeterminism of their own.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	domains   map[string]*BroadcastDomain
	closed    bool
}

// NewLoopback returns an empty in-memory network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*memListener)}
}

// Close tears the network down: every listener closes and future Dials
// fail.
func (n *Loopback) Close() error {
	n.mu.Lock()
	ls := make([]*memListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	ds := make([]*BroadcastDomain, 0, len(n.domains))
	for _, d := range n.domains {
		ds = append(ds, d)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, d := range ds {
		d.Close()
	}
	return nil
}

// Listen binds addr (any non-empty string) on the in-memory network.
func (n *Loopback) Listen(addr string) (Listener, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty loopback address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%q: %w", addr, ErrAddrInUse)
	}
	l := &memListener{
		net:    n,
		addr:   addr,
		accept: make(chan *memConn),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound at addr.
func (n *Loopback) Dial(ctx context.Context, addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%q: %w", addr, ErrNoListener)
	}
	dialSide, acceptSide := memPair(fmt.Sprintf("dial:%s", addr), addr)
	select {
	case l.accept <- acceptSide:
		return dialSide, nil
	case <-l.done:
		return nil, fmt.Errorf("%q: %w", addr, ErrNoListener)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type memListener struct {
	net    *Loopback
	addr   string
	accept chan *memConn
	done   chan struct{}
	once   sync.Once
}

func (l *memListener) Accept(ctx context.Context) (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// memConn is one end of a loopback link: it sends encoded frames into
// out and receives from in; done is this end's close signal, peerDone
// the other end's.
type memConn struct {
	local, remote string
	out, in       chan []byte
	done          chan struct{}
	peerDone      chan struct{}
	once          sync.Once
}

// memPair builds two connected conn ends.
func memPair(dialAddr, listenAddr string) (dial, accept *memConn) {
	ab := make(chan []byte, memQueue)
	ba := make(chan []byte, memQueue)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	dial = &memConn{
		local: dialAddr, remote: listenAddr,
		out: ab, in: ba, done: aDone, peerDone: bDone,
	}
	accept = &memConn{
		local: listenAddr, remote: dialAddr,
		out: ba, in: ab, done: bDone, peerDone: aDone,
	}
	return dial, accept
}

func (c *memConn) Send(ctx context.Context, m wire.Msg) error {
	frame := wire.Encode(m)
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peerDone:
		return fmt.Errorf("%w: peer closed", ErrClosed)
	default:
	}
	select {
	case c.out <- frame:
		return nil
	case <-c.done:
		return ErrClosed
	case <-c.peerDone:
		return fmt.Errorf("%w: peer closed", ErrClosed)
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *memConn) Recv(ctx context.Context) (wire.Msg, error) {
	for {
		// Deliver buffered frames before reacting to a peer close, so
		// a sender that writes then closes loses nothing.
		select {
		case frame := <-c.in:
			m, err := decodeFrame(frame)
			if err != nil {
				c.Close()
				return nil, err
			}
			if m == nil {
				continue // malformed body: skip, stay connected
			}
			return m, nil
		default:
		}
		select {
		case frame := <-c.in:
			m, err := decodeFrame(frame)
			if err != nil {
				c.Close()
				return nil, err
			}
			if m == nil {
				continue
			}
			return m, nil
		case <-c.done:
			return nil, ErrClosed
		case <-c.peerDone:
			// Final drain: the peer may have sent then closed.
			select {
			case frame := <-c.in:
				m, err := decodeFrame(frame)
				if err != nil {
					c.Close()
					return nil, err
				}
				if m == nil {
					continue
				}
				return m, nil
			default:
				return nil, io.EOF
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *memConn) LocalAddr() string  { return c.local }
func (c *memConn) RemoteAddr() string { return c.remote }
