package transport

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

func testSymbol(idx uint32) *wire.Symbol {
	s := &wire.Symbol{
		From: 1, Round: 3, URI: "dtn://files/9", Piece: 0, Total: 4,
		Seed: 0xABCD, DataLen: 128, Index: idx,
		Payload: []byte(fmt.Sprintf("payload-%04d", idx)),
	}
	s.Seal()
	return s
}

// TestSymbolDomainSeparateNamespace: the symbol lane shares the
// loopback network but not the control domain's member namespace, so
// the same node address can join both.
func TestSymbolDomainSeparateNamespace(t *testing.T) {
	n := NewLoopback()
	ctrl := n.Domain("g")
	sym := n.SymbolDomain("g")
	if ctrl == sym {
		t.Fatal("control and symbol domains are the same medium")
	}
	if _, err := ctrl.Join("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sym.Join("n1"); err != nil {
		t.Fatalf("same addr on symbol lane: %v", err)
	}
	// Loss shaping on the symbol lane must not leak to control.
	sym.SetLoss(1.0, 42)
	if ctrl.lossRate != 0 {
		t.Fatal("loss leaked to the control domain")
	}
}

// TestSymbolDomainLossDeterministic: the same seed yields the exact
// same per-receiver delivery pattern across runs, regardless of map
// iteration order, and the loss rate lands near the configured rate.
func TestSymbolDomainLossDeterministic(t *testing.T) {
	const sends = 400
	run := func() (got map[string][]uint32, lost uint64) {
		n := NewLoopback()
		d := n.SymbolDomain("g")
		d.SetLoss(0.3, 99)
		sender, err := d.Join("tx")
		if err != nil {
			t.Fatal(err)
		}
		rx := map[string]BroadcastConn{}
		for _, addr := range []string{"rx-a", "rx-b", "rx-c"} {
			c, err := d.Join(addr)
			if err != nil {
				t.Fatal(err)
			}
			rx[addr] = c
		}
		ctx := context.Background()
		for i := uint32(0); i < sends; i++ {
			if err := sender.Send(ctx, testSymbol(i)); err != nil {
				t.Fatal(err)
			}
		}
		got = map[string][]uint32{}
		for addr, c := range rx {
			for {
				rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
				m, err := c.Recv(rctx)
				cancel()
				if err != nil {
					break
				}
				got[addr] = append(got[addr], m.(*wire.Symbol).Index)
			}
		}
		return got, d.Lost()
	}
	a, lostA := run()
	b, lostB := run()
	if lostA == 0 || lostA != lostB {
		t.Fatalf("lost counts differ or zero: %d vs %d", lostA, lostB)
	}
	total := 0
	for addr := range a {
		if len(a[addr]) != len(b[addr]) {
			t.Fatalf("%s: %d vs %d delivered", addr, len(a[addr]), len(b[addr]))
		}
		for i := range a[addr] {
			if a[addr][i] != b[addr][i] {
				t.Fatalf("%s: delivery pattern diverged at %d", addr, i)
			}
		}
		total += len(a[addr])
	}
	// 3 receivers × 400 sends at 30% loss ≈ 840 delivered; the queue
	// never overflows here (queue 256 > 400·0.7 per receiver is false —
	// drain happens after sending, so cap the expectation loosely).
	rate := 1 - float64(total)/(3*sends)
	if rate < 0.2 || rate > 0.45 {
		t.Fatalf("observed loss rate %.2f, want ≈0.3", rate)
	}
}

// TestSymbolDomainNoLossByDefault: without SetLoss the lane behaves
// like the control domain — every member hears every send.
func TestSymbolDomainNoLossByDefault(t *testing.T) {
	n := NewLoopback()
	d := n.SymbolDomain("g")
	tx, err := d.Join("tx")
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Join("rx")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := uint32(0); i < 20; i++ {
		if err := tx.Send(ctx, testSymbol(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 20; i++ {
		rctx, cancel := context.WithTimeout(ctx, time.Second)
		m, err := c.Recv(rctx)
		cancel()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got := m.(*wire.Symbol).Index; got != i {
			t.Fatalf("recv %d: index %d", i, got)
		}
	}
	if d.Lost() != 0 {
		t.Fatalf("lost %d frames without loss shaping", d.Lost())
	}
}

// TestUDPLane: symbols cross a real UDP socket pair, garbage datagrams
// are skipped silently, and Close unblocks Recv.
func TestUDPLane(t *testing.T) {
	a, err := NewUDPLane("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPLane("127.0.0.1:0", []string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Garbage first: the lane must drop it and keep listening.
	raw, err := net.Dial("udp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xFF, 0x00, 0xDE, 0xAD})
	raw.Close()

	ctx := context.Background()
	want := testSymbol(7)
	// UDP on loopback is reliable in practice but not in contract;
	// retry sends until the receiver sees one.
	var got wire.Msg
	for try := 0; try < 20 && got == nil; try++ {
		if err := b.Send(ctx, want); err != nil {
			t.Fatal(err)
		}
		rctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		m, err := a.Recv(rctx)
		cancel()
		if err == nil {
			got = m
		}
	}
	s, ok := got.(*wire.Symbol)
	if !ok {
		t.Fatalf("received %T, want *wire.Symbol", got)
	}
	if s.Index != want.Index || !s.CheckOK() {
		t.Fatalf("symbol mangled in flight: %+v", s)
	}

	a.Close()
	rctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if _, err := a.Recv(rctx); err != ErrClosed {
		t.Fatalf("Recv after Close: %v, want ErrClosed", err)
	}
}

// TestUDPLaneOversizedSend: a datagram above the lane bound is refused
// at the sender instead of silently truncated by the kernel.
func TestUDPLaneOversizedSend(t *testing.T) {
	a, err := NewUDPLane("127.0.0.1:0", []string{"127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	s := testSymbol(0)
	s.Payload = make([]byte, maxDatagram)
	s.Seal()
	if err := a.Send(context.Background(), s); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}
