package trace

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]simtime.Duration{10, 100})
	for _, d := range []simtime.Duration{5, 10, 11, 100, 101, 1000} {
		h.Add(d)
	}
	want := []int{2, 2, 2} // <=10: {5,10}; 11..100: {11,100}; >100: {101,1000}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramUnsortedBoundsSorted(t *testing.T) {
	h := NewHistogram([]simtime.Duration{100, 10})
	if h.Bounds[0] != 10 || h.Bounds[1] != 100 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]simtime.Duration{simtime.Minute})
	h.Add(30 * simtime.Second)
	h.Add(2 * simtime.Minute)
	s := h.String()
	if !strings.Contains(s, "<= 1m0s") || !strings.Contains(s, "> 1m0s") {
		t.Fatalf("rendering:\n%s", s)
	}
	empty := NewHistogram([]simtime.Duration{1})
	if !strings.Contains(empty.String(), "empty") {
		t.Fatalf("empty rendering: %q", empty.String())
	}
}

func TestDurationHistogram(t *testing.T) {
	tr := &Trace{NodeCount: 3, Sessions: []Session{
		{Start: 0, End: 30, Nodes: []NodeID{0, 1}},
		{Start: 100, End: 400, Nodes: []NodeID{1, 2}},
	}}
	h := NewStats(tr).DurationHistogram([]simtime.Duration{50})
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestInterContactHistogram(t *testing.T) {
	tr := statsTrace() // pair (0,1) meets daily for 3 days
	h := NewStats(tr).InterContactHistogram([]simtime.Duration{simtime.Hour, 2 * simtime.Day})
	// Two one-day gaps fall in the (1h, 2d] bucket.
	if h.Counts[1] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %d; single-meeting pairs must add nothing", h.Total())
	}
}
