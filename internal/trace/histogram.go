package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Histogram is a fixed-bucket distribution over durations.
type Histogram struct {
	// Bounds are the upper edges of all but the last bucket; Counts has
	// len(Bounds)+1 entries, the last catching everything above.
	Bounds []simtime.Duration
	Counts []int
}

// NewHistogram builds a histogram with the given upper bounds (sorted
// ascending).
func NewHistogram(bounds []simtime.Duration) *Histogram {
	b := make([]simtime.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{Bounds: b, Counts: make([]int, len(b)+1)}
}

// Add records one observation.
func (h *Histogram) Add(d simtime.Duration) {
	for i, bound := range h.Bounds {
		if d <= bound {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// String renders the histogram one bucket per line with percentages.
func (h *Histogram) String() string {
	total := h.Total()
	if total == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("<= %v", h.Bounds[0])
		case i < len(h.Bounds):
			label = fmt.Sprintf("%v - %v", h.Bounds[i-1], h.Bounds[i])
		default:
			label = fmt.Sprintf("> %v", h.Bounds[len(h.Bounds)-1])
		}
		fmt.Fprintf(&b, "%-20s %6d (%5.1f%%)\n", label, c, 100*float64(c)/float64(total))
	}
	return b.String()
}

// DurationHistogram buckets the trace's session durations.
func (s *Stats) DurationHistogram(bounds []simtime.Duration) *Histogram {
	h := NewHistogram(bounds)
	for _, sess := range s.trace.Sessions {
		h.Add(sess.Duration())
	}
	return h
}

// InterContactHistogram buckets the start-to-start gaps between
// consecutive meetings over every pair that met at least twice.
func (s *Stats) InterContactHistogram(bounds []simtime.Duration) *Histogram {
	h := NewHistogram(bounds)
	// Collect meeting times per pair in one chronological pass.
	meetings := make(map[Pair][]simtime.Time)
	for _, sess := range s.trace.Sessions {
		for i, a := range sess.Nodes {
			for _, b := range sess.Nodes[i+1:] {
				p := MakePair(a, b)
				meetings[p] = append(meetings[p], sess.Start)
			}
		}
	}
	for _, times := range meetings {
		for i := 1; i < len(times); i++ {
			h.Add(times[i].Sub(times[i-1]))
		}
	}
	return h
}
