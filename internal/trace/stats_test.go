package trace

import (
	"testing"

	"repro/internal/simtime"
)

// statsTrace spans 3 days; pair (0,1) meets daily, pair (2,3) meets once.
func statsTrace() *Trace {
	tr := &Trace{Name: "stats", NodeCount: 5}
	for day := 0; day < 3; day++ {
		tr.Sessions = append(tr.Sessions, Session{
			Start: simtime.At(day, simtime.Hour),
			End:   simtime.At(day, 2*simtime.Hour),
			Nodes: []NodeID{0, 1},
		})
	}
	tr.Sessions = append(tr.Sessions, Session{
		Start: simtime.At(2, 3*simtime.Hour),
		End:   simtime.At(2, 4*simtime.Hour),
		Nodes: []NodeID{2, 3},
	})
	tr.SortSessions()
	return tr
}

func TestPairCounts(t *testing.T) {
	s := NewStats(statsTrace())
	if got := s.PairContacts(0, 1); got != 3 {
		t.Fatalf("PairContacts(0,1) = %d, want 3", got)
	}
	if got := s.PairContacts(1, 0); got != 3 {
		t.Fatalf("PairContacts is not symmetric: %d", got)
	}
	if got := s.PairContacts(2, 3); got != 1 {
		t.Fatalf("PairContacts(2,3) = %d, want 1", got)
	}
	if got := s.PairContacts(0, 3); got != 0 {
		t.Fatalf("PairContacts(0,3) = %d, want 0", got)
	}
}

func TestNodeCounts(t *testing.T) {
	s := NewStats(statsTrace())
	if got := s.NodeContacts(0); got != 3 {
		t.Fatalf("NodeContacts(0) = %d", got)
	}
	if got := s.NodeContacts(4); got != 0 {
		t.Fatalf("NodeContacts(4) = %d", got)
	}
	if got := s.NodeContacts(-1); got != 0 {
		t.Fatalf("NodeContacts(-1) = %d", got)
	}
	if got := s.NodeContacts(99); got != 0 {
		t.Fatalf("NodeContacts(99) = %d", got)
	}
}

func TestCliqueSessionCountsAllPairs(t *testing.T) {
	tr := &Trace{NodeCount: 4, Sessions: []Session{
		{Start: 0, End: 10, Nodes: []NodeID{0, 1, 2, 3}},
	}}
	s := NewStats(tr)
	pairs := [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for _, p := range pairs {
		if got := s.PairContacts(p[0], p[1]); got != 1 {
			t.Fatalf("PairContacts%v = %d, want 1", p, got)
		}
	}
}

func TestFrequentContacts(t *testing.T) {
	s := NewStats(statsTrace())
	// Once a day: only (0,1) qualifies over the 3-day span.
	freq := s.FrequentContacts(1)
	if peers := freq[0]; len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("freq[0] = %v, want [1]", peers)
	}
	if peers := freq[1]; len(peers) != 1 || peers[0] != 0 {
		t.Fatalf("freq[1] = %v, want [0]", peers)
	}
	if _, ok := freq[2]; ok {
		t.Fatal("node 2 wrongly frequent at 1/day")
	}
	// Every three days: (2,3) also qualifies (1 contact over 3 days).
	freq3 := s.FrequentContacts(1.0 / 3.0)
	if peers := freq3[2]; len(peers) != 1 || peers[0] != 3 {
		t.Fatalf("freq3[2] = %v, want [3]", peers)
	}
}

func TestFrequentContactsEmptyTrace(t *testing.T) {
	s := NewStats(&Trace{NodeCount: 3})
	if got := s.FrequentContacts(1); len(got) != 0 {
		t.Fatalf("empty trace produced frequent contacts: %v", got)
	}
}

func TestInterContactTimes(t *testing.T) {
	s := NewStats(statsTrace())
	gaps := s.InterContactTimes(0, 1)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v, want 2 entries", gaps)
	}
	for _, g := range gaps {
		if g != simtime.Day {
			t.Fatalf("gap = %v, want 1 day", g)
		}
	}
	if got := s.InterContactTimes(2, 3); got != nil {
		t.Fatalf("single meeting must yield no gaps, got %v", got)
	}
	if got := s.InterContactTimes(0, 4); got != nil {
		t.Fatalf("never-met pair must yield no gaps, got %v", got)
	}
}

func TestMeanSessionStats(t *testing.T) {
	tr := &Trace{NodeCount: 4, Sessions: []Session{
		{Start: 0, End: 10, Nodes: []NodeID{0, 1}},
		{Start: 10, End: 40, Nodes: []NodeID{0, 1, 2, 3}},
	}}
	s := NewStats(tr)
	if got := s.MeanSessionSize(); got != 3 {
		t.Fatalf("MeanSessionSize = %v, want 3", got)
	}
	if got := s.MeanSessionDuration(); got != 20 {
		t.Fatalf("MeanSessionDuration = %v, want 20", got)
	}
	empty := NewStats(&Trace{NodeCount: 1})
	if empty.MeanSessionSize() != 0 || empty.MeanSessionDuration() != 0 {
		t.Fatal("empty trace means must be zero")
	}
}

func TestIsolatedNodes(t *testing.T) {
	s := NewStats(statsTrace())
	iso := s.IsolatedNodes()
	if len(iso) != 1 || iso[0] != 4 {
		t.Fatalf("IsolatedNodes = %v, want [4]", iso)
	}
}

func TestStatsDays(t *testing.T) {
	if got := NewStats(statsTrace()).Days(); got != 3 {
		t.Fatalf("Days = %d, want 3", got)
	}
}
