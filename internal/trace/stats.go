package trace

import (
	"sort"

	"repro/internal/simtime"
)

// Pair is an unordered node pair with A < B.
type Pair struct {
	A, B NodeID
}

// MakePair normalizes (a, b) into a Pair with A < B.
func MakePair(a, b NodeID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Stats summarizes a trace's contact structure. Build with NewStats.
type Stats struct {
	trace      *Trace
	pairCounts map[Pair]int
	nodeCounts []int
	days       int
}

// NewStats scans the trace once and returns its statistics.
func NewStats(t *Trace) *Stats {
	s := &Stats{
		trace:      t,
		pairCounts: make(map[Pair]int),
		nodeCounts: make([]int, t.NodeCount),
		days:       t.Days(),
	}
	for _, sess := range t.Sessions {
		for i, a := range sess.Nodes {
			s.nodeCounts[a]++
			for _, b := range sess.Nodes[i+1:] {
				s.pairCounts[MakePair(a, b)]++
			}
		}
	}
	return s
}

// Days returns the number of days the underlying trace spans.
func (s *Stats) Days() int { return s.days }

// PairContacts returns how many sessions a and b shared.
func (s *Stats) PairContacts(a, b NodeID) int {
	return s.pairCounts[MakePair(a, b)]
}

// NodeContacts returns how many sessions the node participated in.
func (s *Stats) NodeContacts(id NodeID) int {
	if int(id) >= len(s.nodeCounts) || id < 0 {
		return 0
	}
	return s.nodeCounts[id]
}

// FrequentContacts returns, for each node, the set of peers it meets at
// least minPerDay times per day on average. The paper designates frequent
// contacts as nodes meeting "at least every three days" (DieselNet,
// minPerDay = 1/3) or "at least once per day" (NUS, minPerDay = 1); nodes
// store the query strings of their frequent contacts to shorten discovery.
func (s *Stats) FrequentContacts(minPerDay float64) map[NodeID][]NodeID {
	out := make(map[NodeID][]NodeID)
	if s.days == 0 {
		return out
	}
	threshold := minPerDay * float64(s.days)
	for pair, count := range s.pairCounts {
		if float64(count) >= threshold {
			out[pair.A] = append(out[pair.A], pair.B)
			out[pair.B] = append(out[pair.B], pair.A)
		}
	}
	for id := range out {
		peers := out[id]
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	}
	return out
}

// InterContactTimes returns the gaps between consecutive meetings of the
// pair (a, b), in chronological order. Gaps are measured start-to-start.
func (s *Stats) InterContactTimes(a, b NodeID) []simtime.Duration {
	var meetings []simtime.Time
	for _, sess := range s.trace.Sessions {
		if sess.Contains(a) && sess.Contains(b) {
			meetings = append(meetings, sess.Start)
		}
	}
	if len(meetings) < 2 {
		return nil
	}
	gaps := make([]simtime.Duration, 0, len(meetings)-1)
	for i := 1; i < len(meetings); i++ {
		gaps = append(gaps, meetings[i].Sub(meetings[i-1]))
	}
	return gaps
}

// MeanSessionSize returns the average number of nodes per session, or 0
// for an empty trace.
func (s *Stats) MeanSessionSize() float64 {
	if len(s.trace.Sessions) == 0 {
		return 0
	}
	total := 0
	for _, sess := range s.trace.Sessions {
		total += len(sess.Nodes)
	}
	return float64(total) / float64(len(s.trace.Sessions))
}

// MeanSessionDuration returns the average session length, or 0 for an
// empty trace.
func (s *Stats) MeanSessionDuration() simtime.Duration {
	if len(s.trace.Sessions) == 0 {
		return 0
	}
	var total simtime.Duration
	for _, sess := range s.trace.Sessions {
		total += sess.Duration()
	}
	return total / simtime.Duration(len(s.trace.Sessions))
}

// IsolatedNodes returns the nodes that appear in no session at all; such
// nodes can never receive anything through the DTN.
func (s *Stats) IsolatedNodes() []NodeID {
	var out []NodeID
	for id, c := range s.nodeCounts {
		if c == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}
