package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// The text format is line-oriented and human-inspectable:
//
//	dtntrace v1 <name> <node-count>
//	s <start-ms> <end-ms> <node> <node> [...]
//	...
//
// Lines starting with '#' and blank lines are ignored. Session lines must
// be in chronological order; Decode validates the result.

const formatHeader = "dtntrace v1"

// ErrBadFormat reports malformed trace input.
var ErrBadFormat = errors.New("trace: malformed input")

// Encode writes t in the text format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	name := t.Name
	if name == "" {
		name = "unnamed"
	}
	if strings.ContainsAny(name, " \t\n") {
		return fmt.Errorf("trace: name %q contains whitespace: %w", name, ErrBadFormat)
	}
	if _, err := fmt.Fprintf(bw, "%s %s %d\n", formatHeader, name, t.NodeCount); err != nil {
		return err
	}
	for _, s := range t.Sessions {
		if _, err := fmt.Fprintf(bw, "s %d %d", int64(s.Start), int64(s.End)); err != nil {
			return err
		}
		for _, id := range s.Nodes {
			if _, err := fmt.Fprintf(bw, " %d", id); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format and validates the trace.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var t *Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if t == nil {
			rest, ok := strings.CutPrefix(line, formatHeader+" ")
			if !ok {
				return nil, fmt.Errorf("line %d: missing %q header: %w", lineNo, formatHeader, ErrBadFormat)
			}
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: header wants name and node count: %w", lineNo, ErrBadFormat)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: node count: %w", lineNo, ErrBadFormat)
			}
			t = &Trace{Name: fields[0], NodeCount: n}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "s" || len(fields) < 5 {
			return nil, fmt.Errorf("line %d: want \"s start end node node...\": %w", lineNo, ErrBadFormat)
		}
		start, err1 := strconv.ParseInt(fields[1], 10, 64)
		end, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad timestamps: %w", lineNo, ErrBadFormat)
		}
		nodes := make([]NodeID, 0, len(fields)-3)
		for _, f := range fields[3:] {
			id, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad node id %q: %w", lineNo, f, ErrBadFormat)
			}
			nodes = append(nodes, NodeID(id))
		}
		t.Sessions = append(t.Sessions, Session{
			Start: simtime.Time(start),
			End:   simtime.Time(end),
			Nodes: nodes,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("empty input: %w", ErrBadFormat)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
