// Package trace models DTN contact traces.
//
// A trace is a sequence of sessions. A session is a period during which a
// set of nodes can all receive each other's transmissions: a pairwise bus
// meeting in a DieselNet-style trace is a two-node session, and a class
// meeting in an NUS-style trace is a session containing every attending
// student. Modelling the clique directly follows the paper's simulation
// assumption that communication cliques do not overlap in the evaluated
// traces: DieselNet contains only pairwise contacts, and NUS students hear
// each other iff they are in the same classroom.
package trace

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// NodeID identifies a node in a trace: a dense index in [0, NodeCount).
type NodeID int

// Session is a maximal set of nodes that are mutually connected during
// [Start, End). Nodes is sorted and free of duplicates.
type Session struct {
	Start simtime.Time
	End   simtime.Time
	Nodes []NodeID
}

// Duration returns the session length.
func (s Session) Duration() simtime.Duration { return s.End.Sub(s.Start) }

// Contains reports whether id participates in the session.
func (s Session) Contains(id NodeID) bool {
	i := sort.Search(len(s.Nodes), func(i int) bool { return s.Nodes[i] >= id })
	return i < len(s.Nodes) && s.Nodes[i] == id
}

// Pairwise reports whether the session involves exactly two nodes.
func (s Session) Pairwise() bool { return len(s.Nodes) == 2 }

// Trace is a contact trace: a node population plus its sessions in
// chronological (Start, then End, then first node) order.
type Trace struct {
	// Name labels the trace (e.g. "dieselnet-synth").
	Name string
	// NodeCount is the population size; all session members are < NodeCount.
	NodeCount int
	// Sessions holds the contacts sorted by start time.
	Sessions []Session
}

// Validation errors.
var (
	ErrNoNodes        = errors.New("trace: node count must be positive")
	ErrSessionOrder   = errors.New("trace: sessions not sorted by start time")
	ErrSessionEmpty   = errors.New("trace: session needs at least two nodes")
	ErrSessionNodes   = errors.New("trace: session nodes not sorted and unique")
	ErrNodeRange      = errors.New("trace: session node out of range")
	ErrSessionEndsLtS = errors.New("trace: session must end after it starts")
)

// Validate checks the structural invariants every consumer relies on.
func (t *Trace) Validate() error {
	if t.NodeCount <= 0 {
		return ErrNoNodes
	}
	var prev simtime.Time
	for i, s := range t.Sessions {
		if s.Start < prev {
			return fmt.Errorf("session %d starts at %v before %v: %w", i, s.Start, prev, ErrSessionOrder)
		}
		prev = s.Start
		if s.End <= s.Start {
			return fmt.Errorf("session %d [%v,%v): %w", i, s.Start, s.End, ErrSessionEndsLtS)
		}
		if len(s.Nodes) < 2 {
			return fmt.Errorf("session %d has %d nodes: %w", i, len(s.Nodes), ErrSessionEmpty)
		}
		for j, id := range s.Nodes {
			if id < 0 || int(id) >= t.NodeCount {
				return fmt.Errorf("session %d node %d: %w", i, id, ErrNodeRange)
			}
			if j > 0 && s.Nodes[j-1] >= id {
				return fmt.Errorf("session %d: %w", i, ErrSessionNodes)
			}
		}
	}
	return nil
}

// End returns the end time of the last-ending session, or zero for an
// empty trace.
func (t *Trace) End() simtime.Time {
	var end simtime.Time
	for _, s := range t.Sessions {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Days returns the number of whole-or-partial days the trace spans.
func (t *Trace) Days() int {
	end := t.End()
	if end == 0 {
		return 0
	}
	return (end - 1).Day() + 1
}

// SortSessions restores chronological order after construction, using a
// stable sort keyed by (Start, End, first node) so equal keys keep their
// construction order.
func (t *Trace) SortSessions() {
	sort.SliceStable(t.Sessions, func(i, j int) bool {
		a, b := t.Sessions[i], t.Sessions[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return firstNode(a) < firstNode(b)
	})
}

func firstNode(s Session) NodeID {
	if len(s.Nodes) == 0 {
		return -1
	}
	return s.Nodes[0]
}

// NewSession builds a session from an arbitrary node list, sorting and
// de-duplicating it.
func NewSession(start, end simtime.Time, nodes []NodeID) Session {
	sorted := make([]NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			out = append(out, id)
		}
	}
	return Session{Start: start, End: end, Nodes: out}
}
