package trace

import (
	"errors"
	"testing"

	"repro/internal/simtime"
)

func validTrace() *Trace {
	return &Trace{
		Name:      "test",
		NodeCount: 5,
		Sessions: []Session{
			{Start: 0, End: 100, Nodes: []NodeID{0, 1}},
			{Start: 50, End: 150, Nodes: []NodeID{2, 3, 4}},
			{Start: 200, End: 300, Nodes: []NodeID{0, 4}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Trace)
		wantErr error
	}{
		{"no nodes", func(tr *Trace) { tr.NodeCount = 0 }, ErrNoNodes},
		{"unsorted sessions", func(tr *Trace) {
			tr.Sessions[0].Start = 60
		}, ErrSessionOrder},
		{"end before start", func(tr *Trace) {
			tr.Sessions[1].End = tr.Sessions[1].Start
		}, ErrSessionEndsLtS},
		{"one-node session", func(tr *Trace) {
			tr.Sessions[0].Nodes = []NodeID{1}
		}, ErrSessionEmpty},
		{"duplicate node", func(tr *Trace) {
			tr.Sessions[0].Nodes = []NodeID{1, 1}
		}, ErrSessionNodes},
		{"unsorted nodes", func(tr *Trace) {
			tr.Sessions[1].Nodes = []NodeID{3, 2, 4}
		}, ErrSessionNodes},
		{"node out of range", func(tr *Trace) {
			tr.Sessions[2].Nodes = []NodeID{0, 5}
		}, ErrNodeRange},
		{"negative node", func(tr *Trace) {
			tr.Sessions[0].Nodes = []NodeID{-1, 0}
		}, ErrNodeRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := validTrace()
			tt.mutate(tr)
			if err := tr.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSessionContains(t *testing.T) {
	s := Session{Nodes: []NodeID{1, 3, 5}}
	for _, id := range []NodeID{1, 3, 5} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []NodeID{0, 2, 4, 6} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
}

func TestSessionPairwiseAndDuration(t *testing.T) {
	s := Session{Start: 10, End: 40, Nodes: []NodeID{1, 2}}
	if !s.Pairwise() {
		t.Error("two-node session not pairwise")
	}
	if s.Duration() != 30 {
		t.Errorf("Duration = %v, want 30", s.Duration())
	}
	s.Nodes = []NodeID{1, 2, 3}
	if s.Pairwise() {
		t.Error("three-node session reported pairwise")
	}
}

func TestNewSessionSortsAndDedups(t *testing.T) {
	s := NewSession(0, 10, []NodeID{4, 2, 4, 1, 2})
	want := []NodeID{1, 2, 4}
	if len(s.Nodes) != len(want) {
		t.Fatalf("nodes = %v, want %v", s.Nodes, want)
	}
	for i := range want {
		if s.Nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", s.Nodes, want)
		}
	}
}

func TestEndAndDays(t *testing.T) {
	tr := validTrace()
	if got := tr.End(); got != 300 {
		t.Fatalf("End = %v, want 300", got)
	}
	if got := tr.Days(); got != 1 {
		t.Fatalf("Days = %d, want 1", got)
	}
	tr.Sessions = append(tr.Sessions, Session{
		Start: simtime.At(2, simtime.Hour),
		End:   simtime.At(2, 2*simtime.Hour),
		Nodes: []NodeID{0, 1},
	})
	if got := tr.Days(); got != 3 {
		t.Fatalf("Days = %d, want 3", got)
	}
	empty := &Trace{NodeCount: 1}
	if empty.Days() != 0 || empty.End() != 0 {
		t.Fatal("empty trace must have zero end and days")
	}
}

func TestDaysExactBoundary(t *testing.T) {
	tr := &Trace{NodeCount: 2, Sessions: []Session{
		{Start: 0, End: simtime.Time(simtime.Day), Nodes: []NodeID{0, 1}},
	}}
	if got := tr.Days(); got != 1 {
		t.Fatalf("session ending exactly at day boundary: Days = %d, want 1", got)
	}
}

func TestSortSessions(t *testing.T) {
	tr := &Trace{
		NodeCount: 4,
		Sessions: []Session{
			{Start: 100, End: 200, Nodes: []NodeID{0, 1}},
			{Start: 0, End: 50, Nodes: []NodeID{2, 3}},
			{Start: 100, End: 150, Nodes: []NodeID{1, 2}},
		},
	}
	tr.SortSessions()
	if err := tr.Validate(); err != nil {
		t.Fatalf("sorted trace invalid: %v", err)
	}
	if tr.Sessions[0].Start != 0 {
		t.Fatal("sort did not order by start")
	}
	if tr.Sessions[1].End != 150 {
		t.Fatal("sort did not tie-break by end")
	}
}

func TestMakePair(t *testing.T) {
	if p := MakePair(3, 1); p.A != 1 || p.B != 3 {
		t.Fatalf("MakePair(3,1) = %+v", p)
	}
	if p := MakePair(1, 3); p.A != 1 || p.B != 3 {
		t.Fatalf("MakePair(1,3) = %+v", p)
	}
}
