package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := validTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestEncodeUnnamedTrace(t *testing.T) {
	tr := validTrace()
	tr.Name = ""
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "unnamed" {
		t.Fatalf("name = %q, want unnamed", got.Name)
	}
}

func TestEncodeRejectsWhitespaceName(t *testing.T) {
	tr := validTrace()
	tr.Name = "two words"
	if err := Encode(&bytes.Buffer{}, tr); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	input := `
# a comment
dtntrace v1 commented 2

# another comment
s 0 10 0 1
`
	tr, err := Decode(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount != 2 || len(tr.Sessions) != 1 {
		t.Fatalf("decoded %+v", tr)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"no header", "s 0 10 0 1\n"},
		{"bad version", "dtntrace v2 x 2\ns 0 10 0 1\n"},
		{"bad node count", "dtntrace v1 x two\n"},
		{"missing header fields", "dtntrace v1 x\n"},
		{"bad session keyword", "dtntrace v1 x 2\nq 0 10 0 1\n"},
		{"too few session fields", "dtntrace v1 x 2\ns 0 10 0\n"},
		{"bad start", "dtntrace v1 x 2\ns zero 10 0 1\n"},
		{"bad end", "dtntrace v1 x 2\ns 0 ten 0 1\n"},
		{"bad node id", "dtntrace v1 x 2\ns 0 10 0 one\n"},
		{"invalid trace semantics", "dtntrace v1 x 2\ns 0 10 0 5\n"},
		{"unsorted sessions", "dtntrace v1 x 2\ns 10 20 0 1\ns 0 20 0 1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tt.input)); err == nil {
				t.Fatal("Decode accepted malformed input")
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := randomTrace(r)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomTrace builds a small valid trace for property tests.
func randomTrace(r *rng.Rand) *Trace {
	n := 2 + r.Intn(10)
	tr := &Trace{Name: "prop", NodeCount: n}
	start := simtime.Time(0)
	for i := 0; i < r.Intn(20); i++ {
		start = start.Add(simtime.Duration(r.Intn(10000)))
		dur := simtime.Duration(1 + r.Intn(5000))
		k := 2 + r.Intn(n-1)
		perm := r.Perm(n)
		nodes := make([]NodeID, 0, k)
		for _, v := range perm[:k] {
			nodes = append(nodes, NodeID(v))
		}
		tr.Sessions = append(tr.Sessions, NewSession(start, start.Add(dur), nodes))
	}
	return tr
}
