// Package discovery implements cooperative file discovery (§IV): the
// broadcast exchange of metadata within a clique of connected nodes.
//
// Each contact's discovery phase sends at most Budget metadata broadcasts.
// In the cooperative case the order is the paper's two-phase rule:
//
//	Phase 1: metadata matching the queries of connected nodes, those
//	         matching more nodes first, ties by decreasing popularity.
//	Phase 2: remaining metadata in decreasing popularity.
//
// With query distribution enabled (the full MBT protocol), a node's
// demand includes the cached queries of its frequent contacts, so nodes
// collect metadata on behalf of peers they meet often. In the tit-for-tat
// case senders take turns in the clique's agreed cyclic order and each
// weighs candidate metadata by the summed credit of the requesting nodes.
package discovery

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Config controls one discovery exchange.
type Config struct {
	// Budget is the number of metadata broadcasts this contact may use.
	Budget int
	// QueryDistribution includes frequent-contact queries in each node's
	// demand (MBT); without it nodes pull only for their own queries
	// (MBT-Q).
	QueryDistribution bool
	// TitForTat switches from the cooperative coordinator ordering to
	// credit-weighted sending in cyclic order (§IV-B).
	TitForTat bool
	// PopularityOnly disables the two-phase request-aware ordering and
	// sends strictly by decreasing popularity — the ablation baseline
	// for the paper's phase-1 rule. Ignored under TitForTat.
	PopularityOnly bool
	// Loss is the per-receiver probability that a broadcast is not
	// decoded (lossy wireless). Requires Rng when positive.
	Loss float64
	// Rng drives loss draws; runs are deterministic given its state.
	Rng *rng.Rand
}

// dropped reports whether one receiver loses the current broadcast.
func (c Config) dropped() bool {
	return c.Loss > 0 && c.Rng != nil && c.Rng.Bool(c.Loss)
}

// Event records one metadata broadcast.
type Event struct {
	// Meta is the broadcast record.
	Meta *metadata.Metadata
	// Popularity is the advisory popularity sent along.
	Popularity float64
	// Sender transmitted the record.
	Sender trace.NodeID
	// NewReceivers stored the record for the first time.
	NewReceivers []trace.NodeID
	// MatchedOwn lists new receivers whose own active query matches the
	// record — a metadata delivery in the paper's metric.
	MatchedOwn []trace.NodeID
}

// Exchange runs the discovery phase of one contact among members and
// returns the broadcasts performed. Member state (stores, ledgers) is
// updated in place.
func Exchange(now simtime.Time, members []*node.Node, cfg Config) []Event {
	if cfg.Budget <= 0 || len(members) < 2 {
		return nil
	}
	if cfg.TitForTat {
		return exchangeTFT(now, members, cfg)
	}
	return exchangeCooperative(now, members, cfg)
}

// demandFor returns the queries a member pulls for: its own, plus cached
// frequent-contact queries when query distribution is on.
func demandFor(now simtime.Time, n *node.Node, cfg Config) []string {
	qs := n.Queries(now)
	if cfg.QueryDistribution {
		qs = append(qs, n.PeerQueries(now)...)
	}
	return qs
}

// candidate is a metadata record some member holds and some member lacks.
type candidate struct {
	sm      *node.StoredMetadata
	holders []*node.Node
	lackers []*node.Node
	// requesters are lackers whose demand matches; ownMatch are lackers
	// whose own queries match (the delivery metric only counts those);
	// ownCount is how many lackers match with their own queries.
	requesters []*node.Node
	ownMatch   map[trace.NodeID]bool
	ownCount   int
}

// collectCandidates builds the candidate set for the clique.
func collectCandidates(now simtime.Time, members []*node.Node, cfg Config) []*candidate {
	byURI := make(map[metadata.URI]*candidate)
	for _, m := range members {
		for _, sm := range m.MetadataStore() {
			if sm.Meta.Expired(now) {
				continue
			}
			c := byURI[sm.Meta.URI]
			if c == nil {
				c = &candidate{sm: sm, ownMatch: make(map[trace.NodeID]bool)}
				byURI[sm.Meta.URI] = c
			} else if sm.Popularity > c.sm.Popularity {
				c.sm = sm
			}
			c.holders = append(c.holders, m)
		}
	}
	var out []*candidate
	for _, c := range byURI {
		for _, m := range members {
			if m.HasMetadata(c.sm.Meta.URI) {
				continue
			}
			c.lackers = append(c.lackers, m)
			demands := demandFor(now, m, cfg)
			for _, q := range demands {
				if c.sm.Meta.MatchesQuery(q) {
					c.requesters = append(c.requesters, m)
					break
				}
			}
			for _, q := range m.Queries(now) {
				if c.sm.Meta.MatchesQuery(q) {
					c.ownMatch[m.ID] = true
					c.ownCount++
					break
				}
			}
		}
		if len(c.lackers) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sm.Meta.URI < out[j].sm.Meta.URI })
	return out
}

// broadcast delivers c from sender to every lacker, updating stores,
// credits and the event record.
func broadcast(now simtime.Time, c *candidate, sender *node.Node, cfg Config) Event {
	ev := Event{
		Meta:       c.sm.Meta,
		Popularity: c.sm.Popularity,
		Sender:     sender.ID,
	}
	for _, m := range c.lackers {
		if cfg.dropped() {
			continue
		}
		if !m.AddMetadata(c.sm.Meta, c.sm.Popularity, now) {
			continue
		}
		ev.NewReceivers = append(ev.NewReceivers, m.ID)
		if c.ownMatch[m.ID] {
			ev.MatchedOwn = append(ev.MatchedOwn, m.ID)
			m.Ledger.RewardRequested(sender.ID)
		} else {
			m.Ledger.RewardUnrequested(sender.ID, c.sm.Popularity)
		}
	}
	return ev
}

// exchangeCooperative is the altruistic two-phase ordering (§IV-A).
func exchangeCooperative(now simtime.Time, members []*node.Node, cfg Config) []Event {
	cands := collectCandidates(now, members, cfg)
	// Present members' own demand outranks carried (proxy) demand, so
	// query distribution only ever spends leftover budget: it adds
	// coverage for absent frequent contacts without displacing the
	// deliveries this contact could make directly.
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if !cfg.PopularityOnly {
			if a.ownCount != b.ownCount {
				return a.ownCount > b.ownCount
			}
			if len(a.requesters) != len(b.requesters) {
				return len(a.requesters) > len(b.requesters)
			}
		}
		if a.sm.Popularity != b.sm.Popularity {
			return a.sm.Popularity > b.sm.Popularity
		}
		return a.sm.Meta.URI < b.sm.Meta.URI
	})
	var events []Event
	for _, c := range cands {
		if len(events) >= cfg.Budget {
			break
		}
		sender := pickSender(c.holders)
		if sender == nil {
			continue
		}
		if ev := broadcast(now, c, sender, cfg); len(ev.NewReceivers) > 0 {
			events = append(events, ev)
		}
	}
	return events
}

// pickSender returns the lowest-ID holder willing to transmit.
func pickSender(holders []*node.Node) *node.Node {
	var best *node.Node
	for _, h := range holders {
		if h.FreeRider {
			continue
		}
		if best == nil || h.ID < best.ID {
			best = h
		}
	}
	return best
}

// exchangeTFT is the selfish-tolerant variant (§IV-B): senders rotate in
// the clique's deterministic cyclic order; each sender broadcasts the
// record that maximizes the summed credit of its requesters (per the
// sender's own ledger), falling back to popularity pushes.
func exchangeTFT(now simtime.Time, members []*node.Node, cfg Config) []Event {
	ids := make([]trace.NodeID, len(members))
	byID := make(map[trace.NodeID]*node.Node, len(members))
	for i, m := range members {
		ids[i] = m.ID
		byID[m.ID] = m
	}
	order := clique.CyclicOrder(ids)

	var events []Event
	sent := make(map[metadata.URI]bool)
	idle := 0
	for turn := 0; len(events) < cfg.Budget && idle < len(order); turn++ {
		sender := byID[order[turn%len(order)]]
		if sender.FreeRider {
			idle++
			continue
		}
		c := bestForSender(now, members, sender, sent, cfg)
		if c == nil {
			idle++
			continue
		}
		idle = 0
		sent[c.sm.Meta.URI] = true
		if ev := broadcast(now, c, sender, cfg); len(ev.NewReceivers) > 0 {
			events = append(events, ev)
		}
	}
	return events
}

// bestForSender returns the sender's best candidate it actually holds:
// highest summed requester credit, then popularity, then URI.
func bestForSender(now simtime.Time, members []*node.Node, sender *node.Node,
	sent map[metadata.URI]bool, cfg Config) *candidate {
	cands := collectCandidates(now, members, cfg)
	var best *candidate
	var bestWeight float64
	for _, c := range cands {
		if sent[c.sm.Meta.URI] || !sender.HasMetadata(c.sm.Meta.URI) {
			continue
		}
		var requesterIDs []trace.NodeID
		for _, r := range c.requesters {
			requesterIDs = append(requesterIDs, r.ID)
		}
		weight := sender.Ledger.WeightRequest(requesterIDs)
		if best == nil || better(weight, c, bestWeight, best) {
			best, bestWeight = c, weight
		}
	}
	return best
}

// better orders candidates for a selfish sender: summed requester credit
// first, then popularity, then URI. Requests from zero-credit peers add
// nothing — that is the incentive: a sender gains standing by serving
// proven contributors or by pushing popular records, never by serving
// free-riders.
func better(w float64, c *candidate, bw float64, b *candidate) bool {
	if w != bw {
		return w > bw
	}
	if c.sm.Popularity != b.sm.Popularity {
		return c.sm.Popularity > b.sm.Popularity
	}
	return c.sm.Meta.URI < b.sm.Meta.URI
}
