package discovery

import (
	"testing"

	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/trace"
)

var key = []byte("k")

func makeMeta(id metadata.FileID, name string) *metadata.Metadata {
	return metadata.NewSynthetic(id, name, "FOX", "desc", 1024, 256,
		0, simtime.Days(3), key)
}

func expiry() simtime.Time { return simtime.Time(simtime.Days(3)) }

func TestExchangeDeliversRequestedMetadata(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "jazz night")
	a.AddMetadata(m, 0.5, 0)
	b.AddQuery("jazz", expiry())

	events := Exchange(0, []*node.Node{a, b}, Config{Budget: 5})
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Sender != 0 || len(ev.NewReceivers) != 1 || ev.NewReceivers[0] != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.MatchedOwn) != 1 || ev.MatchedOwn[0] != 1 {
		t.Fatalf("MatchedOwn = %v", ev.MatchedOwn)
	}
	if !b.HasMetadata(m.URI) {
		t.Fatal("receiver did not store metadata")
	}
}

func TestBudgetLimitsBroadcasts(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	for i := 0; i < 10; i++ {
		a.AddMetadata(makeMeta(metadata.FileID(i), "show"), 0.5, 0)
	}
	events := Exchange(0, []*node.Node{a, b}, Config{Budget: 3})
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
}

func TestZeroBudgetOrSingleton(t *testing.T) {
	a := node.New(0, false)
	a.AddMetadata(makeMeta(1, "x"), 0.5, 0)
	if ev := Exchange(0, []*node.Node{a, node.New(1, false)}, Config{}); ev != nil {
		t.Fatalf("zero budget sent %v", ev)
	}
	if ev := Exchange(0, []*node.Node{a}, Config{Budget: 5}); ev != nil {
		t.Fatalf("singleton clique sent %v", ev)
	}
}

func TestPhaseOneRequestedBeforePopular(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	requested := makeMeta(1, "jazz wanted")
	popular := makeMeta(2, "unrelated blockbuster")
	a.AddMetadata(requested, 0.1, 0)
	a.AddMetadata(popular, 0.99, 0)
	b.AddQuery("jazz", expiry())

	events := Exchange(0, []*node.Node{a, b}, Config{Budget: 1})
	if len(events) != 1 || events[0].Meta.URI != requested.URI {
		t.Fatalf("first broadcast = %+v, want the requested metadata", events)
	}
}

func TestMoreRequestersFirst(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	c := node.New(2, false)
	one := makeMeta(1, "solo interest")
	two := makeMeta(2, "shared interest")
	a.AddMetadata(one, 0.9, 0)
	a.AddMetadata(two, 0.1, 0)
	b.AddQuery("solo", expiry())
	b.AddQuery("shared", expiry())
	c.AddQuery("shared", expiry())

	events := Exchange(0, []*node.Node{a, b, c}, Config{Budget: 1})
	if len(events) != 1 || events[0].Meta.URI != two.URI {
		t.Fatalf("first broadcast = %+v, want the doubly requested record", events)
	}
}

func TestPhaseTwoPopularityOrder(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	low := makeMeta(1, "low")
	high := makeMeta(2, "high")
	a.AddMetadata(low, 0.2, 0)
	a.AddMetadata(high, 0.8, 0)

	events := Exchange(0, []*node.Node{a, b}, Config{Budget: 2})
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Meta.URI != high.URI || events[1].Meta.URI != low.URI {
		t.Fatalf("push order wrong: %v then %v", events[0].Meta.URI, events[1].Meta.URI)
	}
}

func TestQueryDistributionIncludesProxyDemand(t *testing.T) {
	// c cached the query of its frequent contact d (absent). a holds the
	// matching metadata. With QueryDistribution, c's proxy demand raises
	// the record into phase one; without it the record competes only by
	// popularity.
	build := func() (*node.Node, *node.Node, *metadata.Metadata) {
		a := node.New(0, false)
		c := node.New(2, false)
		c.SetFrequent([]trace.NodeID{3})
		c.LearnPeerQueries(3, []string{"jazz"}, expiry())
		target := makeMeta(1, "jazz proxy target")
		decoy := makeMeta(2, "decoy")
		a.AddMetadata(target, 0.1, 0)
		a.AddMetadata(decoy, 0.9, 0)
		return a, c, target
	}

	a, c, target := build()
	events := Exchange(0, []*node.Node{a, c}, Config{Budget: 1, QueryDistribution: true})
	if len(events) != 1 || events[0].Meta.URI != target.URI {
		t.Fatalf("MBT: first broadcast = %+v, want proxy-requested record", events)
	}
	if len(events[0].MatchedOwn) != 0 {
		t.Fatal("proxy receipt wrongly counted as own delivery")
	}

	a, c, target = build()
	events = Exchange(0, []*node.Node{a, c}, Config{Budget: 1})
	if len(events) != 1 || events[0].Meta.URI == target.URI {
		t.Fatalf("MBT-Q: first broadcast = %+v, want the popular decoy", events)
	}
	_ = c
}

func TestNoRebroadcastToHolders(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "x")
	a.AddMetadata(m, 0.5, 0)
	b.AddMetadata(m, 0.5, 0)
	if events := Exchange(0, []*node.Node{a, b}, Config{Budget: 5}); len(events) != 0 {
		t.Fatalf("rebroadcast to universal holders: %v", events)
	}
}

func TestExpiredMetadataNotSent(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	m := makeMeta(1, "x")
	a.AddMetadata(m, 0.5, 0)
	now := simtime.Time(simtime.Days(3)) // at TTL
	if events := Exchange(now, []*node.Node{a, b}, Config{Budget: 5}); len(events) != 0 {
		t.Fatalf("expired metadata broadcast: %v", events)
	}
}

func TestCreditsAwarded(t *testing.T) {
	a := node.New(0, false)
	b := node.New(1, false)
	c := node.New(2, false)
	m := makeMeta(1, "jazz")
	a.AddMetadata(m, 0.4, 0)
	b.AddQuery("jazz", expiry())

	Exchange(0, []*node.Node{a, b, c}, Config{Budget: 1})
	if got := b.Ledger.Credit(0); got != 5 {
		t.Fatalf("requester credit for sender = %v, want 5", got)
	}
	if got := c.Ledger.Credit(0); got != 0.4 {
		t.Fatalf("bystander credit for sender = %v, want popularity 0.4", got)
	}
}

func TestTFTSendsRequestedOfHighCreditPeerFirst(t *testing.T) {
	sender := node.New(0, false)
	rich := node.New(1, false)
	poor := node.New(2, false)
	// Sender owes rich a lot of credit.
	for i := 0; i < 4; i++ {
		sender.Ledger.RewardRequested(1)
	}
	forRich := makeMeta(1, "richwant")
	forPoor := makeMeta(2, "poorwant")
	sender.AddMetadata(forRich, 0.1, 0)
	sender.AddMetadata(forPoor, 0.9, 0)
	rich.AddQuery("richwant", expiry())
	poor.AddQuery("poorwant", expiry())

	events := Exchange(0, []*node.Node{sender, rich, poor},
		Config{Budget: 1, TitForTat: true})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Sender == 0 && events[0].Meta.URI != forRich.URI {
		t.Fatalf("TFT sender 0 sent %v, want high-credit peer's request", events[0].Meta.URI)
	}
}

func TestTFTFreeRiderDoesNotSendButReceives(t *testing.T) {
	rider := node.New(0, false)
	rider.FreeRider = true
	giver := node.New(1, false)
	hoard := makeMeta(1, "hoarded")
	gift := makeMeta(2, "gift")
	rider.AddMetadata(hoard, 0.9, 0)
	giver.AddMetadata(gift, 0.5, 0)

	events := Exchange(0, []*node.Node{rider, giver},
		Config{Budget: 5, TitForTat: true})
	for _, ev := range events {
		if ev.Sender == 0 {
			t.Fatalf("free-rider transmitted: %+v", ev)
		}
	}
	if !rider.HasMetadata(gift.URI) {
		t.Fatal("free-rider did not receive the broadcast")
	}
	if giver.HasMetadata(hoard.URI) {
		t.Fatal("free-rider's hoard leaked without transmission")
	}
}

func TestCooperativeSkipsFreeRiderHolders(t *testing.T) {
	rider := node.New(0, false)
	rider.FreeRider = true
	b := node.New(1, false)
	m := makeMeta(1, "x")
	rider.AddMetadata(m, 0.5, 0)
	if events := Exchange(0, []*node.Node{rider, b}, Config{Budget: 5}); len(events) != 0 {
		t.Fatalf("free-rider transmitted in cooperative mode: %v", events)
	}
}

func TestDeterministicExchange(t *testing.T) {
	build := func() []*node.Node {
		a := node.New(0, false)
		b := node.New(1, false)
		for i := 0; i < 6; i++ {
			a.AddMetadata(makeMeta(metadata.FileID(i), "show"), float64(i)/10, 0)
		}
		b.AddQuery("show", expiry())
		return []*node.Node{a, b}
	}
	e1 := Exchange(0, build(), Config{Budget: 4})
	e2 := Exchange(0, build(), Config{Budget: 4})
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Meta.URI != e2[i].Meta.URI || e1[i].Sender != e2[i].Sender {
			t.Fatalf("event %d differs", i)
		}
	}
}
