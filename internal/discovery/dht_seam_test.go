package discovery

// Seam tests between the gossip exchange and the DHT metadata cache.
// The runtime layers them as: resolve a query from the local DHT cache
// when possible, fall back to the legacy gossip/server exchange when
// not, and fold whatever either path yields into the same per-node
// store. Two invariants make that composition sound, and both live in
// this file:
//
//  1. A record already resolved via the DHT is never re-counted when
//     the gossip exchange meets it again — AddMetadata is
//     first-write-wins, so the broadcast produces no NewReceivers and
//     no transmission event.
//  2. A query the DHT cache cannot answer still resolves over the
//     legacy exchange, with exactly one counted transmission.

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/node"
	"repro/internal/search"
	"repro/internal/wire"
)

// dhtResolve plays the runtime's DHT-first query step for one node:
// look each query keyword up in the node's local DHT cache and fold any
// hits into its store, exactly as the daemon's resolveQueries →
// onMetadata path does. Returns how many records were newly stored.
func dhtResolve(n *node.Node, eng *dht.Engine) int {
	added := 0
	for _, q := range n.Queries(0) {
		for _, tok := range search.Tokenize(q) {
			for _, v := range eng.CachedValues(tok) {
				if n.AddMetadata(&v.Meta.Record, v.Meta.Popularity, 0) {
					added++
				}
			}
		}
	}
	return added
}

// TestDHTHitSkipsGossipWithoutDoubleCount: the querier resolves from
// its DHT cache first; the later gossip exchange must not broadcast the
// same record to it again, so the contact spends its budget elsewhere
// and the traffic count stays at zero for the already-resolved record.
func TestDHTHitSkipsGossipWithoutDoubleCount(t *testing.T) {
	holder := node.New(0, false)
	querier := node.New(1, false)
	m := makeMeta(1, "jazz night")
	holder.AddMetadata(m, 0.5, 0)
	querier.AddQuery("jazz", expiry())

	// The querier's DHT cache already holds the record (learned over a
	// FindValue or a StoreValue push while some Internet node lived).
	eng := dht.New(dht.Config{Self: querier.ID})
	for _, tok := range search.Tokenize(m.Name) {
		eng.StoreLocal(tok, wire.Metadata{Popularity: 0.5, Record: *m}, 0)
	}

	if got := dhtResolve(querier, eng); got != 1 {
		t.Fatalf("DHT resolve stored %d records, want 1", got)
	}
	if !querier.HasMetadata(m.URI) {
		t.Fatal("querier did not store the DHT-resolved record")
	}

	// The gossip exchange runs as usual — but the record is already
	// everywhere, so no broadcast happens: no event, no transmission,
	// no second count of the same record.
	events := Exchange(0, []*node.Node{holder, querier}, Config{Budget: 5})
	if len(events) != 0 {
		t.Fatalf("gossip re-broadcast a DHT-resolved record: %+v", events)
	}

	// And resolving again from the cache is likewise idempotent.
	if got := dhtResolve(querier, eng); got != 0 {
		t.Fatalf("second DHT resolve stored %d records, want 0", got)
	}
}

// TestDHTMissFallsBackToGossip: with an empty DHT cache the query
// resolves over the legacy exchange, exactly once, and the delivery is
// attributed to the gossip sender — the fallback path neither loses the
// query nor inflates the transmission count.
func TestDHTMissFallsBackToGossip(t *testing.T) {
	holder := node.New(0, false)
	querier := node.New(1, false)
	m := makeMeta(1, "jazz night")
	holder.AddMetadata(m, 0.5, 0)
	querier.AddQuery("jazz", expiry())

	eng := dht.New(dht.Config{Self: querier.ID}) // nothing cached

	if got := dhtResolve(querier, eng); got != 0 {
		t.Fatalf("empty DHT cache resolved %d records", got)
	}

	events := Exchange(0, []*node.Node{holder, querier}, Config{Budget: 5})
	if len(events) != 1 {
		t.Fatalf("fallback exchange events = %d, want exactly 1", len(events))
	}
	ev := events[0]
	if ev.Sender != holder.ID || len(ev.NewReceivers) != 1 || ev.NewReceivers[0] != querier.ID {
		t.Fatalf("fallback event = %+v", ev)
	}
	if len(ev.MatchedOwn) != 1 {
		t.Fatalf("fallback delivery not counted as matched-own: %+v", ev)
	}
	if !querier.HasMetadata(m.URI) {
		t.Fatal("querier did not store the record via fallback")
	}

	// A later DHT round that now caches the record (e.g. the node folds
	// gossip-learned records into its DHT store) stays a no-op for the
	// local store: still exactly one copy, no double count.
	for _, tok := range search.Tokenize(m.Name) {
		eng.StoreLocal(tok, wire.Metadata{Popularity: 0.5, Record: *m}, 0)
	}
	if got := dhtResolve(querier, eng); got != 0 {
		t.Fatalf("post-fallback DHT resolve stored %d extra records", got)
	}
}
