package discovery

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/metadata"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// randomMembers builds a random clique state: nodes with random stores,
// queries, frequent-contact caches and free-rider flags.
func randomMembers(r *rng.Rand) ([]*node.Node, []*metadata.Metadata) {
	catalogSize := 3 + r.Intn(10)
	catalog := make([]*metadata.Metadata, catalogSize)
	for i := range catalog {
		catalog[i] = metadata.NewSynthetic(metadata.FileID(i),
			fmt.Sprintf("f%d show", i), "FOX", "d", 1024, 256,
			0, simtime.Days(3), []byte("k"))
	}
	n := 2 + r.Intn(5)
	members := make([]*node.Node, n)
	for i := range members {
		m := node.New(trace.NodeID(i), false)
		m.FreeRider = r.Bool(0.2)
		for _, md := range catalog {
			if r.Bool(0.4) {
				m.AddMetadata(md, r.Float64(), 0)
			}
		}
		for j := 0; j < r.Intn(3); j++ {
			m.AddQuery(fmt.Sprintf("f%d", r.Intn(catalogSize)), simtime.Time(simtime.Days(3)))
		}
		members[i] = m
	}
	return members, catalog
}

func storeSizes(members []*node.Node) []int {
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = len(m.MetadataStore())
	}
	return out
}

func TestExchangeInvariants(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8, tft bool) bool {
		r := rng.New(seed)
		members, _ := randomMembers(r)
		budget := int(budgetRaw%8) + 1
		before := storeSizes(members)

		events := Exchange(0, members, Config{
			Budget:    budget,
			TitForTat: tft,
		})

		// Budget respected.
		if len(events) > budget {
			return false
		}
		after := storeSizes(members)
		totalNew := 0
		for _, ev := range events {
			// Free-riders never send.
			for _, m := range members {
				if m.ID == ev.Sender && m.FreeRider {
					return false
				}
			}
			// Every new receiver actually holds the record now.
			for _, id := range ev.NewReceivers {
				if !members[id].HasMetadata(ev.Meta.URI) {
					return false
				}
			}
			// MatchedOwn is a subset of NewReceivers.
			set := make(map[trace.NodeID]bool)
			for _, id := range ev.NewReceivers {
				set[id] = true
			}
			for _, id := range ev.MatchedOwn {
				if !set[id] {
					return false
				}
			}
			totalNew += len(ev.NewReceivers)
		}
		// Stores only grow, by exactly the reported receipts.
		grown := 0
		for i := range members {
			if after[i] < before[i] {
				return false
			}
			grown += after[i] - before[i]
		}
		return grown == totalNew
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeIdempotentWhenSaturated(t *testing.T) {
	// After enough budget, a second exchange moves nothing.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		members, _ := randomMembers(r)
		for _, m := range members {
			m.FreeRider = false // full cooperation saturates the clique
		}
		Exchange(0, members, Config{Budget: 1000})
		again := Exchange(0, members, Config{Budget: 1000})
		return len(again) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeLossNeverIncreasesDelivery(t *testing.T) {
	f := func(seed uint64) bool {
		build := func() []*node.Node {
			members, _ := randomMembers(rng.New(seed))
			return members
		}
		clean := build()
		cleanEvents := Exchange(0, clean, Config{Budget: 5})
		lossy := build()
		lossyEvents := Exchange(0, lossy, Config{
			Budget: 5,
			Loss:   0.7,
			Rng:    rng.New(seed + 1),
		})
		countReceipts := func(evs []Event) int {
			total := 0
			for _, ev := range evs {
				total += len(ev.NewReceivers)
			}
			return total
		}
		return countReceipts(lossyEvents) <= countReceipts(cleanEvents)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalLossDeliversNothing(t *testing.T) {
	r := rng.New(42)
	members, _ := randomMembers(r)
	events := Exchange(0, members, Config{
		Budget: 10,
		Loss:   1,
		Rng:    rng.New(1),
	})
	for _, ev := range events {
		if len(ev.NewReceivers) != 0 {
			t.Fatalf("receivers under total loss: %+v", ev)
		}
	}
}
