// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement: the same master seed must produce
// byte-identical simulation results across runs and platforms. The package
// therefore avoids math/rand's global state and implements xoshiro256**
// seeded through SplitMix64, both of which are fully specified algorithms
// with no platform-dependent behaviour.
//
// Generators are cheap to create and may be split into independent child
// streams with Split, so that adding a new consumer of randomness does not
// perturb the draws seen by existing consumers.
package rng

import "math"

// Rand is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator derived from seed. Any seed, including zero, is
// valid: the state is expanded through SplitMix64, which never yields the
// all-zero xoshiro state.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	return &r
}

// splitMix64 advances the SplitMix64 state and returns the new state and
// the next output value.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split returns a new generator whose stream is statistically independent
// of the receiver's. The receiver advances by one draw.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32

	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place with a Fisher-Yates shuffle.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place, swapping via the provided function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
