package rng

import "math"

// Popularity samples a file popularity in (0, 1] from the distribution the
// paper specifies for newly generated files: a truncated exponential with
// probability density proportional to lambda*e^(-lambda*x) on [0, 1].
//
// The paper gives the inverse-CDF form
//
//	p = -log(1 - x*(1 - e^(-lambda))) / lambda
//
// with x uniform on [0, 1). The mean is approximately 1/lambda for large
// lambda; the paper sets lambda = n/2 for n new files per day so that each
// node generates on average n * (1/lambda) = 2 queries per day.
func (r *Rand) Popularity(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Popularity requires lambda > 0")
	}
	x := r.Float64()
	p := -math.Log(1-x*(1-math.Exp(-lambda))) / lambda
	// Guard against rounding pushing the result infinitesimally out of
	// range; popularity is used as a probability.
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ZipfPopularity samples a popularity for the file at the given
// popularity rank (0 = most popular) under a Zipf law with exponent
// alpha, scaled so rank 0 has popularity pMax. Used as an alternative
// workload model: the paper's truncated exponential draws independent
// popularities; Zipf imposes the heavy-tailed rank structure observed in
// web and P2P catalogs.
func ZipfPopularity(rank int, alpha, pMax float64) float64 {
	if rank < 0 || alpha <= 0 || pMax <= 0 {
		panic("rng: ZipfPopularity requires rank >= 0, alpha > 0, pMax > 0")
	}
	p := pMax / math.Pow(float64(rank+1), alpha)
	if p > 1 {
		p = 1
	}
	return p
}

// PopularityMean returns the exact mean of the truncated exponential
// popularity distribution with the given lambda. Used by tests and by
// workload sizing (expected queries per node per day = files/day * mean).
func PopularityMean(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: PopularityMean requires lambda > 0")
	}
	// E[p] = 1/lambda - e^(-lambda) / (1 - e^(-lambda)).
	e := math.Exp(-lambda)
	return 1/lambda - e/(1-e)
}
