package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := New(7)
	p.Uint64() // account for the draw consumed by Split
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("draw %d: child replays parent stream", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d: splits of identical parents diverge", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d: count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(10)
	vals := []int{5, 6, 7, 8, 9}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.ShuffleInts(vals)
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const n = 100000
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bool(%v) frequency = %v", p, got)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(14)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestPopularityRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for _, lambda := range []float64{0.5, 1, 5, 25, 50} {
			p := r.Popularity(lambda)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopularityMeanMatchesSamples(t *testing.T) {
	for _, lambda := range []float64{1, 5, 25} {
		r := New(20)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Popularity(lambda)
		}
		got := sum / n
		want := PopularityMean(lambda)
		if math.Abs(got-want) > 0.01*math.Max(want, 0.01)+0.002 {
			t.Fatalf("lambda=%v: sample mean %v, analytic %v", lambda, got, want)
		}
	}
}

func TestPopularityMeanApproxInverseLambda(t *testing.T) {
	// The paper approximates the mean as 1/lambda. The error term is
	// e^(-lambda)/(1-e^(-lambda)), so the approximation tightens quickly:
	// within 4% at lambda=5 (10 files/day) and within 0.01% at lambda=25.
	tests := []struct {
		lambda, relTol float64
	}{
		{5, 0.04},
		{25, 1e-4},
		{50, 1e-8},
	}
	for _, tt := range tests {
		mean := PopularityMean(tt.lambda)
		if math.Abs(mean-1/tt.lambda) > tt.relTol/tt.lambda {
			t.Fatalf("lambda=%v: mean %v not ~ 1/lambda=%v", tt.lambda, mean, 1/tt.lambda)
		}
	}
}

func TestPopularityPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Popularity(0) did not panic")
		}
	}()
	New(1).Popularity(0)
}

func TestPopularityMeanPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopularityMean(-1) did not panic")
		}
	}()
	PopularityMean(-1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestZipfPopularity(t *testing.T) {
	// Rank 0 gets the head popularity; ranks decay monotonically.
	if got := ZipfPopularity(0, 1, 0.5); got != 0.5 {
		t.Fatalf("head popularity = %v, want 0.5", got)
	}
	prev := 2.0
	for rank := 0; rank < 20; rank++ {
		p := ZipfPopularity(rank, 0.8, 0.5)
		if p <= 0 || p > 1 || p >= prev {
			t.Fatalf("rank %d: p = %v (prev %v)", rank, p, prev)
		}
		prev = p
	}
	// Clamped to 1 for degenerate head values.
	if got := ZipfPopularity(0, 1, 1); got != 1 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestZipfPopularityPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ZipfPopularity(-1, 1, 0.5) },
		func() { ZipfPopularity(0, 0, 0.5) },
		func() { ZipfPopularity(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
