package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/choke"
	"repro/internal/discovery"
	"repro/internal/download"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// serverQueryLimit bounds the best-matched metadata returned per pulled
// query string.
const serverQueryLimit = 5

// Sim is one configured simulation. Construct with New, run with Run.
type Sim struct {
	cfg       Config
	gen       *workload.Generator
	srv       *server.Server
	nodes     []*node.Node
	engine    sim.Engine
	collector *metrics.Collector
	lossRng   *rng.Rand
	// failAt[i] is when node i permanently fails; past the trace end
	// means never.
	failAt []simtime.Time
}

// New builds the simulation state for cfg.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(cfg.Workload)
	if err != nil {
		return nil, err
	}

	n := cfg.Trace.NodeCount
	internetCount := int(cfg.InternetFraction*float64(n) + 0.5)
	if internetCount < 1 {
		// The Internet is the sole file source; without access nodes the
		// DTN would be empty. Keep at least one.
		internetCount = 1
	}
	srv, err := server.New(internetCount)
	if err != nil {
		return nil, err
	}

	s := &Sim{
		cfg:       cfg,
		gen:       gen,
		srv:       srv,
		nodes:     make([]*node.Node, n),
		collector: metrics.NewCollector(),
	}

	r := rng.New(cfg.Seed)
	s.lossRng = r.Split()
	perm := r.Perm(n)
	internet := make(map[int]bool, internetCount)
	for _, idx := range perm[:internetCount] {
		internet[idx] = true
	}
	riderCount := int(cfg.FreeRiderFraction*float64(n) + 0.5)
	riders := make(map[int]bool, riderCount)
	for _, idx := range r.Perm(n)[:riderCount] {
		riders[idx] = true
	}

	// Churn: pick the failing nodes and their failure instants.
	never := cfg.Trace.End() + 1
	s.failAt = make([]simtime.Time, n)
	for i := range s.failAt {
		s.failAt[i] = never
	}
	failCount := int(cfg.NodeFailureRate*float64(n) + 0.5)
	span := int(cfg.Trace.End())
	if span < 1 {
		span = 1
	}
	for _, idx := range r.Perm(n)[:failCount] {
		s.failAt[idx] = simtime.Time(r.Intn(span))
	}

	freq := trace.NewStats(cfg.Trace).FrequentContacts(cfg.FrequentContactsPerDay)
	for i := range s.nodes {
		nd := node.New(trace.NodeID(i), internet[i])
		nd.FreeRider = riders[i]
		nd.SetFrequent(freq[trace.NodeID(i)])
		nd.SetLimits(node.Limits{
			MaxMetadata:    cfg.MetadataCapacity,
			MaxCachedFiles: cfg.PieceCacheCapacity,
		})
		if cfg.ChokeMinCredit > 0 {
			nd.ChokePolicy = &choke.Policy{
				MinCredit:       cfg.ChokeMinCredit,
				OptimisticEvery: cfg.ChokeOptimisticEvery,
			}
		}
		s.nodes[i] = nd
	}
	return s, nil
}

// Nodes exposes the node states (read-mostly; used by examples and
// tests).
func (s *Sim) Nodes() []*node.Node { return s.nodes }

// Collector exposes the metrics collector.
func (s *Sim) Collector() *metrics.Collector { return s.collector }

// Run executes the full simulation and returns its result. A Sim must
// only be run once.
func (s *Sim) Run() (*Result, error) {
	start := time.Now()
	// Schedule daily publications.
	for day := 0; day < s.cfg.Workload.Days; day++ {
		day := day
		at := simtime.At(day, simtime.FileGenerationOffset)
		if err := s.engine.At(at, func() { s.publishDay(day) }); err != nil {
			return nil, fmt.Errorf("schedule day %d: %w", day, err)
		}
	}
	// Schedule contact sessions.
	for i := range s.cfg.Trace.Sessions {
		sess := s.cfg.Trace.Sessions[i]
		if err := s.engine.At(sess.Start, func() { s.handleSession(sess) }); err != nil {
			return nil, fmt.Errorf("schedule session %d: %w", i, err)
		}
	}
	s.engine.Run()

	internetCount := 0
	for _, nd := range s.nodes {
		if nd.InternetAccess {
			internetCount++
		}
	}
	c := s.collector
	traffic := c.Traffic()
	engine := s.engine.Stats()
	return &Result{
		Variant:            s.cfg.Variant,
		Queries:            c.Queries(),
		MetadataDeliveries: c.MetadataDeliveries(),
		FileDeliveries:     c.FileDeliveries(),
		MetadataRatio:      c.MetadataRatio(),
		FileRatio:          c.FileRatio(),
		MeanMetadataDelay:  c.MeanMetadataDelay(),
		MeanFileDelay:      c.MeanFileDelay(),
		MetadataBroadcasts: traffic.MetadataBroadcasts,
		PieceBroadcasts:    traffic.PieceBroadcasts,
		InternetNodes:      internetCount,
		Sessions:           len(s.cfg.Trace.Sessions),
		Events:             engine.Fired,
		Wall:               time.Since(start),
	}, nil
}

// Run builds and runs a simulation in one call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// publishDay executes the 14:00 publication of one day's files: the
// server catalogs them, Internet-access nodes download what they want,
// and measured nodes generate queries for the files they are interested
// in.
func (s *Sim) publishDay(day int) {
	now := s.engine.Now()
	files := s.gen.FilesForDay(day)
	for _, f := range files {
		if err := s.srv.Publish(f.Meta); err != nil {
			// Generated metadata is valid by construction; a publish
			// failure is a programming error worth surfacing loudly.
			panic(fmt.Sprintf("core: publish day %d: %v", day, err))
		}
	}
	s.srv.Expire(now)

	for i, nd := range s.nodes {
		for _, f := range files {
			if !s.gen.Interested(i, f) {
				continue
			}
			if nd.InternetAccess {
				// Internet nodes download directly: metadata, then the
				// whole file (the paper grants them enough bandwidth).
				if err := s.srv.RecordRequest(now, f.Meta.URI, nd.ID); err != nil {
					panic(fmt.Sprintf("core: record request: %v", err))
				}
				nd.AddMetadata(f.Meta, f.Popularity, now)
				nd.Select(f.Meta.URI)
				nd.GrantFullFile(f.Meta.URI, f.Meta.NumPieces())
				continue
			}
			// Measured nodes only get a query; the DTN must do the rest.
			nd.AddQuery(workload.QueryFor(f), f.Meta.Expires)
			s.collector.QueryCreated(nd.ID, f.Meta.URI, now, f.Meta.Expires)
		}
	}

	// The server pushes the day's most popular metadata to Internet
	// nodes (MBT and MBT-Q; MBT-QM has no standalone metadata
	// distribution).
	if s.cfg.Variant != MBTQM && s.cfg.ServerPushTop > 0 {
		top := topByPopularity(files, s.cfg.ServerPushTop)
		for _, nd := range s.nodes {
			if !nd.InternetAccess {
				continue
			}
			for _, f := range top {
				nd.AddMetadata(f.Meta, f.Popularity, now)
			}
		}
	}

}

// topByPopularity returns up to k files in decreasing popularity.
func topByPopularity(files []*workload.File, k int) []*workload.File {
	sorted := make([]*workload.File, len(files))
	copy(sorted, files)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Popularity != sorted[j].Popularity {
			return sorted[i].Popularity > sorted[j].Popularity
		}
		return sorted[i].ID < sorted[j].ID
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// pullFromServer fetches best-matched metadata for each query into the
// gateway node's store.
func (s *Sim) pullFromServer(nd *node.Node, queries []string, now simtime.Time) {
	for _, q := range queries {
		for _, m := range s.srv.Query(now, q, serverQueryLimit) {
			pop := 0.0
			if f := s.gen.ByURI(m.URI); f != nil {
				pop = f.Popularity
			}
			nd.AddMetadata(m, pop, now)
		}
	}
}

// handleSession runs one contact: housekeeping, hello/query exchange,
// the discovery phase, user selection, and the download phase.
func (s *Sim) handleSession(sess trace.Session) {
	now := s.engine.Now()
	members := make([]*node.Node, 0, len(sess.Nodes))
	for _, id := range sess.Nodes {
		if now >= s.failAt[id] {
			continue // the node has failed; it misses this contact
		}
		nd := s.nodes[id]
		nd.Expire(now)
		members = append(members, nd)
	}
	if len(members) < 2 {
		return
	}

	// Hello exchange: in MBT, nodes cache the queries of their frequent
	// contacts (LearnPeerQueries ignores non-frequent peers).
	if s.cfg.Variant == MBT {
		for _, a := range members {
			for _, b := range members {
				if a == b {
					continue
				}
				for q, exp := range b.ActiveQueryMap(now) {
					a.LearnPeerQueries(b.ID, []string{q}, exp)
				}
			}
		}
	}

	// Internet members are online and send the server "the query strings
	// they have" (§IV): under MBT that includes the queries cached from
	// their frequent contacts, so they fetch the matching metadata and
	// can relay it through the discovery phase. A non-Internet node's
	// query reaches the server only through such a caching frequent
	// contact — there is no live gateway for arbitrary bystanders.
	if s.cfg.Variant == MBT {
		for _, m := range members {
			if m.InternetAccess {
				s.pullFromServer(m, m.PeerQueries(now), now)
			}
		}
	}

	if s.cfg.MessageLevel {
		s.handleSessionMessageLevel(now, members)
		return
	}

	// Discovery phase (start of the contact, §V's observation that short
	// contacts suffice for metadata).
	if s.cfg.Variant != MBTQM && s.cfg.MetadataPerContact > 0 {
		events := discovery.Exchange(now, members, discovery.Config{
			Budget:            s.cfg.MetadataPerContact,
			QueryDistribution: s.cfg.Variant == MBT,
			TitForTat:         s.cfg.TitForTat,
			PopularityOnly:    s.cfg.PopularityOnlyOrdering,
			Loss:              s.cfg.BroadcastLossRate,
			Rng:               s.lossRng,
		})
		s.collector.MetadataBroadcasts += len(events)
		for _, ev := range events {
			s.collector.MetadataReceipts += len(ev.NewReceivers)
		}
	}
	s.reconcile(members, now)

	// Download phase for the remainder of the contact.
	budget := s.cfg.FilesPerContact * s.cfg.Workload.PiecesPerFile
	if budget > 0 {
		events := download.Exchange(now, members, download.Config{
			PieceBudget:       budget,
			TitForTat:         s.cfg.TitForTat,
			PiggybackMetadata: s.cfg.Variant == MBTQM,
			Loss:              s.cfg.BroadcastLossRate,
			Rng:               s.lossRng,
		})
		s.collector.PieceBroadcasts += len(events)
		for _, ev := range events {
			s.collector.PieceReceipts += len(ev.NewReceivers)
		}
	}
	s.reconcile(members, now)
}

// handleSessionMessageLevel routes one contact through the full
// message-level protocol stack (wire-encoded, verified transfers) instead
// of the simulation kernel. Outcomes match the kernel on the ideal
// channel; the tests assert it.
func (s *Sim) handleSessionMessageLevel(now simtime.Time, members []*node.Node) {
	budget := 0
	if s.cfg.Variant != MBTQM {
		budget = s.cfg.MetadataPerContact
	}
	rep, err := proto.RunSession(now, members, proto.Config{
		MetadataBudget:    budget,
		PieceBudget:       s.cfg.FilesPerContact * s.cfg.Workload.PiecesPerFile,
		QueryDistribution: s.cfg.Variant == MBT,
		SkipQueryLearning: true, // the hello handling above cached exact expiries
		Piggyback:         s.cfg.Variant == MBTQM,
		AutoSelect:        true,
		Keys:              workload.KeyFor,
	})
	if err != nil {
		// A clique disagreement cannot arise from trace-defined sessions;
		// treat it as a programming error.
		panic(fmt.Sprintf("core: message-level session: %v", err))
	}
	s.collector.MetadataBroadcasts += rep.MetadataMessages
	s.collector.MetadataReceipts += rep.MetadataDelivered
	s.collector.PieceBroadcasts += rep.PieceMessages
	s.collector.PieceReceipts += rep.PiecesDelivered
	s.reconcile(members, now)
}

// reconcile records deliveries and performs the user's metadata
// selection: any stored metadata matching an active query is counted as
// delivered and its file marked for download; completed wanted files are
// counted as file deliveries.
func (s *Sim) reconcile(members []*node.Node, now simtime.Time) {
	for _, m := range members {
		if m.InternetAccess {
			continue // not measured; their files arrived at publication
		}
		for _, q := range m.Queries(now) {
			for _, sm := range m.MatchingQuery(q) {
				s.collector.MetadataDelivered(m.ID, sm.Meta.URI, now)
				m.Select(sm.Meta.URI)
			}
		}
		for _, uri := range completeWanted(m) {
			s.collector.FileDelivered(m.ID, uri, now)
		}
	}
}

// completeWanted lists the wanted URIs whose downloads are complete.
func completeWanted(m *node.Node) []metadata.URI {
	var out []metadata.URI
	for _, uri := range m.PieceURIs() {
		ps := m.Pieces(uri)
		if ps.Want && ps.Complete() {
			out = append(out, uri)
		}
	}
	return out
}
