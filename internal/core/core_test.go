package core

import (
	"errors"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/stgraph"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// smallNUS returns a quick campus trace for integration tests.
func smallNUS(t *testing.T) Config {
	t.Helper()
	nus := tracegen.DefaultNUS()
	nus.Students = 60
	nus.Classes = 12
	nus.Days = 7
	tr, err := tracegen.NUS(nus)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Workload.NewFilesPerDay = 20
	cfg.FrequentContactsPerDay = 0.5
	return cfg
}

// smallDiesel returns a quick bus trace for integration tests.
func smallDiesel(t *testing.T) Config {
	t.Helper()
	d := tracegen.DefaultDiesel()
	d.Buses = 20
	d.Routes = 4
	d.Days = 7
	tr, err := tracegen.Diesel(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Workload.NewFilesPerDay = 20
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunAllVariantsNUS(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := smallNUS(t)
			cfg.Variant = v
			res := run(t, cfg)
			if res.Queries == 0 {
				t.Fatal("no queries generated")
			}
			if res.MetadataRatio < 0 || res.MetadataRatio > 1 {
				t.Fatalf("metadata ratio %v out of range", res.MetadataRatio)
			}
			if res.FileRatio < 0 || res.FileRatio > 1 {
				t.Fatalf("file ratio %v out of range", res.FileRatio)
			}
			if res.FileRatio > res.MetadataRatio {
				t.Fatalf("file ratio %v exceeds metadata ratio %v: a file cannot "+
					"complete without its metadata being discovered",
					res.FileRatio, res.MetadataRatio)
			}
			if res.Variant != v {
				t.Fatalf("result variant %v, want %v", res.Variant, v)
			}
			if res.Events <= 0 {
				t.Fatalf("events = %d, want positive (instrumentation not threaded)", res.Events)
			}
			if res.Wall <= 0 {
				t.Fatalf("wall = %v, want positive", res.Wall)
			}
		})
	}
}

func TestRunAllVariantsDiesel(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := smallDiesel(t)
			cfg.Variant = v
			res := run(t, cfg)
			if res.Queries == 0 {
				t.Fatal("no queries generated")
			}
			if res.MetadataRatio <= 0 {
				t.Fatalf("metadata ratio %v, want positive on a connected trace",
					res.MetadataRatio)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, smallNUS(t))
	b := run(t, smallNUS(t))
	// Wall clock is the one legitimately nondeterministic field.
	a.Wall, b.Wall = 0, 0
	if *a != *b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesRoleAssignment(t *testing.T) {
	cfg := smallNUS(t)
	a := run(t, cfg)
	cfg.Seed = 99
	b := run(t, cfg)
	if *a == *b {
		t.Fatal("different seeds produced byte-identical results (suspicious)")
	}
}

func TestDiscoveryHelps(t *testing.T) {
	// MBT (with discovery) must beat MBT-QM (no metadata distribution)
	// on metadata delivery in a well-connected campus trace.
	cfg := smallNUS(t)
	cfg.Variant = MBT
	mbt := run(t, cfg)
	cfg.Variant = MBTQM
	qm := run(t, cfg)
	if mbt.MetadataRatio <= qm.MetadataRatio {
		t.Fatalf("MBT metadata ratio %v not above MBT-QM %v",
			mbt.MetadataRatio, qm.MetadataRatio)
	}
	if mbt.FileRatio < qm.FileRatio {
		t.Fatalf("MBT file ratio %v below MBT-QM %v", mbt.FileRatio, qm.FileRatio)
	}
}

func TestMoreInternetNodesHelp(t *testing.T) {
	cfg := smallNUS(t)
	cfg.InternetFraction = 0.1
	low := run(t, cfg)
	cfg.InternetFraction = 0.9
	high := run(t, cfg)
	if high.FileRatio <= low.FileRatio {
		t.Fatalf("file ratio at 90%% internet (%v) not above 10%% (%v)",
			high.FileRatio, low.FileRatio)
	}
	if high.InternetNodes <= low.InternetNodes {
		t.Fatalf("internet node counts: %d vs %d", high.InternetNodes, low.InternetNodes)
	}
}

func TestLongerTTLHelps(t *testing.T) {
	cfg := smallNUS(t)
	cfg.Workload.TTL = simtime.Days(1)
	short := run(t, cfg)
	cfg.Workload.TTL = simtime.Days(5)
	long := run(t, cfg)
	if long.FileRatio < short.FileRatio {
		t.Fatalf("file ratio with 5-day TTL (%v) below 1-day TTL (%v)",
			long.FileRatio, short.FileRatio)
	}
}

func TestBiggerBudgetsHelp(t *testing.T) {
	cfg := smallNUS(t)
	cfg.MetadataPerContact, cfg.FilesPerContact = 1, 1
	tight := run(t, cfg)
	cfg.MetadataPerContact, cfg.FilesPerContact = 10, 10
	roomy := run(t, cfg)
	if roomy.FileRatio < tight.FileRatio {
		t.Fatalf("file ratio with big budgets (%v) below tight budgets (%v)",
			roomy.FileRatio, tight.FileRatio)
	}
	if roomy.MetadataRatio < tight.MetadataRatio {
		t.Fatalf("metadata ratio with big budgets (%v) below tight (%v)",
			roomy.MetadataRatio, tight.MetadataRatio)
	}
}

func TestTitForTatRunsAndDelivers(t *testing.T) {
	cfg := smallNUS(t)
	cfg.TitForTat = true
	res := run(t, cfg)
	if res.MetadataRatio <= 0 {
		t.Fatalf("TFT metadata ratio %v, want positive", res.MetadataRatio)
	}
}

func TestFreeRidersServedWorseThanContributors(t *testing.T) {
	// The broadcast medium means free-riders cannot be excluded, so the
	// aggregate ratio barely moves; the tit-for-tat incentive shows up
	// per group — free-riders' requests carry no credit, so under a
	// scarce budget their delivery ratio must not beat the contributors'.
	var riderQ, riderMeta, contribQ, contribMeta int
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := smallNUS(t)
		cfg.TitForTat = true
		cfg.FreeRiderFraction = 0.4
		cfg.MetadataPerContact = 2
		cfg.Seed = seed
		cfg.Workload.Seed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		perNode := s.Collector().PerNode()
		for _, nd := range s.Nodes() {
			st, ok := perNode[nd.ID]
			if !ok {
				continue
			}
			if nd.FreeRider {
				riderQ += st.Queries
				riderMeta += st.MetadataDeliveries
			} else {
				contribQ += st.Queries
				contribMeta += st.MetadataDeliveries
			}
		}
	}
	if riderQ == 0 || contribQ == 0 {
		t.Fatalf("degenerate groups: rider queries %d, contributor queries %d", riderQ, contribQ)
	}
	riderRatio := float64(riderMeta) / float64(riderQ)
	contribRatio := float64(contribMeta) / float64(contribQ)
	if riderRatio > contribRatio {
		t.Fatalf("free-riders served better (%v) than contributors (%v)",
			riderRatio, contribRatio)
	}
}

func TestZeroBudgetsDeliverNothingViaDTN(t *testing.T) {
	cfg := smallNUS(t)
	cfg.MetadataPerContact = 0
	cfg.FilesPerContact = 0
	res := run(t, cfg)
	if res.MetadataDeliveries != 0 || res.FileDeliveries != 0 {
		t.Fatalf("deliveries with zero budgets: %d/%d",
			res.MetadataDeliveries, res.FileDeliveries)
	}
	if res.MetadataBroadcasts != 0 || res.PieceBroadcasts != 0 {
		t.Fatalf("broadcasts with zero budgets: %d/%d",
			res.MetadataBroadcasts, res.PieceBroadcasts)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config { return smallNUS(t) }
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"node mismatch", func(c *Config) { c.Workload.Nodes++ }},
		{"bad variant", func(c *Config) { c.Variant = 0 }},
		{"internet fraction", func(c *Config) { c.InternetFraction = 1.5 }},
		{"free rider fraction", func(c *Config) { c.FreeRiderFraction = -0.1 }},
		{"negative metadata budget", func(c *Config) { c.MetadataPerContact = -1 }},
		{"negative file budget", func(c *Config) { c.FilesPerContact = -1 }},
		{"negative frequency", func(c *Config) { c.FrequentContactsPerDay = -1 }},
		{"negative push", func(c *Config) { c.ServerPushTop = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestBadWorkloadRejected(t *testing.T) {
	cfg := smallNUS(t)
	cfg.Workload.NewFilesPerDay = 0
	if _, err := New(cfg); !errors.Is(err, workload.ErrConfig) {
		t.Fatalf("err = %v, want workload config error", err)
	}
}

func TestVariantStrings(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{MBT, "MBT"},
		{MBTQ, "MBT-Q"},
		{MBTQM, "MBT-QM"},
		{Variant(9), "Variant(9)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range Variants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("ParseVariant(bogus) accepted")
	}
}

func TestAtLeastOneInternetNode(t *testing.T) {
	cfg := smallNUS(t)
	cfg.InternetFraction = 0
	res := run(t, cfg)
	if res.InternetNodes != 1 {
		t.Fatalf("internet nodes = %d, want minimum of 1", res.InternetNodes)
	}
}

func TestSessionsReported(t *testing.T) {
	cfg := smallNUS(t)
	res := run(t, cfg)
	if res.Sessions != len(cfg.Trace.Sessions) {
		t.Fatalf("sessions = %d, want %d", res.Sessions, len(cfg.Trace.Sessions))
	}
}

func TestBroadcastLossHurtsDelivery(t *testing.T) {
	cfg := smallNUS(t)
	clean := run(t, cfg)
	cfg.BroadcastLossRate = 0.5
	lossy := run(t, cfg)
	if lossy.MetadataRatio > clean.MetadataRatio {
		t.Fatalf("metadata ratio with 50%% loss (%v) above clean channel (%v)",
			lossy.MetadataRatio, clean.MetadataRatio)
	}
	if lossy.FileRatio > clean.FileRatio {
		t.Fatalf("file ratio with 50%% loss (%v) above clean channel (%v)",
			lossy.FileRatio, clean.FileRatio)
	}
}

func TestTotalLossDeliversNothingViaDTN(t *testing.T) {
	cfg := smallNUS(t)
	cfg.BroadcastLossRate = 1
	res := run(t, cfg)
	if res.MetadataDeliveries != 0 || res.FileDeliveries != 0 {
		t.Fatalf("deliveries under total loss: %d/%d",
			res.MetadataDeliveries, res.FileDeliveries)
	}
}

func TestStorageCapsRunAndDegrade(t *testing.T) {
	cfg := smallNUS(t)
	unlimited := run(t, cfg)
	cfg.MetadataCapacity = 10
	cfg.PieceCacheCapacity = 2
	capped := run(t, cfg)
	if capped.MetadataRatio > unlimited.MetadataRatio {
		t.Fatalf("metadata ratio with tiny caps (%v) above unlimited (%v)",
			capped.MetadataRatio, unlimited.MetadataRatio)
	}
	if capped.Queries != unlimited.Queries {
		t.Fatalf("query counts differ: %d vs %d", capped.Queries, unlimited.Queries)
	}
}

func TestLossConfigValidation(t *testing.T) {
	cfg := smallNUS(t)
	cfg.BroadcastLossRate = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
	cfg = smallNUS(t)
	cfg.MetadataCapacity = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestLossyRunDeterministic(t *testing.T) {
	cfg := smallNUS(t)
	cfg.BroadcastLossRate = 0.3
	a := run(t, cfg)
	b := run(t, cfg)
	// Wall clock is the one legitimately nondeterministic field.
	a.Wall, b.Wall = 0, 0
	if *a != *b {
		t.Fatalf("lossy runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestChokingStarvesFreeRiderFiles(t *testing.T) {
	// With encryption-based choking, free-riders cannot use overheard
	// piece broadcasts, so their file delivery collapses relative to
	// contributors' — the paper's footnote-1 claim.
	var riderQ, riderFiles, contribQ, contribFiles int
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := smallNUS(t)
		cfg.TitForTat = true
		cfg.FreeRiderFraction = 0.4
		cfg.ChokeMinCredit = 0.5
		cfg.ChokeOptimisticEvery = 5
		cfg.Seed = seed
		cfg.Workload.Seed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		perNode := s.Collector().PerNode()
		for _, nd := range s.Nodes() {
			st, ok := perNode[nd.ID]
			if !ok {
				continue
			}
			if nd.FreeRider {
				riderQ += st.Queries
				riderFiles += st.FileDeliveries
			} else {
				contribQ += st.Queries
				contribFiles += st.FileDeliveries
			}
		}
	}
	if riderQ == 0 || contribQ == 0 {
		t.Fatal("degenerate groups")
	}
	riderRatio := float64(riderFiles) / float64(riderQ)
	contribRatio := float64(contribFiles) / float64(contribQ)
	if riderRatio >= contribRatio {
		t.Fatalf("choked free-riders (%v) not below contributors (%v)",
			riderRatio, contribRatio)
	}
}

func TestChokeConfigValidation(t *testing.T) {
	cfg := smallNUS(t)
	cfg.ChokeMinCredit = 1 // without TitForTat
	if _, err := New(cfg); err == nil {
		t.Fatal("choking without tit-for-tat accepted")
	}
	cfg = smallNUS(t)
	cfg.TitForTat = true
	cfg.ChokeMinCredit = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative choke credit accepted")
	}
	cfg = smallNUS(t)
	cfg.TitForTat = true
	cfg.ChokeOptimisticEvery = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative optimistic interval accepted")
	}
}

func TestNoDeliveryBeatsTheSpaceTimeOracle(t *testing.T) {
	// The space-time graph gives the earliest instant information held
	// by the Internet-access nodes could reach each node. No metadata
	// delivery may precede it.
	cfg := smallNUS(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	perNode := s.Collector().PerNode()
	checked := 0
	for day := 0; day < cfg.Workload.Days; day++ {
		published := simtime.At(day, simtime.FileGenerationOffset)
		sources := make(map[trace.NodeID]simtime.Time)
		for _, nd := range s.Nodes() {
			if nd.InternetAccess {
				sources[nd.ID] = published
			}
		}
		arrival := stgraph.EarliestArrival(cfg.Trace, sources)
		for _, f := range fileRange(cfg, day) {
			for _, nd := range s.Nodes() {
				rec := s.Collector().Record(nd.ID, f)
				if rec == nil || rec.MetaAt < 0 || rec.CreatedAt != published {
					continue
				}
				checked++
				oracle := arrival[nd.ID]
				if oracle == stgraph.Unreachable || rec.MetaAt < oracle {
					t.Fatalf("node %d got %s at %v, before the oracle's %v",
						nd.ID, f, rec.MetaAt, oracle)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("oracle test checked no deliveries")
	}
	_ = perNode
}

// fileRange returns the URIs published on a given day.
func fileRange(cfg Config, day int) []metadata.URI {
	var out []metadata.URI
	for i := 0; i < cfg.Workload.NewFilesPerDay; i++ {
		out = append(out, metadata.URIFor(metadata.FileID(day*cfg.Workload.NewFilesPerDay+i)))
	}
	return out
}

func TestMessageLevelMatchesKernel(t *testing.T) {
	// The full message-level stack must produce the same delivery
	// outcomes as the simulation kernel over an entire trace, for every
	// protocol variant.
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := smallNUS(t)
			cfg.Variant = v
			kernel := run(t, cfg)
			cfg.MessageLevel = true
			message := run(t, cfg)
			if kernel.Queries != message.Queries ||
				kernel.MetadataDeliveries != message.MetadataDeliveries ||
				kernel.FileDeliveries != message.FileDeliveries {
				t.Fatalf("kernel %+v\nmessage %+v", kernel, message)
			}
		})
	}
}

func TestMessageLevelConfigConstraints(t *testing.T) {
	cfg := smallNUS(t)
	cfg.MessageLevel = true
	cfg.TitForTat = true
	if _, err := New(cfg); err == nil {
		t.Fatal("message-level with tit-for-tat accepted")
	}
	cfg = smallNUS(t)
	cfg.MessageLevel = true
	cfg.BroadcastLossRate = 0.5
	if _, err := New(cfg); err == nil {
		t.Fatal("message-level with loss accepted")
	}
}

func TestNodeFailuresHurtDelivery(t *testing.T) {
	cfg := smallNUS(t)
	healthy := run(t, cfg)
	cfg.NodeFailureRate = 0.8
	churned := run(t, cfg)
	if churned.FileRatio >= healthy.FileRatio {
		t.Fatalf("file ratio with 80%% failures (%v) not below healthy (%v)",
			churned.FileRatio, healthy.FileRatio)
	}
	if churned.Queries != healthy.Queries {
		t.Fatalf("failed nodes' queries must stay in the denominator: %d vs %d",
			churned.Queries, healthy.Queries)
	}
}

func TestNodeFailureDeterministic(t *testing.T) {
	cfg := smallNUS(t)
	cfg.NodeFailureRate = 0.5
	a := run(t, cfg)
	b := run(t, cfg)
	// Wall clock is the one legitimately nondeterministic field.
	a.Wall, b.Wall = 0, 0
	if *a != *b {
		t.Fatalf("churned runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestNodeFailureRateValidation(t *testing.T) {
	cfg := smallNUS(t)
	cfg.NodeFailureRate = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("failure rate 1.5 accepted")
	}
}
