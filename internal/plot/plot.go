// Package plot renders experiment series as standalone SVG line charts,
// so the harness can regenerate the paper's figures as images without any
// external plotting dependency. Each chart plots the metadata or file
// delivery ratio (y, always [0,1]) against the panel's sweep variable (x)
// with one line per protocol.
package plot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
)

// Metric selects which ratio a chart shows.
type Metric int

// The two measured ratios.
const (
	MetadataRatio Metric = iota + 1
	FileRatio
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetadataRatio:
		return "metadata delivery ratio"
	case FileRatio:
		return "file delivery ratio"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Chart geometry.
const (
	width      = 640
	height     = 420
	marginLeft = 70
	marginTop  = 50
	marginBot  = 60
	marginRt   = 30
	plotW      = width - marginLeft - marginRt
	plotH      = height - marginTop - marginBot
)

// Line colors per protocol (color-blind-safe trio).
var colors = map[core.Variant]string{
	core.MBT:   "#0072b2",
	core.MBTQ:  "#e69f00",
	core.MBTQM: "#009e73",
}

// SVG renders one chart for the series and metric.
func SVG(s *experiment.Series, metric Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="25" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`,
		width/2, escape(s.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, height-15, escape(s.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, escape(metric.String()))

	xMin, xMax := xRange(s)
	xPos := func(x float64) float64 {
		if xMax == xMin {
			return marginLeft + float64(plotW)/2
		}
		return marginLeft + (x-xMin)/(xMax-xMin)*float64(plotW)
	}
	yPos := func(y float64) float64 {
		if y < 0 {
			y = 0
		}
		if y > 1 {
			y = 1
		}
		return marginTop + (1-y)*float64(plotH)
	}

	// Grid and y ticks at 0, .2, ..., 1.
	for i := 0; i <= 5; i++ {
		y := float64(i) / 5
		py := yPos(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginLeft, py, marginLeft+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.1f</text>`,
			marginLeft-8, py+4, y)
	}
	// X ticks at each sweep point.
	for _, p := range s.Points {
		px := xPos(p.X)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`,
			px, marginTop, px, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`,
			px, marginTop+plotH+18, p.X)
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`,
		marginLeft, marginTop, plotW, plotH)

	// One polyline + markers per protocol.
	for i, v := range core.Variants() {
		color := colors[v]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(p.X), yPos(value(p, v, metric))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`,
				xPos(p.X), yPos(value(p, v, metric)), color)
		}
		// Legend.
		lx := marginLeft + 12
		ly := marginTop + 16 + i*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`,
			lx+28, ly, v)
	}

	b.WriteString(`</svg>`)
	return b.String()
}

// value extracts the chosen ratio.
func value(p experiment.Point, v core.Variant, metric Metric) float64 {
	c := p.Cells[v]
	if metric == FileRatio {
		return c.FileRatio
	}
	return c.MetadataRatio
}

// xRange returns the sweep's x extent.
func xRange(s *experiment.Series) (float64, float64) {
	if len(s.Points) == 0 {
		return 0, 1
	}
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	sort.Float64s(xs)
	return xs[0], xs[len(xs)-1]
}

// escape sanitizes text for SVG embedding.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
