package plot

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
)

func sampleSeries() *experiment.Series {
	return &experiment.Series{
		ID:     "fig3a",
		Title:  "Fig 3(a): delivery vs Internet-access nodes (NUS)",
		XLabel: "internet-access fraction",
		Points: []experiment.Point{
			{X: 0.1, Cells: map[core.Variant]experiment.Cell{
				core.MBT:   {MetadataRatio: 0.44, FileRatio: 0.21},
				core.MBTQ:  {MetadataRatio: 0.39, FileRatio: 0.23},
				core.MBTQM: {MetadataRatio: 0.14, FileRatio: 0.14},
			}},
			{X: 0.9, Cells: map[core.Variant]experiment.Cell{
				core.MBT:   {MetadataRatio: 0.83, FileRatio: 0.54},
				core.MBTQ:  {MetadataRatio: 0.72, FileRatio: 0.53},
				core.MBTQM: {MetadataRatio: 0.15, FileRatio: 0.15},
			}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	svg := SVG(sampleSeries(), FileRatio)
	for _, want := range []string{
		"<svg", "</svg>",
		"Fig 3(a)",
		"internet-access fraction",
		"file delivery ratio",
		"MBT", "MBT-Q", "MBT-QM",
		"<polyline",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Errorf("polylines = %d, want one per protocol", got)
	}
	// Two sweep points x three protocols = six markers.
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
}

func TestSVGMetricSelection(t *testing.T) {
	meta := SVG(sampleSeries(), MetadataRatio)
	if !strings.Contains(meta, "metadata delivery ratio") {
		t.Fatal("metadata metric label missing")
	}
}

func TestSVGEscapesText(t *testing.T) {
	s := sampleSeries()
	s.Title = `a < b & "c"`
	svg := SVG(s, FileRatio)
	if strings.Contains(svg, `a < b`) {
		t.Fatal("unescaped < in output")
	}
	if !strings.Contains(svg, "a &lt; b &amp; &quot;c&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGEmptySeries(t *testing.T) {
	s := &experiment.Series{ID: "x", Title: "empty", XLabel: "x"}
	svg := SVG(s, FileRatio)
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty series produced invalid SVG")
	}
}

func TestSVGSinglePoint(t *testing.T) {
	s := sampleSeries()
	s.Points = s.Points[:1]
	svg := SVG(s, MetadataRatio)
	if !strings.Contains(svg, "<circle") {
		t.Fatal("single-point series lost its markers")
	}
}

func TestMetricString(t *testing.T) {
	if MetadataRatio.String() != "metadata delivery ratio" ||
		FileRatio.String() != "file delivery ratio" {
		t.Fatal("metric names wrong")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Fatal("unknown metric name wrong")
	}
}
