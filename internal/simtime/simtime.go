// Package simtime defines the simulation clock's time and duration types.
//
// Simulated time is a number of seconds since the start of the simulation,
// held as an int64 of milliseconds so that arithmetic is exact and ordering
// is total. Day arithmetic matters to the workload: the paper generates n
// new files every day at 14:00, so the package knows about day boundaries
// and offsets within a day.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, measured in milliseconds since the
// simulation epoch (midnight before the first day).
type Time int64

// Duration is a span of simulated time in milliseconds.
type Duration int64

// Common durations.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// FileGenerationOffset is the time of day at which the workload publishes
// the day's new files: 14:00, per the paper ("everyday at 2PM").
const FileGenerationOffset = 14 * Hour

// Seconds constructs a Duration from a (possibly fractional) second count.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Days constructs a Duration from a day count.
func Days(d int) Duration { return Duration(d) * Day }

// At constructs a Time from a day index and an offset within the day.
func At(day int, offset Duration) Time { return Time(Duration(day)*Day + offset) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Day returns the zero-based day index containing t. Negative instants
// (before the epoch) round toward negative infinity.
func (t Time) Day() int {
	d := int64(t) / int64(Day)
	if int64(t)%int64(Day) < 0 {
		d--
	}
	return int(d)
}

// DayOffset returns the duration elapsed since the start of t's day.
func (t Time) DayOffset() Duration {
	off := Duration(int64(t) % int64(Day))
	if off < 0 {
		off += Day
	}
	return off
}

// Seconds returns t as a floating-point second count since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders t as "d<day> hh:mm:ss.mmm".
func (t Time) String() string {
	off := t.DayOffset()
	h := off / Hour
	m := (off % Hour) / Minute
	s := (off % Minute) / Second
	ms := off % Second
	return fmt.Sprintf("d%d %02d:%02d:%02d.%03d", t.Day(), h, m, s, ms)
}

// Seconds returns d as a floating-point second count.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration for interoperability with the standard
// library (e.g. formatting); simulated milliseconds map to real ones.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Millisecond }

// String renders d using the standard library's duration formatting.
func (d Duration) String() string { return d.Std().String() }
