package simtime

import (
	"testing"
	"testing/quick"
)

func TestAtComposesDayAndOffset(t *testing.T) {
	tests := []struct {
		day    int
		offset Duration
		want   Time
	}{
		{0, 0, 0},
		{0, Hour, Time(Hour)},
		{1, 0, Time(Day)},
		{2, FileGenerationOffset, Time(2*Day + 14*Hour)},
	}
	for _, tt := range tests {
		if got := At(tt.day, tt.offset); got != tt.want {
			t.Errorf("At(%d, %v) = %v, want %v", tt.day, tt.offset, got, tt.want)
		}
	}
}

func TestDayAndOffsetRoundTrip(t *testing.T) {
	f := func(day uint16, offMillis uint32) bool {
		d := int(day)
		off := Duration(offMillis) % Day
		tm := At(d, off)
		return tm.Day() == d && tm.DayOffset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDayOfNegativeTime(t *testing.T) {
	tm := Time(-1)
	if got := tm.Day(); got != -1 {
		t.Fatalf("Time(-1).Day() = %d, want -1", got)
	}
	if got := tm.DayOffset(); got != Day-Millisecond {
		t.Fatalf("Time(-1).DayOffset() = %v, want %v", got, Day-Millisecond)
	}
}

func TestAddSub(t *testing.T) {
	start := At(1, Hour)
	end := start.Add(90 * Minute)
	if got := end.Sub(start); got != 90*Minute {
		t.Fatalf("Sub = %v, want 90m", got)
	}
	if !start.Before(end) || !end.After(start) {
		t.Fatal("ordering predicates inconsistent")
	}
}

func TestSecondsConversions(t *testing.T) {
	if got := Seconds(1.5); got != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", got)
	}
	if got := Time(2500).Seconds(); got != 2.5 {
		t.Fatalf("Time(2500).Seconds() = %v", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Fatalf("(3s).Seconds() = %v", got)
	}
}

func TestDays(t *testing.T) {
	if got := Days(3); got != 3*Day {
		t.Fatalf("Days(3) = %v", got)
	}
}

func TestFileGenerationOffsetIs2PM(t *testing.T) {
	if FileGenerationOffset != 14*Hour {
		t.Fatalf("file generation offset = %v, want 14h", FileGenerationOffset)
	}
}

func TestTimeString(t *testing.T) {
	tm := At(2, 5*Hour+6*Minute+7*Second+8*Millisecond)
	if got, want := tm.String(), "d2 05:06:07.008"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestDurationString(t *testing.T) {
	if got, want := (90 * Second).String(), "1m30s"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
