// Package fec implements a rateless erasure code in the LT/online-code
// family — the stdlib-only stand-in for the RaptorQ (RFC 6330) codes
// coopcast-style symbol broadcast builds on. A piece of data is sliced
// into K fixed-size source symbols, and the encoder emits an unbounded
// stream of coded symbols, each the XOR of a pseudo-random subset of
// the source symbols. A receiver recovers the piece from *any* subset
// of coded symbols whose equations span the K sources — typically
// K(1+ε) symbols for a small ε — which is what makes the code the
// right data plane for a lossy broadcast medium: the sender never
// needs to know which symbols were lost, and every received symbol
// helps every receiver.
//
// Determinism is load-bearing: a coded symbol is fully described by
// (block seed, symbol index). Both sides derive the symbol's degree
// and neighbor set from a PRNG seeded by that pair, so the wire
// carries only the index and payload, relays can forward symbols they
// never decoded, and a replayed test run sees byte-identical streams.
//
// The degree distribution is the robust soliton of Luby's LT paper:
// the ideal soliton ρ (one degree-1 symbol in expectation, then
// 1/d(d-1)) plus the spike τ that keeps the decoder's ripple alive,
// normalized to a CDF. The decoder is a Gaussian eliminator over
// GF(2) with one uint64-bitset row per pivot — for the symbol counts
// a piece produces (K ≤ a few hundred) this is both simpler and
// stricter than a peeling decoder: decode succeeds exactly when the
// received equations reach rank K, and fails closed below it.
package fec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// Robust-soliton shape parameters (Luby's c and δ). They trade the
// expected decoding overhead against the variance of the symbol
// degrees; these values keep the overhead factor small for the K this
// package sees without fattening the high-degree tail.
const (
	solitonC     = 0.1
	solitonDelta = 0.5
)

// MaxK bounds the source-symbol count per block: one piece at the
// protocol's 256 KB piece size and a 256-byte symbol is 1024 symbols,
// and the quadratic bitset eliminator stays cheap well past that.
const MaxK = 1 << 14

// Params names one coded block's symbol stream. Two endpoints holding
// equal Params derive identical degree and neighbor sequences, so
// Params plus a symbol index is a complete description of a symbol.
type Params struct {
	// DataLen is the original block length in bytes.
	DataLen int
	// SymbolSize is the payload bytes per symbol; the last source
	// symbol is zero-padded up to it.
	SymbolSize int
	// Seed names the stream: degree and neighbor choices for symbol i
	// are drawn from a PRNG keyed by (Seed, i).
	Seed uint64
}

// Validate reports whether the parameters describe a usable block.
func (p Params) Validate() error {
	if p.DataLen <= 0 {
		return fmt.Errorf("fec: data length %d", p.DataLen)
	}
	if p.SymbolSize <= 0 {
		return fmt.Errorf("fec: symbol size %d", p.SymbolSize)
	}
	if k := p.K(); k > MaxK {
		return fmt.Errorf("fec: %d source symbols exceeds max %d", k, MaxK)
	}
	return nil
}

// K is the source-symbol count: ⌈DataLen/SymbolSize⌉.
func (p Params) K() int {
	if p.SymbolSize <= 0 {
		return 0
	}
	return (p.DataLen + p.SymbolSize - 1) / p.SymbolSize
}

// soliton is the precomputed robust-soliton CDF for one K.
type soliton struct {
	k   int
	cdf []float64 // cdf[d-1] = P(degree <= d)
}

// newSoliton builds the robust-soliton distribution μ for k source
// symbols: μ(d) ∝ ρ(d) + τ(d) with ρ the ideal soliton and τ the
// robust spike at d = k/R.
func newSoliton(k int) *soliton {
	if k == 1 {
		return &soliton{k: 1, cdf: []float64{1}}
	}
	r := solitonC * math.Log(float64(k)/solitonDelta) * math.Sqrt(float64(k))
	if r < 1 {
		r = 1
	}
	spike := int(math.Floor(float64(k) / r))
	if spike < 1 {
		spike = 1
	}
	if spike > k {
		spike = k
	}
	pdf := make([]float64, k+1) // 1-indexed by degree
	pdf[1] = 1 / float64(k)
	for d := 2; d <= k; d++ {
		pdf[d] = 1 / (float64(d) * float64(d-1))
	}
	for d := 1; d < spike; d++ {
		pdf[d] += r / (float64(d) * float64(k))
	}
	pdf[spike] += r * math.Log(r/solitonDelta) / float64(k)

	cdf := make([]float64, k)
	sum := 0.0
	for d := 1; d <= k; d++ {
		sum += pdf[d]
	}
	acc := 0.0
	for d := 1; d <= k; d++ {
		acc += pdf[d] / sum
		cdf[d-1] = acc
	}
	cdf[k-1] = 1 // guard against rounding
	return &soliton{k: k, cdf: cdf}
}

// degree draws one symbol degree in [1, k] from the CDF.
func (s *soliton) degree(u float64) int {
	lo, hi := 0, s.k-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// symbolRNG keys the per-symbol PRNG stream: mixing the index through
// a SplitMix64-style odd multiplier decorrelates adjacent indices
// before the generator's own seeding expands the state.
func symbolRNG(seed uint64, idx uint32) *rng.Rand {
	return rng.New(seed ^ (uint64(idx)+1)*0x9E3779B97F4A7C15)
}

// denseQ is the fraction of non-systematic symbols drawn dense (each
// source included with probability 1/2) instead of from the soliton
// CDF. Dense rows are the eliminator's rank insurance: a random dense
// row is dependent on an r-dimensional deficient span with probability
// ~2^-(k-r), so a handful of them collapses the chance that K(1+eps)
// received symbols stall below full rank — the small-K regime where
// the pure soliton distribution leaves LT codes flaky.
const denseQ = 0.15

// neighbors derives coded symbol idx's source set. The stream is
// systematic first — symbol i < K is source symbol i verbatim, so an
// unlossy receiver decodes with zero overhead — then rateless: a
// degree drawn from the soliton CDF (or a dense row, see denseQ) and
// that many distinct source indices by partial Fisher–Yates, all from
// the (seed, idx)-keyed stream.
func neighbors(s *soliton, seed uint64, idx uint32, scratch []int) []int {
	if int(idx) < s.k {
		scratch[0] = int(idx)
		return scratch[:1]
	}
	r := symbolRNG(seed, idx)
	if r.Float64() < denseQ {
		d := 0
		for i := 0; i < s.k; i++ {
			if r.Bool(0.5) {
				scratch[d] = i
				d++
			}
		}
		if d > 0 {
			return scratch[:d]
		}
	}
	d := s.degree(r.Float64())
	for i := range scratch {
		scratch[i] = i
	}
	for i := 0; i < d; i++ {
		j := i + r.Intn(s.k-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
	}
	return scratch[:d]
}

// Encoder emits the coded symbol stream for one block. Construct with
// NewEncoder; Symbol may be called with any index, in any order, from
// one goroutine at a time.
type Encoder struct {
	p       Params
	sol     *soliton
	src     []byte // K·SymbolSize bytes, zero-padded copy of the data
	scratch []int
}

// NewEncoder slices data into ⌈len(data)/symbolSize⌉ source symbols
// under the given stream seed.
func NewEncoder(data []byte, symbolSize int, seed uint64) (*Encoder, error) {
	p := Params{DataLen: len(data), SymbolSize: symbolSize, Seed: seed}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K()
	src := make([]byte, k*symbolSize)
	copy(src, data)
	return &Encoder{p: p, sol: newSoliton(k), src: src, scratch: make([]int, k)}, nil
}

// Params returns the block's stream identity.
func (e *Encoder) Params() Params { return e.p }

// K is the source-symbol count.
func (e *Encoder) K() int { return e.sol.k }

// Symbol materializes coded symbol idx: the XOR of its derived source
// set. The returned slice is freshly allocated.
func (e *Encoder) Symbol(idx uint32) []byte {
	return e.AppendSymbol(nil, idx)
}

// AppendSymbol appends coded symbol idx to dst and returns the
// extended slice, so a steady-state sender can reuse one buffer.
func (e *Encoder) AppendSymbol(dst []byte, idx uint32) []byte {
	at := len(dst)
	dst = append(dst, make([]byte, e.p.SymbolSize)...)
	out := dst[at:]
	for _, n := range neighbors(e.sol, e.p.Seed, idx, e.scratch) {
		xorBytes(out, e.src[n*e.p.SymbolSize:(n+1)*e.p.SymbolSize])
	}
	return dst
}

// geRow is one reduced equation: a GF(2) coefficient bitset over the
// source symbols and the XOR of the corresponding payloads.
type geRow struct {
	coef []uint64
	data []byte
}

// Decoder reconstructs one block from any spanning subset of its
// coded symbols. Construct with NewDecoder; not safe for concurrent
// use.
type Decoder struct {
	p     Params
	sol   *soliton
	k     int
	words int
	// rows[c] is the pivot row whose lowest set coefficient is c.
	rows    []*geRow
	rank    int
	seen    map[uint32]bool
	scratch []int
	solved  []byte // assembled data once rank == k
}

// NewDecoder prepares an empty decoder for the block p describes.
func NewDecoder(p Params) (*Decoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K()
	return &Decoder{
		p:       p,
		sol:     newSoliton(k),
		k:       k,
		words:   (k + 63) / 64,
		rows:    make([]*geRow, k),
		seen:    make(map[uint32]bool),
		scratch: make([]int, k),
	}, nil
}

// Params returns the block's stream identity.
func (d *Decoder) Params() Params { return d.p }

// K is the source-symbol count.
func (d *Decoder) K() int { return d.k }

// Received counts distinct symbol indices absorbed so far.
func (d *Decoder) Received() int { return len(d.seen) }

// Rank is the number of independent equations held; decode completes
// at Rank == K.
func (d *Decoder) Rank() int { return d.rank }

// Done reports whether the block is fully decodable.
func (d *Decoder) Done() bool { return d.rank == d.k }

// Add absorbs coded symbol idx and reports whether the block is now
// decodable. Duplicate indices and linearly dependent symbols are
// absorbed as no-ops; a payload of the wrong length is an error.
func (d *Decoder) Add(idx uint32, payload []byte) (bool, error) {
	if len(payload) != d.p.SymbolSize {
		return d.Done(), fmt.Errorf("fec: symbol %d payload %d bytes, want %d",
			idx, len(payload), d.p.SymbolSize)
	}
	if d.Done() || d.seen[idx] {
		return d.Done(), nil
	}
	d.seen[idx] = true

	row := &geRow{coef: make([]uint64, d.words), data: append([]byte(nil), payload...)}
	for _, n := range neighbors(d.sol, d.p.Seed, idx, d.scratch) {
		row.coef[n/64] ^= 1 << (n % 64)
	}
	// Reduce against the pivots until the row dies or claims a new one.
	for {
		c, ok := lowestBit(row.coef)
		if !ok {
			return false, nil // linearly dependent: nothing new
		}
		if d.rows[c] == nil {
			d.rows[c] = row
			d.rank++
			if d.rank == d.k {
				d.solve()
			}
			return d.Done(), nil
		}
		xorWords(row.coef, d.rows[c].coef)
		xorBytes(row.data, d.rows[c].data)
	}
}

// solve back-substitutes the full-rank system to the identity, leaving
// rows[i].data = source symbol i, and assembles the block.
func (d *Decoder) solve() {
	for c := d.k - 1; c > 0; c-- {
		piv := d.rows[c]
		for c2 := 0; c2 < c; c2++ {
			r := d.rows[c2]
			if r.coef[c/64]&(1<<(c%64)) != 0 {
				xorWords(r.coef, piv.coef)
				xorBytes(r.data, piv.data)
			}
		}
	}
	out := make([]byte, d.k*d.p.SymbolSize)
	for i, r := range d.rows {
		copy(out[i*d.p.SymbolSize:], r.data)
	}
	d.solved = out[:d.p.DataLen]
}

// Data returns the decoded block once Done; (nil, false) below rank K
// — the decoder fails closed rather than guessing at missing symbols.
func (d *Decoder) Data() ([]byte, bool) {
	if !d.Done() {
		return nil, false
	}
	return d.solved, true
}

// Reset discards every absorbed symbol, returning the decoder to its
// empty state. The recovery path for a poisoned system: a corrupted
// payload that slipped past integrity checks XORs garbage into the
// eliminator, so the completed block fails verification and the caller
// starts the stream's collection over.
func (d *Decoder) Reset() {
	for i := range d.rows {
		d.rows[i] = nil
	}
	d.rank = 0
	d.solved = nil
	d.seen = make(map[uint32]bool)
}

// lowestBit returns the index of the lowest set bit of the bitset.
func lowestBit(w []uint64) (int, bool) {
	for i, v := range w {
		if v != 0 {
			return i*64 + bits.TrailingZeros64(v), true
		}
	}
	return 0, false
}

// xorWords folds src into dst (equal lengths).
func xorWords(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// xorBytes folds src into dst (equal lengths), eight bytes at a time.
func xorBytes(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
