package fec

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rng"
)

// mkData builds n deterministic non-trivial bytes.
func mkData(n int, seed uint64) []byte {
	r := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{DataLen: 1, SymbolSize: 1}, true},
		{Params{DataLen: 4096, SymbolSize: 256}, true},
		{Params{DataLen: 0, SymbolSize: 16}, false},
		{Params{DataLen: -1, SymbolSize: 16}, false},
		{Params{DataLen: 16, SymbolSize: 0}, false},
		{Params{DataLen: 16, SymbolSize: -4}, false},
		{Params{DataLen: (MaxK + 1) * 4, SymbolSize: 4}, false},
		{Params{DataLen: MaxK * 4, SymbolSize: 4}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
	if k := (Params{DataLen: 100, SymbolSize: 32}).K(); k != 4 {
		t.Errorf("K(100/32) = %d, want 4", k)
	}
	if k := (Params{DataLen: 96, SymbolSize: 32}).K(); k != 3 {
		t.Errorf("K(96/32) = %d, want 3", k)
	}
}

// TestSystematicPrefix: symbol i < K is source symbol i verbatim (the
// last one zero-padded), so a lossless receiver decodes with zero
// overhead.
func TestSystematicPrefix(t *testing.T) {
	data := mkData(1000, 7)
	enc, err := NewEncoder(data, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	k := enc.K()
	for i := 0; i < k; i++ {
		want := make([]byte, 64)
		copy(want, data[i*64:min(len(data), (i+1)*64)])
		if got := enc.Symbol(uint32(i)); !bytes.Equal(got, want) {
			t.Fatalf("systematic symbol %d differs from source slice", i)
		}
	}
	dec, err := NewDecoder(enc.Params())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		done, err := dec.Add(uint32(i), enc.Symbol(uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if done != (i == k-1) {
			t.Fatalf("after systematic symbol %d: done=%v", i, done)
		}
	}
	got, ok := dec.Data()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("systematic-only decode did not round-trip")
	}
}

// TestDeterminism: two encoders over the same (data, symbolSize, seed)
// emit byte-identical streams, and AppendSymbol matches Symbol — the
// property that lets relays forward symbols they never decoded.
func TestDeterminism(t *testing.T) {
	data := mkData(4096, 11)
	a, _ := NewEncoder(data, 128, 99)
	b, _ := NewEncoder(data, 128, 99)
	var buf []byte
	for idx := uint32(0); idx < 200; idx++ {
		sa := a.Symbol(idx)
		buf = b.AppendSymbol(buf[:0], idx)
		if !bytes.Equal(sa, buf) {
			t.Fatalf("symbol %d differs between encoders", idx)
		}
	}
	c, _ := NewEncoder(data, 128, 100)
	same := 0
	for idx := uint32(0); idx < 200; idx++ {
		if bytes.Equal(a.Symbol(idx), c.Symbol(idx)) {
			same++
		}
	}
	// The systematic prefix (K=32 here) is seed-independent by design;
	// coded symbols beyond it must diverge under a different seed.
	if same > a.K()+10 {
		t.Fatalf("different seeds produced %d identical symbols of 200", same)
	}
}

// TestDecodeRandomSubsets is the headline property: decode succeeds
// from a random subset of ⌈K(1+ε)⌉ symbols drawn from a wide index
// window, across many seeded trials. Rateless codes are probabilistic
// — a subset can land short of rank K — so the assertion is a success
// rate well above the empirically measured floor, made deterministic
// by fixed trial seeds.
func TestDecodeRandomSubsets(t *testing.T) {
	const (
		trials  = 100
		epsNum  = 2 // ε = 1.0
		minPass = 95
	)
	for _, k := range []int{16, 32, 64} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			symbolSize := 64
			data := mkData(k*symbolSize-5, uint64(k)) // ragged tail
			enc, err := NewEncoder(data, symbolSize, 0xFEC0+uint64(k))
			if err != nil {
				t.Fatal(err)
			}
			if enc.K() != k {
				t.Fatalf("K=%d, want %d", enc.K(), k)
			}
			window := 8 * k
			need := k * epsNum
			pass := 0
			for trial := 0; trial < trials; trial++ {
				r := rng.New(uint64(k)*1000 + uint64(trial))
				dec, err := NewDecoder(enc.Params())
				if err != nil {
					t.Fatal(err)
				}
				for _, idx := range r.Perm(window)[:need] {
					if _, err := dec.Add(uint32(idx), enc.Symbol(uint32(idx))); err != nil {
						t.Fatal(err)
					}
				}
				if dec.Done() {
					got, ok := dec.Data()
					if !ok || !bytes.Equal(got, data) {
						t.Fatalf("trial %d: decode completed with wrong data", trial)
					}
					pass++
				}
			}
			if pass < minPass {
				t.Fatalf("decoded %d/%d random %d-symbol subsets, want >= %d",
					pass, trials, need, minPass)
			}
		})
	}
}

// TestBoundedOverhead: streaming symbols in index order, every seed
// finishes within a small constant factor of K — the decoder never
// needs an unbounded tail.
func TestBoundedOverhead(t *testing.T) {
	for _, k := range []int{1, 2, 4, 16, 64, 256} {
		symbolSize := 32
		data := mkData(k*symbolSize, uint64(k)+500)
		for seed := uint64(0); seed < 8; seed++ {
			enc, err := NewEncoder(data, symbolSize, seed)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewDecoder(enc.Params())
			if err != nil {
				t.Fatal(err)
			}
			// In-order streaming hits the systematic prefix first, so a
			// lossless pass is exactly K; allow 3K for adversarial seeds.
			limit := 3 * k
			done := false
			for idx := 0; idx < limit && !done; idx++ {
				done, err = dec.Add(uint32(idx), enc.Symbol(uint32(idx)))
				if err != nil {
					t.Fatal(err)
				}
			}
			if !done {
				t.Fatalf("k=%d seed=%d: not decoded after %d in-order symbols", k, seed, limit)
			}
			if got, ok := dec.Data(); !ok || !bytes.Equal(got, data) {
				t.Fatalf("k=%d seed=%d: round-trip mismatch", k, seed)
			}
		}
	}
}

// TestFailsClosedBelowK: with fewer than K independent equations the
// decoder reports not-done and returns no data — it never extrapolates.
func TestFailsClosedBelowK(t *testing.T) {
	data := mkData(2048, 3)
	enc, _ := NewEncoder(data, 64, 77)
	k := enc.K()
	dec, _ := NewDecoder(enc.Params())
	for i := 0; i < k-1; i++ {
		done, err := dec.Add(uint32(i), enc.Symbol(uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("done after %d < K=%d systematic symbols", i+1, k)
		}
	}
	if dec.Done() {
		t.Fatal("Done() true below rank K")
	}
	if got, ok := dec.Data(); ok || got != nil {
		t.Fatal("Data() returned data below rank K")
	}
	if dec.Rank() != k-1 || dec.Received() != k-1 {
		t.Fatalf("rank=%d received=%d, want %d", dec.Rank(), dec.Received(), k-1)
	}
}

// TestDuplicatesAndBadPayload: duplicate indices are no-ops, dependent
// rows don't advance rank, and a wrong-length payload is rejected
// without perturbing the system.
func TestDuplicatesAndBadPayload(t *testing.T) {
	data := mkData(512, 9)
	enc, _ := NewEncoder(data, 64, 5)
	dec, _ := NewDecoder(enc.Params())

	if _, err := dec.Add(0, enc.Symbol(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Add(0, enc.Symbol(0)); err != nil {
		t.Fatal(err)
	}
	if dec.Rank() != 1 || dec.Received() != 1 {
		t.Fatalf("after duplicate add: rank=%d received=%d", dec.Rank(), dec.Received())
	}

	if _, err := dec.Add(1, enc.Symbol(1)[:32]); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := dec.Add(1, append(enc.Symbol(1), 0)); err == nil {
		t.Fatal("long payload accepted")
	}
	if dec.Rank() != 1 {
		t.Fatalf("bad payloads changed rank to %d", dec.Rank())
	}

	// Finish the block, then confirm post-done adds are no-ops.
	for i := uint32(1); !dec.Done(); i++ {
		if _, err := dec.Add(i, enc.Symbol(i)); err != nil {
			t.Fatal(err)
		}
	}
	if done, err := dec.Add(1000, enc.Symbol(1000)); err != nil || !done {
		t.Fatalf("post-done add: done=%v err=%v", done, err)
	}
	if got, ok := dec.Data(); !ok || !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
}

// TestResetAfterPoison: a corrupted payload of the right length decodes
// into garbage; Reset restores the empty decoder so a fresh collection
// round-trips — the recovery path when a completed block fails content
// verification upstream.
func TestResetAfterPoison(t *testing.T) {
	data := mkData(1024, 21)
	enc, _ := NewEncoder(data, 64, 13)
	k := enc.K()
	dec, _ := NewDecoder(enc.Params())

	bad := enc.Symbol(0)
	bad[0] ^= 0xFF
	if _, err := dec.Add(0, bad); err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); !dec.Done(); i++ {
		if _, err := dec.Add(i, enc.Symbol(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := dec.Data(); !ok || bytes.Equal(got, data) {
		t.Fatal("poisoned decode should complete with wrong data")
	}

	dec.Reset()
	if dec.Done() || dec.Rank() != 0 || dec.Received() != 0 {
		t.Fatal("Reset left state behind")
	}
	for i := 0; i < k; i++ {
		if _, err := dec.Add(uint32(i), enc.Symbol(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := dec.Data(); !ok || !bytes.Equal(got, data) {
		t.Fatal("post-Reset decode mismatch")
	}
}

// TestDegreeDistribution sanity-checks the robust-soliton sampler over
// the coded (non-systematic) index range: every degree lands in [1, K],
// low-degree ripple mass exists, the spike region is populated, and the
// mean stays near the theoretical O(ln K) + dense-mix contribution.
func TestDegreeDistribution(t *testing.T) {
	const k, samples = 64, 20000
	sol := newSoliton(k)
	scratch := make([]int, k)
	counts := make(map[int]int)
	total := 0
	for idx := uint32(k); idx < k+samples; idx++ {
		ns := neighbors(sol, 0xD15C0, idx, scratch)
		d := len(ns)
		if d < 1 || d > k {
			t.Fatalf("degree %d out of [1,%d]", d, k)
		}
		seen := make(map[int]bool, d)
		for _, n := range ns {
			if n < 0 || n >= k {
				t.Fatalf("neighbor %d out of range", n)
			}
			if seen[n] {
				t.Fatalf("symbol %d repeats neighbor %d", idx, n)
			}
			seen[n] = true
		}
		counts[d]++
		total += d
	}
	if counts[1] < samples/100 {
		t.Fatalf("only %d/%d degree-1 symbols: ripple would starve", counts[1], samples)
	}
	if counts[2] < samples/10 {
		t.Fatalf("only %d/%d degree-2 symbols", counts[2], samples)
	}
	mean := float64(total) / samples
	// Ideal-soliton mean ≈ ln(k) ≈ 4.2, the robust spike and the
	// denseQ·k/2 dense mix push it up; far outside this band means the
	// sampler is broken, not just unlucky.
	if mean < 2 || mean > 16 {
		t.Fatalf("mean degree %.2f outside sane band [2,16]", mean)
	}
}

// TestConcurrentRoundTrips exercises independent encoder/decoder pairs
// in parallel so `go test -race` sees the shared soliton math and the
// per-instance state under concurrency.
func TestConcurrentRoundTrips(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := mkData(3000+g*17, uint64(g))
			enc, err := NewEncoder(data, 100, uint64(g)*31)
			if err != nil {
				t.Error(err)
				return
			}
			dec, err := NewDecoder(enc.Params())
			if err != nil {
				t.Error(err)
				return
			}
			r := rng.New(uint64(g) + 1)
			done := false
			for !done {
				idx := uint32(r.Intn(16 * enc.K()))
				done, err = dec.Add(idx, enc.Symbol(idx))
				if err != nil {
					t.Error(err)
					return
				}
			}
			if got, ok := dec.Data(); !ok || !bytes.Equal(got, data) {
				t.Errorf("goroutine %d: round-trip mismatch", g)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkFECEncode measures steady-state coded-symbol emission for a
// protocol-shaped block (64 KB piece, 1 KB symbols ⇒ K=64).
func BenchmarkFECEncode(b *testing.B) {
	data := mkData(64<<10, 1)
	enc, err := NewEncoder(data, 1024, 7)
	if err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Skip the systematic prefix: coded emission is the steady state.
		buf = enc.AppendSymbol(buf[:0], uint32(enc.K()+i%(8*enc.K())))
	}
}

// BenchmarkFECDecode measures full-block recovery from a lossy stream:
// every third symbol dropped, so decode spans systematic and coded
// symbols and ends in back-substitution.
func BenchmarkFECDecode(b *testing.B) {
	data := mkData(64<<10, 2)
	enc, err := NewEncoder(data, 1024, 9)
	if err != nil {
		b.Fatal(err)
	}
	var syms [][]byte
	for idx := uint32(0); idx < uint32(3*enc.K()); idx++ {
		if idx%3 == 2 {
			continue
		}
		syms = append(syms, enc.Symbol(idx))
		if len(syms) >= 2*enc.K() {
			break
		}
	}
	idxs := make([]uint32, 0, len(syms))
	for idx := uint32(0); idx < uint32(3*enc.K()) && len(idxs) < len(syms); idx++ {
		if idx%3 != 2 {
			idxs = append(idxs, idx)
		}
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(enc.Params())
		if err != nil {
			b.Fatal(err)
		}
		done := false
		for j := 0; j < len(syms) && !done; j++ {
			done, err = dec.Add(idxs[j], syms[j])
			if err != nil {
				b.Fatal(err)
			}
		}
		if !done {
			b.Fatal("stream did not decode")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
