package peer

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/wire"
)

// benchManager builds a manager with n live stub peers, bypassing the
// network so the benchmark isolates the fan-out path itself.
func benchManager(b *testing.B, n int) *Manager {
	b.Helper()
	m := NewManager(fastCfg(0, nil))
	for i := 1; i <= n; i++ {
		if _, err := m.register(trace.NodeID(i), &stubConn{}, false); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkBeaconFanout compares the hello fan-out strategies: encoding
// a fresh beacon for every peer (the old behavior) against encoding
// once and fanning the frame out. The allocs/op gap is the point — the
// shared frame holds one encode per tick no matter how many peers the
// table holds.
func BenchmarkBeaconFanout(b *testing.B) {
	ctx := context.Background()
	for _, peers := range []int{16, 256} {
		b.Run(fmt.Sprintf("encode-per-peer/%d", peers), func(b *testing.B) {
			m := benchManager(b, peers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, id := range m.Peers() {
					if err := m.Send(ctx, id, m.helloMsg()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("shared-frame/%d", peers), func(b *testing.B) {
			m := benchManager(b, peers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.broadcastExcept(ctx, nil)
			}
		})
	}
}

// BenchmarkHelloEncode pins the cost of a single beacon serialization —
// the unit the fan-out strategies multiply.
func BenchmarkHelloEncode(b *testing.B) {
	m := benchManager(b, 1)
	hello := m.helloMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = wire.Encode(hello)
	}
}
