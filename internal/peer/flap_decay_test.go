package peer

import (
	"testing"
	"time"
)

// flapPeer injects n young-session deaths for peer id, each counting as
// one flap.
func flapPeer(t *testing.T, m *Manager, id int, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s, err := m.register(2, &stubConn{}, false)
		if err != nil {
			t.Fatal(err)
		}
		m.unregister(s)
	}
}

// TestFlapDecaySteps walks the decay clock step by step: each quiet
// stretch of 4 liveness windows drains exactly one flap, shorter quiet
// stretches drain nothing, and a fresh flap resets the quiet clock.
func TestFlapDecaySteps(t *testing.T) {
	m := NewManager(fastCfg(1, nil))
	flapPeer(t, m, 2, 3)

	flapCount := func() int {
		sh := m.shardFor(2)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		fi := sh.flaps[2]
		if fi == nil {
			return 0
		}
		return fi.count
	}
	if got := flapCount(); got != 3 {
		t.Fatalf("flap count = %d after 3 young deaths, want 3", got)
	}

	quiet := 4 * m.cfg.LivenessWindow
	now := time.Now()

	// Inside the quiet window: nothing decays, however often expire runs.
	for i := 0; i < 5; i++ {
		m.expire(now.Add(quiet / 2))
	}
	if got := flapCount(); got != 3 {
		t.Fatalf("flap count = %d after sub-window quiet, want 3", got)
	}

	// Each full quiet window drains exactly one count, and the decay
	// itself resets the clock — an immediately repeated expire at the
	// same instant must not drain another.
	now = now.Add(quiet + time.Millisecond)
	m.expire(now)
	m.expire(now)
	if got := flapCount(); got != 2 {
		t.Fatalf("flap count = %d after one quiet window, want 2", got)
	}

	// A new flap refreshes the quiet clock: an expire half a window
	// after it drains nothing. The injected flap stamps wall time, so
	// pin it to the synthetic clock first.
	flapPeer(t, m, 2, 1)
	sh := m.shardFor(2)
	sh.mu.Lock()
	sh.flaps[2].last = now
	sh.mu.Unlock()
	m.expire(now.Add(quiet / 2))
	if got := flapCount(); got != 3 {
		t.Fatalf("flap count = %d after flap mid-decay, want 3", got)
	}

	// Run the clock out: the entry fully drains and is deleted.
	for i := 1; i <= 3; i++ {
		now = now.Add(quiet + time.Millisecond)
		m.expire(now)
	}
	if got := flapCount(); got != 0 {
		t.Fatalf("flap count = %d after full decay, want 0 (and entry deleted)", got)
	}
	sh.mu.Lock()
	_, survived := sh.flaps[2]
	sh.mu.Unlock()
	if survived {
		t.Fatal("flap entry survived full decay")
	}
}
