package peer

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// groupRecorder is a recorder that also implements GroupHandler.
type groupRecorder struct {
	*recorder
	gmu   sync.Mutex
	group []wire.MsgType
}

func (r *groupRecorder) HandleGroup(from trace.NodeID, msg wire.Msg) {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	r.group = append(r.group, msg.Type())
}

func (r *groupRecorder) groupTypes() []wire.MsgType {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	return append([]wire.MsgType(nil), r.group...)
}

// TestGroupDispatch sends each group message type across a live pair:
// a GroupHandler receives them all and both sides count the traffic.
func TestGroupDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	rb := &groupRecorder{recorder: newRecorder()}
	a, b := startPair(t, ctx, net, fastCfg(1, nil), fastCfg(2, rb))

	msgs := []wire.Msg{
		&wire.GroupHello{From: 1, Members: []trace.NodeID{1, 2}, Round: 1},
		&wire.Schedule{From: 1, Members: []trace.NodeID{1, 2}, Round: 1},
		&wire.Grant{From: 1, To: 2, Round: 1, Piece: wire.NoPiece},
		&wire.PieceBcast{From: 1, Round: 1, URI: "dtn://files/1", Index: 0, Total: 1, Data: []byte("x")},
	}
	for _, m := range msgs {
		if err := a.Send(ctx, 2, m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rb.groupTypes()) == len(msgs) }, "group dispatch")
	for i, typ := range rb.groupTypes() {
		if typ != msgs[i].Type() {
			t.Fatalf("dispatched %v at %d, want %v", typ, i, msgs[i].Type())
		}
	}
	if got := a.Stats().GroupSent; got != uint64(len(msgs)) {
		t.Fatalf("GroupSent = %d, want %d", got, len(msgs))
	}
	if got := b.Stats().GroupRecv; got != uint64(len(msgs)) {
		t.Fatalf("GroupRecv = %d, want %d", got, len(msgs))
	}
}

// TestGroupMessagesWithoutGroupHandler: a plain Handler must survive
// group traffic (dropped, still counted) — group-aware and
// group-oblivious daemons share a network.
func TestGroupMessagesWithoutGroupHandler(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	rb := newRecorder()
	a, b := startPair(t, ctx, net, fastCfg(1, nil), fastCfg(2, rb))

	if err := a.Send(ctx, 2, &wire.GroupHello{From: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.Stats().GroupRecv == 1 }, "group message counted")
}

// TestConfigurableHelloInterval pins the satellite guarantee: the
// beacon rhythm follows Config.HelloInterval rather than the protocol's
// hardcoded 1 s, so fast-clock broadcast tests never sleep real
// seconds. Two managers beaconing every 5 ms must exchange far more
// hellos in half a second than a 1 s beacon ever could.
func TestConfigurableHelloInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	cfgA, cfgB := fastCfg(1, nil), fastCfg(2, nil)
	cfgA.HelloInterval = 5 * time.Millisecond
	cfgB.HelloInterval = 5 * time.Millisecond
	a, b := startPair(t, ctx, net, cfgA, cfgB)
	_ = b

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().HellosRecv >= 10 {
			return // ≥10 beacons: impossible before 10 s at the 1 s default
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d hellos received in 10s at a 5ms interval", a.Stats().HellosRecv)
}
