// Package peer manages live protocol sessions over a transport.
//
// A Manager owns every connection of one daemon: it performs the hello
// handshake that identifies the node on the other end, keeps a peer
// table keyed by trace.NodeID, beacons hellos at the protocol interval
// (§III-B: at least once per second), and expires peers that fall
// silent past the 5-second hello window. Inbound connections arrive via
// Serve, outbound links are maintained by Connect, which redials with
// exponential backoff when a link drops.
//
// Ownership rules: the Manager owns its Conns — callers never touch a
// Conn directly. Each session has exactly one receive goroutine; sends
// go through the Conn's internal queue, so handler callbacks may call
// Send/SendHello from any goroutine, including from inside a callback.
// Callbacks run on session goroutines, one message at a time per peer,
// and must not block for long (they stall only that peer's inbox).
package peer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hello"
	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Protocol timing defaults, the wall-clock versions of the simulator's
// hello constants.
const (
	// DefaultHelloInterval mirrors hello.Interval: beacon once per
	// second.
	DefaultHelloInterval = time.Duration(hello.Interval) * time.Millisecond
	// DefaultLivenessWindow mirrors hello.Window: a peer silent for 5
	// seconds is gone.
	DefaultLivenessWindow = time.Duration(hello.Window) * time.Millisecond
	// DefaultHandshakeTimeout bounds the wait for the first hello on a
	// new connection.
	DefaultHandshakeTimeout = 5 * time.Second
)

// Handler receives decoded messages from live peers. From identifies
// the sending peer (already handshaken). Calls are serialized per peer
// but concurrent across peers.
type Handler interface {
	HandleHello(from trace.NodeID, h *wire.Hello)
	HandleMetadata(from trace.NodeID, m *wire.Metadata)
	HandlePiece(from trace.NodeID, p *wire.Piece)
}

// GroupHandler is the optional extension a Handler implements to
// receive the broadcast-group messages of §V (*wire.GroupHello,
// *wire.Schedule, *wire.Grant, *wire.PieceBcast) plus the fountain
// frames (*wire.Symbol, *wire.SymbolAck) when they arrive over a
// unicast session instead of the datagram lane. A Handler without it
// drops them, so group-aware and group-oblivious daemons interoperate.
type GroupHandler interface {
	HandleGroup(from trace.NodeID, msg wire.Msg)
}

// Config parameterizes a Manager.
type Config struct {
	// Self is this node's identity, announced in every hello.
	Self trace.NodeID
	// Hello supplies the node's current beacon content: active query
	// strings, the URIs being downloaded, and the per-file have-bitmaps
	// advertising which pieces are already held. Called on every beacon;
	// must be safe for concurrent use.
	Hello func() (queries []string, downloading []metadata.URI, have []wire.GroupWant)
	// Handler receives peer messages; nil handlers drop them.
	Handler Handler
	// HelloInterval, LivenessWindow, HandshakeTimeout default to the
	// protocol constants above.
	HelloInterval    time.Duration
	LivenessWindow   time.Duration
	HandshakeTimeout time.Duration
	// FlapThreshold demotes flapping links: a session that dies younger
	// than this counts as a flap, and Connect backs off harder for each
	// consecutive flap instead of hammering an unstable address
	// (default: the liveness window).
	FlapThreshold time.Duration
	// MaxPeers bounds the peer table: a handshake that would add a new
	// peer beyond the cap is rejected and its connection closed, so one
	// node in a large swarm cannot accumulate sessions without limit.
	// Additional sessions to peers already in the table are always
	// accepted (redials must win against their dying predecessors).
	// Zero means unbounded.
	MaxPeers int
	// Backoff shapes Connect's redial schedule.
	Backoff transport.Backoff
	// Logf, when set, receives one line per connection event.
	Logf func(format string, args ...any)
}

// Info describes one live peer for stats endpoints.
type Info struct {
	ID        trace.NodeID  `json:"id"`
	Addr      string        `json:"addr"`
	Inbound   bool          `json:"inbound"`
	LastHello time.Duration `json:"last_hello_ago"`
	Sessions  int           `json:"sessions"`
	// Flaps counts this peer's recent short-lived sessions; it decays
	// to zero once the link holds steady.
	Flaps int `json:"flaps"`
}

// Stats counts manager activity; all fields are cumulative.
type Stats struct {
	HellosSent    uint64 `json:"hellos_sent"`
	HellosRecv    uint64 `json:"hellos_recv"`
	MetadataSent  uint64 `json:"metadata_sent"`
	MetadataRecv  uint64 `json:"metadata_recv"`
	PiecesSent    uint64 `json:"pieces_sent"`
	PiecesRecv    uint64 `json:"pieces_recv"`
	GroupSent     uint64 `json:"group_sent"`
	GroupRecv     uint64 `json:"group_recv"`
	Accepts       uint64 `json:"accepts"`
	Dials         uint64 `json:"dials"`
	Reconnects    uint64 `json:"reconnects"`
	Drops         uint64 `json:"drops"`
	Expiries      uint64 `json:"expiries"`
	HandshakeFail uint64 `json:"handshake_failures"`
	Flaps         uint64 `json:"flaps"`
	// PeersRejected counts handshakes refused because the peer table was
	// at MaxPeers capacity.
	PeersRejected uint64 `json:"peers_rejected"`
}

// ErrUnknownPeer reports a Send to a peer with no live session.
var ErrUnknownPeer = errors.New("peer: no live session")

// ErrTableFull reports a handshake rejected because the peer table is at
// Config.MaxPeers capacity.
var ErrTableFull = errors.New("peer: table full")

// session is one handshaken connection.
type session struct {
	sid     uint64
	peer    trace.NodeID
	conn    transport.Conn
	inbound bool
	started time.Time
}

// flapInfo tracks one peer's recent short-lived sessions.
type flapInfo struct {
	count int
	last  time.Time
}

// Manager is the daemon's connection owner. Construct with NewManager.
type Manager struct {
	cfg Config

	// paused suspends the radio: no beacons go out and inbound messages
	// are dropped before dispatch, so a paused node looks exactly like a
	// node that walked out of range. Sessions are left to expire.
	paused atomic.Bool

	mu        sync.Mutex
	nextSID   uint64
	byPeer    map[trace.NodeID]map[uint64]*session
	lastHello map[trace.NodeID]time.Time
	flaps     map[trace.NodeID]*flapInfo
	stats     Stats
}

// NewManager returns a manager with defaults applied.
func NewManager(cfg Config) *Manager {
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = DefaultHelloInterval
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = DefaultLivenessWindow
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.FlapThreshold <= 0 {
		cfg.FlapThreshold = cfg.LivenessWindow
	}
	if cfg.Hello == nil {
		cfg.Hello = func() ([]string, []metadata.URI, []wire.GroupWant) { return nil, nil, nil }
	}
	return &Manager{
		cfg:       cfg,
		byPeer:    make(map[trace.NodeID]map[uint64]*session),
		lastHello: make(map[trace.NodeID]time.Time),
		flaps:     make(map[trace.NodeID]*flapInfo),
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// helloMsg builds the current beacon.
func (m *Manager) helloMsg() *wire.Hello {
	queries, downloading, have := m.cfg.Hello()
	return &wire.Hello{
		From:        m.cfg.Self,
		Heard:       m.Peers(),
		Queries:     queries,
		Downloading: downloading,
		Have:        have,
	}
}

// Run beacons hellos and expires silent peers until ctx ends. It always
// returns ctx's error.
func (m *Manager) Run(ctx context.Context) error {
	t := time.NewTicker(m.cfg.HelloInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.expire(time.Now())
			if !m.paused.Load() {
				m.broadcastHello(ctx)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetPaused suspends (true) or resumes (false) the radio: while paused
// the manager neither beacons nor dispatches inbound messages, so to
// every peer this node has simply fallen silent and expires from their
// tables — the scenario hook for scripted attendance churn. Sessions
// are not torn down here; liveness expiry and redial handle the rest.
func (m *Manager) SetPaused(p bool) { m.paused.Store(p) }

// Paused reports whether the radio is suspended.
func (m *Manager) Paused() bool { return m.paused.Load() }

// Serve accepts inbound connections until ctx ends or the listener
// fails.
func (m *Manager) Serve(ctx context.Context, lis transport.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		m.addStat(func(s *Stats) { s.Accepts++ })
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.runSession(ctx, conn, true)
		}()
	}
}

// Connect maintains an outbound link to addr: dial with backoff,
// handshake, pump messages, and redial when the link drops. A link
// that flaps — sessions dying younger than FlapThreshold — is demoted:
// each consecutive flap adds one more step of the backoff schedule
// before the redial, so an unstable or hostile address cannot consume
// the daemon in a reconnect storm. It returns only when ctx ends.
func (m *Manager) Connect(ctx context.Context, tr transport.Transport, addr string) error {
	first := true
	consecFlaps := 0
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		conn, err := transport.DialBackoff(ctx, tr, addr, m.cfg.Backoff)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		m.addStat(func(s *Stats) { s.Dials++ })
		if !first {
			m.addStat(func(s *Stats) { s.Reconnects++ })
		}
		first = false
		started := time.Now()
		m.runSession(ctx, conn, false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(started) < m.cfg.FlapThreshold {
			consecFlaps++
			delay := m.cfg.Backoff.Delay(consecFlaps - 1)
			m.logf("peer: link to %s flapped (%d in a row); demoted, redialing in %v",
				addr, consecFlaps, delay)
			timer.Reset(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		} else {
			consecFlaps = 0
			m.logf("peer: link to %s dropped; redialing", addr)
		}
	}
}

// runSession handshakes conn and pumps its messages until it dies.
func (m *Manager) runSession(ctx context.Context, conn transport.Conn, inbound bool) {
	peerID, firstHello, err := m.handshake(ctx, conn)
	if err != nil {
		m.addStat(func(s *Stats) { s.HandshakeFail++ })
		m.logf("peer: handshake with %s failed: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	s, err := m.register(peerID, conn, inbound)
	if err != nil {
		m.addStat(func(st *Stats) { st.PeersRejected++ })
		m.logf("peer: rejecting node %d (%s): %v", peerID, conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	m.logf("peer: session %d with node %d up (%s, inbound=%v)",
		s.sid, peerID, conn.RemoteAddr(), inbound)
	m.deliver(peerID, firstHello)
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			m.unregister(s)
			m.addStat(func(st *Stats) { st.Drops++ })
			m.logf("peer: session %d with node %d down: %v", s.sid, peerID, err)
			return
		}
		m.deliver(peerID, msg)
	}
}

// handshake announces ourselves and waits for the peer's first hello.
func (m *Manager) handshake(ctx context.Context, conn transport.Conn) (trace.NodeID, *wire.Hello, error) {
	hctx, cancel := context.WithTimeout(ctx, m.cfg.HandshakeTimeout)
	defer cancel()
	if err := conn.Send(hctx, m.helloMsg()); err != nil {
		return 0, nil, fmt.Errorf("send hello: %w", err)
	}
	m.addStat(func(s *Stats) { s.HellosSent++ })
	for {
		msg, err := conn.Recv(hctx)
		if err != nil {
			return 0, nil, fmt.Errorf("await hello: %w", err)
		}
		h, ok := msg.(*wire.Hello)
		if !ok {
			// A peer racing data before its hello is out of spec;
			// keep waiting for the identity, drop the data.
			continue
		}
		if h.From == m.cfg.Self {
			return 0, nil, fmt.Errorf("peer: connected to self (node %d)", h.From)
		}
		return h.From, h, nil
	}
}

// register adds a handshaken session to the peer table. A session that
// would grow the table past MaxPeers is refused: the capacity bound is
// on distinct peers, so extra sessions to known peers always land.
func (m *Manager) register(peerID trace.NodeID, conn transport.Conn, inbound bool) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.byPeer[peerID]
	if set == nil {
		if m.cfg.MaxPeers > 0 && len(m.byPeer) >= m.cfg.MaxPeers {
			return nil, fmt.Errorf("%w (%d peers)", ErrTableFull, len(m.byPeer))
		}
		set = make(map[uint64]*session)
		m.byPeer[peerID] = set
	}
	m.nextSID++
	s := &session{sid: m.nextSID, peer: peerID, conn: conn, inbound: inbound, started: time.Now()}
	set[s.sid] = s
	m.lastHello[peerID] = time.Now()
	return s, nil
}

// unregister removes a dead session and closes its conn, counting a
// flap when the session died young.
func (m *Manager) unregister(s *session) {
	now := time.Now()
	m.mu.Lock()
	if set := m.byPeer[s.peer]; set != nil {
		delete(set, s.sid)
		if len(set) == 0 {
			delete(m.byPeer, s.peer)
			delete(m.lastHello, s.peer)
		}
	}
	if now.Sub(s.started) < m.cfg.FlapThreshold {
		fi := m.flaps[s.peer]
		if fi == nil {
			fi = &flapInfo{}
			m.flaps[s.peer] = fi
		}
		fi.count++
		fi.last = now
		m.stats.Flaps++
	}
	m.mu.Unlock()
	s.conn.Close()
}

// deliver updates liveness and dispatches one message.
func (m *Manager) deliver(from trace.NodeID, msg wire.Msg) {
	if m.paused.Load() {
		return // radio off: the message was never heard
	}
	switch v := msg.(type) {
	case *wire.Hello:
		m.mu.Lock()
		m.lastHello[from] = time.Now()
		m.stats.HellosRecv++
		m.mu.Unlock()
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandleHello(from, v)
		}
	case *wire.Metadata:
		m.addStat(func(s *Stats) { s.MetadataRecv++ })
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandleMetadata(from, v)
		}
	case *wire.Piece:
		m.addStat(func(s *Stats) { s.PiecesRecv++ })
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandlePiece(from, v)
		}
	case *wire.GroupHello, *wire.Schedule, *wire.Grant, *wire.PieceBcast,
		*wire.Symbol, *wire.SymbolAck:
		m.addStat(func(s *Stats) { s.GroupRecv++ })
		if gh, ok := m.cfg.Handler.(GroupHandler); ok {
			gh.HandleGroup(from, msg)
		}
	}
}

// pick returns the newest session for peer id, the one Send uses.
func (m *Manager) pick(id trace.NodeID) *session {
	var best *session
	for _, s := range m.byPeer[id] {
		if best == nil || s.sid > best.sid {
			best = s
		}
	}
	return best
}

// Send delivers one message to a live peer.
func (m *Manager) Send(ctx context.Context, id trace.NodeID, msg wire.Msg) error {
	m.mu.Lock()
	s := m.pick(id)
	m.mu.Unlock()
	if s == nil {
		return fmt.Errorf("node %d: %w", id, ErrUnknownPeer)
	}
	if err := s.conn.Send(ctx, msg); err != nil {
		return err
	}
	t := msg.Type()
	switch t {
	case wire.TypeHello:
		m.addStat(func(st *Stats) { st.HellosSent++ })
	case wire.TypeMetadata:
		m.addStat(func(st *Stats) { st.MetadataSent++ })
	case wire.TypePiece:
		m.addStat(func(st *Stats) { st.PiecesSent++ })
	default:
		m.addStat(func(st *Stats) { st.GroupSent++ })
	}
	return nil
}

// Broadcast beacons an out-of-band hello to every live peer right now,
// without waiting for the next tick — the daemon's re-drive nudge when
// a download stalls.
func (m *Manager) Broadcast(ctx context.Context) { m.broadcastHello(ctx) }

// broadcastHello beacons to every live peer (once per peer, even with
// duplicate sessions). The beacon is built and encoded exactly once and
// fanned out as a pre-encoded frame: with hundreds of live peers the
// per-tick cost is one serialization, not one per peer, which keeps the
// thousand-node hello path linear in links instead of quadratic in
// bytes encoded.
func (m *Manager) broadcastHello(ctx context.Context) {
	peers := m.Peers()
	if len(peers) == 0 {
		return
	}
	raw := wire.NewRaw(m.helloMsg())
	for _, id := range peers {
		if err := m.Send(ctx, id, raw); err != nil {
			m.logf("peer: hello to node %d failed: %v", id, err)
		}
	}
}

// expire drops peers whose last hello is older than the liveness
// window, closing their sessions, and decays flap scores of links that
// have since held steady.
func (m *Manager) expire(now time.Time) {
	m.mu.Lock()
	var dead []*session
	for id, at := range m.lastHello {
		if now.Sub(at) <= m.cfg.LivenessWindow {
			continue
		}
		for _, s := range m.byPeer[id] {
			dead = append(dead, s)
		}
		delete(m.byPeer, id)
		delete(m.lastHello, id)
		m.stats.Expiries++
	}
	for id, fi := range m.flaps {
		if now.Sub(fi.last) > 4*m.cfg.LivenessWindow {
			fi.count--
			fi.last = now
			if fi.count <= 0 {
				delete(m.flaps, id)
			}
		}
	}
	m.mu.Unlock()
	for _, s := range dead {
		s.conn.Close()
		m.logf("peer: node %d expired (no hello in %v)", s.peer, m.cfg.LivenessWindow)
	}
}

// Peers returns the live peer IDs, sorted.
func (m *Manager) Peers() []trace.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]trace.NodeID, 0, len(m.byPeer))
	for id := range m.byPeer {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table snapshots the peer table for stats endpoints.
func (m *Manager) Table() []Info {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.byPeer))
	for id, set := range m.byPeer {
		s := m.pick(id)
		if s == nil {
			continue
		}
		info := Info{
			ID:        id,
			Addr:      s.conn.RemoteAddr(),
			Inbound:   s.inbound,
			LastHello: now.Sub(m.lastHello[id]),
			Sessions:  len(set),
		}
		if fi := m.flaps[id]; fi != nil {
			info.Flaps = fi.count
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) addStat(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// Close closes every session; used on daemon shutdown after contexts
// are canceled.
func (m *Manager) Close() {
	m.mu.Lock()
	var conns []transport.Conn
	for _, set := range m.byPeer {
		for _, s := range set {
			conns = append(conns, s.conn)
		}
	}
	m.byPeer = make(map[trace.NodeID]map[uint64]*session)
	m.lastHello = make(map[trace.NodeID]time.Time)
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
