// Package peer manages live protocol sessions over a transport.
//
// A Manager owns every connection of one daemon: it performs the hello
// handshake that identifies the node on the other end, keeps a peer
// table keyed by trace.NodeID, beacons hellos at the protocol interval
// (§III-B: at least once per second), and expires peers that fall
// silent past the 5-second hello window. Inbound connections arrive via
// Serve, outbound links are maintained by Connect, which redials with
// exponential backoff when a link drops.
//
// The peer table is hash-sharded: peers spread across Config.Shards
// independent buckets, each with its own lock, so hot paths touching
// different peers (a send racing a deliver racing an accept) never
// contend on one global mutex. Aggregate views (Peers, Table, Stats)
// stitch the shards together; the MaxPeers cap stays exact through one
// shared atomic count. Activity counters are plain atomics and take no
// lock at all.
//
// Ownership rules: the Manager owns its Conns — callers never touch a
// Conn directly. Each session has exactly one receive goroutine; sends
// go through the Conn's internal queue, so handler callbacks may call
// Send/SendHello from any goroutine, including from inside a callback.
// Callbacks run on session goroutines, one message at a time per peer,
// and must not block for long (they stall only that peer's inbox).
package peer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hello"
	"repro/internal/limit"
	"repro/internal/metadata"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Protocol timing defaults, the wall-clock versions of the simulator's
// hello constants.
const (
	// DefaultHelloInterval mirrors hello.Interval: beacon once per
	// second.
	DefaultHelloInterval = time.Duration(hello.Interval) * time.Millisecond
	// DefaultLivenessWindow mirrors hello.Window: a peer silent for 5
	// seconds is gone.
	DefaultLivenessWindow = time.Duration(hello.Window) * time.Millisecond
	// DefaultHandshakeTimeout bounds the wait for the first hello on a
	// new connection.
	DefaultHandshakeTimeout = 5 * time.Second
	// DefaultShards is the peer-table shard count when Config.Shards is
	// zero. Sixteen keeps per-shard occupancy low even at swarm scale
	// while costing only a few empty maps on small nodes.
	DefaultShards = 16
)

// Handler receives decoded messages from live peers. From identifies
// the sending peer (already handshaken). Calls are serialized per peer
// but concurrent across peers.
type Handler interface {
	HandleHello(from trace.NodeID, h *wire.Hello)
	HandleMetadata(from trace.NodeID, m *wire.Metadata)
	HandlePiece(from trace.NodeID, p *wire.Piece)
}

// GroupHandler is the optional extension a Handler implements to
// receive the broadcast-group messages of §V (*wire.GroupHello,
// *wire.Schedule, *wire.Grant, *wire.PieceBcast) plus the fountain
// frames (*wire.Symbol, *wire.SymbolAck) when they arrive over a
// unicast session instead of the datagram lane. A Handler without it
// drops them, so group-aware and group-oblivious daemons interoperate.
type GroupHandler interface {
	HandleGroup(from trace.NodeID, msg wire.Msg)
}

// DHTHandler is the optional extension a Handler implements to receive
// the DHT lookup messages (*wire.FindNode, *wire.FindValue,
// *wire.StoreValue, *wire.NodesReply). A Handler without it drops them,
// so DHT-aware and DHT-oblivious daemons interoperate.
type DHTHandler interface {
	HandleDHT(from trace.NodeID, msg wire.Msg)
}

// BusyHandler is the optional extension a Handler implements to receive
// *wire.Busy backpressure frames. A Handler without it drops them (the
// manager still counts them), so overload-aware and overload-oblivious
// daemons interoperate.
type BusyHandler interface {
	HandleBusy(from trace.NodeID, b *wire.Busy)
}

// Config parameterizes a Manager.
type Config struct {
	// Self is this node's identity, announced in every hello.
	Self trace.NodeID
	// Hello supplies the node's current beacon content: active query
	// strings, the URIs being downloaded, and the per-file have-bitmaps
	// advertising which pieces are already held. Called on every beacon;
	// must be safe for concurrent use.
	Hello func() (queries []string, downloading []metadata.URI, have []wire.GroupWant)
	// Handler receives peer messages; nil handlers drop them.
	Handler Handler
	// HelloInterval, LivenessWindow, HandshakeTimeout default to the
	// protocol constants above.
	HelloInterval    time.Duration
	LivenessWindow   time.Duration
	HandshakeTimeout time.Duration
	// FlapThreshold demotes flapping links: a session that dies younger
	// than this counts as a flap, and Connect backs off harder for each
	// consecutive flap instead of hammering an unstable address
	// (default: the liveness window).
	FlapThreshold time.Duration
	// MaxPeers bounds the peer table: a handshake that would add a new
	// peer beyond the cap is rejected and its connection closed, so one
	// node in a large swarm cannot accumulate sessions without limit.
	// Additional sessions to peers already in the table are always
	// accepted (redials must win against their dying predecessors).
	// Zero means unbounded.
	MaxPeers int
	// Shards is the peer-table shard count (default DefaultShards).
	// One shard reproduces the old single-lock behavior; benchmarks
	// compare the two.
	Shards int
	// Backoff shapes Connect's redial schedule.
	Backoff transport.Backoff
	// InboundRate, when positive, caps each peer's inbound message
	// dispatch at this many messages per second sustained (admission
	// control). Hellos still refresh liveness before the limiter — a
	// flooder is shed, not expired — and Busy frames bypass it entirely
	// so backpressure always gets through. Zero disables.
	InboundRate float64
	// InboundBurst is the bucket capacity behind InboundRate (default
	// 2×rate), absorbing legitimate short spikes.
	InboundBurst float64
	// OnShed, when set, is called once per message dropped by admission
	// control, from the shedding peer's session goroutine — the
	// daemon's hook for answering Busy. Must not block.
	OnShed func(from trace.NodeID, t wire.MsgType)
	// DialBreakers, when non-nil, gates outbound dials with one circuit
	// breaker per address: ConnectOnce fast-fails while an address's
	// breaker is open, and Connect's backoff loop skips dial attempts
	// for the cooldown instead of hammering a dead address.
	DialBreakers *limit.Set
	// Logf, when set, receives one line per connection event.
	Logf func(format string, args ...any)
}

// Info describes one live peer for stats endpoints.
type Info struct {
	ID        trace.NodeID  `json:"id"`
	Addr      string        `json:"addr"`
	Inbound   bool          `json:"inbound"`
	LastHello time.Duration `json:"last_hello_ago"`
	Sessions  int           `json:"sessions"`
	// Flaps counts this peer's recent short-lived sessions; it decays
	// to zero once the link holds steady.
	Flaps int `json:"flaps"`
}

// Stats counts manager activity; all fields are cumulative.
type Stats struct {
	HellosSent    uint64 `json:"hellos_sent"`
	HellosRecv    uint64 `json:"hellos_recv"`
	MetadataSent  uint64 `json:"metadata_sent"`
	MetadataRecv  uint64 `json:"metadata_recv"`
	PiecesSent    uint64 `json:"pieces_sent"`
	PiecesRecv    uint64 `json:"pieces_recv"`
	GroupSent     uint64 `json:"group_sent"`
	GroupRecv     uint64 `json:"group_recv"`
	DHTSent       uint64 `json:"dht_sent"`
	DHTRecv       uint64 `json:"dht_recv"`
	Accepts       uint64 `json:"accepts"`
	Dials         uint64 `json:"dials"`
	Reconnects    uint64 `json:"reconnects"`
	Drops         uint64 `json:"drops"`
	Expiries      uint64 `json:"expiries"`
	HandshakeFail uint64 `json:"handshake_failures"`
	Flaps         uint64 `json:"flaps"`
	// PeersRejected counts handshakes refused because the peer table was
	// at MaxPeers capacity.
	PeersRejected uint64 `json:"peers_rejected"`
	// InboundShed counts messages dropped by per-peer admission control.
	InboundShed uint64 `json:"inbound_shed"`
	// BusySent / BusyRecv count 429-style backpressure frames.
	BusySent uint64 `json:"busy_sent"`
	BusyRecv uint64 `json:"busy_recv"`
	// DialsSuppressed counts ConnectOnce attempts fast-failed by an
	// open dial circuit breaker (Connect-loop suppressions are counted
	// by the breakers themselves; see limit.SetStats).
	DialsSuppressed uint64 `json:"dials_suppressed"`
}

// counters is the lock-free backing for Stats.
type counters struct {
	hellosSent    atomic.Uint64
	hellosRecv    atomic.Uint64
	metadataSent  atomic.Uint64
	metadataRecv  atomic.Uint64
	piecesSent    atomic.Uint64
	piecesRecv    atomic.Uint64
	groupSent     atomic.Uint64
	groupRecv     atomic.Uint64
	dhtSent       atomic.Uint64
	dhtRecv       atomic.Uint64
	accepts       atomic.Uint64
	dials         atomic.Uint64
	reconnects    atomic.Uint64
	drops         atomic.Uint64
	expiries      atomic.Uint64
	handshakeFail atomic.Uint64
	flaps         atomic.Uint64
	peersRejected atomic.Uint64
	inboundShed   atomic.Uint64
	busySent      atomic.Uint64
	busyRecv      atomic.Uint64
	dialsSuppr    atomic.Uint64
}

// ErrUnknownPeer reports a Send to a peer with no live session.
var ErrUnknownPeer = errors.New("peer: no live session")

// ErrTableFull reports a handshake rejected because the peer table is at
// Config.MaxPeers capacity.
var ErrTableFull = errors.New("peer: table full")

// ErrDialSuppressed reports a dial fast-failed because the address's
// circuit breaker is open.
var ErrDialSuppressed = errors.New("peer: dial suppressed by open circuit breaker")

// session is one handshaken connection.
type session struct {
	sid     uint64
	peer    trace.NodeID
	conn    transport.Conn
	inbound bool
	started time.Time
}

// flapInfo tracks one peer's recent short-lived sessions.
type flapInfo struct {
	count int
	last  time.Time
}

// shard is one bucket of the peer table; all its maps are guarded by
// its own mutex.
type shard struct {
	mu        sync.Mutex
	byPeer    map[trace.NodeID]map[uint64]*session
	lastHello map[trace.NodeID]time.Time
	flaps     map[trace.NodeID]*flapInfo
	// limiters holds each registered peer's inbound admission bucket;
	// entries die with the peer (unregister/expire), so a churning
	// flooder cannot grow the map without also holding table slots.
	limiters map[trace.NodeID]*limit.Bucket
}

func newShard() *shard {
	return &shard{
		byPeer:    make(map[trace.NodeID]map[uint64]*session),
		lastHello: make(map[trace.NodeID]time.Time),
		flaps:     make(map[trace.NodeID]*flapInfo),
		limiters:  make(map[trace.NodeID]*limit.Bucket),
	}
}

// Manager is the daemon's connection owner. Construct with NewManager.
type Manager struct {
	cfg Config

	// paused suspends the radio: no beacons go out and inbound messages
	// are dropped before dispatch, so a paused node looks exactly like a
	// node that walked out of range. Sessions are left to expire.
	paused atomic.Bool

	nextSID atomic.Uint64
	// peerCount tracks distinct peers across all shards; register keeps
	// the MaxPeers cap exact by incrementing first and rolling back on
	// overflow, so two concurrent handshakes in different shards cannot
	// both squeeze past the bound.
	peerCount atomic.Int64
	shards    []*shard
	ctrs      counters
}

// NewManager returns a manager with defaults applied.
func NewManager(cfg Config) *Manager {
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = DefaultHelloInterval
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = DefaultLivenessWindow
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.FlapThreshold <= 0 {
		cfg.FlapThreshold = cfg.LivenessWindow
	}
	if cfg.Hello == nil {
		cfg.Hello = func() ([]string, []metadata.URI, []wire.GroupWant) { return nil, nil, nil }
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	m := &Manager{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range m.shards {
		m.shards[i] = newShard()
	}
	return m
}

// shardFor maps a peer ID to its shard. Node IDs are often sequential,
// so the index mixes the bits first (SplitMix64's multiplier) rather
// than taking a bare modulo.
func (m *Manager) shardFor(id trace.NodeID) *shard {
	h := uint64(int64(id)) * 0x9e3779b97f4a7c15
	return m.shards[(h>>32)%uint64(len(m.shards))]
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// helloMsg builds the current beacon.
func (m *Manager) helloMsg() *wire.Hello {
	queries, downloading, have := m.cfg.Hello()
	return &wire.Hello{
		From:        m.cfg.Self,
		Heard:       m.Peers(),
		Queries:     queries,
		Downloading: downloading,
		Have:        have,
	}
}

// Run beacons hellos and expires silent peers until ctx ends. It always
// returns ctx's error.
func (m *Manager) Run(ctx context.Context) error {
	t := time.NewTicker(m.cfg.HelloInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.expire(time.Now())
			if !m.paused.Load() {
				m.broadcastExcept(ctx, nil)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetPaused suspends (true) or resumes (false) the radio: while paused
// the manager neither beacons nor dispatches inbound messages, so to
// every peer this node has simply fallen silent and expires from their
// tables — the scenario hook for scripted attendance churn. Sessions
// are not torn down here; liveness expiry and redial handle the rest.
func (m *Manager) SetPaused(p bool) { m.paused.Store(p) }

// Paused reports whether the radio is suspended.
func (m *Manager) Paused() bool { return m.paused.Load() }

// Serve accepts inbound connections until ctx ends or the listener
// fails.
func (m *Manager) Serve(ctx context.Context, lis transport.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		m.ctrs.accepts.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.runSession(ctx, conn, true)
		}()
	}
}

// Connect maintains an outbound link to addr: dial with backoff,
// handshake, pump messages, and redial when the link drops. A link
// that flaps — sessions dying younger than FlapThreshold — is demoted:
// each consecutive flap adds one more step of the backoff schedule
// before the redial, so an unstable or hostile address cannot consume
// the daemon in a reconnect storm. It returns only when ctx ends.
func (m *Manager) Connect(ctx context.Context, tr transport.Transport, addr string) error {
	first := true
	consecFlaps := 0
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	backoff := m.cfg.Backoff
	if m.cfg.DialBreakers != nil {
		backoff.Breaker = m.cfg.DialBreakers.Get(addr)
	}
	for {
		conn, err := transport.DialBackoff(ctx, tr, addr, backoff)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		m.ctrs.dials.Add(1)
		if !first {
			m.ctrs.reconnects.Add(1)
		}
		first = false
		started := time.Now()
		m.runSession(ctx, conn, false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(started) < m.cfg.FlapThreshold {
			consecFlaps++
			delay := m.cfg.Backoff.Delay(consecFlaps - 1)
			m.logf("peer: link to %s flapped (%d in a row); demoted, redialing in %v",
				addr, consecFlaps, delay)
			timer.Reset(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		} else {
			consecFlaps = 0
			m.logf("peer: link to %s dropped; redialing", addr)
		}
	}
}

// ConnectOnce dials addr once and runs a single session until it drops
// or ctx ends — no backoff loop, no redial. It is the DHT's
// dial-on-demand primitive: a lookup that learns a contact outside the
// current peer set brings up a transient link just long enough to
// exchange RPCs, and lets liveness expiry reap it.
// A per-address circuit breaker (Config.DialBreakers) gates the dial:
// while the breaker is open — the address failed repeatedly and its
// cooldown has not elapsed — ConnectOnce fast-fails with
// ErrDialSuppressed instead of hammering a dead contact, which is what
// stops DHT dial-on-demand storms.
func (m *Manager) ConnectOnce(ctx context.Context, tr transport.Transport, addr string) error {
	var br *limit.Breaker
	if m.cfg.DialBreakers != nil {
		br = m.cfg.DialBreakers.Get(addr)
		if !br.Allow() {
			m.ctrs.dialsSuppr.Add(1)
			return fmt.Errorf("%s: %w", addr, ErrDialSuppressed)
		}
	}
	conn, err := tr.Dial(ctx, addr)
	if err != nil {
		// A canceled context is our doing, not evidence the address is
		// dead; only real dial failures feed the breaker.
		if br != nil && ctx.Err() == nil {
			br.Failure()
		}
		return err
	}
	if br != nil {
		br.Success()
	}
	m.ctrs.dials.Add(1)
	m.runSession(ctx, conn, false)
	return ctx.Err()
}

// runSession handshakes conn and pumps its messages until it dies.
func (m *Manager) runSession(ctx context.Context, conn transport.Conn, inbound bool) {
	peerID, firstHello, err := m.handshake(ctx, conn)
	if err != nil {
		m.ctrs.handshakeFail.Add(1)
		m.logf("peer: handshake with %s failed: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	s, err := m.register(peerID, conn, inbound)
	if err != nil {
		m.ctrs.peersRejected.Add(1)
		m.logf("peer: rejecting node %d (%s): %v", peerID, conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	m.logf("peer: session %d with node %d up (%s, inbound=%v)",
		s.sid, peerID, conn.RemoteAddr(), inbound)
	m.deliver(peerID, firstHello)
	for {
		msg, err := conn.Recv(ctx)
		if err != nil {
			m.unregister(s)
			m.ctrs.drops.Add(1)
			m.logf("peer: session %d with node %d down: %v", s.sid, peerID, err)
			return
		}
		m.deliver(peerID, msg)
	}
}

// handshake announces ourselves and waits for the peer's first hello.
func (m *Manager) handshake(ctx context.Context, conn transport.Conn) (trace.NodeID, *wire.Hello, error) {
	hctx, cancel := context.WithTimeout(ctx, m.cfg.HandshakeTimeout)
	defer cancel()
	if err := conn.Send(hctx, m.helloMsg()); err != nil {
		return 0, nil, fmt.Errorf("send hello: %w", err)
	}
	m.ctrs.hellosSent.Add(1)
	for {
		msg, err := conn.Recv(hctx)
		if err != nil {
			return 0, nil, fmt.Errorf("await hello: %w", err)
		}
		h, ok := msg.(*wire.Hello)
		if !ok {
			// A peer racing data before its hello is out of spec;
			// keep waiting for the identity, drop the data.
			continue
		}
		if h.From == m.cfg.Self {
			return 0, nil, fmt.Errorf("peer: connected to self (node %d)", h.From)
		}
		return h.From, h, nil
	}
}

// register adds a handshaken session to the peer table. A session that
// would grow the table past MaxPeers is refused: the capacity bound is
// on distinct peers, so extra sessions to known peers always land.
func (m *Manager) register(peerID trace.NodeID, conn transport.Conn, inbound bool) (*session, error) {
	sh := m.shardFor(peerID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	set := sh.byPeer[peerID]
	if set == nil {
		n := m.peerCount.Add(1)
		if m.cfg.MaxPeers > 0 && n > int64(m.cfg.MaxPeers) {
			m.peerCount.Add(-1)
			return nil, fmt.Errorf("%w (%d peers)", ErrTableFull, n-1)
		}
		set = make(map[uint64]*session)
		sh.byPeer[peerID] = set
	}
	s := &session{sid: m.nextSID.Add(1), peer: peerID, conn: conn, inbound: inbound, started: time.Now()}
	set[s.sid] = s
	sh.lastHello[peerID] = time.Now()
	return s, nil
}

// unregister removes a dead session and closes its conn, counting a
// flap when the session died young.
func (m *Manager) unregister(s *session) {
	now := time.Now()
	sh := m.shardFor(s.peer)
	sh.mu.Lock()
	if set := sh.byPeer[s.peer]; set != nil {
		delete(set, s.sid)
		if len(set) == 0 {
			delete(sh.byPeer, s.peer)
			delete(sh.lastHello, s.peer)
			delete(sh.limiters, s.peer)
			m.peerCount.Add(-1)
		}
	}
	if now.Sub(s.started) < m.cfg.FlapThreshold {
		fi := sh.flaps[s.peer]
		if fi == nil {
			fi = &flapInfo{}
			sh.flaps[s.peer] = fi
		}
		fi.count++
		fi.last = now
		m.ctrs.flaps.Add(1)
	}
	sh.mu.Unlock()
	s.conn.Close()
}

// deliver updates liveness and dispatches one message through
// admission control.
func (m *Manager) deliver(from trace.NodeID, msg wire.Msg) {
	if m.paused.Load() {
		return // radio off: the message was never heard
	}
	if b, ok := msg.(*wire.Busy); ok {
		// Backpressure bypasses the limiter: a peer shedding our
		// traffic must always be able to tell us so.
		m.ctrs.busyRecv.Add(1)
		if bh, ok := m.cfg.Handler.(BusyHandler); ok {
			bh.HandleBusy(from, b)
		}
		return
	}
	if _, ok := msg.(*wire.Hello); ok {
		// Liveness refresh happens before admission control: shedding a
		// flooder's hellos keeps it cheap, but must not expire it from
		// the table — a shed peer is overloaded-away, not gone.
		sh := m.shardFor(from)
		sh.mu.Lock()
		// Refresh liveness only for registered peers: a hello racing a
		// concurrent unregister must not resurrect a lastHello entry
		// with no sessions behind it, or expire would double-count the
		// peer's departure.
		if _, ok := sh.byPeer[from]; ok {
			sh.lastHello[from] = time.Now()
		}
		sh.mu.Unlock()
	}
	if !m.admit(from) {
		m.ctrs.inboundShed.Add(1)
		if m.cfg.OnShed != nil {
			m.cfg.OnShed(from, msg.Type())
		}
		return
	}
	switch v := msg.(type) {
	case *wire.Hello:
		m.ctrs.hellosRecv.Add(1)
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandleHello(from, v)
		}
	case *wire.Metadata:
		m.ctrs.metadataRecv.Add(1)
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandleMetadata(from, v)
		}
	case *wire.Piece:
		m.ctrs.piecesRecv.Add(1)
		if m.cfg.Handler != nil {
			m.cfg.Handler.HandlePiece(from, v)
		}
	case *wire.FindNode, *wire.FindValue, *wire.StoreValue, *wire.NodesReply:
		m.ctrs.dhtRecv.Add(1)
		if dh, ok := m.cfg.Handler.(DHTHandler); ok {
			dh.HandleDHT(from, msg)
		}
	case *wire.GroupHello, *wire.Schedule, *wire.Grant, *wire.PieceBcast,
		*wire.Symbol, *wire.SymbolAck:
		m.ctrs.groupRecv.Add(1)
		if gh, ok := m.cfg.Handler.(GroupHandler); ok {
			gh.HandleGroup(from, msg)
		}
	}
}

// admit charges one token against from's inbound bucket. With no
// InboundRate configured everything is admitted.
func (m *Manager) admit(from trace.NodeID) bool {
	if m.cfg.InboundRate <= 0 {
		return true
	}
	sh := m.shardFor(from)
	sh.mu.Lock()
	bk := sh.limiters[from]
	if bk == nil {
		bk = limit.NewBucket(m.cfg.InboundRate, m.cfg.InboundBurst, nil)
		sh.limiters[from] = bk
	}
	sh.mu.Unlock()
	return bk.Allow()
}

// pick returns the newest session for peer id, the one Send uses. The
// shard lock must be held.
func (sh *shard) pick(id trace.NodeID) *session {
	var best *session
	for _, s := range sh.byPeer[id] {
		if best == nil || s.sid > best.sid {
			best = s
		}
	}
	return best
}

// Send delivers one message to a live peer.
func (m *Manager) Send(ctx context.Context, id trace.NodeID, msg wire.Msg) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s := sh.pick(id)
	sh.mu.Unlock()
	if s == nil {
		return fmt.Errorf("node %d: %w", id, ErrUnknownPeer)
	}
	if err := s.conn.Send(ctx, msg); err != nil {
		return err
	}
	switch msg.Type() {
	case wire.TypeHello:
		m.ctrs.hellosSent.Add(1)
	case wire.TypeMetadata:
		m.ctrs.metadataSent.Add(1)
	case wire.TypePiece:
		m.ctrs.piecesSent.Add(1)
	case wire.TypeFindNode, wire.TypeFindValue, wire.TypeStoreValue, wire.TypeNodesReply:
		m.ctrs.dhtSent.Add(1)
	case wire.TypeBusy:
		m.ctrs.busySent.Add(1)
	default:
		m.ctrs.groupSent.Add(1)
	}
	return nil
}

// Broadcast beacons an out-of-band hello to every live peer right now,
// without waiting for the next tick — the daemon's re-drive nudge when
// a download stalls.
func (m *Manager) Broadcast(ctx context.Context) { m.broadcastExcept(ctx, nil) }

// BroadcastExcept is Broadcast with a skip predicate: peers for which
// skip returns true are left out of the fan-out. The daemon uses it to
// honor Busy backpressure — a stall re-drive must not re-hammer the
// very peer that just asked for room to breathe.
func (m *Manager) BroadcastExcept(ctx context.Context, skip func(trace.NodeID) bool) {
	m.broadcastExcept(ctx, skip)
}

// broadcastExcept beacons to every live peer (once per peer, even with
// duplicate sessions). The beacon is built and encoded exactly once and
// fanned out as a pre-encoded frame: with hundreds of live peers the
// per-tick cost is one serialization, not one per peer, which keeps the
// thousand-node hello path linear in links instead of quadratic in
// bytes encoded.
func (m *Manager) broadcastExcept(ctx context.Context, skip func(trace.NodeID) bool) {
	peers := m.Peers()
	if len(peers) == 0 {
		return
	}
	raw := wire.NewRaw(m.helloMsg())
	for _, id := range peers {
		if skip != nil && skip(id) {
			continue
		}
		if err := m.Send(ctx, id, raw); err != nil {
			m.logf("peer: hello to node %d failed: %v", id, err)
		}
	}
}

// expire drops peers whose last hello is older than the liveness
// window, closing their sessions, and decays flap scores of links that
// have since held steady. Shards are swept one at a time, so an expiry
// pass never stalls traffic on the whole table.
func (m *Manager) expire(now time.Time) {
	var dead []*session
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, at := range sh.lastHello {
			if now.Sub(at) <= m.cfg.LivenessWindow {
				continue
			}
			if set, ok := sh.byPeer[id]; ok {
				for _, s := range set {
					dead = append(dead, s)
				}
				delete(sh.byPeer, id)
				m.peerCount.Add(-1)
			}
			delete(sh.lastHello, id)
			delete(sh.limiters, id)
			m.ctrs.expiries.Add(1)
		}
		for id, fi := range sh.flaps {
			if now.Sub(fi.last) > 4*m.cfg.LivenessWindow {
				fi.count--
				fi.last = now
				if fi.count <= 0 {
					delete(sh.flaps, id)
				}
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range dead {
		s.conn.Close()
		m.logf("peer: node %d expired (no hello in %v)", s.peer, m.cfg.LivenessWindow)
	}
}

// Peers returns the live peer IDs, sorted.
func (m *Manager) Peers() []trace.NodeID {
	out := make([]trace.NodeID, 0, max(m.peerCount.Load(), 0))
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id := range sh.byPeer {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table snapshots the peer table for stats endpoints.
func (m *Manager) Table() []Info {
	now := time.Now()
	out := make([]Info, 0, max(m.peerCount.Load(), 0))
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, set := range sh.byPeer {
			s := sh.pick(id)
			if s == nil {
				continue
			}
			info := Info{
				ID:        id,
				Addr:      s.conn.RemoteAddr(),
				Inbound:   s.inbound,
				LastHello: now.Sub(sh.lastHello[id]),
				Sessions:  len(set),
			}
			if fi := sh.flaps[id]; fi != nil {
				info.Flaps = fi.count
			}
			out = append(out, info)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		HellosSent:      m.ctrs.hellosSent.Load(),
		HellosRecv:      m.ctrs.hellosRecv.Load(),
		MetadataSent:    m.ctrs.metadataSent.Load(),
		MetadataRecv:    m.ctrs.metadataRecv.Load(),
		PiecesSent:      m.ctrs.piecesSent.Load(),
		PiecesRecv:      m.ctrs.piecesRecv.Load(),
		GroupSent:       m.ctrs.groupSent.Load(),
		GroupRecv:       m.ctrs.groupRecv.Load(),
		DHTSent:         m.ctrs.dhtSent.Load(),
		DHTRecv:         m.ctrs.dhtRecv.Load(),
		Accepts:         m.ctrs.accepts.Load(),
		Dials:           m.ctrs.dials.Load(),
		Reconnects:      m.ctrs.reconnects.Load(),
		Drops:           m.ctrs.drops.Load(),
		Expiries:        m.ctrs.expiries.Load(),
		HandshakeFail:   m.ctrs.handshakeFail.Load(),
		Flaps:           m.ctrs.flaps.Load(),
		PeersRejected:   m.ctrs.peersRejected.Load(),
		InboundShed:     m.ctrs.inboundShed.Load(),
		BusySent:        m.ctrs.busySent.Load(),
		BusyRecv:        m.ctrs.busyRecv.Load(),
		DialsSuppressed: m.ctrs.dialsSuppr.Load(),
	}
}

// Close closes every session; used on daemon shutdown after contexts
// are canceled.
func (m *Manager) Close() {
	var conns []transport.Conn
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, set := range sh.byPeer {
			for _, s := range set {
				conns = append(conns, s.conn)
			}
		}
		sh.byPeer = make(map[trace.NodeID]map[uint64]*session)
		sh.lastHello = make(map[trace.NodeID]time.Time)
		sh.limiters = make(map[trace.NodeID]*limit.Bucket)
		sh.mu.Unlock()
	}
	m.peerCount.Store(0)
	for _, c := range conns {
		c.Close()
	}
}
