package peer

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// recorder collects dispatched messages.
type recorder struct {
	mu       sync.Mutex
	hellos   []trace.NodeID
	metadata []metadata.URI
	pieces   []int
	gotMeta  chan struct{}
	once     sync.Once
}

func newRecorder() *recorder { return &recorder{gotMeta: make(chan struct{})} }

func (r *recorder) HandleHello(from trace.NodeID, h *wire.Hello) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hellos = append(r.hellos, from)
}

func (r *recorder) HandleMetadata(from trace.NodeID, m *wire.Metadata) {
	r.mu.Lock()
	r.metadata = append(r.metadata, m.Record.URI)
	r.mu.Unlock()
	r.once.Do(func() { close(r.gotMeta) })
}

func (r *recorder) HandlePiece(from trace.NodeID, p *wire.Piece) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pieces = append(r.pieces, p.Index)
}

func testMeta(t *testing.T) *wire.Metadata {
	t.Helper()
	rec := metadata.NewSynthetic(1, "news daily", "BBC", "world news",
		300*1024, metadata.DefaultPieceSize,
		simtime.At(0, simtime.FileGenerationOffset), simtime.Days(3), []byte("k"))
	return &wire.Metadata{Popularity: 0.5, Record: *rec}
}

// startPair brings up managers A (listening) and B (dialing A) on a
// loopback network and waits until each sees the other.
func startPair(t *testing.T, ctx context.Context, net *transport.Loopback,
	cfgA, cfgB Config) (*Manager, *Manager) {
	t.Helper()
	a, b := NewManager(cfgA), NewManager(cfgB)
	lis, err := net.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(ctx, lis)
	go a.Run(ctx)
	go b.Connect(ctx, net, "A")
	go b.Run(ctx)
	waitFor(t, func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 1
	}, "peers to see each other")
	return a, b
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fastCfg(self trace.NodeID, h Handler) Config {
	return Config{
		Self:          self,
		Handler:       h,
		HelloInterval: 10 * time.Millisecond,
		Backoff:       transport.Backoff{Min: time.Millisecond, Jitter: -1},
	}
}

func TestHandshakeAndDispatch(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	ra, rb := newRecorder(), newRecorder()
	a, b := startPair(t, ctx, net, fastCfg(1, ra), fastCfg(2, rb))

	if got := a.Peers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("a.Peers() = %v", got)
	}
	if got := b.Peers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("b.Peers() = %v", got)
	}

	// A pushes metadata to B; B's handler sees it.
	m := testMeta(t)
	if err := a.Send(ctx, 2, m); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rb.gotMeta:
	case <-time.After(5 * time.Second):
		t.Fatal("metadata never dispatched")
	}
	rb.mu.Lock()
	uri := rb.metadata[0]
	rb.mu.Unlock()
	if uri != m.Record.URI {
		t.Fatalf("dispatched %q, want %q", uri, m.Record.URI)
	}

	// Hellos flow both ways and are counted.
	waitFor(t, func() bool {
		sa, sb := a.Stats(), b.Stats()
		return sa.HellosRecv > 1 && sb.HellosRecv > 1 && sa.HellosSent > 1 && sb.HellosSent > 1
	}, "hello traffic")

	// The peer table snapshot is coherent.
	tab := a.Table()
	if len(tab) != 1 || tab[0].ID != 2 || !tab[0].Inbound {
		t.Fatalf("a.Table() = %+v", tab)
	}
}

func TestLivenessExpiry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()

	cfgA := fastCfg(1, nil)
	cfgA.LivenessWindow = 60 * time.Millisecond
	a := NewManager(cfgA)
	lis, err := net.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(ctx, lis)
	go a.Run(ctx)

	// B handshakes but never beacons (its Run loop is never started)
	// and ignores A's hellos.
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()
	b := NewManager(fastCfg(2, nil))
	go b.Connect(bctx, net, "A")
	waitFor(t, func() bool { return len(a.Peers()) == 1 }, "handshake")

	// With no hellos from B, A expires it within the window. (B's
	// Connect loop keeps redialing, so check the counter, not the
	// flapping table.)
	waitFor(t, func() bool { return a.Stats().Expiries >= 1 }, "expiry")
	bcancel()
	waitFor(t, func() bool { return len(a.Peers()) == 0 }, "table to drain after B stops")
}

func TestSendToUnknownPeer(t *testing.T) {
	m := NewManager(fastCfg(1, nil))
	if err := m.Send(context.Background(), 99, testMeta(t)); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("got %v", err)
	}
}

func TestSelfConnectRejected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	a := NewManager(fastCfg(1, nil))
	lis, err := net.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(ctx, lis)
	// Dial our own listener once, without redial.
	conn, err := net.Dial(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go a.runSession(ctx, conn, false)
	waitFor(t, func() bool { return a.Stats().HandshakeFail >= 1 }, "self-handshake rejection")
	if got := a.Peers(); len(got) != 0 {
		t.Fatalf("self registered as peer: %v", got)
	}
}

// stubConn is a transport.Conn that does nothing, for table-level
// tests that never pump messages.
type stubConn struct{ closed bool }

func (c *stubConn) Send(ctx context.Context, m wire.Msg) error { return nil }
func (c *stubConn) Recv(ctx context.Context) (wire.Msg, error) { return nil, transport.ErrClosed }
func (c *stubConn) Close() error                               { c.closed = true; return nil }
func (c *stubConn) LocalAddr() string                          { return "stub-local" }
func (c *stubConn) RemoteAddr() string                         { return "stub-remote" }

// TestFlapAccounting checks young session deaths are counted as flaps,
// surfaced in the table, and decayed once the link holds steady.
func TestFlapAccounting(t *testing.T) {
	m := NewManager(fastCfg(1, nil))
	keeper, _ := m.register(2, &stubConn{}, false)
	young, _ := m.register(2, &stubConn{}, false)
	m.unregister(young)
	if got := m.Stats().Flaps; got != 1 {
		t.Fatalf("Flaps = %d after a young session death, want 1", got)
	}
	tab := m.Table()
	if len(tab) != 1 || tab[0].Flaps != 1 {
		t.Fatalf("Table() = %+v, want one peer with Flaps=1", tab)
	}

	// A session that outlived the flap threshold is not a flap.
	keeper.started = time.Now().Add(-2 * m.cfg.FlapThreshold)
	m.unregister(keeper)
	if got := m.Stats().Flaps; got != 1 {
		t.Fatalf("Flaps = %d after an old session death, want still 1", got)
	}

	// Decay: after a long quiet period the flap score drains away.
	m.expire(time.Now().Add(5 * m.cfg.LivenessWindow))
	left := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		left += len(sh.flaps)
		sh.mu.Unlock()
	}
	if left != 0 {
		t.Fatalf("%d flap entries survived decay", left)
	}
}

// TestFlapDemotionEndToEnd kills sessions from the listening side and
// checks the dialer counts the young deaths as flaps while still
// reconnecting.
func TestFlapDemotionEndToEnd(t *testing.T) {
	defer testutil.NoLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	a, b := startPair(t, ctx, net, fastCfg(1, nil), fastCfg(2, nil))

	a.Close()
	waitFor(t, func() bool { return b.Stats().Flaps >= 1 }, "flap to be counted")
	waitFor(t, func() bool { return len(a.Peers()) == 1 && len(b.Peers()) == 1 }, "demoted link to recover")
}

func TestReconnectAfterListenerRestart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewLoopback()
	defer net.Close()
	a, b := startPair(t, ctx, net, fastCfg(1, nil), fastCfg(2, nil))

	// Kill every session from A's side; B's Connect loop must redial.
	a.Close()
	waitFor(t, func() bool { return b.Stats().Reconnects >= 1 }, "reconnect attempt")
	waitFor(t, func() bool { return len(a.Peers()) == 1 && len(b.Peers()) == 1 }, "session re-established")
}
