package peer

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/wire"
)

// TestMaxPeersExactUnderConcurrency: the cap on distinct peers stays
// exact even when handshakes race across different shards.
func TestMaxPeersExactUnderConcurrency(t *testing.T) {
	const cap = 50
	const attempts = 200
	cfg := fastCfg(0, nil)
	cfg.MaxPeers = cap
	m := NewManager(cfg)
	var wg sync.WaitGroup
	var admitted, rejected sync.Map
	for i := 1; i <= attempts; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := m.register(trace.NodeID(id), &stubConn{}, false); err != nil {
				rejected.Store(id, true)
			} else {
				admitted.Store(id, true)
			}
		}(i)
	}
	wg.Wait()
	nAdmitted := 0
	admitted.Range(func(any, any) bool { nAdmitted++; return true })
	if nAdmitted != cap {
		t.Fatalf("admitted %d distinct peers, want exactly %d", nAdmitted, cap)
	}
	if got := len(m.Peers()); got != cap {
		t.Fatalf("Peers() = %d, want %d", got, cap)
	}
	// Extra sessions to known peers always land, even at capacity.
	if _, err := m.register(trace.NodeID(pickOne(&admitted)), &stubConn{}, true); err != nil {
		t.Fatalf("second session to a known peer rejected at capacity: %v", err)
	}
}

func pickOne(m *sync.Map) int {
	out := 0
	m.Range(func(k, _ any) bool { out = k.(int); return false })
	return out
}

// dhtRecorder collects DHT dispatches alongside the base handler.
type dhtRecorder struct {
	recorder
	mu2 sync.Mutex
	dht []wire.MsgType
}

func (r *dhtRecorder) HandleDHT(from trace.NodeID, msg wire.Msg) {
	r.mu2.Lock()
	defer r.mu2.Unlock()
	r.dht = append(r.dht, msg.Type())
}

// TestDHTDispatch: DHT frames reach the DHTHandler extension and count
// in the dht counters; a handler without the extension drops them
// without touching the group counters.
func TestDHTDispatch(t *testing.T) {
	rec := &dhtRecorder{}
	m := NewManager(fastCfg(1, rec))
	if _, err := m.register(2, &stubConn{}, false); err != nil {
		t.Fatal(err)
	}
	var key [wire.KeySize]byte
	m.deliver(2, &wire.FindNode{From: 2, FromAddr: "n2", RPCID: 1, Target: key})
	m.deliver(2, &wire.FindValue{From: 2, FromAddr: "n2", RPCID: 2, Key: key})
	m.deliver(2, &wire.NodesReply{From: 2, FromAddr: "n2", RPCID: 1, Key: key})
	rec.mu2.Lock()
	got := len(rec.dht)
	rec.mu2.Unlock()
	if got != 3 {
		t.Fatalf("DHT handler saw %d messages, want 3", got)
	}
	st := m.Stats()
	if st.DHTRecv != 3 || st.GroupRecv != 0 {
		t.Fatalf("stats DHTRecv=%d GroupRecv=%d, want 3 and 0", st.DHTRecv, st.GroupRecv)
	}

	// Sends of DHT frames count as DHT traffic, not group traffic.
	ctx := context.Background()
	if err := m.Send(ctx, 2, &wire.FindNode{From: 1, FromAddr: "n1", RPCID: 3, Target: key}); err != nil {
		t.Fatal(err)
	}
	if st = m.Stats(); st.DHTSent != 1 || st.GroupSent != 0 {
		t.Fatalf("stats DHTSent=%d GroupSent=%d, want 1 and 0", st.DHTSent, st.GroupSent)
	}

	// A DHT-oblivious handler drops DHT frames without crashing.
	plain := NewManager(fastCfg(1, newRecorder()))
	if _, err := plain.register(2, &stubConn{}, false); err != nil {
		t.Fatal(err)
	}
	plain.deliver(2, &wire.FindNode{From: 2, FromAddr: "n2", RPCID: 9, Target: key})
	if st = plain.Stats(); st.DHTRecv != 1 {
		t.Fatalf("DHT frame not counted by oblivious handler: %+v", st)
	}
}

// BenchmarkPeerTableContention hammers the table's hot pair — Send and
// hello delivery — from GOMAXPROCS goroutines over many peers, at one
// shard (the old single-lock layout) and the sharded default. The
// ns/op gap under parallelism is the point of the sharding satellite.
func BenchmarkPeerTableContention(b *testing.B) {
	const peers = 256
	for _, shards := range []int{1, DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := fastCfg(0, nil)
			cfg.Shards = shards
			m := NewManager(cfg)
			for i := 1; i <= peers; i++ {
				if _, err := m.register(trace.NodeID(i), &stubConn{}, false); err != nil {
					b.Fatal(err)
				}
			}
			ctx := context.Background()
			raw := wire.NewRaw(m.helloMsg())
			b.SetParallelism(max(1, 8/runtime.GOMAXPROCS(0)))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := trace.NodeID(1)
				for pb.Next() {
					id = id%peers + 1
					if err := m.Send(ctx, id, raw); err != nil {
						b.Fatal(err)
					}
					m.deliver(id, &wire.Hello{From: id})
				}
			})
		})
	}
}
