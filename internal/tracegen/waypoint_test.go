package tracegen

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestWaypointGeneratesValidTrace(t *testing.T) {
	cfg := DefaultWaypoint()
	cfg.Days = 2
	tr, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
}

func TestWaypointCliquesNonOverlapping(t *testing.T) {
	// A node sits in exactly one cell per epoch, so sessions starting at
	// the same instant never share a node.
	cfg := DefaultWaypoint()
	cfg.Days = 1
	tr, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		start simtime.Time
		node  trace.NodeID
	}
	seen := make(map[key]bool)
	for _, s := range tr.Sessions {
		for _, n := range s.Nodes {
			k := key{s.Start, n}
			if seen[k] {
				t.Fatalf("node %d in two cells at %v", n, s.Start)
			}
			seen[k] = true
		}
	}
}

func TestWaypointSessionsLastOneEpoch(t *testing.T) {
	cfg := DefaultWaypoint()
	cfg.Days = 1
	tr, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Sessions {
		if s.Duration() != cfg.Epoch {
			t.Fatalf("session duration %v, want one epoch %v", s.Duration(), cfg.Epoch)
		}
	}
}

func TestWaypointDeterministic(t *testing.T) {
	cfg := DefaultWaypoint()
	cfg.Days = 1
	a, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		if a.Sessions[i].Start != b.Sessions[i].Start ||
			len(a.Sessions[i].Nodes) != len(b.Sessions[i].Nodes) {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestWaypointMobilityMixesPopulation(t *testing.T) {
	// Over a week, random waypoint should bring most node pairs into
	// contact at least once — unlike the static classroom schedule.
	cfg := DefaultWaypoint()
	tr, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewStats(tr)
	met := 0
	pairs := 0
	for a := 0; a < cfg.Nodes; a++ {
		for b := a + 1; b < cfg.Nodes; b++ {
			pairs++
			if st.PairContacts(trace.NodeID(a), trace.NodeID(b)) > 0 {
				met++
			}
		}
	}
	if frac := float64(met) / float64(pairs); frac < 0.5 {
		t.Fatalf("only %.0f%% of pairs ever met; mobility not mixing", frac*100)
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*WaypointConfig)
	}{
		{"one node", func(c *WaypointConfig) { c.Nodes = 1 }},
		{"zero cells x", func(c *WaypointConfig) { c.CellsX = 0 }},
		{"zero cells y", func(c *WaypointConfig) { c.CellsY = 0 }},
		{"zero days", func(c *WaypointConfig) { c.Days = 0 }},
		{"zero speed", func(c *WaypointConfig) { c.Speed = 0 }},
		{"negative pause", func(c *WaypointConfig) { c.Pause = -1 }},
		{"zero epoch", func(c *WaypointConfig) { c.Epoch = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultWaypoint()
			tt.mutate(&cfg)
			if _, err := Waypoint(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestClampInt(t *testing.T) {
	if clampInt(-1, 0, 7) != 0 || clampInt(9, 0, 7) != 7 || clampInt(3, 0, 7) != 3 {
		t.Fatal("clampInt wrong")
	}
}
