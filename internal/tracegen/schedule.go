package tracegen

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// ScheduleConfig shapes the contact-trace → fault-injector adapter: it
// turns one node's presence in a mobility trace into a partition/heal
// schedule the chaos transport can replay. While the trace has the node
// inside at least one session the node is connected; between sessions it
// is partitioned — the live-stack rendering of partial mobility, where a
// bus between meetings or a student between classes simply is not on the
// air.
type ScheduleConfig struct {
	// Compress divides simulated time: one simulated Compress-duration
	// becomes one wall millisecond. DefaultCompress turns a simulated
	// minute into a wall millisecond, so a 7-day trace replays in ~10
	// seconds. Compress <= 0 picks the default.
	Compress simtime.Duration
	// Slack merges contact gaps shorter than itself: two sessions
	// separated by less than Slack count as one connected interval, so
	// sampling artifacts in the generator do not become partition flaps.
	Slack simtime.Duration
	// Horizon truncates the schedule (0 = the whole trace): events past
	// the horizon are dropped, and a node connected at the horizon stays
	// connected. Soak tests use it to replay just the head of a trace.
	Horizon simtime.Duration
}

// DefaultCompress maps one simulated minute onto one wall millisecond.
const DefaultCompress = simtime.Minute

// wall maps a simulated instant onto a wall-clock offset under the
// compression factor.
func (c ScheduleConfig) wall(t simtime.Time) time.Duration {
	compress := c.Compress
	if compress <= 0 {
		compress = DefaultCompress
	}
	return time.Duration(float64(t) / float64(compress) * float64(time.Millisecond))
}

// PartitionSchedule renders one node's mobility into fault events: a
// heal when the node enters a contact interval, a partition when it
// leaves. The schedule starts at the trace's t=0, so a node whose first
// contact is later begins partitioned. The returned events are ordered
// by offset and ready for fault.Config.Schedule on that node's
// transport.
func PartitionSchedule(tr *trace.Trace, id trace.NodeID, cfg ScheduleConfig) ([]fault.Event, error) {
	if tr == nil {
		return nil, fmt.Errorf("tracegen: nil trace: %w", ErrConfig)
	}
	if id < 0 || int(id) >= tr.NodeCount {
		return nil, fmt.Errorf("tracegen: node %d outside population %d: %w", id, tr.NodeCount, ErrConfig)
	}

	// Collect and merge the node's contact intervals. Sessions arrive
	// sorted by start, so a single forward pass merges overlaps and
	// sub-Slack gaps.
	type ival struct{ start, end simtime.Time }
	var merged []ival
	for _, s := range tr.Sessions {
		if !s.Contains(id) {
			continue
		}
		if cfg.Horizon > 0 && s.Start >= simtime.Time(cfg.Horizon) {
			break
		}
		cur := ival{start: s.Start, end: s.End}
		if n := len(merged); n > 0 && cur.start <= merged[n-1].end.Add(cfg.Slack) {
			if cur.end > merged[n-1].end {
				merged[n-1].end = cur.end
			}
			continue
		}
		merged = append(merged, cur)
	}

	// Render intervals as heal/partition edges. The injector's default
	// state is connected, so a node absent at t=0 gets an explicit
	// partition event at offset zero.
	var events []fault.Event
	if len(merged) == 0 || merged[0].start > 0 {
		events = append(events, fault.Event{At: 0, Partition: true})
	}
	for i, iv := range merged {
		if iv.start > 0 {
			events = append(events, fault.Event{At: cfg.wall(iv.start), Partition: false})
		}
		last := i == len(merged)-1
		if cfg.Horizon > 0 && simtime.Duration(iv.end) >= cfg.Horizon && last {
			continue // connected through the horizon: no trailing partition
		}
		events = append(events, fault.Event{At: cfg.wall(iv.end), Partition: true})
	}
	return events, nil
}

// PartitionSchedules renders every node of the trace, keyed by node ID —
// the swarm harness hands each node's schedule to its own fault
// transport.
func PartitionSchedules(tr *trace.Trace, cfg ScheduleConfig) (map[trace.NodeID][]fault.Event, error) {
	if tr == nil {
		return nil, fmt.Errorf("tracegen: nil trace: %w", ErrConfig)
	}
	out := make(map[trace.NodeID][]fault.Event, tr.NodeCount)
	for id := trace.NodeID(0); int(id) < tr.NodeCount; id++ {
		ev, err := PartitionSchedule(tr, id, cfg)
		if err != nil {
			return nil, err
		}
		out[id] = ev
	}
	return out, nil
}
