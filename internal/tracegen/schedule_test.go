package tracegen

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// mkTrace builds a 4-node trace with hand-placed sessions.
func mkTrace(t *testing.T, sessions ...trace.Session) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Name: "sched-test", NodeCount: 4, Sessions: sessions}
	if err := tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	return tr
}

func TestPartitionScheduleRendersContacts(t *testing.T) {
	// Node 1: in contact during [1min, 3min) and [10min, 12min).
	tr := mkTrace(t,
		trace.NewSession(simtime.Time(1*simtime.Minute), simtime.Time(3*simtime.Minute), []trace.NodeID{0, 1}),
		trace.NewSession(simtime.Time(10*simtime.Minute), simtime.Time(12*simtime.Minute), []trace.NodeID{1, 2}),
	)
	ev, err := PartitionSchedule(tr, 1, ScheduleConfig{Compress: simtime.Minute})
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Event{
		{At: 0, Partition: true},
		{At: 1 * time.Millisecond, Partition: false},
		{At: 3 * time.Millisecond, Partition: true},
		{At: 10 * time.Millisecond, Partition: false},
		{At: 12 * time.Millisecond, Partition: true},
	}
	if len(ev) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(ev), ev, len(want))
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev[i], want[i])
		}
	}
}

func TestPartitionScheduleMergesSlackGaps(t *testing.T) {
	// Two sessions 30 s apart merge under a 1-minute slack.
	tr := mkTrace(t,
		trace.NewSession(0, simtime.Time(2*simtime.Minute), []trace.NodeID{0, 1}),
		trace.NewSession(simtime.Time(2*simtime.Minute+30*simtime.Second), simtime.Time(5*simtime.Minute), []trace.NodeID{0, 1}),
	)
	ev, err := PartitionSchedule(tr, 0, ScheduleConfig{Compress: simtime.Minute, Slack: simtime.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Connected from t=0: no initial partition, one partition at the
	// merged interval's end.
	if len(ev) != 1 || !ev[0].Partition || ev[0].At != 5*time.Millisecond {
		t.Fatalf("got %v, want single partition at 5ms", ev)
	}
}

func TestPartitionScheduleHorizon(t *testing.T) {
	tr := mkTrace(t,
		trace.NewSession(0, simtime.Time(10*simtime.Minute), []trace.NodeID{0, 1}),
		trace.NewSession(simtime.Time(20*simtime.Minute), simtime.Time(30*simtime.Minute), []trace.NodeID{0, 1}),
	)
	// Horizon inside the first session: the node stays connected, and
	// the second session never appears.
	ev, err := PartitionSchedule(tr, 0, ScheduleConfig{Compress: simtime.Minute, Horizon: 5 * simtime.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("got %v, want no events (connected through horizon)", ev)
	}
}

func TestPartitionScheduleNodeNeverPresent(t *testing.T) {
	tr := mkTrace(t, trace.NewSession(0, simtime.Time(simtime.Minute), []trace.NodeID{0, 1}))
	ev, err := PartitionSchedule(tr, 3, ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || !ev[0].Partition || ev[0].At != 0 {
		t.Fatalf("got %v, want permanent partition from t=0", ev)
	}
}

func TestPartitionScheduleErrors(t *testing.T) {
	tr := mkTrace(t, trace.NewSession(0, simtime.Time(simtime.Minute), []trace.NodeID{0, 1}))
	if _, err := PartitionSchedule(nil, 0, ScheduleConfig{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := PartitionSchedule(tr, 99, ScheduleConfig{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestPartitionSchedulesWaypoint sanity-checks the adapter against a
// real generator: every node gets a schedule, offsets are monotone, and
// the states alternate.
func TestPartitionSchedulesWaypoint(t *testing.T) {
	cfg := DefaultWaypoint()
	cfg.Nodes = 12
	cfg.Days = 1
	tr, err := Waypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := PartitionSchedules(tr, ScheduleConfig{Compress: simtime.Minute, Slack: 10 * simtime.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != cfg.Nodes {
		t.Fatalf("got %d schedules, want %d", len(scheds), cfg.Nodes)
	}
	for id, ev := range scheds {
		for i := 1; i < len(ev); i++ {
			if ev[i].At < ev[i-1].At {
				t.Fatalf("node %d: events out of order: %v", id, ev)
			}
			if ev[i].Partition == ev[i-1].Partition {
				t.Fatalf("node %d: repeated state at %d: %v", id, i, ev)
			}
		}
	}
}
