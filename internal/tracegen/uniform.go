package tracegen

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// UniformConfig parameterizes a structure-free random trace: sessions of
// random membership at random times. It has none of the locality of the
// DieselNet or NUS traces and exists for property tests and stress tests.
type UniformConfig struct {
	// Nodes is the population size.
	Nodes int
	// Sessions is the number of sessions to generate.
	Sessions int
	// MaxSessionNodes bounds the session size; sizes are uniform in
	// [2, MaxSessionNodes].
	MaxSessionNodes int
	// Days is the time span over which session start times are drawn.
	Days int
	// MeanDuration is the mean of the exponentially distributed session
	// length, clamped to [1s, 10*mean].
	MeanDuration simtime.Duration
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultUniform returns a small random trace configuration.
func DefaultUniform() UniformConfig {
	return UniformConfig{
		Nodes:           30,
		Sessions:        500,
		MaxSessionNodes: 5,
		Days:            7,
		MeanDuration:    5 * simtime.Minute,
		Seed:            1,
	}
}

// Uniform generates a structure-free random trace.
func Uniform(cfg UniformConfig) (*trace.Trace, error) {
	if err := validateUniform(cfg); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	tr := &trace.Trace{Name: "uniform-synth", NodeCount: cfg.Nodes}
	span := simtime.Days(cfg.Days)
	for i := 0; i < cfg.Sessions; i++ {
		size := 2 + r.Intn(cfg.MaxSessionNodes-1)
		perm := r.Perm(cfg.Nodes)[:size]
		nodes := make([]trace.NodeID, size)
		for j, v := range perm {
			nodes[j] = trace.NodeID(v)
		}
		start := simtime.Time(r.Intn(int(span)))
		dur := simtime.Duration(float64(cfg.MeanDuration) * r.ExpFloat64())
		dur = clampDuration(dur, simtime.Second, 10*cfg.MeanDuration)
		tr.Sessions = append(tr.Sessions, trace.NewSession(start, start.Add(dur), nodes))
	}
	tr.SortSessions()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid uniform trace: %w", err)
	}
	return tr, nil
}

func validateUniform(cfg UniformConfig) error {
	if err := validatePositive("Nodes", cfg.Nodes); err != nil {
		return err
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("Nodes = %d needs at least 2: %w", cfg.Nodes, ErrConfig)
	}
	if cfg.Sessions < 0 {
		return fmt.Errorf("Sessions = %d must be non-negative: %w", cfg.Sessions, ErrConfig)
	}
	if cfg.MaxSessionNodes < 2 || cfg.MaxSessionNodes > cfg.Nodes {
		return fmt.Errorf("MaxSessionNodes = %d not in [2, Nodes]: %w", cfg.MaxSessionNodes, ErrConfig)
	}
	if err := validatePositive("Days", cfg.Days); err != nil {
		return err
	}
	if cfg.MeanDuration <= 0 {
		return fmt.Errorf("MeanDuration = %v must be positive: %w", cfg.MeanDuration, ErrConfig)
	}
	return nil
}
