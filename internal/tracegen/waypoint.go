package tracegen

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// WaypointConfig parameterizes a cell-based random-waypoint mobility
// generator: nodes walk between random waypoints on a CellsX x CellsY
// grid of communication cells; at every sampling epoch, the nodes inside
// one cell can all hear each other and form a session. Cells keep the
// paper's non-overlapping-clique assumption while giving a classic
// mobility-model trace family alongside the bus and campus generators.
type WaypointConfig struct {
	// Nodes is the population size.
	Nodes int
	// CellsX and CellsY give the grid dimensions.
	CellsX, CellsY int
	// Speed is how many cells a node traverses per hour (fractional
	// speeds mean multi-epoch legs).
	Speed float64
	// Pause is the dwell time at each waypoint.
	Pause simtime.Duration
	// Epoch is the sampling period; co-located nodes form one session
	// per epoch.
	Epoch simtime.Duration
	// Days is the trace length.
	Days int
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultWaypoint returns a moderate urban-plaza scenario.
func DefaultWaypoint() WaypointConfig {
	return WaypointConfig{
		Nodes:  50,
		CellsX: 8,
		CellsY: 8,
		Speed:  2,
		Pause:  30 * simtime.Minute,
		Epoch:  10 * simtime.Minute,
		Days:   7,
		Seed:   1,
	}
}

// waypointState tracks one node's walk.
type waypointState struct {
	x, y         float64 // current position in cell units
	tx, ty       float64 // target waypoint
	pauseLeft    simtime.Duration
	cellX, cellY int
}

// Waypoint generates a cell-based random-waypoint trace.
func Waypoint(cfg WaypointConfig) (*trace.Trace, error) {
	if err := validateWaypoint(cfg); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	states := make([]waypointState, cfg.Nodes)
	for i := range states {
		states[i].x = r.Float64() * float64(cfg.CellsX)
		states[i].y = r.Float64() * float64(cfg.CellsY)
		states[i].pickTarget(r, cfg)
	}

	tr := &trace.Trace{Name: "waypoint-synth", NodeCount: cfg.Nodes}
	end := simtime.Time(simtime.Days(cfg.Days))
	cellsPerEpoch := cfg.Speed * cfg.Epoch.Seconds() / 3600

	for now := simtime.Time(0); now < end; now = now.Add(cfg.Epoch) {
		// Move everyone one epoch.
		for i := range states {
			states[i].advance(r, cfg, cellsPerEpoch)
		}
		// Group by cell.
		cells := make(map[[2]int][]trace.NodeID)
		for i := range states {
			key := [2]int{states[i].cellX, states[i].cellY}
			cells[key] = append(cells[key], trace.NodeID(i))
		}
		for _, members := range cells {
			if len(members) < 2 {
				continue
			}
			tr.Sessions = append(tr.Sessions, trace.NewSession(now, now.Add(cfg.Epoch), members))
		}
	}
	tr.SortSessions()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid waypoint trace: %w", err)
	}
	return tr, nil
}

// pickTarget draws a fresh waypoint.
func (s *waypointState) pickTarget(r *rng.Rand, cfg WaypointConfig) {
	s.tx = r.Float64() * float64(cfg.CellsX)
	s.ty = r.Float64() * float64(cfg.CellsY)
}

// advance moves the node toward its waypoint by up to dist cells.
func (s *waypointState) advance(r *rng.Rand, cfg WaypointConfig, dist float64) {
	if s.pauseLeft > 0 {
		s.pauseLeft -= cfg.Epoch
	} else {
		dx, dy := s.tx-s.x, s.ty-s.y
		d := math.Hypot(dx, dy)
		if d <= dist {
			s.x, s.y = s.tx, s.ty
			s.pauseLeft = cfg.Pause
			s.pickTarget(r, cfg)
		} else {
			s.x += dx / d * dist
			s.y += dy / d * dist
		}
	}
	s.cellX = clampInt(int(s.x), 0, cfg.CellsX-1)
	s.cellY = clampInt(int(s.y), 0, cfg.CellsY-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func validateWaypoint(cfg WaypointConfig) error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Nodes", cfg.Nodes},
		{"CellsX", cfg.CellsX},
		{"CellsY", cfg.CellsY},
		{"Days", cfg.Days},
	} {
		if err := validatePositive(f.name, f.v); err != nil {
			return err
		}
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("Nodes = %d needs at least 2: %w", cfg.Nodes, ErrConfig)
	}
	if cfg.Speed <= 0 {
		return fmt.Errorf("Speed = %v must be positive: %w", cfg.Speed, ErrConfig)
	}
	if cfg.Pause < 0 {
		return fmt.Errorf("Pause = %v must be non-negative: %w", cfg.Pause, ErrConfig)
	}
	if cfg.Epoch <= 0 {
		return fmt.Errorf("Epoch = %v must be positive: %w", cfg.Epoch, ErrConfig)
	}
	return nil
}
