package tracegen

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// DieselConfig parameterizes the DieselNet-style generator.
type DieselConfig struct {
	// Buses is the number of nodes (the real trace has about 40).
	Buses int
	// Routes is the number of bus routes; buses on the same route meet
	// much more often than buses on different routes.
	Routes int
	// Days is the trace length in days.
	Days int
	// SameRouteMeetingsPerDay is the mean number of daily meetings for a
	// pair of buses serving the same route.
	SameRouteMeetingsPerDay float64
	// CrossRouteMeetingsPerDay is the mean for a pair on adjacent routes
	// (routes r and r±1 on the route ring share a transfer hub). Pairs on
	// non-adjacent routes meet at a tenth of this rate.
	CrossRouteMeetingsPerDay float64
	// MeanContact is the mean contact duration; durations are
	// exponentially distributed and clamped to [5s, 10*mean].
	MeanContact simtime.Duration
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultDiesel mirrors the published shape of the UMassDieselNet trace:
// ~40 buses over three weeks, short pairwise contacts, strong route
// locality.
func DefaultDiesel() DieselConfig {
	return DieselConfig{
		Buses:                    40,
		Routes:                   8,
		Days:                     21,
		SameRouteMeetingsPerDay:  1.0,
		CrossRouteMeetingsPerDay: 0.12,
		MeanContact:              45 * simtime.Second,
		Seed:                     1,
	}
}

// Operating window for buses: 06:00 to 22:00.
const (
	dieselDayStart = 6 * simtime.Hour
	dieselDayEnd   = 22 * simtime.Hour
)

// Diesel generates a DieselNet-style pairwise contact trace.
func Diesel(cfg DieselConfig) (*trace.Trace, error) {
	if err := validateDiesel(cfg); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	// Assign buses to routes round-robin so every route is served.
	route := make([]int, cfg.Buses)
	for b := range route {
		route[b] = b % cfg.Routes
	}

	tr := &trace.Trace{Name: "dieselnet-synth", NodeCount: cfg.Buses}
	window := dieselDayEnd - dieselDayStart
	for day := 0; day < cfg.Days; day++ {
		for a := 0; a < cfg.Buses; a++ {
			for b := a + 1; b < cfg.Buses; b++ {
				rate := meetingRate(cfg, route[a], route[b])
				meetings := poisson(r, rate)
				for m := 0; m < meetings; m++ {
					start := simtime.At(day, dieselDayStart+
						simtime.Duration(r.Intn(int(window))))
					dur := simtime.Duration(float64(cfg.MeanContact) * r.ExpFloat64())
					dur = clampDuration(dur, 5*simtime.Second, 10*cfg.MeanContact)
					tr.Sessions = append(tr.Sessions, trace.Session{
						Start: start,
						End:   start.Add(dur),
						Nodes: []trace.NodeID{trace.NodeID(a), trace.NodeID(b)},
					})
				}
			}
		}
	}
	tr.SortSessions()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid diesel trace: %w", err)
	}
	return tr, nil
}

// meetingRate returns the mean daily meetings for a pair of routes.
// Routes form a ring; adjacent routes share a hub.
func meetingRate(cfg DieselConfig, ra, rb int) float64 {
	switch {
	case ra == rb:
		return cfg.SameRouteMeetingsPerDay
	case adjacentRoutes(ra, rb, cfg.Routes):
		return cfg.CrossRouteMeetingsPerDay
	default:
		return cfg.CrossRouteMeetingsPerDay / 10
	}
}

func adjacentRoutes(ra, rb, n int) bool {
	if n <= 1 {
		return false
	}
	d := ra - rb
	if d < 0 {
		d = -d
	}
	return d == 1 || d == n-1
}

func validateDiesel(cfg DieselConfig) error {
	if err := validatePositive("Buses", cfg.Buses); err != nil {
		return err
	}
	if cfg.Buses < 2 {
		return fmt.Errorf("Buses = %d needs at least 2: %w", cfg.Buses, ErrConfig)
	}
	if err := validatePositive("Routes", cfg.Routes); err != nil {
		return err
	}
	if err := validatePositive("Days", cfg.Days); err != nil {
		return err
	}
	if cfg.SameRouteMeetingsPerDay < 0 || cfg.CrossRouteMeetingsPerDay < 0 {
		return fmt.Errorf("meeting rates must be non-negative: %w", ErrConfig)
	}
	if cfg.MeanContact <= 0 {
		return fmt.Errorf("MeanContact = %v must be positive: %w", cfg.MeanContact, ErrConfig)
	}
	return nil
}
