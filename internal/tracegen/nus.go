package tracegen

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// NUSConfig parameterizes the NUS-style campus-schedule generator.
type NUSConfig struct {
	// Students is the node population.
	Students int
	// Classes is the number of distinct courses.
	Classes int
	// EnrollPerStudent is how many courses each student takes.
	EnrollPerStudent int
	// MeetingsPerWeek is how many weekly meetings each course holds.
	MeetingsPerWeek int
	// SlotsPerDay is the number of teaching slots per weekday; slot i
	// starts at 08:00 + i*2h and lasts SlotLength.
	SlotsPerDay int
	// SlotLength is the session duration.
	SlotLength simtime.Duration
	// Days is the trace length in days. Weekends (day%7 in {5,6}) hold no
	// classes.
	Days int
	// Attendance is the probability a student attends a scheduled
	// meeting; the Figure 3(f) x-axis.
	Attendance float64
	// Seed makes the trace reproducible.
	Seed uint64
}

// DefaultNUS is a laptop-scale version of the NUS student trace: the real
// one covers tens of thousands of students; we keep the same structure
// (class cliques from a weekly schedule) at a few hundred nodes.
func DefaultNUS() NUSConfig {
	return NUSConfig{
		Students:         200,
		Classes:          40,
		EnrollPerStudent: 4,
		MeetingsPerWeek:  2,
		SlotsPerDay:      5,
		SlotLength:       2 * simtime.Hour,
		Days:             14,
		Attendance:       0.9,
		Seed:             1,
	}
}

const nusFirstSlot = 8 * simtime.Hour

// NUS generates an NUS-style classroom-clique contact trace.
//
// Each course is assigned MeetingsPerWeek distinct (weekday, slot) pairs.
// Each student enrolls in EnrollPerStudent distinct courses. When two of a
// student's courses meet in the same (weekday, slot), the student attends
// only the lower-numbered course, so cliques never overlap — matching the
// paper's assumption for this trace. Scheduled attendance is then thinned
// by the attendance rate; meetings with at least two attendees become
// sessions.
func NUS(cfg NUSConfig) (*trace.Trace, error) {
	if err := validateNUS(cfg); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	type meeting struct {
		weekday, slot int
	}
	weekSlots := 5 * cfg.SlotsPerDay

	// Schedule courses into (weekday, slot) pairs.
	courseMeetings := make([][]meeting, cfg.Classes)
	for c := range courseMeetings {
		picks := r.Perm(weekSlots)[:cfg.MeetingsPerWeek]
		for _, p := range picks {
			courseMeetings[c] = append(courseMeetings[c], meeting{
				weekday: p / cfg.SlotsPerDay,
				slot:    p % cfg.SlotsPerDay,
			})
		}
	}

	// Enroll students.
	enrolled := make([][]int, cfg.Students) // student -> sorted course ids
	for s := range enrolled {
		perm := r.Perm(cfg.Classes)[:cfg.EnrollPerStudent]
		courses := append([]int(nil), perm...)
		sortInts(courses)
		enrolled[s] = courses
	}

	// Resolve per-student timetables: for each (weekday, slot) the student
	// attends the lowest-numbered enrolled course meeting then.
	attends := make([]map[meeting]int, cfg.Students)
	for s, courses := range enrolled {
		attends[s] = make(map[meeting]int)
		for _, c := range courses {
			for _, m := range courseMeetings[c] {
				if _, taken := attends[s][m]; !taken {
					attends[s][m] = c
				}
			}
		}
	}

	// Roster per course meeting.
	type meetingKey struct {
		course        int
		weekday, slot int
	}
	rosters := make(map[meetingKey][]trace.NodeID)
	for s := range attends {
		for m, c := range attends[s] {
			k := meetingKey{course: c, weekday: m.weekday, slot: m.slot}
			rosters[k] = append(rosters[k], trace.NodeID(s))
		}
	}

	tr := &trace.Trace{Name: "nus-synth", NodeCount: cfg.Students}
	for day := 0; day < cfg.Days; day++ {
		weekday := day % 7
		if weekday >= 5 {
			continue // weekend
		}
		for c := 0; c < cfg.Classes; c++ {
			for _, m := range courseMeetings[c] {
				if m.weekday != weekday {
					continue
				}
				roster := rosters[meetingKey{course: c, weekday: m.weekday, slot: m.slot}]
				var present []trace.NodeID
				for _, s := range roster {
					if r.Bool(cfg.Attendance) {
						present = append(present, s)
					}
				}
				if len(present) < 2 {
					continue
				}
				start := simtime.At(day, nusFirstSlot+
					simtime.Duration(m.slot)*cfg.SlotLength)
				tr.Sessions = append(tr.Sessions, trace.NewSession(
					start, start.Add(cfg.SlotLength), present))
			}
		}
	}
	tr.SortSessions()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("tracegen: generated invalid nus trace: %w", err)
	}
	return tr, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func validateNUS(cfg NUSConfig) error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Students", cfg.Students},
		{"Classes", cfg.Classes},
		{"EnrollPerStudent", cfg.EnrollPerStudent},
		{"MeetingsPerWeek", cfg.MeetingsPerWeek},
		{"SlotsPerDay", cfg.SlotsPerDay},
		{"Days", cfg.Days},
	} {
		if err := validatePositive(f.name, f.v); err != nil {
			return err
		}
	}
	if cfg.Students < 2 {
		return fmt.Errorf("Students = %d needs at least 2: %w", cfg.Students, ErrConfig)
	}
	if cfg.EnrollPerStudent > cfg.Classes {
		return fmt.Errorf("EnrollPerStudent %d > Classes %d: %w",
			cfg.EnrollPerStudent, cfg.Classes, ErrConfig)
	}
	if cfg.MeetingsPerWeek > 5*cfg.SlotsPerDay {
		return fmt.Errorf("MeetingsPerWeek %d exceeds weekly slots %d: %w",
			cfg.MeetingsPerWeek, 5*cfg.SlotsPerDay, ErrConfig)
	}
	if cfg.SlotLength <= 0 {
		return fmt.Errorf("SlotLength = %v must be positive: %w", cfg.SlotLength, ErrConfig)
	}
	if nusFirstSlot+simtime.Duration(cfg.SlotsPerDay)*cfg.SlotLength > simtime.Day {
		return fmt.Errorf("slots overflow the day: %w", ErrConfig)
	}
	if cfg.Attendance < 0 || cfg.Attendance > 1 {
		return fmt.Errorf("Attendance = %v not in [0,1]: %w", cfg.Attendance, ErrConfig)
	}
	return nil
}
