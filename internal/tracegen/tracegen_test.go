package tracegen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestPoissonMean(t *testing.T) {
	r := rng.New(1)
	for _, mean := range []float64{0.3, 1, 4} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(r, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.01 {
			t.Fatalf("poisson mean %v: sample mean %v", mean, got)
		}
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	r := rng.New(1)
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Fatal("poisson with non-positive mean must be 0")
	}
}

func TestClampDuration(t *testing.T) {
	tests := []struct {
		d, min, max, want simtime.Duration
	}{
		{5, 10, 20, 10},
		{15, 10, 20, 15},
		{25, 10, 20, 20},
	}
	for _, tt := range tests {
		if got := clampDuration(tt.d, tt.min, tt.max); got != tt.want {
			t.Errorf("clampDuration(%d,%d,%d) = %d, want %d", tt.d, tt.min, tt.max, got, tt.want)
		}
	}
}

func TestDieselGeneratesValidPairwiseTrace(t *testing.T) {
	tr, err := Diesel(DefaultDiesel())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	for i, s := range tr.Sessions {
		if !s.Pairwise() {
			t.Fatalf("session %d has %d nodes; diesel must be pairwise", i, len(s.Nodes))
		}
		off := s.Start.DayOffset()
		if off < dieselDayStart || off >= dieselDayEnd {
			t.Fatalf("session %d starts at %v outside operating hours", i, s.Start)
		}
	}
}

func TestDieselDeterministic(t *testing.T) {
	a, err := Diesel(DefaultDiesel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diesel(DefaultDiesel())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		sa, sb := a.Sessions[i], b.Sessions[i]
		if sa.Start != sb.Start || sa.End != sb.End || sa.Nodes[0] != sb.Nodes[0] || sa.Nodes[1] != sb.Nodes[1] {
			t.Fatalf("session %d differs between identical runs", i)
		}
	}
}

func TestDieselSeedChangesTrace(t *testing.T) {
	cfg := DefaultDiesel()
	a, _ := Diesel(cfg)
	cfg.Seed = 2
	b, _ := Diesel(cfg)
	if len(a.Sessions) == len(b.Sessions) {
		same := true
		for i := range a.Sessions {
			if a.Sessions[i].Start != b.Sessions[i].Start {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestDieselRouteLocality(t *testing.T) {
	cfg := DefaultDiesel()
	cfg.Days = 30
	tr, err := Diesel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := trace.NewStats(tr)
	// Buses 0 and 8 share route 0; buses 0 and 4 are on non-adjacent
	// routes (0 and 4 of 8). Same-route pairs must meet far more often.
	sameRoute := stats.PairContacts(0, 8)
	farRoute := stats.PairContacts(0, 4)
	if sameRoute <= 3*farRoute {
		t.Fatalf("route locality missing: same-route %d vs far-route %d contacts",
			sameRoute, farRoute)
	}
}

func TestDieselFrequentContactsExist(t *testing.T) {
	tr, err := Diesel(DefaultDiesel())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's DieselNet rule: contact at least every 3 days.
	freq := trace.NewStats(tr).FrequentContacts(1.0 / 3.0)
	if len(freq) == 0 {
		t.Fatal("no frequent contacts at 1/3 per day; same-route pairs should qualify")
	}
}

func TestDieselConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*DieselConfig)
	}{
		{"zero buses", func(c *DieselConfig) { c.Buses = 0 }},
		{"one bus", func(c *DieselConfig) { c.Buses = 1 }},
		{"zero routes", func(c *DieselConfig) { c.Routes = 0 }},
		{"zero days", func(c *DieselConfig) { c.Days = 0 }},
		{"negative same-route rate", func(c *DieselConfig) { c.SameRouteMeetingsPerDay = -1 }},
		{"negative cross-route rate", func(c *DieselConfig) { c.CrossRouteMeetingsPerDay = -1 }},
		{"zero contact", func(c *DieselConfig) { c.MeanContact = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultDiesel()
			tt.mutate(&cfg)
			if _, err := Diesel(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestAdjacentRoutes(t *testing.T) {
	tests := []struct {
		a, b, n int
		want    bool
	}{
		{0, 1, 8, true},
		{1, 0, 8, true},
		{0, 7, 8, true}, // ring wrap
		{0, 2, 8, false},
		{3, 3, 8, false},
		{0, 0, 1, false},
	}
	for _, tt := range tests {
		if got := adjacentRoutes(tt.a, tt.b, tt.n); got != tt.want {
			t.Errorf("adjacentRoutes(%d,%d,%d) = %v", tt.a, tt.b, tt.n, got)
		}
	}
}

func TestNUSGeneratesValidCliqueTrace(t *testing.T) {
	tr, err := NUS(DefaultNUS())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	larger := 0
	for _, s := range tr.Sessions {
		if len(s.Nodes) > 2 {
			larger++
		}
	}
	if larger == 0 {
		t.Fatal("NUS trace has no multi-node classroom sessions")
	}
}

func TestNUSNoWeekendSessions(t *testing.T) {
	tr, err := NUS(DefaultNUS())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Sessions {
		if wd := s.Start.Day() % 7; wd >= 5 {
			t.Fatalf("session on weekend day %d", s.Start.Day())
		}
	}
}

func TestNUSCliquesDoNotOverlap(t *testing.T) {
	// A student must never be in two simultaneous sessions — this is the
	// paper's stated property of the NUS trace.
	tr, err := NUS(DefaultNUS())
	if err != nil {
		t.Fatal(err)
	}
	type slotKey struct {
		start simtime.Time
		node  trace.NodeID
	}
	seen := make(map[slotKey]bool)
	for _, s := range tr.Sessions {
		for _, n := range s.Nodes {
			k := slotKey{start: s.Start, node: n}
			if seen[k] {
				t.Fatalf("node %d in two sessions starting at %v", n, s.Start)
			}
			seen[k] = true
		}
	}
}

func TestNUSAttendanceThinsSessions(t *testing.T) {
	full := DefaultNUS()
	full.Attendance = 1
	thin := DefaultNUS()
	thin.Attendance = 0.5
	trFull, err := NUS(full)
	if err != nil {
		t.Fatal(err)
	}
	trThin, err := NUS(thin)
	if err != nil {
		t.Fatal(err)
	}
	sumNodes := func(tr *trace.Trace) int {
		total := 0
		for _, s := range tr.Sessions {
			total += len(s.Nodes)
		}
		return total
	}
	if sumNodes(trThin) >= sumNodes(trFull) {
		t.Fatalf("attendance 0.5 (%d attendances) not thinner than 1.0 (%d)",
			sumNodes(trThin), sumNodes(trFull))
	}
}

func TestNUSZeroAttendanceEmpty(t *testing.T) {
	cfg := DefaultNUS()
	cfg.Attendance = 0
	tr, err := NUS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != 0 {
		t.Fatalf("attendance 0 produced %d sessions", len(tr.Sessions))
	}
}

func TestNUSDeterministic(t *testing.T) {
	a, err := NUS(DefaultNUS())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NUS(DefaultNUS())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		if a.Sessions[i].Start != b.Sessions[i].Start ||
			len(a.Sessions[i].Nodes) != len(b.Sessions[i].Nodes) {
			t.Fatalf("session %d differs between identical runs", i)
		}
	}
}

func TestNUSWeeklyRepetition(t *testing.T) {
	// With full attendance, week 2 repeats week 1's schedule exactly.
	cfg := DefaultNUS()
	cfg.Attendance = 1
	cfg.Days = 14
	tr, err := NUS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byStart := make(map[simtime.Time]int)
	for _, s := range tr.Sessions {
		byStart[s.Start]++
	}
	for start, count := range byStart {
		if start.Day() >= 7 {
			continue
		}
		other := start.Add(7 * simtime.Day)
		if byStart[other] != count {
			t.Fatalf("week 2 slot %v has %d sessions, week 1 had %d",
				other, byStart[other], count)
		}
	}
}

func TestNUSFrequentContactsExist(t *testing.T) {
	cfg := DefaultNUS()
	cfg.Attendance = 1
	tr, err := NUS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's NUS rule: contacts at least once per day. Not every pair
	// qualifies, but classmates sharing several courses should.
	freq := trace.NewStats(tr).FrequentContacts(0.5)
	if len(freq) == 0 {
		t.Fatal("no frequent contacts at 0.5/day in a full-attendance NUS trace")
	}
}

func TestNUSConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*NUSConfig)
	}{
		{"zero students", func(c *NUSConfig) { c.Students = 0 }},
		{"one student", func(c *NUSConfig) { c.Students = 1 }},
		{"zero classes", func(c *NUSConfig) { c.Classes = 0 }},
		{"enroll exceeds classes", func(c *NUSConfig) { c.EnrollPerStudent = c.Classes + 1 }},
		{"zero meetings", func(c *NUSConfig) { c.MeetingsPerWeek = 0 }},
		{"meetings exceed slots", func(c *NUSConfig) { c.MeetingsPerWeek = 5*c.SlotsPerDay + 1 }},
		{"zero slots", func(c *NUSConfig) { c.SlotsPerDay = 0 }},
		{"zero slot length", func(c *NUSConfig) { c.SlotLength = 0 }},
		{"slots overflow day", func(c *NUSConfig) { c.SlotsPerDay = 9; c.SlotLength = 2 * simtime.Hour }},
		{"zero days", func(c *NUSConfig) { c.Days = 0 }},
		{"attendance below 0", func(c *NUSConfig) { c.Attendance = -0.1 }},
		{"attendance above 1", func(c *NUSConfig) { c.Attendance = 1.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultNUS()
			tt.mutate(&cfg)
			if _, err := NUS(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestUniformValid(t *testing.T) {
	tr, err := Uniform(DefaultUniform())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != DefaultUniform().Sessions {
		t.Fatalf("sessions = %d, want %d", len(tr.Sessions), DefaultUniform().Sessions)
	}
}

func TestUniformPropertyAlwaysValid(t *testing.T) {
	f := func(seed uint64, nodes, sessions uint8) bool {
		cfg := UniformConfig{
			Nodes:           2 + int(nodes%50),
			Sessions:        int(sessions % 100),
			MaxSessionNodes: 2,
			Days:            3,
			MeanDuration:    time30s,
			Seed:            seed,
		}
		if cfg.MaxSessionNodes > cfg.Nodes {
			cfg.MaxSessionNodes = cfg.Nodes
		}
		tr, err := Uniform(cfg)
		if err != nil {
			return false
		}
		return tr.Validate() == nil && len(tr.Sessions) == cfg.Sessions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

const time30s = 30 * simtime.Second

func TestUniformConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*UniformConfig)
	}{
		{"zero nodes", func(c *UniformConfig) { c.Nodes = 0 }},
		{"one node", func(c *UniformConfig) { c.Nodes = 1 }},
		{"negative sessions", func(c *UniformConfig) { c.Sessions = -1 }},
		{"max below 2", func(c *UniformConfig) { c.MaxSessionNodes = 1 }},
		{"max above nodes", func(c *UniformConfig) { c.MaxSessionNodes = c.Nodes + 1 }},
		{"zero days", func(c *UniformConfig) { c.Days = 0 }},
		{"zero duration", func(c *UniformConfig) { c.MeanDuration = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultUniform()
			tt.mutate(&cfg)
			if _, err := Uniform(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestSortInts(t *testing.T) {
	v := []int{5, 2, 9, 1, 2}
	sortInts(v)
	want := []int{1, 2, 2, 5, 9}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("sortInts = %v", v)
		}
	}
}
