// Package tracegen generates synthetic DTN contact traces.
//
// The paper evaluates on the real UMassDieselNet bus trace and on the NUS
// student contact trace derived from campus class schedules. Neither
// dataset ships with this repository, so the package generates synthetic
// traces that preserve the structural properties the protocols depend on:
//
//   - DieselNet-style traces contain exclusively pairwise contacts between
//     buses, sparse and short, with route structure that makes some pairs
//     meet far more often than others (the basis of frequent-contact
//     detection, "at least every three days").
//   - NUS-style traces contain classroom sessions: every student attending
//     the same class meeting forms one communication clique, and cliques
//     never overlap because a student sits in at most one classroom per
//     slot. An attendance-rate knob thins sessions (Figure 3(f)).
//
// All generators are deterministic functions of their seed.
package tracegen

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// ErrConfig reports an invalid generator configuration.
var ErrConfig = errors.New("tracegen: invalid config")

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's method, adequate for the small means used here.
func poisson(r *rng.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// clampDuration bounds d to [min, max].
func clampDuration(d, min, max simtime.Duration) simtime.Duration {
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

func validatePositive(field string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s = %d must be positive: %w", field, v, ErrConfig)
	}
	return nil
}
