// Package testutil holds helpers shared by the live-stack test suites:
// goroutine-leak assertions for anything that spawns daemons, and a
// race-detector probe so swarm-scale tests can size themselves to the
// instrumentation overhead.
package testutil

import (
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// leakSlack tolerates runtime-owned goroutines that come and go outside
// the test's control (finalizer, pprof, timer goroutines).
const leakSlack = 3

// NoLeaks snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not returned to the snapshot (plus a
// small slack) by the deadline. Teardown is asynchronous everywhere in
// the live stack — conns close, session pumps notice, managers join —
// so the check retries instead of sampling once.
//
// Call it first in any test that starts daemons, managers, or swarms:
//
//	func TestX(t *testing.T) {
//		defer testutil.NoLeaks(t)()
//		...
//	}
//
// The returned func is the check itself, so it can also be invoked
// eagerly mid-test (e.g. between scenario phases).
func NoLeaks(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var sb strings.Builder
		if err := pprof.Lookup("goroutine").WriteTo(&sb, 1); err == nil {
			t.Logf("goroutine profile at leak detection:\n%s", sb.String())
		}
		t.Errorf("goroutine leak: %d running at teardown, %d at start (slack %d)",
			now, before, leakSlack)
	}
}
