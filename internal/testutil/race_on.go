//go:build race

package testutil

// RaceEnabled reports whether the race detector instruments this build.
// Swarm-scale tests use it to shrink populations: the detector's memory
// and scheduling overhead makes a literal thousand-node boot more of a
// detector stress test than a protocol one.
const RaceEnabled = true
