// Package credit implements the tit-for-tat credit mechanism of §IV-B and
// §V-B: each node u maintains a credit value for every other node v,
// proportional to the useful data u received from v. When u decides what
// to broadcast, it weighs each candidate item by the summed credit of the
// nodes requesting it, so contributors receive their desired data earlier
// while free-riders' requests carry little weight.
package credit

import "repro/internal/trace"

// RequestedReward is the credit granted for delivering an item the
// receiver had requested (the paper's example value: 5).
const RequestedReward = 5.0

// Ledger tracks the credit one node assigns to its peers. The zero value
// is not usable; construct with NewLedger.
type Ledger struct {
	credits map[trace.NodeID]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{credits: make(map[trace.NodeID]float64)}
}

// Credit returns the current credit of peer. Unknown peers have zero
// credit.
func (l *Ledger) Credit(peer trace.NodeID) float64 { return l.credits[peer] }

// RewardRequested credits peer for delivering an item this node had
// requested (+RequestedReward).
func (l *Ledger) RewardRequested(peer trace.NodeID) {
	l.credits[peer] += RequestedReward
}

// RewardUnrequested credits peer for delivering a new item this node had
// not requested; the reward equals the item's global popularity, so
// pushing popular content still earns standing.
func (l *Ledger) RewardUnrequested(peer trace.NodeID, popularity float64) {
	if popularity < 0 {
		popularity = 0
	}
	l.credits[peer] += popularity
}

// Add applies a raw credit delta — the restart path replaying a
// persisted ledger. Live rewards go through the Reward helpers.
func (l *Ledger) Add(peer trace.NodeID, delta float64) {
	l.credits[peer] += delta
}

// WeightRequest returns the weight of a request set: the summed credit of
// the requesting nodes. Requests from zero-credit peers weigh zero.
func (l *Ledger) WeightRequest(requesters []trace.NodeID) float64 {
	total := 0.0
	for _, p := range requesters {
		total += l.credits[p]
	}
	return total
}

// Peers returns the number of peers with recorded credit.
func (l *Ledger) Peers() int { return len(l.credits) }

// Snapshot returns a copy of the credit table for inspection.
func (l *Ledger) Snapshot() map[trace.NodeID]float64 {
	out := make(map[trace.NodeID]float64, len(l.credits))
	for k, v := range l.credits {
		out[k] = v
	}
	return out
}
