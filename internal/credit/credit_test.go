package credit

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestZeroCreditForUnknownPeer(t *testing.T) {
	l := NewLedger()
	if got := l.Credit(3); got != 0 {
		t.Fatalf("Credit(3) = %v, want 0", got)
	}
	if l.Peers() != 0 {
		t.Fatalf("Peers = %d, want 0", l.Peers())
	}
}

func TestRewardRequested(t *testing.T) {
	l := NewLedger()
	l.RewardRequested(1)
	l.RewardRequested(1)
	if got := l.Credit(1); got != 2*RequestedReward {
		t.Fatalf("Credit = %v, want %v", got, 2*RequestedReward)
	}
}

func TestRewardUnrequestedUsesPopularity(t *testing.T) {
	l := NewLedger()
	l.RewardUnrequested(2, 0.3)
	l.RewardUnrequested(2, 0.2)
	if got := l.Credit(2); got != 0.5 {
		t.Fatalf("Credit = %v, want 0.5", got)
	}
}

func TestRewardUnrequestedClampsNegative(t *testing.T) {
	l := NewLedger()
	l.RewardUnrequested(2, -1)
	if got := l.Credit(2); got != 0 {
		t.Fatalf("negative popularity changed credit: %v", got)
	}
}

func TestRequestedOutweighsUnrequested(t *testing.T) {
	// A requested delivery must always beat an unrequested one, since
	// popularity <= 1 < RequestedReward.
	l := NewLedger()
	l.RewardRequested(1)
	l.RewardUnrequested(2, 1)
	if l.Credit(1) <= l.Credit(2) {
		t.Fatal("requested delivery did not earn more than unrequested")
	}
}

func TestWeightRequest(t *testing.T) {
	l := NewLedger()
	l.RewardRequested(1)        // 5
	l.RewardUnrequested(2, 0.5) // 0.5
	tests := []struct {
		requesters []trace.NodeID
		want       float64
	}{
		{nil, 0},
		{[]trace.NodeID{1}, 5},
		{[]trace.NodeID{1, 2}, 5.5},
		{[]trace.NodeID{3}, 0},
		{[]trace.NodeID{1, 1}, 10}, // duplicates count twice; callers pass sets
	}
	for _, tt := range tests {
		if got := l.WeightRequest(tt.requesters); got != tt.want {
			t.Errorf("WeightRequest(%v) = %v, want %v", tt.requesters, got, tt.want)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewLedger()
	l.RewardRequested(1)
	snap := l.Snapshot()
	snap[1] = 999
	if l.Credit(1) == 999 {
		t.Fatal("snapshot aliases ledger state")
	}
}

func TestCreditMonotonicProperty(t *testing.T) {
	// Credits never decrease: every reward keeps each peer's credit
	// non-decreasing.
	f := func(events []bool, pops []float64) bool {
		l := NewLedger()
		prev := 0.0
		for i, requested := range events {
			if requested {
				l.RewardRequested(7)
			} else {
				p := 0.5
				if i < len(pops) {
					p = pops[i]
				}
				l.RewardUnrequested(7, p)
			}
			cur := l.Credit(7)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
