// Package choke implements the paper's footnote future-work item (§IV-B,
// footnote 1): "Peers can still be choked if encryption is used."
//
// On a broadcast medium a free-rider overhears every transmission, so the
// credit mechanism alone can only delay it, never exclude it. With
// encryption the sender broadcasts ciphertext and hands the content key
// only to peers it does not choke — peers whose credit meets a threshold
// (or who are bootstrapping, see the optimistic unchoke below). Choked
// peers receive bytes they cannot use.
//
// The scheme is deliberately simple and stdlib-only: each broadcast is
// encrypted with a fresh per-message key using a SHA-256-based keystream
// (CTR-style), and the key is delivered per-receiver. The cryptography
// models the mechanism faithfully for simulation; a deployment would use
// AEAD and a real key exchange.
package choke

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/credit"
	"repro/internal/trace"
)

// Key is a symmetric content key.
type Key [32]byte

// NewKey derives a fresh per-message key from a seed and a message
// counter (deterministic for reproducible simulations).
func NewKey(seed []byte, counter uint64) Key {
	mac := hmac.New(sha256.New, seed)
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	mac.Write(c[:])
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// keystreamBlock derives 32 keystream bytes for a block index.
func keystreamBlock(k Key, block uint64) [sha256.Size]byte {
	var buf [sha256.Size + 8]byte
	copy(buf[:], k[:])
	binary.BigEndian.PutUint64(buf[sha256.Size:], block)
	return sha256.Sum256(buf[:])
}

// Encrypt XORs data with the key's keystream. Encrypt and Decrypt are the
// same operation.
func Encrypt(k Key, data []byte) []byte {
	out := make([]byte, len(data))
	for i := 0; i < len(data); i += sha256.Size {
		ks := keystreamBlock(k, uint64(i/sha256.Size))
		for j := 0; j < sha256.Size && i+j < len(data); j++ {
			out[i+j] = data[i+j] ^ ks[j]
		}
	}
	return out
}

// Decrypt reverses Encrypt.
func Decrypt(k Key, data []byte) []byte { return Encrypt(k, data) }

// Policy decides which peers are unchoked (receive content keys).
type Policy struct {
	// MinCredit is the credit a peer needs to be unchoked.
	MinCredit float64
	// OptimisticEvery unchokes one zero-credit peer every n-th decision
	// round (0 disables). BitTorrent's optimistic unchoke: without it,
	// newcomers can never earn their first credit.
	OptimisticEvery int

	rounds int
}

// Unchoked returns the subset of peers that receive the content key,
// judged by the sender's ledger. The optimistic slot (when due) goes to
// the lowest-ID peer below the threshold, so every newcomer is
// eventually bootstrapped.
func (p *Policy) Unchoked(ledger *credit.Ledger, peers []trace.NodeID) []trace.NodeID {
	p.rounds++
	var out []trace.NodeID
	var choked []trace.NodeID
	for _, peer := range peers {
		if ledger.Credit(peer) >= p.MinCredit {
			out = append(out, peer)
		} else {
			choked = append(choked, peer)
		}
	}
	if p.OptimisticEvery > 0 && len(choked) > 0 && p.rounds%p.OptimisticEvery == 0 {
		min := choked[0]
		for _, peer := range choked[1:] {
			if peer < min {
				min = peer
			}
		}
		out = append(out, min)
	}
	return out
}

// Broadcast models one encrypted transmission: ciphertext everyone hears
// plus the key delivered to the unchoked set.
type Broadcast struct {
	Ciphertext []byte
	// KeyFor maps unchoked receivers to the content key.
	KeyFor map[trace.NodeID]Key
}

// Seal encrypts data and issues the key to the unchoked receivers.
func Seal(k Key, data []byte, unchoked []trace.NodeID) *Broadcast {
	b := &Broadcast{
		Ciphertext: Encrypt(k, data),
		KeyFor:     make(map[trace.NodeID]Key, len(unchoked)),
	}
	for _, id := range unchoked {
		b.KeyFor[id] = k
	}
	return b
}

// Open returns the plaintext for a receiver, or (nil, false) if the
// receiver was choked.
func (b *Broadcast) Open(receiver trace.NodeID) ([]byte, bool) {
	k, ok := b.KeyFor[receiver]
	if !ok {
		return nil, false
	}
	return Decrypt(k, b.Ciphertext), true
}
