package choke

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/credit"
	"repro/internal/trace"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := NewKey([]byte("seed"), 1)
	data := []byte("the quick brown fox jumps over the lazy dog, twice over")
	ct := Encrypt(k, data)
	if bytes.Equal(ct, data) {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := Decrypt(k, ct); !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %q", got)
	}
}

func TestWrongKeyGarbles(t *testing.T) {
	data := []byte("secret content")
	ct := Encrypt(NewKey([]byte("seed"), 1), data)
	if got := Decrypt(NewKey([]byte("seed"), 2), ct); bytes.Equal(got, data) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestKeysDifferPerCounter(t *testing.T) {
	a := NewKey([]byte("s"), 1)
	b := NewKey([]byte("s"), 2)
	if a == b {
		t.Fatal("counter does not vary the key")
	}
	c := NewKey([]byte("other"), 1)
	if a == c {
		t.Fatal("seed does not vary the key")
	}
}

func TestEncryptRoundTripProperty(t *testing.T) {
	f := func(seed []byte, counter uint64, data []byte) bool {
		k := NewKey(seed, counter)
		return bytes.Equal(Decrypt(k, Encrypt(k, data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDataRoundTrip(t *testing.T) {
	k := NewKey([]byte("s"), 0)
	if got := Encrypt(k, nil); len(got) != 0 {
		t.Fatalf("Encrypt(nil) = %v", got)
	}
}

func TestPolicyThreshold(t *testing.T) {
	ledger := credit.NewLedger()
	ledger.RewardRequested(1) // credit 5
	p := &Policy{MinCredit: 1}
	got := p.Unchoked(ledger, []trace.NodeID{1, 2, 3})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Unchoked = %v, want [1]", got)
	}
}

func TestPolicyOptimisticUnchoke(t *testing.T) {
	ledger := credit.NewLedger()
	p := &Policy{MinCredit: 1, OptimisticEvery: 3}
	peers := []trace.NodeID{5, 2, 9}
	var optimistic int
	for round := 1; round <= 9; round++ {
		got := p.Unchoked(ledger, peers)
		if round%3 == 0 {
			if len(got) != 1 || got[0] != 2 {
				t.Fatalf("round %d: optimistic slot = %v, want lowest ID 2", round, got)
			}
			optimistic++
		} else if len(got) != 0 {
			t.Fatalf("round %d: unchoked %v without credit", round, got)
		}
	}
	if optimistic != 3 {
		t.Fatalf("optimistic unchokes = %d, want 3", optimistic)
	}
}

func TestPolicyOptimisticDisabled(t *testing.T) {
	ledger := credit.NewLedger()
	p := &Policy{MinCredit: 1}
	for round := 0; round < 10; round++ {
		if got := p.Unchoked(ledger, []trace.NodeID{1}); len(got) != 0 {
			t.Fatalf("unchoked %v with optimism disabled", got)
		}
	}
}

func TestSealAndOpen(t *testing.T) {
	k := NewKey([]byte("s"), 1)
	data := []byte("piece content")
	b := Seal(k, data, []trace.NodeID{1, 3})

	got, ok := b.Open(1)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("unchoked receiver failed to open: %v %v", got, ok)
	}
	if _, ok := b.Open(2); ok {
		t.Fatal("choked receiver opened the broadcast")
	}
	// The choked receiver's view (raw ciphertext) is not the plaintext.
	if bytes.Equal(b.Ciphertext, data) {
		t.Fatal("broadcast carries plaintext")
	}
}

func TestChokedFreeRiderStarvesUntilOptimistic(t *testing.T) {
	// End-to-end: a contributor earns credit and is served; a free-rider
	// only ever gets the optimistic slot.
	sender := credit.NewLedger()
	sender.RewardRequested(1) // peer 1 contributed before

	policy := &Policy{MinCredit: 1, OptimisticEvery: 4}
	data := []byte("content")
	riderOpens, contributorOpens := 0, 0
	for round := 0; round < 8; round++ {
		k := NewKey([]byte("session"), uint64(round))
		unchoked := policy.Unchoked(sender, []trace.NodeID{1, 2})
		b := Seal(k, data, unchoked)
		if _, ok := b.Open(1); ok {
			contributorOpens++
		}
		if _, ok := b.Open(2); ok {
			riderOpens++
		}
	}
	if contributorOpens != 8 {
		t.Fatalf("contributor opened %d/8", contributorOpens)
	}
	if riderOpens != 2 {
		t.Fatalf("free-rider opened %d/8, want only the 2 optimistic slots", riderOpens)
	}
}
