package hello

import (
	"reflect"
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestNeighborsWithinWindow(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1})
	tbl.Observe(simtime.Time(2*simtime.Second), Message{From: 2})

	got := tbl.Neighbors(simtime.Time(3 * simtime.Second))
	want := []trace.NodeID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}

	// At t=6s the hello from node 1 (t=0) is 6s old: expired.
	got = tbl.Neighbors(simtime.Time(6 * simtime.Second))
	want = []trace.NodeID{2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors after expiry = %v, want %v", got, want)
	}
}

func TestWindowBoundaryInclusive(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1})
	if got := tbl.Neighbors(simtime.Time(Window)); len(got) != 1 {
		t.Fatalf("hello exactly Window old must still count, got %v", got)
	}
	if got := tbl.Neighbors(simtime.Time(Window + simtime.Millisecond)); len(got) != 0 {
		t.Fatalf("hello older than Window counted: %v", got)
	}
}

func TestMessageFreshness(t *testing.T) {
	tbl := NewTable()
	msg := Message{From: 3, Queries: []string{"jazz"}}
	tbl.Observe(simtime.Time(simtime.Second), msg)
	got, ok := tbl.Message(simtime.Time(2*simtime.Second), 3)
	if !ok || got.Queries[0] != "jazz" {
		t.Fatalf("Message = %+v, ok=%v", got, ok)
	}
	if _, ok := tbl.Message(simtime.Time(10*simtime.Second), 3); ok {
		t.Fatal("stale message returned")
	}
	if _, ok := tbl.Message(simtime.Time(simtime.Second), 99); ok {
		t.Fatal("unknown peer returned a message")
	}
}

func TestObserveReplacesOlderHello(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1, Queries: []string{"old"}})
	tbl.Observe(simtime.Time(simtime.Second), Message{From: 1, Queries: []string{"new"}})
	got, ok := tbl.Message(simtime.Time(simtime.Second), 1)
	if !ok || got.Queries[0] != "new" {
		t.Fatalf("Message = %+v", got)
	}
}

func TestGraphFullClique(t *testing.T) {
	// Nodes 1 and 2 report hearing each other: 0, 1, 2 form a triangle.
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1, Heard: []trace.NodeID{0, 2}})
	tbl.Observe(0, Message{From: 2, Heard: []trace.NodeID{0, 1}})
	adj := tbl.Graph(simtime.Time(simtime.Second), 0)
	want := map[trace.NodeID][]trace.NodeID{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1},
	}
	if !reflect.DeepEqual(adj, want) {
		t.Fatalf("Graph = %v, want %v", adj, want)
	}
}

func TestGraphAsymmetricHearingIsNotAnEdge(t *testing.T) {
	// 1 hears 2 but 2 does not hear 1: no 1-2 edge.
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1, Heard: []trace.NodeID{0, 2}})
	tbl.Observe(0, Message{From: 2, Heard: []trace.NodeID{0}})
	adj := tbl.Graph(simtime.Time(simtime.Second), 0)
	for _, p := range adj[1] {
		if p == 2 {
			t.Fatal("asymmetric hearing produced an edge")
		}
	}
	if len(adj[0]) != 2 {
		t.Fatalf("self edges = %v, want both neighbours", adj[0])
	}
}

func TestGraphIsolatedSelf(t *testing.T) {
	tbl := NewTable()
	adj := tbl.Graph(0, 7)
	if len(adj) != 1 {
		t.Fatalf("Graph = %v, want lone self entry", adj)
	}
	if _, ok := adj[7]; !ok {
		t.Fatal("self missing from graph")
	}
}

func TestGC(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(0, Message{From: 1})
	tbl.Observe(simtime.Time(10*simtime.Second), Message{From: 2})
	tbl.GC(simtime.Time(10 * simtime.Second))
	if len(tbl.last) != 1 {
		t.Fatalf("GC left %d entries, want 1", len(tbl.last))
	}
	if _, ok := tbl.last[2]; !ok {
		t.Fatal("GC dropped the fresh entry")
	}
}

func TestCustomWindow(t *testing.T) {
	tbl := NewTableWindow(simtime.Minute)
	tbl.Observe(0, Message{From: 1})
	if got := tbl.Neighbors(simtime.Time(30 * simtime.Second)); len(got) != 1 {
		t.Fatalf("custom window ignored: %v", got)
	}
}
