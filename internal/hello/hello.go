// Package hello implements the beacon protocol of §III-B: every node
// broadcasts a hello message at least once per second carrying (a) its
// node ID, (b) the IDs of the nodes it heard hellos from in the past
// 5 seconds, (c) its query strings, and (d) the URIs of the files it is
// downloading. From received hellos each node learns its neighbourhood,
// its neighbours' neighbourhoods (for clique computation), and what its
// neighbours want (for the two-phase send ordering).
package hello

import (
	"sort"

	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Window is how long a heard hello keeps a node in the neighbour set.
const Window = 5 * simtime.Second

// Interval is the maximum beacon spacing.
const Interval = simtime.Second

// Message is one hello beacon.
type Message struct {
	// From is the sender.
	From trace.NodeID
	// Heard lists the nodes the sender received hellos from during the
	// past Window.
	Heard []trace.NodeID
	// Queries are the sender's active query strings.
	Queries []string
	// Downloading lists the files the sender is actively fetching.
	Downloading []metadata.URI
}

// Table accumulates received hellos and answers neighbourhood queries.
// The zero value is not usable; construct with NewTable.
type Table struct {
	window simtime.Duration
	last   map[trace.NodeID]entry
}

type entry struct {
	at  simtime.Time
	msg Message
}

// NewTable returns a table that forgets peers after the standard Window.
func NewTable() *Table { return NewTableWindow(Window) }

// NewTableWindow returns a table with a custom expiry window.
func NewTableWindow(window simtime.Duration) *Table {
	return &Table{window: window, last: make(map[trace.NodeID]entry)}
}

// Observe records a hello received at now.
func (t *Table) Observe(now simtime.Time, msg Message) {
	t.last[msg.From] = entry{at: now, msg: msg}
}

// live reports whether a record received at 'at' is still fresh at now.
func (t *Table) live(at, now simtime.Time) bool {
	return now.Sub(at) <= t.window
}

// Neighbors returns the nodes heard within the window, sorted.
func (t *Table) Neighbors(now simtime.Time) []trace.NodeID {
	var out []trace.NodeID
	for id, e := range t.last {
		if t.live(e.at, now) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Message returns the most recent fresh hello from id.
func (t *Table) Message(now simtime.Time, id trace.NodeID) (Message, bool) {
	e, ok := t.last[id]
	if !ok || !t.live(e.at, now) {
		return Message{}, false
	}
	return e.msg, true
}

// Graph builds the symmetric adjacency known to self at now: self is
// adjacent to each fresh neighbour, and two neighbours are adjacent iff
// each appears in the other's reported Heard list. This is the input to
// maximal-clique computation.
func (t *Table) Graph(now simtime.Time, self trace.NodeID) map[trace.NodeID][]trace.NodeID {
	neighbors := t.Neighbors(now)
	adj := make(map[trace.NodeID][]trace.NodeID, len(neighbors)+1)
	add := func(a, b trace.NodeID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	heardSet := make(map[trace.NodeID]map[trace.NodeID]bool, len(neighbors))
	for _, id := range neighbors {
		msg, _ := t.Message(now, id)
		set := make(map[trace.NodeID]bool, len(msg.Heard))
		for _, h := range msg.Heard {
			set[h] = true
		}
		heardSet[id] = set
	}
	for i, a := range neighbors {
		add(self, a)
		for _, b := range neighbors[i+1:] {
			if heardSet[a][b] && heardSet[b][a] {
				add(a, b)
			}
		}
	}
	for id := range adj {
		peers := adj[id]
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	}
	if len(adj) == 0 {
		adj[self] = nil
	}
	return adj
}

// GC drops expired records; call occasionally to bound memory in long
// simulations.
func (t *Table) GC(now simtime.Time) {
	for id, e := range t.last {
		if !t.live(e.at, now) {
			delete(t.last, id)
		}
	}
}
