// Package workload generates the paper's synthetic file workload (§VI-A):
// every day at 14:00 the Internet publishes n new files, each with a
// time-to-live and a popularity p — the probability that any given node
// is interested in the file. Popularities follow the truncated
// exponential density lambda*e^(-lambda*x) with lambda = n/2, so each
// node generates on average n * (1/lambda) = 2 queries per day. At
// publication time every node decides interest by an independent
// Bernoulli(p) draw; interested nodes add a query for the file.
package workload

import (
	"errors"
	"fmt"

	"repro/internal/metadata"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// File is one published file with its workload attributes.
type File struct {
	// ID is the global catalog index.
	ID metadata.FileID
	// Meta is the signed metadata record describing the file.
	Meta *metadata.Metadata
	// Popularity is the probability each node wants the file. The
	// central server knows it (the paper computes popularity there) and
	// the protocols use it to order transmissions.
	Popularity float64
	// Day is the publication day.
	Day int
}

// QueryFor returns the query string a node interested in the file
// generates. The file name carries a unique token (e.g. "f17"), so the
// query matches exactly the intended file — mirroring the paper's model
// where each query targets one new file.
func QueryFor(f *File) string { return fmt.Sprintf("f%d", f.ID) }

// Config parameterizes the workload.
type Config struct {
	// NewFilesPerDay is n, the daily publication count.
	NewFilesPerDay int
	// TTL is each file's time-to-live.
	TTL simtime.Duration
	// Days is the number of days files are published for.
	Days int
	// PieceSize is the piece length in bytes.
	PieceSize int
	// PiecesPerFile is the file length in pieces.
	PiecesPerFile int
	// Nodes is the node population deciding interest.
	Nodes int
	// ZipfAlpha switches popularity sampling from the paper's truncated
	// exponential to a Zipf law over each day's publication rank with
	// this exponent (0 keeps the paper's model). The day's first file is
	// the head of the distribution.
	ZipfAlpha float64
	// ZipfMax is the head popularity under Zipf (default 0.5).
	ZipfMax float64
	// Seed makes the workload reproducible.
	Seed uint64
}

// DefaultConfig mirrors the paper's defaults at simulation scale. The
// piece size is reduced from the paper's 256 KB so examples can hash real
// content quickly; the protocols only count pieces.
func DefaultConfig(nodes int) Config {
	return Config{
		NewFilesPerDay: 50,
		TTL:            simtime.Days(3),
		Days:           14,
		PieceSize:      4 * 1024,
		PiecesPerFile:  4,
		Nodes:          nodes,
		Seed:           1,
	}
}

// ErrConfig reports an invalid workload configuration.
var ErrConfig = errors.New("workload: invalid config")

func (c Config) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"NewFilesPerDay", c.NewFilesPerDay},
		{"Days", c.Days},
		{"PieceSize", c.PieceSize},
		{"PiecesPerFile", c.PiecesPerFile},
		{"Nodes", c.Nodes},
	} {
		if f.v <= 0 {
			return fmt.Errorf("%s = %d must be positive: %w", f.name, f.v, ErrConfig)
		}
	}
	if c.TTL <= 0 {
		return fmt.Errorf("TTL = %v must be positive: %w", c.TTL, ErrConfig)
	}
	if c.ZipfAlpha < 0 {
		return fmt.Errorf("ZipfAlpha = %v must be non-negative: %w", c.ZipfAlpha, ErrConfig)
	}
	if c.ZipfMax < 0 || c.ZipfMax > 1 {
		return fmt.Errorf("ZipfMax = %v not in [0,1]: %w", c.ZipfMax, ErrConfig)
	}
	return nil
}

// Lambda returns the popularity distribution's rate parameter, n/2.
func (c Config) Lambda() float64 { return float64(c.NewFilesPerDay) / 2 }

// Publisher names cycled through published files.
var publishers = []string{"FOX", "ABC", "NBC", "CBS", "BBC"}

// signingKey is the shared demo key publishers sign synthetic metadata
// with; examples verifying authentication use KeyFor.
func signingKey(publisher string) []byte {
	return []byte("workload-key:" + publisher)
}

// KeyFor exposes the signing key of a publisher so consumers can verify
// metadata authenticity.
func KeyFor(publisher string) []byte { return signingKey(publisher) }

// Generator produces the daily files and interest decisions. Construct
// with NewGenerator; methods are deterministic in (Config, inputs).
type Generator struct {
	cfg   Config
	files []*File // all files for all days, in publication order
}

// NewGenerator precomputes the full catalog for cfg.Days days.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg}
	r := rng.New(cfg.Seed)
	lambda := cfg.Lambda()
	size := int64(cfg.PieceSize) * int64(cfg.PiecesPerFile)
	id := metadata.FileID(0)
	for day := 0; day < cfg.Days; day++ {
		created := simtime.At(day, simtime.FileGenerationOffset)
		for i := 0; i < cfg.NewFilesPerDay; i++ {
			publisher := publishers[int(id)%len(publishers)]
			name := fmt.Sprintf("f%d show-%d episode %d", id, int(id)%7, i)
			desc := fmt.Sprintf("Daily release %d on day %d from %s", i, day, publisher)
			meta := metadata.NewSynthetic(id, name, publisher, desc, size,
				cfg.PieceSize, created, cfg.TTL, signingKey(publisher))
			pop := r.Popularity(lambda)
			if cfg.ZipfAlpha > 0 {
				max := cfg.ZipfMax
				if max == 0 {
					max = 0.5
				}
				pop = rng.ZipfPopularity(i, cfg.ZipfAlpha, max)
			}
			g.files = append(g.files, &File{
				ID:         id,
				Meta:       meta,
				Popularity: pop,
				Day:        day,
			})
			id++
		}
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Files returns the complete catalog in publication order. The slice is
// shared; callers must not mutate it.
func (g *Generator) Files() []*File { return g.files }

// FilesForDay returns the files published on the given day.
func (g *Generator) FilesForDay(day int) []*File {
	if day < 0 || day >= g.cfg.Days {
		return nil
	}
	start := day * g.cfg.NewFilesPerDay
	return g.files[start : start+g.cfg.NewFilesPerDay]
}

// File returns the file with the given ID, or nil if unknown.
func (g *Generator) File(id metadata.FileID) *File {
	if id < 0 || int(id) >= len(g.files) {
		return nil
	}
	return g.files[id]
}

// ByURI returns the file with the given URI, or nil if unknown.
func (g *Generator) ByURI(uri metadata.URI) *File {
	for _, f := range g.files {
		if f.Meta.URI == uri {
			return f
		}
	}
	return nil
}

// Interested reports whether node wants the file: an independent
// Bernoulli(popularity) draw, deterministic per (seed, node, file).
func (g *Generator) Interested(node int, f *File) bool {
	h := g.cfg.Seed
	h ^= uint64(node)*0x9e3779b97f4a7c15 + 0x1234
	h ^= uint64(f.ID) * 0xbf58476d1ce4e5b9
	return rng.New(h).Float64() < f.Popularity
}

// QueriesForNode returns the queries node generates on day, one per new
// file it is interested in.
func (g *Generator) QueriesForNode(node, day int) []string {
	var out []string
	for _, f := range g.FilesForDay(day) {
		if g.Interested(node, f) {
			out = append(out, QueryFor(f))
		}
	}
	return out
}
