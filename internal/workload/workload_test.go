package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metadata"
	"repro/internal/simtime"
)

func testConfig() Config {
	cfg := DefaultConfig(20)
	cfg.Days = 3
	cfg.NewFilesPerDay = 10
	return cfg
}

func TestGeneratorCatalog(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Files()); got != 30 {
		t.Fatalf("catalog size = %d, want 30", got)
	}
	for i, f := range g.Files() {
		if int(f.ID) != i {
			t.Fatalf("file %d has ID %d", i, f.ID)
		}
		if f.Popularity < 0 || f.Popularity > 1 {
			t.Fatalf("file %d popularity %v out of range", i, f.Popularity)
		}
		if err := f.Meta.Validate(); err != nil {
			t.Fatalf("file %d metadata invalid: %v", i, err)
		}
		if f.Day != i/10 {
			t.Fatalf("file %d day = %d, want %d", i, f.Day, i/10)
		}
	}
}

func TestFilesPublishedAt2PM(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Files() {
		if f.Meta.Created.DayOffset() != simtime.FileGenerationOffset {
			t.Fatalf("file %d created at %v, want 14:00", f.ID, f.Meta.Created)
		}
		if f.Meta.Created.Day() != f.Day {
			t.Fatalf("file %d created on day %d, want %d", f.ID, f.Meta.Created.Day(), f.Day)
		}
	}
}

func TestTTLApplied(t *testing.T) {
	cfg := testConfig()
	cfg.TTL = simtime.Days(2)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := g.Files()[0]
	if got := f.Meta.Expires.Sub(f.Meta.Created); got != simtime.Days(2) {
		t.Fatalf("TTL = %v, want 2 days", got)
	}
}

func TestFilesForDay(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	day1 := g.FilesForDay(1)
	if len(day1) != 10 {
		t.Fatalf("day 1 files = %d, want 10", len(day1))
	}
	for _, f := range day1 {
		if f.Day != 1 {
			t.Fatalf("file %d in day-1 slice has Day %d", f.ID, f.Day)
		}
	}
	if g.FilesForDay(-1) != nil || g.FilesForDay(3) != nil {
		t.Fatal("out-of-range day returned files")
	}
}

func TestFileAndByURI(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := g.File(5)
	if f == nil || f.ID != 5 {
		t.Fatalf("File(5) = %+v", f)
	}
	if g.File(-1) != nil || g.File(9999) != nil {
		t.Fatal("out-of-range ID returned a file")
	}
	if got := g.ByURI(f.Meta.URI); got != f {
		t.Fatalf("ByURI = %+v", got)
	}
	if g.ByURI("dtn://files/404404") != nil {
		t.Fatal("unknown URI returned a file")
	}
}

func TestQueryMatchesExactlyItsFile(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Files() {
		q := QueryFor(f)
		if !f.Meta.MatchesQuery(q) {
			t.Fatalf("file %d does not match its own query %q", f.ID, q)
		}
		matches := 0
		for _, other := range g.Files() {
			if other.Meta.MatchesQuery(q) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("query %q matches %d files, want 1", q, matches)
		}
	}
}

func TestInterestedDeterministic(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := g.Files()[0]
	a := g.Interested(3, f)
	for i := 0; i < 10; i++ {
		if g.Interested(3, f) != a {
			t.Fatal("Interested not deterministic")
		}
	}
}

func TestInterestedTracksPopularity(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 2000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.Files()[:5] {
		hits := 0
		for node := 0; node < cfg.Nodes; node++ {
			if g.Interested(node, f) {
				hits++
			}
		}
		got := float64(hits) / float64(cfg.Nodes)
		if math.Abs(got-f.Popularity) > 0.05 {
			t.Fatalf("file %d: interest rate %v vs popularity %v", f.ID, got, f.Popularity)
		}
	}
}

func TestMeanQueriesPerNodePerDayApprox2(t *testing.T) {
	// The paper chooses lambda = n/2 so that nodes average ~2 queries/day.
	cfg := DefaultConfig(300)
	cfg.Days = 2
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for node := 0; node < cfg.Nodes; node++ {
		for day := 0; day < cfg.Days; day++ {
			total += len(g.QueriesForNode(node, day))
		}
	}
	perNodeDay := float64(total) / float64(cfg.Nodes*cfg.Days)
	if perNodeDay < 1.4 || perNodeDay > 2.6 {
		t.Fatalf("queries per node-day = %v, want ~2", perNodeDay)
	}
}

func TestMetadataSigned(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := g.Files()[0]
	if !f.Meta.Verify(KeyFor(f.Meta.Publisher)) {
		t.Fatal("published metadata fails verification under publisher key")
	}
	if f.Meta.Verify(KeyFor("EVIL")) {
		t.Fatal("metadata verifies under wrong publisher key")
	}
}

func TestUniqueNames(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, f := range g.Files() {
		if seen[f.Meta.Name] {
			t.Fatalf("duplicate file name %q", f.Meta.Name)
		}
		seen[f.Meta.Name] = true
		if !strings.HasPrefix(f.Meta.Name, "f") {
			t.Fatalf("name %q missing unique token prefix", f.Meta.Name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"files per day", func(c *Config) { c.NewFilesPerDay = 0 }},
		{"days", func(c *Config) { c.Days = 0 }},
		{"piece size", func(c *Config) { c.PieceSize = 0 }},
		{"pieces per file", func(c *Config) { c.PiecesPerFile = 0 }},
		{"nodes", func(c *Config) { c.Nodes = 0 }},
		{"ttl", func(c *Config) { c.TTL = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if _, err := NewGenerator(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestLambda(t *testing.T) {
	cfg := testConfig()
	if got := cfg.Lambda(); got != 5 {
		t.Fatalf("Lambda = %v, want 5 for 10 files/day", got)
	}
}

func TestDeterministicAcrossGenerators(t *testing.T) {
	a, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Files() {
		fa, fb := a.Files()[i], b.Files()[i]
		if fa.Popularity != fb.Popularity || fa.Meta.Name != fb.Meta.Name {
			t.Fatalf("file %d differs across identical generators", i)
		}
	}
}

func TestPieceVerificationEndToEnd(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := g.Files()[0]
	for i := 0; i < f.Meta.NumPieces(); i++ {
		data := metadata.SyntheticPiece(f.Meta.URI, i, f.Meta.PieceLen(i))
		if !f.Meta.VerifyPiece(i, data) {
			t.Fatalf("piece %d fails verification", i)
		}
	}
}

func TestZipfWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.ZipfAlpha = 1
	cfg.ZipfMax = 0.5
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := g.FilesForDay(0)
	if day[0].Popularity != 0.5 {
		t.Fatalf("head popularity = %v, want 0.5", day[0].Popularity)
	}
	for i := 1; i < len(day); i++ {
		if day[i].Popularity >= day[i-1].Popularity {
			t.Fatalf("popularity not decaying at rank %d", i)
		}
	}
}

func TestZipfDefaultsMax(t *testing.T) {
	cfg := testConfig()
	cfg.ZipfAlpha = 1
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.FilesForDay(0)[0].Popularity != 0.5 {
		t.Fatal("ZipfMax default not applied")
	}
}

func TestZipfConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ZipfAlpha = -1
	if _, err := NewGenerator(cfg); err == nil {
		t.Fatal("negative alpha accepted")
	}
	cfg = testConfig()
	cfg.ZipfMax = 1.5
	if _, err := NewGenerator(cfg); err == nil {
		t.Fatal("ZipfMax 1.5 accepted")
	}
}
