package swarm

import (
	"context"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestServerDeathDHTResolution is the decentralized-discovery
// acceptance gate: with the DHT on, keyword queries issued only after
// the catalog server died must still resolve almost everywhere
// (>= 95%); without it, the same scenario resolves (almost) nothing.
// The DHT run's report is the results/ artifact.
func TestServerDeathDHTResolution(t *testing.T) {
	defer testutil.NoLeaks(t)()
	nodes := 12

	sc := ServerDeath(nodes, 1337)
	sc.Timeout = 90 * time.Second
	rep, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatalf("server-death: %v (resolved %d/%d)", err, rep.PostDeathResolved, rep.PostDeathQueries)
	}
	if rep.PostDeathQueries != nodes-1 {
		t.Fatalf("post-death queries = %d, want %d", rep.PostDeathQueries, nodes-1)
	}
	if rep.PostDeathResolveFraction < 0.95 {
		t.Fatalf("post-death resolution %.3f (%d/%d), want >= 0.95",
			rep.PostDeathResolveFraction, rep.PostDeathResolved, rep.PostDeathQueries)
	}
	if !rep.DHTEnabled || rep.DHTStoresRecv == 0 {
		t.Fatalf("DHT accounting missing from report: %+v", rep)
	}
	if _, err := rep.WriteFile("../../results"); err != nil {
		t.Fatalf("write report: %v", err)
	}
	t.Logf("server-death: %d/%d post-death queries resolved, %d DHT stores received, %d lookups",
		rep.PostDeathResolved, rep.PostDeathQueries, rep.DHTStoresRecv, rep.DHTLookups)

	// The control: no DHT, same script, near-zero resolution — the
	// legacy gossip path only ever spread metadata to nodes that
	// queried it while the server lived.
	base := ServerDeathBaseline(nodes, 1337)
	base.Timeout = 90 * time.Second
	brep, err := RunScenario(context.Background(), base)
	if err != nil {
		t.Fatalf("server-death-baseline: %v", err)
	}
	if brep.PostDeathResolveFraction > 0.05 {
		t.Fatalf("baseline resolved %.3f post-death, expected ~0 — legacy path should not answer",
			brep.PostDeathResolveFraction)
	}
	t.Logf("baseline: %d/%d post-death queries resolved (as expected)",
		brep.PostDeathResolved, brep.PostDeathQueries)
}

// TestFountainScenario drives the coded variant of the steady
// distribution: a full-mesh clique completes over the fountain-coded
// symbol plane and the report carries the symbol counters and the
// piece-equivalent transmissions-per-piece metric into results/.
func TestFountainScenario(t *testing.T) {
	defer testutil.NoLeaks(t)()
	sc := Fountain(5, 21)
	sc.Timeout = 2 * time.Minute
	rep, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatalf("fountain: %v (fraction %.3f)", err, rep.CompletionFraction)
	}
	if rep.CompletionFraction != 1 {
		t.Fatalf("fraction %.3f, want 1", rep.CompletionFraction)
	}
	if !rep.FECEnabled || rep.SymbolsSent == 0 || rep.FECDecodes == 0 {
		t.Fatalf("fountain plane idle: symbols_sent=%d fec_decodes=%d", rep.SymbolsSent, rep.FECDecodes)
	}
	if rep.TransmissionsPerPiece <= 0 {
		t.Fatalf("transmissions per piece = %v, want > 0", rep.TransmissionsPerPiece)
	}
	if _, err := rep.WriteFile("../../results"); err != nil {
		t.Fatalf("write report: %v", err)
	}
	t.Logf("fountain: %.2f piece-equivalent tx/piece, %d symbols sent, %d decodes",
		rep.TransmissionsPerPiece, rep.SymbolsSent, rep.FECDecodes)
}
