package swarm

import (
	"context"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// runSteady runs one steady scenario to full completion and returns its
// report.
func runSteady(t *testing.T, nodes int, seed uint64) Report {
	t.Helper()
	sc := Steady(nodes, seed)
	sc.Timeout = 2 * time.Minute
	rep, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatalf("steady %d nodes: %v (fraction %.3f)", nodes, err, rep.CompletionFraction)
	}
	return rep
}

// TestSwarmSmallDeterminism runs the same seeded distribution twice and
// demands identical completion digests — the outcome-determinism
// contract the big test relies on.
func TestSwarmSmallDeterminism(t *testing.T) {
	defer testutil.NoLeaks(t)()
	a := runSteady(t, 48, 7)
	b := runSteady(t, 48, 7)
	if a.CompletionDigest != b.CompletionDigest {
		t.Fatalf("same seed, different digests: %s vs %s", a.CompletionDigest, b.CompletionDigest)
	}
	if a.CompletionFraction != 1 {
		t.Fatalf("fraction %.3f, want 1", a.CompletionFraction)
	}
	c := runSteady(t, 48, 8)
	if c.CompletionDigest == a.CompletionDigest {
		t.Fatalf("different seeds, same digest %s — digest is not config-sensitive", c.CompletionDigest)
	}
}

// TestSwarm1000Loopback boots the full thousand-node population over
// the loopback transport, drives a seeded distribution to completion,
// and asserts the per-node goroutine and heap budgets. Skipped in short
// mode and under the race detector (TestSwarm200Race covers the
// race-instrumented population).
func TestSwarm1000Loopback(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node swarm skipped in short mode")
	}
	if testutil.RaceEnabled {
		t.Skip("1000-node swarm skipped under race detector; see TestSwarm200Race")
	}
	defer testutil.NoLeaks(t)()

	sc := Steady(1000, 42)
	sc.Timeout = 3 * time.Minute
	h, err := New(sc.Config)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), sc.Timeout)
	defer cancel()
	if err := h.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitFraction(ctx, 1.0); err != nil {
		t.Fatalf("distribution incomplete: %v", err)
	}
	// Budgets are asserted while all thousand nodes still run.
	if err := h.CheckBudget(h.DefaultBudget()); err != nil {
		t.Error(err)
	}
	rep := h.Report("steady-1000")
	if rep.CompletionFraction != 1 {
		t.Fatalf("fraction %.3f, want 1", rep.CompletionFraction)
	}
	if rep.CompletionDigest == "" {
		t.Fatal("empty completion digest")
	}
	if _, err := rep.WriteFile("../../results"); err != nil {
		t.Fatalf("write report: %v", err)
	}
	t.Logf("1000 nodes: %.0fms wall, %.2f tx/piece, %.1f goroutines/node, %.0f heap B/node, digest %s",
		rep.WallMs, rep.TransmissionsPerPiece, rep.GoroutinesPerNode, rep.HeapBytesPerNode, rep.CompletionDigest)
}

// TestSwarm200Race is the race-instrumented population: small enough
// that the detector's overhead doesn't swamp CI, large enough to shake
// out cross-node races in the shared loopback and fan-out paths.
func TestSwarm200Race(t *testing.T) {
	if !testutil.RaceEnabled {
		t.Skip("covered by TestSwarm1000Loopback without the race detector")
	}
	if testing.Short() {
		t.Skip("200-node swarm skipped in short mode")
	}
	defer testutil.NoLeaks(t)()
	rep := runSteady(t, 200, 42)
	t.Logf("200 nodes under race: %.0fms wall, %.2f tx/piece", rep.WallMs, rep.TransmissionsPerPiece)
}

// TestSwarmAvailability drives the scripted-churn scenario family at CI
// scale and emits each scenario's metrics record into results/. Every
// scenario must reach full completion — the availability claim under
// test is that the cooperative swarm absorbs the shock, not merely
// survives it.
func TestSwarmAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("availability scenarios skipped in short mode")
	}
	nodes := 96
	if testutil.RaceEnabled {
		nodes = 48
	}
	for _, name := range []string{"seeder-death", "flash-crowd", "mobility", "staggered-join", "diurnal"} {
		name := name
		t.Run(name, func(t *testing.T) {
			defer testutil.NoLeaks(t)()
			sc, err := BuildScenario(name, nodes, 1337)
			if err != nil {
				t.Fatal(err)
			}
			sc.Timeout = 2 * time.Minute
			rep, err := RunScenario(context.Background(), sc)
			if err != nil {
				t.Fatalf("%s: %v (fraction %.3f, coverage %.3f)",
					name, err, rep.CompletionFraction, rep.CoverageFraction)
			}
			if rep.CompletionFraction != 1 {
				t.Fatalf("%s: fraction %.3f, want 1", name, rep.CompletionFraction)
			}
			if name == "seeder-death" && rep.SurvivalMs >= 0 {
				t.Errorf("seeder-death: file became unreconstructable %.0fms after the kill", rep.SurvivalMs)
			}
			if _, err := rep.WriteFile("../../results"); err != nil {
				t.Fatalf("write report: %v", err)
			}
			t.Logf("%s: %d nodes, %.0fms wall, %.2f tx/piece, credit σ %.1f",
				name, nodes, rep.WallMs, rep.TransmissionsPerPiece, rep.CreditStddev)
		})
	}
}

// TestSwarmKillResume exercises the Kill/Join resume path directly: a
// downloader dies mid-swarm and a fresh daemon on the same identity
// finishes the job.
func TestSwarmKillResume(t *testing.T) {
	defer testutil.NoLeaks(t)()
	h, err := New(Config{Nodes: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := h.Start(ctx); err != nil {
		t.Fatal(err)
	}
	victim := trace.NodeID(7)
	if err := h.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if got := h.Running(); got != 11 {
		t.Fatalf("running %d, want 11", got)
	}
	if err := h.Join(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitFraction(ctx, 1.0); err != nil {
		t.Fatalf("swarm never completed after resume: %v", err)
	}
}

// TestSwarmConfigValidation pins the constructor's error surface.
func TestSwarmConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1}); err == nil {
		t.Error("1-node swarm accepted")
	}
	if _, err := New(Config{Nodes: 4, Seeders: 4}); err == nil {
		t.Error("all-seeder swarm accepted")
	}
	if _, err := BuildScenario("no-such", 10, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestSwarmOverload is the flash-crowd-overload acceptance run: the
// overload scenario's flood must be shed and answered with Busy, the
// victim's health must walk degraded→recovered, legitimate downloads
// must all land, and no control-class frame may be dropped anywhere —
// the class-aware outbox sheds data first, and at this scale it never
// needs to go further. Emits results/swarm_overload.json.
func TestSwarmOverload(t *testing.T) {
	defer testutil.NoLeaks(t)()
	nodes := 24
	sc, err := BuildScenario("overload", nodes, 1337)
	if err != nil {
		t.Fatal(err)
	}
	sc.Timeout = 2 * time.Minute
	rep, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatalf("overload: %v (fraction %.3f)", err, rep.CompletionFraction)
	}
	if rep.CompletionFraction != 1 {
		t.Fatalf("fraction %.3f, want 1: the flood must not starve legitimate peers", rep.CompletionFraction)
	}
	if rep.InboundShed == 0 {
		t.Fatal("no inbound messages shed despite a 10× flood")
	}
	if rep.BusyReplies == 0 {
		t.Fatal("no Busy replies sent")
	}
	if rep.FloodSent == 0 || rep.FloodBusySeen == 0 {
		t.Fatalf("flood probe saw sent=%d busy=%d, want both > 0", rep.FloodSent, rep.FloodBusySeen)
	}
	if !rep.OverloadDegraded || !rep.OverloadRecovered {
		t.Fatalf("healthz walk degraded=%v recovered=%v, want true/true", rep.OverloadDegraded, rep.OverloadRecovered)
	}
	if rep.OutboxDropsControl != 0 {
		t.Fatalf("%d control-class frames dropped; control must never shed before data", rep.OutboxDropsControl)
	}
	if _, err := rep.WriteFile("../../results"); err != nil {
		t.Fatalf("write report: %v", err)
	}
	t.Logf("overload: %d nodes, %.0fms wall, shed %d, busy %d, flood %d/%d",
		nodes, rep.WallMs, rep.InboundShed, rep.BusyReplies, rep.FloodBusySeen, rep.FloodSent)
}
