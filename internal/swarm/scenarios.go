package swarm

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/metadata"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Report is the per-scenario metrics record the availability tests and
// the mbtswarm CLI emit into results/.
type Report struct {
	Scenario    string `json:"scenario"`
	Nodes       int    `json:"nodes"`
	Seeders     int    `json:"seeders"`
	Downloaders int    `json:"downloaders"`
	Files       int    `json:"files"`
	Pieces      int    `json:"pieces_per_file"`
	Degree      int    `json:"degree"`
	Seed        uint64 `json:"seed"`

	WallMs             float64 `json:"wall_ms"`
	Completions        int     `json:"completions"`
	CompletionFraction float64 `json:"completion_fraction"`
	FirstCompletionMs  float64 `json:"first_completion_ms,omitempty"`
	LastCompletionMs   float64 `json:"last_completion_ms,omitempty"`
	CompletionDigest   string  `json:"completion_digest"`

	// SurvivalMs is how long the scenario's file-of-interest stayed
	// fully reconstructable from live nodes after the availability shock
	// (seeder death, partition onset). -1 means no shock was scripted or
	// the file survived to the end of the run.
	SurvivalMs float64 `json:"survival_ms"`
	// CoverageFraction is pieces covered by live nodes over pieces
	// total, for the file of interest, at scenario end.
	CoverageFraction float64 `json:"coverage_fraction"`

	PiecesSent            uint64  `json:"pieces_sent"`
	PiecesVerified        uint64  `json:"pieces_verified"`
	PiecesDuplicate       uint64  `json:"pieces_duplicate"`
	PiecesResent          uint64  `json:"pieces_resent"`
	HellosSent            uint64  `json:"hellos_sent"`
	PeersRejected         uint64  `json:"peers_rejected"`
	OutboxDrops           uint64  `json:"outbox_drops"`
	OutboxDropsControl    uint64  `json:"outbox_drops_control"`
	OutboxDropsData       uint64  `json:"outbox_drops_data"`
	TransmissionsPerPiece float64 `json:"transmissions_per_piece"`

	// Overload-protection accounting (Config.PeerRate and the overload
	// scenario): inbound messages shed by admission control, Busy frames
	// sent back, catalog queries refused, plus the flood probe's view —
	// hellos the flooder pushed, Busy frames it got, and whether the
	// victim's /healthz walked degraded→recovered.
	InboundShed       uint64 `json:"inbound_shed,omitempty"`
	BusyReplies       uint64 `json:"busy_replies,omitempty"`
	QueriesShed       uint64 `json:"queries_shed,omitempty"`
	FloodSent         uint64 `json:"flood_sent,omitempty"`
	FloodBusySeen     uint64 `json:"flood_busy_seen,omitempty"`
	OverloadDegraded  bool   `json:"overload_degraded,omitempty"`
	OverloadRecovered bool   `json:"overload_recovered,omitempty"`

	CreditMean   float64 `json:"credit_mean"`
	CreditStddev float64 `json:"credit_stddev"`

	// Decentralized-index accounting (Config.EnableDHT).
	DHTEnabled    bool   `json:"dht_enabled"`
	DHTLookups    uint64 `json:"dht_lookups,omitempty"`
	DHTLookupHits uint64 `json:"dht_lookup_hits,omitempty"`
	DHTCacheHits  uint64 `json:"dht_cache_hits,omitempty"`
	DHTStoresSent uint64 `json:"dht_stores_sent,omitempty"`
	DHTStoresRecv uint64 `json:"dht_stores_recv,omitempty"`
	DHTRPCsSent   uint64 `json:"dht_rpcs_sent,omitempty"`
	// Post-shock query resolution (the server-death scenario): queries
	// issued only after the catalog server died, and how many of them
	// resolved to verified metadata within the scenario's window.
	PostDeathQueries         int     `json:"post_death_queries,omitempty"`
	PostDeathResolved        int     `json:"post_death_resolved,omitempty"`
	PostDeathResolveFraction float64 `json:"post_death_resolve_fraction"`

	// Fountain-plane accounting (Config.EnableFEC).
	FECEnabled      bool   `json:"fec_enabled"`
	SymbolsSent     uint64 `json:"symbols_sent,omitempty"`
	SymbolsRecv     uint64 `json:"symbols_recv,omitempty"`
	SymbolsRelayed  uint64 `json:"symbols_relayed,omitempty"`
	FECDecodes      uint64 `json:"fec_decodes,omitempty"`
	PieceBcastsSent uint64 `json:"piece_bcasts_sent,omitempty"`
	PieceBcastsRecv uint64 `json:"piece_bcasts_recv,omitempty"`

	GoroutinesPerNode float64 `json:"goroutines_per_node"`
	HeapBytesPerNode  float64 `json:"heap_bytes_per_node"`
}

// WriteFile marshals the report into dir (created if missing) as
// swarm_<scenario>.json.
func (r Report) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("swarm_%s.json", r.Scenario))
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Scenario is one scripted availability experiment: a population, a
// churn script, and a completion target.
type Scenario struct {
	Name   string
	Config Config
	// Target is the completion fraction RunScenario waits for after the
	// script returns (0 = don't wait; the script did its own waiting).
	Target float64
	// Timeout bounds the whole run.
	Timeout time.Duration
	// Script runs after Start and drives the churn. Optional.
	Script func(ctx context.Context, h *Harness) error
	// Finish annotates the report (survival times, coverage) before the
	// harness shuts down. Optional.
	Finish func(h *Harness, rep *Report)
}

// RunScenario executes one scenario end to end and returns its report.
// The report is produced even on error, so a timed-out run still shows
// how far it got.
func RunScenario(ctx context.Context, sc Scenario) (Report, error) {
	h, err := New(sc.Config)
	if err != nil {
		return Report{Scenario: sc.Name}, err
	}
	defer h.Shutdown()

	timeout := sc.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	runErr := func() error {
		if err := h.Start(ctx); err != nil {
			return err
		}
		if sc.Script != nil {
			if err := sc.Script(ctx, h); err != nil {
				return err
			}
		}
		if sc.Target > 0 {
			if err := h.WaitFraction(ctx, sc.Target); err != nil {
				return err
			}
		}
		return nil
	}()

	rep := h.Report(sc.Name)
	if sc.Finish != nil {
		sc.Finish(h, &rep)
	}
	return rep, runErr
}

// firstURI is the catalog's first file — the scenarios' file of
// interest for coverage and survival accounting.
func firstURI() metadata.URI { return metadata.URIFor(metadata.FileID(0)) }

// watchSurvival polls the file of interest's coverage until it drops
// below full or ctx ends, and returns a func yielding the survival time
// (ms since watch start; -1 if still fully covered when read).
func watchSurvival(ctx context.Context, h *Harness) func() float64 {
	start := time.Now()
	lost := make(chan float64, 1)
	go func() {
		for {
			covered, total := h.Coverage(firstURI())
			if covered < total {
				lost <- float64(time.Since(start)) / float64(time.Millisecond)
				return
			}
			select {
			case <-time.After(20 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() float64 {
		select {
		case ms := <-lost:
			return ms
		default:
			return -1
		}
	}
}

// Steady: everyone boots at once, one seeder, full completion. The
// baseline the churn scenarios are compared against, and the shape the
// thousand-node determinism test runs.
func Steady(nodes int, seed uint64) Scenario {
	return Scenario{
		Name:   "steady",
		Config: Config{Nodes: nodes, Seed: seed},
		Target: 1.0,
	}
}

// FlashCrowd: a small warm swarm completes first, then the rest of the
// population joins in one burst and must be absorbed — the peer-table
// caps and beacon fan-out are what this leans on.
func FlashCrowd(nodes int, seed uint64) Scenario {
	warm := nodes / 10
	if warm < 4 {
		warm = 4
	}
	cfg := Config{Nodes: nodes, Seed: seed, StartNodes: warm}
	return Scenario{
		Name:   "flash-crowd",
		Config: cfg,
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			// Let the warm set finish before the crowd arrives.
			warmFrac := float64(warm-h.cfg.Seeders) / float64(h.cfg.Nodes-h.cfg.Seeders)
			if err := h.WaitFraction(ctx, warmFrac); err != nil {
				return err
			}
			for i := warm; i < h.cfg.Nodes; i++ {
				if err := h.Join(ctx, trace.NodeID(i)); err != nil {
					return err
				}
			}
			h.logf("swarm: flash crowd of %d joined", h.cfg.Nodes-warm)
			return nil
		},
	}
}

// SeederDeath: the only seeder dies once a quarter of the downloaders
// hold full copies; the swarm must finish from peer copies alone. The
// report's survival time records whether (and when) the file ever
// became unreconstructable from live nodes.
func SeederDeath(nodes int, seed uint64) Scenario {
	var survival func() float64
	return Scenario{
		Name:   "seeder-death",
		Config: Config{Nodes: nodes, Seed: seed},
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			if err := h.WaitFraction(ctx, 0.25); err != nil {
				return err
			}
			if err := h.Kill(0); err != nil {
				return err
			}
			survival = watchSurvival(ctx, h)
			return nil
		},
		Finish: func(h *Harness, rep *Report) {
			if survival != nil {
				rep.SurvivalMs = survival()
			}
		},
	}
}

// StaggeredJoin: the population arrives in waves, each wave attaching
// to an already-converged swarm — the paper's gradual-adoption shape.
func StaggeredJoin(nodes int, seed uint64) Scenario {
	cfg := Config{Nodes: nodes, Seed: seed}
	cfg.StartNodes = nodes/4 + 1
	waves := 3
	return Scenario{
		Name:   "staggered-join",
		Config: cfg,
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			next := cfg.StartNodes
			per := (h.cfg.Nodes - next + waves - 1) / waves
			for next < h.cfg.Nodes {
				// Wait for most of the joined prefix before the next wave.
				joined := float64(next-h.cfg.Seeders) / float64(h.cfg.Nodes-h.cfg.Seeders)
				if err := h.WaitFraction(ctx, 0.8*joined); err != nil {
					return err
				}
				end := next + per
				if end > h.cfg.Nodes {
					end = h.cfg.Nodes
				}
				for i := next; i < end; i++ {
					if err := h.Join(ctx, trace.NodeID(i)); err != nil {
						return err
					}
				}
				h.logf("swarm: wave joined nodes [%d,%d)", next, end)
				next = end
			}
			return nil
		},
	}
}

// Diurnal: a third of the downloaders go radio-silent mid-distribution
// and come back — scripted attendance. Their peers must expire and
// re-admit them, and their stalled downloads must re-drive to the end.
func Diurnal(nodes int, seed uint64) Scenario {
	return Scenario{
		Name:   "diurnal",
		Config: Config{Nodes: nodes, Seed: seed},
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			if err := h.WaitFraction(ctx, 0.10); err != nil {
				return err
			}
			sleepers := sleeperSet(h)
			for _, id := range sleepers {
				if err := h.Pause(id); err != nil {
					return err
				}
			}
			h.logf("swarm: %d nodes asleep", len(sleepers))
			// Long enough for the awake majority to notice the absences.
			night := 3 * h.cfg.LivenessWindow
			select {
			case <-time.After(night):
			case <-ctx.Done():
				return ctx.Err()
			}
			for _, id := range sleepers {
				if err := h.Resume(id); err != nil {
					return err
				}
			}
			h.logf("swarm: %d nodes awake", len(sleepers))
			return nil
		},
	}
}

// ServerDeath is the decentralized-discovery acceptance scenario: the
// catalog server publishes its index into the DHT and then dies, and
// every downloader issues a keyword query for a file nobody ever
// searched while the server lived. Legacy gossip cannot answer — the
// metadata only ever spread to nodes that queried it — so resolution
// measures the DHT alone. The report records how many post-death
// queries resolved.
func ServerDeath(nodes int, seed uint64) Scenario { return serverDeath(nodes, seed, true) }

// ServerDeathBaseline is ServerDeath without the DHT — the ~0%%
// control the DHT run is compared against.
func ServerDeathBaseline(nodes int, seed uint64) Scenario { return serverDeath(nodes, seed, false) }

func serverDeath(nodes int, seed uint64, withDHT bool) Scenario {
	name := "server-death"
	if !withDHT {
		name = "server-death-baseline"
	}
	cfg := Config{Nodes: nodes, Seed: seed, Files: 2, QueryFiles: 1, EnableDHT: withDHT}
	var queried, resolved int
	return Scenario{
		Name:   name,
		Config: cfg,
		Script: func(ctx context.Context, h *Harness) error {
			// Wave 1: the initially queried file completes everywhere
			// while the server lives. The second file is never queried,
			// so its metadata spreads nowhere over gossip.
			if err := h.WaitFraction(ctx, 1.0); err != nil {
				return err
			}
			// With the DHT on, let the server's republish cycle seed the
			// index before the shock: once half the downloaders hold the
			// never-queried keyword locally, its K-closest replicas exist
			// and survive the publisher.
			if withDHT {
				if err := waitCached(ctx, h, "f1", 0.5); err != nil {
					return err
				}
			}
			if err := h.Kill(0); err != nil {
				return err
			}
			// Post-death: every downloader asks for the file nobody ever
			// queried. Only the decentralized index can answer.
			for i := h.cfg.Seeders; i < h.cfg.Nodes; i++ {
				if err := h.AddQuery(trace.NodeID(i), "f1"); err != nil {
					return err
				}
				queried++
			}
			f1 := metadata.URIFor(metadata.FileID(1))
			deadline := time.Now().Add(30 * h.cfg.DHTRepublish)
			for time.Now().Before(deadline) {
				if resolved = countKnowing(h, f1); resolved == queried {
					break
				}
				select {
				case <-time.After(20 * time.Millisecond):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			resolved = countKnowing(h, f1)
			return nil
		},
		Finish: func(h *Harness, rep *Report) {
			rep.PostDeathQueries = queried
			rep.PostDeathResolved = resolved
			if queried > 0 {
				rep.PostDeathResolveFraction = float64(resolved) / float64(queried)
			}
		},
	}
}

// waitCached blocks until frac of the downloaders hold a local DHT
// value for keyword, or ctx ends.
func waitCached(ctx context.Context, h *Harness, keyword string, frac float64) error {
	for {
		have, total := 0, 0
		for i := h.cfg.Seeders; i < h.cfg.Nodes; i++ {
			total++
			if h.DHTCached(trace.NodeID(i), keyword) {
				have++
			}
		}
		if total > 0 && float64(have) >= frac*float64(total) {
			return nil
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("swarm: DHT replication of %q at %d/%d: %w", keyword, have, total, ctx.Err())
		}
	}
}

// countKnowing counts downloaders holding an unexpired record for uri.
func countKnowing(h *Harness, uri metadata.URI) int {
	n := 0
	for i := h.cfg.Seeders; i < h.cfg.Nodes; i++ {
		if h.KnowsMetadata(trace.NodeID(i), uri) {
			n++
		}
	}
	return n
}

// Fountain is the coded variant of the steady distribution: one
// full-mesh clique moves the file over the fountain-coded symbol plane
// instead of pairwise pieces. Queries wait for group confirmation so
// the coded plane, not the unicast fallback, carries the bulk; the
// report's symbol counters and piece-equivalent transmissions-per-piece
// are the artifact.
func Fountain(nodes int, seed uint64) Scenario {
	if nodes > 5 {
		nodes = 5
	}
	if nodes < 3 {
		nodes = 3
	}
	cfg := Config{Nodes: nodes, Seed: seed, EnableFEC: true, QueryFiles: -1}
	return Scenario{
		Name:   "fountain",
		Config: cfg,
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			for !h.GroupsConfirmed() {
				select {
				case <-time.After(20 * time.Millisecond):
				case <-ctx.Done():
					return fmt.Errorf("swarm: groups never confirmed: %w", ctx.Err())
				}
			}
			for i := h.cfg.Seeders; i < h.cfg.Nodes; i++ {
				if err := h.AddQuery(trace.NodeID(i), "f0"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// Overload is the flash-crowd-overload acceptance scenario: every
// node's admission control is armed, and a fabricated identity floods
// the seeder at ~10× the per-peer rate mid-distribution. The seeder
// must shed the flood and answer Busy, its /healthz must walk
// degraded→recovered around the flood window, and every legitimate
// download must still land — graceful degradation, not collapse.
func Overload(nodes int, seed uint64) Scenario {
	cfg := Config{Nodes: nodes, Seed: seed, PeerRate: 200}
	var sent, busySeen uint64
	var degraded, recovered bool
	return Scenario{
		Name:   "overload",
		Config: cfg,
		Target: 1.0,
		Script: func(ctx context.Context, h *Harness) error {
			// Let distribution get underway first — the flood hits a
			// seeder that is mid-serve, not an idle listener.
			if err := h.WaitFraction(ctx, 0.05); err != nil {
				return err
			}
			done := make(chan error, 1)
			go func() {
				// The flood comes in rounds until backpressure is
				// observed: the pacing is wall-clock, so one window on a
				// loaded scheduler can deliver less than a burst's worth
				// of frames — and a real flash crowd does not politely
				// stop after one try.
				var err error
				for round := 0; round < 8 && busySeen == 0 && err == nil; round++ {
					var s, b uint64
					s, b, err = h.FloodHello(ctx, 0, 9999, 500*time.Microsecond, 1200*time.Millisecond)
					sent += s
					busySeen += b
				}
				done <- err
			}()
			// While the flood runs, watch the victim degrade.
			poll := time.NewTicker(20 * time.Millisecond)
			defer poll.Stop()
			for flooding := true; flooding; {
				select {
				case err := <-done:
					if err != nil {
						return err
					}
					flooding = false
				case <-poll.C:
					if hh, ok := h.Health(0); ok && hh.Status == "degraded" {
						degraded = true
					}
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			// And recover once it stops: the shed window ages out and
			// nothing latches.
			deadline := time.Now().Add(30 * h.cfg.LivenessWindow)
			for time.Now().Before(deadline) {
				if hh, ok := h.Health(0); ok && hh.Status == "ok" {
					recovered = true
					break
				}
				select {
				case <-time.After(20 * time.Millisecond):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		},
		Finish: func(h *Harness, rep *Report) {
			rep.FloodSent = sent
			rep.FloodBusySeen = busySeen
			rep.OverloadDegraded = degraded
			rep.OverloadRecovered = recovered
		},
	}
}

// sleeperSet picks every third downloader, skipping seeders.
func sleeperSet(h *Harness) []trace.NodeID {
	var ids []trace.NodeID
	for i := h.cfg.Seeders; i < h.cfg.Nodes; i += 3 {
		ids = append(ids, trace.NodeID(i))
	}
	return ids
}

// Mobility: downloaders follow partition schedules rendered from a
// waypoint mobility trace (1 sim-minute ≈ 1 wall-ms), so connectivity
// churns the way the paper's mobile band does; a final heal converges
// the run. Seeders stay connected throughout — they are the Internet
// side of the hybrid.
func Mobility(nodes int, seed uint64) Scenario {
	cfg := Config{Nodes: nodes, Seed: seed}
	return Scenario{
		Name:   "mobility",
		Config: cfg,
		Target: 1.0,
	}
}

// mobilitySchedules renders the waypoint model into per-node partition
// schedules for every downloader and appends a final heal so the swarm
// can converge once the "day" of mobility ends.
func mobilitySchedules(nodes, seeders int, seed uint64) (map[trace.NodeID][]fault.Event, error) {
	wcfg := tracegen.DefaultWaypoint()
	wcfg.Nodes = nodes
	wcfg.Days = 1
	wcfg.Seed = seed
	tr, err := tracegen.Waypoint(wcfg)
	if err != nil {
		return nil, err
	}
	scheds, err := tracegen.PartitionSchedules(tr, tracegen.ScheduleConfig{
		Compress: simtime.Minute,
		Slack:    30 * simtime.Minute,
	})
	if err != nil {
		return nil, err
	}
	// The hybrid's Internet side never roams.
	for s := 0; s < seeders; s++ {
		delete(scheds, trace.NodeID(s))
	}
	// Heal everyone after the trace horizon so the run converges.
	var horizon time.Duration
	for _, ev := range scheds {
		for _, e := range ev {
			if e.At > horizon {
				horizon = e.At
			}
		}
	}
	for id, ev := range scheds {
		if len(ev) > 0 && ev[len(ev)-1].Partition {
			scheds[id] = append(ev, fault.Event{At: horizon + time.Millisecond})
		}
	}
	return scheds, nil
}

// scenarioBuilders is the registry the CLI and tests draw from.
var scenarioBuilders = map[string]func(nodes int, seed uint64) Scenario{
	"steady":                Steady,
	"flash-crowd":           FlashCrowd,
	"seeder-death":          SeederDeath,
	"staggered-join":        StaggeredJoin,
	"diurnal":               Diurnal,
	"mobility":              Mobility,
	"server-death":          ServerDeath,
	"server-death-baseline": ServerDeathBaseline,
	"fountain":              Fountain,
	"overload":              Overload,
}

// ScenarioNames lists the registered scenarios, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioBuilders))
	for name := range scenarioBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildScenario instantiates a registered scenario by name.
func BuildScenario(name string, nodes int, seed uint64) (Scenario, error) {
	build, ok := scenarioBuilders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("swarm: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	sc := build(nodes, seed)
	if sc.Name == "mobility" {
		scheds, err := mobilitySchedules(nodes, 1, seed)
		if err != nil {
			return Scenario{}, err
		}
		sc.Config.Schedules = scheds
		// Partitioned stretches burn retries; give mobility more rope.
		sc.Config.RetryBudget = 256
	}
	return sc, nil
}
